package main

import (
	"encoding/json"
	"os"
)

// Shared JSON report plumbing: every experiment that persists a report
// document (BENCH_redirection.json, BENCH_network.json) loads and writes
// it through these two helpers, so merge semantics — read the existing
// document, replace only your section, write the whole thing back — are
// implemented once.

// loadReport reads a JSON report document into a zero value of T,
// reporting ok=false when the file is missing or unparsable (callers
// then start from an empty document).
func loadReport[T any](path string) (T, bool) {
	var report T
	blob, err := os.ReadFile(path)
	if err != nil {
		return report, false
	}
	if json.Unmarshal(blob, &report) != nil {
		var zero T
		return zero, false
	}
	return report, true
}

// writeReport writes a report document as indented JSON with a trailing
// newline — the exact shape CI archives and diffs.
func writeReport[T any](path string, report *T) error {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
