package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Shared JSON report plumbing: every experiment that persists a report
// document (BENCH_redirection.json, BENCH_network.json, BENCH_fleet.json)
// loads and writes it through these two helpers, so merge semantics —
// read the existing document, replace only your section, write the whole
// thing back — are implemented once.

// reportSchemaVersion stamps every written document. CI parses the
// BENCH_*.json files for floors; bump this whenever a section's shape
// changes so a stale document is rejected loudly instead of parsed into
// zero values that silently pass or fail the floors.
const reportSchemaVersion = 2

// loadReport reads a JSON report document into a zero value of T,
// reporting ok=false when the file is missing or unparsable (callers
// then start from an empty document). A parsable document with a
// missing or mismatched schema_version is schema drift: it is reported
// on stderr — loudly, so CI logs show why the old sections vanished —
// and discarded.
func loadReport[T any](path string) (T, bool) {
	var report T
	blob, err := os.ReadFile(path)
	if err != nil {
		return report, false
	}
	var ver struct {
		V *int `json:"schema_version"`
	}
	if err := json.Unmarshal(blob, &ver); err != nil {
		return report, false
	}
	if ver.V == nil || *ver.V != reportSchemaVersion {
		got := "absent"
		if ver.V != nil {
			got = fmt.Sprint(*ver.V)
		}
		fmt.Fprintf(os.Stderr, "evaluate: %s: schema_version %s, want %d — discarding the stale document; rerun every experiment that folds into it\n",
			path, got, reportSchemaVersion)
		return report, false
	}
	if json.Unmarshal(blob, &report) != nil {
		var zero T
		return zero, false
	}
	return report, true
}

// writeReport writes a report document as indented JSON with a trailing
// newline — the exact shape CI archives and diffs — stamping the current
// schema_version. Keys are sorted, so regenerated documents diff stably.
func writeReport[T any](path string, report *T) error {
	blob, err := json.Marshal(report)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		return err
	}
	doc["schema_version"] = reportSchemaVersion
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
