// Command evaluate regenerates every table and figure of the paper's
// evaluation (Sections V and VI) from the simulation and prints a report
// in the paper's layout. Use -exp to run a single experiment:
//
//	evaluate -exp table1    ASIM microbenchmark latencies (Table I)
//	evaluate -exp fig6      AnTuTu relative scores (Figure 6)
//	evaluate -exp fig7      SunSpider suite times (Figure 7)
//	evaluate -exp sqlite    10,000-row transaction benchmark
//	evaluate -exp study     25-CVE vulnerability study (Section V-B)
//	evaluate -exp surface   syscall attack-surface breakdown (Section V-D)
//	evaluate -exp loc       deprivileged lines of code (Section V-D)
//	evaluate -exp memory    CVM memory overhead (Section VI-C)
//	evaluate -exp profile   ioctl profile of popular apps (Section VI-A)
//	evaluate -exp session   real-application session and launch latency
//	evaluate -exp recovery  supervised fault drills: per-class MTTR
//	evaluate -exp concurrency  sync-vs-ring multi-threaded throughput
//	evaluate -exp bench-json  redirection-cache speedups + concurrency rows -> BENCH_redirection.json
//	evaluate -exp zerocopy  copy vs grant vs grant+ring transfer sweep -> BENCH_redirection.json
//	evaluate -exp binder    sync vs session vs pipelined vs cached binder bridge sweep -> BENCH_redirection.json
//	evaluate -exp network   sockets over the ring + open-loop 100k-client traffic -> BENCH_network.json
//	evaluate -exp autotune  adaptive data plane vs hand-tuned knob configs -> BENCH_redirection.json
//	evaluate -exp fusion    fused dependent chains vs independent ring round trips -> BENCH_redirection.json
//	evaluate -exp fleet     sharded CVM fleet scaling sweep -> BENCH_fleet.json
//	evaluate -exp all       every registered experiment, in order (default)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/attacksurface"
	"anception/internal/exploits"
	"anception/internal/workloads"
)

// experiments is the ordered registry -exp dispatches on. -exp all runs
// every entry in this order, so each registered experiment — including
// every one that folds a section into the BENCH_*.json documents — runs
// exactly once per full pass. Order matters for the report writers:
// bench-json writes the Table-I rows the later pinned-row checks
// (zerocopy, binder, fleet) compare against.
var experiments = []struct {
	name string
	run  func() error
}{
	{"table1", table1},
	{"fig6", fig6},
	{"fig7", fig7},
	{"sqlite", sqlite},
	{"study", study},
	{"surface", surface},
	{"loc", loc},
	{"memory", memory},
	{"profile", profile},
	{"session", session},
	{"recovery", recovery},
	{"concurrency", concurrency},
	{"bench-json", benchJSON},
	{"zerocopy", zerocopy},
	{"binder", binderExp},
	{"network", networkExp},
	{"autotune", autotuneExp},
	{"fusion", fusionExp},
	{"fleet", fleetExp},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: one registered name, or all")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	if exp == "all" {
		for _, e := range experiments {
			if err := e.run(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Println()
		}
		return nil
	}
	for _, e := range experiments {
		if e.name == exp {
			return e.run()
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func bootPair() (*anception.Device, *anception.Device, error) {
	native, err := anception.NewDevice(anception.Options{Mode: anception.ModeNative, DisableTrace: true})
	if err != nil {
		return nil, nil, err
	}
	anc, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception, DisableTrace: true})
	if err != nil {
		return nil, nil, err
	}
	return native, anc, nil
}

func launchBench(d *anception.Device) (*anception.Proc, error) {
	app, err := d.InstallApp(android.AppSpec{Package: "com.evaluate.bench"})
	if err != nil {
		return nil, err
	}
	return d.Launch(app)
}

func measure(d *anception.Device, op func()) time.Duration {
	before := d.Clock.Now()
	op()
	return d.Clock.Now() - before
}

func table1() error {
	fmt.Println("== Table I: ASIM microbenchmark latency ==")
	native, anc, err := bootPair()
	if err != nil {
		return err
	}
	np, err := launchBench(native)
	if err != nil {
		return err
	}
	ap, err := launchBench(anc)
	if err != nil {
		return err
	}

	row := func(name string, nat, anceptionTime time.Duration) {
		fmt.Printf("  %-28s %12v %14v\n", name, nat, anceptionTime)
	}
	fmt.Printf("  %-28s %12s %14s\n", "syscall", "Native", "Anception")

	row("Null call - getpid",
		measure(native, func() { np.Getpid() }),
		measure(anc, func() { ap.Getpid() }))

	page := make([]byte, abi.PageSize)
	prep := func(p *anception.Proc) int {
		fd, err := p.Open("t1.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			panic(err)
		}
		return fd
	}
	nfd, afd := prep(np), prep(ap)
	row("Filesystem - write (4096B)",
		measure(native, func() { _, _ = np.Write(nfd, page) }),
		measure(anc, func() { _, _ = ap.Write(afd, page) }))
	if _, err := np.Lseek(nfd, 0, abi.SeekSet); err != nil {
		return err
	}
	if _, err := ap.Lseek(afd, 0, abi.SeekSet); err != nil {
		return err
	}
	row("Filesystem - read (4096B)",
		measure(native, func() { _, _ = np.Read(nfd, abi.PageSize) }),
		measure(anc, func() { _, _ = ap.Read(afd, abi.PageSize) }))

	nb, err := np.OpenBinder()
	if err != nil {
		return err
	}
	ab, err := ap.OpenBinder()
	if err != nil {
		return err
	}
	for _, size := range []int{128, 256} {
		payload := make([]byte, size)
		row(fmt.Sprintf("Binder IPC - ioctl (%dB)", size),
			measure(native, func() { _, _ = np.BinderCall(nb, "location", android.CodeGetLocation, payload) }),
			measure(anc, func() { _, _ = ap.BinderCall(ab, "location", android.CodeGetLocation, payload) }))
	}
	return nil
}

func fig6() error {
	fmt.Println("== Figure 6: AnTuTu relative scores (native = 1.0) ==")
	for _, w := range []workloads.Workload{workloads.AnTuTuDatabaseIO(), workloads.AnTuTu2D(), workloads.AnTuTu3D()} {
		c, err := workloads.Compare(w)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s native=%-14v anception=%-14v relative=%.3f\n",
			w.Name, c.Native.Simulated, c.Anception.Simulated, c.RelativeScore())
	}
	return nil
}

func fig7() error {
	fmt.Println("== Figure 7: SunSpider execution time (ms) ==")
	for _, name := range workloads.SunSpiderSuiteNames() {
		w, _ := workloads.SunSpiderWorkload(name)
		c, err := workloads.Compare(w)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s native=%6.1f ms  anception=%6.1f ms\n",
			name,
			float64(c.Native.Simulated)/float64(time.Millisecond),
			float64(c.Anception.Simulated)/float64(time.Millisecond))
	}
	return nil
}

func sqlite() error {
	fmt.Println("== SQLite macrobenchmark: 10,000 rows in one transaction ==")
	c, err := workloads.Compare(workloads.SQLiteRowBench())
	if err != nil {
		return err
	}
	fmt.Printf("  per-row: native=%v anception=%v (paper: 86.55 us vs 86.67 us)\n",
		c.Native.Simulated/time.Duration(c.Native.Ops),
		c.Anception.Simulated/time.Duration(c.Anception.Ops))
	return nil
}

func study() error {
	fmt.Println("== Section V-B: 25-vulnerability study ==")
	for _, mode := range []anception.Mode{anception.ModeNative, anception.ModeAnception, anception.ModeClassicalVM} {
		results, err := exploits.RunStudy(mode)
		if err != nil {
			return err
		}
		s := exploits.Summarize(results)
		fmt.Printf("  %-13s failed=%2d  cvm-root=%2d  host-root=%2d  detectable=%d\n",
			mode, s.Failed, s.CVMRoot, s.HostRoot, s.Detectable)
		if mode == anception.ModeAnception {
			for _, r := range results {
				mark := " "
				if r.Detected {
					mark = "D"
				}
				fmt.Printf("    %-16s %-20s %-20s %s\n", r.Exploit.ID, r.Exploit.Name, r.Outcome, mark)
			}
		}
	}
	return nil
}

func surface() error {
	fmt.Println("== Section V-D: attack surface and TCB ==")
	fmt.Print(attacksurface.Report())
	return nil
}

func loc() error {
	fmt.Println("== Section V-D: deprivileged lines of code ==")
	f := attacksurface.Framework()
	fmt.Printf("  framework: %d total, %d UI (host), %d deprivileged (%.1f%%)\n",
		f.TotalLines, f.UILines, f.DeprivilegedLines, 100*f.DeprivilegedFrac)
	for _, s := range attacksurface.KernelInventory() {
		where := "host"
		if s.Deprivliged {
			where = "CVM"
		}
		fmt.Printf("  kernel %-32s %8d lines -> %s\n", s.Path, s.Lines, where)
	}
	fmt.Printf("  kernel total deprivileged: %d lines\n", attacksurface.KernelDeprivilegedLines())
	return nil
}

func memory() error {
	fmt.Println("== Section VI-C: CVM memory overhead ==")
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception, DisableTrace: true})
	if err != nil {
		return err
	}
	for i := 0; i < 23; i++ {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.active%02d", i)})
		if err != nil {
			return err
		}
		if _, err := d.Launch(app); err != nil {
			return err
		}
	}
	m := d.CVMMemory()
	fmt.Printf("  assigned=%d KB  available=%d KB  active=%d KB  free=%d KB (%.0f%%)\n",
		m.TotalKB, m.AvailableKB, m.ActiveKB, m.FreeKB,
		100*float64(m.FreeKB)/float64(m.AvailableKB))
	fmt.Println("  (paper: 25460 KB +/- 524 active of 49228 KB available; ~51% free)")
	return nil
}

func session() error {
	fmt.Println("== Real-application session and launch latency ==")
	c, err := workloads.Compare(workloads.InteractiveSession())
	if err != nil {
		return err
	}
	fmt.Printf("  session: native=%v anception=%v (slowdown %.3f)\n",
		c.Native.Simulated, c.Anception.Simulated, c.Slowdown())
	nat, err := workloads.MeasureLaunch(anception.ModeNative)
	if err != nil {
		return err
	}
	anc, err := workloads.MeasureLaunch(anception.ModeAnception)
	if err != nil {
		return err
	}
	fmt.Printf("  cold launch: native=%v anception=%v (overhead %v)\n",
		nat.Latency, anc.Latency, anc.Latency-nat.Latency)
	return nil
}

func profile() error {
	fmt.Println("== Section VI-A: ioctl profile of popular apps ==")
	stats, err := workloads.RunProfile(anception.ModeAnception)
	if err != nil {
		return err
	}
	for name, frac := range stats.PerAppIoctlFrac {
		fmt.Printf("  %-10s ioctl fraction = %.3f\n", name, frac)
	}
	fmt.Printf("  average ioctl fraction = %.3f (paper: 0.737)\n", stats.AvgIoctlFrac)
	fmt.Printf("  UI share of ioctls     = %.3f (paper: 0.8135)\n", stats.UIIoctlFrac)
	return nil
}
