package main

import (
	"fmt"
	"time"

	"anception/internal/anception"
	"anception/internal/workloads"
)

// The autotune experiment validates the adaptive data plane (DESIGN.md
// §15): it replays the macro workloads — AnTuTu Database I/O, a
// SunSpider suite, and the SQLite row benchmark — across the hand-tuned
// single-knob configurations the earlier experiments shipped, then once
// more with Options.AutoTune and every knob unset, and asserts the
// auto-tuned device matches or beats the best hand-tuned configuration
// on every workload. The rows fold into BENCH_redirection.json so the
// floor is tracked per commit.

// autotuneRow is one workload's sweep outcome.
type autotuneRow struct {
	Workload string `json:"workload"`
	// Configs maps each hand-tuned configuration to its throughput in
	// ops per simulated second.
	Configs map[string]float64 `json:"configs"`
	// BestHand names the fastest hand-tuned configuration.
	BestHand    string  `json:"best_hand_tuned"`
	BestHandOps float64 `json:"best_hand_tuned_ops_per_sim_s"`
	// AutotunedOps is the adaptive plane's throughput on the same
	// workload; Speedup = AutotunedOps / BestHandOps (floor: >= 1.0).
	AutotunedOps float64 `json:"autotuned_ops_per_sim_s"`
	Speedup      float64 `json:"speedup"`
}

// autotuneConfig is one hand-tuned knob configuration of the sweep:
// exactly the shapes the zerocopy, concurrency, binder, and bench-json
// experiments hand-picked for their floors.
type autotuneConfig struct {
	name string
	opts anception.Options
}

func autotuneConfigs() []autotuneConfig {
	hour := time.Hour // fault detector, not a throughput knob (see concurrency.go)
	return []autotuneConfig{
		{"sync-uncached", anception.Options{CallDeadline: hour}},
		{"cached", anception.Options{RedirCache: true, CallDeadline: hour}},
		{"ring", anception.Options{
			RingDepth: 64, RingWorkers: 1, RingReapBatch: 64, CallDeadline: hour,
		}},
		{"grant-ring", anception.Options{
			GrantThreshold: 16 << 10,
			RingDepth:      64, RingWorkers: 1, RingReapBatch: 64, CallDeadline: hour,
		}},
		{"binder-fast", anception.Options{
			BinderSessions: true, BinderReplyCache: true, CallDeadline: hour,
		}},
	}
}

// autotuneWorkloads are the macro workloads the sweep replays.
func autotuneWorkloads() []workloads.Workload {
	sun, _ := workloads.SunSpiderWorkload("string")
	return []workloads.Workload{
		workloads.AnTuTuDatabaseIO(),
		sun,
		workloads.SQLiteRowBench(),
	}
}

// autotuneSweep measures one workload across every configuration.
func autotuneSweep(w workloads.Workload) (autotuneRow, error) {
	row := autotuneRow{Workload: w.Name, Configs: make(map[string]float64)}
	for _, cfg := range autotuneConfigs() {
		m, err := workloads.MeasureOnOpts(anception.ModeAnception, cfg.opts, w)
		if err != nil {
			return row, fmt.Errorf("%s on %s: %w", w.Name, cfg.name, err)
		}
		ops := m.OpsPerSecond()
		row.Configs[cfg.name] = ops
		if ops > row.BestHandOps {
			row.BestHand, row.BestHandOps = cfg.name, ops
		}
	}
	m, err := workloads.MeasureOnOpts(anception.ModeAnception,
		anception.Options{AutoTune: true, CallDeadline: time.Hour}, w)
	if err != nil {
		return row, fmt.Errorf("%s autotuned: %w", w.Name, err)
	}
	row.AutotunedOps = m.OpsPerSecond()
	if row.BestHandOps > 0 {
		row.Speedup = row.AutotunedOps / row.BestHandOps
	}
	return row, nil
}

// autotuneFloors enforces the acceptance criterion: on every workload
// the auto-tuned device matches or beats the best hand-tuned knob
// configuration. The epsilon only absorbs float division jitter — a
// genuine regression is orders of magnitude larger.
func autotuneFloors(rows []autotuneRow) error {
	for _, r := range rows {
		if r.Speedup < 1-1e-9 {
			return fmt.Errorf("%s: autotuned %.1f ops/sim-s below best hand-tuned %s at %.1f (%.4fx, floor 1.0x)",
				r.Workload, r.AutotunedOps, r.BestHand, r.BestHandOps, r.Speedup)
		}
	}
	return nil
}

// autotuneExp is the -exp autotune experiment.
func autotuneExp() error {
	fmt.Println("== Autotune: adaptive data plane vs hand-tuned knob configs ==")
	var rows []autotuneRow
	for _, w := range autotuneWorkloads() {
		row, err := autotuneSweep(w)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s best hand-tuned %-13s %10.1f ops/sim-s, autotuned %10.1f (%.4fx)\n",
			row.Workload, row.BestHand, row.BestHandOps, row.AutotunedOps, row.Speedup)
		rows = append(rows, row)
	}
	if err := autotuneFloors(rows); err != nil {
		return err
	}
	report, ok := loadBenchReport()
	if ok {
		if err := zcCheckPinned(&report); err != nil {
			return err
		}
	}
	report.Autotune = rows
	if err := writeBenchReport(&report); err != nil {
		return err
	}
	fmt.Printf("  folded %d autotune rows into %s\n", len(rows), benchJSONFile)
	return nil
}
