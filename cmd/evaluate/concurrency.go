package main

import (
	"fmt"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
)

// concRow is one thread-count measurement of the sync-vs-ring throughput
// experiment, in operations per simulated second.
type concRow struct {
	Threads        int     `json:"threads"`
	SyncOpsPerSec  float64 `json:"sync_ops_per_sim_sec"`
	RingOpsPerSec  float64 `json:"ring_ops_per_sim_sec"`
	RingSpeedup    float64 `json:"ring_speedup"`
	DoorbellsPerOp float64 `json:"doorbells_per_op"`
}

// concThreads are the measured thread counts; the 16-thread row carries
// the acceptance floors.
var concThreads = [...]int{1, 4, 16}

const (
	concOpsPerThread = 300
	concRingDepth    = 64
	concRingWorkers  = 8
)

// measureConcurrency drives threads goroutines, each issuing
// concOpsPerThread redirected 4 KiB pwrites against its own app and file,
// and reports aggregate ops per simulated second. With ring=true the
// device runs the async ring transport; doorbellsPerOp is how many
// doorbell interrupts the burst cost per call (0 on the sync channel,
// where every call pays its two world switches instead).
func measureConcurrency(threads int, ring bool) (opsPerSimSec, doorbellsPerOp float64, err error) {
	// The per-call deadline is a fault detector, not a throughput knob: a
	// call's sim-elapsed time includes every other thread's charges on the
	// shared clock, so under saturation it would false-positive. Lift it
	// far out of the way on both transports.
	opts := anception.Options{
		Mode:         anception.ModeAnception,
		DisableTrace: true,
		CallDeadline: time.Hour,
	}
	if ring {
		opts.RingDepth = concRingDepth
		opts.RingWorkers = concRingWorkers
	}
	d, err := anception.NewDevice(opts)
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()

	type worker struct {
		proc *anception.Proc
		fd   int
	}
	workers := make([]worker, threads)
	page := make([]byte, abi.PageSize)
	for i := range workers {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.conc%02d", i)})
		if err != nil {
			return 0, 0, err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return 0, 0, err
		}
		fd, err := proc.Open("conc.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			return 0, 0, err
		}
		if _, err := proc.Pwrite(fd, page, 0); err != nil { // warm the path
			return 0, 0, err
		}
		workers[i] = worker{proc, fd}
	}

	bellsBefore := d.Layer.Stats().Ring.Doorbells
	start := d.Clock.Now()
	errCh := make(chan error, threads)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < concOpsPerThread; n++ {
				if _, err := w.proc.Pwrite(w.fd, page, 0); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	elapsed := d.Clock.Now() - start

	ops := threads * concOpsPerThread
	opsPerSimSec = float64(ops) / elapsed.Seconds()
	if ring {
		doorbellsPerOp = float64(d.Layer.Stats().Ring.Doorbells-bellsBefore) / float64(ops)
	}
	return opsPerSimSec, doorbellsPerOp, nil
}

// concurrencyRows measures every thread count on both transports.
func concurrencyRows() ([]concRow, error) {
	rows := make([]concRow, 0, len(concThreads))
	for _, threads := range concThreads {
		syncOps, _, err := measureConcurrency(threads, false)
		if err != nil {
			return nil, fmt.Errorf("sync %d threads: %w", threads, err)
		}
		ringOps, bells, err := measureConcurrency(threads, true)
		if err != nil {
			return nil, fmt.Errorf("ring %d threads: %w", threads, err)
		}
		rows = append(rows, concRow{
			Threads:        threads,
			SyncOpsPerSec:  syncOps,
			RingOpsPerSec:  ringOps,
			RingSpeedup:    ringOps / syncOps,
			DoorbellsPerOp: bells,
		})
	}
	return rows, nil
}

// concurrencyFloors enforces the acceptance criteria on the 16-thread row:
// the ring must at least double synchronous throughput, and interrupt
// coalescing must hold doorbells per operation under one.
func concurrencyFloors(rows []concRow) error {
	for _, r := range rows {
		if r.Threads != 16 {
			continue
		}
		if r.RingSpeedup < 2 {
			return fmt.Errorf("ring speedup %.2fx at 16 threads below the 2x acceptance floor", r.RingSpeedup)
		}
		if r.DoorbellsPerOp >= 1 {
			return fmt.Errorf("doorbells per op %.3f at 16 threads: coalescing is not amortizing interrupts", r.DoorbellsPerOp)
		}
		return nil
	}
	return fmt.Errorf("no 16-thread row measured")
}

// concurrency is the -exp concurrency experiment: multi-threaded
// redirected-write throughput, synchronous page channel vs async ring.
func concurrency() error {
	fmt.Println("== Concurrency: sync channel vs async ring throughput ==")
	rows, err := concurrencyRows()
	if err != nil {
		return err
	}
	fmt.Printf("  %8s %18s %18s %9s %14s\n", "threads", "sync ops/sim-s", "ring ops/sim-s", "speedup", "doorbells/op")
	for _, r := range rows {
		fmt.Printf("  %8d %18.0f %18.0f %8.2fx %14.3f\n",
			r.Threads, r.SyncOpsPerSec, r.RingOpsPerSec, r.RingSpeedup, r.DoorbellsPerOp)
	}
	return concurrencyFloors(rows)
}
