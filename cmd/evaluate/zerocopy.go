package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
)

// The zerocopy experiment sweeps bulk-transfer sizes across the three
// data paths — chunked copy, zero-copy grants on the synchronous
// channel, and grants over the async ring — and records the copy-vs-flip
// crossover in BENCH_redirection.json. The copy baseline is kept honest
// by also sweeping the channel chunk size (ablation A2) at the floor's
// 64 KiB size: the grant path must beat the *best* chunked
// configuration, not just the default.

// zcRow is one transfer-size × data-path measurement.
type zcRow struct {
	Name       string  `json:"name"`
	Bytes      int     `json:"bytes"`
	SimUsPerOp float64 `json:"sim_us_per_op"`
}

var zcSizes = []struct {
	label string
	bytes int
}{
	{"4k", 4 << 10},
	{"16k", 16 << 10},
	{"64k", 64 << 10},
	{"256k", 256 << 10},
	{"1m", 1 << 20},
}

const (
	zcIters = 120
	// zcGrantThreshold makes every swept size grant-eligible, so the
	// measured 4 KiB grant row exposes where the copy path still wins.
	zcGrantThreshold = 4 << 10
	// zcFloorLabel is the transfer size carrying the acceptance floor.
	zcFloorLabel = "64k"
	// zcRingThreads pipelines the ring configuration: concurrent
	// submitters keep the SQ full so doorbells, reaps, and proxy
	// wakeups amortize across the batch.
	zcRingThreads = 8
)

// zcConfig is one data-path configuration of the sweep.
type zcConfig struct {
	name    string
	opts    anception.Options
	threads int
}

func zcConfigs() []zcConfig {
	hour := time.Hour // fault detector, not a throughput knob (see concurrency.go)
	return []zcConfig{
		{
			name:    "copy",
			opts:    anception.Options{Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: hour},
			threads: 1,
		},
		{
			name: "grant",
			opts: anception.Options{
				Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: hour,
				GrantThreshold: zcGrantThreshold,
			},
			threads: 1,
		},
		{
			// A single SQPOLL-style worker maximizes wakeup coalescing:
			// with pipelined submitters its shard stays deep, so one
			// ProxyDispatch charge drains many slots.
			name: "grant-ring",
			opts: anception.Options{
				Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: hour,
				GrantThreshold: zcGrantThreshold,
				RingDepth:      64, RingWorkers: 1, RingReapBatch: 64,
			},
			threads: zcRingThreads,
		},
	}
}

// zcChunkSweep are the extra copy-path chunk sizes measured at the floor
// size (A2): the honest baseline is the fastest of these and the default.
var zcChunkSweep = []int{16 << 10, 64 << 10}

// zcMeasure boots one configuration and measures uncached redirected
// preads and pwrites of size bytes, aggregated across cfg.threads
// pipelined submitters on the shared sim clock.
func zcMeasure(size int, cfg zcConfig) (readUs, writeUs float64, err error) {
	d, err := anception.NewDevice(cfg.opts)
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()

	type worker struct {
		proc *anception.Proc
		fd   int
		buf  []byte
	}
	workers := make([]worker, cfg.threads)
	for i := range workers {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.zc%02d", i)})
		if err != nil {
			return 0, 0, err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return 0, 0, err
		}
		fd, err := proc.Open("zc.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			return 0, 0, err
		}
		buf := make([]byte, size)
		if _, err := proc.Pwrite(fd, buf, 0); err != nil {
			return 0, 0, err
		}
		if _, err := proc.PreadInto(fd, buf, 0); err != nil { // warm the path
			return 0, 0, err
		}
		workers[i] = worker{proc, fd, buf}
	}

	run := func(op func(w worker) error) (float64, error) {
		start := d.Clock.Now()
		errCh := make(chan error, cfg.threads)
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w worker) {
				defer wg.Done()
				for n := 0; n < zcIters; n++ {
					if err := op(w); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		ops := cfg.threads * zcIters
		return float64(d.Clock.Now()-start) / float64(ops) / 1e3, nil
	}

	readUs, err = run(func(w worker) error {
		_, err := w.proc.PreadInto(w.fd, w.buf, 0)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	writeUs, err = run(func(w worker) error {
		_, err := w.proc.Pwrite(w.fd, w.buf, 0)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	return readUs, writeUs, nil
}

// zerocopyRows measures the full sweep.
func zerocopyRows() ([]zcRow, error) {
	var rows []zcRow
	for _, size := range zcSizes {
		for _, cfg := range zcConfigs() {
			readUs, writeUs, err := zcMeasure(size.bytes, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", cfg.name, size.label, err)
			}
			rows = append(rows,
				zcRow{Name: fmt.Sprintf("read%s-%s", size.label, cfg.name), Bytes: size.bytes, SimUsPerOp: readUs},
				zcRow{Name: fmt.Sprintf("write%s-%s", size.label, cfg.name), Bytes: size.bytes, SimUsPerOp: writeUs},
			)
			fmt.Printf("  %-6s %-12s read=%9.2f sim-us  write=%9.2f sim-us\n",
				size.label, cfg.name, readUs, writeUs)
		}
	}
	// A2 chunk sweep at the floor size: the copy baseline must be honest.
	hour := time.Hour
	for _, chunk := range zcChunkSweep {
		cfg := zcConfig{
			name: fmt.Sprintf("copy-chunk%dk", chunk>>10),
			opts: anception.Options{
				Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: hour,
				ChunkSize: chunk,
			},
			threads: 1,
		}
		readUs, writeUs, err := zcMeasure(64<<10, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		rows = append(rows,
			zcRow{Name: fmt.Sprintf("read%s-%s", zcFloorLabel, cfg.name), Bytes: 64 << 10, SimUsPerOp: readUs},
			zcRow{Name: fmt.Sprintf("write%s-%s", zcFloorLabel, cfg.name), Bytes: 64 << 10, SimUsPerOp: writeUs},
		)
		fmt.Printf("  %-6s %-12s read=%9.2f sim-us  write=%9.2f sim-us\n",
			zcFloorLabel, cfg.name, readUs, writeUs)
	}
	return rows, nil
}

func zcFind(rows []zcRow, name string) (float64, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r.SimUsPerOp, true
		}
	}
	return 0, false
}

// zerocopyFloors enforces the acceptance criteria: the sweep must show a
// measured crossover (copy wins at 4 KiB, grants win by 16 KiB), and
// grant+ring 64 KiB uncached reads must be at least 5× faster than the
// best copy-path configuration at the same size.
func zerocopyFloors(rows []zcRow) error {
	copy4k, ok1 := zcFind(rows, "read4k-copy")
	grant4k, ok2 := zcFind(rows, "read4k-grant")
	grant16k, ok3 := zcFind(rows, "read16k-grant")
	copy16k, ok4 := zcFind(rows, "read16k-copy")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("crossover rows missing from sweep")
	}
	if copy4k > grant4k {
		return fmt.Errorf("no crossover: copy already loses at 4k (%.2f vs %.2f sim-us) — the map+shootdown charge is not biting", copy4k, grant4k)
	}
	if grant16k >= copy16k {
		return fmt.Errorf("no crossover: grant still loses at 16k (%.2f vs %.2f sim-us)", grant16k, copy16k)
	}
	fmt.Printf("  crossover: copy wins at 4k (%.2f vs %.2f), grant wins at 16k (%.2f vs %.2f)\n",
		copy4k, grant4k, grant16k, copy16k)

	// Honest copy baseline: the fastest chunked configuration measured.
	bestCopy := math.Inf(1)
	bestName := ""
	for _, r := range rows {
		if r.Bytes == 64<<10 && len(r.Name) >= 11 && r.Name[:11] == "read64k-cop" {
			if r.SimUsPerOp < bestCopy {
				bestCopy, bestName = r.SimUsPerOp, r.Name
			}
		}
	}
	grantRing, ok := zcFind(rows, "read64k-grant-ring")
	if !ok || math.IsInf(bestCopy, 1) {
		return fmt.Errorf("floor rows missing from sweep")
	}
	speedup := bestCopy / grantRing
	fmt.Printf("  floor: grant+ring 64k read %.2f sim-us vs best copy %.2f (%s) = %.2fx\n",
		grantRing, bestCopy, bestName, speedup)
	if speedup < 5 {
		return fmt.Errorf("grant+ring 64k read speedup %.2fx below the 5x acceptance floor", speedup)
	}
	return nil
}

// zcPinnedRows are the Table I rows the zerocopy experiment must leave
// untouched in BENCH_redirection.json (simulated microseconds).
var zcPinnedRows = map[string]float64{
	"read4k-anception-uncached":  304.908,
	"write4k-anception-uncached": 384.26,
}

// zcCheckPinned verifies the pinned Table I rows in an existing report
// still carry their committed values: the zero-copy path is opt-in and
// must not perturb the copy path it bypasses.
func zcCheckPinned(report *benchReport) error {
	for _, row := range report.Rows {
		want, pinned := zcPinnedRows[row.Name]
		if !pinned {
			continue
		}
		if math.Abs(row.SimUsPerOp-want) > 0.01 {
			return fmt.Errorf("pinned row %s moved: %.3f sim-us (want %.3f)", row.Name, row.SimUsPerOp, want)
		}
	}
	return nil
}

// loadBenchReport reads the existing BENCH_redirection.json, so the
// bench-json, zerocopy, binder, and autotune experiments merge into one
// document instead of clobbering each other's sections.
func loadBenchReport() (benchReport, bool) {
	return loadReport[benchReport](benchJSONFile)
}

func writeBenchReport(report *benchReport) error {
	return writeReport(benchJSONFile, report)
}

// zerocopy is the -exp zerocopy experiment: the copy vs grant vs
// grant+ring transfer-size sweep, folded into BENCH_redirection.json.
func zerocopy() error {
	fmt.Println("== Zero-copy grants: copy vs grant vs grant+ring transfer sweep ==")
	rows, err := zerocopyRows()
	if err != nil {
		return err
	}
	if err := zerocopyFloors(rows); err != nil {
		return err
	}
	report, ok := loadBenchReport()
	if ok {
		if err := zcCheckPinned(&report); err != nil {
			return err
		}
	}
	report.Zerocopy = rows
	if err := writeBenchReport(&report); err != nil {
		return err
	}
	fmt.Printf("  folded %d zerocopy rows into %s\n", len(rows), benchJSONFile)
	return nil
}
