package main

import (
	"fmt"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/workloads"
)

// The fusion experiment validates syscall fusion (DESIGN.md §17): the
// canonical dependent chain open→fstat→pread(4 KiB)→close runs once on
// a ring device with FusionEnable — one linked submission per chain —
// and once on the identical ring device without it, where the same
// workload degrades to four independent round trips. Floors: the fused
// arm costs at least 3x fewer simulated microseconds per logical call
// and rings at most 0.25 doorbells per fused call. The rows fold into
// BENCH_redirection.json so the win is tracked per commit.

// fusionRow is one arm's outcome.
type fusionRow struct {
	Config string `json:"config"`
	// SimUsPerOp is simulated microseconds per logical system call
	// (4 calls per chain iteration).
	SimUsPerOp float64 `json:"sim_us_per_op"`
	// DoorbellsPerCall is ring doorbell interrupts per logical call —
	// the fused arm's link-batching floor is <= 0.25 (one doorbell
	// covering at least the 4 links of one chain).
	DoorbellsPerCall float64 `json:"doorbells_per_call"`
	// Speedup on the fused row is unfused SimUsPerOp over fused.
	Speedup float64 `json:"speedup,omitempty"`
}

const fusionIters = 500

// fusionOpts is the shared ring configuration of both arms; only
// FusionEnable differs, so the measured gap is fusion itself.
func fusionOpts(fused bool) anception.Options {
	return anception.Options{
		Mode:        anception.ModeAnception,
		RingDepth:   64,
		RingWorkers: 1,
		// A small reap batch keeps completion latency low for the
		// blocking single-threaded chain loop; identical in both arms so
		// the measured gap is fusion itself.
		RingReapBatch: 4,
		FusionEnable:  fused,
		CallDeadline:  time.Hour, // fault detector, not a throughput knob
		DisableTrace:  true,
	}
}

// fusionArm measures one arm: sim-us per logical call and doorbells per
// logical call over the whole chain-scan run.
func fusionArm(fused bool) (fusionRow, error) {
	name := "unfused"
	if fused {
		name = "fused"
	}
	row := fusionRow{Config: name}

	d, err := anception.NewDevice(fusionOpts(fused))
	if err != nil {
		return row, err
	}
	defer d.Close()
	app, err := d.InstallApp(android.AppSpec{Package: "com.bench.fusion"})
	if err != nil {
		return row, err
	}
	p, err := d.Launch(app)
	if err != nil {
		return row, err
	}

	w := workloads.ChainScan(fusionIters)
	bellsBefore := d.Layer.Stats().Ring.Doorbells
	start := d.Clock.Now()
	ops, err := w.Run(p)
	if err != nil {
		return row, fmt.Errorf("%s arm: %w", name, err)
	}
	elapsed := d.Clock.Now() - start
	row.SimUsPerOp = float64(elapsed) / float64(ops) / 1e3
	row.DoorbellsPerCall = float64(d.Layer.Stats().Ring.Doorbells-bellsBefore) / float64(ops)

	if fused {
		fs := d.Layer.Stats().Fusion
		if fs.Chains == 0 {
			return row, fmt.Errorf("fused arm ran but fused no chains: %+v", fs)
		}
		if fs.Submitted != fs.Completed+fs.Failed {
			return row, fmt.Errorf("fused arm accounting identity broken: %+v", fs)
		}
	}
	return row, nil
}

// fusionFloors enforces the acceptance criteria on the measured pair.
func fusionFloors(rows []fusionRow) error {
	var fused, unfused *fusionRow
	for i := range rows {
		switch rows[i].Config {
		case "fused":
			fused = &rows[i]
		case "unfused":
			unfused = &rows[i]
		}
	}
	if fused == nil || unfused == nil {
		return fmt.Errorf("fusion rows incomplete: %+v", rows)
	}
	if fused.Speedup < 3 {
		return fmt.Errorf("fused chain %.2f sim-us/call vs unfused %.2f: %.2fx below the 3x floor",
			fused.SimUsPerOp, unfused.SimUsPerOp, fused.Speedup)
	}
	if fused.DoorbellsPerCall > 0.25 {
		return fmt.Errorf("fused arm rings %.3f doorbells per call, above the 0.25 floor",
			fused.DoorbellsPerCall)
	}
	return nil
}

// fusionExp is the -exp fusion experiment.
func fusionExp() error {
	fmt.Println("== Syscall fusion: linked chain vs independent ring round trips ==")
	unfused, err := fusionArm(false)
	if err != nil {
		return err
	}
	fused, err := fusionArm(true)
	if err != nil {
		return err
	}
	if fused.SimUsPerOp > 0 {
		fused.Speedup = unfused.SimUsPerOp / fused.SimUsPerOp
	}
	rows := []fusionRow{unfused, fused}
	for _, r := range rows {
		fmt.Printf("  %-8s %8.2f sim-us/call  %6.3f doorbells/call\n",
			r.Config, r.SimUsPerOp, r.DoorbellsPerCall)
	}
	fmt.Printf("  fused speedup %.2fx (floor 3x), doorbells/call %.3f (floor 0.25)\n",
		fused.Speedup, fused.DoorbellsPerCall)
	if err := fusionFloors(rows); err != nil {
		return err
	}

	report, ok := loadBenchReport()
	if ok {
		if err := zcCheckPinned(&report); err != nil {
			return err
		}
	}
	report.Fusion = rows
	if err := writeBenchReport(&report); err != nil {
		return err
	}
	fmt.Printf("  folded %d fusion rows into %s\n", len(rows), benchJSONFile)
	return nil
}
