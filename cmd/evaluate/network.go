package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/netstack"
	"anception/internal/workloads"
)

// The network experiment measures the redirected network fast path
// (DESIGN.md §14) and writes BENCH_network.json: per-op 128 B echo cost
// on the synchronous channel vs the sockop ring, 64 KiB sends chunk-
// copied vs grant-backed, and the open-loop echo-server workload driven
// by a modeled population of ~100k concurrent simulated clients. The
// synchronous per-op rows are the pinned uncached baseline — the fast
// path is opt-in and must not perturb the path it bypasses.

const (
	// netEchoIters/netConnIters size the per-op measurement loops.
	netEchoIters = 300
	netConnIters = 64
	// netEchoBytes rides an inline ring slot; netBulkBytes is the
	// grant-floor transfer size.
	netEchoBytes = 128
	netBulkBytes = 64 << 10
	// netGrantThreshold makes the 64 KiB send grant-eligible on the
	// grant configuration.
	netGrantThreshold = 4 << 10
	// netRingThreads pipelines the ring configuration, matching the
	// zerocopy and concurrency experiments: concurrent submitters keep
	// the SQ deep so doorbells and proxy wakeups amortize.
	netRingThreads = 8
	// netEchoAddr is the simulated remote the echo clients talk to.
	netEchoAddr = "echo.host:80"
)

// netConfig is one transport configuration of the sweep.
type netConfig struct {
	name    string
	opts    anception.Options
	threads int
}

func netSyncConfig() netConfig {
	return netConfig{
		name:    "sync-uncached",
		opts:    anception.Options{Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: time.Hour},
		threads: 1,
	}
}

func netRingConfig() netConfig {
	return netConfig{
		name: "ring",
		opts: anception.Options{
			Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: time.Hour,
			RingDepth: 64, RingWorkers: 1, RingReapBatch: 64,
		},
		threads: netRingThreads,
	}
}

// netGrantConfig is the full fast path the bulk floor measures: sends
// above the threshold move by grant reference over the pipelined ring
// (the configuration the tentpole ships), against the chunk-copied
// synchronous baseline.
func netGrantConfig() netConfig {
	cfg := netRingConfig()
	cfg.name = "grant-ring"
	cfg.opts.GrantThreshold = netGrantThreshold
	return cfg
}

// netNativeConfig is the un-redirected baseline: the same echo op on
// the native kernel, which pays only syscall cost plus the modeled wire
// cost every transport shares.
func netNativeConfig() netConfig {
	return netConfig{
		name:    "native",
		opts:    anception.Options{Mode: anception.ModeNative, DisableTrace: true},
		threads: 1,
	}
}

// netEchoMeasure boots one configuration and measures send+recv echo
// round trips of size bytes against a registered remote, aggregated
// across cfg.threads pipelined clients on the shared sim clock.
func netEchoMeasure(size int, cfg netConfig) (float64, error) {
	d, err := anception.NewDevice(cfg.opts)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	// The remote echoes the request for the 128 B rows and acks bulk
	// sends with a short reply, so the measured op is always one
	// outbound payload plus one small completion recv.
	d.RegisterRemote(netEchoAddr, func(req []byte) []byte {
		if len(req) > netEchoBytes {
			return []byte("ok")
		}
		return req
	})

	// The bulk rows measure the outbound leg: the reply is a short ack,
	// and the recv asks for exactly that, so neither configuration pays
	// for a 64 KiB receive buffer it will not fill.
	respLen := size
	if size > netEchoBytes {
		respLen = 2
	}
	type worker struct {
		proc    *anception.Proc
		fd      int
		payload []byte
	}
	workers := make([]worker, cfg.threads)
	for i := range workers {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.net%02d", i)})
		if err != nil {
			return 0, err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return 0, err
		}
		fd, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
		if err != nil {
			return 0, err
		}
		if err := proc.Connect(fd, netEchoAddr); err != nil {
			return 0, err
		}
		payload := make([]byte, size)
		// Warm the path once so proxy enrollment stays out of the loop.
		if _, err := proc.Send(fd, payload); err != nil {
			return 0, err
		}
		if _, err := proc.Recv(fd, respLen); err != nil {
			return 0, err
		}
		workers[i] = worker{proc, fd, payload}
	}

	start := d.Clock.Now()
	errCh := make(chan error, cfg.threads)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < netEchoIters; n++ {
				if _, err := w.proc.Send(w.fd, w.payload); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if _, err := w.proc.Recv(w.fd, respLen); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	ops := cfg.threads * netEchoIters
	return float64(d.Clock.Now()-start) / float64(ops) / 1e3, nil
}

// netConnectMeasure measures socket+connect+close against the remote on
// the synchronous channel: the uncached connect baseline, dominated by
// the modeled network RTT.
func netConnectMeasure(cfg netConfig) (float64, error) {
	d, err := anception.NewDevice(cfg.opts)
	if err != nil {
		return 0, err
	}
	defer d.Close()
	d.RegisterRemote(netEchoAddr, func(req []byte) []byte { return req })
	app, err := d.InstallApp(android.AppSpec{Package: "com.net.conn"})
	if err != nil {
		return 0, err
	}
	proc, err := d.Launch(app)
	if err != nil {
		return 0, err
	}
	start := d.Clock.Now()
	for n := 0; n < netConnIters; n++ {
		fd, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
		if err != nil {
			return 0, err
		}
		if err := proc.Connect(fd, netEchoAddr); err != nil {
			return 0, err
		}
		if err := proc.Close(fd); err != nil {
			return 0, err
		}
	}
	return float64(d.Clock.Now()-start) / netConnIters / 1e3, nil
}

// netPinnedRows are the synchronous uncached baseline rows (simulated
// microseconds): the ring and grant paths are opt-in, so these committed
// values must not move when the fast path evolves.
var netPinnedRows = map[string]float64{
	"echo128-sync-uncached": 566.576,
	"connect-sync-uncached": 38842.460,
	"send64k-sync-uncached": 2362.954,
}

// netCheckPinned verifies the freshly measured sync rows still carry
// their committed values.
func netCheckPinned(rows []benchRow) error {
	for _, row := range rows {
		want, pinned := netPinnedRows[row.Name]
		if !pinned {
			continue
		}
		if math.Abs(row.SimUsPerOp-want) > 0.01 {
			return fmt.Errorf("pinned sync row %s moved: %.3f sim-us (want %.3f)", row.Name, row.SimUsPerOp, want)
		}
	}
	return nil
}

// netWorkloadConfigs are the transports the traffic workload compares.
func netWorkloadConfigs() []struct {
	name string
	mode anception.Mode
	opts anception.Options
} {
	return []struct {
		name string
		mode anception.Mode
		opts anception.Options
	}{
		{"ring", anception.ModeAnception, anception.Options{
			RingDepth: 64, RingWorkers: 4, GrantThreshold: 16 << 10,
		}},
		{"sync", anception.ModeAnception, anception.Options{}},
		{"native", anception.ModeNative, anception.Options{}},
	}
}

func netWorkloadRowFrom(name string, st workloads.NetServerStats) netWorkloadRow {
	us := func(d time.Duration) float64 { return float64(d) / 1e3 }
	row := netWorkloadRow{
		Transport:      name,
		Sessions:       st.Sessions,
		Clients:        st.Clients,
		Lanes:          st.Lanes,
		P50SimUs:       us(st.P50),
		P99SimUs:       us(st.P99),
		P999SimUs:      us(st.P999),
		MaxSimUs:       us(st.Max),
		OpsPerSimSec:   st.OpsPerSimSec,
		ThinkTimeMs:    float64(st.ThinkTime) / 1e6,
		AvgAcceptBatch: st.AvgAcceptBatch,
	}
	if st.ServerApps > 1 {
		row.ServerApps = st.ServerApps
		for _, per := range st.PerApp {
			row.PerApp = append(row.PerApp, netAppRow{
				Package:  per.Package,
				Sessions: per.Sessions,
				P50SimUs: us(per.P50),
				P99SimUs: us(per.P99),
			})
		}
	}
	return row
}

// networkFloors enforces the acceptance criteria: ring sockets at least
// 2x the synchronous channel (per-op and under the open-loop workload)
// and the grant-backed 64 KiB send at least 4x the chunk-copied one.
func networkFloors(report *networkReport) error {
	if report.EchoSpeedup < 2 {
		return fmt.Errorf("ring echo speedup %.2fx below the 2x acceptance floor", report.EchoSpeedup)
	}
	if report.WorkloadSpeedup < 2 {
		return fmt.Errorf("ring workload speedup %.2fx below the 2x acceptance floor", report.WorkloadSpeedup)
	}
	if report.GrantSendSpeedup < 4 {
		return fmt.Errorf("grant 64k send overhead speedup %.2fx below the 4x acceptance floor", report.GrantSendSpeedup)
	}
	return nil
}

// networkExp is the -exp network experiment.
func networkExp() error {
	fmt.Println("== Network fast path: sockets over the ring, grant-backed sends, open-loop traffic ==")
	report := networkReport{Iterations: netEchoIters}

	syncEcho, err := netEchoMeasure(netEchoBytes, netSyncConfig())
	if err != nil {
		return fmt.Errorf("echo sync: %w", err)
	}
	ringEcho, err := netEchoMeasure(netEchoBytes, netRingConfig())
	if err != nil {
		return fmt.Errorf("echo ring: %w", err)
	}
	connect, err := netConnectMeasure(netSyncConfig())
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	copySend, err := netEchoMeasure(netBulkBytes, netSyncConfig())
	if err != nil {
		return fmt.Errorf("send64k copy: %w", err)
	}
	grantSend, err := netEchoMeasure(netBulkBytes, netGrantConfig())
	if err != nil {
		return fmt.Errorf("send64k grant: %w", err)
	}
	nativeSend, err := netEchoMeasure(netBulkBytes, netNativeConfig())
	if err != nil {
		return fmt.Errorf("send64k native: %w", err)
	}
	report.Rows = []benchRow{
		{Name: "echo128-sync-uncached", SimUsPerOp: syncEcho},
		{Name: "echo128-ring", SimUsPerOp: ringEcho},
		{Name: "connect-sync-uncached", SimUsPerOp: connect},
		{Name: "send64k-sync-uncached", SimUsPerOp: copySend},
		{Name: "send64k-grant-ring", SimUsPerOp: grantSend},
		{Name: "send64k-native", SimUsPerOp: nativeSend},
	}
	for _, r := range report.Rows {
		fmt.Printf("  %-24s %12.3f sim-us/op\n", r.Name, r.SimUsPerOp)
	}
	report.EchoSpeedup = syncEcho / ringEcho
	// The 64 KiB wire cost is physics every transport pays (the native
	// row is almost entirely that), so the bulk floor gates what the PR
	// actually changes: the redirection overhead above the native cost.
	if grantSend > nativeSend {
		report.GrantSendSpeedup = (copySend - nativeSend) / (grantSend - nativeSend)
	}
	if err := netCheckPinned(report.Rows); err != nil {
		return err
	}

	var ringOps, syncOps float64
	for _, cfg := range netWorkloadConfigs() {
		st, err := workloads.RunNetServer(cfg.mode, cfg.opts, workloads.NetServerConfig{})
		if err != nil {
			return fmt.Errorf("workload %s: %w", cfg.name, err)
		}
		fmt.Printf("  %-8s %s\n", cfg.name, st)
		report.Workload = append(report.Workload, netWorkloadRowFrom(cfg.name, st))
		switch cfg.name {
		case "ring":
			ringOps = st.OpsPerSimSec
		case "sync":
			syncOps = st.OpsPerSimSec
		}
	}
	if syncOps > 0 {
		report.WorkloadSpeedup = ringOps / syncOps
	}

	// Million-client, multi-tenant row: four server apps share the one
	// sockop ring under a modeled 1M-client population with the mixed
	// request-size distribution. Per-app percentiles ride along so ring
	// sharing shows up as fairness, not just aggregate throughput.
	million, err := workloads.RunNetServer(anception.ModeAnception, anception.Options{
		RingDepth: 64, RingWorkers: 4, GrantThreshold: 16 << 10,
	}, workloads.NetServerConfig{
		Clients: 1_000_000, ServerApps: 4, MixedSizes: true,
	})
	if err != nil {
		return fmt.Errorf("workload ring-4apps-1m: %w", err)
	}
	fmt.Printf("  %-8s %s\n", "ring-4x", million)
	for _, per := range million.PerApp {
		fmt.Printf("           %-22s %6d sessions  p50=%v p99=%v\n", per.Package, per.Sessions, per.P50, per.P99)
	}
	report.Workload = append(report.Workload, netWorkloadRowFrom("ring-4apps-1m", million))
	for _, per := range million.PerApp {
		if per.Sessions == 0 || per.P50 <= 0 {
			return fmt.Errorf("multi-app row: server %s saw no traffic", per.Package)
		}
	}
	fmt.Printf("  speedups: echo %.2fx, workload %.2fx, grant 64k send overhead %.2fx\n",
		report.EchoSpeedup, report.WorkloadSpeedup, report.GrantSendSpeedup)

	if err := networkFloors(&report); err != nil {
		return err
	}
	if err := writeNetworkReport(&report); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", networkJSONFile)
	return nil
}
