package main

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/anception"
)

// benchJSONFile is where -exp bench-json writes its machine-readable
// report; CI archives it so the redirection-cache speedups are tracked
// per commit.
const benchJSONFile = "BENCH_redirection.json"

// benchRow is one Table-I-style measurement in simulated microseconds.
type benchRow struct {
	Name       string  `json:"name"`
	SimUsPerOp float64 `json:"sim_us_per_op"`
}

// benchReport is the bench-json output document.
type benchReport struct {
	Iterations int        `json:"iterations"`
	Rows       []benchRow `json:"rows"`
	// ReadSpeedup / WriteSpeedup compare the cached Anception
	// configuration against the uncached paper row.
	ReadSpeedup  float64 `json:"read_speedup"`
	WriteSpeedup float64 `json:"write_speedup"`
	// Cache holds the cached device's counters after both loops.
	Cache        anception.CacheStats `json:"cache"`
	CacheHitRate float64              `json:"cache_hit_rate"`
	// Concurrency holds the sync-vs-ring multi-threaded throughput rows
	// (-exp concurrency), so the async-ring win is tracked per commit
	// alongside the cache speedups.
	Concurrency []concRow `json:"concurrency"`
	// Zerocopy holds the copy/grant/grant+ring transfer-size sweep
	// (-exp zerocopy). bench-json preserves it on rewrite, and the
	// zerocopy experiment preserves every other section, so the two
	// experiments merge into one document.
	Zerocopy []zcRow `json:"zerocopy,omitempty"`
	// Binder holds the sync/session/pipelined/cached bridge sweep
	// (-exp binder), merged the same way.
	Binder []binderRow `json:"binder,omitempty"`
	// Autotune holds the adaptive-data-plane macro-workload sweep
	// (-exp autotune), merged the same way.
	Autotune []autotuneRow `json:"autotune,omitempty"`
	// Fusion holds the fused-vs-unfused dependent-chain pair
	// (-exp fusion), merged the same way.
	Fusion []fusionRow `json:"fusion,omitempty"`
}

// networkJSONFile is where -exp network writes the redirected-network
// fast-path report. It is a separate document from BENCH_redirection.json
// but shares the iterations header and the benchRow shape, so the same
// tooling parses both.
const networkJSONFile = "BENCH_network.json"

// netWorkloadRow is one transport's open-loop traffic-workload result:
// latency percentiles and throughput under the modeled ~100k-client
// population (workloads.RunNetServer).
type netWorkloadRow struct {
	Transport      string  `json:"transport"`
	Sessions       int     `json:"sessions"`
	Clients        int     `json:"clients"`
	ServerApps     int     `json:"server_apps,omitempty"`
	Lanes          int     `json:"lanes"`
	P50SimUs       float64 `json:"p50_sim_us"`
	P99SimUs       float64 `json:"p99_sim_us"`
	P999SimUs      float64 `json:"p999_sim_us"`
	MaxSimUs       float64 `json:"max_sim_us"`
	OpsPerSimSec   float64 `json:"ops_per_sim_s"`
	ThinkTimeMs    float64 `json:"think_time_ms"`
	AvgAcceptBatch float64 `json:"avg_accept_batch"`
	// PerApp breaks the percentiles down by server app when the row ran
	// more than one server sharing the sockop ring.
	PerApp []netAppRow `json:"per_app,omitempty"`
}

// netAppRow is one server app's slice of a multi-app workload row.
type netAppRow struct {
	Package  string  `json:"package"`
	Sessions int     `json:"sessions"`
	P50SimUs float64 `json:"p50_sim_us"`
	P99SimUs float64 `json:"p99_sim_us"`
}

// networkReport is the -exp network output document.
type networkReport struct {
	Iterations int        `json:"iterations"`
	Rows       []benchRow `json:"rows"`
	// EchoSpeedup compares per-op 128 B echo cost on the sync channel
	// against the pipelined sockop ring; WorkloadSpeedup is the same
	// comparison under the open-loop traffic workload's ops/sim-s.
	EchoSpeedup     float64 `json:"echo_speedup"`
	WorkloadSpeedup float64 `json:"workload_speedup"`
	// GrantSendSpeedup compares the redirection overhead (per-op cost
	// above the native wire+syscall baseline) of the chunk-copied
	// synchronous 64 KiB send against the grant-backed one riding the
	// pipelined ring.
	GrantSendSpeedup float64          `json:"grant_send_speedup"`
	Workload         []netWorkloadRow `json:"workload"`
}

func writeNetworkReport(report *networkReport) error {
	return writeReport(networkJSONFile, report)
}

// benchDevice boots a quiet platform and a benchmark app for bench-json.
func benchDevice(mode anception.Mode, cache bool) (*anception.Device, *anception.Proc, error) {
	d, err := anception.NewDevice(anception.Options{Mode: mode, RedirCache: cache, DisableTrace: true})
	if err != nil {
		return nil, nil, err
	}
	p, err := launchBench(d)
	if err != nil {
		return nil, nil, err
	}
	return d, p, nil
}

// benchJSON measures the Table I read/write rows across native, uncached
// Anception, and cached Anception, and writes BENCH_redirection.json.
func benchJSON() error {
	const iters = 2000
	fmt.Println("== bench-json: redirection-cache Table I rows ==")

	type config struct {
		name  string
		mode  anception.Mode
		cache bool
	}
	configs := []config{
		{"native", anception.ModeNative, false},
		{"anception-uncached", anception.ModeAnception, false},
		{"anception-cached", anception.ModeAnception, true},
	}

	perOp := make(map[string]map[string]float64) // op -> config name -> sim-us
	report := benchReport{Iterations: iters}
	for _, cfg := range configs {
		d, p, err := benchDevice(cfg.mode, cfg.cache)
		if err != nil {
			return err
		}
		fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			return err
		}
		page := make([]byte, abi.PageSize)
		if _, err := p.Pwrite(fd, page, 0); err != nil {
			return err
		}
		// One warm-up read so the cached configuration measures its steady
		// state, matching the benchmark harness.
		if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
			return err
		}

		start := d.Clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
				return err
			}
		}
		readUs := float64(d.Clock.Now()-start) / iters / 1e3

		start = d.Clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := p.Pwrite(fd, page, 0); err != nil {
				return err
			}
		}
		writeUs := float64(d.Clock.Now()-start) / iters / 1e3

		perOp[cfg.name] = map[string]float64{"read": readUs, "write": writeUs}
		report.Rows = append(report.Rows,
			benchRow{Name: "read4k-" + cfg.name, SimUsPerOp: readUs},
			benchRow{Name: "write4k-" + cfg.name, SimUsPerOp: writeUs},
		)
		if cfg.cache {
			report.Cache = d.Layer.Stats().Cache
		}
		fmt.Printf("  %-20s read=%8.2f sim-us  write=%8.2f sim-us\n", cfg.name, readUs, writeUs)
	}

	report.ReadSpeedup = perOp["anception-uncached"]["read"] / perOp["anception-cached"]["read"]
	report.WriteSpeedup = perOp["anception-uncached"]["write"] / perOp["anception-cached"]["write"]
	if lookups := report.Cache.Hits + report.Cache.Misses; lookups > 0 {
		report.CacheHitRate = float64(report.Cache.Hits) / float64(lookups)
	}
	fmt.Printf("  speedup: read %.1fx, write %.1fx, hit rate %.4f\n",
		report.ReadSpeedup, report.WriteSpeedup, report.CacheHitRate)

	if report.ReadSpeedup < 5 {
		return fmt.Errorf("cached read speedup %.2fx below the 5x acceptance floor", report.ReadSpeedup)
	}
	if report.WriteSpeedup <= 1 {
		return fmt.Errorf("cached write shows no round-trip reduction (%.2fx)", report.WriteSpeedup)
	}

	concRows, err := concurrencyRows()
	if err != nil {
		return err
	}
	report.Concurrency = concRows
	for _, r := range report.Concurrency {
		fmt.Printf("  %2d threads: sync=%8.0f ring=%8.0f ops/sim-s (%.2fx, %.3f doorbells/op)\n",
			r.Threads, r.SyncOpsPerSec, r.RingOpsPerSec, r.RingSpeedup, r.DoorbellsPerOp)
	}
	if err := concurrencyFloors(report.Concurrency); err != nil {
		return err
	}

	if prev, ok := loadBenchReport(); ok {
		report.Zerocopy = prev.Zerocopy
		report.Binder = prev.Binder
		report.Autotune = prev.Autotune
		report.Fusion = prev.Fusion
	}
	if err := writeBenchReport(&report); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", benchJSONFile)
	return nil
}
