package main

import (
	"fmt"
	"math"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/workloads"
)

// fleetJSONFile is where -exp fleet writes the CVM-fleet scaling report.
const fleetJSONFile = "BENCH_fleet.json"

// fleetSweepSizes is the 1→16 CVM throughput sweep.
var fleetSweepSizes = []int{1, 2, 4, 8, 16}

// fleetSweepRow is one sweep point of the mixed many-app workload.
type fleetSweepRow struct {
	FleetSize    int     `json:"fleet_size"`
	Apps         int     `json:"apps"`
	Ops          int     `json:"ops"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	OpsPerSimSec float64 `json:"ops_per_sim_s"`
	// Speedup is against the 1-CVM row; Efficiency = Speedup/FleetSize
	// (1.0 is perfectly linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// fleetBlastRow is the compromised-shard drill outcome.
type fleetBlastRow struct {
	FleetSize        int     `json:"fleet_size"`
	Apps             int     `json:"apps"`
	BadShard         int     `json:"bad_shard"`
	DegradedApps     int     `json:"degraded_apps"`
	DegradedOffShard int     `json:"degraded_off_shard"`
	SiblingDriftPct  float64 `json:"sibling_drift_pct"`
	Recovered        bool    `json:"recovered"`
	MTTRUs           float64 `json:"mttr_sim_us"`
	Restarts         int     `json:"restarts"`
	Restores         int     `json:"restores"`
}

// fleetMigrationRow is the live-migration demo outcome.
type fleetMigrationRow struct {
	Migrations  int     `json:"migrations"`
	CostSimUs   float64 `json:"cost_sim_us_per_migration"`
	DataOK      bool    `json:"data_survives"`
	Rebalanced  int     `json:"rebalance_moves"`
	Evacuated   int     `json:"evacuate_moves"`
	ServeAfter  bool    `json:"serves_after_move"`
	SourceDrain int     `json:"source_epoch_advances"`
}

// fleetReport is the -exp fleet output document.
type fleetReport struct {
	Sweep []fleetSweepRow `json:"sweep"`
	// LinearEfficiency8 is the 8-CVM efficiency the CI floor gates on
	// (acceptance: >= 0.8, i.e. 8 CVMs >= 6.4x one CVM).
	LinearEfficiency8 float64           `json:"linear_efficiency_8"`
	BlastRadius       fleetBlastRow     `json:"blast_radius"`
	Migration         fleetMigrationRow `json:"migration"`
	// PinnedOK records the Table I guard: a 1-CVM fleet shard forced to
	// ForceSyncUncached reproduces the pinned paper rows byte-for-byte.
	PinnedOK bool `json:"pinned_table1_ok"`
}

// fleetExp is the -exp fleet experiment: the 1→16 CVM scaling sweep,
// the compromised-shard blast-radius drill, the live-migration demo,
// and the pinned Table I guard.
func fleetExp() error {
	fmt.Println("== CVM fleet: scheduled shards, near-linear scaling, one-shard blast radius ==")
	var report fleetReport

	// Sweep: the same 32-app mixed workload divided over 1..16 CVMs.
	fmt.Println("  scaling sweep (32 apps, mixed page/bulk/socket/binder ops):")
	var base float64
	for _, size := range fleetSweepSizes {
		st, err := workloads.RunFleetMix(workloads.FleetMixConfig{FleetSize: size})
		if err != nil {
			return fmt.Errorf("fleet sweep %d: %w", size, err)
		}
		row := fleetSweepRow{
			FleetSize:    st.FleetSize,
			Apps:         st.Apps,
			Ops:          st.Ops,
			ElapsedMs:    float64(st.Elapsed) / 1e6,
			OpsPerSimSec: st.OpsPerSimSec,
		}
		if size == 1 {
			base = st.OpsPerSimSec
		}
		if base > 0 {
			row.Speedup = st.OpsPerSimSec / base
			row.Efficiency = row.Speedup / float64(size)
		}
		report.Sweep = append(report.Sweep, row)
		fmt.Printf("    %2d CVM(s): %8.0f ops/sim-s  elapsed %8.2f ms  speedup %5.2fx  efficiency %.2f\n",
			size, row.OpsPerSimSec, row.ElapsedMs, row.Speedup, row.Efficiency)
		if size == 8 {
			report.LinearEfficiency8 = row.Efficiency
		}
	}

	// Blast radius: compromise one shard of a warm 4-CVM fleet.
	blast, err := workloads.RunBlastRadiusDrill(workloads.FleetMixConfig{FleetSize: 4})
	if err != nil {
		return fmt.Errorf("blast radius drill: %w", err)
	}
	report.BlastRadius = fleetBlastRow{
		FleetSize:        blast.FleetSize,
		Apps:             blast.Apps,
		BadShard:         blast.BadShard,
		DegradedApps:     blast.DegradedApps,
		DegradedOffShard: blast.DegradedOffShard,
		SiblingDriftPct:  100 * blast.SiblingCostDriftMax,
		Recovered:        blast.Recovered,
		MTTRUs:           float64(blast.MTTR) / 1e3,
		Restarts:         blast.Restarts,
		Restores:         blast.Restores,
	}
	fmt.Printf("  blast radius: shard %d compromised -> %d/%d apps degraded (%d off-shard), sibling drift %.2f%%, MTTR %v\n",
		blast.BadShard, blast.DegradedApps, blast.Apps, blast.DegradedOffShard,
		report.BlastRadius.SiblingDriftPct, blast.MTTR)

	mig, err := fleetMigrationDemo()
	if err != nil {
		return fmt.Errorf("migration demo: %w", err)
	}
	report.Migration = mig
	fmt.Printf("  migration: %d move(s) at %.0f sim-us each, data survived=%v, rebalance moved %d, evacuate moved %d\n",
		mig.Migrations, mig.CostSimUs, mig.DataOK, mig.Rebalanced, mig.Evacuated)

	pinnedOK, err := fleetPinnedCheck()
	if err != nil {
		return fmt.Errorf("pinned Table I guard: %w", err)
	}
	report.PinnedOK = pinnedOK
	fmt.Println("  pinned Table I rows on a 1-CVM ForceSyncUncached shard: ok")

	if err := fleetFloors(&report); err != nil {
		return err
	}
	if err := writeReport(fleetJSONFile, &report); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", fleetJSONFile)
	return nil
}

// fleetFloors enforces the acceptance criteria: 8 CVMs at >= 0.8x
// linear (>= 6.4x one CVM), blast radius confined to the compromised
// shard, migration preserving data, and the pinned rows intact.
func fleetFloors(report *fleetReport) error {
	if report.LinearEfficiency8 < 0.8 {
		return fmt.Errorf("8-CVM efficiency %.2f below the 0.8x-linear acceptance floor", report.LinearEfficiency8)
	}
	b := report.BlastRadius
	if b.DegradedApps == 0 {
		return fmt.Errorf("blast-radius drill degraded no apps — drill is vacuous")
	}
	if b.DegradedOffShard != 0 {
		return fmt.Errorf("blast radius leaked: %d apps off shard %d degraded", b.DegradedOffShard, b.BadShard)
	}
	if !b.Recovered {
		return fmt.Errorf("compromised shard never recovered to full health")
	}
	if !report.Migration.DataOK || !report.Migration.ServeAfter {
		return fmt.Errorf("migration lost app state or left the app unserved: %+v", report.Migration)
	}
	if !report.PinnedOK {
		return fmt.Errorf("pinned Table I rows moved on the 1-CVM fleet shard")
	}
	return nil
}

// fleetMigrationDemo moves a warm app between shards and verifies its
// durable state follows it, then exercises rebalance and evacuation.
func fleetMigrationDemo() (fleetMigrationRow, error) {
	var row fleetMigrationRow
	f, err := anception.NewFleet(anception.Options{
		Mode: anception.ModeAnception, DisableTrace: true,
		RedirCache: true, RingDepth: 64, GrantThreshold: 16 << 10,
		FleetSize: 2,
	})
	if err != nil {
		return row, err
	}
	defer f.Close()

	apps := make([]*anception.FleetApp, 4)
	for i := range apps {
		apps[i], err = f.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.fleet.demo%d", i)})
		if err != nil {
			return row, err
		}
	}
	mover := apps[0]
	p := mover.Proc()
	fd, err := p.Open("state.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return row, err
	}
	payload := []byte("durable app state rides the migration")
	if _, err := p.Pwrite(fd, payload, 0); err != nil {
		return row, err
	}

	src := f.Shard(mover.Shard())
	target := 1 - mover.Shard()
	epochBefore := src.Dev.Layer.Stats().Epoch.Advances
	costBefore := src.Dev.Clock.Now() + f.Shard(target).Dev.Clock.Now()
	if err := f.Migrate(mover, target); err != nil {
		return row, err
	}
	costAfter := src.Dev.Clock.Now() + f.Shard(target).Dev.Clock.Now()
	row.Migrations = f.Migrations()
	row.CostSimUs = float64(costAfter-costBefore) / 1e3
	row.SourceDrain = src.Dev.Layer.Stats().Epoch.Advances - epochBefore

	np := mover.Proc()
	nfd, err := np.Open("state.dat", abi.ORdOnly, 0)
	if err != nil {
		return row, fmt.Errorf("reopen after migration: %w", err)
	}
	got, err := np.Pread(nfd, len(payload), 0)
	if err != nil {
		return row, fmt.Errorf("read after migration: %w", err)
	}
	row.DataOK = string(got) == string(payload)

	// The moved app keeps serving writes on its new shard.
	if _, err := np.Pwrite(nfd, nil, 0); err == nil {
		row.ServeAfter = true
	} else {
		wfd, werr := np.Open("after.dat", abi.OWrOnly|abi.OCreat, 0o600)
		if werr != nil {
			return row, fmt.Errorf("post-migration write: %w", werr)
		}
		if _, werr := np.Pwrite(wfd, payload, 0); werr != nil {
			return row, fmt.Errorf("post-migration write: %w", werr)
		}
		row.ServeAfter = true
	}

	if moves, err := f.Rebalance(); err == nil {
		row.Rebalanced = moves
	} else {
		return row, fmt.Errorf("rebalance: %w", err)
	}
	if moves, err := f.EvacuateShard(0); err == nil {
		row.Evacuated = moves
	} else {
		return row, fmt.Errorf("evacuate: %w", err)
	}
	return row, nil
}

// fleetPinnedCheck reruns the benchJSON Table I measurement on a 1-CVM
// fleet shard running the adaptive plane with a ForceSyncUncached
// override: the fleet plumbing must charge byte-for-byte what the
// committed BENCH_redirection.json rows pin for a plain uncached device.
func fleetPinnedCheck() (bool, error) {
	const iters = 2000
	f, err := anception.NewFleet(anception.Options{
		Mode: anception.ModeAnception, DisableTrace: true,
		AutoTune: true, FleetSize: 1,
	})
	if err != nil {
		return false, err
	}
	defer f.Close()
	d := f.Shard(0).Dev
	d.Layer.SetPolicyOverride(&anception.PolicyOverride{ForceSyncUncached: true})

	app, err := f.InstallApp(android.AppSpec{Package: "com.bench"})
	if err != nil {
		return false, err
	}
	p := app.Proc()
	fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return false, err
	}
	page := make([]byte, abi.PageSize)
	if _, err := p.Pwrite(fd, page, 0); err != nil {
		return false, err
	}
	if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
		return false, err
	}

	start := d.Clock.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
			return false, err
		}
	}
	readUs := float64(d.Clock.Now()-start) / iters / 1e3

	start = d.Clock.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.Pwrite(fd, page, 0); err != nil {
			return false, err
		}
	}
	writeUs := float64(d.Clock.Now()-start) / iters / 1e3

	for name, got := range map[string]float64{
		"read4k-anception-uncached":  readUs,
		"write4k-anception-uncached": writeUs,
	} {
		if want := zcPinnedRows[name]; math.Abs(got-want) > 0.01 {
			return false, fmt.Errorf("pinned row %s = %.3f sim-us on the fleet shard, want %.3f", name, got, want)
		}
	}
	return true, nil
}
