package main

import (
	"errors"
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// recovery runs the supervised fault drills: one platform per fault
// class, an app doing redirected I/O, the fault injected mid-flight, and
// the watchdog left to bring the container back. Reported per class: the
// errno the app saw, the MTTR in sim time, and the restart count.
func recovery() error {
	fmt.Println("== Recovery: supervised fault drills (MTTR in sim time) ==")

	type drill struct {
		name   string
		inject func(d *anception.Device, inj *supervisor.Injector) error
	}
	drills := []drill{
		{"drop (lost request)", func(d *anception.Device, inj *supervisor.Injector) error {
			inj.InjectNext(supervisor.FaultDrop, supervisor.FaultDrop)
			return nil
		}},
		{"delay (blown deadline)", func(d *anception.Device, inj *supervisor.Injector) error {
			inj.InjectNext(supervisor.FaultDelay, supervisor.FaultDelay)
			return nil
		}},
		{"corrupt (bad response)", func(d *anception.Device, inj *supervisor.Injector) error {
			inj.InjectNext(supervisor.FaultCorrupt, supervisor.FaultCorrupt)
			return nil
		}},
		{"hang (wedged channel)", func(d *anception.Device, inj *supervisor.Injector) error {
			inj.Wedge()
			return nil
		}},
		{"guest kernel panic", func(d *anception.Device, inj *supervisor.Injector) error {
			d.InjectGuestPanic("drill")
			return nil
		}},
		{"critical service killed", func(d *anception.Device, inj *supervisor.Injector) error {
			return d.KillGuestService("vold")
		}},
	}

	fmt.Printf("  %-26s %-22s %12s %9s\n", "fault class", "app-visible", "MTTR", "restarts")
	var coldPanicMTTR time.Duration
	for _, dr := range drills {
		d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
		if err != nil {
			return err
		}
		inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(7), d.Clock, d.Trace)
		d.Layer.SetTransport(inj)
		sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{
			CriticalServices: []string{"vold"},
			Channel:          inj,
		})

		app, err := d.InstallApp(android.AppSpec{Package: "com.drill"})
		if err != nil {
			return err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return err
		}
		// Enroll the proxy before the fault so the drill measures steady
		// state, not first-call setup.
		if _, err := proc.Open("warmup.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
			return err
		}

		if err := dr.inject(d, inj); err != nil {
			return err
		}
		visible := "ok"
		if _, err := proc.Open("during.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
			var errno abi.Errno
			if errors.As(err, &errno) {
				visible = errno.Error()
			} else {
				visible = "NON-ERRNO"
			}
		}
		if err := sup.RunUntilHealthy(50); err != nil {
			return fmt.Errorf("drill %q: %w", dr.name, err)
		}
		st := sup.Stats()
		fmt.Printf("  %-26s %-22s %12v %9d\n", dr.name, visible, st.LastMTTR, st.Restarts)
		if dr.name == "guest kernel panic" {
			coldPanicMTTR = st.LastMTTR
		}
	}

	if err := recoveryRestore(coldPanicMTTR); err != nil {
		return err
	}

	return recoveryChaos()
}

// recoveryRestore runs the snapshot-restore drills against the cold
// baseline measured above: a panic recovered from a warm checkpoint must
// land at least 10x below the cold-restart MTTR, and a rotted checkpoint
// must provably fall back to the cold path (checksum reject, restore
// failure, then a restart) — never restore corrupt state.
func recoveryRestore(coldPanicMTTR time.Duration) error {
	boot := func() (*anception.Device, *supervisor.Injector, *supervisor.Supervisor, *anception.Proc, error) {
		d, err := anception.NewDevice(anception.Options{
			Mode:             anception.ModeAnception,
			SnapshotInterval: time.Millisecond,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(7), d.Clock, d.Trace)
		inj.SetSnapshotCorrupter(d.CorruptSnapshot)
		d.Layer.SetTransport(inj)
		sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{Channel: inj})
		app, err := d.InstallApp(android.AppSpec{Package: "com.restoredrill"})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if _, err := proc.Open("warmup.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
			return nil, nil, nil, nil, err
		}
		// A healthy tick seals the first checkpoint.
		if !sup.Tick() {
			return nil, nil, nil, nil, fmt.Errorf("restore drill: healthy tick failed")
		}
		return d, inj, sup, proc, nil
	}

	fmt.Println("\n  restore path (checkpoint sealed before the fault):")

	// Warm restore: panic recovered from the checkpoint, no cold restart.
	d, _, sup, _, err := boot()
	if err != nil {
		return err
	}
	d.InjectGuestPanic("restore drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		return fmt.Errorf("restore drill: %w", err)
	}
	st := sup.Stats()
	restoreMTTR := st.LastMTTR
	fmt.Printf("  %-26s %-22s %12v %9d restores\n", "panic -> snapshot restore", "ok", restoreMTTR, st.Restores)
	if st.Restores != 1 || st.Restarts != 0 {
		return fmt.Errorf("restore drill recovered cold: %d restores, %d restarts", st.Restores, st.Restarts)
	}

	// Corrupt fallback: the rotted image fails its checksum and the
	// watchdog escalates to a cold restart within the same outage.
	d, inj, sup, proc, err := boot()
	if err != nil {
		return err
	}
	inj.InjectNext(supervisor.FaultSnapshotCorrupt)
	if _, err := proc.Open("carrier.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		return fmt.Errorf("corrupt-fallback carrier call: %w", err)
	}
	d.InjectGuestPanic("restore drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		return fmt.Errorf("corrupt-fallback drill: %w", err)
	}
	st = sup.Stats()
	snaps := d.SnapshotStats()
	fmt.Printf("  %-26s %-22s %12v %9d restarts\n", "snapshot-corrupt fallback", "ok", st.LastMTTR, st.Restarts)
	if st.Restores != 0 {
		return fmt.Errorf("corrupt checkpoint was restored: %d restores", st.Restores)
	}
	if st.RestoreFailures == 0 || st.Restarts == 0 || snaps.ChecksumRejects == 0 {
		return fmt.Errorf("corrupt fallback not proven: %d restore failures, %d restarts, %d checksum rejects",
			st.RestoreFailures, st.Restarts, snaps.ChecksumRejects)
	}

	fmt.Printf("  floor: restore MTTR %v vs cold %v = %.1fx\n",
		restoreMTTR, coldPanicMTTR, float64(coldPanicMTTR)/float64(restoreMTTR))
	if coldPanicMTTR <= 0 || restoreMTTR <= 0 {
		return fmt.Errorf("MTTRs not recorded: restore %v, cold %v", restoreMTTR, coldPanicMTTR)
	}
	if restoreMTTR*10 > coldPanicMTTR {
		return fmt.Errorf("restore MTTR %v not 10x below cold MTTR %v", restoreMTTR, coldPanicMTTR)
	}
	return nil
}

// recoveryChaos runs probabilistic faults under load on one platform,
// the watchdog keeping the container alive throughout.
func recoveryChaos() error {
	// One chaos run on a single platform: probabilistic faults under load,
	// watchdog keeping the container alive throughout.
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
	if err != nil {
		return err
	}
	inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(1234), d.Clock, d.Trace)
	d.Layer.SetTransport(inj)
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{Channel: inj})
	app, err := d.InstallApp(android.AppSpec{Package: "com.chaos"})
	if err != nil {
		return err
	}
	proc, err := d.Launch(app)
	if err != nil {
		return err
	}
	inj.SetProbability(supervisor.FaultDrop, 0.05)
	inj.SetProbability(supervisor.FaultCorrupt, 0.03)
	okCalls, failCalls := 0, 0
	start := d.Clock.Now()
	for i := 0; i < 300; i++ {
		fd, err := proc.Open("chaos.txt", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			failCalls++
		} else {
			if _, err := proc.Write(fd, []byte("x")); err != nil {
				failCalls++
			} else {
				okCalls++
			}
			_ = proc.Close(fd)
		}
		if i%20 == 19 {
			sup.Tick()
		}
	}
	elapsed := d.Clock.Now() - start
	ist := inj.Stats()
	lst := d.Layer.Stats()
	sst := sup.Stats()
	fmt.Println("\n  chaos run: 300 open/write cycles, 5% drop + 3% corrupt, watchdog every 20 calls")
	fmt.Printf("    calls ok/failed: %d/%d (all failures clean errnos)\n", okCalls, failCalls)
	fmt.Printf("    injected: %d drops, %d corruptions over %d round trips\n",
		ist.Injected[supervisor.FaultDrop], ist.Injected[supervisor.FaultCorrupt], ist.RoundTrips)
	fmt.Printf("    layer: %d redirected, %d timed out, %d fail-fast\n", lst.Redirected, lst.TimedOut, lst.FailedFast)
	fmt.Printf("    supervisor: %d probes, %d restarts, mean MTTR %v\n", sst.Probes, sst.Restarts, sst.MeanMTTR())
	fmt.Printf("    sim time under chaos: %v (%.1fus/call)\n",
		elapsed, float64(elapsed.Microseconds())/300)
	return nil
}
