package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportRoundTrip pins the shared report helpers' merge contract:
// load what you wrote byte-for-byte equal after a round trip, absent and
// corrupt files report ok=false (so experiments start from an empty
// document), and a section-merge via load-modify-write preserves the
// sections it did not touch.
func TestReportRoundTrip(t *testing.T) {
	type doc struct {
		Iterations int      `json:"iterations"`
		Rows       []string `json:"rows,omitempty"`
		Extra      []string `json:"extra,omitempty"`
	}
	path := filepath.Join(t.TempDir(), "report.json")

	if _, ok := loadReport[doc](path); ok {
		t.Fatal("missing file must load ok=false")
	}

	want := doc{Iterations: 3, Rows: []string{"a", "b"}}
	if err := writeReport(path, &want); err != nil {
		t.Fatal(err)
	}
	got, ok := loadReport[doc](path)
	if !ok {
		t.Fatal("round trip load failed")
	}
	if got.Iterations != want.Iterations || len(got.Rows) != 2 || got.Rows[1] != "b" {
		t.Fatalf("round trip mangled the document: %+v", got)
	}

	// Section merge: touch Extra, leave Rows alone.
	got.Extra = []string{"merged"}
	if err := writeReport(path, &got); err != nil {
		t.Fatal(err)
	}
	merged, ok := loadReport[doc](path)
	if !ok || len(merged.Rows) != 2 || len(merged.Extra) != 1 {
		t.Fatalf("merge clobbered a section: %+v (ok=%v)", merged, ok)
	}

	// The written file ends in exactly one newline (the shape CI diffs)
	// and carries the current schema_version stamp.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 2 || blob[len(blob)-1] != '\n' || blob[len(blob)-2] == '\n' {
		t.Fatalf("report file must end in exactly one newline: %q", blob[len(blob)-4:])
	}
	stamp := fmt.Sprintf("\"schema_version\": %d", reportSchemaVersion)
	if !strings.Contains(string(blob), stamp) {
		t.Fatalf("written report lacks %s:\n%s", stamp, blob)
	}

	// Schema drift — wrong or missing version on an otherwise valid
	// document — must be rejected so floors never parse zero values.
	for _, drifted := range []string{
		`{"iterations": 3, "schema_version": 1}`,
		`{"iterations": 3}`,
	} {
		if err := os.WriteFile(path, []byte(drifted+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := loadReport[doc](path); ok {
			t.Fatalf("drifted document loaded ok=true: %s", drifted)
		}
	}
	if err := writeReport(path, &want); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadReport[doc](path); ok {
		t.Fatal("corrupt file must load ok=false")
	}
}
