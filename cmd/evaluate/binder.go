package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
)

// The binder experiment sweeps the bridge's four configurations — the
// paper's synchronous +19 ms bridge, persistent sessions, sessions over
// the async ring, and sessions + the idempotent reply cache — at 1/4/16
// threads, and folds the rows into BENCH_redirection.json. The paper's
// Section VI-A numbers (12 ms native, 31.0 ms at +128 B on the uncached
// bridge) stay pinned as the baseline the fast path is measured against.

// binderRow is one configuration × thread-count measurement.
type binderRow struct {
	Name    string `json:"name"`
	Threads int    `json:"threads"`
	Bytes   int    `json:"bytes"`
	// SimUsPerTxn is the end-to-end per-transaction latency; OverheadUs
	// subtracts the single-threaded native transaction, isolating the
	// CVM bridging cost ("fixed latency") each configuration pays.
	SimUsPerTxn float64 `json:"sim_us_per_txn"`
	OverheadUs  float64 `json:"overhead_us"`
}

const (
	binderIters   = 40
	binderPayload = 128
)

var binderThreadCounts = []int{1, 4, 16}

// binderConfig is one bridge configuration of the sweep.
type binderConfig struct {
	name string
	opts anception.Options
}

func binderConfigs() []binderConfig {
	hour := time.Hour // fault detector, not a throughput knob (see concurrency.go)
	base := anception.Options{Mode: anception.ModeAnception, DisableTrace: true, CallDeadline: hour}
	session := base
	session.BinderSessions = true
	pipelined := session
	pipelined.RingDepth = 64
	pipelined.RingWorkers = 1
	pipelined.RingReapBatch = 64
	cached := pipelined
	cached.BinderReplyCache = true
	return []binderConfig{
		{"sync", base},
		{"session", session},
		{"pipelined", pipelined},
		{"cached", cached},
	}
}

// binderMeasure boots one configuration and measures threads concurrent
// apps each issuing binderIters read-only 128-byte transactions to the
// CVM-resident location service, after one warm-up transaction per app
// (which pays proxy enrollment and, with sessions on, the one-time
// session setup — steady state is what the sweep compares).
func binderMeasure(opts anception.Options, threads int) (float64, error) {
	d, err := anception.NewDevice(opts)
	if err != nil {
		return 0, err
	}
	defer d.Close()

	type worker struct {
		proc *anception.Proc
		fd   int
	}
	payload := make([]byte, binderPayload)
	workers := make([]worker, threads)
	for i := range workers {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.binder%02d", i)})
		if err != nil {
			return 0, err
		}
		proc, err := d.Launch(app)
		if err != nil {
			return 0, err
		}
		fd, err := proc.OpenBinder()
		if err != nil {
			return 0, err
		}
		if _, err := proc.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
			return 0, err
		}
		workers[i] = worker{proc, fd}
	}

	start := d.Clock.Now()
	errCh := make(chan error, threads)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w worker) {
			defer wg.Done()
			for n := 0; n < binderIters; n++ {
				if _, err := w.proc.BinderCall(w.fd, "location", android.CodeGetLocation, payload); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	txns := threads * binderIters
	return float64(d.Clock.Now()-start) / float64(txns) / 1e3, nil
}

// binderSingleShot measures one cold transaction of the given payload
// size on a fresh device — the Table I / Section VI-A rows.
func binderSingleShot(mode anception.Mode, bytes int) (float64, error) {
	d, err := anception.NewDevice(anception.Options{Mode: mode, DisableTrace: true})
	if err != nil {
		return 0, err
	}
	p, err := launchBench(d)
	if err != nil {
		return 0, err
	}
	fd, err := p.OpenBinder()
	if err != nil {
		return 0, err
	}
	start := d.Clock.Now()
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, make([]byte, bytes)); err != nil {
		return 0, err
	}
	return float64(d.Clock.Now()-start) / 1e3, nil
}

// binderPinnedRows are the paper-anchored single-shot rows the sweep must
// reproduce byte-for-byte (simulated microseconds): the 12 ms native
// transaction and the uncached bridge's 31.0 -> 31.3 ms at +128 B
// (Section VI-A's +19 ms penalty). Every fast-path knob is opt-in, so
// these never move.
var binderPinnedRows = map[string]float64{
	// entry 0.76 + BinderTransaction 11990 + 142 encoded bytes * 0.02
	"binder128-native": 11993.60,
	// native + CVMPenalty 18700 + 142 * 2.34 (and +270 B encoded at 256)
	"binder128-sync": 31023.04,
	"binder256-sync": 31322.56,
}

// binderRows measures the pinned single-shot rows plus the full sweep.
func binderRows() ([]binderRow, float64, error) {
	var rows []binderRow

	native128, err := binderSingleShot(anception.ModeNative, binderPayload)
	if err != nil {
		return nil, 0, err
	}
	sync128, err := binderSingleShot(anception.ModeAnception, binderPayload)
	if err != nil {
		return nil, 0, err
	}
	sync256, err := binderSingleShot(anception.ModeAnception, 2*binderPayload)
	if err != nil {
		return nil, 0, err
	}
	rows = append(rows,
		binderRow{Name: "binder128-native", Threads: 1, Bytes: binderPayload, SimUsPerTxn: native128},
		binderRow{Name: "binder128-sync", Threads: 1, Bytes: binderPayload, SimUsPerTxn: sync128, OverheadUs: sync128 - native128},
		binderRow{Name: "binder256-sync", Threads: 1, Bytes: 2 * binderPayload, SimUsPerTxn: sync256},
	)
	fmt.Printf("  single-shot: native=%8.2f  sync(+128B)=%8.2f  sync(+256B)=%8.2f sim-us\n",
		native128, sync128, sync256)
	for _, r := range rows {
		want := binderPinnedRows[r.Name]
		if math.Abs(r.SimUsPerTxn-want) > 0.01 {
			return nil, 0, fmt.Errorf("pinned row %s measured %.3f sim-us (want %.3f): the fast path leaked into the uncached bridge", r.Name, r.SimUsPerTxn, want)
		}
	}

	for _, cfg := range binderConfigs() {
		for _, threads := range binderThreadCounts {
			perTxn, err := binderMeasure(cfg.opts, threads)
			if err != nil {
				return nil, 0, fmt.Errorf("%s t=%d: %w", cfg.name, threads, err)
			}
			rows = append(rows, binderRow{
				Name:        fmt.Sprintf("binder128-%s-t%d", cfg.name, threads),
				Threads:     threads,
				Bytes:       binderPayload,
				SimUsPerTxn: perTxn,
				OverheadUs:  perTxn - native128,
			})
			fmt.Printf("  %-10s t=%-2d per-txn=%9.2f sim-us  overhead=%9.2f sim-us\n",
				cfg.name, threads, perTxn, perTxn-native128)
		}
	}
	return rows, native128, nil
}

func binderFind(rows []binderRow, name string) (binderRow, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r, true
		}
	}
	return binderRow{}, false
}

// binderFloors enforces the acceptance criterion: sessioned and pipelined
// transactions must carry at least 5x less fixed latency (overhead over
// the native transaction) than the synchronous 18.7 ms-penalty bridge.
func binderFloors(rows []binderRow) error {
	syncRow, ok1 := binderFind(rows, "binder128-sync-t16")
	sessRow, ok2 := binderFind(rows, "binder128-session-t16")
	pipeRow, ok3 := binderFind(rows, "binder128-pipelined-t16")
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("floor rows missing from sweep")
	}
	sessRatio := syncRow.OverheadUs / sessRow.OverheadUs
	pipeRatio := syncRow.OverheadUs / pipeRow.OverheadUs
	fmt.Printf("  floor: sync overhead %.0f sim-us vs session %.0f (%.1fx) vs pipelined %.0f (%.1fx)\n",
		syncRow.OverheadUs, sessRow.OverheadUs, sessRatio, pipeRow.OverheadUs, pipeRatio)
	if sessRatio < 5 {
		return fmt.Errorf("session fixed latency only %.2fx below the sync bridge (floor: 5x)", sessRatio)
	}
	if pipeRatio < 5 {
		return fmt.Errorf("pipelined fixed latency only %.2fx below the sync bridge (floor: 5x)", pipeRatio)
	}
	if pipeRatio < sessRatio {
		return fmt.Errorf("pipelining lost to plain sessions (%.2fx vs %.2fx): doorbell coalescing is not biting", pipeRatio, sessRatio)
	}
	return nil
}

// binderExp is the -exp binder experiment: the sync vs session vs
// pipelined vs cached sweep, folded into BENCH_redirection.json.
func binderExp() error {
	fmt.Println("== Binder bridge fast path: sync vs session vs pipelined vs cached ==")
	rows, _, err := binderRows()
	if err != nil {
		return err
	}
	if err := binderFloors(rows); err != nil {
		return err
	}
	report, ok := loadBenchReport()
	if ok {
		if err := zcCheckPinned(&report); err != nil {
			return err
		}
	}
	report.Binder = rows
	if err := writeBenchReport(&report); err != nil {
		return err
	}
	fmt.Printf("  folded %d binder rows into %s\n", len(rows), benchJSONFile)
	return nil
}
