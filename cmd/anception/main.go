// Command anception boots a simulated device, installs demo apps, drives
// a short session, and prints the platform state: services per kernel,
// redirection statistics, container memory, and the event trace. It is
// the quickest way to see the trust decomposition working.
//
//	anception                 # boot Anception-based Android
//	anception -mode native    # stock Android for comparison
//	anception -trace          # include the full event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
)

func main() {
	mode := flag.String("mode", "anception", "platform: native, anception, classical")
	showTrace := flag.Bool("trace", false, "dump the event trace")
	flag.Parse()
	if err := run(*mode, *showTrace); err != nil {
		fmt.Fprintln(os.Stderr, "anception:", err)
		os.Exit(1)
	}
}

func run(modeName string, showTrace bool) error {
	var mode anception.Mode
	switch modeName {
	case "native":
		mode = anception.ModeNative
	case "anception":
		mode = anception.ModeAnception
	case "classical":
		mode = anception.ModeClassicalVM
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	d, err := anception.NewDevice(anception.Options{Mode: mode})
	if err != nil {
		return err
	}
	fmt.Printf("booted %s platform\n", d.Opts.Mode)

	printServices := func(label string, svcs *android.Services) {
		if svcs == nil {
			return
		}
		names := svcs.Names()
		sort.Strings(names)
		fmt.Printf("  %-5s services (%2d): %v\n", label, len(names), names)
	}
	printServices("host", d.HostServices)
	printServices("cvm", d.GuestServices)

	// Install and drive a demo app.
	app, err := d.InstallApp(android.AppSpec{
		Package: "com.demo.notes",
		Assets:  map[string][]byte{"seed.txt": []byte("preloaded note")},
	})
	if err != nil {
		return err
	}
	proc, err := d.Launch(app)
	if err != nil {
		return err
	}
	fmt.Printf("launched %s as uid=%d pid=%d on %s\n",
		app.Package, app.UID, proc.Task.PID, proc.Kernel().Name())

	fd, err := proc.Open("notes.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return err
	}
	if _, err := proc.Write(fd, []byte("hello from the demo app")); err != nil {
		return err
	}
	if err := proc.Close(fd); err != nil {
		return err
	}
	bfd, err := proc.OpenBinder()
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := proc.Draw(bfd); err != nil {
			return err
		}
	}
	if _, err := proc.BinderCall(bfd, "location", android.CodeGetLocation, nil); err != nil {
		return err
	}

	fmt.Printf("simulated time elapsed: %v\n", d.Clock.Now())
	if d.Layer != nil {
		s := d.Layer.Stats()
		fmt.Printf("anception layer: redirected=%d host=%d split=%d blocked=%d ui-passthrough=%d binder-bridged=%d\n",
			s.Redirected, s.HostExecuted, s.Split, s.Blocked, s.UIPassthrough, s.BinderBridged)
		in, out := d.CVM.WorldSwitches()
		fmt.Printf("world switches: %d in, %d out\n", in, out)
		m := d.CVMMemory()
		fmt.Printf("cvm memory: %d KB assigned, %d KB active, %d KB free\n",
			m.TotalKB, m.ActiveKB, m.FreeKB)
	}
	if showTrace && d.Trace != nil {
		fmt.Printf("\n--- event trace ---\n%s", d.Trace.Dump())
	}
	return nil
}
