// Package bench is the benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation, plus the design-choice
// ablations DESIGN.md calls out (A1-A5).
//
// Wall-clock numbers measure the simulator; the figures the paper reports
// are *simulated* durations, emitted as custom metrics:
//
//	sim-us/op      simulated microseconds per operation
//	sim-ms/run     simulated milliseconds per workload run
//	relative       Anception score normalized to native (Figure 6)
//
// Run with:  go test -bench=. -benchmem
package bench

import (
	"fmt"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/exploits"
	"anception/internal/marshal"
	"anception/internal/netstack"
	"anception/internal/workloads"
)

// newBenchDevice boots a quiet platform for measurement.
func newBenchDevice(b *testing.B, mode anception.Mode, opts anception.Options) *anception.Device {
	b.Helper()
	opts.Mode = mode
	opts.DisableTrace = true
	d, err := anception.NewDevice(opts)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func launchBenchApp(b *testing.B, d *anception.Device, pkg string) *anception.Proc {
	b.Helper()
	app, err := d.InstallApp(android.AppSpec{Package: pkg})
	if err != nil {
		b.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// simPerOp reports the simulated latency metric.
func simPerOp(b *testing.B, d *anception.Device, start time.Duration) {
	b.Helper()
	elapsed := d.Clock.Now() - start
	b.ReportMetric(float64(elapsed)/float64(b.N)/1e3, "sim-us/op")
}

// --- Table I: ASIM microbenchmark latency -------------------------------

func benchNullCall(b *testing.B, mode anception.Mode) {
	d := newBenchDevice(b, mode, anception.Options{})
	p := launchBenchApp(b, d, "com.bench.null")
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Getpid()
	}
	simPerOp(b, d, start)
}

func BenchmarkTableI_NullCall_Native(b *testing.B)    { benchNullCall(b, anception.ModeNative) }
func BenchmarkTableI_NullCall_Anception(b *testing.B) { benchNullCall(b, anception.ModeAnception) }

func benchWrite4K(b *testing.B, mode anception.Mode, opts anception.Options) {
	d := newBenchDevice(b, mode, opts)
	p := launchBenchApp(b, d, "com.bench.write")
	fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	page := make([]byte, abi.PageSize)
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pwrite(fd, page, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
}

func BenchmarkTableI_Write4K_Native(b *testing.B) {
	benchWrite4K(b, anception.ModeNative, anception.Options{})
}

// The shipped Anception configuration runs with the redirection cache on:
// repeated same-page writes coalesce in the host-side buffer and flush in
// amortized round-trips (DESIGN.md §9).
func BenchmarkTableI_Write4K_Anception(b *testing.B) {
	benchWrite4K(b, anception.ModeAnception, anception.Options{RedirCache: true})
}

// The paper's Table I row: every write pays the full redirected round-trip.
func BenchmarkTableI_Write4K_AnceptionUncached(b *testing.B) {
	benchWrite4K(b, anception.ModeAnception, anception.Options{})
}

func benchRead4K(b *testing.B, mode anception.Mode, opts anception.Options) {
	d := newBenchDevice(b, mode, opts)
	p := launchBenchApp(b, d, "com.bench.read")
	fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Pwrite(fd, make([]byte, abi.PageSize), 0); err != nil {
		b.Fatal(err)
	}
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
}

func BenchmarkTableI_Read4K_Native(b *testing.B) {
	benchRead4K(b, anception.ModeNative, anception.Options{})
}

// The shipped Anception configuration: the warm read is served from the
// host-side page cache without touching the data channel.
func BenchmarkTableI_Read4K_Anception(b *testing.B) {
	benchRead4K(b, anception.ModeAnception, anception.Options{RedirCache: true})
}

// The paper's Table I row: every read pays the full redirected round-trip.
func BenchmarkTableI_Read4K_AnceptionUncached(b *testing.B) {
	benchRead4K(b, anception.ModeAnception, anception.Options{})
}

// BenchmarkPing measures the supervisor heartbeat; the -benchmem allocation
// count is pinned to zero in TestPingZeroAllocs.
func BenchmarkPing(b *testing.B) {
	d := newBenchDevice(b, anception.ModeAnception, anception.Options{})
	if err := d.Layer.Ping(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Layer.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBinder(b *testing.B, mode anception.Mode, payload int) {
	d := newBenchDevice(b, mode, anception.Options{})
	p := launchBenchApp(b, d, "com.bench.binder")
	bfd, err := p.OpenBinder()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, payload)
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, buf); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
}

func BenchmarkTableI_Binder128_Native(b *testing.B)    { benchBinder(b, anception.ModeNative, 128) }
func BenchmarkTableI_Binder128_Anception(b *testing.B) { benchBinder(b, anception.ModeAnception, 128) }
func BenchmarkTableI_Binder256_Native(b *testing.B)    { benchBinder(b, anception.ModeNative, 256) }
func BenchmarkTableI_Binder256_Anception(b *testing.B) { benchBinder(b, anception.ModeAnception, 256) }

// --- Binder bridge fast path (DESIGN.md §12) ------------------------------

// benchBinderOpts measures steady-state bridged binder transactions under
// one fast-path configuration: one warm-up call pays proxy enrollment and
// any one-time session setup, then every measured call is steady state.
func benchBinderOpts(b *testing.B, opts anception.Options) {
	d := newBenchDevice(b, anception.ModeAnception, opts)
	defer d.Close()
	p := launchBenchApp(b, d, "com.bench.binderfast")
	fd, err := p.OpenBinder()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
		b.Fatal(err)
	}
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
	st := d.BinderStats()
	if st.Submitted > 0 {
		b.ReportMetric(float64(st.ReplyHits)/float64(st.Submitted+st.ReplyHits), "reply-hits/op")
	}
}

// The synchronous baseline: the paper's uncached +19 ms bridge.
func BenchmarkBinder_Sync(b *testing.B) {
	benchBinderOpts(b, anception.Options{CallDeadline: time.Hour})
}

// Persistent sessions: pinned guest handle, BinderSessionPerTxn per call.
func BenchmarkBinder_Session(b *testing.B) {
	benchBinderOpts(b, anception.Options{BinderSessions: true, CallDeadline: time.Hour})
}

// Sessions over the async ring: coalesced doorbells take the world-switch
// pair off the fixed cost.
func BenchmarkBinder_SessionRing(b *testing.B) {
	benchBinderOpts(b, anception.Options{
		BinderSessions: true,
		RingDepth:      marshal.DefaultRingDepth,
		RingWorkers:    1,
		RingReapBatch:  marshal.DefaultRingDepth,
		CallDeadline:   time.Hour,
	})
}

// Idempotent reply cache on top: repeated read-only transactions are
// served host-side without a CVM transaction at all.
func BenchmarkBinder_ReplyCache(b *testing.B) {
	benchBinderOpts(b, anception.Options{
		BinderSessions: true, BinderReplyCache: true, CallDeadline: time.Hour,
	})
}

// TestBinderSessionFloor pins the headline number of the binder fast path:
// a sessioned transaction must carry at least 5x less fixed latency
// (overhead over the native transaction) than the synchronous 18.7 ms-
// penalty bridge. Simulated time is deterministic — a model regression
// guard, not a flaky timing test.
func TestBinderSessionFloor(t *testing.T) {
	const iters = 50
	measure := func(mode anception.Mode, opts anception.Options) float64 {
		opts.Mode = mode
		opts.DisableTrace = true
		d, err := anception.NewDevice(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		app, err := d.InstallApp(android.AppSpec{Package: "com.bench.binderfloor"})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := p.OpenBinder()
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 128)
		if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
			t.Fatal(err)
		}
		start := d.Clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := p.BinderCall(fd, "location", android.CodeGetLocation, payload); err != nil {
				t.Fatal(err)
			}
		}
		return float64(d.Clock.Now()-start) / iters
	}
	native := measure(anception.ModeNative, anception.Options{})
	syncUs := measure(anception.ModeAnception, anception.Options{CallDeadline: time.Hour})
	sessUs := measure(anception.ModeAnception, anception.Options{BinderSessions: true, CallDeadline: time.Hour})
	syncOver, sessOver := syncUs-native, sessUs-native
	if speedup := syncOver / sessOver; speedup < 5 {
		t.Fatalf("session fixed latency only %.2fx below the sync bridge (floor: 5x; sync %.0f, session %.0f sim-ns over native)",
			speedup, syncOver, sessOver)
	}
}

// --- Async redirection ring (DESIGN.md §10) -------------------------------

// benchRingWrite4K is benchWrite4K on a ring device, with the worker pool
// shut down when the benchmark ends.
func benchRingWrite4K(b *testing.B, opts anception.Options) {
	d := newBenchDevice(b, anception.ModeAnception, opts)
	defer d.Close()
	p := launchBenchApp(b, d, "com.bench.ring")
	fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	page := make([]byte, abi.PageSize)
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pwrite(fd, page, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
	st := d.Layer.Stats().Ring
	if st.Submitted > 0 {
		b.ReportMetric(float64(st.Doorbells)/float64(st.Submitted), "doorbells/op")
	}
}

// The synchronous baseline for the ring comparison is
// BenchmarkTableI_Write4K_AnceptionUncached: same op, page channel.
func BenchmarkRing_Write4K(b *testing.B) {
	benchRingWrite4K(b, anception.Options{
		RingDepth:   marshal.DefaultRingDepth,
		RingWorkers: 4,
	})
}

// BenchmarkRing_Ping measures the heartbeat through the async ring; the
// allocation count is pinned to zero in TestRingPingZeroAllocs.
func BenchmarkRing_Ping(b *testing.B) {
	d := newBenchDevice(b, anception.ModeAnception, anception.Options{RingDepth: 8, RingWorkers: 1})
	defer d.Close()
	if err := d.Layer.Ping(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Layer.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Zero-copy grants (DESIGN.md §11) -------------------------------------

// grantRingOpts is the shipped bulk configuration: grants over the async
// ring, one SQPOLL-style worker, and a lazy reap cadence (descriptor-only
// slots tolerate it). The hour deadline is the usual fault-detector
// setting for shared-clock measurement.
func grantRingOpts() anception.Options {
	return anception.Options{
		GrantThreshold: 4096,
		RingDepth:      marshal.DefaultRingDepth,
		RingWorkers:    1,
		RingReapBatch:  marshal.DefaultRingDepth,
		CallDeadline:   time.Hour,
	}
}

// benchBulkRead64K measures uncached 64 KiB preads into a reused buffer
// (reuse is what a real grant path pins for).
func benchBulkRead64K(b *testing.B, opts anception.Options) {
	d := newBenchDevice(b, anception.ModeAnception, opts)
	defer d.Close()
	p := launchBenchApp(b, d, "com.bench.grant")
	fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	if _, err := p.Pwrite(fd, buf, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := p.PreadInto(fd, buf, 0); err != nil { // warm the path
		b.Fatal(err)
	}
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PreadInto(fd, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
	if g := d.GrantStats(); g.Calls > 0 {
		b.ReportMetric(float64(g.Bytes)/float64(g.Calls), "granted-B/op")
	}
}

// The copy-path baseline for the grant comparison: same op, chunked
// channel.
func BenchmarkGrant_Read64K_Copy(b *testing.B) {
	benchBulkRead64K(b, anception.Options{CallDeadline: time.Hour})
}

// Grants on the synchronous channel: the payload moves by reference, the
// call still pays both world switches.
func BenchmarkGrant_Read64K(b *testing.B) {
	benchBulkRead64K(b, anception.Options{GrantThreshold: 4096, CallDeadline: time.Hour})
}

// Grants over the async ring: descriptor-only slots ride the inline SQE
// area and the doorbell/dispatch amortization does the rest.
func BenchmarkGrant_Ring_Read64K(b *testing.B) {
	benchBulkRead64K(b, grantRingOpts())
}

// BenchmarkGrant_Writev64K: a 16-segment vectored write granted as one
// batch — one map charge and one shootdown for the whole iovec.
func BenchmarkGrant_Writev64K(b *testing.B) {
	d := newBenchDevice(b, anception.ModeAnception, anception.Options{
		GrantThreshold: 4096, CallDeadline: time.Hour,
	})
	defer d.Close()
	p := launchBenchApp(b, d, "com.bench.grantv")
	fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	iov := make([][]byte, 16)
	for i := range iov {
		iov[i] = make([]byte, 4<<10)
	}
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pwritev(fd, iov, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
	if g := d.GrantStats(); g.Calls > 0 {
		b.ReportMetric(float64(g.Table.Entries)/float64(g.Calls), "grant-entries/op")
	}
}

// TestGrantReadFloor pins the headline number of the zero-copy path: 64
// KiB uncached reads over grants+ring must be at least 5x faster than the
// copy path. Simulated time is deterministic, so this is a model
// regression guard, not a flaky timing test.
func TestGrantReadFloor(t *testing.T) {
	const iters = 100
	measure := func(opts anception.Options) float64 {
		opts.Mode = anception.ModeAnception
		opts.DisableTrace = true
		d, err := anception.NewDevice(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		app, err := d.InstallApp(android.AppSpec{Package: "com.bench.floor"})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := p.Open("bench.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		if _, err := p.Pwrite(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := p.PreadInto(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
		start := d.Clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := p.PreadInto(fd, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return float64(d.Clock.Now()-start) / iters
	}
	copyUs := measure(anception.Options{CallDeadline: time.Hour})
	grantUs := measure(grantRingOpts())
	if speedup := copyUs / grantUs; speedup < 5 {
		t.Fatalf("grant+ring 64K read speedup %.2fx below the 5x floor (copy %.1f, grant %.1f sim-ns/op)",
			speedup, copyUs, grantUs)
	}
}

// --- Figure 6: AnTuTu macrobenchmarks ------------------------------------

func benchWorkload(b *testing.B, mode anception.Mode, w workloads.Workload) {
	var totalSim time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := workloads.MeasureOn(mode, w)
		if err != nil {
			b.Fatal(err)
		}
		totalSim += m.Simulated
	}
	b.ReportMetric(float64(totalSim)/float64(b.N)/1e6, "sim-ms/run")
}

func BenchmarkFigure6_DatabaseIO_Native(b *testing.B) {
	benchWorkload(b, anception.ModeNative, workloads.AnTuTuDatabaseIO())
}
func BenchmarkFigure6_DatabaseIO_Anception(b *testing.B) {
	benchWorkload(b, anception.ModeAnception, workloads.AnTuTuDatabaseIO())
}
func BenchmarkFigure6_2DGraphics_Native(b *testing.B) {
	benchWorkload(b, anception.ModeNative, workloads.AnTuTu2D())
}
func BenchmarkFigure6_2DGraphics_Anception(b *testing.B) {
	benchWorkload(b, anception.ModeAnception, workloads.AnTuTu2D())
}
func BenchmarkFigure6_3DGraphics_Native(b *testing.B) {
	benchWorkload(b, anception.ModeNative, workloads.AnTuTu3D())
}
func BenchmarkFigure6_3DGraphics_Anception(b *testing.B) {
	benchWorkload(b, anception.ModeAnception, workloads.AnTuTu3D())
}

// BenchmarkFigure6_RelativeScores reports the normalized bars of the
// figure directly.
func BenchmarkFigure6_RelativeScores(b *testing.B) {
	suites := []workloads.Workload{
		workloads.AnTuTuDatabaseIO(), workloads.AnTuTu2D(), workloads.AnTuTu3D(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range suites {
			c, err := workloads.Compare(w)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(c.RelativeScore(), w.Name+"-relative")
		}
	}
}

// --- Figure 7: SunSpider --------------------------------------------------

func benchSunSpider(b *testing.B, mode anception.Mode, suite string) {
	w, ok := workloads.SunSpiderWorkload(suite)
	if !ok {
		b.Fatalf("suite %q", suite)
	}
	benchWorkload(b, mode, w)
}

func BenchmarkFigure7_3D_Native(b *testing.B)    { benchSunSpider(b, anception.ModeNative, "3d") }
func BenchmarkFigure7_3D_Anception(b *testing.B) { benchSunSpider(b, anception.ModeAnception, "3d") }
func BenchmarkFigure7_Access_Native(b *testing.B) {
	benchSunSpider(b, anception.ModeNative, "access")
}
func BenchmarkFigure7_Access_Anception(b *testing.B) {
	benchSunSpider(b, anception.ModeAnception, "access")
}
func BenchmarkFigure7_Bitops_Native(b *testing.B) {
	benchSunSpider(b, anception.ModeNative, "bitops")
}
func BenchmarkFigure7_Bitops_Anception(b *testing.B) {
	benchSunSpider(b, anception.ModeAnception, "bitops")
}
func BenchmarkFigure7_Ctrlflow_Native(b *testing.B) {
	benchSunSpider(b, anception.ModeNative, "ctrlflow")
}
func BenchmarkFigure7_Ctrlflow_Anception(b *testing.B) {
	benchSunSpider(b, anception.ModeAnception, "ctrlflow")
}
func BenchmarkFigure7_Math_Native(b *testing.B) { benchSunSpider(b, anception.ModeNative, "math") }
func BenchmarkFigure7_Math_Anception(b *testing.B) {
	benchSunSpider(b, anception.ModeAnception, "math")
}
func BenchmarkFigure7_String_Native(b *testing.B) {
	benchSunSpider(b, anception.ModeNative, "string")
}
func BenchmarkFigure7_String_Anception(b *testing.B) {
	benchSunSpider(b, anception.ModeAnception, "string")
}

// --- Section VI-B: the SQLite row benchmark ------------------------------

func BenchmarkSQLite10KRows_Native(b *testing.B) {
	benchWorkload(b, anception.ModeNative, workloads.SQLiteRowBench())
}
func BenchmarkSQLite10KRows_Anception(b *testing.B) {
	benchWorkload(b, anception.ModeAnception, workloads.SQLiteRowBench())
}

// --- Section VI-C: memory overhead ----------------------------------------

func BenchmarkMemoryOverhead(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := newBenchDevice(b, anception.ModeAnception, anception.Options{})
		for j := 0; j < 23; j++ {
			launchBenchApp(b, d, fmt.Sprintf("com.active%02d", j))
		}
		m := d.CVMMemory()
		b.ReportMetric(float64(m.ActiveKB), "active-KB")
		b.ReportMetric(float64(m.AvailableKB), "available-KB")
		b.ReportMetric(float64(m.FreeKB), "free-KB")
	}
}

// --- Section V-B: the vulnerability study as a regression bench ----------

func BenchmarkVulnerabilityStudy(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := exploits.RunStudy(anception.ModeAnception)
		if err != nil {
			b.Fatal(err)
		}
		s := exploits.Summarize(results)
		b.ReportMetric(float64(s.Failed), "failed")
		b.ReportMetric(float64(s.CVMRoot), "cvm-root")
		b.ReportMetric(float64(s.HostRoot), "host-root")
	}
}

// --- Ablations A1-A5 -------------------------------------------------------

// A1: keep filesystem calls on the host — the 4 KiB write drops back to
// native latency at the cost of ~1.2M privileged kernel lines.
func BenchmarkAblationA1_HostFSWrite(b *testing.B) {
	d := newBenchDevice(b, anception.ModeAnception, anception.Options{KeepFSOnHost: true})
	p := launchBenchApp(b, d, "com.bench.a1")
	fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	page := make([]byte, abi.PageSize)
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pwrite(fd, page, 0); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
}

// A2: chunk-size sweep on a 64 KiB redirected write.
func BenchmarkAblationA2_ChunkSize(b *testing.B) {
	for _, chunk := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("%dB", chunk), func(b *testing.B) {
			d := newBenchDevice(b, anception.ModeAnception, anception.Options{ChunkSize: chunk})
			p := launchBenchApp(b, d, "com.bench.a2")
			fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 64<<10)
			start := d.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pwrite(fd, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			simPerOp(b, d, start)
		})
	}
}

// A3: the naive 4-context-switch proxy dispatch vs the in-kernel wait.
func BenchmarkAblationA3_NaiveDispatch(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "optimized"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			d := newBenchDevice(b, anception.ModeAnception, anception.Options{NaiveDispatch: naive})
			p := launchBenchApp(b, d, "com.bench.a3")
			fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				b.Fatal(err)
			}
			page := make([]byte, abi.PageSize)
			start := d.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pwrite(fd, page, 0); err != nil {
					b.Fatal(err)
				}
			}
			simPerOp(b, d, start)
		})
	}
}

// A4: headless vs full Android stack in the CVM (memory pressure).
func BenchmarkAblationA4_HeadlessMemory(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "headless"
		if full {
			name = "full-stack"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := newBenchDevice(b, anception.ModeAnception, anception.Options{FullCVMStack: full})
				m := d.CVMMemory()
				b.ReportMetric(float64(m.ActiveKB), "active-KB")
			}
		})
	}
}

// A5: the discarded socket/virtio transport vs remapped guest pages.
func BenchmarkAblationA5_Transport(b *testing.B) {
	for _, socket := range []bool{false, true} {
		name := "remapped-pages"
		if socket {
			name = "socket"
		}
		b.Run(name, func(b *testing.B) {
			d := newBenchDevice(b, anception.ModeAnception, anception.Options{SocketTransport: socket})
			p := launchBenchApp(b, d, "com.bench.a5")
			fd, err := p.Open("bench.dat", abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 16*abi.PageSize)
			start := d.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pwrite(fd, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			simPerOp(b, d, start)
		})
	}
}

// --- Section VI-A: the ioctl profile -------------------------------------

func BenchmarkIoctlProfile(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := workloads.RunProfile(anception.ModeAnception)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.AvgIoctlFrac, "ioctl-frac")
		b.ReportMetric(stats.UIIoctlFrac, "ui-ioctl-frac")
	}
}

// --- Real-application session and launch latency ---------------------------

func BenchmarkAppSession_Native(b *testing.B) {
	benchWorkload(b, anception.ModeNative, workloads.InteractiveSession())
}
func BenchmarkAppSession_Anception(b *testing.B) {
	benchWorkload(b, anception.ModeAnception, workloads.InteractiveSession())
}

func benchLaunch(b *testing.B, mode anception.Mode) {
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := workloads.MeasureLaunch(mode)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Latency
	}
	b.ReportMetric(float64(total)/float64(b.N)/1e6, "sim-ms/launch")
}

func BenchmarkAppLaunch_Native(b *testing.B)    { benchLaunch(b, anception.ModeNative) }
func BenchmarkAppLaunch_Anception(b *testing.B) { benchLaunch(b, anception.ModeAnception) }

// CVM memory-size sweep: how many enrolled apps fit per container size —
// the provisioning question behind the paper's 64 MB choice.
func BenchmarkCVMSizeProxyCapacity(b *testing.B) {
	for _, mb := range []int64{32, 64, 128} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := newBenchDevice(b, anception.ModeAnception, anception.Options{
					CVMMemoryBytes: mb << 20,
				})
				launched := 0
				for j := 0; j < 1000; j++ {
					app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.cap%04d", j)})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := d.Launch(app); err != nil {
						break // guest region exhausted: capacity reached
					}
					launched++
				}
				b.ReportMetric(float64(launched), "apps")
				b.ReportMetric(float64(d.CVMMemory().ActiveKB), "active-KB")
			}
		})
	}
}

// --- Network fast path (DESIGN.md §14) ------------------------------------

// benchSockEcho measures one redirected echo round trip — send the
// payload, recv the reply — against a registered simulated remote.
func benchSockEcho(b *testing.B, opts anception.Options, size, respLen int) {
	d := newBenchDevice(b, anception.ModeAnception, opts)
	defer d.Close()
	d.RegisterRemote("echo.bench:80", func(req []byte) []byte {
		if len(req) > 128 {
			return []byte("ok")
		}
		return req
	})
	p := launchBenchApp(b, d, "com.bench.sock")
	fd, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Connect(fd, "echo.bench:80"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, size)
	if _, err := p.Send(fd, payload); err != nil { // warm the path
		b.Fatal(err)
	}
	if _, err := p.Recv(fd, respLen); err != nil {
		b.Fatal(err)
	}
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Send(fd, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Recv(fd, respLen); err != nil {
			b.Fatal(err)
		}
	}
	simPerOp(b, d, start)
	if st := d.NetStats(); st.Submitted > 0 {
		b.ReportMetric(float64(st.RingOps)/float64(st.Submitted), "ring-frac")
	}
}

// The synchronous sockop baseline: generic TLV forwards, two world
// switches per op. evaluate -exp network pins this row uncached.
func BenchmarkSocket_SyncEcho(b *testing.B) {
	benchSockEcho(b, anception.Options{CallDeadline: time.Hour}, 128, 128)
}

// Sockets over the async ring: compact sockop frames in inline slots.
func BenchmarkSocket_RingEcho(b *testing.B) {
	benchSockEcho(b, anception.Options{
		RingDepth:     marshal.DefaultRingDepth,
		RingWorkers:   1,
		RingReapBatch: marshal.DefaultRingDepth,
		CallDeadline:  time.Hour,
	}, 128, 128)
}

// A 64 KiB send moving by grant reference over the ring; the reply is a
// short ack so the outbound leg dominates.
func BenchmarkSocket_GrantSend64K(b *testing.B) {
	benchSockEcho(b, grantRingOpts(), 64<<10, 2)
}

// BenchmarkSocket_AcceptBatch measures the batched accept4 path: each op
// is one wave of DefaultNetBatch loopback connects drained by a single
// epoll_wait plus batched accept4 calls, echoed and closed.
func BenchmarkSocket_AcceptBatch(b *testing.B) {
	d := newBenchDevice(b, anception.ModeAnception, anception.Options{
		RingDepth: marshal.DefaultRingDepth, RingWorkers: 4, CallDeadline: time.Hour,
	})
	defer d.Close()
	srv := launchBenchApp(b, d, "com.bench.srv")
	cli := launchBenchApp(b, d, "com.bench.cli")
	lfd, err := srv.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Bind(lfd, "bench.cvm:9000"); err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen(lfd, 0); err != nil {
		b.Fatal(err)
	}
	epfd, err := srv.EpollCreate()
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.EpollCtl(epfd, 1, lfd); err != nil {
		b.Fatal(err)
	}
	msg := []byte("ping")
	start := d.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fds := make([]int, 0, anception.DefaultNetBatch)
		for j := 0; j < anception.DefaultNetBatch; j++ {
			fd, err := cli.Socket(netstack.AFInet, netstack.SockStream, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := cli.Connect(fd, "bench.cvm:9000"); err != nil {
				b.Fatal(err)
			}
			if _, err := cli.Send(fd, msg); err != nil {
				b.Fatal(err)
			}
			fds = append(fds, fd)
		}
		ready, err := srv.EpollWait(epfd, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, rfd := range ready {
			conns, err := srv.AcceptBatch(rfd, 0)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfd := range conns {
				req, err := srv.Recv(cfd, len(msg))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := srv.Send(cfd, req); err != nil {
					b.Fatal(err)
				}
				if err := srv.Close(cfd); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, fd := range fds {
			if _, err := cli.Recv(fd, len(msg)); err != nil {
				b.Fatal(err)
			}
			if err := cli.Close(fd); err != nil {
				b.Fatal(err)
			}
		}
	}
	simPerOp(b, d, start)
	if st := d.NetStats(); st.Batches > 0 {
		b.ReportMetric(float64(st.BatchedFDs)/float64(st.Batches), "fds/batch")
	}
}

// --- CVM fleet (DESIGN.md §16) ---

// benchFleetMix runs the mixed page/bulk/socket/binder fleet workload
// at a given shard count. Fleet elapsed is the slowest shard's clock,
// so the ops/sim-s metric scales with the shard count (the scaling
// floor itself is enforced by evaluate -exp fleet in CI).
func benchFleetMix(b *testing.B, size int) {
	var last workloads.FleetMixStats
	for i := 0; i < b.N; i++ {
		st, err := workloads.RunFleetMix(workloads.FleetMixConfig{
			FleetSize: size, Apps: 8, OpsPerApp: 16, WarmupOps: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = st
	}
	b.ReportMetric(last.OpsPerSimSec, "ops/sim-s")
	b.ReportMetric(float64(last.Elapsed)/float64(time.Millisecond), "sim-ms/run")
}

func BenchmarkFleetMix_1CVM(b *testing.B) { benchFleetMix(b, 1) }
func BenchmarkFleetMix_4CVM(b *testing.B) { benchFleetMix(b, 4) }

// BenchmarkFleetMigration measures one app migration between two warm
// shards: flush, gate, per-CVM epoch drain, data-directory copy,
// re-enroll, relaunch. Cost is summed across both shard clocks.
func BenchmarkFleetMigration(b *testing.B) {
	f, err := anception.NewFleet(anception.Options{
		FleetSize: 2, RedirCache: true, RingDepth: 64,
		GrantThreshold: 16 << 10, DisableTrace: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	app, err := f.InstallApp(android.AppSpec{Package: "com.bench.mover"})
	if err != nil {
		b.Fatal(err)
	}
	p := app.Proc()
	fd, err := p.Open("state.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Pwrite(fd, make([]byte, abi.PageSize), 0); err != nil {
		b.Fatal(err)
	}
	start := f.Shard(0).Dev.Clock.Now() + f.Shard(1).Dev.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Migrate(app, (app.Shard()+1)%2); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := f.Shard(0).Dev.Clock.Now() + f.Shard(1).Dev.Clock.Now() - start
	b.ReportMetric(float64(elapsed)/float64(b.N)/1e3, "sim-us/op")
}
