module anception

go 1.22
