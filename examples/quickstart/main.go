// Quickstart: boot an Anception platform, install an app, and watch the
// trust decomposition at work — file I/O lands in the container, UI stays
// on the host, and the layer's statistics show the split.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Boot the paper's configuration: trusted host with the UI stack,
	//    64 MB headless container for everything delegable.
	device, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
	if err != nil {
		return err
	}
	fmt.Println("platform:", device.Opts.Mode)

	// 2. Install an app. Its code lands on the host (protected), its
	//    private data directory is created inside the container.
	app, err := device.InstallApp(android.AppSpec{
		Package: "com.example.quickstart",
		Assets:  map[string][]byte{"hello.txt": []byte("packaged asset")},
	})
	if err != nil {
		return err
	}
	fmt.Printf("installed %s with uid %d\n", app.Package, app.UID)

	// 3. Launch it. The redirection entry is set and a proxy with the
	//    app's credentials appears in the container.
	proc, err := device.Launch(app)
	if err != nil {
		return err
	}
	fmt.Printf("launched on the %s kernel; proxy pid %d in the CVM\n",
		proc.Kernel().Name(), device.Proxies.ProxyFor(proc.Task.PID).PID)

	// 4. File I/O: transparently serviced by the container.
	fd, err := proc.Open("journal.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return err
	}
	if _, err := proc.Write(fd, []byte("first entry\n")); err != nil {
		return err
	}
	if err := proc.Close(fd); err != nil {
		return err
	}
	// Prove where the data physically lives.
	root := abi.Cred{UID: abi.UIDRoot}
	if _, err := device.Guest.FS().ReadFile(root, app.Info.DataDir+"/journal.txt"); err == nil {
		fmt.Println("journal.txt exists in the container's filesystem")
	}
	if _, err := device.Host.FS().ReadFile(root, app.Info.DataDir+"/journal.txt"); err != nil {
		fmt.Println("journal.txt does NOT exist on the host:", err)
	}

	// 5. UI: serviced on the host at native speed.
	bfd, err := proc.OpenBinder()
	if err != nil {
		return err
	}
	device.QueueInput(app, []byte("tap@100,200"))
	evt, err := proc.WaitInput(bfd)
	if err != nil {
		return err
	}
	fmt.Printf("received input %q through the host UI stack\n", evt)

	// 6. The layer's routing statistics.
	s := device.Layer.Stats()
	fmt.Printf("layer stats: %d redirected, %d host, %d UI passthrough\n",
		s.Redirected, s.HostExecuted+s.UIPassthrough, s.UIPassthrough)
	fmt.Printf("simulated time: %v\n", device.Clock.Now())
	return nil
}
