// Banking app: the paper's Figure 2 / Listing 1 scenario end to end.
//
// A high-assurance banking app receives the user's password through the
// host-side UI, keeps it only in host-resident memory, and talks to its
// server over an encrypted channel that transits the (untrusted)
// container. Meanwhile a malicious app roots the container via
// GingerBreak and tries to steal the password — and finds only the proxy.
//
//	go run ./examples/bankingapp
package main

import (
	"bytes"
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/exploits"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func xorSeal(data []byte, key byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ key
	}
	return out
}

func run() error {
	device, err := anception.NewDevice(anception.Options{
		Mode:  anception.ModeAnception,
		Vulns: android.AllVulnerabilities(), // the 2011-era device
	})
	if err != nil {
		return err
	}

	// The bank's backend, reachable only through the container's network
	// stack. It records everything it receives, like a wire sniffer in
	// the compromised CVM would.
	var wire [][]byte
	device.RegisterRemote("bank.com:443", func(req []byte) []byte {
		wire = append(wire, append([]byte(nil), req...))
		return []byte("TLS:session-ok")
	})

	// Install the banking app with its pinned certificate packaged in
	// the (host-protected) code.
	bankApp, err := device.InstallApp(android.AppSpec{
		Package: "com.bank.secure",
		Code:    []byte("DEX banking-app CERT:sha256/abcdef"),
	})
	if err != nil {
		return err
	}
	bank, err := device.Launch(bankApp)
	if err != nil {
		return err
	}

	// --- Listing 1, line by line ---
	binderFD, err := bank.OpenBinder() // open /dev/binder (host)
	if err != nil {
		return err
	}
	sockFD, err := bank.Socket(netstack.AFInet, netstack.SockStream, 0) // socket (CVM)
	if err != nil {
		return err
	}
	if err := bank.Connect(sockFD, "bank.com:443"); err != nil { // connect (CVM)
		return err
	}

	// The user types the password; it flows through the host UI stack.
	device.QueueInput(bankApp, []byte("pwd:hunter2"))
	input, err := bank.WaitInput(binderFD) // IOC_WAIT_INPUT_EVT (host)
	if err != nil {
		return err
	}
	fmt.Printf("bank app received input: %q\n", input)

	// Keep the password only in host-resident memory.
	if _, err := bank.PlantSecret(input); err != nil {
		return err
	}

	// Encrypt in user space and send; the CVM relays ciphertext.
	sealed := xorSeal(append(input, []byte(" LOGIN_CMD")...), 0x5A)
	if _, err := bank.Send(sockFD, sealed); err != nil {
		return err
	}
	resp, err := bank.Recv(sockFD, 32)
	if err != nil {
		return err
	}
	fmt.Printf("bank server replied: %q\n", resp)

	// --- Meanwhile, malware roots the container ---
	malApp, err := device.InstallApp(android.AppSpec{Package: "com.free.game"})
	if err != nil {
		return err
	}
	mal, err := device.Launch(malApp)
	if err != nil {
		return err
	}
	exploits.RunGingerBreak(&exploits.Env{Device: device, Mal: mal})

	shells := device.GuestServices.Vold.RootShells()
	if len(shells) == 0 {
		return fmt.Errorf("expected the container to be rooted")
	}
	fmt.Printf("malware obtained a root shell INSIDE the container (guest pid %d)\n", shells[0].PID)

	// The attacker scans the container for the bank app and dumps what it
	// finds: only the proxy, whose memory never held the password.
	attacker := device.LaunchServiceShell(device.Guest, shells[0])
	var stolen bool
	listing, err := attacker.Getdents("/proc")
	if err != nil {
		return err
	}
	for _, entry := range bytes.Split(listing, []byte("\n")) {
		memFD, err := attacker.Open("/proc/"+string(entry)+"/mem", abi.ORdOnly, 0)
		if err != nil {
			continue
		}
		dump, err := attacker.Pread(memFD, 4096, int64(kernel.AddrHeapBase))
		if err == nil && bytes.Contains(dump, []byte("hunter2")) {
			stolen = true
		}
	}
	fmt.Printf("attacker searched every process in the container; password stolen: %v\n", stolen)

	// Nothing on the wire contains plaintext either.
	leaked := false
	for _, msg := range wire {
		if bytes.Contains(msg, []byte("hunter2")) {
			leaked = true
		}
	}
	fmt.Printf("plaintext on the container-relayed wire: %v\n", leaked)
	fmt.Printf("host kernel compromised: %v\n", device.Host.Rooted())

	if stolen || leaked || device.Host.Rooted() {
		return fmt.Errorf("confidentiality violated")
	}
	fmt.Println("\nthe banking app's credentials survived a fully rooted container")
	return nil
}
