// Resilience: the operational story around the container. The CVM is
// crash-only — malware that merely crashes it (the failed CVE-2009-2692
// here) causes a blip, not a compromise. A supervisor watchdog detects the
// outage via heartbeat probes over the data channel and restarts the
// container automatically; apps keep their processes and host-side state,
// the container's persistent storage survives, and a hung (not just dead)
// channel is detected the same way: redirected calls time out at their
// deadline instead of blocking, and the watchdog reboots the CVM. The
// host also firewalls the container's external connectivity.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	device, err := anception.NewDevice(anception.Options{
		Mode:  anception.ModeAnception,
		Vulns: android.AllVulnerabilities(),
	})
	if err != nil {
		return err
	}

	// Splice the fault injector into the data channel and put the
	// container under watchdog supervision.
	inj := supervisor.NewInjector(device.Layer.Transport(), sim.NewRNG(1), device.Clock, device.Trace)
	device.Layer.SetTransport(inj)
	sup := supervisor.New(device, device.Clock, device.Trace, supervisor.Config{
		CriticalServices: []string{"vold"},
		Channel:          inj,
	})

	// Host-controlled firewall over the container's connectivity.
	device.RegisterRemote("updates.example.com:443", func(req []byte) []byte { return []byte("update-ok") })
	device.RegisterRemote("tracker.ads.example:80", func(req []byte) []byte { return []byte("ads") })
	device.SetCVMFirewall(func(cred abi.Cred, addr string) error {
		if addr == "tracker.ads.example:80" {
			return fmt.Errorf("blocked by host policy: %w", abi.ENETUNREACH)
		}
		return nil
	})

	app, err := device.InstallApp(android.AppSpec{Package: "com.sync.agent"})
	if err != nil {
		return err
	}
	proc, err := device.Launch(app)
	if err != nil {
		return err
	}

	// Firewall in action.
	ok, _ := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err := proc.Connect(ok, "updates.example.com:443"); err != nil {
		return err
	}
	fmt.Println("allowed endpoint reachable through the container")
	blocked, _ := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err := proc.Connect(blocked, "tracker.ads.example:80"); err != nil {
		fmt.Println("tracker blocked by the host firewall:", err)
	}

	// Durable state before the incidents.
	fd, err := proc.Open("state.json", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return err
	}
	if _, err := proc.Write(fd, []byte(`{"cursor": 42}`)); err != nil {
		return err
	}
	if err := proc.Close(fd); err != nil {
		return err
	}

	// --- Incident 1: malware crashes the container ---
	// Shellcode stays on the host, so the null dereference only oopses the
	// guest kernel.
	mal, err := device.InstallApp(android.AppSpec{Package: "com.bad.actor"})
	if err != nil {
		return err
	}
	malProc, err := device.Launch(mal)
	if err != nil {
		return err
	}
	_ = malProc.MapFixed(0, 1, kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec)
	sock, _ := malProc.Socket(netstack.AFBluetooth, netstack.SockDgram, 0)
	bait, _ := malProc.Open("bait", abi.ORdWr|abi.OCreat, 0o666)
	_, _ = malProc.Sendfile(sock, bait, abi.PageSize)
	fmt.Println("container crashed:", device.Guest.Panicked())
	fmt.Println("host app still running:", proc.Task.CurrentState())

	// While the container is down, redirected calls fail fast with a clean
	// errno — nothing blocks.
	if _, err := proc.Open("while-down.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		fmt.Println("redirected call during outage:", err)
	}

	// The watchdog notices and restarts the container — no manual step.
	if err := sup.RunUntilHealthy(50); err != nil {
		return err
	}
	fmt.Printf("watchdog recovered the container; MTTR %v (sim time)\n", sup.Stats().LastMTTR)
	fmt.Println("services after restart:", len(device.GuestServices.Names()))

	// --- Incident 2: the data channel wedges (a hang, not a crash) ---
	inj.Wedge()
	if _, err := proc.Open("while-hung.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		fmt.Println("redirected call on the wedged channel:", err)
	}
	if err := sup.RunUntilHealthy(50); err != nil {
		return err
	}
	fmt.Printf("watchdog recovered the wedged channel; MTTR %v (sim time)\n", sup.Stats().LastMTTR)

	// The app resumes on a fresh proxy and its durable state is intact.
	fd2, err := proc.Open("state.json", abi.ORdOnly, 0)
	if err != nil {
		return err
	}
	data, err := proc.Read(fd2, 64)
	if err != nil {
		return err
	}
	fmt.Printf("durable state after both incidents: %s\n", data)

	st := sup.Stats()
	lst := device.Layer.Stats()
	fmt.Printf("supervisor: %d probes, %d failures, %d restarts, mean MTTR %v\n",
		st.Probes, st.ProbeFailures, st.Restarts, st.MeanMTTR())
	fmt.Printf("layer: %d redirected, %d timed out, %d refused while down\n",
		lst.Redirected, lst.TimedOut, lst.HostDown)
	fmt.Printf("total simulated clock time: %v\n", device.Clock.Now())
	return nil
}
