// Resilience: the operational story around the container. The CVM is
// crash-only — malware that merely crashes it (the failed CVE-2009-2692
// here) causes a blip, not a compromise: the host restarts the container,
// apps keep their processes and host-side state, and the container's
// persistent storage survives. The host also firewalls the container's
// external connectivity.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	device, err := anception.NewDevice(anception.Options{
		Mode:  anception.ModeAnception,
		Vulns: android.AllVulnerabilities(),
	})
	if err != nil {
		return err
	}

	// Host-controlled firewall over the container's connectivity.
	device.RegisterRemote("updates.example.com:443", func(req []byte) []byte { return []byte("update-ok") })
	device.RegisterRemote("tracker.ads.example:80", func(req []byte) []byte { return []byte("ads") })
	device.SetCVMFirewall(func(cred abi.Cred, addr string) error {
		if addr == "tracker.ads.example:80" {
			return fmt.Errorf("blocked by host policy: %w", abi.ENETUNREACH)
		}
		return nil
	})

	app, err := device.InstallApp(android.AppSpec{Package: "com.sync.agent"})
	if err != nil {
		return err
	}
	proc, err := device.Launch(app)
	if err != nil {
		return err
	}

	// Firewall in action.
	ok, _ := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err := proc.Connect(ok, "updates.example.com:443"); err != nil {
		return err
	}
	fmt.Println("allowed endpoint reachable through the container")
	blocked, _ := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err := proc.Connect(blocked, "tracker.ads.example:80"); err != nil {
		fmt.Println("tracker blocked by the host firewall:", err)
	}

	// Durable state before the incident.
	fd, err := proc.Open("state.json", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return err
	}
	if _, err := proc.Write(fd, []byte(`{"cursor": 42}`)); err != nil {
		return err
	}
	if err := proc.Close(fd); err != nil {
		return err
	}

	// Malware crashes the container (shellcode stays on the host, so the
	// null dereference only oopses the guest).
	mal, err := device.InstallApp(android.AppSpec{Package: "com.bad.actor"})
	if err != nil {
		return err
	}
	malProc, err := device.Launch(mal)
	if err != nil {
		return err
	}
	_ = malProc.MapFixed(0, 1, kernel.ProtRead|kernel.ProtWrite|kernel.ProtExec)
	sock, _ := malProc.Socket(netstack.AFBluetooth, netstack.SockDgram, 0)
	bait, _ := malProc.Open("bait", abi.ORdWr|abi.OCreat, 0o666)
	_, _ = malProc.Sendfile(sock, bait, abi.PageSize)
	fmt.Println("container crashed:", device.Guest.Panicked())
	fmt.Println("host app still running:", proc.Task.CurrentState())

	// Crash-only recovery.
	if err := device.RestartCVM(); err != nil {
		return err
	}
	fmt.Println("container restarted; services:", len(device.GuestServices.Names()))

	// The app resumes on a fresh proxy and its durable state is intact.
	fd2, err := proc.Open("state.json", abi.ORdOnly, 0)
	if err != nil {
		return err
	}
	data, err := proc.Read(fd2, 64)
	if err != nil {
		return err
	}
	fmt.Printf("durable state after restart: %s\n", data)
	fmt.Printf("simulated downtime cost: %v of clock time\n", device.Clock.Now())
	return nil
}
