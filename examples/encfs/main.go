// Transparent storage encryption: the Section VII extension. An app
// mounts the encrypting layer with a host-resident key and runs its
// database over it unchanged; the container stores — and a rooted
// container sees — only ciphertext.
//
//	go run ./examples/encfs
package main

import (
	"bytes"
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/encfs"
	"anception/internal/minidb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	device, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
	if err != nil {
		return err
	}
	app, err := device.InstallApp(android.AppSpec{Package: "com.health.tracker"})
	if err != nil {
		return err
	}
	proc, err := device.Launch(app)
	if err != nil {
		return err
	}

	// The per-app key ships with the app's host-protected code; the
	// container never sees it.
	key := []byte("host-side-key-16")
	sealed, err := encfs.Mount(proc, key)
	if err != nil {
		return err
	}

	// The app's database runs over the encrypting layer unchanged.
	db, err := minidb.Open(sealed, app.Info.DataDir+"/health.db")
	if err != nil {
		return err
	}
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	records := []string{
		"2026-07-01 heart-rate=61 bp=118/76",
		"2026-07-02 heart-rate=63 bp=121/79",
		"2026-07-03 heart-rate=59 bp=116/75",
	}
	for i, r := range records {
		if err := tx.Insert(int64(i), []byte(r)); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Printf("stored %d health records through the encrypting layer\n", len(records))

	// The app reads its own data back transparently.
	row, err := db.Get(1)
	if err != nil {
		return err
	}
	fmt.Printf("app reads row 1: %q\n", row)

	// A rooted container dumps the raw database file...
	raw, err := device.Guest.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, app.Info.DataDir+"/health.db")
	if err != nil {
		return err
	}
	visible := false
	for _, r := range records {
		if bytes.Contains(raw, []byte(r)) {
			visible = true
		}
	}
	fmt.Printf("container's view of the file: %d bytes, plaintext visible: %v\n", len(raw), visible)
	fmt.Printf("first 32 raw bytes: %x\n", raw[:32])

	if visible {
		return fmt.Errorf("encryption failed")
	}
	fmt.Println("\nthe container services every read and write — and learns nothing")
	return nil
}
