// Cachedio: boot an Anception platform with the redirection cache enabled
// and watch what it does to the hot file-I/O path — repeated reads are
// answered from host-side pages, adjacent writes coalesce into one batched
// round trip, and fsync flushes the write buffer into the container.
//
//	go run ./examples/cachedio
package main

import (
	"fmt"
	"log"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Boot with RedirCache: the paper's decomposition plus the host-side
	//    page cache over redirected descriptors. Security is unchanged —
	//    the cache holds only pages the app itself read or wrote.
	device, err := anception.NewDevice(anception.Options{
		Mode:       anception.ModeAnception,
		RedirCache: true,
	})
	if err != nil {
		return err
	}
	app, err := device.InstallApp(android.AppSpec{Package: "com.example.cachedio"})
	if err != nil {
		return err
	}
	proc, err := device.Launch(app)
	if err != nil {
		return err
	}

	fd, err := proc.Open("hot.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return err
	}

	// 2. Write coalescing: 16 adjacent 4 KB writes merge into a single
	//    dirty extent in the host-side buffer. Once the extent crosses the
	//    read-ahead window the buffer flushes itself in one batched round
	//    trip, so at most one background flush happens during the loop.
	page := make([]byte, abi.PageSize)
	before := device.Clock.Now()
	for i := 0; i < 16; i++ {
		if _, err := proc.Pwrite(fd, page, int64(i)*abi.PageSize); err != nil {
			return err
		}
	}
	fmt.Printf("16 buffered writes: %v simulated (%d coalesced)\n",
		device.Clock.Now()-before, device.Layer.Stats().Cache.CoalescedWrites)

	// 3. Durability on demand: fsync flushes the whole extent in one
	//    batched world-switch pair and the data lands in the container.
	if _, err := proc.Fsync(fd); err != nil {
		return err
	}
	root := abi.Cred{UID: abi.UIDRoot}
	blob, err := device.Guest.FS().ReadFile(root, app.Info.DataDir+"/hot.dat")
	if err != nil {
		return err
	}
	fmt.Printf("after fsync the container holds %d bytes (flushes=%d)\n",
		len(blob), device.Layer.Stats().Cache.Flushes)

	// 4. Read caching: the first read misses and pulls a read-ahead window;
	//    every re-read after that is answered on the host.
	before = device.Clock.Now()
	if _, err := proc.Pread(fd, abi.PageSize, 0); err != nil {
		return err
	}
	cold := device.Clock.Now() - before
	before = device.Clock.Now()
	for i := 0; i < 100; i++ {
		if _, err := proc.Pread(fd, abi.PageSize, 0); err != nil {
			return err
		}
	}
	warm := (device.Clock.Now() - before) / 100
	fmt.Printf("read 4 KB: cold=%v, warm=%v per op\n", cold, warm)

	// 5. The cache's own accounting.
	cs := device.Layer.Stats().Cache
	fmt.Printf("cache stats: hits=%d misses=%d read-ahead=%d coalesced=%d flushes=%d\n",
		cs.Hits, cs.Misses, cs.ReadAheadPages, cs.CoalescedWrites, cs.Flushes)
	fmt.Printf("simulated time: %v\n", device.Clock.Now())
	return nil
}
