// Package sim provides the discrete-event simulation substrate used by the
// Anception reproduction: a virtual clock, a calibrated latency model, a
// deterministic random source, and an event trace.
//
// Every other package charges costs against a Clock instead of sleeping or
// reading wall time, so experiments are exactly reproducible and the
// latency figures reported by the benchmark harness are properties of the
// model, not of the machine running the simulation.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock measured in nanoseconds of simulated time.
// The zero value is a clock at t=0, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock starting at t=0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time since boot.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves simulated time forward by d and returns the new time.
// Negative durations are ignored: time never runs backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Stopwatch measures a span of simulated time on a clock.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartStopwatch begins measuring simulated time on c.
func StartStopwatch(c *Clock) Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the simulated time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return s.clock.Now() - s.start
}

// Microseconds formats a duration as fractional microseconds, the unit the
// paper's Table I uses.
func Microseconds(d time.Duration) string {
	return fmt.Sprintf("%.2f us", float64(d)/float64(time.Microsecond))
}
