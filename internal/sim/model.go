package sim

import "time"

// LatencyModel holds the calibrated cost constants of the simulated device.
//
// The constants in DefaultLatencyModel anchor the *native* column of the
// paper's Table I (Samsung Galaxy Tab 10.1, Android 4.2, Linux 3.4). The
// Anception column of Table I and all macrobenchmark results are not stored
// anywhere: they are derived by the simulator from these anchors plus the
// architecture (number of world switches, 4096-byte chunking, proxy
// dispatch), so shape preservation is a property of the model.
type LatencyModel struct {
	// SyscallEntry is the fixed cost of entering the kernel through the
	// syscall trap, including the ASIM redirection-entry check. The paper
	// measures this via getpid: 0.76 us native and 0.76 us under Anception,
	// i.e. the one-byte RE check is in the noise.
	SyscallEntry time.Duration

	// ASIMCheck is the added cost of inspecting the redirection-entry byte
	// and indexing the alternate syscall table. Deliberately tiny.
	ASIMCheck time.Duration

	// StorageWritePerPage is the native cost of a buffered 4096-byte write
	// hitting the storage stack (Table I: 28.61 us).
	StorageWritePerPage time.Duration
	// StorageReadPerPage is the native cost of a warm 4096-byte read
	// (Table I: 6.51 us).
	StorageReadPerPage time.Duration
	// StorageSyncPerPage is the cost of flushing one dirty page to flash
	// on an explicit sync; it dominates transaction commit latency.
	StorageSyncPerPage time.Duration

	// PathResolvePerComponent is charged per path component during lookup.
	PathResolvePerComponent time.Duration

	// WorldSwitch is the one-way cost of a host<->guest transition on the
	// lguest-style hypervisor (hypercall or injected interrupt plus
	// register state swap).
	WorldSwitch time.Duration
	// ProxyDispatch is the in-guest-kernel cost of waking the sleeping
	// proxy, pointer rewriting, and posting the completed result. The
	// optimized path keeps the proxy waiting in guest kernel space
	// (Section IV-3), saving four context switches.
	ProxyDispatch time.Duration
	// GuestContextSwitch is one guest-side context switch; the naive
	// dispatch path (ablation A3) pays four of these per call.
	GuestContextSwitch time.Duration
	// MarshalPerByte is charged per byte copied into the marshaling
	// buffer in host kernel space (argument and payload encoding).
	MarshalPerByte time.Duration
	// CopyToGuestPerByte is charged per byte moved from the host kernel
	// buffer into remapped guest kernel pages.
	CopyToGuestPerByte time.Duration
	// CopyFromGuestPerByte is charged per byte copied back from guest
	// pages into the host-side result buffer.
	CopyFromGuestPerByte time.Duration
	// ChunkOverhead is the fixed per-chunk cost of the data channel
	// (header setup, ring-slot management). The channel moves fixed-size
	// chunks (footnote 7), 4096 bytes by default.
	ChunkOverhead time.Duration

	// SocketChannelPerByte models the discarded socket/virtio transport
	// prototypes (Section IV-1), which performed extra data copies; used
	// only by ablation A5.
	SocketChannelPerByte time.Duration
	// SocketChannelFixed is the per-message fixed cost of that transport.
	SocketChannelFixed time.Duration

	// BinderTransaction is the native end-to-end latency of a synchronous
	// binder IPC to a privileged service, dominated by the service-side
	// scheduling and handling (Table I: 12 ms for a 128-byte payload).
	BinderTransaction time.Duration
	// BinderPerByte is the native per-byte payload cost of a transaction.
	BinderPerByte time.Duration
	// BinderCVMPenalty is the added fixed latency when the target service
	// has been delegated to the container ("an IPC call to get a GPS fix
	// will return with an added latency of 19 ms", Section VI-A).
	BinderCVMPenalty time.Duration
	// BinderCVMPerByte is the added per-byte cost of bridging a
	// transaction payload across the container boundary (Table I:
	// 31 ms at 128 B vs 31.3 ms at 256 B).
	BinderCVMPerByte time.Duration
	// BinderSessionSetup is the one-time cost of opening a persistent
	// binder session to a CVM-resident service: enrolling the caller's
	// proxy and pinning the guest service handle. It is paid on top of
	// the full BinderCVMPenalty by the first bridged transaction; the
	// uncached single-shot path never pays it, so the paper's
	// 31.0 -> 31.3 ms rows are untouched.
	BinderSessionSetup time.Duration
	// BinderSessionPerTxn is the fixed cost of one bridged transaction
	// on an established session: one world-switch pair plus the pinned
	// dispatch, with no guest name lookup and no cold CVM wakeup. It
	// replaces BinderCVMPenalty for session traffic, which is where the
	// fast path's >= 5x fixed-latency win over the 18.7 ms bridge
	// comes from.
	BinderSessionPerTxn time.Duration

	// UIIoctl is the cost of a UI/Input ioctl serviced by the host-side
	// window manager fast path; identical under Anception because UI
	// calls are never redirected.
	UIIoctl time.Duration

	// CacheLookup is the fixed host-side cost of consulting the
	// redirection cache (hash probe plus bookkeeping). Charged on every
	// cache-served call, hit or buffered write.
	CacheLookup time.Duration
	// CacheHitPerPage is the per-page cost of serving a redirected read
	// from host memory: a memcpy out of the cached page, far below the
	// native storage-stack cost and orders below a container round trip.
	CacheHitPerPage time.Duration
	// CacheWriteBufferPerPage is the per-page cost of appending a
	// redirected write to the host-side coalescing buffer; the container
	// round trip is deferred to the next flush.
	CacheWriteBufferPerPage time.Duration

	// RingSlotOverhead is the fixed host-side cost of claiming one
	// submission-ring slot and publishing its descriptor (sequence
	// bookkeeping plus the SQ tail store). The async ring charges this
	// per *slot* while the two WorldSwitch costs of the synchronous path
	// are charged per *doorbell*: one injected interrupt covers every
	// slot submitted since the last reap, which is where the
	// multi-threaded throughput win comes from.
	RingSlotOverhead time.Duration
	// RingCompletionPost is the guest-side cost of posting one completion
	// into the CQ (slot writeback plus the CQ head store). Like
	// RingSlotOverhead it is per-slot; the Hypercall that reaps the CQ is
	// charged once per batch of completions.
	RingCompletionPost time.Duration

	// GrantMapCost is the fixed cost of one grant-map operation: writing
	// the grant-table entries for an extent and installing the guest-side
	// PTEs as one batched hypervisor update. It is charged per map *call*,
	// not per page — the whole scatter-gather list of a redirected call is
	// installed in a single batch, which is what makes page flipping win
	// over per-byte copying for bulk transfers while losing to the copy
	// path below the threshold.
	GrantMapCost time.Duration
	// GrantUnmapTLBShootdown is the fixed cost of revoking a grant batch:
	// tearing down the guest PTEs plus the TLB-shootdown IPI broadcast
	// that makes the revocation globally visible. One broadcast flushes
	// the whole extent, so this too is per revoke call, not per page.
	GrantUnmapTLBShootdown time.Duration

	// SnapshotFrameCopy is the per-frame cost of copying one dirty 4 KiB
	// frame into the checkpoint image (copy-on-write checkpointing charges
	// only for frames whose version moved since the previous checkpoint).
	SnapshotFrameCopy time.Duration
	// SnapshotCommit is the fixed cost of sealing one checkpoint: pausing
	// the guest long enough to quiesce the dirty-bit scan, checksumming,
	// and publishing the image.
	SnapshotCommit time.Duration
	// SnapshotRestorePerFrame is the per-frame cost of rewriting one frame
	// that diverged from the checkpoint during a restore.
	SnapshotRestorePerFrame time.Duration
	// SnapshotRestoreFixed is the fixed cost of a snapshot restore:
	// checksum verification, channel re-remap, and the world-switch pair
	// that resumes the restored guest. It is what makes restore-path MTTR
	// land orders of magnitude below a cold reboot plus backoff.
	SnapshotRestoreFixed time.Duration

	// NetworkRTT is the simulated round-trip to a remote server (bank).
	NetworkRTT time.Duration
	// NetworkPerByte is the per-byte wire cost.
	NetworkPerByte time.Duration

	// CPUPerUnit converts abstract user-space work units (one unit is
	// roughly one simple arithmetic-plus-memory operation) into time.
	// Calibrated so the SunSpider-like suites land in the paper's
	// hundreds-of-milliseconds range.
	CPUPerUnit time.Duration

	// PageFault is the cost of a minor fault serviced on the host.
	PageFault time.Duration
	// PageRemap is the cost of remapping one page between proxy and app
	// address spaces for memory-mapped file support (Section III-D).
	PageRemap time.Duration

	// SchedulerQuantum is the timer tick interval used by the scheduler
	// model when an app blocks.
	SchedulerQuantum time.Duration
}

// DefaultLatencyModel returns the constants calibrated against the paper's
// native measurements. See DESIGN.md section 5 for the anchoring table.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		SyscallEntry:            760 * time.Nanosecond, // Table I getpid
		ASIMCheck:               2 * time.Nanosecond,
		StorageWritePerPage:     27850 * time.Nanosecond, // +entry = 28.61 us
		StorageReadPerPage:      5750 * time.Nanosecond,  // +entry = 6.51 us
		StorageSyncPerPage:      220 * time.Microsecond,
		PathResolvePerComponent: 150 * time.Nanosecond,

		WorldSwitch:          130 * time.Microsecond,
		ProxyDispatch:        14710 * time.Nanosecond,
		GuestContextSwitch:   9 * time.Microsecond,
		MarshalPerByte:       4 * time.Nanosecond,
		CopyToGuestPerByte:   14 * time.Nanosecond,
		CopyFromGuestPerByte: 4 * time.Nanosecond,
		ChunkOverhead:        2 * time.Microsecond,

		SocketChannelPerByte: 55 * time.Nanosecond,
		SocketChannelFixed:   480 * time.Microsecond,

		BinderTransaction: 11990 * time.Microsecond, // +entry ~= 12 ms
		BinderPerByte:     20 * time.Nanosecond,
		BinderCVMPenalty:  18700 * time.Microsecond, // ~19 ms added
		BinderCVMPerByte:  2340 * time.Nanosecond,   // 31.0 -> 31.3 ms for +128 B

		BinderSessionSetup:  2600 * time.Microsecond,
		BinderSessionPerTxn: 1450 * time.Microsecond, // ~12.9x below the 18.7 ms penalty

		UIIoctl: 95 * time.Microsecond,

		CacheLookup:             250 * time.Nanosecond,
		CacheHitPerPage:         1500 * time.Nanosecond,
		CacheWriteBufferPerPage: 900 * time.Nanosecond,

		RingSlotOverhead:   900 * time.Nanosecond,
		RingCompletionPost: 600 * time.Nanosecond,

		GrantMapCost:           13100 * time.Nanosecond,
		GrantUnmapTLBShootdown: 6400 * time.Nanosecond,

		SnapshotFrameCopy:       400 * time.Nanosecond,
		SnapshotCommit:          30 * time.Microsecond,
		SnapshotRestorePerFrame: 500 * time.Nanosecond,
		SnapshotRestoreFixed:    150 * time.Microsecond,

		NetworkRTT:     38 * time.Millisecond,
		NetworkPerByte: 9 * time.Nanosecond,

		CPUPerUnit: 2 * time.Nanosecond,

		PageFault:        3 * time.Microsecond,
		PageRemap:        1800 * time.Nanosecond,
		SchedulerQuantum: 10 * time.Millisecond,
	}
}

// RedirectFixedCost is the fixed (payload-independent) cost of forwarding
// one system call to the container and collecting the result: two world
// switches plus the in-guest proxy dispatch.
func (m LatencyModel) RedirectFixedCost() time.Duration {
	return 2*m.WorldSwitch + m.ProxyDispatch
}

// NaiveRedirectFixedCost is the fixed cost of the unoptimized dispatch path
// (ablation A3): the proxy is woken in guest user space, costing four extra
// guest context switches per call (Section IV-3).
func (m LatencyModel) NaiveRedirectFixedCost() time.Duration {
	return 2*m.WorldSwitch + m.ProxyDispatch + 4*m.GuestContextSwitch
}
