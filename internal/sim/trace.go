package sim

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind classifies trace events.
type EventKind int

// Event kinds recorded by the tracer.
const (
	EvSyscall EventKind = iota + 1
	EvRedirect
	EvWorldSwitch
	EvBinder
	EvExploit
	EvSecurity
	EvLifecycle
	// EvFault marks a deliberately injected failure (fault drill).
	EvFault
	// EvTimeout marks a redirected call abandoned at its deadline.
	EvTimeout
	// EvWatchdog marks supervisor activity: heartbeat probes, detections,
	// restarts, circuit-breaker transitions.
	EvWatchdog
	// EvCache marks redirection-cache activity: read-ahead fetches,
	// coalesced-write flushes, and invalidations.
	EvCache
	// EvRing marks async ring-transport activity: doorbell injections
	// (one interrupt covering every slot submitted since the last reap),
	// completion reaps, and boot-generation re-arms after a CVM restart.
	EvRing
	// EvGrant marks zero-copy grant-table activity: extent maps, revokes
	// (TLB shootdowns), restart-time revoke-all sweeps, and stale-grant
	// rejections.
	EvGrant
	// EvBinderSession marks binder fast-path activity: persistent-session
	// opens, reply-cache hits and invalidations, and restart-time session
	// drains.
	EvBinderSession
	// EvSnapshot marks hypervisor snapshot/restore activity: periodic
	// copy-on-write checkpoints, restores (with the frame counts that set
	// their cost), checksum rejections, and live-upgrade swaps.
	EvSnapshot
)

// String returns the short label used in trace dumps.
func (k EventKind) String() string {
	switch k {
	case EvSyscall:
		return "syscall"
	case EvRedirect:
		return "redirect"
	case EvWorldSwitch:
		return "worldswitch"
	case EvBinder:
		return "binder"
	case EvExploit:
		return "exploit"
	case EvSecurity:
		return "security"
	case EvLifecycle:
		return "lifecycle"
	case EvFault:
		return "fault"
	case EvTimeout:
		return "timeout"
	case EvWatchdog:
		return "watchdog"
	case EvCache:
		return "cache"
	case EvRing:
		return "ring"
	case EvGrant:
		return "grant"
	case EvBinderSession:
		return "bindersession"
	case EvSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence in the simulation.
type Event struct {
	At   time.Duration
	Kind EventKind
	Msg  string
}

// Trace collects events for inspection by tests, the exploit lab, and the
// CLI. The zero value is a disabled trace that drops events; use NewTrace
// for a recording one. All methods are safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	enabled bool
	clock   *Clock
	events  []Event
	counts  map[EventKind]int
}

// NewTrace returns a recording trace bound to the given clock.
func NewTrace(clock *Clock) *Trace {
	return &Trace{enabled: true, clock: clock, counts: make(map[EventKind]int)}
}

// Record appends an event stamped with the current simulated time.
func (t *Trace) Record(kind EventKind, format string, args ...any) {
	if t == nil || !t.enabled {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{At: t.clock.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)})
	t.counts[kind]++
}

// Count reports how many events of a kind were recorded.
func (t *Trace) Count(kind EventKind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// Events returns a copy of all recorded events in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Matching returns the messages of events whose text contains substr.
func (t *Trace) Matching(substr string) []string {
	var out []string
	for _, e := range t.Events() {
		if strings.Contains(e.Msg, substr) {
			out = append(out, e.Msg)
		}
	}
	return out
}

// Dump renders the trace as one line per event.
func (t *Trace) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%12s %-11s %s\n", e.At, e.Kind, e.Msg)
	}
	return b.String()
}

// Reset discards all recorded events.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.counts = make(map[EventKind]int)
}
