package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(5 * time.Microsecond); got != 5*time.Microsecond {
		t.Fatalf("Advance returned %v, want 5us", got)
	}
	c.Advance(3 * time.Nanosecond)
	if got := c.Now(); got != 5*time.Microsecond+3*time.Nanosecond {
		t.Fatalf("Now() = %v", got)
	}
}

func TestClockIgnoresNegativeAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s (negative advance must be ignored)", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	c := NewClock()
	prev := c.Now()
	f := func(d int32) bool {
		c.Advance(time.Duration(d))
		now := c.Now()
		ok := now >= prev
		prev = now
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	c.Advance(time.Millisecond)
	sw := StartStopwatch(c)
	c.Advance(42 * time.Microsecond)
	if got := sw.Elapsed(); got != 42*time.Microsecond {
		t.Fatalf("Elapsed() = %v, want 42us", got)
	}
}

func TestMicrosecondsFormat(t *testing.T) {
	if got := Microseconds(28610 * time.Nanosecond); got != "28.61 us" {
		t.Fatalf("Microseconds = %q", got)
	}
}

func TestDefaultModelAnchorsTableINative(t *testing.T) {
	m := DefaultLatencyModel()
	// Table I native column: getpid 0.76 us, write 28.61 us, read 6.51 us.
	if got := m.SyscallEntry; got != 760*time.Nanosecond {
		t.Errorf("SyscallEntry = %v, want 760ns", got)
	}
	if got := m.SyscallEntry + m.StorageWritePerPage; got != 28610*time.Nanosecond {
		t.Errorf("native 4096B write = %v, want 28.61us", got)
	}
	if got := m.SyscallEntry + m.StorageReadPerPage; got != 6510*time.Nanosecond {
		t.Errorf("native 4096B read = %v, want 6.51us", got)
	}
}

func TestRedirectFixedCostComposition(t *testing.T) {
	m := DefaultLatencyModel()
	want := 2*m.WorldSwitch + m.ProxyDispatch
	if got := m.RedirectFixedCost(); got != want {
		t.Fatalf("RedirectFixedCost = %v, want %v", got, want)
	}
	if m.NaiveRedirectFixedCost() <= m.RedirectFixedCost() {
		t.Fatal("naive dispatch must cost more than the in-kernel proxy wait")
	}
	if diff := m.NaiveRedirectFixedCost() - m.RedirectFixedCost(); diff != 4*m.GuestContextSwitch {
		t.Fatalf("naive dispatch should add exactly 4 guest context switches, added %v", diff)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint8) bool {
		bound := int(n%100) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGBytesFills(t *testing.T) {
	r := NewRNG(5)
	b := make([]byte, 33)
	r.Bytes(b)
	zero := 0
	for _, x := range b {
		if x == 0 {
			zero++
		}
	}
	if zero > 8 {
		t.Fatalf("suspiciously many zero bytes: %d/33", zero)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	p, c := parent.Uint64(), child.Uint64()
	if p == c {
		t.Fatal("forked stream mirrors parent")
	}
}

func TestTraceRecordsAndCounts(t *testing.T) {
	c := NewClock()
	tr := NewTrace(c)
	tr.Record(EvSyscall, "open %q", "/data/x")
	c.Advance(time.Microsecond)
	tr.Record(EvRedirect, "write fd=%d", 3)
	if got := tr.Count(EvSyscall); got != 1 {
		t.Fatalf("Count(EvSyscall) = %d", got)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len(events) = %d", len(evs))
	}
	if evs[1].At != time.Microsecond {
		t.Fatalf("second event stamped %v, want 1us", evs[1].At)
	}
	if got := tr.Matching("open"); len(got) != 1 {
		t.Fatalf("Matching(open) = %v", got)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Record(EvSyscall, "dropped")
	if tr.Count(EvSyscall) != 0 {
		t.Fatal("nil trace counted an event")
	}
	if tr.Events() != nil {
		t.Fatal("nil trace returned events")
	}
	tr.Reset()
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace(NewClock())
	tr.Record(EvBinder, "txn")
	tr.Reset()
	if tr.Count(EvBinder) != 0 || len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear trace")
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EvSyscall:     "syscall",
		EvRedirect:    "redirect",
		EvWorldSwitch: "worldswitch",
		EvBinder:      "binder",
		EvExploit:     "exploit",
		EvSecurity:    "security",
		EvLifecycle:   "lifecycle",
		EventKind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestTraceDumpContainsKindAndMessage(t *testing.T) {
	tr := NewTrace(NewClock())
	tr.Record(EvSecurity, "blocked ptrace")
	dump := tr.Dump()
	for _, want := range []string{"security", "blocked ptrace"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump() missing %q:\n%s", want, dump)
		}
	}
}
