package sim

// RNG is a small deterministic pseudo-random source (SplitMix64). The
// simulation must be exactly reproducible across runs and platforms, so it
// does not use math/rand's global state or any seed derived from wall time.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0, mirroring math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills b with pseudo-random bytes.
func (r *RNG) Bytes(b []byte) {
	for i := range b {
		if i%8 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(b); j++ {
				b[i+j] = byte(v >> (8 * j))
			}
		}
	}
}

// Fork derives an independent generator; useful for giving each simulated
// app its own stream without cross-coupling the sequences.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
