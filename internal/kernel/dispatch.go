package kernel

import (
	"path"
	"strings"
	"time"

	"anception/internal/abi"
	"anception/internal/netstack"
	"anception/internal/sim"
)

// Args carries the decoded arguments of one system call. Only the fields
// relevant to the call number are meaningful; the struct is shared across
// all calls so the interceptor can marshal uniformly.
type Args struct {
	Nr abi.SyscallNr

	Path  string
	Path2 string

	FD  int
	FD2 int

	Flags abi.OpenFlag
	Mode  abi.FileMode

	// Buf is the data payload: bytes to write/send, or scratch space
	// whose length bounds a read/recv.
	Buf  []byte
	Size int

	// Iov is the scatter-gather vector of the vectored I/O calls
	// (readv/writev/preadv/pwritev): data segments to gather on the write
	// side, scratch segments whose lengths bound the fill on the read
	// side. The segments are independent buffers; a vectored call charges
	// the storage stack once for the total, which is the point of
	// batching over issuing one call per segment.
	Iov [][]byte

	Off    int64
	Whence int

	Request uint32 // ioctl request

	Addr     string // socket address
	Family   netstack.Family
	SockType netstack.SockType
	Proto    int

	Sig       int
	TargetPID int

	UID int
	GID int

	Vaddr uint64
	Pages int
	Prot  int
	Tag   string

	Argv []string
}

// Result is the outcome of one system call.
type Result struct {
	Ret  int64
	Data []byte
	FD   int
	Err  error
}

// Ok reports whether the call succeeded.
func (r Result) Ok() bool { return r.Err == nil }

// Invoke executes one system call on behalf of t, charging simulated time
// and honoring the ASIM redirection hook. This is the patched syscall
// handler of Figure 5: trap entry, RE-byte check, and either the alternate
// (interceptor) table or the local one.
func (k *Kernel) Invoke(t *Task, args Args) Result {
	k.clock.Advance(k.model.SyscallEntry)
	k.countSyscall(args.Nr)
	if k.trace != nil {
		k.trace.Record(sim.EvSyscall, "[%s] pid=%d %s", k.name, t.PID, args.Nr)
	}

	if t.CurrentState() != TaskRunning {
		return k.errResult(abi.ESRCH)
	}

	k.mu.Lock()
	detectors := k.detectors
	interceptor := k.interceptor
	k.mu.Unlock()

	for _, d := range detectors {
		if err := d(t, &args); err != nil {
			if k.trace != nil {
				k.trace.Record(sim.EvSecurity, "[%s] detector vetoed %s from pid=%d: %v", k.name, args.Nr, t.PID, err)
			}
			return k.errResult(err)
		}
	}

	// ASIM: the one-byte redirection entry selects the alternate table.
	if t.RE != 0 && interceptor != nil {
		k.clock.Advance(k.model.ASIMCheck)
		if res, handled := interceptor.Intercept(k, t, &args); handled {
			return res
		}
	}

	return k.dispatchLocal(t, args)
}

// dispatchLocal runs the call against this kernel's own tables. The
// interceptor calls back into this via InvokeLocal for host-class calls.
func (k *Kernel) dispatchLocal(t *Task, args Args) Result {
	switch args.Nr {
	case abi.SysGetpid:
		return Result{Ret: int64(t.PID)}
	case abi.SysGetppid:
		return Result{Ret: int64(t.PPID)}
	case abi.SysGettid:
		return Result{Ret: int64(t.PID)}
	case abi.SysGetuid, abi.SysGeteuid:
		return Result{Ret: int64(t.Cred.UID)}
	case abi.SysGetgid, abi.SysGetegid:
		return Result{Ret: int64(t.Cred.GID)}
	case abi.SysGetcwd:
		return Result{Data: []byte(t.CWD)}
	case abi.SysUmask:
		return k.sysUmask(t, args)
	case abi.SysChdir:
		return k.sysChdir(t, args)
	case abi.SysSetuid:
		return k.sysSetuid(t, args)
	case abi.SysSetgid:
		return k.sysSetgid(t, args)
	case abi.SysClockGettime:
		return Result{Ret: int64(k.clock.Now())}
	case abi.SysNanosleep:
		k.clock.Advance(time.Duration(args.Off))
		return Result{}
	case abi.SysSysinfo, abi.SysUname:
		// CVE-2013-6282 surface: with the unchecked put_user bug, a
		// caller-controlled destination address becomes an arbitrary
		// kernel write in whichever kernel services the call.
		if args.Vaddr != 0 && k.Vulns().PutUserUnchecked {
			k.CompromiseKernel(t, "unchecked put_user kernel write (CVE-2013-6282)")
		}
		return Result{Data: []byte(k.name + "-linux-3.4-anception")}
	case abi.SysPerfEventOpen:
		return k.sysPerfEventOpen(t, args)

	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		return k.sysOpen(t, args)
	case abi.SysClose:
		return k.sysClose(t, args)
	case abi.SysRead:
		return k.sysRead(t, args)
	case abi.SysWrite:
		return k.sysWrite(t, args)
	case abi.SysPread64:
		return k.sysPread(t, args)
	case abi.SysPwrite64:
		return k.sysPwrite(t, args)
	case abi.SysReadv, abi.SysPreadv:
		return k.sysReadv(t, args)
	case abi.SysWritev, abi.SysPwritev:
		return k.sysWritev(t, args)
	case abi.SysLseek:
		return k.sysLseek(t, args)
	case abi.SysStat:
		return k.sysStat(t, args)
	case abi.SysFstat:
		return k.sysFstat(t, args)
	case abi.SysAccess:
		return k.sysAccess(t, args)
	case abi.SysMkdir, abi.SysMkdirat:
		return k.sysMkdir(t, args)
	case abi.SysRmdir:
		return k.sysRmdir(t, args)
	case abi.SysUnlink:
		return k.sysUnlink(t, args)
	case abi.SysRename:
		return k.sysRename(t, args)
	case abi.SysLink:
		return k.sysLink(t, args)
	case abi.SysSymlink:
		return k.sysSymlink(t, args)
	case abi.SysReadlink:
		return k.sysReadlink(t, args)
	case abi.SysChmod, abi.SysFchmod:
		return k.sysChmod(t, args)
	case abi.SysChown, abi.SysFchown:
		return k.sysChown(t, args)
	case abi.SysTruncate, abi.SysFtruncate:
		return k.sysTruncate(t, args)
	case abi.SysGetdents:
		return k.sysGetdents(t, args)
	case abi.SysDup:
		return k.sysDup(t, args)
	case abi.SysDup2:
		return k.sysDup2(t, args)
	case abi.SysPipe:
		return k.sysPipe(t, args)
	case abi.SysFsync, abi.SysSync:
		return k.sysFsync(t, args)
	case abi.SysIoctl:
		return k.sysIoctl(t, args)
	case abi.SysFcntl:
		return Result{} // modeled as a no-op flag twiddle
	case abi.SysSendfile:
		return k.sysSendfile(t, args)
	case abi.SysStatfs:
		return Result{Data: []byte("ext4")}
	case abi.SysMount:
		return k.sysMount(t, args)

	case abi.SysSocket:
		return k.sysSocket(t, args)
	case abi.SysBind:
		return k.sysBind(t, args)
	case abi.SysConnect:
		return k.sysConnect(t, args)
	case abi.SysListen:
		return k.sysListen(t, args)
	case abi.SysAccept:
		return k.sysAccept(t, args)
	case abi.SysAccept4:
		return k.sysAccept4(t, args)
	case abi.SysEpollCreate:
		return k.sysEpollCreate(t, args)
	case abi.SysEpollCtl:
		return k.sysEpollCtl(t, args)
	case abi.SysEpollWait:
		return k.sysEpollWait(t, args)
	case abi.SysSend, abi.SysSendto:
		return k.sysSend(t, args)
	case abi.SysRecv, abi.SysRecvfrom:
		return k.sysRecv(t, args)
	case abi.SysShutdownSk, abi.SysSetsockopt, abi.SysGetsockopt,
		abi.SysGetsockname, abi.SysGetpeername:
		return Result{}

	case abi.SysBrk:
		return k.sysBrk(t, args)
	case abi.SysMmap2:
		return k.sysMmap2(t, args)
	case abi.SysMunmap:
		return k.sysMunmap(t, args)
	case abi.SysMprotect, abi.SysMsync, abi.SysMremap:
		return Result{}

	case abi.SysShmget:
		return k.sysShmget(t, args)
	case abi.SysShmat:
		return k.sysShmat(t, args)
	case abi.SysShmdt:
		return k.sysShmdt(t, args)
	case abi.SysShmctl:
		return k.sysShmctl(t, args)

	case abi.SysFork, abi.SysVfork, abi.SysClone:
		return k.sysFork(t, args)
	case abi.SysExecve:
		return k.sysExecve(t, args)
	case abi.SysExit, abi.SysExitGroup:
		return k.sysExit(t, args)
	case abi.SysWait4:
		return k.sysWait4(t, args)
	case abi.SysKill, abi.SysTgkill:
		return k.sysKill(t, args)
	case abi.SysSigaction:
		t.mu.Lock()
		t.Handlers[args.Sig] = true
		t.mu.Unlock()
		return Result{}
	case abi.SysPause, abi.SysPoll, abi.SysFutex:
		k.clock.Advance(k.model.SchedulerQuantum)
		return Result{}

	case abi.SysPtrace, abi.SysInitModule, abi.SysDeleteModule, abi.SysReboot:
		// Dangerous whole-system calls are denied to apps outright
		// (Section III-D, System Management).
		return k.errResult(abi.EPERM)

	default:
		return k.errResult(abi.ENOSYS)
	}
}

// InvokeLocal lets the interceptor execute a call on this kernel without
// re-entering the redirection check (used for host-class calls and for
// proxy-context execution in the guest).
func (k *Kernel) InvokeLocal(t *Task, args Args) Result {
	k.countSyscall(args.Nr)
	if t.CurrentState() != TaskRunning {
		return k.errResult(abi.ESRCH)
	}
	return k.dispatchLocal(t, args)
}

// absPath resolves p against the task's working directory.
func absPath(t *Task, p string) string {
	if strings.HasPrefix(p, "/") {
		return path.Clean(p)
	}
	return path.Join(t.CWD, p)
}
