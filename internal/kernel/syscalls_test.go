package kernel

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/netstack"
)

// Coverage for the file/metadata syscall surface not exercised by the
// core kernel tests.

func TestCreatTruncatesAndOpensForWrite(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if err := k.FS().WriteFile(abi.Cred{UID: abi.UIDRoot}, "/data/c", []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	res := k.Invoke(task, Args{Nr: abi.SysCreat, Path: "/data/c", Mode: 0o600})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if res2 := k.Invoke(task, Args{Nr: abi.SysWrite, FD: res.FD, Buf: []byte("new")}); !res2.Ok() {
		t.Fatal(res2.Err)
	}
	data, _ := k.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, "/data/c")
	if string(data) != "new" {
		t.Fatalf("creat did not truncate: %q", data)
	}
}

func TestChmodChownFchmodFchown(t *testing.T) {
	k := newTestKernel(t)
	root := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(cred, "/data/perm", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if res := k.Invoke(root, Args{Nr: abi.SysChmod, Path: "/data/perm", Mode: 0o600}); !res.Ok() {
		t.Fatal(res.Err)
	}
	st, _ := k.FS().StatPath(cred, "/data/perm")
	if st.Mode != 0o600 {
		t.Fatalf("mode = %o", st.Mode)
	}
	if res := k.Invoke(root, Args{Nr: abi.SysChown, Path: "/data/perm", UID: 10001, GID: 10001}); !res.Ok() {
		t.Fatal(res.Err)
	}
	st, _ = k.FS().StatPath(cred, "/data/perm")
	if st.UID != 10001 {
		t.Fatalf("uid = %d", st.UID)
	}

	open := k.Invoke(root, Args{Nr: abi.SysOpen, Path: "/data/perm", Flags: abi.ORdOnly})
	if !open.Ok() {
		t.Fatal(open.Err)
	}
	if res := k.Invoke(root, Args{Nr: abi.SysFchmod, FD: open.FD, Mode: 0o640}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(root, Args{Nr: abi.SysFchown, FD: open.FD, UID: 10002, GID: 10002}); !res.Ok() {
		t.Fatal(res.Err)
	}
	st, _ = k.FS().StatPath(cred, "/data/perm")
	if st.Mode != 0o640 || st.UID != 10002 {
		t.Fatalf("after f-variants: %+v", st)
	}
	// f-variants on a bad fd.
	if res := k.Invoke(root, Args{Nr: abi.SysFchmod, FD: 99, Mode: 0o600}); !errors.Is(res.Err, abi.EBADF) {
		t.Fatalf("fchmod bad fd: %v", res.Err)
	}
}

func TestTruncateAndFtruncate(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(cred, "/data/t", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysTruncate, Path: "/data/t", Off: 4}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if d, _ := k.FS().ReadFile(cred, "/data/t"); string(d) != "0123" {
		t.Fatalf("after truncate: %q", d)
	}
	open := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/t", Flags: abi.ORdWr})
	if res := k.Invoke(task, Args{Nr: abi.SysFtruncate, FD: open.FD, Off: 2}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if d, _ := k.FS().ReadFile(cred, "/data/t"); string(d) != "01" {
		t.Fatalf("after ftruncate: %q", d)
	}
}

func TestLinkSymlinkReadlinkSyscalls(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(cred, "/data/orig", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysLink, Path: "/data/orig", Path2: "/data/hard"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysSymlink, Path: "/data/orig", Path2: "/data/soft"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res := k.Invoke(task, Args{Nr: abi.SysReadlink, Path: "/data/soft"})
	if string(res.Data) != "/data/orig" {
		t.Fatalf("readlink = %q", res.Data)
	}
	if d, _ := k.FS().ReadFile(cred, "/data/hard"); string(d) != "x" {
		t.Fatalf("hard link = %q", d)
	}
}

func TestStatfsAndAccessModes(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(task, Args{Nr: abi.SysStatfs, Path: "/data"}); string(res.Data) != "ext4" {
		t.Fatalf("statfs = %q", res.Data)
	}
	app := spawnApp(t, k, 10001)
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(cred, "/data/ro", nil, 0o444); err != nil {
		t.Fatal(err)
	}
	if res := k.Invoke(app, Args{Nr: abi.SysAccess, Path: "/data/ro", Size: abi.AccessRead}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(app, Args{Nr: abi.SysAccess, Path: "/data/ro", Size: abi.AccessWrite}); !errors.Is(res.Err, abi.EACCES) {
		t.Fatalf("write access to 0444: %v", res.Err)
	}
}

func TestSendfileFileToFile(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(cred, "/data/src", []byte("kernel copy"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/src", Flags: abi.ORdOnly})
	dst := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/dst", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o644})
	res := k.Invoke(task, Args{Nr: abi.SysSendfile, FD: dst.FD, FD2: src.FD, Size: 11})
	if res.Ret != 11 {
		t.Fatalf("sendfile = %+v", res)
	}
	if d, _ := k.FS().ReadFile(cred, "/data/dst"); string(d) != "kernel copy" {
		t.Fatalf("dst = %q", d)
	}
	// Sendfile into a pipe-read end is EINVAL.
	pipe := k.Invoke(task, Args{Nr: abi.SysPipe})
	if res := k.Invoke(task, Args{Nr: abi.SysSendfile, FD: int(pipe.Ret), FD2: src.FD, Size: 4}); !errors.Is(res.Err, abi.EINVAL) {
		t.Fatalf("sendfile to pipe: %v", res.Err)
	}
}

func TestMountRequiresRoot(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	if res := k.Invoke(app, Args{Nr: abi.SysMount}); !errors.Is(res.Err, abi.EPERM) {
		t.Fatalf("app mount: %v", res.Err)
	}
	rootTask := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(rootTask, Args{Nr: abi.SysMount}); !res.Ok() {
		t.Fatal(res.Err)
	}
}

func TestOpenatAndMkdirat(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(task, Args{Nr: abi.SysMkdirat, Path: "/data/atdir", Mode: 0o755}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res := k.Invoke(task, Args{Nr: abi.SysOpenat, Path: "/data/atdir/f", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o600})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
}

func TestProcfsMapsShowsVMAs(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	if err := app.AS.MapFixed(0x40000000, 2, ProtRead|ProtExec, VMACode, "libfoo.so"); err != nil {
		t.Fatal(err)
	}
	res := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/proc/self/maps", Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 1024)
	res = k.Invoke(app, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf})
	if !strings.Contains(string(res.Data), "libfoo.so") || !strings.Contains(string(res.Data), "r-x") {
		t.Fatalf("maps = %q", res.Data)
	}
}

func TestNanosleepAdvancesClock(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	before := k.Clock().Now()
	k.Invoke(app, Args{Nr: abi.SysNanosleep, Off: 5_000_000}) // 5ms
	if elapsed := k.Clock().Now() - before; elapsed < 5_000_000 {
		t.Fatalf("nanosleep advanced only %v", elapsed)
	}
}

func TestUnameAndSysinfo(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	res := k.Invoke(app, Args{Nr: abi.SysUname})
	if !bytes.Contains(res.Data, []byte("linux-3.4")) {
		t.Fatalf("uname = %q", res.Data)
	}
}

func TestSocketpairStubsSucceed(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	for _, nr := range []abi.SyscallNr{abi.SysSetsockopt, abi.SysGetsockopt, abi.SysShutdownSk, abi.SysGetsockname, abi.SysGetpeername} {
		sock := k.Invoke(app, Args{Nr: abi.SysSocket, Family: netstack.AFInet, SockType: netstack.SockStream})
		if res := k.Invoke(app, Args{Nr: nr, FD: sock.FD}); !res.Ok() {
			t.Fatalf("%v: %v", nr, res.Err)
		}
	}
}

func TestReadOnSocketFD(t *testing.T) {
	k := newTestKernel(t)
	k.Net().RegisterRemote("r:1", func(req []byte) []byte { return []byte("pong") })
	app := spawnApp(t, k, 10001)
	sock := k.Invoke(app, Args{Nr: abi.SysSocket, Family: netstack.AFInet, SockType: netstack.SockStream})
	if res := k.Invoke(app, Args{Nr: abi.SysConnect, FD: sock.FD, Addr: "r:1"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(app, Args{Nr: abi.SysSend, FD: sock.FD, Buf: []byte("ping")}); !res.Ok() {
		t.Fatal(res.Err)
	}
	// read(2) on a socket behaves like recv.
	buf := make([]byte, 8)
	res := k.Invoke(app, Args{Nr: abi.SysRead, FD: sock.FD, Buf: buf})
	if string(res.Data) != "pong" {
		t.Fatalf("read on socket = %q", res.Data)
	}
	// write(2) on a socket behaves like send.
	if res := k.Invoke(app, Args{Nr: abi.SysWrite, FD: sock.FD, Buf: []byte("more")}); !res.Ok() {
		t.Fatal(res.Err)
	}
}

func TestFsyncChargesPerDirtyPage(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	open := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/sync", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o600})
	k.Invoke(task, Args{Nr: abi.SysWrite, FD: open.FD, Buf: make([]byte, 3*abi.PageSize)})
	before := k.Clock().Now()
	res := k.Invoke(task, Args{Nr: abi.SysFsync, FD: open.FD})
	if res.Ret < 3 {
		t.Fatalf("flushed %d pages", res.Ret)
	}
	elapsed := k.Clock().Now() - before
	want := k.Model().SyscallEntry + timesDuration(int(res.Ret), k.Model().StorageSyncPerPage)
	if elapsed != want {
		t.Fatalf("fsync cost %v, want %v", elapsed, want)
	}
	// Second fsync: nothing dirty, near-free.
	res = k.Invoke(task, Args{Nr: abi.SysFsync, FD: open.FD})
	if res.Ret != 0 {
		t.Fatalf("second fsync flushed %d", res.Ret)
	}
}

func TestShmWithinOneKernel(t *testing.T) {
	k := newTestKernel(t)
	a := spawnApp(t, k, 10001)
	b := spawnApp(t, k, 10001)
	get := k.Invoke(a, Args{Nr: abi.SysShmget, Size: 42, Pages: 1})
	if !get.Ok() {
		t.Fatal(get.Err)
	}
	atA := k.Invoke(a, Args{Nr: abi.SysShmat, FD: int(get.Ret)})
	atB := k.Invoke(b, Args{Nr: abi.SysShmat, FD: int(get.Ret)})
	if !atA.Ok() || !atB.Ok() {
		t.Fatal(atA.Err, atB.Err)
	}
	if err := a.AS.WriteBytes(k.Region(), uint64(atA.Ret), []byte("via-a")); err != nil {
		t.Fatal(err)
	}
	got, err := b.AS.ReadBytes(k.Region(), uint64(atB.Ret), 5)
	if err != nil || string(got) != "via-a" {
		t.Fatalf("b sees %q, %v", got, err)
	}
	if k.ShmSegments() != 1 {
		t.Fatalf("segments = %d", k.ShmSegments())
	}
}
