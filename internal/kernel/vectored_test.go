package kernel

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
)

// Coverage for the vectored I/O surface: readv/writev/preadv/pwritev.

func openVecFile(t *testing.T, k *Kernel, task *Task, path string) int {
	t.Helper()
	res := k.Invoke(task, Args{Nr: abi.SysOpen, Path: path, Flags: abi.ORdWr | abi.OCreat, Mode: 0o600})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	return res.FD
}

func TestWritevReadvGatherScatter(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	fd := openVecFile(t, k, task, "/data/vec")

	res := k.Invoke(task, Args{Nr: abi.SysWritev, FD: fd,
		Iov: [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")}})
	if !res.Ok() || res.Ret != 16 {
		t.Fatalf("writev: ret=%d err=%v", res.Ret, res.Err)
	}

	// The cursor advanced past the gathered vector; rewind and scatter it
	// back out across unequal segments.
	if res := k.Invoke(task, Args{Nr: abi.SysLseek, FD: fd, Off: 0, Whence: abi.SeekSet}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res = k.Invoke(task, Args{Nr: abi.SysReadv, FD: fd,
		Iov: [][]byte{make([]byte, 2), make([]byte, 9), make([]byte, 5)}})
	if !res.Ok() || res.Ret != 16 {
		t.Fatalf("readv: ret=%d err=%v", res.Ret, res.Err)
	}
	if !bytes.Equal(res.Data, []byte("alpha-beta-gamma")) {
		t.Fatalf("readv data = %q", res.Data)
	}
}

func TestPreadvPwritevArePositioned(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	fd := openVecFile(t, k, task, "/data/pvec")

	if res := k.Invoke(task, Args{Nr: abi.SysWrite, FD: fd, Buf: make([]byte, 32)}); !res.Ok() {
		t.Fatal(res.Err)
	}
	// Segments land contiguously starting at the explicit offset.
	res := k.Invoke(task, Args{Nr: abi.SysPwritev, FD: fd, Off: 8,
		Iov: [][]byte{[]byte("AB"), []byte("CD")}})
	if !res.Ok() || res.Ret != 4 {
		t.Fatalf("pwritev: ret=%d err=%v", res.Ret, res.Err)
	}
	res = k.Invoke(task, Args{Nr: abi.SysPreadv, FD: fd, Off: 8,
		Iov: [][]byte{make([]byte, 3), make([]byte, 1)}})
	if !res.Ok() || res.Ret != 4 || !bytes.Equal(res.Data, []byte("ABCD")) {
		t.Fatalf("preadv: ret=%d data=%q err=%v", res.Ret, res.Data, res.Err)
	}

	// Positioned vectored I/O must not move the cursor (it was at 32).
	res = k.Invoke(task, Args{Nr: abi.SysLseek, FD: fd, Off: 0, Whence: abi.SeekCur})
	if !res.Ok() || res.Ret != 32 {
		t.Fatalf("cursor after preadv/pwritev: %d", res.Ret)
	}
}

func TestReadvShortAtEOF(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	fd := openVecFile(t, k, task, "/data/short")
	if res := k.Invoke(task, Args{Nr: abi.SysPwrite64, FD: fd, Buf: []byte("12345"), Off: 0}); !res.Ok() {
		t.Fatal(res.Err)
	}
	// 5 bytes available, 8 requested across two segments: short count,
	// not an error.
	res := k.Invoke(task, Args{Nr: abi.SysPreadv, FD: fd, Off: 0,
		Iov: [][]byte{make([]byte, 4), make([]byte, 4)}})
	if !res.Ok() || res.Ret != 5 || !bytes.Equal(res.Data, []byte("12345")) {
		t.Fatalf("short preadv: ret=%d data=%q err=%v", res.Ret, res.Data, res.Err)
	}
}

func TestVectoredInvalidCases(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	fd := openVecFile(t, k, task, "/data/inv")

	// Empty vectors are EINVAL on all four calls.
	for _, nr := range []abi.SyscallNr{abi.SysReadv, abi.SysWritev, abi.SysPreadv, abi.SysPwritev} {
		if res := k.Invoke(task, Args{Nr: nr, FD: fd}); !errors.Is(res.Err, abi.EINVAL) {
			t.Fatalf("nr %d with empty iov: %v", nr, res.Err)
		}
	}
	// Unknown descriptors are EBADF.
	iov := [][]byte{make([]byte, 4)}
	if res := k.Invoke(task, Args{Nr: abi.SysReadv, FD: 99, Iov: iov}); !errors.Is(res.Err, abi.EBADF) {
		t.Fatalf("readv bad fd: %v", res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysWritev, FD: 99, Iov: iov}); !errors.Is(res.Err, abi.EBADF) {
		t.Fatalf("writev bad fd: %v", res.Err)
	}
}

func TestVectoredOnPipe(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	res := k.Invoke(task, Args{Nr: abi.SysPipe})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	rfd, wfd := int(res.Ret), res.FD

	if res := k.Invoke(task, Args{Nr: abi.SysWritev, FD: wfd,
		Iov: [][]byte{[]byte("pi"), []byte("pe")}}); !res.Ok() || res.Ret != 4 {
		t.Fatalf("writev on pipe: ret=%d err=%v", res.Ret, res.Err)
	}
	got := k.Invoke(task, Args{Nr: abi.SysReadv, FD: rfd,
		Iov: [][]byte{make([]byte, 4)}})
	if !got.Ok() || !bytes.Equal(got.Data, []byte("pipe")) {
		t.Fatalf("readv on pipe: data=%q err=%v", got.Data, got.Err)
	}
	// Positioned variants require a regular file.
	if res := k.Invoke(task, Args{Nr: abi.SysPreadv, FD: rfd,
		Iov: [][]byte{make([]byte, 4)}}); !errors.Is(res.Err, abi.EBADF) {
		t.Fatalf("preadv on pipe: %v", res.Err)
	}
}
