package kernel

import (
	"time"

	"anception/internal/abi"
	"anception/internal/sim"
)

// timesDuration multiplies a per-unit cost without overflow surprises.
func timesDuration(n int, per time.Duration) time.Duration {
	return time.Duration(n) * per
}

func (k *Kernel) sysUmask(t *Task, args Args) Result {
	t.mu.Lock()
	old := t.Umask
	t.Umask = args.Mode
	t.mu.Unlock()
	return Result{Ret: int64(old)}
}

func (k *Kernel) sysChdir(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	st, err := k.fs.StatPath(t.Cred, p)
	if err != nil {
		return k.errResult(err)
	}
	if st.Type.String() != "d" {
		return k.errResult(abi.ENOTDIR)
	}
	t.mu.Lock()
	t.CWD = p
	t.mu.Unlock()
	return Result{}
}

func (k *Kernel) sysSetuid(t *Task, args Args) Result {
	// Only root may change UID (the simplified Linux rule that matters
	// for the Android model).
	if !t.Cred.Root() && t.Cred.UID != args.UID {
		return k.errResult(abi.EPERM)
	}
	t.mu.Lock()
	t.Cred.UID = args.UID
	t.mu.Unlock()
	return Result{}
}

func (k *Kernel) sysSetgid(t *Task, args Args) Result {
	if !t.Cred.Root() && t.Cred.GID != args.GID {
		return k.errResult(abi.EPERM)
	}
	t.mu.Lock()
	t.Cred.GID = args.GID
	t.mu.Unlock()
	return Result{}
}

func (k *Kernel) sysFork(t *Task, _ Args) Result {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	child := newTask(pid, t.PID, t.Cred, t.Comm)
	child.Cred.PID = pid
	child.CWD = t.CWD
	child.Umask = t.Umask
	child.RE = t.RE
	child.ExecPath = t.ExecPath
	k.tasks[pid] = child
	k.mu.Unlock()

	// Duplicate the descriptor table (sharing open file descriptions).
	for fd, e := range t.FDs() {
		dup := *e
		child.InstallFDAt(fd, &dup)
	}

	if t.AS != nil {
		as, err := t.AS.Clone(k.alloc, pid, k.Region())
		if err != nil {
			k.mu.Lock()
			delete(k.tasks, pid)
			k.mu.Unlock()
			return k.errResult(err)
		}
		child.AS = as
	}

	if k.trace != nil {
		k.trace.Record(sim.EvLifecycle, "[%s] fork pid=%d -> child=%d", k.name, t.PID, pid)
	}
	return Result{Ret: int64(pid)}
}

func (k *Kernel) sysExecve(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	if err := k.fs.CheckAccess(t.Cred, p, abi.AccessExec|abi.AccessRead); err != nil {
		return k.errResult(err)
	}
	t.mu.Lock()
	t.ExecPath = p
	t.Comm = baseName(p)
	t.mu.Unlock()
	if k.trace != nil {
		k.trace.Record(sim.EvLifecycle, "[%s] exec pid=%d %s", k.name, t.PID, p)
	}
	return Result{}
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

func (k *Kernel) sysExit(t *Task, args Args) Result {
	t.mu.Lock()
	t.ExitCode = int(args.Size)
	t.mu.Unlock()
	t.SetState(TaskZombie)
	if t.AS != nil {
		t.AS.Release()
	}
	if k.trace != nil {
		k.trace.Record(sim.EvLifecycle, "[%s] exit pid=%d code=%d", k.name, t.PID, args.Size)
	}
	return Result{}
}

func (k *Kernel) sysWait4(t *Task, args Args) Result {
	k.mu.Lock()
	defer k.mu.Unlock()
	for pid, child := range k.tasks {
		if child.PPID != t.PID {
			continue
		}
		if args.TargetPID > 0 && pid != args.TargetPID {
			continue
		}
		if child.CurrentState() == TaskZombie {
			child.SetState(TaskDead)
			delete(k.tasks, pid)
			return Result{Ret: int64(pid), Data: []byte{byte(child.ExitCode)}}
		}
	}
	return k.errResult(abi.ECHILD)
}

func (k *Kernel) sysKill(t *Task, args Args) Result {
	k.mu.Lock()
	target := k.tasks[args.TargetPID]
	k.mu.Unlock()
	if target == nil || target.CurrentState() != TaskRunning {
		return k.errResult(abi.ESRCH)
	}
	if !t.Cred.Root() && t.Cred.UID != target.Cred.UID {
		return k.errResult(abi.EPERM)
	}
	switch args.Sig {
	case abi.SIGKILL:
		target.SetState(TaskDead)
		if target.AS != nil {
			target.AS.Release()
		}
	default:
		target.DeliverSignal(args.Sig)
	}
	if k.trace != nil {
		k.trace.Record(sim.EvLifecycle, "[%s] kill pid=%d sig=%d by=%d", k.name, args.TargetPID, args.Sig, t.PID)
	}
	return Result{}
}
