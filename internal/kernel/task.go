package kernel

import (
	"sync"

	"anception/internal/abi"
	"anception/internal/netstack"
	"anception/internal/vfs"
)

// TaskState is the lifecycle state of a task.
type TaskState int

// Task states.
const (
	TaskRunning TaskState = iota + 1
	TaskZombie
	TaskDead
)

// String names the state as ps would.
func (s TaskState) String() string {
	switch s {
	case TaskRunning:
		return "R"
	case TaskZombie:
		return "Z"
	case TaskDead:
		return "X"
	default:
		return "?"
	}
}

// FDKind distinguishes what a file descriptor refers to.
type FDKind int

// FD kinds.
const (
	FDFile FDKind = iota + 1
	FDSocket
	FDPipeRead
	FDPipeWrite
	// FDRemote marks a descriptor whose real object lives in the CVM
	// proxy; the Anception interceptor owns all operations on it and the
	// local kernel never dereferences it.
	FDRemote
	// FDProcMem is an open /proc/<pid>/mem handle.
	FDProcMem
	// FDEpoll is an epoll instance watching socket readiness.
	FDEpoll
)

// FDEntry is one slot of a task's descriptor table.
type FDEntry struct {
	Kind    FDKind
	File    *vfs.File
	Sock    *netstack.Socket
	Pipe    *Pipe
	Epoll   *Epoll // valid for FDEpoll
	GuestFD int    // valid for FDRemote
	Target  *Task  // valid for FDProcMem
	Path    string // diagnostic: what was opened
}

// Pipe is an in-kernel unidirectional byte queue.
type Pipe struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
}

// Write appends data; EPIPE once the read end is gone.
func (p *Pipe) Write(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, abi.EPIPE
	}
	p.buf = append(p.buf, data...)
	return len(data), nil
}

// Read drains up to len(buf) bytes; EAGAIN when empty.
func (p *Pipe) Read(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		if p.closed {
			return 0, nil
		}
		return 0, abi.EAGAIN
	}
	n := copy(buf, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

// Close marks the pipe closed.
func (p *Pipe) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
}

// Task is the simulated task_struct. The RE field is Anception's one-byte
// redirection entry (Section IV-2): when non-zero, the patched syscall
// handler consults the alternate, interceptor-backed table.
type Task struct {
	mu sync.Mutex

	PID  int
	PPID int
	Comm string

	Cred  abi.Cred
	Umask abi.FileMode
	CWD   string

	// RE is the redirection entry byte checked by ASIM on every call.
	RE byte

	fds    map[int]*FDEntry
	nextFD int

	AS *AddressSpace

	State    TaskState
	ExitCode int
	ExecPath string

	// Pending holds delivered-but-unhandled signal numbers.
	Pending []int
	// Handlers records signal numbers with registered handlers.
	Handlers map[int]bool

	// Shadow is opaque state the Anception layer attaches (the proxy
	// binding). The kernel never interprets it.
	Shadow any
}

func newTask(pid, ppid int, cred abi.Cred, comm string) *Task {
	return &Task{
		PID:      pid,
		PPID:     ppid,
		Comm:     comm,
		Cred:     cred,
		Umask:    0o022,
		CWD:      "/",
		fds:      make(map[int]*FDEntry),
		nextFD:   3, // 0,1,2 notionally reserved for stdio
		State:    TaskRunning,
		Handlers: make(map[int]bool),
	}
}

// InstallFD places an entry at the next free descriptor and returns it.
func (t *Task) InstallFD(e *FDEntry) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd := t.nextFD
	t.nextFD++
	t.fds[fd] = e
	return fd
}

// InstallFDAt places an entry at an explicit descriptor (dup2).
func (t *Task) InstallFDAt(fd int, e *FDEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fds[fd] = e
	if fd >= t.nextFD {
		t.nextFD = fd + 1
	}
}

// FD returns the entry for fd, or nil.
func (t *Task) FD(fd int) *FDEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fds[fd]
}

// CloseFD removes the descriptor and returns its entry, or nil.
func (t *Task) CloseFD(fd int) *FDEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.fds[fd]
	delete(t.fds, fd)
	return e
}

// FDs returns a snapshot of the descriptor table.
func (t *Task) FDs() map[int]*FDEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]*FDEntry, len(t.fds))
	for k, v := range t.fds {
		out[k] = v
	}
	return out
}

// SetState transitions the lifecycle state.
func (t *Task) SetState(s TaskState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.State = s
}

// CurrentState returns the lifecycle state.
func (t *Task) CurrentState() TaskState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.State
}

// DeliverSignal queues a signal on the task.
func (t *Task) DeliverSignal(sig int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Pending = append(t.Pending, sig)
}

// TakeSignals drains pending signals.
func (t *Task) TakeSignals() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.Pending
	t.Pending = nil
	return out
}
