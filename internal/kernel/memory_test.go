package kernel

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"anception/internal/abi"
)

func TestPhysicalAllocFree(t *testing.T) {
	phys := NewPhysical(1 << 20) // 256 frames
	if phys.TotalFrames() != 256 {
		t.Fatalf("frames = %d", phys.TotalFrames())
	}
	alloc := phys.NewAllocator("host", Region{})
	f, err := alloc.Alloc(42)
	if err != nil {
		t.Fatal(err)
	}
	owner := phys.Owner(f)
	if owner.Kind != FrameProcess || owner.PID != 42 || owner.Kernel != "host" {
		t.Fatalf("owner = %+v", owner)
	}
	if err := alloc.Free(f); err != nil {
		t.Fatal(err)
	}
	if phys.Owner(f).Kind != FrameFree {
		t.Fatal("frame not freed")
	}
}

func TestReserveRegionConfinesGuest(t *testing.T) {
	phys := NewPhysical(1 << 20)
	region, err := phys.ReserveRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	if region.Frames() != 64 {
		t.Fatalf("region = %+v", region)
	}
	guest := phys.NewAllocator("cvm", region)
	for i := 0; i < 64; i++ {
		if _, err := guest.Alloc(1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := guest.Alloc(1); !errors.Is(err, abi.ENOMEM) {
		t.Fatalf("65th guest alloc: %v, want ENOMEM", err)
	}
}

func TestGuestCannotTouchHostFrames(t *testing.T) {
	phys := NewPhysical(1 << 20)
	region, err := phys.ReserveRegion(16)
	if err != nil {
		t.Fatal(err)
	}
	host := phys.NewAllocator("host", Region{})
	hostFrame, err := host.Alloc(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := phys.WriteFrame(Region{}, hostFrame, 0, []byte("host secret")); err != nil {
		t.Fatal(err)
	}

	// A guest-confined accessor must be rejected on host frames.
	if err := phys.ReadFrame(region, hostFrame, 0, make([]byte, 4)); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest read of host frame: %v, want EPERM", err)
	}
	if err := phys.WriteFrame(region, hostFrame, 0, []byte("own3d")); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest write of host frame: %v, want EPERM", err)
	}

	// The unconfined (host) accessor works.
	buf := make([]byte, 11)
	if err := phys.ReadFrame(Region{}, hostFrame, 0, buf); err != nil || string(buf) != "host secret" {
		t.Fatalf("host read: %q, %v", buf, err)
	}
}

// Property: for any interleaving of guest allocations, every frame the
// guest ever receives lies inside its reserved region.
func TestGuestAllocationConfinementProperty(t *testing.T) {
	phys := NewPhysical(4 << 20)
	region, err := phys.ReserveRegion(128)
	if err != nil {
		t.Fatal(err)
	}
	guest := phys.NewAllocator("cvm", region)
	var held []FrameID
	f := func(allocate bool) bool {
		if allocate || len(held) == 0 {
			fr, err := guest.Alloc(1)
			if err != nil {
				return true // exhaustion is fine
			}
			held = append(held, fr)
			return region.Contains(fr)
		}
		fr := held[len(held)-1]
		held = held[:len(held)-1]
		return guest.Free(fr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceBrkGrowShrink(t *testing.T) {
	phys := NewPhysical(1 << 20)
	alloc := phys.NewAllocator("host", Region{})
	as := NewAddressSpace(alloc, 1)

	end, err := as.Brk(0)
	if err != nil || end != AddrHeapBase {
		t.Fatalf("initial brk = %#x, %v", end, err)
	}
	if _, err := as.Brk(AddrHeapBase + 3*abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.ResidentPages(); got != 3 {
		t.Fatalf("resident = %d, want 3", got)
	}
	if _, err := as.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.ResidentPages(); got != 1 {
		t.Fatalf("resident after shrink = %d, want 1", got)
	}
	if _, err := as.Brk(AddrHeapBase - 1); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("brk below base: %v, want EINVAL", err)
	}
}

func TestAddressSpaceReadWriteAcrossPages(t *testing.T) {
	phys := NewPhysical(1 << 20)
	alloc := phys.NewAllocator("host", Region{})
	as := NewAddressSpace(alloc, 1)
	if _, err := as.Brk(AddrHeapBase + 2*abi.PageSize); err != nil {
		t.Fatal(err)
	}
	// Write a run straddling the page boundary.
	payload := bytes.Repeat([]byte("AB"), 3000) // 6000 bytes > one page
	addr := AddrHeapBase + 1000
	if err := as.WriteBytes(Region{}, addr, payload); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadBytes(Region{}, addr, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("cross-page round trip failed: %v", err)
	}
}

func TestAddressSpaceFaultOnUnmapped(t *testing.T) {
	phys := NewPhysical(1 << 20)
	as := NewAddressSpace(phys.NewAllocator("host", Region{}), 1)
	if _, err := as.ReadBytes(Region{}, 0xDEAD0000, 8); !errors.Is(err, abi.EFAULT) {
		t.Fatalf("read unmapped: %v, want EFAULT", err)
	}
	if err := as.WriteBytes(Region{}, 0xDEAD0000, []byte("x")); !errors.Is(err, abi.EFAULT) {
		t.Fatalf("write unmapped: %v, want EFAULT", err)
	}
}

func TestMapFixedNullPageRespectsMinAddr(t *testing.T) {
	phys := NewPhysical(1 << 20)
	as := NewAddressSpace(phys.NewAllocator("host", Region{}), 1)
	as.MmapMinAddr = abi.PageSize // hardened kernel
	if err := as.MapFixed(0, 1, ProtRead|ProtExec, VMAAnon, "shellcode"); !errors.Is(err, abi.EPERM) {
		t.Fatalf("null map on hardened kernel: %v, want EPERM", err)
	}
	as.MmapMinAddr = 0 // pre-hardening kernel
	if err := as.MapFixed(0, 1, ProtRead|ProtExec, VMAAnon, "shellcode"); err != nil {
		t.Fatal(err)
	}
	if !as.HasExecutableMappingAt(0) {
		t.Fatal("null page mapping not visible")
	}
}

func TestMapFixedRejectsOverlapAndMisalignment(t *testing.T) {
	phys := NewPhysical(1 << 20)
	as := NewAddressSpace(phys.NewAllocator("host", Region{}), 1)
	if err := as.MapFixed(abi.PageSize+1, 1, ProtRead, VMAAnon, "x"); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("misaligned: %v, want EINVAL", err)
	}
	if err := as.MapFixed(0x10000, 2, ProtRead, VMAAnon, "a"); err != nil {
		t.Fatal(err)
	}
	if err := as.MapFixed(0x10000+abi.PageSize, 1, ProtRead, VMAAnon, "b"); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("overlap: %v, want EEXIST", err)
	}
}

func TestMapAnonPlacementAndUnmap(t *testing.T) {
	phys := NewPhysical(1 << 20)
	as := NewAddressSpace(phys.NewAllocator("host", Region{}), 1)
	a, err := as.MapAnon(2, ProtRead|ProtWrite, VMAAnon, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.MapAnon(1, ProtRead, VMAAnon, "b")
	if err != nil {
		t.Fatal(err)
	}
	if b < a+2*abi.PageSize {
		t.Fatalf("mappings overlap: a=%#x b=%#x", a, b)
	}
	if err := as.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(a); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("double unmap: %v, want EINVAL", err)
	}
}

func TestCloneCopiesButDoesNotShare(t *testing.T) {
	phys := NewPhysical(1 << 20)
	alloc := phys.NewAllocator("host", Region{})
	parent := NewAddressSpace(alloc, 1)
	if _, err := parent.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteBytes(Region{}, AddrHeapBase, []byte("original")); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Clone(alloc, 2, Region{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := child.ReadBytes(Region{}, AddrHeapBase, 8)
	if string(got) != "original" {
		t.Fatalf("clone contents = %q", got)
	}
	if err := child.WriteBytes(Region{}, AddrHeapBase, []byte("mutated!")); err != nil {
		t.Fatal(err)
	}
	back, _ := parent.ReadBytes(Region{}, AddrHeapBase, 8)
	if string(back) != "original" {
		t.Fatalf("parent saw child write: %q", back)
	}
	// Frames of parent and child must be disjoint.
	pf := map[FrameID]bool{}
	for _, v := range parent.VMAs() {
		for _, f := range v.Frames {
			pf[f] = true
		}
	}
	for _, v := range child.VMAs() {
		for _, f := range v.Frames {
			if pf[f] {
				t.Fatalf("frame %d shared between parent and child", f)
			}
		}
	}
}

func TestReleaseReturnsFrames(t *testing.T) {
	phys := NewPhysical(1 << 20)
	alloc := phys.NewAllocator("host", Region{})
	free0 := phys.FreeFrames()
	as := NewAddressSpace(alloc, 1)
	if _, err := as.MapAnon(10, ProtRead, VMAAnon, "x"); err != nil {
		t.Fatal(err)
	}
	if phys.FreeFrames() != free0-10 {
		t.Fatalf("free = %d, want %d", phys.FreeFrames(), free0-10)
	}
	as.Release()
	if phys.FreeFrames() != free0 {
		t.Fatalf("free after release = %d, want %d", phys.FreeFrames(), free0)
	}
}

func TestGuestAddressSpaceConfinedOnWrite(t *testing.T) {
	phys := NewPhysical(1 << 20)
	region, err := phys.ReserveRegion(32)
	if err != nil {
		t.Fatal(err)
	}
	guestAlloc := phys.NewAllocator("cvm", region)
	as := NewAddressSpace(guestAlloc, 5)
	if _, err := as.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	// Writes through the guest's own accessor region succeed (its frames
	// are inside the region by construction)...
	if err := as.WriteBytes(region, AddrHeapBase, []byte("guest data")); err != nil {
		t.Fatal(err)
	}
	// ...and the frames really are inside the region.
	for _, v := range as.VMAs() {
		for _, f := range v.Frames {
			if !region.Contains(f) {
				t.Fatalf("guest AS frame %d outside region", f)
			}
		}
	}
}

func TestVMAKindStrings(t *testing.T) {
	want := map[VMAKind]string{
		VMACode: "code", VMAHeap: "heap", VMAStack: "stack",
		VMAAnon: "anon", VMAFile: "file", VMADevice: "device",
		VMAKind(0): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
