package kernel

import (
	"sync"

	"anception/internal/abi"
	"anception/internal/sim"
)

// KernelVulns selects historical kernel bugs present in this kernel
// instance (both the host and CVM kernels run the same code, so a kernel
// bug exists in both; what differs is what an exploit can reach).
type KernelVulns struct {
	// ProcMemWriteBypass re-creates CVE-2012-0056 (mempodroid): the
	// permission check on /proc/<pid>/mem is bypassable, so an
	// unprivileged writer can scribble into a root process.
	ProcMemWriteBypass bool
	// PerfCounterBug re-creates CVE-2013-2094: perf_event_open with an
	// out-of-range event id corrupts a kernel array, giving code
	// execution.
	PerfCounterBug bool
	// PutUserUnchecked re-creates CVE-2013-6282: missing address checks
	// in the ARM put_user path let a crafted syscall write to an
	// arbitrary kernel address.
	PutUserUnchecked bool
}

// RootEvent records an exploit gaining userspace root (a root shell) in
// this kernel — distinct from kernel code execution but equally terminal
// for the Android security model.
type RootEvent struct {
	ByPID int
	Shell *Task
	Via   string
}

type vulnState struct {
	mu     sync.Mutex
	vulns  KernelVulns
	events []RootEvent
}

// SetVulns installs the kernel-bug profile.
func (k *Kernel) SetVulns(v KernelVulns) {
	k.vuln.mu.Lock()
	defer k.vuln.mu.Unlock()
	k.vuln.vulns = v
}

// Vulns returns the kernel-bug profile.
func (k *Kernel) Vulns() KernelVulns {
	k.vuln.mu.Lock()
	defer k.vuln.mu.Unlock()
	return k.vuln.vulns
}

// GrantUserspaceRoot spawns a root shell on behalf of an exploit that
// hijacked a root-privileged process, and records the event.
func (k *Kernel) GrantUserspaceRoot(by *Task, via string) *Task {
	shell := k.Spawn(abi.Cred{UID: abi.UIDRoot, GID: abi.UIDRoot}, "rootshell")
	k.vuln.mu.Lock()
	k.vuln.events = append(k.vuln.events, RootEvent{ByPID: by.PID, Shell: shell, Via: via})
	k.vuln.mu.Unlock()
	if k.trace != nil {
		k.trace.Record(sim.EvSecurity, "[%s] USERSPACE ROOT by pid=%d via %s (shell pid=%d)",
			k.name, by.PID, via, shell.PID)
	}
	return shell
}

// RootEvents returns recorded userspace-root events.
func (k *Kernel) RootEvents() []RootEvent {
	k.vuln.mu.Lock()
	defer k.vuln.mu.Unlock()
	out := make([]RootEvent, len(k.vuln.events))
	copy(out, k.vuln.events)
	return out
}

// Rooted reports whether this kernel has been taken over at any level:
// kernel code execution, kernel panic excluded, or a userspace root shell.
func (k *Kernel) Rooted() bool {
	if k.Compromised() != nil {
		return true
	}
	k.vuln.mu.Lock()
	defer k.vuln.mu.Unlock()
	return len(k.vuln.events) > 0
}

// sysPerfEventOpen implements the CVE-2013-2094 surface: a host-class
// call (performance counters belong to the physical CPU) that, with the
// bug present, yields kernel code execution for any caller.
func (k *Kernel) sysPerfEventOpen(t *Task, args Args) Result {
	if !k.Vulns().PerfCounterBug {
		return k.errResult(abi.EINVAL) // patched: wild event ids rejected
	}
	if args.Size < 0 { // the exploit's out-of-range (negative) event id
		k.CompromiseKernel(t, "perf_event_open array underflow (CVE-2013-2094)")
		return Result{}
	}
	return Result{Ret: int64(t.InstallFD(&FDEntry{Kind: FDFile, Path: "perf"}))}
}
