package kernel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// procfs is synthesized on access rather than materialized in the VFS:
// the kernel intercepts paths under /proc in the open/readlink/getdents
// paths and answers from live kernel state, exactly the visibility the
// GingerBreak walkthrough (Section V-C) depends on.

// parseProcPath splits "/proc/<pid-or-self>/rest" and resolves "self".
func (k *Kernel) parseProcPath(t *Task, p string) (pid int, rest string, ok bool) {
	parts := strings.Split(strings.TrimPrefix(p, "/proc/"), "/")
	if len(parts) == 0 || parts[0] == "" {
		return 0, "", false
	}
	if parts[0] == "self" {
		pid = t.PID
	} else {
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			return 0, "", false
		}
		pid = n
	}
	return pid, strings.Join(parts[1:], "/"), true
}

func (k *Kernel) procfsOpen(t *Task, p string, args Args) Result {
	switch {
	case p == "/proc/net/netlink":
		return k.openSynthetic(t, p, k.netlinkTable())
	case p == "/proc/sys/kernel/hotplug":
		if args.Flags.Writable() {
			if !t.Cred.Root() {
				return k.errResult(abi.EACCES)
			}
			// Root may retarget the helper; the content write happens
			// through the returned synthetic handle in a real kernel,
			// but the simulation applies it directly on open+write via
			// the hotplug write path below.
		}
		return k.openSynthetic(t, p, []byte(k.HotplugHelper()))
	}

	pid, rest, ok := k.parseProcPath(t, p)
	if !ok {
		return k.errResult(abi.ENOENT)
	}
	target := k.Task(pid)
	if target == nil {
		return k.errResult(abi.ESRCH)
	}

	switch rest {
	case "exe":
		// Opening /proc/<pid>/exe opens the executable itself.
		if target.ExecPath == "" {
			return k.errResult(abi.ENOENT)
		}
		f, err := k.fs.Open(t.Cred, target.ExecPath, abi.ORdOnly, 0)
		if err != nil {
			return k.errResult(err)
		}
		fd := t.InstallFD(&FDEntry{Kind: FDFile, File: f, Path: target.ExecPath})
		return Result{Ret: int64(fd), FD: fd}
	case "cmdline", "comm":
		return k.openSynthetic(t, p, []byte(target.Comm))
	case "status":
		status := fmt.Sprintf("Name:\t%s\nPid:\t%d\nUid:\t%d\nGid:\t%d\n",
			target.Comm, target.PID, target.Cred.UID, target.Cred.GID)
		return k.openSynthetic(t, p, []byte(status))
	case "maps":
		return k.openSynthetic(t, p, k.renderMaps(target))
	case "mem":
		// Ptrace-style access check: root or same UID — unless the
		// CVE-2012-0056 check-bypass bug is present in this kernel.
		if !k.Vulns().ProcMemWriteBypass && !t.Cred.Root() && t.Cred.UID != target.Cred.UID {
			return k.errResult(abi.EACCES)
		}
		fd := t.InstallFD(&FDEntry{Kind: FDProcMem, Target: target, Path: p})
		return Result{Ret: int64(fd), FD: fd}
	default:
		return k.errResult(abi.ENOENT)
	}
}

// openSynthetic installs a read-only in-memory file without touching the
// real VFS tree.
func (k *Kernel) openSynthetic(t *Task, p string, content []byte) Result {
	scratch := vfs.New()
	cred := abi.Cred{UID: abi.UIDRoot}
	if err := scratch.WriteFile(cred, "/f", content, 0o444); err != nil {
		return k.errResult(err)
	}
	f, err := scratch.Open(t.Cred, "/f", abi.ORdOnly, 0)
	if err != nil {
		return k.errResult(err)
	}
	fd := t.InstallFD(&FDEntry{Kind: FDFile, File: f, Path: p})
	return Result{Ret: int64(fd), FD: fd}
}

func (k *Kernel) netlinkTable() []byte {
	var b strings.Builder
	b.WriteString("sk       Eth Pid    Groups\n")
	for _, proto := range k.net.NetlinkProtocols() {
		fmt.Fprintf(&b, "00000000 %-3d kernel 00000000\n", proto)
	}
	return []byte(b.String())
}

func (k *Kernel) renderMaps(target *Task) []byte {
	if target.AS == nil {
		return nil
	}
	var b strings.Builder
	for _, v := range target.AS.VMAs() {
		fmt.Fprintf(&b, "%08x-%08x %s %s\n", v.Start, v.End(), protString(v.Prot), v.Tag)
	}
	return []byte(b.String())
}

func protString(p int) string {
	s := []byte("---")
	if p&ProtRead != 0 {
		s[0] = 'r'
	}
	if p&ProtWrite != 0 {
		s[1] = 'w'
	}
	if p&ProtExec != 0 {
		s[2] = 'x'
	}
	return string(s)
}

func (k *Kernel) procfsReadlink(t *Task, p string) Result {
	pid, rest, ok := k.parseProcPath(t, p)
	if !ok || rest != "exe" {
		return k.errResult(abi.ENOENT)
	}
	target := k.Task(pid)
	if target == nil {
		return k.errResult(abi.ESRCH)
	}
	return Result{Data: []byte(target.ExecPath), Ret: int64(len(target.ExecPath))}
}

// procfsGetdents lists /proc: one numeric entry per live task.
func (k *Kernel) procfsGetdents(t *Task, p string) Result {
	if p != "/proc" {
		return k.errResult(abi.ENOENT)
	}
	k.mu.Lock()
	pids := make([]int, 0, len(k.tasks))
	for pid := range k.tasks {
		pids = append(pids, pid)
	}
	k.mu.Unlock()
	sort.Ints(pids)
	names := make([]string, len(pids))
	for i, pid := range pids {
		names[i] = strconv.Itoa(pid)
	}
	return Result{Data: []byte(strings.Join(names, "\n")), Ret: int64(len(names))}
}

func (k *Kernel) procMemRead(t *Task, e *FDEntry, args Args) Result {
	target := e.Target
	if target.AS == nil || target.CurrentState() != TaskRunning {
		return k.errResult(abi.ESRCH)
	}
	data, err := target.AS.ReadBytes(k.Region(), uint64(args.Off), len(args.Buf))
	if err != nil {
		return k.errResult(err)
	}
	copy(args.Buf, data)
	return Result{Ret: int64(len(data)), Data: data}
}

func (k *Kernel) procMemWrite(t *Task, e *FDEntry, args Args) Result {
	target := e.Target
	if target.AS == nil || target.CurrentState() != TaskRunning {
		return k.errResult(abi.ESRCH)
	}
	if err := target.AS.WriteBytes(k.Region(), uint64(args.Off), args.Buf); err != nil {
		return k.errResult(err)
	}
	// Mempodroid's endgame: code injected into a root-owned process runs
	// with its privileges.
	if !t.Cred.Root() && target.Cred.Root() && isAttackerPayload(args.Buf) {
		k.GrantUserspaceRoot(t, "shellcode written into root process via /proc/pid/mem (CVE-2012-0056)")
	}
	return Result{Ret: int64(len(args.Buf))}
}
