package kernel

import (
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/netstack"
)

// TestDispatchSmoke drives every locally dispatched syscall arm once,
// asserting the observable result of each.
func TestDispatchSmoke(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "smoke")

	// File lifecycle.
	open := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/s", Flags: abi.ORdWr | abi.OCreat, Mode: 0o600})
	if !open.Ok() {
		t.Fatal(open.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysPwrite64, FD: open.FD, Buf: []byte("0123456789"), Off: 0}); res.Ret != 10 {
		t.Fatalf("pwrite: %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysPread64, FD: open.FD, Buf: make([]byte, 4), Off: 2}); string(res.Data) != "2345" {
		t.Fatalf("pread: %q", res.Data)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysLseek, FD: open.FD, Off: 5, Whence: abi.SeekSet}); res.Ret != 5 {
		t.Fatalf("lseek: %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysFstat, FD: open.FD}); res.Ret != 10 {
		t.Fatalf("fstat size: %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysStat, Path: "/data/s"}); res.Ret != 10 || string(res.Data) != "-" {
		t.Fatalf("stat: %+v", res)
	}

	// dup2 onto a chosen descriptor.
	if res := k.Invoke(task, Args{Nr: abi.SysDup2, FD: open.FD, FD2: 42}); res.FD != 42 {
		t.Fatalf("dup2: %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysPread64, FD: 42, Buf: make([]byte, 2), Off: 0}); string(res.Data) != "01" {
		t.Fatalf("read via dup2: %q", res.Data)
	}

	// Directory ops.
	if res := k.Invoke(task, Args{Nr: abi.SysMkdir, Path: "/data/dir", Mode: 0o755}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysRename, Path: "/data/dir", Path2: "/data/dir2"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysRmdir, Path: "/data/dir2"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysUnlink, Path: "/data/s"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysGetdents, Path: "/data"}); !res.Ok() {
		t.Fatal(res.Err)
	}

	// Memory.
	brk := k.Invoke(task, Args{Nr: abi.SysBrk, Vaddr: AddrHeapBase + abi.PageSize})
	if !brk.Ok() {
		t.Fatal(brk.Err)
	}
	mm := k.Invoke(task, Args{Nr: abi.SysMmap2, Pages: 2, Prot: ProtRead | ProtWrite, Tag: "anon"})
	if !mm.Ok() {
		t.Fatal(mm.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysMunmap, Vaddr: uint64(mm.Ret)}); !res.Ok() {
		t.Fatal(res.Err)
	}
	for _, nr := range []abi.SyscallNr{abi.SysMprotect, abi.SysMsync, abi.SysMremap, abi.SysFcntl} {
		if res := k.Invoke(task, Args{Nr: nr}); !res.Ok() {
			t.Fatalf("%v: %v", nr, res.Err)
		}
	}

	// Network: loopback listen/accept.
	srv := k.Invoke(task, Args{Nr: abi.SysSocket, Family: netstack.AFInet, SockType: netstack.SockStream})
	if res := k.Invoke(task, Args{Nr: abi.SysBind, FD: srv.FD, Addr: ":7777"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysListen, FD: srv.FD}); !res.Ok() {
		t.Fatal(res.Err)
	}
	cli := k.Invoke(task, Args{Nr: abi.SysSocket, Family: netstack.AFInet, SockType: netstack.SockStream})
	if res := k.Invoke(task, Args{Nr: abi.SysConnect, FD: cli.FD, Addr: ":7777"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	acc := k.Invoke(task, Args{Nr: abi.SysAccept, FD: srv.FD})
	if !acc.Ok() {
		t.Fatal(acc.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysSend, FD: cli.FD, Buf: []byte("hi")}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysRecv, FD: acc.FD, Buf: make([]byte, 4)}); string(res.Data) != "hi" {
		t.Fatalf("recv: %q", res.Data)
	}

	// Clock and identity.
	if res := k.Invoke(task, Args{Nr: abi.SysClockGettime}); res.Ret <= 0 {
		t.Fatalf("clock_gettime: %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysGetcwd}); string(res.Data) != "/" {
		t.Fatalf("getcwd: %q", res.Data)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysGettid}); res.Ret != int64(task.PID) {
		t.Fatalf("gettid: %+v", res)
	}

	// shm detach/remove arms.
	get := k.Invoke(task, Args{Nr: abi.SysShmget, Size: 7, Pages: 1})
	at := k.Invoke(task, Args{Nr: abi.SysShmat, FD: int(get.Ret)})
	if res := k.Invoke(task, Args{Nr: abi.SysShmdt, Vaddr: uint64(at.Ret)}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysShmctl, FD: int(get.Ret)}); !res.Ok() {
		t.Fatal(res.Err)
	}
}

func TestInvokeLocalBypassesInterceptor(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "x")
	task.RE = 1
	intercepted := 0
	k.SetInterceptor(interceptorFunc(func(kk *Kernel, tt *Task, a *Args) (Result, bool) {
		intercepted++
		return Result{}, false
	}))
	k.Invoke(task, Args{Nr: abi.SysGetpid})
	if intercepted != 1 {
		t.Fatalf("interceptor calls = %d", intercepted)
	}
	k.InvokeLocal(task, Args{Nr: abi.SysGetpid})
	if intercepted != 1 {
		t.Fatal("InvokeLocal re-entered the interceptor")
	}
	dead := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "d")
	dead.SetState(TaskDead)
	if res := k.InvokeLocal(dead, Args{Nr: abi.SysGetpid}); !errors.Is(res.Err, abi.ESRCH) {
		t.Fatalf("InvokeLocal on dead task: %v", res.Err)
	}
}

type interceptorFunc func(*Kernel, *Task, *Args) (Result, bool)

func (f interceptorFunc) Intercept(k *Kernel, t *Task, a *Args) (Result, bool) { return f(k, t, a) }

func TestKernelAccessors(t *testing.T) {
	k := newTestKernel(t)
	if k.Name() != "host" || k.Binder() == nil || k.Allocator() == nil || k.Trace() == nil {
		t.Fatal("accessors broken")
	}
	if k.String() != "kernel(host)" {
		t.Fatalf("String() = %q", k.String())
	}
	a := k.Spawn(abi.Cred{UID: 10001}, "findme")
	if len(k.Tasks()) == 0 {
		t.Fatal("Tasks() empty")
	}
	if k.FindByComm("findme") != a {
		t.Fatal("FindByComm missed")
	}
	if k.FindByComm("ghost") != nil {
		t.Fatal("FindByComm invented a task")
	}
	if !IsAttackerPayload([]byte(AttackerPayloadMagic+"x")) || IsAttackerPayload([]byte("ELF")) {
		t.Fatal("payload check broken")
	}
	if _, err := a.AS.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if k.ResidentProcessPages() == 0 {
		t.Fatal("resident pages not counted")
	}
	k.SetHotplugHelper("/data/custom-helper")
	if k.HotplugHelper() != "/data/custom-helper" {
		t.Fatal("hotplug helper not set")
	}
}

func TestVMAAtAndMapDevice(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: 10001}, "x")
	base, err := task.AS.MapDevice(1, ProtRead|ProtWrite, "fb0", true)
	if err != nil {
		t.Fatal(err)
	}
	v := task.AS.VMAAt(base)
	if v == nil || !v.DeviceMemory || v.Kind != VMADevice {
		t.Fatalf("VMAAt = %+v", v)
	}
	if task.AS.VMAAt(0xEEEE0000) != nil {
		t.Fatal("VMAAt found a ghost mapping")
	}
}

func TestResetRegionWipesContents(t *testing.T) {
	phys := NewPhysical(1 << 20)
	region, err := phys.ReserveRegion(8)
	if err != nil {
		t.Fatal(err)
	}
	alloc := phys.NewAllocator("cvm", region)
	f, err := alloc.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := phys.WriteFrame(region, f, 0, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	phys.ResetRegion(region)
	if phys.Owner(f).Kind != FrameGuestKernel {
		t.Fatalf("owner after reset = %+v", phys.Owner(f))
	}
	buf := make([]byte, 5)
	if err := phys.ReadFrame(region, f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimRight(string(buf), "\x00") != "" {
		t.Fatalf("contents survived reset: %q", buf)
	}
}

func TestProcMemWriteGrantsRootOnPayload(t *testing.T) {
	k := newTestKernel(t)
	k.SetVulns(KernelVulns{ProcMemWriteBypass: true})
	victim := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "rootd")
	if _, err := victim.AS.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	attacker := spawnApp(t, k, 10001)
	open := k.Invoke(attacker, Args{Nr: abi.SysOpen, Path: "/proc/" + itoa(victim.PID) + "/mem", Flags: abi.ORdWr})
	if !open.Ok() {
		t.Fatal(open.Err)
	}
	res := k.Invoke(attacker, Args{Nr: abi.SysPwrite64, FD: open.FD, Buf: []byte(AttackerPayloadMagic), Off: int64(AddrHeapBase)})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if len(k.RootEvents()) != 1 {
		t.Fatalf("root events = %d", len(k.RootEvents()))
	}
	if !k.Rooted() {
		t.Fatal("kernel not marked rooted")
	}
}
