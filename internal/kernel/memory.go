package kernel

import (
	"fmt"
	"sort"
	"sync"

	"anception/internal/abi"
)

// FrameID identifies one physical page frame.
type FrameID int

// FrameOwnerKind classifies who owns a physical frame.
type FrameOwnerKind int

// Frame owner kinds.
const (
	FrameFree FrameOwnerKind = iota + 1
	FrameHostKernel
	FrameGuestKernel
	FrameProcess
)

// FrameOwner records the owner of a frame: the kind plus, for process
// frames, the owning kernel name and PID.
type FrameOwner struct {
	Kind   FrameOwnerKind
	Kernel string
	PID    int
}

// Physical models the device's physical memory as an array of 4 KiB
// frames. Frame *ownership* is tracked eagerly; frame *contents* are
// allocated lazily on first write so a 1 GiB device costs almost nothing
// to simulate.
//
// The memory-isolation invariant of Anception's principle 3 is enforced
// here: an allocator bound to the guest region can never hand out, read, or
// write a frame outside that region.
type Physical struct {
	mu     sync.Mutex
	frames []frame
	free   []FrameID // free list, host region
}

type frame struct {
	owner FrameOwner
	data  []byte // nil until first write
	// version counts mutations of this frame (content writes, ownership
	// changes, resets). The hypervisor's snapshot engine captures the
	// version vector of a region at checkpoint time and, at restore,
	// rewrites only the frames whose version moved since — frame-level
	// dirty tracking without shadow copies.
	version uint64
}

// NewPhysical creates physical memory with the given total size in bytes
// (rounded down to whole frames).
func NewPhysical(bytes int64) *Physical {
	n := int(bytes / abi.PageSize)
	p := &Physical{frames: make([]frame, n)}
	p.free = make([]FrameID, 0, n)
	for i := n - 1; i >= 0; i-- {
		p.frames[i].owner = FrameOwner{Kind: FrameFree}
		p.free = append(p.free, FrameID(i))
	}
	return p
}

// TotalFrames reports the frame count.
func (p *Physical) TotalFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// FreeFrames reports how many frames are unallocated.
func (p *Physical) FreeFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Region is a contiguous frame range an allocator is confined to.
// A zero End means "the whole of memory".
type Region struct {
	Start FrameID
	End   FrameID // exclusive
}

// Contains reports whether f falls inside the region.
func (r Region) Contains(f FrameID) bool {
	if r.End == 0 {
		return f >= r.Start
	}
	return f >= r.Start && f < r.End
}

// Frames reports the region size in frames.
func (r Region) Frames() int { return int(r.End - r.Start) }

// ReserveRegion carves out a contiguous run of n free frames for a guest
// and marks them guest-kernel-owned. It returns the region. This models
// the fixed memory assignment the lguest launcher gives the CVM (64 MB in
// the paper's configuration).
func (p *Physical) ReserveRegion(n int) (Region, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Find a contiguous free run by scanning; reservation happens once at
	// boot so linear cost is fine.
	run := 0
	for i := range p.frames {
		if p.frames[i].owner.Kind == FrameFree {
			run++
			if run == n {
				start := i - n + 1
				for j := start; j <= i; j++ {
					p.frames[j].owner = FrameOwner{Kind: FrameGuestKernel}
					p.frames[j].version++
				}
				p.rebuildFreeLocked()
				return Region{Start: FrameID(start), End: FrameID(i + 1)}, nil
			}
		} else {
			run = 0
		}
	}
	return Region{}, fmt.Errorf("reserve %d frames: %w", n, abi.ENOMEM)
}

// ResetRegion returns every frame in a reserved guest region to the
// guest-kernel-owned state and clears contents — the physical effect of
// rebooting the container VM.
func (p *Physical) ResetRegion(r Region) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for f := r.Start; f < r.End && int(f) < len(p.frames); f++ {
		p.frames[f].owner = FrameOwner{Kind: FrameGuestKernel}
		p.frames[f].data = nil
		p.frames[f].version++
	}
}

// ReclaimRegion returns every frame in a reserved guest region to the
// unowned guest-kernel state — except the frames in keep (the live
// channel mapping) — while leaving frame contents intact. This is the
// physical effect of a guest kernel resuming over a restored memory
// image: the rebooted kernel re-owns its allocations from scratch, so
// the previous boot's frames must rejoin the pool or repeated restores
// exhaust the region. Only frames whose owner actually changes are
// version-bumped.
func (p *Physical) ReclaimRegion(r Region, keep []FrameID) {
	kept := make(map[FrameID]struct{}, len(keep))
	for _, f := range keep {
		kept[f] = struct{}{}
	}
	unowned := FrameOwner{Kind: FrameGuestKernel}
	p.mu.Lock()
	defer p.mu.Unlock()
	for f := r.Start; f < r.End && int(f) < len(p.frames); f++ {
		if _, ok := kept[f]; ok {
			continue
		}
		if p.frames[f].owner == unowned {
			continue
		}
		p.frames[f].owner = unowned
		p.frames[f].version++
	}
}

// FrameVersions returns the current version counter of every frame in a
// region, indexed by region offset. The hypervisor's snapshot engine uses
// the vector as its dirty-tracking baseline.
func (p *Physical) FrameVersions(r Region) []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, 0, r.Frames())
	for f := r.Start; f < r.End && int(f) < len(p.frames); f++ {
		out = append(out, p.frames[f].version)
	}
	return out
}

// CaptureRegion copies out the owner, content, and version of every frame
// in a region, indexed by region offset — the raw material of a CVM
// checkpoint. Contents are deep-copied (nil stays nil: a never-written
// frame), so later mutations cannot bleed into the capture.
func (p *Physical) CaptureRegion(r Region) (owners []FrameOwner, datas [][]byte, versions []uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := r.Frames()
	owners = make([]FrameOwner, 0, n)
	datas = make([][]byte, 0, n)
	versions = make([]uint64, 0, n)
	for f := r.Start; f < r.End && int(f) < len(p.frames); f++ {
		fr := &p.frames[f]
		owners = append(owners, fr.owner)
		if fr.data != nil {
			datas = append(datas, append([]byte(nil), fr.data...))
		} else {
			datas = append(datas, nil)
		}
		versions = append(versions, fr.version)
	}
	return owners, datas, versions
}

// RestoreRegion rewrites a region back to a captured state, copy-on-write
// style: only frames whose version counter moved since the capture (the
// baseVersions vector) are touched; frames provably unchanged since the
// checkpoint keep their memory untouched and their version intact. It
// returns the number of frames rewritten, which is what the restore's sim
// cost scales with.
func (p *Physical) RestoreRegion(r Region, owners []FrameOwner, datas [][]byte, baseVersions []uint64) (int, error) {
	n := r.Frames()
	if len(owners) != n || len(datas) != n || len(baseVersions) != n {
		return 0, fmt.Errorf("restore region: capture covers %d/%d/%d frames, region has %d: %w",
			len(owners), len(datas), len(baseVersions), n, abi.EINVAL)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	restored := 0
	for i := 0; i < n; i++ {
		f := r.Start + FrameID(i)
		if int(f) >= len(p.frames) {
			break
		}
		fr := &p.frames[f]
		if fr.version == baseVersions[i] {
			continue // provably unchanged since the checkpoint
		}
		fr.owner = owners[i]
		if datas[i] != nil {
			fr.data = append([]byte(nil), datas[i]...)
		} else {
			fr.data = nil
		}
		fr.version++
		restored++
	}
	return restored, nil
}

func (p *Physical) rebuildFreeLocked() {
	p.free = p.free[:0]
	for i := len(p.frames) - 1; i >= 0; i-- {
		if p.frames[i].owner.Kind == FrameFree {
			p.free = append(p.free, FrameID(i))
		}
	}
}

// Allocator hands out frames confined to a region on behalf of one kernel.
type Allocator struct {
	phys   *Physical
	region Region
	kernel string
}

// NewAllocator returns an allocator for the given kernel confined to
// region. The host allocator uses the zero Region (all memory); a guest
// allocator must use its reserved region.
func (p *Physical) NewAllocator(kernelName string, region Region) *Allocator {
	return &Allocator{phys: p, region: region, kernel: kernelName}
}

// Region returns the allocator's confinement region.
func (a *Allocator) Region() Region { return a.region }

// KernelName returns the owning kernel's label.
func (a *Allocator) KernelName() string { return a.kernel }

// Alloc assigns one frame to the given process (or the kernel itself when
// pid < 0). Guest allocators take frames from their reserved region;
// host allocators take them from the global free list.
func (a *Allocator) Alloc(pid int) (FrameID, error) {
	p := a.phys
	p.mu.Lock()
	defer p.mu.Unlock()
	owner := FrameOwner{Kind: FrameProcess, Kernel: a.kernel, PID: pid}
	if pid < 0 {
		owner = FrameOwner{Kind: FrameHostKernel}
		if a.region.End != 0 {
			// Tag with the allocator's kernel name so the frame no longer
			// matches the unowned state below — a kernel allocation must
			// consume a distinct frame, not re-return the first one.
			owner = FrameOwner{Kind: FrameGuestKernel, Kernel: a.kernel}
		}
	}
	if a.region.End != 0 {
		// Guest allocator: scan its region for an unowned guest frame —
		// exactly the post-reset state, so frames already assigned to a
		// process or claimed by a kernel allocation (channel pages) are
		// never handed out twice.
		unowned := FrameOwner{Kind: FrameGuestKernel}
		for f := a.region.Start; f < a.region.End; f++ {
			if p.frames[f].owner == unowned {
				p.frames[f].owner = owner
				p.frames[f].version++
				return f, nil
			}
		}
		return 0, fmt.Errorf("guest region exhausted: %w", abi.ENOMEM)
	}
	for len(p.free) > 0 {
		f := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if p.frames[f].owner.Kind == FrameFree {
			p.frames[f].owner = owner
			p.frames[f].version++
			return f, nil
		}
	}
	return 0, fmt.Errorf("physical memory exhausted: %w", abi.ENOMEM)
}

// Free releases a frame back to the allocator's pool.
func (a *Allocator) Free(f FrameID) error {
	p := a.phys
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(f) >= len(p.frames) {
		return abi.EINVAL
	}
	if !a.region.Contains(f) && a.region.End != 0 {
		return fmt.Errorf("free frame %d outside guest region: %w", f, abi.EPERM)
	}
	if a.region.End != 0 {
		p.frames[f].owner = FrameOwner{Kind: FrameGuestKernel}
	} else {
		p.frames[f].owner = FrameOwner{Kind: FrameFree}
		p.free = append(p.free, f)
	}
	p.frames[f].data = nil
	p.frames[f].version++
	return nil
}

// Owner reports a frame's owner.
func (p *Physical) Owner(f FrameID) FrameOwner {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(f) >= len(p.frames) {
		return FrameOwner{}
	}
	return p.frames[f].owner
}

// WriteFrame stores data into a frame at the given page offset. The
// accessor's region is checked: a guest-confined accessor touching a frame
// outside its region is an isolation violation and is rejected.
func (p *Physical) WriteFrame(accessor Region, f FrameID, off int, data []byte) error {
	if accessor.End != 0 && !accessor.Contains(f) {
		return fmt.Errorf("write to frame %d outside accessor region: %w", f, abi.EPERM)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(f) >= len(p.frames) || off+len(data) > abi.PageSize {
		return abi.EINVAL
	}
	fr := &p.frames[f]
	if fr.data == nil {
		fr.data = make([]byte, abi.PageSize)
	}
	copy(fr.data[off:], data)
	fr.version++
	return nil
}

// ReadFrame copies out of a frame, under the same region confinement.
func (p *Physical) ReadFrame(accessor Region, f FrameID, off int, buf []byte) error {
	if accessor.End != 0 && !accessor.Contains(f) {
		return fmt.Errorf("read of frame %d outside accessor region: %w", f, abi.EPERM)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(f) >= len(p.frames) || off+len(buf) > abi.PageSize {
		return abi.EINVAL
	}
	fr := &p.frames[f]
	if fr.data == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, fr.data[off:])
	return nil
}

// VMAKind classifies virtual memory areas.
type VMAKind int

// VMA kinds.
const (
	VMACode VMAKind = iota + 1
	VMAHeap
	VMAStack
	VMAAnon
	VMAFile
	VMADevice
)

// String names the kind as /proc/pid/maps would.
func (k VMAKind) String() string {
	switch k {
	case VMACode:
		return "code"
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMAAnon:
		return "anon"
	case VMAFile:
		return "file"
	case VMADevice:
		return "device"
	default:
		return "?"
	}
}

// Prot bits for mappings.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
)

// VMA is one virtual memory area: a contiguous run of pages backed by
// physical frames.
type VMA struct {
	Start  uint64 // virtual address, page aligned
	Pages  int
	Prot   int
	Kind   VMAKind
	Tag    string // human-readable ("libc.so", "shellcode", ...)
	Frames []FrameID
	// DeviceMemory marks mappings of devices that expose kernel memory
	// (the kernelchopper channel).
	DeviceMemory bool
	// Shared marks System V shared-segment mappings whose frames outlive
	// the mapping.
	Shared bool
}

// End returns the first address past the VMA.
func (v *VMA) End() uint64 { return v.Start + uint64(v.Pages)*abi.PageSize }

// Conventional layout addresses of the simulated 32-bit address space.
const (
	AddrCodeBase  uint64 = 0x0000_8000
	AddrHeapBase  uint64 = 0x0100_0000
	AddrMmapBase  uint64 = 0x4000_0000
	AddrStackTop  uint64 = 0xBF00_0000
	AddrStackSize        = 8 // pages
)

// AddressSpace is one task's virtual memory: an ordered set of VMAs plus a
// heap break. All frame contents live in Physical, so cross-kernel
// isolation follows from frame ownership.
type AddressSpace struct {
	mu    sync.Mutex
	alloc *Allocator
	pid   int
	vmas  []*VMA
	brk   uint64 // current heap end
	// MmapMinAddr mirrors the kernel's mmap_min_addr sysctl; 0 permits
	// null-page mappings (the pre-hardening default CVE-2009-2692 needs).
	MmapMinAddr uint64

	nextMmap uint64
}

// NewAddressSpace creates an empty address space whose pages will be
// allocated by alloc on behalf of pid.
func NewAddressSpace(alloc *Allocator, pid int) *AddressSpace {
	return &AddressSpace{
		alloc:    alloc,
		pid:      pid,
		brk:      AddrHeapBase,
		nextMmap: AddrMmapBase,
	}
}

// PID returns the owning process ID.
func (as *AddressSpace) PID() int { return as.pid }

func (as *AddressSpace) findVMALocked(addr uint64) *VMA {
	for _, v := range as.vmas {
		if addr >= v.Start && addr < v.End() {
			return v
		}
	}
	return nil
}

// overlapLocked reports whether [start, start+pages) intersects a VMA.
func (as *AddressSpace) overlapLocked(start uint64, pages int) bool {
	end := start + uint64(pages)*abi.PageSize
	for _, v := range as.vmas {
		if start < v.End() && v.Start < end {
			return true
		}
	}
	return false
}

// MapAnon creates an anonymous mapping of n pages at a kernel-chosen
// address and returns its base.
func (as *AddressSpace) MapAnon(n int, prot int, kind VMAKind, tag string) (uint64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	base := as.nextMmap
	for as.overlapLocked(base, n) {
		base += uint64(n) * abi.PageSize
	}
	v, err := as.buildVMALocked(base, n, prot, kind, tag)
	if err != nil {
		return 0, err
	}
	as.nextMmap = v.End()
	return v.Start, nil
}

// MapFixed creates a mapping at an exact address (MAP_FIXED). Mapping
// below MmapMinAddr fails with EPERM, which is the hardening knob that
// decides whether null-page exploits are even expressible.
func (as *AddressSpace) MapFixed(addr uint64, n int, prot int, kind VMAKind, tag string) error {
	if addr%abi.PageSize != 0 {
		return abi.EINVAL
	}
	if addr < as.MmapMinAddr {
		return fmt.Errorf("map at %#x below mmap_min_addr: %w", addr, abi.EPERM)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.overlapLocked(addr, n) {
		return abi.EEXIST
	}
	_, err := as.buildVMALocked(addr, n, prot, kind, tag)
	return err
}

func (as *AddressSpace) buildVMALocked(start uint64, n int, prot int, kind VMAKind, tag string) (*VMA, error) {
	v := &VMA{Start: start, Pages: n, Prot: prot, Kind: kind, Tag: tag}
	for i := 0; i < n; i++ {
		f, err := as.alloc.Alloc(as.pid)
		if err != nil {
			// Roll back partially allocated frames.
			for _, g := range v.Frames {
				_ = as.alloc.Free(g)
			}
			return nil, err
		}
		v.Frames = append(v.Frames, f)
	}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return v, nil
}

// MapShared maps pre-existing frames (a System V shared segment) into
// this address space at a kernel-chosen base. The frames are owned by the
// segment: Release and UnmapShared leave them allocated.
func (as *AddressSpace) MapShared(frames []FrameID, prot int, tag string) (uint64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	base := as.nextMmap
	for as.overlapLocked(base, len(frames)) {
		base += uint64(len(frames)) * abi.PageSize
	}
	v := &VMA{Start: base, Pages: len(frames), Prot: prot, Kind: VMAAnon, Tag: tag, Shared: true}
	v.Frames = append(v.Frames, frames...)
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	as.nextMmap = v.End()
	return base, nil
}

// UnmapShared removes a shared mapping without freeing its frames.
func (as *AddressSpace) UnmapShared(addr uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, v := range as.vmas {
		if v.Start == addr && v.Shared {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			return nil
		}
	}
	return abi.EINVAL
}

// MapDevice records a device-backed mapping. exposesKernel marks mappings
// that leak kernel memory (e.g. an unprotected framebuffer node).
func (as *AddressSpace) MapDevice(n int, prot int, tag string, exposesKernel bool) (uint64, error) {
	base, err := as.MapAnon(n, prot, VMADevice, tag)
	if err != nil {
		return 0, err
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if v := as.findVMALocked(base); v != nil {
		v.DeviceMemory = exposesKernel
	}
	return base, nil
}

// Unmap removes the mapping starting exactly at addr.
func (as *AddressSpace) Unmap(addr uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for i, v := range as.vmas {
		if v.Start == addr {
			for _, f := range v.Frames {
				_ = as.alloc.Free(f)
			}
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			return nil
		}
	}
	return abi.EINVAL
}

// Brk grows (or shrinks) the heap to end and returns the new break.
// Passing 0 queries the current break.
func (as *AddressSpace) Brk(end uint64) (uint64, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if end == 0 {
		return as.brk, nil
	}
	if end < AddrHeapBase {
		return as.brk, abi.EINVAL
	}
	curPages := int((as.brk - AddrHeapBase + abi.PageSize - 1) / abi.PageSize)
	newPages := int((end - AddrHeapBase + abi.PageSize - 1) / abi.PageSize)
	heap := as.heapVMALocked()
	switch {
	case newPages > curPages:
		if heap == nil {
			v, err := as.buildVMALocked(AddrHeapBase, newPages, ProtRead|ProtWrite, VMAHeap, "heap")
			if err != nil {
				return as.brk, err
			}
			heap = v
		} else {
			for i := curPages; i < newPages; i++ {
				f, err := as.alloc.Alloc(as.pid)
				if err != nil {
					return as.brk, err
				}
				heap.Frames = append(heap.Frames, f)
				heap.Pages++
			}
		}
	case newPages < curPages && heap != nil:
		for i := curPages - 1; i >= newPages; i-- {
			_ = as.alloc.Free(heap.Frames[i])
		}
		heap.Frames = heap.Frames[:newPages]
		heap.Pages = newPages
	}
	as.brk = end
	return as.brk, nil
}

func (as *AddressSpace) heapVMALocked() *VMA {
	for _, v := range as.vmas {
		if v.Kind == VMAHeap {
			return v
		}
	}
	return nil
}

// translate returns the frame and in-page offset backing addr, or nil.
func (as *AddressSpace) translate(addr uint64) (FrameID, int, *VMA) {
	v := as.findVMALocked(addr)
	if v == nil {
		return 0, 0, nil
	}
	pageIdx := int((addr - v.Start) / abi.PageSize)
	off := int((addr - v.Start) % abi.PageSize)
	return v.Frames[pageIdx], off, v
}

// WriteBytes stores data at the virtual address, page by page. accessor is
// the physical region of whoever performs the access (the owning kernel's
// region); crossing it fails, which is exactly the isolation property
// tests assert.
func (as *AddressSpace) WriteBytes(accessor Region, addr uint64, data []byte) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for len(data) > 0 {
		f, off, v := as.translate(addr)
		if v == nil {
			return abi.EFAULT
		}
		n := abi.PageSize - off
		if n > len(data) {
			n = len(data)
		}
		if err := as.alloc.phys.WriteFrame(accessor, f, off, data[:n]); err != nil {
			return err
		}
		data = data[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadBytes copies n bytes from the virtual address under the accessor's
// region confinement.
func (as *AddressSpace) ReadBytes(accessor Region, addr uint64, n int) ([]byte, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]byte, 0, n)
	for n > 0 {
		f, off, v := as.translate(addr)
		if v == nil {
			return nil, abi.EFAULT
		}
		c := abi.PageSize - off
		if c > n {
			c = n
		}
		buf := make([]byte, c)
		if err := as.alloc.phys.ReadFrame(accessor, f, off, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		n -= c
		addr += uint64(c)
	}
	return out, nil
}

// HasExecutableMappingAt reports whether addr falls in an executable VMA;
// the null-dereference exploit check uses it with addr 0.
func (as *AddressSpace) HasExecutableMappingAt(addr uint64) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	_, _, v := as.translate(addr)
	return v != nil && v.Prot&ProtExec != 0
}

// VMAAt returns a copy of the VMA containing addr, or nil.
func (as *AddressSpace) VMAAt(addr uint64) *VMA {
	as.mu.Lock()
	defer as.mu.Unlock()
	v := as.findVMALocked(addr)
	if v == nil {
		return nil
	}
	cp := *v
	return &cp
}

// VMAs returns a snapshot of the mappings.
func (as *AddressSpace) VMAs() []VMA {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]VMA, len(as.vmas))
	for i, v := range as.vmas {
		out[i] = *v
	}
	return out
}

// ResidentPages counts pages currently mapped.
func (as *AddressSpace) ResidentPages() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	n := 0
	for _, v := range as.vmas {
		n += v.Pages
	}
	return n
}

// Clone duplicates the address space for fork: same layout, fresh frames,
// contents copied (an eager model of copy-on-write).
func (as *AddressSpace) Clone(alloc *Allocator, pid int, accessor Region) (*AddressSpace, error) {
	as.mu.Lock()
	vmas := make([]*VMA, len(as.vmas))
	copy(vmas, as.vmas)
	brk := as.brk
	minAddr := as.MmapMinAddr
	as.mu.Unlock()

	child := NewAddressSpace(alloc, pid)
	child.MmapMinAddr = minAddr
	child.brk = brk
	for _, v := range vmas {
		child.mu.Lock()
		nv, err := child.buildVMALocked(v.Start, v.Pages, v.Prot, v.Kind, v.Tag)
		child.mu.Unlock()
		if err != nil {
			return nil, err
		}
		nv.DeviceMemory = v.DeviceMemory
		for i, f := range v.Frames {
			buf := make([]byte, abi.PageSize)
			if err := as.alloc.phys.ReadFrame(accessor, f, 0, buf); err != nil {
				return nil, err
			}
			if err := as.alloc.phys.WriteFrame(accessor, nv.Frames[i], 0, buf); err != nil {
				return nil, err
			}
		}
	}
	return child, nil
}

// Release frees every frame of the address space (process exit). Frames
// of shared segments are owned by the segment and survive.
func (as *AddressSpace) Release() {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, v := range as.vmas {
		if v.Shared {
			continue
		}
		for _, f := range v.Frames {
			_ = as.alloc.Free(f)
		}
	}
	as.vmas = nil
}
