package kernel

import (
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/vfs"
)

const testMemBytes = 64 << 20 // 64 MB is plenty for unit tests

func newTestKernel(t *testing.T) *Kernel {
	t.Helper()
	clock := sim.NewClock()
	phys := NewPhysical(testMemBytes)
	fs := vfs.New()
	rootCred := abi.Cred{UID: abi.UIDRoot}
	for _, d := range []string{"/system", "/system/bin", "/system/lib", "/data", "/data/data", "/dev", "/sbin"} {
		if err := fs.Mkdir(rootCred, d, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", d, err)
		}
	}
	k := New(Config{
		Name:   "host",
		Clock:  clock,
		Model:  sim.DefaultLatencyModel(),
		Trace:  sim.NewTrace(clock),
		FS:     fs,
		Net:    netstack.New("host"),
		Binder: binder.NewDriver(),
		Alloc:  phys.NewAllocator("host", Region{}),
	})
	return k
}

func spawnApp(t *testing.T, k *Kernel, uid int) *Task {
	t.Helper()
	task := k.Spawn(abi.Cred{UID: uid, GID: uid}, "app")
	// Give each app a private data directory, as installd would.
	dir := "/data/data/app" + task.Comm
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().Mkdir(root, dir, 0o700); err != nil && !errors.Is(err, abi.EEXIST) {
		t.Fatal(err)
	}
	if err := k.FS().Chown(root, dir, uid, uid); err != nil {
		t.Fatal(err)
	}
	return task
}

func TestGetpidAndCredCalls(t *testing.T) {
	k := newTestKernel(t)
	task := spawnApp(t, k, 10001)
	if res := k.Invoke(task, Args{Nr: abi.SysGetpid}); res.Ret != int64(task.PID) {
		t.Fatalf("getpid = %d, want %d", res.Ret, task.PID)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysGetuid}); res.Ret != 10001 {
		t.Fatalf("getuid = %d", res.Ret)
	}
}

func TestGetpidChargesTableILatency(t *testing.T) {
	k := newTestKernel(t)
	task := spawnApp(t, k, 10001)
	before := k.Clock().Now()
	k.Invoke(task, Args{Nr: abi.SysGetpid})
	elapsed := k.Clock().Now() - before
	if got, want := elapsed, k.Model().SyscallEntry; got != want {
		t.Fatalf("getpid cost %v, want %v (Table I native null call)", got, want)
	}
}

func TestOpenWriteReadClose(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	res := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/f", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o644})
	if !res.Ok() {
		t.Fatalf("open: %v", res.Err)
	}
	fd := res.FD
	if res := k.Invoke(task, Args{Nr: abi.SysWrite, FD: fd, Buf: []byte("hello")}); res.Ret != 5 {
		t.Fatalf("write = %+v", res)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysClose, FD: fd}); !res.Ok() {
		t.Fatalf("close: %v", res.Err)
	}
	res = k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/f", Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 16)
	res = k.Invoke(task, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf})
	if string(res.Data) != "hello" {
		t.Fatalf("read = %q", res.Data)
	}
}

func TestUmaskAppliedOnCreate(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(task, Args{Nr: abi.SysUmask, Mode: 0o077}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/g", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o666})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	st, err := k.FS().StatPath(abi.Cred{UID: abi.UIDRoot}, "/data/g")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != 0o600 {
		t.Fatalf("mode = %o, want 600 (umask 077)", st.Mode)
	}
}

func TestChdirAndRelativePaths(t *testing.T) {
	k := newTestKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(task, Args{Nr: abi.SysChdir, Path: "/data"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "rel.txt", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o644})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if _, err := k.FS().StatPath(abi.Cred{UID: abi.UIDRoot}, "/data/rel.txt"); err != nil {
		t.Fatalf("relative create landed elsewhere: %v", err)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysGetcwd}); string(res.Data) != "/data" {
		t.Fatalf("getcwd = %q", res.Data)
	}
	if res := k.Invoke(task, Args{Nr: abi.SysChdir, Path: "/data/rel.txt"}); !errors.Is(res.Err, abi.ENOTDIR) {
		t.Fatalf("chdir to file: %v, want ENOTDIR", res.Err)
	}
}

func TestSetuidRules(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	if res := k.Invoke(app, Args{Nr: abi.SysSetuid, UID: 0}); !errors.Is(res.Err, abi.EPERM) {
		t.Fatalf("app setuid(0): %v, want EPERM", res.Err)
	}
	rootTask := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "daemon")
	if res := k.Invoke(rootTask, Args{Nr: abi.SysSetuid, UID: 10050}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if rootTask.Cred.UID != 10050 {
		t.Fatalf("uid = %d after setuid", rootTask.Cred.UID)
	}
}

func TestForkCopiesStateAndMemory(t *testing.T) {
	k := newTestKernel(t)
	parent := spawnApp(t, k, 10001)
	parent.RE = 1
	if res := k.Invoke(parent, Args{Nr: abi.SysChdir, Path: "/data"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	// Put a secret in the parent's heap.
	if _, err := parent.AS.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := parent.AS.WriteBytes(k.Region(), AddrHeapBase, []byte("parent-secret")); err != nil {
		t.Fatal(err)
	}

	res := k.Invoke(parent, Args{Nr: abi.SysFork})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	child := k.Task(int(res.Ret))
	if child == nil {
		t.Fatal("child not registered")
	}
	if child.PPID != parent.PID || child.CWD != "/data" || child.RE != 1 {
		t.Fatalf("child state = ppid=%d cwd=%q re=%d", child.PPID, child.CWD, child.RE)
	}
	got, err := child.AS.ReadBytes(k.Region(), AddrHeapBase, len("parent-secret"))
	if err != nil || string(got) != "parent-secret" {
		t.Fatalf("child heap = %q, %v", got, err)
	}
	// Child writes must not leak back to the parent (eager COW copy).
	if err := child.AS.WriteBytes(k.Region(), AddrHeapBase, []byte("child-change!")); err != nil {
		t.Fatal(err)
	}
	back, _ := parent.AS.ReadBytes(k.Region(), AddrHeapBase, len("parent-secret"))
	if string(back) != "parent-secret" {
		t.Fatalf("parent heap corrupted by child write: %q", back)
	}
}

func TestExecRequiresExecutePermission(t *testing.T) {
	k := newTestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/system/bin/sh", []byte("ELF"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.FS().WriteFile(root, "/data/noexec", []byte("ELF"), 0o644); err != nil {
		t.Fatal(err)
	}
	app := spawnApp(t, k, 10001)
	if res := k.Invoke(app, Args{Nr: abi.SysExecve, Path: "/system/bin/sh"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if app.Comm != "sh" || app.ExecPath != "/system/bin/sh" {
		t.Fatalf("after exec: comm=%q path=%q", app.Comm, app.ExecPath)
	}
	if res := k.Invoke(app, Args{Nr: abi.SysExecve, Path: "/data/noexec"}); !errors.Is(res.Err, abi.EACCES) {
		t.Fatalf("exec 0644: %v, want EACCES", res.Err)
	}
}

func TestExitAndWait(t *testing.T) {
	k := newTestKernel(t)
	parent := spawnApp(t, k, 10001)
	res := k.Invoke(parent, Args{Nr: abi.SysFork})
	child := k.Task(int(res.Ret))
	if res := k.Invoke(parent, Args{Nr: abi.SysWait4}); !errors.Is(res.Err, abi.ECHILD) {
		t.Fatalf("wait before exit: %v, want ECHILD", res.Err)
	}
	if res := k.Invoke(child, Args{Nr: abi.SysExit, Size: 7}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if child.CurrentState() != TaskZombie {
		t.Fatalf("child state = %v, want zombie", child.CurrentState())
	}
	res = k.Invoke(parent, Args{Nr: abi.SysWait4})
	if !res.Ok() || int(res.Ret) != child.PID || res.Data[0] != 7 {
		t.Fatalf("wait4 = %+v", res)
	}
	if k.Task(child.PID) != nil {
		t.Fatal("zombie not reaped")
	}
}

func TestKillPermissions(t *testing.T) {
	k := newTestKernel(t)
	victim := spawnApp(t, k, 10001)
	attacker := spawnApp(t, k, 10002)
	if res := k.Invoke(attacker, Args{Nr: abi.SysKill, TargetPID: victim.PID, Sig: abi.SIGKILL}); !errors.Is(res.Err, abi.EPERM) {
		t.Fatalf("cross-uid kill: %v, want EPERM", res.Err)
	}
	rootTask := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "init")
	if res := k.Invoke(rootTask, Args{Nr: abi.SysKill, TargetPID: victim.PID, Sig: abi.SIGKILL}); !res.Ok() {
		t.Fatal(res.Err)
	}
	if victim.CurrentState() != TaskDead {
		t.Fatalf("victim state = %v", victim.CurrentState())
	}
	if res := k.Invoke(rootTask, Args{Nr: abi.SysKill, TargetPID: 9999, Sig: abi.SIGTERM}); !errors.Is(res.Err, abi.ESRCH) {
		t.Fatalf("kill missing pid: %v, want ESRCH", res.Err)
	}
}

func TestSignalsDeliveredNotFatal(t *testing.T) {
	k := newTestKernel(t)
	taskA := spawnApp(t, k, 10001)
	taskB := k.Spawn(abi.Cred{UID: 10001, GID: 10001}, "peer")
	if res := k.Invoke(taskA, Args{Nr: abi.SysKill, TargetPID: taskB.PID, Sig: abi.SIGTERM}); !res.Ok() {
		t.Fatal(res.Err)
	}
	sigs := taskB.TakeSignals()
	if len(sigs) != 1 || sigs[0] != abi.SIGTERM {
		t.Fatalf("signals = %v", sigs)
	}
}

func TestDangerousCallsBlocked(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	for _, nr := range []abi.SyscallNr{abi.SysPtrace, abi.SysInitModule, abi.SysDeleteModule, abi.SysReboot} {
		if res := k.Invoke(app, Args{Nr: nr}); !errors.Is(res.Err, abi.EPERM) {
			t.Errorf("%v: err = %v, want EPERM", nr, res.Err)
		}
	}
}

func TestENOSYSForUnimplemented(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	if res := k.Invoke(app, Args{Nr: abi.SyscallNr(999)}); !errors.Is(res.Err, abi.ENOSYS) {
		t.Fatalf("err = %v, want ENOSYS", res.Err)
	}
}

func TestDeadTaskCannotSyscall(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	app.SetState(TaskDead)
	if res := k.Invoke(app, Args{Nr: abi.SysGetpid}); !errors.Is(res.Err, abi.ESRCH) {
		t.Fatalf("err = %v, want ESRCH", res.Err)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	res := k.Invoke(app, Args{Nr: abi.SysPipe})
	rfd, wfd := int(res.Ret), res.FD
	if res := k.Invoke(app, Args{Nr: abi.SysWrite, FD: wfd, Buf: []byte("through the pipe")}); !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 32)
	res = k.Invoke(app, Args{Nr: abi.SysRead, FD: rfd, Buf: buf})
	if string(res.Data) != "through the pipe" {
		t.Fatalf("pipe read = %q", res.Data)
	}
}

func TestDupSharesOffset(t *testing.T) {
	k := newTestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/data/d", []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	task := k.Spawn(root, "init")
	res := k.Invoke(task, Args{Nr: abi.SysOpen, Path: "/data/d", Flags: abi.ORdOnly})
	fd := res.FD
	dup := k.Invoke(task, Args{Nr: abi.SysDup, FD: fd})
	if !dup.Ok() {
		t.Fatal(dup.Err)
	}
	buf := make([]byte, 3)
	k.Invoke(task, Args{Nr: abi.SysRead, FD: fd, Buf: buf})
	res = k.Invoke(task, Args{Nr: abi.SysRead, FD: dup.FD, Buf: buf})
	if string(res.Data) != "def" {
		t.Fatalf("dup shares description: read %q, want \"def\"", res.Data)
	}
}

func TestProcfsSelfAndStatus(t *testing.T) {
	k := newTestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/system/bin/vold", []byte("ELF-vold"), 0o755); err != nil {
		t.Fatal(err)
	}
	vold := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "vold")
	if res := k.Invoke(vold, Args{Nr: abi.SysExecve, Path: "/system/bin/vold"}); !res.Ok() {
		t.Fatal(res.Err)
	}

	app := spawnApp(t, k, 10001)
	// readlink /proc/<pid>/exe
	res := k.Invoke(app, Args{Nr: abi.SysReadlink, Path: "/proc/" + itoa(vold.PID) + "/exe"})
	if string(res.Data) != "/system/bin/vold" {
		t.Fatalf("readlink exe = %q", res.Data)
	}
	// open /proc/<pid>/status
	res = k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/proc/" + itoa(vold.PID) + "/status", Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 256)
	res = k.Invoke(app, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf})
	if !strings.Contains(string(res.Data), "Name:\tvold") || !strings.Contains(string(res.Data), "Uid:\t0") {
		t.Fatalf("status = %q", res.Data)
	}
	// /proc listing contains both PIDs.
	res = k.Invoke(app, Args{Nr: abi.SysGetdents, Path: "/proc"})
	listing := string(res.Data)
	if !strings.Contains(listing, itoa(vold.PID)) || !strings.Contains(listing, itoa(app.PID)) {
		t.Fatalf("/proc listing = %q", listing)
	}
}

func TestProcfsSelfExeOpensBinary(t *testing.T) {
	k := newTestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/system/bin/tool", []byte("BINARY-BYTES"), 0o755); err != nil {
		t.Fatal(err)
	}
	app := spawnApp(t, k, 10001)
	if res := k.Invoke(app, Args{Nr: abi.SysExecve, Path: "/system/bin/tool"}); !res.Ok() {
		t.Fatal(res.Err)
	}
	res := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/proc/self/exe", Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 32)
	res = k.Invoke(app, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf})
	if string(res.Data) != "BINARY-BYTES" {
		t.Fatalf("self/exe read = %q", res.Data)
	}
}

func TestProcMemAccessControl(t *testing.T) {
	k := newTestKernel(t)
	victim := spawnApp(t, k, 10001)
	if _, err := victim.AS.Brk(AddrHeapBase + abi.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := victim.AS.WriteBytes(k.Region(), AddrHeapBase, []byte("password=hunter2")); err != nil {
		t.Fatal(err)
	}

	attacker := spawnApp(t, k, 10002)
	memPath := "/proc/" + itoa(victim.PID) + "/mem"
	if res := k.Invoke(attacker, Args{Nr: abi.SysOpen, Path: memPath, Flags: abi.ORdOnly}); !errors.Is(res.Err, abi.EACCES) {
		t.Fatalf("cross-uid mem open: %v, want EACCES", res.Err)
	}

	// Root (a compromised daemon on native Android) reads the secret.
	rootTask := k.Spawn(abi.Cred{UID: abi.UIDRoot}, "evil")
	res := k.Invoke(rootTask, Args{Nr: abi.SysOpen, Path: memPath, Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 16)
	res = k.Invoke(rootTask, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf, Off: int64(AddrHeapBase)})
	if string(res.Data) != "password=hunter2" {
		t.Fatalf("root mem read = %q", res.Data)
	}
}

func TestProcNetNetlink(t *testing.T) {
	k := newTestKernel(t)
	k.Net().RegisterNetlink(16, func(netstack.Cred, []byte) error { return nil }, true)
	app := spawnApp(t, k, 10001)
	res := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/proc/net/netlink", Flags: abi.ORdOnly})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	buf := make([]byte, 512)
	res = k.Invoke(app, Args{Nr: abi.SysRead, FD: res.FD, Buf: buf})
	if !strings.Contains(string(res.Data), "16") {
		t.Fatalf("netlink table = %q", res.Data)
	}
}

func TestSendfileNullDerefCompromisesWhenShellcodeMapped(t *testing.T) {
	k := newTestKernel(t)
	k.Net().InjectVulnerability(netstack.AFBluetooth, netstack.SockDgram, netstack.VulnNullSendpage)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/data/arbitrary.txt", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}

	app := spawnApp(t, k, 10001)
	// Map shellcode at the null page (mmap_min_addr is 0 here).
	if err := app.AS.MapFixed(0, 1, ProtRead|ProtWrite|ProtExec, VMAAnon, "shellcode"); err != nil {
		t.Fatal(err)
	}
	sockRes := k.Invoke(app, Args{Nr: abi.SysSocket, Family: netstack.AFBluetooth, SockType: netstack.SockDgram})
	fileRes := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/data/arbitrary.txt", Flags: abi.ORdWr})
	res := k.Invoke(app, Args{Nr: abi.SysSendfile, FD: sockRes.FD, FD2: fileRes.FD, Size: abi.PageSize})
	if !res.Ok() {
		t.Fatalf("sendfile: %v", res.Err)
	}
	c := k.Compromised()
	if c == nil || c.ByPID != app.PID {
		t.Fatalf("kernel not compromised: %+v", c)
	}
	if app.Cred.UID != abi.UIDRoot {
		t.Fatal("exploit did not yield root")
	}
}

func TestSendfileNullDerefPanicsWithoutShellcode(t *testing.T) {
	k := newTestKernel(t)
	k.Net().InjectVulnerability(netstack.AFBluetooth, netstack.SockDgram, netstack.VulnNullSendpage)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/data/arbitrary.txt", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	app := spawnApp(t, k, 10001)
	sockRes := k.Invoke(app, Args{Nr: abi.SysSocket, Family: netstack.AFBluetooth, SockType: netstack.SockDgram})
	fileRes := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/data/arbitrary.txt", Flags: abi.ORdWr})
	res := k.Invoke(app, Args{Nr: abi.SysSendfile, FD: sockRes.FD, FD2: fileRes.FD, Size: abi.PageSize})
	if !errors.Is(res.Err, abi.EFAULT) {
		t.Fatalf("sendfile: %v, want EFAULT", res.Err)
	}
	if k.Panicked() == "" {
		t.Fatal("kernel should have panicked on unmapped null page")
	}
	if k.Compromised() != nil {
		t.Fatal("panic must not count as compromise")
	}
}

func TestHotplugExecutesAttackerHelper(t *testing.T) {
	k := newTestKernel(t)
	root := abi.Cred{UID: abi.UIDRoot}
	app := spawnApp(t, k, 10001)
	// No helper file: uevent is a no-op.
	if err := k.TriggerHotplug(app); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() != nil {
		t.Fatal("no helper present, must not compromise")
	}
	// Attacker-controlled helper: compromise.
	payload := []byte(AttackerPayloadMagic + "\nchown root exploit")
	if err := k.FS().WriteFile(root, "/sbin/hotplug", payload, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.TriggerHotplug(app); err != nil {
		t.Fatal(err)
	}
	if c := k.Compromised(); c == nil || c.ByPID != app.PID {
		t.Fatalf("compromise = %+v", c)
	}
}

func TestDetectorVetoesCalls(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	k.AddDetector(func(t *Task, args *Args) error {
		if args.Nr == abi.SysOpen && strings.Contains(args.Path, "forbidden") {
			return abi.EACCES
		}
		return nil
	})
	if res := k.Invoke(app, Args{Nr: abi.SysOpen, Path: "/data/forbidden", Flags: abi.ORdOnly}); !errors.Is(res.Err, abi.EACCES) {
		t.Fatalf("detector bypassed: %v", res.Err)
	}
	if res := k.Invoke(app, Args{Nr: abi.SysGetpid}); !res.Ok() {
		t.Fatal("detector broke unrelated calls")
	}
}

func TestPanicKillsAllTasks(t *testing.T) {
	k := newTestKernel(t)
	a := spawnApp(t, k, 10001)
	b := spawnApp(t, k, 10002)
	k.Panic("test-induced oops")
	if a.CurrentState() != TaskDead || b.CurrentState() != TaskDead {
		t.Fatal("panic left tasks running")
	}
	if k.Panicked() != "test-induced oops" {
		t.Fatalf("reason = %q", k.Panicked())
	}
}

func TestSyscallCountsAccumulate(t *testing.T) {
	k := newTestKernel(t)
	app := spawnApp(t, k, 10001)
	for i := 0; i < 5; i++ {
		k.Invoke(app, Args{Nr: abi.SysGetpid})
	}
	if got := k.SyscallCounts()[abi.SysGetpid]; got != 5 {
		t.Fatalf("getpid count = %d", got)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
