package kernel

import (
	"time"

	"anception/internal/abi"
	"anception/internal/vfs"
)

func (k *Kernel) sysBrk(t *Task, args Args) Result {
	if t.AS == nil {
		return k.errResult(abi.ENOMEM)
	}
	end, err := t.AS.Brk(args.Vaddr)
	if err != nil {
		return Result{Ret: int64(end), Err: err}
	}
	return Result{Ret: int64(end)}
}

func (k *Kernel) sysMmap2(t *Task, args Args) Result {
	if t.AS == nil {
		return k.errResult(abi.ENOMEM)
	}
	pages := args.Pages
	if pages <= 0 {
		pages = 1
	}
	k.clock.Advance(time.Duration(pages) * k.model.PageFault)

	// Device mapping: mmap on an open device fd.
	if args.FD > 0 {
		e := t.FD(args.FD)
		if e == nil {
			return k.errResult(abi.EBADF)
		}
		if e.Kind != FDFile || !e.File.IsDevice() {
			return k.mmapFile(t, e, pages, args)
		}
		dev := e.File.Device()
		mdev, ok := dev.(vfs.MmapableDevice)
		if !ok {
			return k.errResult(abi.ENODEV)
		}
		exposes := mdev.MmapKind() == vfs.MmapKernelMemory
		base, err := t.AS.MapDevice(pages, args.Prot, dev.DevName(), exposes)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(base)}
	}

	// MAP_FIXED at an explicit address (Vaddr set, Tag "fixed").
	if args.Tag == "fixed" {
		if err := t.AS.MapFixed(args.Vaddr, pages, args.Prot, VMAAnon, "fixed"); err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(args.Vaddr)}
	}

	base, err := t.AS.MapAnon(pages, args.Prot, VMAAnon, args.Tag)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(base)}
}

// mmapFile maps a regular file: frames are populated with file contents.
func (k *Kernel) mmapFile(t *Task, e *FDEntry, pages int, args Args) Result {
	base, err := t.AS.MapAnon(pages, args.Prot, VMAFile, e.Path)
	if err != nil {
		return k.errResult(err)
	}
	buf := make([]byte, pages*abi.PageSize)
	if _, err := e.File.ReadAt(buf, 0); err != nil {
		return k.errResult(err)
	}
	if err := t.AS.WriteBytes(k.Region(), base, buf); err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(base)}
}

func (k *Kernel) sysMunmap(t *Task, args Args) Result {
	if t.AS == nil {
		return k.errResult(abi.EINVAL)
	}
	if err := t.AS.Unmap(args.Vaddr); err != nil {
		return k.errResult(err)
	}
	return Result{}
}
