package kernel

import (
	"sync"

	"anception/internal/abi"
	"anception/internal/netstack"
)

// Epoll op codes carried in Args.Flags (matching <sys/epoll.h>).
const (
	EpollCtlAdd = 1
	EpollCtlDel = 2
)

// Epoll is one epoll instance: an interest list of descriptor numbers.
// Readiness is computed at wait time from the socket's queues — the
// simulation is event-driven, so there is no callback plumbing; one
// epoll_wait call returns every ready descriptor at once, which is the
// batching the network fast path rides (one ring completion carries N
// readiness events).
type Epoll struct {
	mu      sync.Mutex
	watched []int
}

func (ep *Epoll) add(fd int) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for _, w := range ep.watched {
		if w == fd {
			return
		}
	}
	ep.watched = append(ep.watched, fd)
}

func (ep *Epoll) del(fd int) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for i, w := range ep.watched {
		if w == fd {
			ep.watched = append(ep.watched[:i], ep.watched[i+1:]...)
			return
		}
	}
}

func (ep *Epoll) snapshot() []int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return append([]int(nil), ep.watched...)
}

func (k *Kernel) sysEpollCreate(t *Task, args Args) Result {
	fd := t.InstallFD(&FDEntry{Kind: FDEpoll, Epoll: &Epoll{}, Path: "anon_inode:[eventpoll]"})
	return Result{Ret: int64(fd), FD: fd}
}

func (k *Kernel) epollFD(t *Task, fd int) (*Epoll, error) {
	e := t.FD(fd)
	if e == nil {
		return nil, abi.EBADF
	}
	if e.Kind != FDEpoll {
		return nil, abi.EINVAL
	}
	return e.Epoll, nil
}

func (k *Kernel) sysEpollCtl(t *Task, args Args) Result {
	ep, err := k.epollFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	if t.FD(args.FD2) == nil {
		return k.errResult(abi.EBADF)
	}
	switch int(args.Flags) {
	case EpollCtlAdd:
		ep.add(args.FD2)
	case EpollCtlDel:
		ep.del(args.FD2)
	default:
		return k.errResult(abi.EINVAL)
	}
	return Result{}
}

// sysEpollWait returns every currently-ready watched descriptor, up to
// Args.Size (0 = no limit), as an fd list in the result Data with the
// count in Ret. A socket is ready when it has buffered messages, a
// non-empty accept backlog, or has been closed. No ready descriptor
// costs one scheduler quantum, like the other blocking calls.
func (k *Kernel) sysEpollWait(t *Task, args Args) Result {
	ep, err := k.epollFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	var ready []int
	for _, fd := range ep.snapshot() {
		e := t.FD(fd)
		if e == nil {
			ep.del(fd)
			continue
		}
		if e.Kind == FDSocket && socketReady(e.Sock) {
			ready = append(ready, fd)
			if args.Size > 0 && len(ready) >= args.Size {
				break
			}
		}
	}
	if len(ready) == 0 {
		k.clock.Advance(k.model.SchedulerQuantum)
		return Result{}
	}
	return Result{Ret: int64(len(ready)), Data: abi.EncodeFDList(ready)}
}

func socketReady(sk *netstack.Socket) bool {
	if sk == nil {
		return false
	}
	return sk.Pending() > 0 || sk.Backlog() > 0 || sk.State() == netstack.StateClosed
}
