package kernel

import (
	"anception/internal/abi"
	"anception/internal/netstack"
)

const vulnNullSendpage = netstack.VulnNullSendpage

func (k *Kernel) sysSocket(t *Task, args Args) Result {
	sock, err := k.net.Socket(t.Cred, args.Family, args.SockType, args.Proto)
	if err != nil {
		return k.errResult(err)
	}
	fd := t.InstallFD(&FDEntry{Kind: FDSocket, Sock: sock})
	return Result{Ret: int64(fd), FD: fd}
}

func (k *Kernel) sockFD(t *Task, fd int) (*netstack.Socket, error) {
	e := t.FD(fd)
	if e == nil {
		return nil, abi.EBADF
	}
	if e.Kind != FDSocket {
		return nil, abi.ENOTSOCK
	}
	return e.Sock, nil
}

func (k *Kernel) sysBind(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	if err := sock.Bind(args.Addr); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysConnect(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	// Only a scripted remote endpoint pays the wide-area round trip;
	// loopback listeners and unix names connect at syscall cost, so a
	// local server handling 100k sessions is not 38 ms-per-connect.
	if k.net.IsRemote(args.Addr) {
		k.clock.Advance(k.model.NetworkRTT)
	}
	if err := sock.Connect(args.Addr); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysListen(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	if err := sock.Listen(); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysAccept(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	conn, err := sock.Accept()
	if err != nil {
		return k.errResult(err)
	}
	fd := t.InstallFD(&FDEntry{Kind: FDSocket, Sock: conn})
	return Result{Ret: int64(fd), FD: fd}
}

// sysAccept4 is the batched accept: it drains up to Args.Size pending
// connections (0 = all) in one call, installing a descriptor for each.
// The accepted fd list travels in the result Data so one redirected ring
// completion can carry N connections.
func (k *Kernel) sysAccept4(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	conns, err := sock.AcceptBatch(args.Size)
	if err != nil {
		return k.errResult(err)
	}
	fds := make([]int, len(conns))
	for i, conn := range conns {
		fds[i] = t.InstallFD(&FDEntry{Kind: FDSocket, Sock: conn})
	}
	return Result{Ret: int64(len(fds)), Data: abi.EncodeFDList(fds)}
}

func (k *Kernel) sysSend(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	k.chargeNet(len(args.Buf))
	if sock.Family == netstack.AFNetlink {
		if err := sock.SendToNetlink(sock.Proto, t.Cred, args.Buf); err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(len(args.Buf))}
	}
	n, err := sock.Send(args.Buf)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(n)}
}

func (k *Kernel) sysRecv(t *Task, args Args) Result {
	sock, err := k.sockFD(t, args.FD)
	if err != nil {
		return k.errResult(err)
	}
	k.chargeNet(len(args.Buf))
	n, err := sock.Recv(args.Buf)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(n), Data: args.Buf[:n]}
}

func (k *Kernel) chargeNet(n int) {
	k.clock.Advance(timesDuration(n, k.model.NetworkPerByte))
}
