package kernel

import (
	"sync"

	"anception/internal/abi"
)

// System V shared memory. Shared segments are app memory, so under
// Anception they are always serviced on the host (principle 3): the
// Anception layer routes shm calls to the host kernel even though the
// static table classifies IPC as redirect-class — the same dynamic
// override UI ioctls get. The paper's Section III-B: "our implementation
// supports shared memory and Android's custom Binder IPC".

// ShmSegment is one shared segment.
type ShmSegment struct {
	ID     int
	Key    int
	Pages  int
	Owner  abi.Cred
	Frames []FrameID
	// attachments counts live mappings; a removed segment is reclaimed
	// when it drops to zero (IPC_RMID semantics, simplified).
	attachments int
	removed     bool
}

// shmState is the kernel's segment registry.
type shmState struct {
	mu       sync.Mutex
	nextID   int
	byID     map[int]*ShmSegment
	byKey    map[int]*ShmSegment
	kernAloc *Allocator
}

func (k *Kernel) shm() *shmState {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.shmReg == nil {
		k.shmReg = &shmState{
			nextID:   1,
			byID:     make(map[int]*ShmSegment),
			byKey:    make(map[int]*ShmSegment),
			kernAloc: k.alloc,
		}
	}
	return k.shmReg
}

// IPC_PRIVATE requests a fresh segment regardless of key.
const IPCPrivate = 0

// sysShmget creates or looks up a segment of args.Pages pages with key
// args.Size (keeping the generic Args field mapping: Size=key).
func (k *Kernel) sysShmget(t *Task, args Args) Result {
	reg := k.shm()
	reg.mu.Lock()
	defer reg.mu.Unlock()

	key := args.Size
	if key != IPCPrivate {
		if seg, ok := reg.byKey[key]; ok && !seg.removed {
			return Result{Ret: int64(seg.ID)}
		}
	}
	pages := args.Pages
	if pages <= 0 {
		return k.errResult(abi.EINVAL)
	}
	seg := &ShmSegment{ID: reg.nextID, Key: key, Pages: pages, Owner: t.Cred}
	reg.nextID++
	for i := 0; i < pages; i++ {
		f, err := reg.kernAloc.Alloc(t.PID)
		if err != nil {
			for _, g := range seg.Frames {
				_ = reg.kernAloc.Free(g)
			}
			return k.errResult(err)
		}
		seg.Frames = append(seg.Frames, f)
	}
	reg.byID[seg.ID] = seg
	if key != IPCPrivate {
		reg.byKey[key] = seg
	}
	return Result{Ret: int64(seg.ID)}
}

// sysShmat attaches the segment (args.FD carries the shm id) into the
// caller's address space and returns the base address. All attachments
// share the segment's physical frames — that is the point.
func (k *Kernel) sysShmat(t *Task, args Args) Result {
	reg := k.shm()
	reg.mu.Lock()
	seg, ok := reg.byID[args.FD]
	if ok && !seg.removed {
		seg.attachments++
	}
	reg.mu.Unlock()
	if !ok || seg.removed {
		return k.errResult(abi.EINVAL)
	}
	if t.AS == nil {
		return k.errResult(abi.ENOMEM)
	}
	base, err := t.AS.MapShared(seg.Frames, ProtRead|ProtWrite, "shm")
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(base)}
}

// sysShmdt detaches the mapping at args.Vaddr.
func (k *Kernel) sysShmdt(t *Task, args Args) Result {
	if t.AS == nil {
		return k.errResult(abi.EINVAL)
	}
	if err := t.AS.UnmapShared(args.Vaddr); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

// sysShmctl supports IPC_RMID (args.Request == 0 removes).
func (k *Kernel) sysShmctl(t *Task, args Args) Result {
	reg := k.shm()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	seg, ok := reg.byID[args.FD]
	if !ok {
		return k.errResult(abi.EINVAL)
	}
	if !t.Cred.Root() && t.Cred.UID != seg.Owner.UID {
		return k.errResult(abi.EPERM)
	}
	seg.removed = true
	delete(reg.byKey, seg.Key)
	return Result{}
}

// ShmSegments reports live segments (diagnostics).
func (k *Kernel) ShmSegments() int {
	reg := k.shm()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	n := 0
	for _, seg := range reg.byID {
		if !seg.removed {
			n++
		}
	}
	return n
}
