package kernel

import (
	"strings"
	"time"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// chargeIO charges the latency of moving n bytes through the storage
// stack, page by page.
func (k *Kernel) chargeIO(n int, perPage time.Duration) {
	pages := (n + abi.PageSize - 1) / abi.PageSize
	if pages == 0 {
		pages = 1
	}
	k.clock.Advance(time.Duration(pages) * perPage)
}

func (k *Kernel) chargePathResolution(p string) {
	comps := strings.Count(p, "/")
	if comps == 0 {
		comps = 1
	}
	k.clock.Advance(time.Duration(comps) * k.model.PathResolvePerComponent)
}

func (k *Kernel) sysOpen(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)

	if strings.HasPrefix(p, "/proc/") || p == "/proc" {
		return k.procfsOpen(t, p, args)
	}

	flags := args.Flags
	if args.Nr == abi.SysCreat {
		flags = abi.OWrOnly | abi.OCreat | abi.OTrunc
	}
	mode := args.Mode &^ t.Umask
	f, err := k.fs.Open(t.Cred, p, flags, mode)
	if err != nil {
		return k.errResult(err)
	}
	fd := t.InstallFD(&FDEntry{Kind: FDFile, File: f, Path: p})
	return Result{Ret: int64(fd), FD: fd}
}

func (k *Kernel) sysClose(t *Task, args Args) Result {
	e := t.CloseFD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	switch e.Kind {
	case FDSocket:
		_ = e.Sock.Close()
	case FDPipeRead, FDPipeWrite:
		e.Pipe.Close()
	}
	return Result{}
}

func (k *Kernel) sysRead(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	switch e.Kind {
	case FDFile:
		if !e.File.IsDevice() {
			k.chargeIO(len(args.Buf), k.model.StorageReadPerPage)
		}
		n, err := e.File.Read(args.Buf)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(n), Data: args.Buf[:n]}
	case FDPipeRead:
		n, err := e.Pipe.Read(args.Buf)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(n), Data: args.Buf[:n]}
	case FDSocket:
		n, err := e.Sock.Recv(args.Buf)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(n), Data: args.Buf[:n]}
	case FDProcMem:
		return k.procMemRead(t, e, args)
	default:
		return k.errResult(abi.EBADF)
	}
}

func (k *Kernel) sysWrite(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	switch e.Kind {
	case FDFile:
		if !e.File.IsDevice() {
			k.chargeIO(len(args.Buf), k.model.StorageWritePerPage)
		}
		n, err := e.File.Write(args.Buf)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(n)}
	case FDPipeWrite:
		n, err := e.Pipe.Write(args.Buf)
		if err != nil {
			return k.errResult(err)
		}
		return Result{Ret: int64(n)}
	case FDSocket:
		return k.sysSend(t, args)
	case FDProcMem:
		return k.procMemWrite(t, e, args)
	default:
		return k.errResult(abi.EBADF)
	}
}

func (k *Kernel) sysPread(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	if e.Kind == FDProcMem {
		return k.procMemRead(t, e, args)
	}
	if e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	k.chargeIO(len(args.Buf), k.model.StorageReadPerPage)
	n, err := e.File.ReadAt(args.Buf, args.Off)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(n), Data: args.Buf[:n]}
}

func (k *Kernel) sysPwrite(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	if e.Kind == FDProcMem {
		return k.procMemWrite(t, e, args)
	}
	if e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	k.chargeIO(len(args.Buf), k.model.StorageWritePerPage)
	n, err := e.File.WriteAt(args.Buf, args.Off)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: int64(n)}
}

// iovTotal sums the segment lengths of a scatter-gather vector.
func iovTotal(iov [][]byte) int {
	n := 0
	for _, seg := range iov {
		n += len(seg)
	}
	return n
}

// sysReadv serves readv and preadv: fill each segment in order, stopping
// at the first short read. The storage stack is charged once for the
// whole vector — one call's worth of page traversal instead of one per
// segment, which is what vectoring buys over a loop of read calls.
func (k *Kernel) sysReadv(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	if len(args.Iov) == 0 {
		return k.errResult(abi.EINVAL)
	}
	positioned := args.Nr == abi.SysPreadv
	if positioned && e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	switch e.Kind {
	case FDFile:
		if !e.File.IsDevice() {
			k.chargeIO(iovTotal(args.Iov), k.model.StorageReadPerPage)
		}
		total := 0
		filled := make([]byte, 0, iovTotal(args.Iov))
		for _, seg := range args.Iov {
			var n int
			var err error
			if positioned {
				n, err = e.File.ReadAt(seg, args.Off+int64(total))
			} else {
				n, err = e.File.Read(seg)
			}
			total += n
			filled = append(filled, seg[:n]...)
			if err != nil || n < len(seg) {
				// EOF mid-vector is a short count, not an error, once
				// anything was read.
				if err != nil && total == n {
					return k.errResult(err)
				}
				break
			}
		}
		return Result{Ret: int64(total), Data: filled}
	case FDPipeRead, FDSocket:
		total := 0
		filled := make([]byte, 0, iovTotal(args.Iov))
		for _, seg := range args.Iov {
			var n int
			var err error
			if e.Kind == FDPipeRead {
				n, err = e.Pipe.Read(seg)
			} else {
				n, err = e.Sock.Recv(seg)
			}
			total += n
			filled = append(filled, seg[:n]...)
			if err != nil || n < len(seg) {
				if err != nil && total == n {
					return k.errResult(err)
				}
				break
			}
		}
		return Result{Ret: int64(total), Data: filled}
	default:
		return k.errResult(abi.EBADF)
	}
}

// sysWritev serves writev and pwritev: gather the segments in order. Like
// sysReadv, the vector pays one storage charge for its total length.
func (k *Kernel) sysWritev(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	if len(args.Iov) == 0 {
		return k.errResult(abi.EINVAL)
	}
	positioned := args.Nr == abi.SysPwritev
	if positioned && e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	switch e.Kind {
	case FDFile:
		if !e.File.IsDevice() {
			k.chargeIO(iovTotal(args.Iov), k.model.StorageWritePerPage)
		}
		total := 0
		for _, seg := range args.Iov {
			var n int
			var err error
			if positioned {
				n, err = e.File.WriteAt(seg, args.Off+int64(total))
			} else {
				n, err = e.File.Write(seg)
			}
			total += n
			if err != nil {
				if total == n {
					return k.errResult(err)
				}
				break
			}
		}
		return Result{Ret: int64(total)}
	case FDPipeWrite, FDSocket:
		total := 0
		for _, seg := range args.Iov {
			var n int
			var err error
			if e.Kind == FDPipeWrite {
				n, err = e.Pipe.Write(seg)
			} else {
				n, err = e.Sock.Send(seg)
			}
			total += n
			if err != nil {
				if total == n {
					return k.errResult(err)
				}
				break
			}
		}
		return Result{Ret: int64(total)}
	default:
		return k.errResult(abi.EBADF)
	}
}

func (k *Kernel) sysLseek(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil || e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	pos, err := e.File.Seek(args.Off, args.Whence)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: pos}
}

func (k *Kernel) sysStat(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	st, err := k.fs.StatPath(t.Cred, p)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Ret: st.Size, Data: encodeStat(st)}
}

func (k *Kernel) sysFstat(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil || e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	st := e.File.Stat()
	return Result{Ret: st.Size, Data: encodeStat(st)}
}

// encodeStat renders stat results as a stable text form; the simulation
// passes structured data out-of-band via Result.Ret where callers need it.
func encodeStat(st vfs.Stat) []byte {
	return []byte(st.Type.String())
}

func (k *Kernel) sysAccess(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	if err := k.fs.CheckAccess(t.Cred, p, args.Size); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysMkdir(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	if err := k.fs.Mkdir(t.Cred, p, args.Mode&^t.Umask); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysRmdir(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	if err := k.fs.Rmdir(t.Cred, p); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysUnlink(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	k.chargePathResolution(p)
	if err := k.fs.Unlink(t.Cred, p); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysRename(t *Task, args Args) Result {
	if err := k.fs.Rename(t.Cred, absPath(t, args.Path), absPath(t, args.Path2)); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysLink(t *Task, args Args) Result {
	if err := k.fs.Link(t.Cred, absPath(t, args.Path), absPath(t, args.Path2)); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysSymlink(t *Task, args Args) Result {
	if err := k.fs.Symlink(t.Cred, args.Path, absPath(t, args.Path2)); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysReadlink(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	if strings.HasPrefix(p, "/proc/") {
		return k.procfsReadlink(t, p)
	}
	target, err := k.fs.Readlink(t.Cred, p)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Data: []byte(target), Ret: int64(len(target))}
}

func (k *Kernel) sysChmod(t *Task, args Args) Result {
	p := args.Path
	if args.Nr == abi.SysFchmod {
		e := t.FD(args.FD)
		if e == nil || e.Kind != FDFile {
			return k.errResult(abi.EBADF)
		}
		p = e.File.Path()
	}
	if err := k.fs.Chmod(t.Cred, absPath(t, p), args.Mode); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysChown(t *Task, args Args) Result {
	p := args.Path
	if args.Nr == abi.SysFchown {
		e := t.FD(args.FD)
		if e == nil || e.Kind != FDFile {
			return k.errResult(abi.EBADF)
		}
		p = e.File.Path()
	}
	if err := k.fs.Chown(t.Cred, absPath(t, p), args.UID, args.GID); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysTruncate(t *Task, args Args) Result {
	if args.Nr == abi.SysFtruncate {
		e := t.FD(args.FD)
		if e == nil || e.Kind != FDFile {
			return k.errResult(abi.EBADF)
		}
		if err := e.File.Truncate(args.Off); err != nil {
			return k.errResult(err)
		}
		return Result{}
	}
	if err := k.fs.Truncate(t.Cred, absPath(t, args.Path), args.Off); err != nil {
		return k.errResult(err)
	}
	return Result{}
}

func (k *Kernel) sysGetdents(t *Task, args Args) Result {
	p := absPath(t, args.Path)
	if strings.HasPrefix(p, "/proc") {
		return k.procfsGetdents(t, p)
	}
	entries, err := k.fs.ReadDir(t.Cred, p)
	if err != nil {
		return k.errResult(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return Result{Data: []byte(strings.Join(names, "\n")), Ret: int64(len(entries))}
}

func (k *Kernel) sysDup(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	dup := *e
	fd := t.InstallFD(&dup)
	return Result{Ret: int64(fd), FD: fd}
}

func (k *Kernel) sysDup2(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	dup := *e
	t.InstallFDAt(args.FD2, &dup)
	return Result{Ret: int64(args.FD2), FD: args.FD2}
}

func (k *Kernel) sysPipe(t *Task, _ Args) Result {
	p := &Pipe{}
	r := t.InstallFD(&FDEntry{Kind: FDPipeRead, Pipe: p})
	w := t.InstallFD(&FDEntry{Kind: FDPipeWrite, Pipe: p})
	// Ret packs the read fd; FD carries the write fd.
	return Result{Ret: int64(r), FD: w}
}

func (k *Kernel) sysFsync(t *Task, args Args) Result {
	if args.Nr == abi.SysSync {
		// Whole-filesystem sync: charge a fixed small cost; per-file
		// flushes dominate in the workloads we model.
		k.clock.Advance(k.model.StorageSyncPerPage)
		return Result{}
	}
	e := t.FD(args.FD)
	if e == nil || e.Kind != FDFile {
		return k.errResult(abi.EBADF)
	}
	flushed := e.File.Sync()
	k.clock.Advance(time.Duration(flushed) * k.model.StorageSyncPerPage)
	return Result{Ret: int64(flushed)}
}

func (k *Kernel) sysIoctl(t *Task, args Args) Result {
	e := t.FD(args.FD)
	if e == nil {
		return k.errResult(abi.EBADF)
	}
	if e.Kind != FDFile || !e.File.IsDevice() {
		return k.errResult(abi.ENOTTY)
	}
	// A synchronous binder transaction includes the service-side handling
	// and scheduling latency (Table I: ~12 ms); other device ioctls are
	// lightweight register pokes.
	if e.File.Device().DevName() == "binder" {
		k.clock.Advance(k.model.BinderTransaction + timesDuration(len(args.Buf), k.model.BinderPerByte))
	} else {
		k.clock.Advance(k.model.UIIoctl)
	}
	out, err := e.File.Ioctl(args.Request, args.Buf)
	if err != nil {
		return k.errResult(err)
	}
	return Result{Data: out, Ret: int64(len(out))}
}

func (k *Kernel) sysSendfile(t *Task, args Args) Result {
	out := t.FD(args.FD)
	in := t.FD(args.FD2)
	if out == nil || in == nil {
		return k.errResult(abi.EBADF)
	}

	// CVE-2009-2692: sendfile on a socket family whose proto_ops left
	// sendpage NULL makes the kernel jump to address zero. Whether that
	// is an exploit or a crash depends on whether *this* kernel can see
	// an executable mapping at page zero in the calling task — under
	// Anception the call executes in the CVM under the proxy, whose
	// address space does not contain the shellcode.
	if out.Kind == FDSocket && out.Sock.HasVulnerability(vulnNullSendpage) {
		if t.AS != nil && t.AS.HasExecutableMappingAt(0) {
			k.CompromiseKernel(t, "NULL sendpage dereference (CVE-2009-2692)")
			return Result{}
		}
		k.Panic("NULL pointer dereference in sock_sendpage (pid " + t.Comm + ")")
		return k.errResult(abi.EFAULT)
	}

	if in.Kind != FDFile {
		return k.errResult(abi.EINVAL)
	}
	buf := make([]byte, args.Size)
	k.chargeIO(len(buf), k.model.StorageReadPerPage)
	n, err := in.File.Read(buf)
	if err != nil {
		return k.errResult(err)
	}
	switch out.Kind {
	case FDSocket:
		if _, err := out.Sock.Send(buf[:n]); err != nil {
			return k.errResult(err)
		}
	case FDFile:
		k.chargeIO(n, k.model.StorageWritePerPage)
		if _, err := out.File.Write(buf[:n]); err != nil {
			return k.errResult(err)
		}
	default:
		return k.errResult(abi.EINVAL)
	}
	return Result{Ret: int64(n)}
}

func (k *Kernel) sysMount(t *Task, _ Args) Result {
	if !t.Cred.Root() {
		return k.errResult(abi.EPERM)
	}
	return Result{}
}
