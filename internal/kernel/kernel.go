// Package kernel implements the simulated operating system kernel: the
// task table, page-granular virtual memory, the syscall dispatch path with
// Anception's redirection-entry hook, procfs, pipes, and the compromise
// model the security evaluation runs against.
//
// Two instances of this kernel exist in an Anception platform: the trusted
// host kernel and the deprivileged CVM kernel, each with its own
// filesystem, network stack, binder driver, and frame allocator region.
package kernel

import (
	"fmt"
	"sync"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/vfs"
)

// Interceptor is the hook the Anception layer installs on the host kernel.
// ASIM consults it for every syscall issued by a task whose redirection
// entry is set; returning handled=true means the call was fully serviced
// (typically in the CVM) and the local kernel must not dispatch it.
type Interceptor interface {
	Intercept(k *Kernel, t *Task, args *Args) (res Result, handled bool)
}

// Detector is an optional syscall-interface policy check (the "simple
// policy-based checks" the paper notes would catch the two residual
// exploits). It observes every call and may veto it.
type Detector func(t *Task, args *Args) error

// Compromise records a successful kernel takeover within this kernel.
type Compromise struct {
	ByPID int
	Via   string
}

// Config assembles a kernel instance.
type Config struct {
	Name   string
	Clock  *sim.Clock
	Model  sim.LatencyModel
	Trace  *sim.Trace
	FS     *vfs.FileSystem
	Net    *netstack.Stack
	Binder *binder.Driver
	Alloc  *Allocator
	// MmapMinAddr is the null-page-mapping hardening knob inherited by
	// every task's address space.
	MmapMinAddr uint64
}

// Kernel is one simulated kernel instance.
type Kernel struct {
	name   string
	clock  *sim.Clock
	model  sim.LatencyModel
	trace  *sim.Trace
	fs     *vfs.FileSystem
	net    *netstack.Stack
	binder *binder.Driver
	alloc  *Allocator

	mu          sync.Mutex
	tasks       map[int]*Task
	nextPID     int
	interceptor Interceptor
	detectors   []Detector
	compromise  *Compromise
	panicReason string

	mmapMinAddr uint64

	vuln   vulnState
	shmReg *shmState

	// hotplugHelper is the path the kernel executes (as root) when a
	// hotplug uevent fires; the Exploid vulnerability is the ability of
	// an unprivileged app to point this machinery at its own file.
	hotplugHelper string

	syscallCount map[abi.SyscallNr]int
}

// New boots a kernel from the config.
func New(cfg Config) *Kernel {
	k := &Kernel{
		name:          cfg.Name,
		clock:         cfg.Clock,
		model:         cfg.Model,
		trace:         cfg.Trace,
		fs:            cfg.FS,
		net:           cfg.Net,
		binder:        cfg.Binder,
		alloc:         cfg.Alloc,
		tasks:         make(map[int]*Task),
		nextPID:       1,
		mmapMinAddr:   cfg.MmapMinAddr,
		hotplugHelper: "/sbin/hotplug",
		syscallCount:  make(map[abi.SyscallNr]int),
	}
	return k
}

// Name returns the kernel's label ("host" or "cvm").
func (k *Kernel) Name() string { return k.name }

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *vfs.FileSystem { return k.fs }

// Net returns the kernel's network stack.
func (k *Kernel) Net() *netstack.Stack { return k.net }

// Binder returns the kernel's binder driver.
func (k *Kernel) Binder() *binder.Driver { return k.binder }

// Clock returns the shared simulation clock.
func (k *Kernel) Clock() *sim.Clock { return k.clock }

// Model returns the latency model.
func (k *Kernel) Model() sim.LatencyModel { return k.model }

// Trace returns the event trace (may be nil).
func (k *Kernel) Trace() *sim.Trace { return k.trace }

// Allocator returns the kernel's frame allocator.
func (k *Kernel) Allocator() *Allocator { return k.alloc }

// Region returns the physical region this kernel may touch.
func (k *Kernel) Region() Region { return k.alloc.Region() }

// SetInterceptor installs the Anception layer hook.
func (k *Kernel) SetInterceptor(i Interceptor) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.interceptor = i
}

// AddDetector installs a syscall-interface policy check.
func (k *Kernel) AddDetector(d Detector) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.detectors = append(k.detectors, d)
}

// Spawn creates a new running task.
func (k *Kernel) Spawn(cred abi.Cred, comm string) *Task {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	t := newTask(pid, 0, cred, comm)
	t.Cred.PID = pid
	t.AS = NewAddressSpace(k.alloc, pid)
	t.AS.MmapMinAddr = k.mmapMinAddr
	k.tasks[pid] = t
	k.mu.Unlock()
	if k.trace != nil {
		k.trace.Record(sim.EvLifecycle, "[%s] spawn pid=%d comm=%s uid=%d", k.name, pid, comm, cred.UID)
	}
	return t
}

// Task returns the task with the given PID, or nil.
func (k *Kernel) Task(pid int) *Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tasks[pid]
}

// Tasks returns a snapshot of all tasks.
func (k *Kernel) Tasks() []*Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	return out
}

// FindByComm returns the first running task with the given command name.
func (k *Kernel) FindByComm(comm string) *Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, t := range k.tasks {
		if t.Comm == comm && t.CurrentState() == TaskRunning {
			return t
		}
	}
	return nil
}

// CompromiseKernel records that a task achieved arbitrary code execution
// in this kernel (the terminal event of a successful root exploit). The
// task's credentials are elevated to root.
func (k *Kernel) CompromiseKernel(t *Task, via string) {
	k.mu.Lock()
	if k.compromise == nil {
		k.compromise = &Compromise{ByPID: t.PID, Via: via}
	}
	k.mu.Unlock()
	t.mu.Lock()
	t.Cred.UID = abi.UIDRoot
	t.Cred.GID = abi.UIDRoot
	t.mu.Unlock()
	if k.trace != nil {
		k.trace.Record(sim.EvSecurity, "[%s] KERNEL COMPROMISED by pid=%d via %s", k.name, t.PID, via)
	}
}

// Compromised reports the recorded compromise, if any.
func (k *Kernel) Compromised() *Compromise {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.compromise == nil {
		return nil
	}
	c := *k.compromise
	return &c
}

// Panic marks the kernel as crashed (e.g. a null dereference with no
// mapped shellcode). A panicked CVM takes its apps' proxies with it but —
// and this is the point of the design — leaves the host untouched.
func (k *Kernel) Panic(reason string) {
	k.mu.Lock()
	if k.panicReason == "" {
		k.panicReason = reason
	}
	tasks := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		tasks = append(tasks, t)
	}
	k.mu.Unlock()
	for _, t := range tasks {
		t.SetState(TaskDead)
	}
	if k.trace != nil {
		k.trace.Record(sim.EvSecurity, "[%s] KERNEL PANIC: %s", k.name, reason)
	}
}

// Panicked returns the panic reason, or "".
func (k *Kernel) Panicked() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.panicReason
}

// SetHotplugHelper points the hotplug machinery at a new helper path;
// on a hardened kernel only root may do this, which is enforced by the
// caller (the procfs write path).
func (k *Kernel) SetHotplugHelper(path string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.hotplugHelper = path
}

// HotplugHelper returns the configured helper path.
func (k *Kernel) HotplugHelper() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.hotplugHelper
}

// TriggerHotplug runs the hotplug helper as root, as the kernel does on a
// uevent. If the helper file carries attacker-controlled content the
// attacker gains root in *this* kernel — the Exploid attack. If the helper
// does not exist here (because the attacker's file was redirected into the
// CVM), nothing happens.
func (k *Kernel) TriggerHotplug(by *Task) error {
	return k.TriggerUevent(by, k.HotplugHelper())
}

// TriggerUevent models the CVE-2009-1185 surface: the uevent handler runs
// the helper named in the (unauthenticated) message as root, without
// validating the message's origin. The helper path is resolved in *this*
// kernel's filesystem, which is why the split execution defeats Exploid:
// the attacker's file exists only in the CVM while the uevent machinery
// fires here on the host.
func (k *Kernel) TriggerUevent(by *Task, helper string) error {
	data, err := k.fs.ReadFile(abi.Cred{UID: abi.UIDRoot}, helper)
	if err != nil {
		if k.trace != nil {
			k.trace.Record(sim.EvSecurity, "[%s] hotplug helper %q missing; uevent ignored", k.name, helper)
		}
		return nil // the kernel logs and moves on
	}
	if isAttackerPayload(data) {
		k.CompromiseKernel(by, "hotplug helper execution (Exploid)")
	}
	return nil
}

// AttackerPayloadMagic marks file contents as attacker-controlled
// executables in the exploit corpus.
const AttackerPayloadMagic = "#!attacker-payload"

func isAttackerPayload(data []byte) bool {
	return len(data) >= len(AttackerPayloadMagic) && string(data[:len(AttackerPayloadMagic)]) == AttackerPayloadMagic
}

// IsAttackerPayload exposes the payload check to the services layer (vold
// uses it when an injected command makes it re-execute a file).
func IsAttackerPayload(data []byte) bool { return isAttackerPayload(data) }

// SyscallCounts returns a copy of the per-syscall invocation counters.
func (k *Kernel) SyscallCounts() map[abi.SyscallNr]int {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[abi.SyscallNr]int, len(k.syscallCount))
	for nr, c := range k.syscallCount {
		out[nr] = c
	}
	return out
}

func (k *Kernel) countSyscall(nr abi.SyscallNr) {
	k.mu.Lock()
	k.syscallCount[nr]++
	k.mu.Unlock()
}

// ResidentProcessPages sums resident pages across running tasks; the
// memory-overhead experiment (Section VI-C) reads this for the CVM.
func (k *Kernel) ResidentProcessPages() int {
	n := 0
	for _, t := range k.Tasks() {
		if t.CurrentState() == TaskRunning && t.AS != nil {
			n += t.AS.ResidentPages()
		}
	}
	return n
}

func (k *Kernel) errResult(err error) Result { return Result{Ret: -1, Err: err} }

// String identifies the kernel in diagnostics.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(%s)", k.name)
}
