package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"anception/internal/abi"
)

var (
	root  = Cred{UID: abi.UIDRoot}
	app   = Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}
	other = Cred{UID: abi.UIDAppBase + 1, GID: abi.UIDAppBase + 1}
)

func newTestFS(t *testing.T) *FileSystem {
	t.Helper()
	fs := New()
	for _, d := range []string{"/system", "/system/bin", "/data", "/data/data", "/dev", "/proc"} {
		if err := fs.Mkdir(root, d, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", d, err)
		}
	}
	return fs
}

func TestMkdirAndStat(t *testing.T) {
	fs := newTestFS(t)
	st, err := fs.StatPath(root, "/data/data")
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != TypeDir {
		t.Fatalf("type = %v, want dir", st.Type)
	}
	if st.Nlink < 2 {
		t.Fatalf("dir nlink = %d, want >= 2", st.Nlink)
	}
}

func TestMkdirMissingParent(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Mkdir(root, "/no/such/parent", 0o755); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newTestFS(t)
	data := []byte("hello, container")
	if err := fs.WriteFile(root, "/data/x.txt", data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(root, "/data/x.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestOpenCreateExcl(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Open(root, "/data/f", abi.OWrOnly|abi.OCreat|abi.OExcl, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(root, "/data/f", abi.OWrOnly|abi.OCreat|abi.OExcl, 0o600); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("second O_EXCL open: err = %v, want EEXIST", err)
	}
}

func TestOpenNonexistentWithoutCreate(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Open(root, "/data/missing", abi.ORdOnly, 0); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestPermissionDeniedForOtherUID(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Mkdir(root, "/data/data/com.bank", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/data/com.bank", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/data/data/com.bank/secret", []byte("pin"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/data/com.bank/secret", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}

	// The owning app can read its file.
	if _, err := fs.Open(app, "/data/data/com.bank/secret", abi.ORdOnly, 0); err != nil {
		t.Fatalf("owner open: %v", err)
	}
	// A different app UID cannot even traverse the 0700 directory.
	if _, err := fs.Open(other, "/data/data/com.bank/secret", abi.ORdOnly, 0); !errors.Is(err, abi.EACCES) {
		t.Fatalf("other open: err = %v, want EACCES", err)
	}
	// Root bypasses everything.
	if _, err := fs.Open(root, "/data/data/com.bank/secret", abi.ORdOnly, 0); err != nil {
		t.Fatalf("root open: %v", err)
	}
}

func TestReadOnlyMount(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/system/bin/vold", []byte("ELF"), 0o755); err != nil {
		t.Fatal(err)
	}
	fs.MountReadOnly("/system")

	if err := fs.WriteFile(root, "/system/bin/evil", []byte("x"), 0o755); !errors.Is(err, abi.EROFS) {
		t.Fatalf("create on ro mount: err = %v, want EROFS", err)
	}
	if _, err := fs.Open(root, "/system/bin/vold", abi.OWrOnly, 0); !errors.Is(err, abi.EROFS) {
		t.Fatalf("open-for-write on ro mount: err = %v, want EROFS", err)
	}
	if err := fs.Unlink(root, "/system/bin/vold"); !errors.Is(err, abi.EROFS) {
		t.Fatalf("unlink on ro mount: err = %v, want EROFS", err)
	}
	if err := fs.Rename(root, "/system/bin/vold", "/data/vold"); !errors.Is(err, abi.EROFS) {
		t.Fatalf("rename off ro mount: err = %v, want EROFS", err)
	}
	// Reading still works.
	if _, err := fs.ReadFile(root, "/system/bin/vold"); err != nil {
		t.Fatalf("read on ro mount: %v", err)
	}
}

func TestSeekAndAppend(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open(root, "/data/log", abi.ORdWr|abi.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(2, abi.SeekSet); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 2)
	if _, err := f.Read(buf); err != nil || string(buf) != "cd" {
		t.Fatalf("Read after seek = %q, %v", buf, err)
	}
	if pos, err := f.Seek(-1, abi.SeekEnd); err != nil || pos != 5 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if _, err := f.Seek(-100, abi.SeekCur); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("negative seek: %v, want EINVAL", err)
	}

	g, err := fs.Open(root, "/data/log", abi.OWrOnly|abi.OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(root, "/data/log")
	if string(data) != "abcdefXY" {
		t.Fatalf("append result = %q", data)
	}
}

func TestTruncateGrowAndShrink(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/t", []byte("123456"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(root, "/data/t", 3); err != nil {
		t.Fatal(err)
	}
	if d, _ := fs.ReadFile(root, "/data/t"); string(d) != "123" {
		t.Fatalf("after shrink: %q", d)
	}
	if err := fs.Truncate(root, "/data/t", 5); err != nil {
		t.Fatal(err)
	}
	if d, _ := fs.ReadFile(root, "/data/t"); !bytes.Equal(d, []byte{'1', '2', '3', 0, 0}) {
		t.Fatalf("after grow: %v", d)
	}
}

func TestUnlinkAndRmdir(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, "/data"); !errors.Is(err, abi.EBUSY) {
		t.Fatalf("rmdir non-empty: %v, want EBUSY", err)
	}
	if err := fs.Unlink(root, "/data"); !errors.Is(err, abi.EISDIR) {
		t.Fatalf("unlink dir: %v, want EISDIR", err)
	}
	if err := fs.Unlink(root, "/data/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatPath(root, "/data/f"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("stat after unlink: %v", err)
	}
	if err := fs.Mkdir(root, "/data/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, "/data/sub"); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/a", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(root, "/data/a", "/data/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatPath(root, "/data/a"); !errors.Is(err, abi.ENOENT) {
		t.Fatal("old name still present")
	}
	if d, err := fs.ReadFile(root, "/data/b"); err != nil || string(d) != "payload" {
		t.Fatalf("read new name: %q, %v", d, err)
	}
}

func TestSymlinkResolution(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/real", []byte("via link"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/data/real", "/data/link"); err != nil {
		t.Fatal(err)
	}
	if d, err := fs.ReadFile(root, "/data/link"); err != nil || string(d) != "via link" {
		t.Fatalf("read through symlink: %q, %v", d, err)
	}
	if tgt, err := fs.Readlink(root, "/data/link"); err != nil || tgt != "/data/real" {
		t.Fatalf("readlink = %q, %v", tgt, err)
	}
	st, err := fs.LstatPath(root, "/data/link")
	if err != nil || st.Type != TypeSymlink {
		t.Fatalf("lstat = %+v, %v", st, err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink(root, "/data/l2", "/data/l1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/data/l1", "/data/l2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(root, "/data/l1"); !errors.Is(err, abi.ELOOP) {
		t.Fatalf("err = %v, want ELOOP", err)
	}
}

func TestRelativeSymlinkTarget(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/real", []byte("rel"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "real", "/data/rl"); err != nil {
		t.Fatal(err)
	}
	if d, err := fs.ReadFile(root, "/data/rl"); err != nil || string(d) != "rel" {
		t.Fatalf("relative symlink read: %q, %v", d, err)
	}
}

func TestHardLinkSharesData(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/orig", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(root, "/data/orig", "/data/alias"); err != nil {
		t.Fatal(err)
	}
	st, _ := fs.StatPath(root, "/data/orig")
	if st.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", st.Nlink)
	}
	if err := fs.WriteFile(root, "/data/orig", []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	if d, _ := fs.ReadFile(root, "/data/alias"); string(d) != "two" {
		t.Fatalf("alias = %q, want shared contents", d)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := newTestFS(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := fs.WriteFile(root, "/data/"+n, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.ReadDir(root, "/data")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "data", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestChmodOnlyOwnerOrRoot(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/f", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(other, "/data/f", 0o777); !errors.Is(err, abi.EPERM) {
		t.Fatalf("chmod by non-owner: %v, want EPERM", err)
	}
	if err := fs.Chmod(app, "/data/f", 0o600); err != nil {
		t.Fatalf("chmod by owner: %v", err)
	}
	if err := fs.Chown(app, "/data/f", other.UID, other.GID); !errors.Is(err, abi.EPERM) {
		t.Fatalf("chown by non-root: %v, want EPERM", err)
	}
}

func TestCheckAccess(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/f", nil, 0o640); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/f", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := fs.CheckAccess(app, "/data/f", abi.AccessRead|abi.AccessWrite); err != nil {
		t.Fatalf("owner rw: %v", err)
	}
	if err := fs.CheckAccess(other, "/data/f", abi.AccessRead); !errors.Is(err, abi.EACCES) {
		t.Fatalf("other read 0640: %v, want EACCES", err)
	}
	sameGroup := Cred{UID: 99999, GID: app.GID}
	if err := fs.CheckAccess(sameGroup, "/data/f", abi.AccessRead); err != nil {
		t.Fatalf("group read 0640: %v", err)
	}
	if err := fs.CheckAccess(sameGroup, "/data/f", abi.AccessWrite); !errors.Is(err, abi.EACCES) {
		t.Fatalf("group write 0640: %v, want EACCES", err)
	}
}

func TestDirtyPageAccounting(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open(root, "/data/db", abi.ORdWr|abi.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Write 3 pages worth of data.
	if _, err := f.Write(make([]byte, 3*abi.PageSize)); err != nil {
		t.Fatal(err)
	}
	if got := f.Inode().DirtyPages(); got < 3 {
		t.Fatalf("dirty pages = %d, want >= 3", got)
	}
	flushed := f.Sync()
	if flushed < 3 {
		t.Fatalf("flushed = %d, want >= 3", flushed)
	}
	if got := f.Inode().DirtyPages(); got != 0 {
		t.Fatalf("dirty after sync = %d, want 0", got)
	}
}

func TestCopyTreePreservesOwnershipAndData(t *testing.T) {
	src := newTestFS(t)
	dst := newTestFS(t)
	if err := src.Mkdir(root, "/data/data/com.app", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := src.Chown(root, "/data/data/com.app", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteFile(root, "/data/data/com.app/db", []byte("rows"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := src.Chown(root, "/data/data/com.app/db", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := CopyTree(src, "/data/data/com.app", dst, "/data/data/com.app"); err != nil {
		t.Fatal(err)
	}
	st, err := dst.StatPath(root, "/data/data/com.app/db")
	if err != nil {
		t.Fatal(err)
	}
	if st.UID != app.UID || st.Mode != 0o600 {
		t.Fatalf("copied stat = %+v", st)
	}
	d, err := dst.ReadFile(app, "/data/data/com.app/db")
	if err != nil || string(d) != "rows" {
		t.Fatalf("copied data = %q, %v", d, err)
	}
}

func TestIoctlOnRegularFileIsENOTTY(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open(root, "/data/f", abi.ORdWr|abi.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Ioctl(1, nil); !errors.Is(err, abi.ENOTTY) {
		t.Fatalf("ioctl on regular file: %v, want ENOTTY", err)
	}
}

func TestRelativePathRejected(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.StatPath(root, "data/x"); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("relative path: %v, want EINVAL", err)
	}
}

// Property: anything written with WriteFile reads back identically through
// ReadFile, for arbitrary contents and nested path depth.
func TestWriteReadPropertyQuick(t *testing.T) {
	fs := newTestFS(t)
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/data/prop" + string(rune('a'+i%26))
		if err := fs.WriteFile(root, p, data, 0o644); err != nil {
			return false
		}
		got, err := fs.ReadFile(root, p)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteAt/ReadAt round-trip at arbitrary offsets.
func TestWriteAtReadAtProperty(t *testing.T) {
	fs := newTestFS(t)
	file, err := fs.Open(root, "/data/randio", abi.ORdWr|abi.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := file.WriteAt(data, int64(off)); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		n, err := file.ReadAt(buf, int64(off))
		return err == nil && n == len(data) && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: permission checks are monotone in the mode bits — granting more
// bits never revokes access.
func TestPermissionMonotonicity(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/data/m", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/m", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	modes := []abi.FileMode{0o000, 0o400, 0o440, 0o444, 0o644, 0o666}
	prevReadable := map[string]bool{"app": false, "other": false}
	for _, m := range modes {
		if err := fs.Chmod(root, "/data/m", m); err != nil {
			t.Fatal(err)
		}
		for name, cred := range map[string]Cred{"app": app, "other": other} {
			readable := fs.CheckAccess(cred, "/data/m", abi.AccessRead) == nil
			if prevReadable[name] && !readable {
				t.Fatalf("mode %o revoked read for %s relative to a weaker mode", m, name)
			}
			prevReadable[name] = readable
		}
	}
}

type fakeDev struct{ last uint32 }

func (d *fakeDev) DevName() string { return "fake" }
func (d *fakeDev) Read(_ Cred, p []byte, _ int64) (int, error) {
	for i := range p {
		p[i] = 0xAB
	}
	return len(p), nil
}
func (d *fakeDev) Write(_ Cred, p []byte, _ int64) (int, error) { return len(p), nil }
func (d *fakeDev) Ioctl(_ Cred, req uint32, _ []byte) ([]byte, error) {
	d.last = req
	return []byte{1}, nil
}

func TestDeviceNode(t *testing.T) {
	fs := newTestFS(t)
	dev := &fakeDev{}
	if err := fs.Mknod(root, "/dev/fake", 0o666, dev); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mknod(app, "/dev/fake2", 0o666, dev); !errors.Is(err, abi.EPERM) {
		t.Fatalf("mknod by app: %v, want EPERM", err)
	}
	f, err := fs.Open(app, "/dev/fake", abi.ORdWr, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil || buf[0] != 0xAB {
		t.Fatalf("device read: %v %v", buf, err)
	}
	if _, err := f.Ioctl(42, nil); err != nil {
		t.Fatal(err)
	}
	if dev.last != 42 {
		t.Fatalf("ioctl req = %d, want 42", dev.last)
	}
	if !f.IsDevice() || f.Device() == nil {
		t.Fatal("device identity lost")
	}
}

func TestFileAccessors(t *testing.T) {
	fs := newTestFS(t)
	f, err := fs.Open(root, "/data/acc", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/data/acc" {
		t.Fatalf("Path = %q", f.Path())
	}
	if f.Flags() != abi.ORdWr|abi.OCreat {
		t.Fatalf("Flags = %x", f.Flags())
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if f.Offset() != 3 {
		t.Fatalf("Offset = %d", f.Offset())
	}
	if err := f.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if f.Stat().Size != 1 {
		t.Fatalf("size after handle truncate = %d", f.Stat().Size)
	}
	ro, err := fs.Open(root, "/data/acc", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.Truncate(2); !errors.Is(err, abi.EBADF) {
		t.Fatalf("truncate read-only handle: %v, want EBADF", err)
	}
}

func TestReadOnlyPathAndLookup(t *testing.T) {
	fs := newTestFS(t)
	fs.MountReadOnly("/system")
	if !fs.ReadOnlyPath("/system/bin/sh") || fs.ReadOnlyPath("/data/x") {
		t.Fatal("ReadOnlyPath classification wrong")
	}
	ino, err := fs.Lookup(root, "/data")
	if err != nil || ino.Type != TypeDir {
		t.Fatalf("Lookup: %+v, %v", ino, err)
	}
	if _, err := fs.Lookup(app, "/nope"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("Lookup missing: %v", err)
	}
}

func TestMkdirAllDeepAndIdempotent(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll(root, "/data/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll(root, "/data/a/b/c/d", 0o755); err != nil {
		t.Fatalf("idempotent MkdirAll: %v", err)
	}
	if _, err := fs.StatPath(root, "/data/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	// MkdirAll through a file component fails cleanly.
	if err := fs.WriteFile(root, "/data/blocker", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll(root, "/data/blocker/sub", 0o755); err == nil {
		t.Fatal("MkdirAll through a file succeeded")
	}
}

func TestLinkEdgeCases(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Link(root, "/data", "/data/dirlink"); !errors.Is(err, abi.EISDIR) {
		t.Fatalf("hard link to dir: %v, want EISDIR", err)
	}
	if err := fs.WriteFile(root, "/data/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link(root, "/data/f", "/data/f"); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("link over self: %v, want EEXIST", err)
	}
	fs.MountReadOnly("/system")
	if err := fs.Link(root, "/data/f", "/system/f"); !errors.Is(err, abi.EROFS) {
		t.Fatalf("link into ro mount: %v, want EROFS", err)
	}
}

func TestTruncatePathEdgeCases(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Truncate(root, "/data", 0); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("truncate dir: %v, want EINVAL", err)
	}
	fs.MountReadOnly("/system")
	if err := fs.WriteFile(root, "/data/t", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/data/t", app.UID, app.GID); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(root, "/data/t", 0o400); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(app, "/data/t", 0); !errors.Is(err, abi.EACCES) {
		t.Fatalf("truncate 0400: %v, want EACCES", err)
	}
}

func TestCopyTreeWithSymlinkAndDevice(t *testing.T) {
	src := newTestFS(t)
	dst := newTestFS(t)
	if err := src.Mkdir(root, "/data/tree", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteFile(root, "/data/tree/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.Symlink(root, "f", "/data/tree/l"); err != nil {
		t.Fatal(err)
	}
	if err := src.Mknod(root, "/data/tree/dev", 0o666, &fakeDev{}); err != nil {
		t.Fatal(err)
	}
	if err := CopyTree(src, "/data/tree", dst, "/data/tree"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := dst.Readlink(root, "/data/tree/l"); err != nil || tgt != "f" {
		t.Fatalf("symlink copy: %q, %v", tgt, err)
	}
	// Device nodes are skipped, not copied.
	if _, err := dst.StatPath(root, "/data/tree/dev"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("device node copied: %v", err)
	}
}

func TestFileTypeStrings(t *testing.T) {
	want := map[FileType]string{TypeRegular: "-", TypeDir: "d", TypeSymlink: "l", TypeDevice: "c", FileType(0): "?"}
	for ft, s := range want {
		if ft.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ft), ft.String(), s)
		}
	}
}
