package vfs

import (
	"path"

	"anception/internal/abi"
)

// File is an open file description: an inode reference plus offset and
// access mode. File descriptors in the kernel layer point at File values.
type File struct {
	fs    *FileSystem
	ino   *Inode
	path  string
	flags abi.OpenFlag
	off   int64
	cred  Cred
}

// Open opens the object at p with the given flags, creating a regular file
// with createMode when OCreat is set.
func (fs *FileSystem) Open(cred Cred, p string, flags abi.OpenFlag, createMode abi.FileMode) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	clean := path.Clean(p)
	ino, err := fs.resolve(cred, p, true, 0)
	switch {
	case err == nil:
		if flags&(abi.OCreat|abi.OExcl) == abi.OCreat|abi.OExcl {
			return nil, abi.EEXIST
		}
	case err == abi.ENOENT && flags&abi.OCreat != 0:
		if fs.readOnlyLocked(clean) {
			return nil, abi.EROFS
		}
		dir, name, perr := fs.lookupParent(cred, p)
		if perr != nil {
			return nil, perr
		}
		if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
			return nil, abi.EACCES
		}
		ino = fs.newInode(TypeRegular, createMode, cred.UID, cred.GID)
		dir.children[name] = ino
	default:
		return nil, err
	}

	if ino.Type == TypeDir && flags.Writable() {
		return nil, abi.EISDIR
	}
	if flags.Readable() && !permitted(cred, ino, abi.AccessRead) {
		return nil, abi.EACCES
	}
	if flags.Writable() {
		if fs.readOnlyLocked(clean) {
			return nil, abi.EROFS
		}
		if !permitted(cred, ino, abi.AccessWrite) {
			return nil, abi.EACCES
		}
	}
	if flags&abi.OTrunc != 0 && flags.Writable() && ino.Type == TypeRegular {
		truncateData(ino, 0)
	}

	f := &File{fs: fs, ino: ino, path: clean, flags: flags, cred: cred}
	if flags&abi.OAppend != 0 {
		f.off = int64(len(ino.Data))
	}
	return f, nil
}

// Path returns the cleaned path the file was opened with.
func (f *File) Path() string { return f.path }

// Inode returns the underlying inode (used by the kernel for accounting).
func (f *File) Inode() *Inode { return f.ino }

// Flags returns the open flags.
func (f *File) Flags() abi.OpenFlag { return f.flags }

// IsDevice reports whether the file refers to a device node.
func (f *File) IsDevice() bool { return f.ino.Type == TypeDevice }

// Device returns the bound driver for device files, or nil.
func (f *File) Device() Device {
	if f.ino.Type != TypeDevice {
		return nil
	}
	return f.ino.Dev
}

// Read reads up to len(p) bytes at the current offset.
func (f *File) Read(p []byte) (int, error) {
	if !f.flags.Readable() {
		return 0, abi.EBADF
	}
	if f.ino.Type == TypeDevice {
		n, err := f.ino.Dev.Read(f.cred, p, f.off)
		f.off += int64(n)
		return n, err
	}
	if f.ino.Type == TypeDir {
		return 0, abi.EISDIR
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.off >= int64(len(f.ino.Data)) {
		return 0, nil
	}
	n := copy(p, f.ino.Data[f.off:])
	f.off += int64(n)
	return n, nil
}

// ReadAt reads at an explicit offset without moving the file offset.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if !f.flags.Readable() {
		return 0, abi.EBADF
	}
	if f.ino.Type == TypeDevice {
		return f.ino.Dev.Read(f.cred, p, off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.ino.Data)) {
		return 0, nil
	}
	return copy(p, f.ino.Data[off:]), nil
}

// Write writes p at the current offset, growing the file as needed.
func (f *File) Write(p []byte) (int, error) {
	if !f.flags.Writable() {
		return 0, abi.EBADF
	}
	if f.ino.Type == TypeDevice {
		n, err := f.ino.Dev.Write(f.cred, p, f.off)
		f.off += int64(n)
		return n, err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.flags&abi.OAppend != 0 {
		f.off = int64(len(f.ino.Data))
	}
	end := f.off + int64(len(p))
	if end > int64(len(f.ino.Data)) {
		grown := make([]byte, end)
		copy(grown, f.ino.Data)
		f.ino.Data = grown
	}
	copy(f.ino.Data[f.off:], p)
	f.ino.markDirtyRange(f.off, int64(len(p)))
	f.off = end
	return len(p), nil
}

// WriteAt writes at an explicit offset without moving the file offset.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if !f.flags.Writable() {
		return 0, abi.EBADF
	}
	if f.ino.Type == TypeDevice {
		return f.ino.Dev.Write(f.cred, p, off)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.ino.Data)) {
		grown := make([]byte, end)
		copy(grown, f.ino.Data)
		f.ino.Data = grown
	}
	copy(f.ino.Data[off:], p)
	f.ino.markDirtyRange(off, int64(len(p)))
	return len(p), nil
}

// Seek adjusts the file offset.
func (f *File) Seek(off int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case abi.SeekSet:
		base = 0
	case abi.SeekCur:
		base = f.off
	case abi.SeekEnd:
		base = int64(len(f.ino.Data))
	default:
		return 0, abi.EINVAL
	}
	next := base + off
	if next < 0 {
		return 0, abi.EINVAL
	}
	f.off = next
	return next, nil
}

// Offset returns the current file offset.
func (f *File) Offset() int64 { return f.off }

// Stat returns the inode metadata.
func (f *File) Stat() Stat {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return statOf(f.ino)
}

// Ioctl forwards a control request to the device driver; non-device files
// reject it with ENOTTY, matching Linux.
func (f *File) Ioctl(req uint32, arg []byte) ([]byte, error) {
	if f.ino.Type != TypeDevice {
		return nil, abi.ENOTTY
	}
	return f.ino.Dev.Ioctl(f.cred, req, arg)
}

// Sync flushes the inode's buffered pages and reports how many pages were
// written back (the kernel charges flash latency per page).
func (f *File) Sync() int {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.ino.ClearDirty()
}

// Truncate resizes the open file.
func (f *File) Truncate(size int64) error {
	if !f.flags.Writable() {
		return abi.EBADF
	}
	if f.ino.Type != TypeRegular {
		return abi.EINVAL
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	truncateData(f.ino, size)
	return nil
}

// ReadFile is a convenience that reads the whole file at p.
func (fs *FileSystem) ReadFile(cred Cred, p string) ([]byte, error) {
	f, err := fs.Open(cred, p, abi.ORdOnly, 0)
	if err != nil {
		return nil, err
	}
	st := f.Stat()
	buf := make([]byte, st.Size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFile is a convenience that creates/overwrites the file at p.
func (fs *FileSystem) WriteFile(cred Cred, p string, data []byte, mode abi.FileMode) error {
	f, err := fs.Open(cred, p, abi.OWrOnly|abi.OCreat|abi.OTrunc, mode)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	return err
}

// CopyTree replicates the subtree at src in dst within the destination
// filesystem, preserving ownership and modes. It is used during app
// enrollment to mirror the app's private data directory into the CVM
// (Section III-D, File I/O).
func CopyTree(srcFS *FileSystem, src string, dstFS *FileSystem, dst string) error {
	root := Cred{UID: abi.UIDRoot}
	// Lstat: symlinks are replicated as symlinks, not dereferenced.
	st, err := srcFS.LstatPath(root, src)
	if err != nil {
		return err
	}
	switch st.Type {
	case TypeDir:
		if err := dstFS.Mkdir(root, dst, st.Mode); err != nil && err != abi.EEXIST {
			return err
		}
		if err := dstFS.Chown(root, dst, st.UID, st.GID); err != nil {
			return err
		}
		entries, err := srcFS.ReadDir(root, src)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := CopyTree(srcFS, path.Join(src, e.Name), dstFS, path.Join(dst, e.Name)); err != nil {
				return err
			}
		}
	case TypeRegular:
		data, err := srcFS.ReadFile(root, src)
		if err != nil {
			return err
		}
		if err := dstFS.WriteFile(root, dst, data, st.Mode); err != nil {
			return err
		}
		if err := dstFS.Chown(root, dst, st.UID, st.GID); err != nil {
			return err
		}
	case TypeSymlink:
		target, err := srcFS.Readlink(root, src)
		if err != nil {
			return err
		}
		if err := dstFS.Symlink(root, target, dst); err != nil && err != abi.EEXIST {
			return err
		}
	case TypeDevice:
		// Device nodes are environment-specific and are created by each
		// kernel's own boot sequence; skip them during enrollment copy.
	}
	return nil
}
