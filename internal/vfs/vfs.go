// Package vfs implements the in-memory Unix filesystem used by the
// simulated kernels. It models inodes, directories, permission bits with
// UID/GID checks, read-only mounts (the Android /system partition), device
// nodes, symbolic links, and per-inode dirty-page accounting for the
// buffered-write cost model.
//
// The filesystem is a pure data structure: it charges no simulated time.
// Latency accounting is the kernel's job, which uses the page-resolution
// and dirty-page counts this package exposes.
package vfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"anception/internal/abi"
)

// FileType distinguishes inode kinds.
type FileType int

// Inode kinds.
const (
	TypeRegular FileType = iota + 1
	TypeDir
	TypeSymlink
	TypeDevice
)

// String returns a one-letter kind tag as used by ls-style listings.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "-"
	case TypeDir:
		return "d"
	case TypeSymlink:
		return "l"
	case TypeDevice:
		return "c"
	default:
		return "?"
	}
}

// Cred carries the credentials a filesystem operation runs with.
type Cred = abi.Cred

// Device is implemented by device drivers bound to device nodes. Reads,
// writes and ioctls on the node are delegated to the driver.
type Device interface {
	// DevName identifies the device in traces (e.g. "binder", "fb0").
	DevName() string
	// Read fills p starting at off and returns the byte count.
	Read(cred Cred, p []byte, off int64) (int, error)
	// Write stores p at off and returns the byte count.
	Write(cred Cred, p []byte, off int64) (int, error)
	// Ioctl performs a device-specific control operation.
	Ioctl(cred Cred, req uint32, arg []byte) ([]byte, error)
}

// MmapableDevice is implemented by devices that support memory mapping
// (e.g. the framebuffer). Mapping a device that exposes kernel memory is
// one of the exploit channels studied in Section V-A.
type MmapableDevice interface {
	Device
	// MmapKind reports what backing memory a mapping of this device
	// exposes; the kernel uses it to decide frame ownership.
	MmapKind() MmapKind
}

// MmapKind classifies what memory a device mapping exposes.
type MmapKind int

// Mmap kinds.
const (
	// MmapDeviceLocal exposes only device-private buffers.
	MmapDeviceLocal MmapKind = iota + 1
	// MmapKernelMemory exposes kernel memory to the caller; mapping such
	// a device from an unprivileged app is a privilege escalation.
	MmapKernelMemory
)

// Inode is one filesystem object.
type Inode struct {
	Ino   uint64
	Type  FileType
	Mode  abi.FileMode
	UID   int
	GID   int
	Nlink int

	// Data holds file contents for regular files.
	Data []byte
	// Target holds the destination of a symlink.
	Target string
	// Dev is the bound driver for device nodes.
	Dev Device

	children map[string]*Inode // directories only

	// dirtyPages tracks buffered pages not yet flushed; the kernel uses
	// this for sync cost accounting.
	dirtyPages map[int64]struct{}
}

// Stat is the metadata snapshot returned by stat-style calls.
type Stat struct {
	Ino   uint64
	Type  FileType
	Mode  abi.FileMode
	UID   int
	GID   int
	Size  int64
	Nlink int
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Type FileType
	Ino  uint64
}

// FileSystem is a mounted in-memory filesystem tree.
type FileSystem struct {
	mu       sync.Mutex
	root     *Inode
	nextIno  uint64
	roMounts []string // path prefixes mounted read-only
}

// New returns an empty filesystem whose root directory is owned by root
// with mode 0755.
func New() *FileSystem {
	fs := &FileSystem{nextIno: 1}
	fs.root = fs.newInode(TypeDir, 0o755, abi.UIDRoot, abi.UIDRoot)
	return fs
}

func (fs *FileSystem) newInode(t FileType, mode abi.FileMode, uid, gid int) *Inode {
	ino := &Inode{
		Ino:   fs.nextIno,
		Type:  t,
		Mode:  mode,
		UID:   uid,
		GID:   gid,
		Nlink: 1,
	}
	fs.nextIno++
	if t == TypeDir {
		ino.children = make(map[string]*Inode)
		ino.Nlink = 2
	}
	return ino
}

// MountReadOnly marks the subtree at prefix as immutable (like the Android
// /system partition). Mutating operations under it fail with EROFS.
func (fs *FileSystem) MountReadOnly(prefix string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.roMounts = append(fs.roMounts, path.Clean(prefix))
}

// ReadOnlyPath reports whether p falls under a read-only mount.
func (fs *FileSystem) ReadOnlyPath(p string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.readOnlyLocked(path.Clean(p))
}

func (fs *FileSystem) readOnlyLocked(clean string) bool {
	for _, m := range fs.roMounts {
		if clean == m || strings.HasPrefix(clean, m+"/") {
			return true
		}
	}
	return false
}

// splitPath normalizes p and returns its components. An empty slice means
// the root directory.
func splitPath(p string) ([]string, error) {
	if p == "" {
		return nil, abi.ENOENT
	}
	if !strings.HasPrefix(p, "/") {
		return nil, fmt.Errorf("vfs: relative path %q: %w", p, abi.EINVAL)
	}
	clean := path.Clean(p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(clean, "/"), "/"), nil
}

const maxSymlinkDepth = 8

// resolve walks the tree to the inode at p, following symlinks in
// intermediate components and (if followLast) in the final component.
// It checks execute (search) permission on every traversed directory.
func (fs *FileSystem) resolve(cred Cred, p string, followLast bool, depth int) (*Inode, error) {
	if depth > maxSymlinkDepth {
		return nil, abi.ELOOP
	}
	comps, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for i, c := range comps {
		if cur.Type != TypeDir {
			return nil, abi.ENOTDIR
		}
		if !permitted(cred, cur, abi.AccessExec) {
			return nil, abi.EACCES
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, abi.ENOENT
		}
		last := i == len(comps)-1
		if next.Type == TypeSymlink && (!last || followLast) {
			target := next.Target
			if !strings.HasPrefix(target, "/") {
				target = path.Join("/", path.Join(comps[:i]...), target)
			}
			rest := path.Join(comps[i+1:]...)
			full := target
			if rest != "" {
				full = path.Join(target, rest)
			}
			return fs.resolve(cred, full, followLast, depth+1)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent resolves the directory containing p and returns it along
// with the final component name.
func (fs *FileSystem) lookupParent(cred Cred, p string) (*Inode, string, error) {
	comps, err := splitPath(p)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", abi.EEXIST // the root itself
	}
	dirPath := "/" + path.Join(comps[:len(comps)-1]...)
	dir, err := fs.resolve(cred, dirPath, true, 0)
	if err != nil {
		return nil, "", err
	}
	if dir.Type != TypeDir {
		return nil, "", abi.ENOTDIR
	}
	return dir, comps[len(comps)-1], nil
}

// permitted checks one access bit against the inode's permission bits.
func permitted(cred Cred, ino *Inode, want int) bool {
	if cred.Root() {
		return true
	}
	var shift uint
	switch {
	case cred.UID == ino.UID:
		shift = 6
	case cred.GID == ino.GID:
		shift = 3
	default:
		shift = 0
	}
	bits := (int(ino.Mode) >> shift) & 0o7
	return bits&want == want
}

// CheckAccess verifies that cred may access the object at p with the given
// access bits (abi.AccessRead/Write/Exec ORed together).
func (fs *FileSystem) CheckAccess(cred Cred, p string, want int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return err
	}
	if want&abi.AccessWrite != 0 && fs.readOnlyLocked(path.Clean(p)) {
		return abi.EROFS
	}
	if !permitted(cred, ino, want) {
		return abi.EACCES
	}
	return nil
}

// Lookup returns the inode at p following symlinks.
func (fs *FileSystem) Lookup(cred Cred, p string) (*Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.resolve(cred, p, true, 0)
}

// StatPath returns metadata for the object at p, following symlinks.
func (fs *FileSystem) StatPath(cred Cred, p string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return Stat{}, err
	}
	return statOf(ino), nil
}

// LstatPath returns metadata without following a final symlink.
func (fs *FileSystem) LstatPath(cred Cred, p string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, false, 0)
	if err != nil {
		return Stat{}, err
	}
	return statOf(ino), nil
}

func statOf(ino *Inode) Stat {
	return Stat{
		Ino:   ino.Ino,
		Type:  ino.Type,
		Mode:  ino.Mode,
		UID:   ino.UID,
		GID:   ino.GID,
		Size:  int64(len(ino.Data)),
		Nlink: ino.Nlink,
	}
}

// Mkdir creates a directory at p with the given mode.
func (fs *FileSystem) Mkdir(cred Cred, p string, mode abi.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(p)) {
		return abi.EROFS
	}
	dir, name, err := fs.lookupParent(cred, p)
	if err != nil {
		return err
	}
	if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	if _, ok := dir.children[name]; ok {
		return abi.EEXIST
	}
	child := fs.newInode(TypeDir, mode, cred.UID, cred.GID)
	dir.children[name] = child
	dir.Nlink++
	return nil
}

// MkdirAll creates p and any missing parents; it runs with the caller's
// credentials and is primarily a setup helper for platform assembly.
func (fs *FileSystem) MkdirAll(cred Cred, p string, mode abi.FileMode) error {
	comps, err := splitPath(p)
	if err != nil {
		return err
	}
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if err := fs.Mkdir(cred, cur, mode); err != nil && err != abi.EEXIST {
			return fmt.Errorf("mkdirall %q: %w", cur, err)
		}
	}
	return nil
}

// Mknod creates a device node at p bound to dev.
func (fs *FileSystem) Mknod(cred Cred, p string, mode abi.FileMode, dev Device) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, name, err := fs.lookupParent(cred, p)
	if err != nil {
		return err
	}
	if !cred.Root() {
		return abi.EPERM
	}
	if _, ok := dir.children[name]; ok {
		return abi.EEXIST
	}
	child := fs.newInode(TypeDevice, mode, cred.UID, cred.GID)
	child.Dev = dev
	dir.children[name] = child
	return nil
}

// Symlink creates a symbolic link at linkPath pointing at target.
func (fs *FileSystem) Symlink(cred Cred, target, linkPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(linkPath)) {
		return abi.EROFS
	}
	dir, name, err := fs.lookupParent(cred, linkPath)
	if err != nil {
		return err
	}
	if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	if _, ok := dir.children[name]; ok {
		return abi.EEXIST
	}
	child := fs.newInode(TypeSymlink, 0o777, cred.UID, cred.GID)
	child.Target = target
	dir.children[name] = child
	return nil
}

// Readlink returns the target of the symlink at p.
func (fs *FileSystem) Readlink(cred Cred, p string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, false, 0)
	if err != nil {
		return "", err
	}
	if ino.Type != TypeSymlink {
		return "", abi.EINVAL
	}
	return ino.Target, nil
}

// Link creates a hard link newPath referring to the inode at oldPath.
func (fs *FileSystem) Link(cred Cred, oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(newPath)) {
		return abi.EROFS
	}
	src, err := fs.resolve(cred, oldPath, true, 0)
	if err != nil {
		return err
	}
	if src.Type == TypeDir {
		return abi.EISDIR
	}
	dir, name, err := fs.lookupParent(cred, newPath)
	if err != nil {
		return err
	}
	if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	if _, ok := dir.children[name]; ok {
		return abi.EEXIST
	}
	dir.children[name] = src
	src.Nlink++
	return nil
}

// Unlink removes the directory entry at p.
func (fs *FileSystem) Unlink(cred Cred, p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(p)) {
		return abi.EROFS
	}
	dir, name, err := fs.lookupParent(cred, p)
	if err != nil {
		return err
	}
	child, ok := dir.children[name]
	if !ok {
		return abi.ENOENT
	}
	if child.Type == TypeDir {
		return abi.EISDIR
	}
	if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	delete(dir.children, name)
	child.Nlink--
	return nil
}

// Rmdir removes the empty directory at p.
func (fs *FileSystem) Rmdir(cred Cred, p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(p)) {
		return abi.EROFS
	}
	dir, name, err := fs.lookupParent(cred, p)
	if err != nil {
		return err
	}
	child, ok := dir.children[name]
	if !ok {
		return abi.ENOENT
	}
	if child.Type != TypeDir {
		return abi.ENOTDIR
	}
	if len(child.children) != 0 {
		return abi.EBUSY
	}
	if !permitted(cred, dir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	delete(dir.children, name)
	dir.Nlink--
	return nil
}

// Rename moves the entry at oldPath to newPath, replacing a non-directory
// target if present.
func (fs *FileSystem) Rename(cred Cred, oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(oldPath)) || fs.readOnlyLocked(path.Clean(newPath)) {
		return abi.EROFS
	}
	oldDir, oldName, err := fs.lookupParent(cred, oldPath)
	if err != nil {
		return err
	}
	child, ok := oldDir.children[oldName]
	if !ok {
		return abi.ENOENT
	}
	newDir, newName, err := fs.lookupParent(cred, newPath)
	if err != nil {
		return err
	}
	if !permitted(cred, oldDir, abi.AccessWrite|abi.AccessExec) ||
		!permitted(cred, newDir, abi.AccessWrite|abi.AccessExec) {
		return abi.EACCES
	}
	if existing, ok := newDir.children[newName]; ok {
		if existing.Type == TypeDir {
			return abi.EISDIR
		}
	}
	delete(oldDir.children, oldName)
	newDir.children[newName] = child
	return nil
}

// Chmod updates permission bits; only the owner or root may do so.
func (fs *FileSystem) Chmod(cred Cred, p string, mode abi.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return err
	}
	if !cred.Root() && cred.UID != ino.UID {
		return abi.EPERM
	}
	ino.Mode = mode
	return nil
}

// Chown changes ownership; only root may do so (the simplified Linux rule).
func (fs *FileSystem) Chown(cred Cred, p string, uid, gid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return err
	}
	if !cred.Root() {
		return abi.EPERM
	}
	ino.UID, ino.GID = uid, gid
	return nil
}

// ReadDir lists the directory at p in name order.
func (fs *FileSystem) ReadDir(cred Cred, p string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return nil, err
	}
	if ino.Type != TypeDir {
		return nil, abi.ENOTDIR
	}
	if !permitted(cred, ino, abi.AccessRead) {
		return nil, abi.EACCES
	}
	out := make([]DirEntry, 0, len(ino.children))
	for name, child := range ino.children {
		out = append(out, DirEntry{Name: name, Type: child.Type, Ino: child.Ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Truncate sets the file at p to the given size.
func (fs *FileSystem) Truncate(cred Cred, p string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readOnlyLocked(path.Clean(p)) {
		return abi.EROFS
	}
	ino, err := fs.resolve(cred, p, true, 0)
	if err != nil {
		return err
	}
	if ino.Type != TypeRegular {
		return abi.EINVAL
	}
	if !permitted(cred, ino, abi.AccessWrite) {
		return abi.EACCES
	}
	truncateData(ino, size)
	return nil
}

func truncateData(ino *Inode, size int64) {
	switch {
	case size < int64(len(ino.Data)):
		ino.Data = ino.Data[:size]
	case size > int64(len(ino.Data)):
		grown := make([]byte, size)
		copy(grown, ino.Data)
		ino.Data = grown
	}
	ino.markDirtyRange(0, size)
}

func (ino *Inode) markDirtyRange(off, n int64) {
	if ino.dirtyPages == nil {
		ino.dirtyPages = make(map[int64]struct{})
	}
	first := off / abi.PageSize
	last := (off + n) / abi.PageSize
	for pg := first; pg <= last; pg++ {
		ino.dirtyPages[pg] = struct{}{}
	}
}

// DirtyPages reports how many buffered pages of the inode await flush.
func (ino *Inode) DirtyPages() int { return len(ino.dirtyPages) }

// ClearDirty marks all pages clean (called after a simulated flush) and
// returns how many pages were flushed.
func (ino *Inode) ClearDirty() int {
	n := len(ino.dirtyPages)
	ino.dirtyPages = nil
	return n
}
