package supervisor_test

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/supervisor"
)

// TestSupervisedRestartRevokesDeviceGrants is the end-to-end drill: panic
// a grant-enabled container, let the watchdog recover it, and verify the
// sweep ran (no grant left mapped, restart revocations counted) and that
// granted I/O works against the new boot generation.
func TestSupervisedRestartRevokesDeviceGrants(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:           anception.ModeAnception,
		GrantThreshold: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.grant.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}

	fd, err := proc.Open("pre.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 8192)
	if _, err := proc.Pwrite(fd, payload, 0); err != nil {
		t.Fatal(err)
	}
	if d.GrantStats().Calls == 0 {
		t.Fatal("setup write never took the grant path")
	}

	// A grant stranded across the panic, as an in-flight call would leave.
	refs := d.Grants().GrantBatch([][]byte{make([]byte, abi.PageSize)}, true)

	d.InjectGuestPanic("grant drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}

	if _, err := d.Grants().Resolve(refs[0]); !errors.Is(err, abi.EHOSTDOWN) {
		t.Fatalf("stale grant after supervised restart: %v, want EHOSTDOWN", err)
	}
	st := d.GrantStats().Table
	if st.Active != 0 || st.RevokedByRestart < 1 {
		t.Fatalf("table after supervised restart: %+v", st)
	}

	// Fresh granted traffic flows against the new generation.
	fd2, err := proc.Open("post.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Pwrite(fd2, payload, 0); err != nil {
		t.Fatalf("post-restart granted write: %v", err)
	}
	buf := make([]byte, 8192)
	if _, err := proc.PreadInto(fd2, buf, 0); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("post-restart granted read: %v", err)
	}
}
