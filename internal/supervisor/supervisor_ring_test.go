package supervisor_test

import (
	"testing"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/supervisor"
)

// TestSupervisedRestartRearmsRing is the end-to-end drill on a ring device:
// panic the container, let the watchdog recover it, and verify the ring was
// re-armed to the new boot generation and serves fresh traffic.
func TestSupervisedRestartRearmsRing(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:        anception.ModeAnception,
		RingDepth:   16,
		RingWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.ring.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}

	fd, err := proc.Open("pre.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Write(fd, []byte("before panic")); err != nil {
		t.Fatal(err)
	}

	rearmsBefore := d.Layer.Stats().Ring.Rearms
	d.InjectGuestPanic("ring drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}
	if got := d.Layer.Stats().Ring.Rearms; got <= rearmsBefore {
		t.Fatalf("Rearms = %d after supervised restart, want > %d", got, rearmsBefore)
	}

	// Fresh traffic flows through the re-armed ring.
	fd2, err := proc.Open("post.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Write(fd2, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if err := proc.Close(fd2); err != nil {
		t.Fatal(err)
	}
	st := d.Layer.Stats().Ring
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("ring accounting %+v after supervised restart", st)
	}
}
