package supervisor_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/supervisor"
)

// TestSupervisedChainKilledMidChain is the fused-chain fault drill: the
// container panics between links K and K+1 of a 4-link chain, for every
// K. The completed prefix keeps its results, every remaining link fails
// with EHOSTDOWN, the fusion accounting identity holds, and after the
// watchdog recovers the container a fresh chain fuses end to end.
func TestSupervisedChainKilledMidChain(t *testing.T) {
	for killAt := 0; killAt < 4; killAt++ {
		t.Run(fmt.Sprintf("killBeforeLink%d", killAt), func(t *testing.T) {
			d, err := anception.NewDevice(anception.Options{
				Mode:         anception.ModeAnception,
				RingDepth:    16,
				RingWorkers:  2,
				FusionEnable: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
			app, err := d.InstallApp(android.AppSpec{Package: "com.fusion.drill"})
			if err != nil {
				t.Fatal(err)
			}
			proc, err := d.Launch(app)
			if err != nil {
				t.Fatal(err)
			}

			content := []byte("chain drill payload")
			fd, err := proc.Open("drill.dat", abi.ORdWr|abi.OCreat, 0o600)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := proc.Pwrite(fd, content, 0); err != nil {
				t.Fatal(err)
			}
			if err := proc.Close(fd); err != nil {
				t.Fatal(err)
			}

			// One-shot hook: panic the guest just before link killAt
			// executes. The hook runs on the ring worker, exactly where a
			// real mid-chain crash lands.
			var fired atomic.Bool
			d.Layer.SetChainStep(func(next int) {
				if next == killAt && !fired.Swap(true) {
					d.InjectGuestPanic("fusion drill")
				}
			})

			buf := make([]byte, len(content))
			res := proc.Chain(
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysOpen, Path: "drill.dat", Flags: abi.ORdWr}, FDFrom: -1},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysPread64, Buf: buf}, FDFrom: 0},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
			)
			if len(res) != 4 {
				t.Fatalf("chain returned %d results, want 4", len(res))
			}
			if !fired.Load() {
				t.Fatal("chain-step hook never fired")
			}
			for i := 0; i < killAt; i++ {
				if !res[i].Ok() {
					t.Fatalf("link %d (before the kill) failed: %v", i, res[i].Err)
				}
			}
			for i := killAt; i < 4; i++ {
				if !errors.Is(res[i].Err, abi.EHOSTDOWN) {
					t.Fatalf("link %d err = %v, want EHOSTDOWN", i, res[i].Err)
				}
			}

			fs := d.Layer.Stats().Fusion
			if fs.Submitted != fs.Completed+fs.Failed {
				t.Fatalf("accounting identity broken: Submitted=%d Completed=%d Failed=%d",
					fs.Submitted, fs.Completed, fs.Failed)
			}
			if fs.Completed != int64(killAt) || fs.Failed != int64(4-killAt) {
				t.Fatalf("Completed=%d Failed=%d, want %d/%d", fs.Completed, fs.Failed, killAt, 4-killAt)
			}

			if err := sup.RunUntilHealthy(50); err != nil {
				t.Fatalf("watchdog never recovered the container: %v", err)
			}

			// The restarted guest swaps in fresh proxies, dropping the
			// drill hook; a new chain must fuse cleanly end to end.
			buf2 := make([]byte, len(content))
			res2 := proc.Chain(
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysOpen, Path: "drill.dat", Flags: abi.ORdWr}, FDFrom: -1},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysPread64, Buf: buf2}, FDFrom: 0},
				anception.ChainCall{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
			)
			for i, r := range res2 {
				if !r.Ok() {
					t.Fatalf("post-recovery link %d failed: %v", i, r.Err)
				}
			}
			if string(buf2) != string(content) {
				t.Fatalf("post-recovery read = %q, want %q", buf2, content)
			}
			after := d.Layer.Stats().Fusion
			if after.Submitted != after.Completed+after.Failed {
				t.Fatalf("post-recovery accounting identity broken: %+v", after)
			}
		})
	}
}
