package supervisor_test

import (
	"testing"
	"time"

	"anception/internal/supervisor"
)

// bootShardFleet builds n independent supervised devices and groups
// their watchdogs — the supervisor half of the CVM fleet.
func bootShardFleet(t *testing.T, n int) ([]*rig, *supervisor.Group) {
	t.Helper()
	group := supervisor.NewGroup()
	rigs := make([]*rig, 0, n)
	for i := 0; i < n; i++ {
		r := bootSupervised(t, supervisor.Config{}, true)
		t.Cleanup(r.d.Close)
		rigs = append(rigs, r)
		group.Add(r.sup)
	}
	return rigs, group
}

func TestGroupHealthyFleet(t *testing.T) {
	rigs, group := bootShardFleet(t, 3)
	if !group.Tick() {
		t.Fatal("healthy fleet tick reported unhealthy")
	}
	if !group.Healthy() || group.UnhealthyCount() != 0 {
		t.Fatalf("healthy fleet: healthy=%v unhealthy=%d", group.Healthy(), group.UnhealthyCount())
	}
	st := group.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("stats shards = %d/%d, want 3", st.Shards, len(st.PerShard))
	}
	if st.Probes < 3 {
		t.Fatalf("probes = %d, want at least one per shard", st.Probes)
	}
	if st.Restarts != 0 || st.MaxMTTR != 0 {
		t.Fatalf("healthy fleet recorded restarts=%d mttr=%v", st.Restarts, st.MaxMTTR)
	}
	_ = rigs
}

// TestGroupBlastRadiusOneShard panics one shard's guest and asserts the
// group view: exactly one member unhealthy, exactly one member pays
// restart work, and recovery leaves the siblings' counters untouched.
func TestGroupBlastRadiusOneShard(t *testing.T) {
	rigs, group := bootShardFleet(t, 3)
	const bad = 1
	rigs[bad].d.InjectGuestPanic("group drill")

	group.Tick()
	if n := group.UnhealthyCount(); n > 1 {
		t.Fatalf("blast radius = %d shards, want at most 1", n)
	}
	if err := group.RunUntilAllHealthy(100); err != nil {
		t.Fatalf("fleet never recovered: %v", err)
	}
	st := group.Stats()
	if st.Restarts+st.Restores == 0 {
		t.Fatal("no recovery work recorded anywhere")
	}
	for i, per := range st.PerShard {
		if i == bad {
			if per.Restarts+per.Restores == 0 {
				t.Fatalf("bad shard %d recorded no recovery work", i)
			}
			continue
		}
		if per.Restarts != 0 || per.Restores != 0 {
			t.Fatalf("sibling shard %d restarted (%d restarts, %d restores)", i, per.Restarts, per.Restores)
		}
	}
	if st.MaxMTTR <= 0 {
		t.Fatalf("MaxMTTR = %v, want positive", st.MaxMTTR)
	}
	if st.MaxMTTR != st.PerShard[bad].LastMTTR {
		t.Fatalf("MaxMTTR %v != bad shard MTTR %v", st.MaxMTTR, st.PerShard[bad].LastMTTR)
	}
}

// TestGroupIndependentClocks pins that one shard's recovery burns only
// its own sim time: the siblings' clocks advance by heartbeat probes
// alone, not by the wedged shard's restart backoff.
func TestGroupIndependentClocks(t *testing.T) {
	rigs, group := bootShardFleet(t, 2)
	rigs[0].inj.Wedge()

	before := []time.Duration{rigs[0].d.Clock.Now(), rigs[1].d.Clock.Now()}
	if err := group.RunUntilAllHealthy(100); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	burn0 := rigs[0].d.Clock.Now() - before[0]
	burn1 := rigs[1].d.Clock.Now() - before[1]
	if burn0 <= burn1 {
		t.Fatalf("wedged shard burned %v, healthy sibling %v — recovery cost leaked across shards", burn0, burn1)
	}
}

// TestGroupAllShardsDown exercises the failure path: every member down,
// RunUntilAllHealthy still converges, and the group error path reports
// the count when it cannot.
func TestGroupAllShardsDown(t *testing.T) {
	rigs, group := bootShardFleet(t, 2)
	for _, r := range rigs {
		r.d.InjectGuestPanic("total outage")
	}
	group.Tick()
	if err := group.RunUntilAllHealthy(200); err != nil {
		t.Fatalf("fleet never recovered from total outage: %v", err)
	}
	if !group.Healthy() {
		t.Fatal("group not healthy after recovery")
	}
	st := group.Stats()
	for i, per := range st.PerShard {
		if per.Restarts+per.Restores == 0 {
			t.Fatalf("shard %d recorded no recovery work after total outage", i)
		}
	}
}
