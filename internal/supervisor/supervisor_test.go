package supervisor_test

import (
	"errors"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// rig is one supervised Anception platform with a fault injector spliced
// into the data channel.
type rig struct {
	d   *anception.Device
	inj *supervisor.Injector
	sup *supervisor.Supervisor
	app *anception.Proc
}

func bootSupervised(t *testing.T, cfg supervisor.Config, wireChannel bool) *rig {
	t.Helper()
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
	if err != nil {
		t.Fatal(err)
	}
	inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(42), d.Clock, d.Trace)
	d.Layer.SetTransport(inj)
	if wireChannel {
		cfg.Channel = inj
	}
	sup := supervisor.New(d, d.Clock, d.Trace, cfg)

	app, err := d.InstallApp(android.AppSpec{Package: "com.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{d: d, inj: inj, sup: sup, app: proc}
}

// writeDurable persists a file through the redirected path and returns its
// absolute container path for post-recovery verification.
func writeDurable(t *testing.T, r *rig, name, contents string) string {
	t.Helper()
	fd, err := r.app.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.app.Write(fd, []byte(contents)); err != nil {
		t.Fatal(err)
	}
	if err := r.app.Close(fd); err != nil {
		t.Fatal(err)
	}
	return r.app.App.Info.DataDir + "/" + name
}

// assertRecovered runs the invariant every drill must end with: the
// supervisor reports healthy with a bounded MTTR, the app process never
// died, its durable pre-fault state survived, and redirected I/O works.
func assertRecovered(t *testing.T, r *rig, durablePath, contents string) {
	t.Helper()
	if err := r.sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered the container: %v", err)
	}
	st := r.sup.Stats()
	if st.Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}
	if st.LastMTTR <= 0 || st.LastMTTR > 5*time.Second {
		t.Fatalf("MTTR %v outside (0, 5s]", st.LastMTTR)
	}
	if r.app.Task.CurrentState() != kernel.TaskRunning {
		t.Fatal("app process died during the fault")
	}
	data, err := r.d.Guest.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, durablePath)
	if err != nil || string(data) != contents {
		t.Fatalf("durable state after recovery = %q, %v; want %q", data, err, contents)
	}
	fd, err := r.app.Open("post-recovery.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatalf("redirected open after recovery: %v", err)
	}
	if _, err := r.app.Write(fd, []byte("recovered")); err != nil {
		t.Fatalf("redirected write after recovery: %v", err)
	}
}

// TestRecoveryDrills exercises the watchdog against every fault class the
// harness models: transient channel faults (drop, corrupt, truncate), a
// wedged channel, a guest kernel panic, and a killed critical service.
func TestRecoveryDrills(t *testing.T) {
	cases := []struct {
		name   string
		inject func(t *testing.T, r *rig)
		// wantErrno, when nonzero, is checked against the app-visible
		// failure of one redirected call made right after injection.
		wantErrno abi.Errno
	}{
		{
			name: "drop",
			inject: func(t *testing.T, r *rig) {
				r.inj.InjectNext(supervisor.FaultDrop, supervisor.FaultDrop, supervisor.FaultDrop)
			},
			wantErrno: abi.ETIMEDOUT,
		},
		{
			name: "corrupt",
			inject: func(t *testing.T, r *rig) {
				r.inj.InjectNext(supervisor.FaultCorrupt, supervisor.FaultCorrupt)
			},
		},
		{
			name: "truncate",
			inject: func(t *testing.T, r *rig) {
				r.inj.InjectNext(supervisor.FaultTruncate, supervisor.FaultTruncate)
			},
		},
		{
			name:      "hang",
			inject:    func(t *testing.T, r *rig) { r.inj.Wedge() },
			wantErrno: abi.ETIMEDOUT,
		},
		{
			name:      "guest-panic",
			inject:    func(t *testing.T, r *rig) { r.d.InjectGuestPanic("drill") },
			wantErrno: abi.EHOSTDOWN,
		},
		{
			name: "service-kill",
			inject: func(t *testing.T, r *rig) {
				if err := r.d.KillGuestService("vold"); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bootSupervised(t, supervisor.Config{
				CriticalServices: []string{"vold"},
			}, true)
			durable := writeDurable(t, r, "precious.txt", "written before the fault")

			tc.inject(t, r)

			// One app call under the fault. It may fail — but only with a
			// clean errno, never a hang or corruption-induced panic.
			_, err := r.app.Open("during-fault.txt", abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				var errno abi.Errno
				if !errors.As(err, &errno) {
					t.Fatalf("fault surfaced a non-errno error: %v", err)
				}
				if tc.wantErrno != 0 && errno != tc.wantErrno {
					t.Fatalf("errno = %v, want %v", errno, tc.wantErrno)
				}
			} else if tc.wantErrno != 0 {
				t.Fatalf("call under %s fault unexpectedly succeeded", tc.name)
			}

			assertRecovered(t, r, durable, "written before the fault")
			if got := r.d.Trace.Count(sim.EvWatchdog); got == 0 {
				t.Fatal("no watchdog events traced")
			}
		})
	}
}

// TestNoCallBlocksForever: with the channel wedged, every redirected call
// returns ETIMEDOUT after consuming at most its deadline in sim time.
func TestNoCallBlocksForever(t *testing.T) {
	r := bootSupervised(t, supervisor.Config{}, true)
	deadline := r.d.Layer.Deadline()
	r.inj.Wedge()

	calls := []func() error{
		func() error { _, err := r.app.Open("a.txt", abi.OWrOnly|abi.OCreat, 0o600); return err },
		func() error { _, err := r.app.Stat("b.txt"); return err },
		func() error { return r.app.Mkdir("dir", 0o700) },
	}
	for i, call := range calls {
		before := r.d.Clock.Now()
		err := call()
		elapsed := r.d.Clock.Now() - before
		if !errors.Is(err, abi.ETIMEDOUT) {
			t.Fatalf("call %d: err = %v, want ETIMEDOUT", i, err)
		}
		// The deadline plus a small marshaling allowance bounds the call.
		if elapsed > deadline+time.Millisecond {
			t.Fatalf("call %d consumed %v, deadline is %v", i, elapsed, deadline)
		}
	}
	if r.d.Layer.Stats().TimedOut != len(calls) {
		t.Fatalf("TimedOut = %d, want %d", r.d.Layer.Stats().TimedOut, len(calls))
	}
}

// TestCircuitBreaker: when restarts stop helping (the wedge outlives the
// relaunch), the breaker trips into degraded fail-fast mode; apps get
// EAGAIN instantly; a healthy probe closes the breaker again.
func TestCircuitBreaker(t *testing.T) {
	// No Channel wiring: restarts do NOT clear the wedge, so the watchdog
	// burns through its restart budget.
	r := bootSupervised(t, supervisor.Config{
		BreakerThreshold: 3,
		BreakerWindow:    time.Hour,
	}, false)
	r.inj.Wedge()

	for i := 0; i < 10 && !r.sup.Degraded(); i++ {
		r.sup.Tick()
	}
	if !r.sup.Degraded() {
		t.Fatal("breaker never tripped")
	}
	st := r.sup.Stats()
	if st.BreakerTrips != 1 || st.Restarts < 3 {
		t.Fatalf("stats = %+v, want 1 trip after >=3 restarts", st)
	}
	if !r.d.Layer.Degraded() {
		t.Fatal("layer not in degraded mode")
	}

	// Degraded mode: fail fast with EAGAIN, without touching the wedged
	// channel (no sim time burned on the deadline).
	before := r.d.Clock.Now()
	_, err := r.app.Open("during-degraded.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("degraded call err = %v, want EAGAIN", err)
	}
	if elapsed := r.d.Clock.Now() - before; elapsed > time.Millisecond {
		t.Fatalf("degraded call burned %v of sim time", elapsed)
	}
	if r.d.Layer.Stats().FailedFast == 0 {
		t.Fatal("FailedFast counter not bumped")
	}

	// While degraded the watchdog keeps probing but stops restarting.
	restartsBefore := r.sup.Stats().Restarts
	r.sup.Tick()
	if got := r.sup.Stats().Restarts; got != restartsBefore {
		t.Fatalf("restart while degraded: %d -> %d", restartsBefore, got)
	}

	// The operator (or a channel rebuild) clears the wedge: the next probe
	// succeeds, half-open -> closed, and redirection resumes.
	r.inj.Unwedge()
	if err := r.sup.RunUntilHealthy(10); err != nil {
		t.Fatal(err)
	}
	if r.sup.Degraded() || r.d.Layer.Degraded() {
		t.Fatal("breaker still open after healthy probe")
	}
	if _, err := r.app.Open("after-breaker.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatalf("redirected open after breaker close: %v", err)
	}
	if r.sup.Stats().Recoveries == 0 {
		t.Fatal("no recovery recorded after breaker close")
	}
}

// TestProbabilisticChaosIsDeterministic: two runs with the same RNG seed
// inject the same fault sequence — the harness's reproducibility claim.
func TestProbabilisticChaosIsDeterministic(t *testing.T) {
	run := func() (supervisor.InjectorStats, anception.LayerStats) {
		r := bootSupervised(t, supervisor.Config{}, true)
		r.inj.SetProbability(supervisor.FaultDrop, 0.3)
		r.inj.SetProbability(supervisor.FaultCorrupt, 0.2)
		for i := 0; i < 40; i++ {
			fd, err := r.app.Open("chaos.txt", abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				continue
			}
			_, _ = r.app.Write(fd, []byte("x"))
			_ = r.app.Close(fd)
		}
		return r.inj.Stats(), r.d.Layer.Stats()
	}
	i1, l1 := run()
	i2, l2 := run()
	if i1.RoundTrips != i2.RoundTrips {
		t.Fatalf("round trips diverged: %d vs %d", i1.RoundTrips, i2.RoundTrips)
	}
	for _, k := range []supervisor.FaultKind{supervisor.FaultDrop, supervisor.FaultCorrupt} {
		if i1.Injected[k] != i2.Injected[k] {
			t.Fatalf("%v injections diverged: %d vs %d", k, i1.Injected[k], i2.Injected[k])
		}
	}
	if i1.Injected[supervisor.FaultDrop] == 0 {
		t.Fatal("probability mode injected nothing")
	}
	if l1.TimedOut != l2.TimedOut || l1.Redirected != l2.Redirected {
		t.Fatalf("layer stats diverged: %+v vs %+v", l1, l2)
	}
}

// TestDelayFaultBlowsDeadline: an injected delay larger than the call
// deadline turns a completed call into ETIMEDOUT.
func TestDelayFaultBlowsDeadline(t *testing.T) {
	r := bootSupervised(t, supervisor.Config{}, true)
	r.inj.InjectNext(supervisor.FaultDelay)
	_, err := r.app.Open("slow.txt", abi.OWrOnly|abi.OCreat, 0o600)
	if !errors.Is(err, abi.ETIMEDOUT) {
		t.Fatalf("delayed call err = %v, want ETIMEDOUT", err)
	}
	if r.d.Layer.Stats().TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", r.d.Layer.Stats().TimedOut)
	}
	// The next call is clean.
	if _, err := r.app.Open("fast.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatal(err)
	}
}
