package supervisor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"anception/internal/sim"
)

// Target is the platform surface the watchdog drives. *anception.Device
// satisfies it structurally (no anception import here — it would cycle).
type Target interface {
	// Probe sends one heartbeat over the data channel; nil means healthy.
	Probe() error
	// RestartCVM reboots the container on its persistent filesystem.
	RestartCVM() error
	// SetDegraded toggles fail-fast mode on the redirection layer.
	SetDegraded(on bool)
	// GuestServiceAlive reports whether a named container service runs.
	GuestServiceAlive(name string) bool
}

// EpochAdvancer is implemented by targets with warm fast-path state
// keyed to the container's boot generation (grants, async ring, socket
// and binder fast paths, redirection cache). After every successful
// restart the supervisor advances the target's epoch once; the target
// drains every fast path in its own pinned order so nothing warmed
// against the old container boot can ever be served against the new one.
// This single hook replaced the five per-path drain hooks
// (GrantRevoker, RingDrainer, SocketDrainer, BinderDrainer,
// CacheInvalidator); the ordering contract now lives with the target —
// see anception.Layer.AdvanceEpoch.
type EpochAdvancer interface {
	AdvanceEpoch()
}

// SnapshotRestorer is implemented by targets with a hypervisor snapshot
// engine. When the watchdog finds the container down and a usable
// checkpoint exists, it prefers rewinding to it over a cold RestartCVM:
// no reboot, no backoff, and warm state provably unchanged since the
// checkpoint survives. RestoreFromSnapshot must leave the target fully
// reconciled (ring re-armed, stale grants swept, binder and cache rolled)
// — the supervisor does not advance the target's epoch on the restore
// path (a wholesale drain would destroy exactly the warm state the
// restore preserved). A failed restore (corrupt image, staleness) falls
// back to the cold path in the same tick.
type SnapshotRestorer interface {
	SnapshotUsable() bool
	RestoreFromSnapshot() error
}

// Checkpointer is implemented by targets that can seal checkpoints of a
// healthy container. The supervisor drives the periodic policy: every
// healthy probe offers the target a chance to checkpoint (the target
// throttles to its configured interval). Checkpoints are only ever taken
// on healthy probes — an image of a wedged guest would faithfully
// preserve the wedge.
type Checkpointer interface {
	MaybeCheckpoint() bool
}

// Config tunes the watchdog. Zero values take the documented defaults.
type Config struct {
	// Heartbeat is the sim-time probe cadence (default 50 ms).
	Heartbeat time.Duration
	// BackoffBase is the pause before the first restart attempt; it
	// doubles per consecutive failure (default 10 ms).
	BackoffBase time.Duration
	// BackoffMax caps the pause (default 500 ms).
	BackoffMax time.Duration
	// BreakerThreshold trips the circuit breaker after this many restarts
	// inside BreakerWindow (default 5).
	BreakerThreshold int
	// BreakerWindow is the sliding window for BreakerThreshold
	// (default 10 s).
	BreakerWindow time.Duration
	// CriticalServices are container services whose death fails a probe
	// even when the channel itself answers.
	CriticalServices []string
	// Channel, when set, is unwedged after every successful restart —
	// the relaunch rebuilt the data channel, clearing a wedge.
	Channel *Injector
	// RestoreMaxFailures is how many consecutive snapshot-restore failures
	// the watchdog tolerates before it stops preferring the restore path
	// and escalates to cold restarts for the remainder of the outage
	// (default 2). This is the escalation rung below the circuit breaker:
	// restore -> cold restart -> breaker/degraded.
	RestoreMaxFailures int
}

func (c *Config) applyDefaults() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 50 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	if c.RestoreMaxFailures <= 0 {
		c.RestoreMaxFailures = 2
	}
}

// Stats counts what the supervisor observed and did, in sim time.
type Stats struct {
	Probes          int
	ProbeFailures   int
	Restarts        int
	RestartFailures int
	// Restores counts recoveries served by the snapshot-restore fast path;
	// RestoreFailures counts restore attempts that fell back cold (corrupt
	// image, stale generation, or a post-restore probe failure).
	Restores        int
	RestoreFailures int
	BreakerTrips    int
	// Recoveries counts down->up transitions; MTTR aggregates are over
	// these.
	Recoveries int
	LastMTTR   time.Duration
	TotalMTTR  time.Duration
}

// MeanMTTR is the mean sim-time to recovery across all recoveries.
func (s Stats) MeanMTTR() time.Duration {
	if s.Recoveries == 0 {
		return 0
	}
	return s.TotalMTTR / time.Duration(s.Recoveries)
}

// Supervisor is the watchdog: Tick() advances one heartbeat period,
// probes the container, and reacts — restart with exponential backoff on
// failure, breaker trip into degraded mode when restarts keep happening,
// breaker close (and MTTR record) on the first healthy probe after an
// outage.
type Supervisor struct {
	cfg    Config
	target Target
	clock  *sim.Clock
	trace  *sim.Trace

	mu          sync.Mutex
	stats       Stats
	healthy     bool
	downSince   time.Duration
	consecutive int // consecutive failed probe/restart cycles, drives backoff
	// restoreFails counts consecutive snapshot-restore failures this
	// outage; at RestoreMaxFailures the watchdog escalates to cold
	// restarts. Reset on the next healthy probe.
	restoreFails int
	restartLog   []time.Duration
	degraded     bool
	lastErr      error
}

// New builds a supervisor around a target. The clock must be the same sim
// clock the platform runs on.
func New(target Target, clock *sim.Clock, trace *sim.Trace, cfg Config) *Supervisor {
	cfg.applyDefaults()
	return &Supervisor{cfg: cfg, target: target, clock: clock, trace: trace, healthy: true}
}

// Stats returns a copy of the counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Healthy reports whether the last probe succeeded.
func (s *Supervisor) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healthy
}

// Degraded reports whether the breaker is open.
func (s *Supervisor) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// LastError returns the most recent probe or restart error (nil when
// healthy).
func (s *Supervisor) LastError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// probe runs the channel heartbeat and the critical-service checks.
func (s *Supervisor) probe() error {
	if err := s.target.Probe(); err != nil {
		return err
	}
	for _, name := range s.cfg.CriticalServices {
		if !s.target.GuestServiceAlive(name) {
			return fmt.Errorf("critical service %q dead", name)
		}
	}
	return nil
}

// Tick advances one heartbeat period and runs one probe/react cycle.
// It returns true when the container is healthy after the cycle.
func (s *Supervisor) Tick() bool {
	s.clock.Advance(s.cfg.Heartbeat)
	s.mu.Lock()
	s.stats.Probes++
	s.mu.Unlock()

	err := s.probe()
	if err == nil {
		s.noteHealthy()
		return true
	}
	s.noteFailure(err)

	// The breaker stays open until a probe succeeds (half-open semantics
	// are in noteHealthy); while open we do not restart — restarts are
	// what tripped it.
	if s.Degraded() {
		return false
	}

	// Restore-first policy: when a usable checkpoint exists, rewind to it
	// instead of cold-rebooting — no backoff (the restore is cheap enough
	// to attempt immediately) and no drain hooks (the target's restore
	// reconciles its own warm state; the hooks would wrongly sweep the
	// surviving entries). This is the escalation ladder's bottom rung:
	// after RestoreMaxFailures consecutive restore failures the watchdog
	// stops trusting the snapshot path and escalates to cold restarts,
	// which in turn escalate to the circuit breaker.
	if sr, ok := s.target.(SnapshotRestorer); ok {
		s.mu.Lock()
		tries := s.restoreFails
		s.mu.Unlock()
		if tries < s.cfg.RestoreMaxFailures && sr.SnapshotUsable() {
			if rerr := sr.RestoreFromSnapshot(); rerr != nil {
				s.mu.Lock()
				s.stats.RestoreFailures++
				s.restoreFails++
				s.lastErr = rerr
				s.mu.Unlock()
				if s.trace != nil {
					s.trace.Record(sim.EvWatchdog, "snapshot restore failed (%v); falling back to cold restart", rerr)
				}
				// Fall through to the cold path in this same tick.
			} else {
				s.mu.Lock()
				s.stats.Restores++
				s.mu.Unlock()
				// The restore rebuilt the channel mapping: clear any wedge.
				if s.cfg.Channel != nil {
					s.cfg.Channel.Unwedge()
				}
				if s.trace != nil {
					s.trace.Record(sim.EvWatchdog, "container restored from checkpoint; probing")
				}
				if err := s.probe(); err == nil {
					s.noteHealthy()
					return true
				} else {
					// Restored but still unhealthy: the checkpoint did not
					// cure the fault. Count it against the restore rung so
					// the next tick escalates toward a cold restart.
					s.mu.Lock()
					s.stats.RestoreFailures++
					s.restoreFails++
					s.lastErr = err
					s.mu.Unlock()
					return false
				}
			}
		}
	}

	// Back off, then restart. Backoff is sim time: the watchdog waits
	// before burning another reboot.
	s.mu.Lock()
	backoff := s.cfg.BackoffBase << s.consecutive
	if backoff > s.cfg.BackoffMax || backoff <= 0 {
		backoff = s.cfg.BackoffMax
	}
	s.consecutive++
	s.mu.Unlock()
	s.clock.Advance(backoff)
	if s.trace != nil {
		s.trace.Record(sim.EvWatchdog, "probe failed (%v); restarting CVM after %v backoff", err, backoff)
	}

	if rerr := s.target.RestartCVM(); rerr != nil {
		s.mu.Lock()
		s.stats.RestartFailures++
		s.lastErr = rerr
		s.mu.Unlock()
		if s.trace != nil {
			s.trace.Record(sim.EvWatchdog, "restart failed: %v", rerr)
		}
		return false
	}
	s.mu.Lock()
	s.stats.Restarts++
	now := s.clock.Now()
	s.restartLog = append(s.restartLog, now)
	trip := s.countRestartsSinceLocked(now-s.cfg.BreakerWindow) >= s.cfg.BreakerThreshold
	if trip {
		s.degraded = true
		s.stats.BreakerTrips++
	}
	s.mu.Unlock()
	// A successful relaunch rebuilt the data channel: clear any wedge.
	if s.cfg.Channel != nil {
		s.cfg.Channel.Unwedge()
	}
	s.runPostRestartHooks()
	if trip {
		s.target.SetDegraded(true)
		if s.trace != nil {
			s.trace.Record(sim.EvWatchdog, "circuit breaker tripped: %d restarts within %v; entering degraded mode",
				s.cfg.BreakerThreshold, s.cfg.BreakerWindow)
		}
	}

	// Re-probe immediately: a good restart recovers within this tick.
	if err := s.probe(); err == nil {
		s.noteHealthy()
		return true
	} else {
		s.mu.Lock()
		s.lastErr = err
		s.mu.Unlock()
	}
	return false
}

// runPostRestartHooks rolls the target's warm state to the new boot
// generation after every successful cold restart via the target's single
// epoch entry point. The per-path drain ordering (grants → ring →
// sockets → binder → cache) is the target's contract now — see
// anception.Layer.AdvanceEpoch for the rationale and the tests that pin
// it. The snapshot-restore path deliberately does NOT advance the epoch:
// RestoreFromSnapshot reconciles warm state generation-aware, and a
// wholesale sweep would destroy exactly the state the restore path
// exists to preserve.
func (s *Supervisor) runPostRestartHooks() {
	if ea, ok := s.target.(EpochAdvancer); ok {
		ea.AdvanceEpoch()
	}
}

// countRestartsSinceLocked counts restarts at or after cutoff; callers
// hold s.mu.
func (s *Supervisor) countRestartsSinceLocked(cutoff time.Duration) int {
	n := 0
	for _, at := range s.restartLog {
		if at >= cutoff {
			n++
		}
	}
	return n
}

// noteHealthy records a successful probe: close the breaker if it was
// open (half-open -> closed), and record MTTR if we were down.
func (s *Supervisor) noteHealthy() {
	s.mu.Lock()
	wasDown := !s.healthy
	wasDegraded := s.degraded
	s.healthy = true
	s.degraded = false
	s.consecutive = 0
	s.restoreFails = 0
	s.lastErr = nil
	var mttr time.Duration
	if wasDown {
		mttr = s.clock.Now() - s.downSince
		s.stats.Recoveries++
		s.stats.LastMTTR = mttr
		s.stats.TotalMTTR += mttr
	}
	s.mu.Unlock()
	if wasDegraded {
		s.target.SetDegraded(false)
		if s.trace != nil {
			s.trace.Record(sim.EvWatchdog, "circuit breaker closed: probe healthy again")
		}
	}
	if wasDown && s.trace != nil {
		s.trace.Record(sim.EvWatchdog, "container recovered; MTTR %v", mttr)
	}
	// A healthy probe is the only safe moment to seal a checkpoint; the
	// target throttles to its own interval.
	if cp, ok := s.target.(Checkpointer); ok {
		cp.MaybeCheckpoint()
	}
}

// noteFailure records a failed probe, starting the outage clock on the
// first failure.
func (s *Supervisor) noteFailure(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ProbeFailures++
	s.lastErr = err
	if s.healthy {
		s.healthy = false
		s.downSince = s.clock.Now()
	}
}

// RunUntilHealthy ticks until the container is healthy again or maxTicks
// cycles pass; it returns an error in the latter case. Drills use it as
// "let the watchdog do its job, bounded".
func (s *Supervisor) RunUntilHealthy(maxTicks int) error {
	for n := 0; n < maxTicks; n++ {
		if s.Tick() {
			return nil
		}
	}
	return fmt.Errorf("container not healthy after %d ticks: %w", maxTicks, errLast(s.LastError()))
}

// errLast keeps RunUntilHealthy's %w well-formed when no error was seen.
func errLast(err error) error {
	if err == nil {
		return errors.New("no probe error recorded")
	}
	return err
}
