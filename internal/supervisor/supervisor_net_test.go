package supervisor_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/netstack"
	"anception/internal/supervisor"
)

// TestSupervisedRestartRollsSocketGeneration is the end-to-end regression
// drill for the boot-generation rollover: after a supervised restart the
// fresh guest stack is keyed to the new CVM generation (so ConnectPolicy
// re-checks fire, see netstack's generation-roll tests), a policy swapped
// in around the restart governs new connects, and the socket accounting
// identity holds across the churn.
func TestSupervisedRestartRollsSocketGeneration(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:         anception.ModeAnception,
		RingDepth:    16,
		RingWorkers:  2,
		CallDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.net.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}

	d.RegisterRemote("bank.com:443", func(req []byte) []byte { return []byte("ok") })
	fd, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Connect(fd, "bank.com:443"); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Send(fd, []byte("q")); err != nil {
		t.Fatal(err)
	}
	genBefore := d.Guest.Net().Generation()

	d.InjectGuestPanic("socket drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}

	// The SocketDrainer hook keyed the fresh guest stack to the new boot
	// generation.
	if got, want := d.Guest.Net().Generation(), uint64(d.CVM.Generation()); got != want || got <= genBefore {
		t.Fatalf("guest stack generation = %d, want %d (> %d)", got, want, genBefore)
	}
	if st := d.NetStats(); st.Drains < 1 {
		t.Fatalf("Drains = %d after supervised restart, want >= 1", st.Drains)
	}

	// A deny policy swapped in with the restart governs the new container:
	// the remote is re-registered (remotes died with the old guest) but
	// the firewall refuses the connect.
	d.RegisterRemote("bank.com:443", func(req []byte) []byte { return []byte("ok") })
	d.SetCVMFirewall(func(cred abi.Cred, addr string) error {
		return fmt.Errorf("firewalled by host policy: %w", abi.ENETUNREACH)
	})
	fd2, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Connect(fd2, "bank.com:443"); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("connect under post-restart deny policy: %v, want ENETUNREACH", err)
	}

	// Lifting it restores service on the new container.
	d.SetCVMFirewall(nil)
	fd3, err := proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Connect(fd3, "bank.com:443"); err != nil {
		t.Fatalf("connect after lifting policy: %v", err)
	}
	if _, err := proc.Send(fd3, []byte("q")); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}

	st := d.NetStats()
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("socket accounting %+v after supervised restart", st)
	}
}

// TestSocketChurnUnderRestarts: workers hammer connect/send/recv/close
// from several goroutines while the container is panicked and recovered
// repeatedly. Every failure an app observes must be a clean errno — never
// a raw data race or non-errno error — and at the end the socket-op
// accounting identity Submitted = Completed + Failed holds exactly. Run
// under -race in CI.
func TestSocketChurnUnderRestarts(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:         anception.ModeAnception,
		RingDepth:    16,
		RingWorkers:  4,
		CallDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	d.RegisterRemote("sink:1", func(req []byte) []byte { return []byte("ack") })

	const workers = 4
	apps := make([]*anception.Proc, workers)
	for i := range apps {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.churn%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if apps[i], err = d.Launch(app); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *anception.Proc) {
			defer wg.Done()
			report := func(err error) {
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				fd, err := app.Socket(netstack.AFInet, netstack.SockStream, 0)
				if err != nil {
					report(err)
					continue
				}
				if err := app.Connect(fd, "sink:1"); err != nil {
					report(err)
					report(app.Close(fd))
					continue
				}
				if _, err := app.Send(fd, []byte("ping")); err != nil {
					report(err)
				}
				if _, err := app.Recv(fd, 8); err != nil {
					report(err)
				}
				report(app.Close(fd))
			}
		}(i, app)
	}

	for r := 0; r < 5; r++ {
		d.InjectGuestPanic(fmt.Sprintf("churn round %d", r))
		if err := sup.RunUntilHealthy(50); err != nil {
			t.Fatalf("round %d: watchdog never recovered: %v", r, err)
		}
		// Remotes die with the old guest stack; re-arm the sink so the
		// next round's connects can succeed again.
		d.RegisterRemote("sink:1", func(req []byte) []byte { return []byte("ack") })
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	st := d.NetStats()
	if st.Submitted == 0 {
		t.Fatal("churn produced no forwarded socket ops")
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("socket accounting broken under churn: %+v", st)
	}
	if got, want := d.Guest.Net().Generation(), uint64(d.CVM.Generation()); got != want {
		t.Fatalf("final stack generation = %d, want %d", got, want)
	}
}
