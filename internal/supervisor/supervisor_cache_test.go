package supervisor_test

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// fakeTarget is a minimal supervisor target recording what the watchdog
// asked of it.
type fakeTarget struct {
	healthy     bool
	failRestart bool
	restarts    int
	epochs      int
}

func (f *fakeTarget) Probe() error {
	if f.healthy {
		return nil
	}
	return errors.New("container down")
}

func (f *fakeTarget) RestartCVM() error {
	if f.failRestart {
		return errors.New("restart failed")
	}
	f.restarts++
	f.healthy = true
	return nil
}

func (f *fakeTarget) SetDegraded(bool)              {}
func (f *fakeTarget) GuestServiceAlive(string) bool { return true }
func (f *fakeTarget) AdvanceEpoch()                 { f.epochs++ }

// TestSupervisorAdvancesEpochAfterRestart: a target exposing AdvanceEpoch
// (the single drain entry point that replaced the five per-path hooks)
// gets it called exactly once per successful restart, and never when the
// restart itself failed.
func TestSupervisorAdvancesEpochAfterRestart(t *testing.T) {
	ft := &fakeTarget{healthy: false}
	sup := supervisor.New(ft, sim.NewClock(), nil, supervisor.Config{})
	if sup.Tick() != true {
		t.Fatal("restart should have recovered the target within the tick")
	}
	if ft.restarts != 1 || ft.epochs != 1 {
		t.Fatalf("restarts=%d epochs=%d, want 1/1", ft.restarts, ft.epochs)
	}

	broken := &fakeTarget{healthy: false, failRestart: true}
	sup2 := supervisor.New(broken, sim.NewClock(), nil, supervisor.Config{})
	sup2.Tick()
	if broken.epochs != 0 {
		t.Fatalf("failed restart must not advance the epoch: %d", broken.epochs)
	}
}

// TestSupervisedRestartDropsWarmCache is the end-to-end recovery drill for
// the redirection cache: warm the page cache, panic the container, let the
// watchdog restart it, and verify no stale page is served afterwards.
func TestSupervisedRestartDropsWarmCache(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception, RedirCache: true})
	if err != nil {
		t.Fatal(err)
	}
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.cache.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}

	data := []byte("pre-fault page")
	fd, err := proc.Open("warm.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Pwrite(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if got, err := proc.Pread(fd, len(data), 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("warm read: %q, %v", got, err)
	}

	invBefore := d.Layer.Stats().Cache.Invalidations
	d.InjectGuestPanic("cache drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}
	if d.Layer.Stats().Cache.Invalidations <= invBefore {
		t.Fatal("supervised restart must invalidate the redirection cache")
	}

	// The stale descriptor must surface an error, never the cached page.
	if got, err := proc.Pread(fd, len(data), 0); err == nil {
		t.Fatalf("stale-fd read served %q after supervised restart", got)
	}
	// The durable (fsynced) content survives and is re-fetched fresh.
	fd2, err := proc.Open("warm.dat", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := proc.Pread(fd2, len(data), 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-recovery read: %q, %v", got, err)
	}
}
