package supervisor_test

import (
	"testing"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// binderTarget is fakeTarget plus the BinderDrainer surface.
type binderTarget struct {
	fakeTarget
	drains int
}

func (b *binderTarget) DrainBinder() { b.drains++ }

// TestSupervisorDrainsBinderAfterRestart: a target exposing DrainBinder
// gets it called exactly once per successful restart — and never when the
// restart itself failed — mirroring the ring and grant hooks.
func TestSupervisorDrainsBinderAfterRestart(t *testing.T) {
	bt := &binderTarget{fakeTarget: fakeTarget{healthy: false}}
	sup := supervisor.New(bt, sim.NewClock(), nil, supervisor.Config{})
	if sup.Tick() != true {
		t.Fatal("restart should have recovered the target within the tick")
	}
	if bt.restarts != 1 || bt.drains != 1 {
		t.Fatalf("restarts=%d drains=%d, want 1/1", bt.restarts, bt.drains)
	}

	broken := &binderTarget{fakeTarget: fakeTarget{healthy: false, failRestart: true}}
	sup2 := supervisor.New(broken, sim.NewClock(), nil, supervisor.Config{})
	sup2.Tick()
	if broken.drains != 0 {
		t.Fatalf("failed restart must not drain the binder fast path: %d", broken.drains)
	}
}

// TestSupervisedRestartDrainsBinderSessions is the end-to-end drill: panic
// a container carrying live binder sessions, let the watchdog recover it,
// and verify the sessions were drained and fresh transactions re-enroll.
func TestSupervisedRestartDrainsBinderSessions(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:             anception.ModeAnception,
		BinderSessions:   true,
		BinderReplyCache: true,
		CallDeadline:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.binder.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := proc.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := proc.BinderCall(fd, "location", android.CodeGetLocation, []byte("fix")); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.BinderStats(); st.SessionsOpened != 1 || st.ReplyHits != 1 {
		t.Fatalf("pre-drill stats = %+v", st)
	}

	d.InjectGuestPanic("binder drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}
	if st := d.BinderStats(); st.DrainedSessions != 1 {
		t.Fatalf("DrainedSessions = %d after supervised restart, want 1", st.DrainedSessions)
	}

	// Fresh traffic re-enrolls on the new container, and the pre-panic
	// reply is not served across the generation roll.
	if _, err := proc.BinderCall(fd, "location", android.CodeGetLocation, []byte("fix")); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	st := d.BinderStats()
	if st.SessionsOpened != 2 || st.ReplyHits != 1 {
		t.Fatalf("post-recovery stats = %+v, want a fresh session and no stale hit", st)
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("binder accounting %+v after supervised restart", st)
	}
}
