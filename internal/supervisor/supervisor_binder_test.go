package supervisor_test

import (
	"testing"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/supervisor"
)

// TestSupervisedRestartDrainsBinderSessions is the end-to-end drill: panic
// a container carrying live binder sessions, let the watchdog recover it,
// and verify the sessions were drained and fresh transactions re-enroll.
func TestSupervisedRestartDrainsBinderSessions(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{
		Mode:             anception.ModeAnception,
		BinderSessions:   true,
		BinderReplyCache: true,
		CallDeadline:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{})
	app, err := d.InstallApp(android.AppSpec{Package: "com.binder.drill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := proc.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := proc.BinderCall(fd, "location", android.CodeGetLocation, []byte("fix")); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.BinderStats(); st.SessionsOpened != 1 || st.ReplyHits != 1 {
		t.Fatalf("pre-drill stats = %+v", st)
	}

	d.InjectGuestPanic("binder drill")
	if err := sup.RunUntilHealthy(50); err != nil {
		t.Fatalf("watchdog never recovered: %v", err)
	}
	if st := d.BinderStats(); st.DrainedSessions != 1 {
		t.Fatalf("DrainedSessions = %d after supervised restart, want 1", st.DrainedSessions)
	}

	// Fresh traffic re-enrolls on the new container, and the pre-panic
	// reply is not served across the generation roll.
	if _, err := proc.BinderCall(fd, "location", android.CodeGetLocation, []byte("fix")); err != nil {
		t.Fatalf("post-recovery call: %v", err)
	}
	st := d.BinderStats()
	if st.SessionsOpened != 2 || st.ReplyHits != 1 {
		t.Fatalf("post-recovery stats = %+v, want a fresh session and no stale hit", st)
	}
	if st.Submitted != st.Completed+st.Failed {
		t.Fatalf("binder accounting %+v after supervised restart", st)
	}
}
