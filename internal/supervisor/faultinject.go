// Package supervisor implements the CVM's crash-only recovery machinery:
// a deterministic fault-injection harness for the data channel, and a
// watchdog that detects container panics and hangs via heartbeat probes,
// restarts the CVM with exponential backoff, and trips a circuit breaker
// into degraded fail-fast mode when restarts stop helping.
//
// The package deliberately depends only on abi, marshal, and sim so it can
// wrap any platform; *anception.Device satisfies Target structurally.
package supervisor

import (
	"fmt"
	"sync"
	"time"

	"anception/internal/marshal"
	"anception/internal/sim"
)

// FaultKind names one way a data-channel round-trip can go wrong.
type FaultKind int

// Fault kinds the injector can apply.
const (
	FaultNone FaultKind = iota
	// FaultDrop loses one request: the round-trip never completes.
	FaultDrop
	// FaultDelay completes the round-trip but charges extra sim time,
	// typically enough to blow the call's deadline.
	FaultDelay
	// FaultCorrupt flips bytes in the response.
	FaultCorrupt
	// FaultTruncate returns only a prefix of the response.
	FaultTruncate
	// FaultHang wedges the channel: this and every later round-trip hangs
	// until Unwedge (a CVM relaunch rebuilds the channel).
	FaultHang
	// FaultSnapshotCorrupt rots the hypervisor's latest checkpoint image
	// (via the hook installed with SetSnapshotCorrupter) and then lets the
	// round-trip proceed untouched. Recovery drills use it to prove the
	// restore path detects the bad checksum and falls back to a cold
	// restart instead of resuming a corrupted guest.
	FaultSnapshotCorrupt
)

// String names the fault for traces and reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultHang:
		return "hang"
	case FaultSnapshotCorrupt:
		return "snapshot-corrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// DefaultInjectedDelay is the extra latency a FaultDelay charges. It is
// deliberately larger than the layer's default call deadline so a delayed
// call is a timed-out call.
const DefaultInjectedDelay = 150 * time.Millisecond

// InjectorStats counts what the injector did.
type InjectorStats struct {
	RoundTrips int
	Injected   map[FaultKind]int
}

// Injector is a marshal.Transport decorator that deterministically
// injects faults into round-trips. Faults come from two sources, checked
// in order: an explicit one-shot queue (InjectNext) for scripted drills,
// and per-kind probabilities driven by the deterministic RNG for chaos
// runs. A wedged channel overrides both.
type Injector struct {
	inner marshal.Transport
	rng   *sim.RNG
	clock *sim.Clock
	trace *sim.Trace

	mu        sync.Mutex
	queue     []FaultKind
	probs     map[FaultKind]float64
	delay     time.Duration
	wedged    bool
	corrupter func()
	stats     InjectorStats
}

var _ marshal.Transport = (*Injector)(nil)
var _ marshal.LivenessSetter = (*Injector)(nil)

// NewInjector wraps a transport. The RNG drives probability-mode faults
// and corruption positions; pass a fixed seed for reproducible drills.
func NewInjector(inner marshal.Transport, rng *sim.RNG, clock *sim.Clock, trace *sim.Trace) *Injector {
	return &Injector{
		inner: inner,
		rng:   rng,
		clock: clock,
		trace: trace,
		probs: make(map[FaultKind]float64),
		delay: DefaultInjectedDelay,
	}
}

// Name implements marshal.Transport.
func (i *Injector) Name() string { return "fault:" + i.inner.Name() }

// SetLiveness implements marshal.LivenessSetter by delegating to the
// wrapped transport, so liveness wiring survives injector insertion.
func (i *Injector) SetLiveness(probe func() bool) {
	if ls, ok := i.inner.(marshal.LivenessSetter); ok {
		ls.SetLiveness(probe)
	}
}

// Inner returns the wrapped transport.
func (i *Injector) Inner() marshal.Transport { return i.inner }

// InjectNext queues one-shot faults, consumed in order by subsequent
// round-trips. Scripted drills use this for exact, reproducible bursts.
func (i *Injector) InjectNext(kinds ...FaultKind) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.queue = append(i.queue, kinds...)
}

// SetProbability makes each round-trip suffer the fault with probability
// p (0 clears). Queue entries still take precedence.
func (i *Injector) SetProbability(kind FaultKind, p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if p <= 0 {
		delete(i.probs, kind)
		return
	}
	i.probs[kind] = p
}

// SetSnapshotCorrupter installs the hook FaultSnapshotCorrupt fires —
// typically the snapshotter's Corrupt method, which flips a byte in the
// latest checkpoint image so its checksum no longer verifies.
func (i *Injector) SetSnapshotCorrupter(fn func()) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.corrupter = fn
}

// SetDelay overrides the FaultDelay latency.
func (i *Injector) SetDelay(d time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.delay = d
}

// Wedge hangs the channel until Unwedge.
func (i *Injector) Wedge() {
	i.mu.Lock()
	i.wedged = true
	i.mu.Unlock()
	if i.trace != nil {
		i.trace.Record(sim.EvFault, "injected: data channel wedged")
	}
}

// Unwedge clears a wedged channel. The supervisor calls this after a
// successful CVM relaunch, modeling the channel rebuild that comes with
// the fresh guest.
func (i *Injector) Unwedge() {
	i.mu.Lock()
	was := i.wedged
	i.wedged = false
	i.mu.Unlock()
	if was && i.trace != nil {
		i.trace.Record(sim.EvFault, "data channel unwedged (rebuilt)")
	}
}

// Wedged reports whether the channel is currently wedged.
func (i *Injector) Wedged() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.wedged
}

// Stats returns a copy of the injection counters.
func (i *Injector) Stats() InjectorStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := InjectorStats{RoundTrips: i.stats.RoundTrips, Injected: make(map[FaultKind]int, len(i.stats.Injected))}
	for k, v := range i.stats.Injected {
		out.Injected[k] = v
	}
	return out
}

// pick decides the fault for one round-trip and does the bookkeeping.
func (i *Injector) pick() (FaultKind, time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.RoundTrips++
	kind := FaultNone
	switch {
	case i.wedged:
		kind = FaultHang
	case len(i.queue) > 0:
		kind = i.queue[0]
		i.queue = i.queue[1:]
	default:
		// Deterministic probability mode: one RNG draw per candidate kind,
		// in a fixed order, so runs with the same seed replay exactly.
		for _, k := range []FaultKind{FaultDrop, FaultDelay, FaultCorrupt, FaultTruncate, FaultHang, FaultSnapshotCorrupt} {
			if p, ok := i.probs[k]; ok && i.rng.Float64() < p {
				kind = k
				break
			}
		}
	}
	if kind == FaultHang {
		i.wedged = true
	}
	if kind != FaultNone {
		if i.stats.Injected == nil {
			i.stats.Injected = make(map[FaultKind]int)
		}
		i.stats.Injected[kind]++
	}
	return kind, i.delay
}

// RoundTrip implements marshal.Transport: apply at most one fault, then
// (for survivable kinds) delegate to the wrapped transport.
func (i *Injector) RoundTrip(payload []byte, handler marshal.GuestHandler) ([]byte, error) {
	kind, delay := i.pick()
	switch kind {
	case FaultDrop:
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: request dropped")
		}
		return nil, fmt.Errorf("injected drop: %w", marshal.ErrHang)
	case FaultHang:
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: round-trip hung (channel wedged)")
		}
		return nil, fmt.Errorf("injected hang: %w", marshal.ErrHang)
	case FaultDelay:
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: %v delay", delay)
		}
		i.clock.Advance(delay)
		return i.inner.RoundTrip(payload, handler)
	case FaultCorrupt:
		resp, err := i.inner.RoundTrip(payload, handler)
		if err != nil || len(resp) == 0 {
			return resp, err
		}
		out := append([]byte(nil), resp...)
		// Flip a handful of RNG-chosen bytes so decoding (or the
		// heartbeat's echo check) sees garbage.
		i.mu.Lock()
		for n := 0; n < 4; n++ {
			out[i.rng.Intn(len(out))] ^= byte(0x80 | i.rng.Intn(0x7f))
		}
		i.mu.Unlock()
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: response corrupted (%d bytes)", len(out))
		}
		return out, nil
	case FaultTruncate:
		resp, err := i.inner.RoundTrip(payload, handler)
		if err != nil || len(resp) == 0 {
			return resp, err
		}
		cut := len(resp) / 2
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: response truncated %d -> %d bytes", len(resp), cut)
		}
		return append([]byte(nil), resp[:cut]...), nil
	case FaultSnapshotCorrupt:
		i.mu.Lock()
		fn := i.corrupter
		i.mu.Unlock()
		if fn != nil {
			fn()
		}
		if i.trace != nil {
			i.trace.Record(sim.EvFault, "injected: latest checkpoint image corrupted")
		}
		return i.inner.RoundTrip(payload, handler)
	default:
		return i.inner.RoundTrip(payload, handler)
	}
}
