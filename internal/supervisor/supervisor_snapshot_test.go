package supervisor_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// scriptTarget is a scriptable supervisor.Target that records every hook
// invocation in order. probeErrs is consumed one per probe; once empty,
// probes succeed.
type scriptTarget struct {
	probeErrs []error
	calls     []string
}

func (f *scriptTarget) Probe() error {
	if len(f.probeErrs) == 0 {
		return nil
	}
	err := f.probeErrs[0]
	f.probeErrs = f.probeErrs[1:]
	return err
}
func (f *scriptTarget) RestartCVM() error             { f.calls = append(f.calls, "restart"); return nil }
func (f *scriptTarget) SetDegraded(bool)              {}
func (f *scriptTarget) GuestServiceAlive(string) bool { return true }
func (f *scriptTarget) AdvanceEpoch()                 { f.calls = append(f.calls, "epoch") }

// scriptRestorer adds the SnapshotRestorer surface to scriptTarget.
type scriptRestorer struct {
	scriptTarget
	usable      bool
	restoreErrs []error // consumed per attempt; once empty, restores succeed
	attempts    int
}

func (f *scriptRestorer) SnapshotUsable() bool { return f.usable }
func (f *scriptRestorer) RestoreFromSnapshot() error {
	f.attempts++
	f.calls = append(f.calls, "restore")
	if len(f.restoreErrs) == 0 {
		return nil
	}
	err := f.restoreErrs[0]
	f.restoreErrs = f.restoreErrs[1:]
	return err
}

var errDown = fmt.Errorf("probe: %w", abi.EHOSTDOWN)

// TestPostRestartEpochAdvance pins the collapsed contract: after every
// successful cold restart the supervisor makes exactly one AdvanceEpoch
// call — the per-path drain order (grants → ring → sockets → binder →
// cache) now lives with the target and is pinned by
// anception's TestEpochDrainOrder.
func TestPostRestartEpochAdvance(t *testing.T) {
	ft := &scriptTarget{probeErrs: []error{errDown}}
	sup := supervisor.New(ft, sim.NewClock(), nil, supervisor.Config{})
	if !sup.Tick() {
		t.Fatalf("tick did not recover: %v", sup.LastError())
	}
	want := []string{"restart", "epoch"}
	if fmt.Sprint(ft.calls) != fmt.Sprint(want) {
		t.Fatalf("calls = %v, want %v", ft.calls, want)
	}
}

// TestRestoreFirstPolicy: with a usable checkpoint, the watchdog restores
// instead of cold-restarting — no restart, no drain hooks (the target's
// restore reconciles its own warm state), no backoff burned.
func TestRestoreFirstPolicy(t *testing.T) {
	fr := &scriptRestorer{scriptTarget: scriptTarget{probeErrs: []error{errDown}}, usable: true}
	clock := sim.NewClock()
	cfg := supervisor.Config{Heartbeat: time.Millisecond, BackoffBase: 10 * time.Millisecond}
	sup := supervisor.New(fr, clock, nil, cfg)
	if !sup.Tick() {
		t.Fatalf("tick did not recover: %v", sup.LastError())
	}
	st := sup.Stats()
	if st.Restores != 1 || st.Restarts != 0 || st.RestoreFailures != 0 {
		t.Fatalf("stats = %+v, want exactly one restore and no restarts", st)
	}
	for _, c := range fr.calls {
		if c != "restore" {
			t.Fatalf("restore path ran %q: calls = %v (epoch must not advance)", c, fr.calls)
		}
	}
	// No backoff on the restore path: the tick consumed only its heartbeat.
	if got := clock.Now(); got >= cfg.BackoffBase {
		t.Fatalf("restore tick consumed %v, smells of backoff (base %v)", got, cfg.BackoffBase)
	}
}

// TestRestoreFailureFallsBackColdSameTick: a failed restore (e.g. corrupt
// image) escalates to a cold restart within the same tick, epoch advance
// and all.
func TestRestoreFailureFallsBackColdSameTick(t *testing.T) {
	fr := &scriptRestorer{
		scriptTarget: scriptTarget{probeErrs: []error{errDown}},
		usable:       true,
		restoreErrs:  []error{fmt.Errorf("image rotted: %w", abi.EIO)},
	}
	sup := supervisor.New(fr, sim.NewClock(), nil, supervisor.Config{})
	if !sup.Tick() {
		t.Fatalf("tick did not recover: %v", sup.LastError())
	}
	st := sup.Stats()
	if st.RestoreFailures != 1 || st.Restores != 0 || st.Restarts != 1 {
		t.Fatalf("stats = %+v, want 1 restore failure then 1 cold restart", st)
	}
	want := []string{"restore", "restart", "epoch"}
	if fmt.Sprint(fr.calls) != fmt.Sprint(want) {
		t.Fatalf("calls = %v, want %v", fr.calls, want)
	}
}

// TestRestoreMaxFailuresEscalation: after RestoreMaxFailures consecutive
// restore failures in one outage, the watchdog stops trying the snapshot
// path — the escalation rung below the circuit breaker — and a later
// healthy probe re-arms it.
func TestRestoreMaxFailuresEscalation(t *testing.T) {
	down := make([]error, 8)
	for i := range down {
		down[i] = errDown
	}
	fr := &scriptRestorer{
		scriptTarget: scriptTarget{probeErrs: down},
		usable:       true,
		// Every restore fails, and the post-restart probe keeps failing
		// too, so the outage spans several ticks.
		restoreErrs: []error{abi.EIO, abi.EIO, abi.EIO, abi.EIO},
	}
	cfg := supervisor.Config{RestoreMaxFailures: 2}
	sup := supervisor.New(fr, sim.NewClock(), nil, cfg)
	for i := 0; i < 4 && !sup.Tick(); i++ {
	}
	if fr.attempts != cfg.RestoreMaxFailures {
		t.Fatalf("restore attempts = %d, want exactly RestoreMaxFailures = %d",
			fr.attempts, cfg.RestoreMaxFailures)
	}
	if sup.Stats().Restarts == 0 {
		t.Fatal("escalation never reached the cold-restart rung")
	}
	// Recovery resets the rung: the next outage tries the restore path again.
	if !sup.Healthy() {
		if err := sup.RunUntilHealthy(10); err != nil {
			t.Fatal(err)
		}
	}
	fr.probeErrs = []error{errDown}
	fr.restoreErrs = nil
	sup.Tick()
	if fr.attempts != cfg.RestoreMaxFailures+1 {
		t.Fatalf("restore rung not re-armed after recovery: attempts = %d", fr.attempts)
	}
}

// bootSnapshotRig boots a supervised Anception device with checkpoints
// enabled and the injector's snapshot-corrupter wired.
func bootSnapshotRig(t *testing.T, opts anception.Options, cfg supervisor.Config) *rig {
	t.Helper()
	opts.Mode = anception.ModeAnception
	d, err := anception.NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(42), d.Clock, d.Trace)
	inj.SetSnapshotCorrupter(d.CorruptSnapshot)
	d.Layer.SetTransport(inj)
	cfg.Channel = inj
	sup := supervisor.New(d, d.Clock, d.Trace, cfg)

	app, err := d.InstallApp(android.AppSpec{Package: "com.snapdrill"})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{d: d, inj: inj, sup: sup, app: proc}
}

// TestSupervisedRestoreRecoversFromPanic: end to end — a healthy tick
// seals a checkpoint, the guest panics, and the watchdog recovers via the
// restore path with a far smaller MTTR than a cold restart, durable state
// intact.
func TestSupervisedRestoreRecoversFromPanic(t *testing.T) {
	r := bootSnapshotRig(t, anception.Options{SnapshotInterval: time.Millisecond}, supervisor.Config{})
	durable := writeDurable(t, r, "precious.txt", "pre-fault")
	if !r.sup.Tick() {
		t.Fatal("healthy tick failed")
	}
	if r.d.SnapshotStats().Checkpoints == 0 {
		t.Fatal("healthy tick sealed no checkpoint")
	}

	r.d.InjectGuestPanic("drill")
	assertRecovered(t, r, durable, "pre-fault")
	st := r.sup.Stats()
	if st.Restores != 1 || st.Restarts != 0 {
		t.Fatalf("stats = %+v, want recovery via exactly one restore, no cold restart", st)
	}
	if snaps := r.d.SnapshotStats(); snaps.Restores != 1 {
		t.Fatalf("snapshot stats = %+v, want 1 restore", snaps)
	}
}

// TestRestoreMTTRTenfoldBelowCold is the acceptance floor: restore-path
// MTTR at least 10x below cold-restart MTTR for the same fault.
func TestRestoreMTTRTenfoldBelowCold(t *testing.T) {
	mttr := func(opts anception.Options) time.Duration {
		r := bootSnapshotRig(t, opts, supervisor.Config{})
		if !r.sup.Tick() {
			t.Fatal("healthy tick failed")
		}
		r.d.InjectGuestPanic("drill")
		if err := r.sup.RunUntilHealthy(50); err != nil {
			t.Fatal(err)
		}
		return r.sup.Stats().LastMTTR
	}
	cold := mttr(anception.Options{})
	warm := mttr(anception.Options{SnapshotInterval: time.Millisecond})
	if warm <= 0 || cold <= 0 {
		t.Fatalf("MTTRs not recorded: warm %v, cold %v", warm, cold)
	}
	if warm*10 > cold {
		t.Fatalf("restore MTTR %v not 10x below cold MTTR %v", warm, cold)
	}
}

// TestSnapshotCorruptFallsBackToColdRestart: the snapshot-corrupt fault
// class rots the checkpoint; the watchdog provably detects the checksum
// mismatch, counts a restore failure, and recovers via cold restart.
func TestSnapshotCorruptFallsBackToColdRestart(t *testing.T) {
	r := bootSnapshotRig(t, anception.Options{SnapshotInterval: time.Millisecond}, supervisor.Config{})
	durable := writeDurable(t, r, "precious.txt", "pre-fault")
	if !r.sup.Tick() {
		t.Fatal("healthy tick failed")
	}

	r.inj.InjectNext(supervisor.FaultSnapshotCorrupt)
	// The corrupting round-trip rides the app's next call, then the panic
	// takes the guest down with only the rotted checkpoint on file.
	if _, err := r.app.Open("carrier.txt", abi.OWrOnly|abi.OCreat, 0o600); err != nil {
		t.Fatal(err)
	}
	r.d.InjectGuestPanic("drill")

	assertRecovered(t, r, durable, "pre-fault")
	st := r.sup.Stats()
	if st.Restores != 0 {
		t.Fatalf("corrupt checkpoint was restored: %+v", st)
	}
	if st.RestoreFailures == 0 {
		t.Fatalf("restore path never attempted/failed: %+v", st)
	}
	if st.Restarts == 0 {
		t.Fatalf("no cold restart fallback: %+v", st)
	}
	snaps := r.d.SnapshotStats()
	if snaps.ChecksumRejects == 0 {
		t.Fatalf("checksum mismatch not detected: %+v", snaps)
	}
	if !errorsIsAny(r.sup.LastError()) {
		t.Log("last error cleared after recovery (expected)")
	}
}

func errorsIsAny(err error) bool { return errors.Is(err, abi.EIO) || err == nil }
