package supervisor

import (
	"fmt"
	"sync"
	"time"
)

// Group ticks a set of per-shard supervisors as one unit. Each shard of
// a CVM fleet is an independent service domain — its own container, data
// channel, sim clock, and watchdog — so a Group deliberately does NOT
// serialize or couple the members: Tick() runs every shard's watchdog
// cycle independently, and one shard's outage never delays, drains, or
// restarts a sibling. What the Group adds is the fleet-level view:
// aggregate counters, worst-case MTTR, and "is every shard healthy"
// predicates the fleet drills assert against.
type Group struct {
	mu   sync.Mutex
	sups []*Supervisor
}

// GroupStats aggregates the member supervisors' counters.
type GroupStats struct {
	// Shards is the member count; PerShard holds each member's stats in
	// Add order.
	Shards   int
	PerShard []Stats
	// Totals across every member.
	Probes        int
	ProbeFailures int
	Restarts      int
	Restores      int
	Recoveries    int
	BreakerTrips  int
	// MaxMTTR is the worst single recovery across the fleet; MaxMeanMTTR
	// the worst per-shard mean. Fleet floors gate on these: sharding must
	// not make any one shard's recovery slower.
	MaxMTTR     time.Duration
	MaxMeanMTTR time.Duration
}

// NewGroup builds a group over the given supervisors.
func NewGroup(sups ...*Supervisor) *Group {
	g := &Group{}
	g.sups = append(g.sups, sups...)
	return g
}

// Add appends one more shard supervisor.
func (g *Group) Add(s *Supervisor) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sups = append(g.sups, s)
}

// Members returns the supervisors in Add order.
func (g *Group) Members() []*Supervisor {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Supervisor, len(g.sups))
	copy(out, g.sups)
	return out
}

// Tick runs one watchdog cycle on every member and reports whether all
// of them came out healthy. Members advance their own shard clocks —
// there is no fleet-wide barrier, so a restarting shard burns only its
// own sim time.
func (g *Group) Tick() bool {
	all := true
	for _, s := range g.Members() {
		if !s.Tick() {
			all = false
		}
	}
	return all
}

// Healthy reports whether every member's last probe succeeded.
func (g *Group) Healthy() bool {
	for _, s := range g.Members() {
		if !s.Healthy() {
			return false
		}
	}
	return true
}

// UnhealthyCount counts members whose last probe failed — the observed
// blast radius of a fault drill.
func (g *Group) UnhealthyCount() int {
	n := 0
	for _, s := range g.Members() {
		if !s.Healthy() {
			n++
		}
	}
	return n
}

// RunUntilAllHealthy ticks until every member is healthy or maxTicks
// cycles pass. Already-healthy members keep probing (their heartbeat is
// real sim time on their own clocks); only still-down members pay
// restart costs.
func (g *Group) RunUntilAllHealthy(maxTicks int) error {
	for n := 0; n < maxTicks; n++ {
		if g.Tick() {
			return nil
		}
	}
	down := 0
	var last error
	for _, s := range g.Members() {
		if !s.Healthy() {
			down++
			if err := s.LastError(); err != nil {
				last = err
			}
		}
	}
	return fmt.Errorf("%d shard(s) not healthy after %d ticks: %w", down, maxTicks, errLast(last))
}

// Stats aggregates every member's counters.
func (g *Group) Stats() GroupStats {
	members := g.Members()
	out := GroupStats{Shards: len(members)}
	for _, s := range members {
		st := s.Stats()
		out.PerShard = append(out.PerShard, st)
		out.Probes += st.Probes
		out.ProbeFailures += st.ProbeFailures
		out.Restarts += st.Restarts
		out.Restores += st.Restores
		out.Recoveries += st.Recoveries
		out.BreakerTrips += st.BreakerTrips
		if st.LastMTTR > out.MaxMTTR {
			out.MaxMTTR = st.LastMTTR
		}
		if m := st.MeanMTTR(); m > out.MaxMeanMTTR {
			out.MaxMeanMTTR = m
		}
	}
	return out
}
