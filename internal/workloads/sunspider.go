package workloads

import (
	"math"

	"anception/internal/anception"
)

// SunSpider-style suites (Figure 7): pure user-space computation.
// Each suite performs a real (scaled-down) computation to keep the code
// honest and charges the latency model for the full workload's abstract
// operation count, calibrated to the hundreds-of-milliseconds range the
// benchmark produces on the paper's tablet.
//
// No system calls occur, which is the entire point of the figure: these
// run at native speed under Anception.

// sunSuite describes one SunSpider component.
type sunSuite struct {
	name  string
	units int64 // abstract ops charged against the CPU model
	run   func() float64
}

func sunSuites() []sunSuite {
	return []sunSuite{
		{name: "3d", units: 180_000_000, run: run3D},
		{name: "access", units: 150_000_000, run: runAccess},
		{name: "bitops", units: 120_000_000, run: runBitops},
		{name: "ctrlflow", units: 60_000_000, run: runCtrlflow},
		{name: "math", units: 140_000_000, run: runMath},
		{name: "string", units: 200_000_000, run: runString},
	}
}

// SunSpiderSuiteNames lists the Figure 7 x-axis.
func SunSpiderSuiteNames() []string {
	var out []string
	for _, s := range sunSuites() {
		out = append(out, s.name)
	}
	return out
}

// SunSpiderWorkload returns one suite as a Workload.
func SunSpiderWorkload(name string) (Workload, bool) {
	for _, s := range sunSuites() {
		if s.name != name {
			continue
		}
		suite := s
		return Workload{
			Name: "sunspider-" + suite.name,
			Run: func(p *anception.Proc) (int, error) {
				sink := suite.run() // real computation (scaled down)
				_ = sink
				p.Compute(suite.units)
				return int(suite.units / 1000), nil
			},
		}, true
	}
	return Workload{}, false
}

// run3D: small ray/vector kernel.
func run3D() float64 {
	acc := 0.0
	for i := 0; i < 20000; i++ {
		x, y, z := float64(i%97), float64(i%89), float64(i%83)
		n := math.Sqrt(x*x + y*y + z*z)
		if n > 0 {
			acc += x/n + y/n + z/n
		}
	}
	return acc
}

// runAccess: array traversal patterns (nsieve-style).
func runAccess() float64 {
	const n = 20000
	sieve := make([]bool, n)
	count := 0
	for i := 2; i < n; i++ {
		if !sieve[i] {
			count++
			for j := i * 2; j < n; j += i {
				sieve[j] = true
			}
		}
	}
	return float64(count)
}

// runBitops: bit twiddling (bits-in-byte style).
func runBitops() float64 {
	acc := uint32(0)
	for i := uint32(0); i < 50000; i++ {
		v := i
		v = (v & 0x55555555) + ((v >> 1) & 0x55555555)
		v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
		v = (v & 0x0F0F0F0F) + ((v >> 4) & 0x0F0F0F0F)
		acc += v & 0xFF
	}
	return float64(acc)
}

// runCtrlflow: recursive control flow (ackermann-ish, bounded).
func runCtrlflow() float64 {
	var fib func(n int) int
	fib = func(n int) int {
		if n < 2 {
			return n
		}
		return fib(n-1) + fib(n-2)
	}
	return float64(fib(22))
}

// runMath: transcendental series (partial-sums style).
func runMath() float64 {
	acc := 0.0
	for k := 1; k <= 20000; k++ {
		f := float64(k)
		acc += 1/(f*f) + math.Sin(f)/f + math.Pow(f, -1.5)
	}
	return acc
}

// runString: string building and scanning (validate-input style).
func runString() float64 {
	buf := make([]byte, 0, 1<<15)
	for i := 0; i < 2000; i++ {
		buf = append(buf, byte('a'+i%26))
		if i%7 == 0 {
			buf = append(buf, "-suffix"...)
		}
	}
	hits := 0
	for i := 0; i+6 < len(buf); i++ {
		if buf[i] == 's' && buf[i+5] == 'x' {
			hits++
		}
	}
	return float64(hits)
}
