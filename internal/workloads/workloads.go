// Package workloads implements the macrobenchmark suite of Section VI:
// AnTuTu-style Database I/O, 2D and 3D tests (Figure 6), the six
// SunSpider-style CPU suites (Figure 7), the 10,000-row SQLite
// transaction benchmark, and the ProfileDroid-style syscall profiler that
// measures the ioctl share of popular apps (Section VI-A).
//
// Workloads drive the platform exclusively through the Proc system-call
// API, so every platform effect (UI passthrough, redirection cost,
// buffering) emerges from the simulation rather than from workload
// constants.
package workloads

import (
	"fmt"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/sim"
)

// Measurement is one workload's outcome on one platform.
type Measurement struct {
	Name      string
	Mode      anception.Mode
	Simulated time.Duration
	Ops       int
}

// OpsPerSecond converts to a throughput score (AnTuTu-style: higher is
// better).
func (m Measurement) OpsPerSecond() float64 {
	if m.Simulated <= 0 {
		return 0
	}
	return float64(m.Ops) / m.Simulated.Seconds()
}

// String renders a result row.
func (m Measurement) String() string {
	return fmt.Sprintf("%-22s %-10s %12v %10d ops (%.1f ops/s)",
		m.Name, m.Mode, m.Simulated, m.Ops, m.OpsPerSecond())
}

// Comparison is a native-vs-Anception pair for one workload.
type Comparison struct {
	Native    Measurement
	Anception Measurement
}

// RelativeScore is the Figure 6 normalization: Anception's throughput
// over native's (1.0 = parity, higher = better).
func (c Comparison) RelativeScore() float64 {
	n := c.Native.OpsPerSecond()
	if n == 0 {
		return 0
	}
	return c.Anception.OpsPerSecond() / n
}

// Slowdown is Anception time over native time.
func (c Comparison) Slowdown() float64 {
	if c.Native.Simulated == 0 {
		return 0
	}
	return float64(c.Anception.Simulated) / float64(c.Native.Simulated)
}

// Workload is one benchmark: it runs against a launched app process and
// reports operation count.
type Workload struct {
	Name string
	Run  func(p *anception.Proc) (ops int, err error)
}

// benchDevice boots a quiet platform (no vulnerabilities, no trace) for
// performance measurement.
func benchDevice(mode anception.Mode) (*anception.Device, error) {
	return anception.NewDevice(anception.Options{Mode: mode, DisableTrace: true})
}

// MeasureOn runs one workload on one platform mode.
func MeasureOn(mode anception.Mode, w Workload) (Measurement, error) {
	return MeasureOnOpts(mode, anception.Options{}, w)
}

// MeasureOnOpts runs one workload on one platform mode with the given
// device options, so the evaluate harness can replay the same workload
// across transport configurations (sync, cached, ring, auto-tuned).
// Mode and DisableTrace are forced.
func MeasureOnOpts(mode anception.Mode, opts anception.Options, w Workload) (Measurement, error) {
	opts.Mode = mode
	opts.DisableTrace = true
	d, err := anception.NewDevice(opts)
	if err != nil {
		return Measurement{}, err
	}
	defer d.Close()
	app, err := d.InstallApp(android.AppSpec{Package: "com.bench." + w.Name})
	if err != nil {
		return Measurement{}, err
	}
	p, err := d.Launch(app)
	if err != nil {
		return Measurement{}, err
	}
	sw := sim.StartStopwatch(d.Clock)
	ops, err := w.Run(p)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s on %s: %w", w.Name, mode, err)
	}
	return Measurement{Name: w.Name, Mode: mode, Simulated: sw.Elapsed(), Ops: ops}, nil
}

// Compare runs one workload on native and Anception.
func Compare(w Workload) (Comparison, error) {
	nat, err := MeasureOn(anception.ModeNative, w)
	if err != nil {
		return Comparison{}, err
	}
	anc, err := MeasureOn(anception.ModeAnception, w)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Native: nat, Anception: anc}, nil
}
