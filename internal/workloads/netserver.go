package workloads

import (
	"fmt"
	"sort"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/netstack"
)

// Open-loop network traffic workload (DESIGN.md §14): an HTTP/RPC-style
// echo server runs as an app behind the anception layer — listener,
// epoll readiness, batched accept4, per-connection recv/send — while an
// open-loop generator models a large population of concurrent simulated
// clients. Each client session is one short request/response connection;
// arrivals are scheduled on the sim clock at a fixed interarrival gap
// regardless of completions (open loop: a slow server grows the queue,
// it does not slow the clients), and each session's latency is measured
// from its scheduled arrival to its completion, so queueing delay is in
// the percentiles rather than hidden by generator back-off.
//
// Concurrency is modeled by Little's law: Clients concurrent clients
// each issuing one request per think time T produce an aggregate arrival
// rate of Clients/T. The generator calibrates the per-session service
// cost first, then picks the interarrival gap for a target utilization,
// so T = Clients * gap follows and the reported population is honest.

// NetServerConfig tunes the echo-server traffic run. Zero values take
// the documented defaults.
type NetServerConfig struct {
	// Sessions is the number of client sessions to generate (default
	// 20000; the evaluate harness runs 100000).
	Sessions int
	// Clients is the modeled concurrent client population (default
	// 100000). It sets the reported think time, not the arrival rate.
	Clients int
	// ServerApps is the number of independent server applications
	// (default 1). Each is its own enrolled app — own UID, own epoll
	// instance, own lane listeners — but all of them forward socket ops
	// over the device's single shared sockop ring, so the workload
	// measures multi-tenant ring sharing, not per-app rings. Sessions
	// spread across apps round-robin and percentiles are reported per
	// app (PerApp) as well as in aggregate.
	ServerApps int
	// Lanes shards each server across this many listeners (default 4)
	// so accept batches form per lane.
	Lanes int
	// ReqBytes is the request/response payload size (default 128 — small
	// enough to ride an inline ring slot).
	ReqBytes int
	// MixedSizes replaces the single ReqBytes payload with the request-
	// size mix real RPC traffic shows: 60% 256 B, 30% 4 KiB, 10% 64 KiB,
	// assigned deterministically by session index (i%10: 0–5 small, 6–8
	// page, 9 bulk) so runs stay reproducible.
	MixedSizes bool
	// Utilization is the target fraction of measured capacity the
	// arrival rate aims at (default 0.8): high enough to queue, low
	// enough to be stable.
	Utilization float64
	// CalibrationSessions sizes the closed-loop warm-up that measures
	// per-session service cost (default 512).
	CalibrationSessions int
}

func (c *NetServerConfig) applyDefaults() {
	if c.Sessions <= 0 {
		c.Sessions = 20_000
	}
	if c.Clients <= 0 {
		c.Clients = 100_000
	}
	if c.ServerApps <= 0 {
		c.ServerApps = 1
	}
	if c.Lanes <= 0 {
		c.Lanes = 4
	}
	if c.ReqBytes <= 0 {
		c.ReqBytes = 128
	}
	if c.Utilization <= 0 || c.Utilization >= 1 {
		c.Utilization = 0.8
	}
	if c.CalibrationSessions <= 0 {
		c.CalibrationSessions = 512
	}
}

// NetServerAppStats is one server app's slice of the run.
type NetServerAppStats struct {
	// Package names the server app; Sessions is how many landed on it.
	Package  string
	Sessions int
	// Per-app latency percentiles (same arrival-to-completion metric as
	// the aggregate ones).
	P50, P99, P999 time.Duration
}

// NetServerStats is the outcome of one traffic run.
type NetServerStats struct {
	Mode       anception.Mode
	Sessions   int
	Clients    int
	ServerApps int
	Lanes      int

	// Latency percentiles over per-session scheduled-arrival-to-
	// completion sim time.
	P50, P99, P999, Max time.Duration

	// OpsPerSimSec is completed sessions per simulated second.
	OpsPerSimSec float64
	// Interarrival is the open-loop gap between scheduled arrivals.
	Interarrival time.Duration
	// ThinkTime = Clients * Interarrival: the per-client request period
	// that yields this arrival rate from the modeled population.
	ThinkTime time.Duration
	// Elapsed is total sim time from first arrival to last completion.
	Elapsed time.Duration

	// AvgAcceptBatch is accepted connections per accept4 call — the
	// batching win (1.0 means no batching happened).
	AvgAcceptBatch float64
	// DgramDrops counts receive-budget datagram drops (0 for this
	// stream workload unless something is miswired).
	DgramDrops int64

	// PerApp breaks the percentiles down by server app, in app order
	// (always present; length 1 when ServerApps is 1).
	PerApp []NetServerAppStats
}

// mixedSizeTiers is the MixedSizes request-size mix, smallest first.
var mixedSizeTiers = []int{256, 4 << 10, 64 << 10}

// mixedTierFor deterministically assigns a session index to a tier:
// 60% small, 30% page-sized, 10% bulk.
func mixedTierFor(idx int) int {
	switch m := idx % 10; {
	case m < 6:
		return 0
	case m < 9:
		return 1
	default:
		return 2
	}
}

// netSession is one in-flight client session's bookkeeping.
type netSession struct {
	want int // expected echo length
	app  int // server app index serving it
}

// netServerRig is the booted echo service: ServerApps independent
// server apps — each with lane listeners behind its own epoll instance,
// all sharing the device's one sockop ring — plus one client app.
type netServerRig struct {
	d        *anception.Device
	servers  []*anception.Proc
	pkgs     []string
	client   *anception.Proc
	epfds    []int   // per-app epoll fd
	listen   [][]int // per-app lane listener fds (server side)
	lanes    int
	addrs    []string // flat, app-major: addrs[app*lanes+lane]
	payload  []byte
	tiers    [][]byte           // MixedSizes payloads, indexed by tier
	expect   map[int]netSession // client fd -> session bookkeeping
	accepts  int                // accept4 calls that returned connections
	accepted int                // connections they carried
}

// netServerPkg names server app a; app 0 keeps the historical name so a
// single-app run is byte-identical to the pre-multi-app workload.
func netServerPkg(a int) string {
	if a == 0 {
		return "com.netserver.echo"
	}
	return fmt.Sprintf("com.netserver.echo%d", a)
}

func bootNetServer(d *anception.Device, cfg *NetServerConfig) (*netServerRig, error) {
	rig := &netServerRig{
		d:       d,
		lanes:   cfg.Lanes,
		payload: make([]byte, cfg.ReqBytes),
		expect:  make(map[int]netSession),
	}
	for a := 0; a < cfg.ServerApps; a++ {
		pkg := netServerPkg(a)
		srvApp, err := d.InstallApp(android.AppSpec{Package: pkg})
		if err != nil {
			return nil, err
		}
		server, err := d.Launch(srvApp)
		if err != nil {
			return nil, err
		}
		rig.servers = append(rig.servers, server)
		rig.pkgs = append(rig.pkgs, pkg)
	}
	cliApp, err := d.InstallApp(android.AppSpec{Package: "com.netserver.client"})
	if err != nil {
		return nil, err
	}
	rig.client, err = d.Launch(cliApp)
	if err != nil {
		return nil, err
	}

	for i := range rig.payload {
		rig.payload[i] = byte('a' + i%26)
	}
	if cfg.MixedSizes {
		for _, size := range mixedSizeTiers {
			tier := make([]byte, size)
			for i := range tier {
				tier[i] = byte('a' + i%26)
			}
			rig.tiers = append(rig.tiers, tier)
		}
	}
	// Ports are flat and app-major, so app 0's lanes keep the historical
	// 9000..9000+Lanes-1 range.
	for a, server := range rig.servers {
		epfd, err := server.EpollCreate()
		if err != nil {
			return nil, fmt.Errorf("epoll_create: %w", err)
		}
		rig.epfds = append(rig.epfds, epfd)
		var laneFds []int
		for lane := 0; lane < cfg.Lanes; lane++ {
			addr := fmt.Sprintf("echo.cvm:%d", 9000+a*cfg.Lanes+lane)
			fd, err := server.Socket(netstack.AFInet, netstack.SockStream, 0)
			if err != nil {
				return nil, err
			}
			if err := server.Bind(fd, addr); err != nil {
				return nil, fmt.Errorf("bind %s: %w", addr, err)
			}
			if err := server.Listen(fd, 0); err != nil {
				return nil, fmt.Errorf("listen %s: %w", addr, err)
			}
			if err := server.EpollCtl(epfd, 1 /* EPOLL_CTL_ADD */, fd); err != nil {
				return nil, fmt.Errorf("epoll_ctl %s: %w", addr, err)
			}
			laneFds = append(laneFds, fd)
			rig.addrs = append(rig.addrs, addr)
		}
		rig.listen = append(rig.listen, laneFds)
	}
	return rig, nil
}

// payloadFor picks the session's request payload: the fixed ReqBytes
// buffer, or its deterministic size tier under MixedSizes.
func (r *netServerRig) payloadFor(idx int) []byte {
	if r.tiers == nil {
		return r.payload
	}
	return r.tiers[mixedTierFor(idx)]
}

// maxReq is the largest request a server recv must accommodate.
func (r *netServerRig) maxReq() int {
	if r.tiers == nil {
		return len(r.payload)
	}
	return len(r.tiers[len(r.tiers)-1])
}

// openSession starts one client session: connect to a lane and send the
// request. The reply is collected by drain after the server turn. idx is
// the global session index — it picks the server app and lane (app-major
// round-robin over the flat address list) and, under MixedSizes, the
// payload tier.
func (r *netServerRig) openSession(idx int) (int, error) {
	payload := r.payloadFor(idx)
	fd, err := r.client.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		return -1, err
	}
	addrIdx := idx % len(r.addrs)
	if err := r.client.Connect(fd, r.addrs[addrIdx]); err != nil {
		return -1, err
	}
	if _, err := r.client.Send(fd, payload); err != nil {
		return -1, err
	}
	r.expect[fd] = netSession{want: len(payload), app: addrIdx / r.lanes}
	return fd, nil
}

// serveTurn runs every server app's event loop once: per app, a single
// epoll_wait gathers its ready lanes in one batched completion, then
// each lane's accept backlog drains in accept4 batches and every
// connection is echoed. One pass per app suffices — the wave's connects
// all precede the polls — and never polling an idle set keeps the
// scheduler-quantum sleep out of the service cost.
func (r *netServerRig) serveTurn() error {
	for a, server := range r.servers {
		ready, err := server.EpollWait(r.epfds[a], 0)
		if err != nil {
			return fmt.Errorf("epoll_wait app %d: %w", a, err)
		}
		for _, lfd := range ready {
			for {
				conns, err := server.AcceptBatch(lfd, 0)
				if err != nil {
					break // EAGAIN: lane drained
				}
				r.accepts++
				r.accepted += len(conns)
				for _, cfd := range conns {
					req, err := server.Recv(cfd, r.maxReq())
					if err != nil {
						return fmt.Errorf("server recv: %w", err)
					}
					if _, err := server.Send(cfd, req); err != nil {
						return fmt.Errorf("server send: %w", err)
					}
					if err := server.Close(cfd); err != nil {
						return fmt.Errorf("server close: %w", err)
					}
				}
			}
		}
	}
	return nil
}

// drain finishes one client session: receive the echo and close.
func (r *netServerRig) drain(fd int) error {
	want := r.expect[fd].want
	delete(r.expect, fd)
	resp, err := r.client.Recv(fd, want)
	if err != nil {
		return fmt.Errorf("client recv: %w", err)
	}
	if len(resp) != want {
		return fmt.Errorf("echo truncated: %d of %d bytes", len(resp), want)
	}
	return r.client.Close(fd)
}

// runWave pushes one wave of sessions through open→serve→drain and
// returns each session's completion time and serving app index.
func (r *netServerRig) runWave(count int, startLane int) ([]time.Duration, []int, error) {
	fds := make([]int, 0, count)
	for i := 0; i < count; i++ {
		fd, err := r.openSession(startLane + i)
		if err != nil {
			return nil, nil, err
		}
		fds = append(fds, fd)
	}
	if err := r.serveTurn(); err != nil {
		return nil, nil, err
	}
	done := make([]time.Duration, 0, count)
	apps := make([]int, 0, count)
	for _, fd := range fds {
		app := r.expect[fd].app
		if err := r.drain(fd); err != nil {
			return nil, nil, err
		}
		done = append(done, r.d.Clock.Now())
		apps = append(apps, app)
	}
	return done, apps, nil
}

// RunNetServer boots a device in the given mode, runs the open-loop
// traffic workload, and reports latency percentiles and throughput. The
// caller's opts select the transport under test (sync channel, ring,
// ring+grants); Mode and DisableTrace are forced.
func RunNetServer(mode anception.Mode, opts anception.Options, cfg NetServerConfig) (NetServerStats, error) {
	cfg.applyDefaults()
	opts.Mode = mode
	opts.DisableTrace = true
	if opts.CallDeadline == 0 {
		opts.CallDeadline = time.Hour
	}
	d, err := anception.NewDevice(opts)
	if err != nil {
		return NetServerStats{}, err
	}
	defer d.Close()
	rig, err := bootNetServer(d, &cfg)
	if err != nil {
		return NetServerStats{}, fmt.Errorf("boot net server: %w", err)
	}

	// Waves keep enough sessions in flight for accept batches to form on
	// every app's lanes without outrunning a lane's backlog bookkeeping.
	wave := cfg.ServerApps * cfg.Lanes * anception.DefaultNetBatch
	if wave > cfg.Sessions {
		wave = cfg.Sessions
	}

	// Phase 1 — calibrate: closed-loop waves measure the per-session
	// service cost on this transport.
	calib := cfg.CalibrationSessions
	calStart := d.Clock.Now()
	for n := 0; n < calib; n += wave {
		k := wave
		if calib-n < k {
			k = calib - n
		}
		if _, _, err := rig.runWave(k, n); err != nil {
			return NetServerStats{}, fmt.Errorf("calibration: %w", err)
		}
	}
	perSession := (d.Clock.Now() - calStart) / time.Duration(calib)
	if perSession <= 0 {
		perSession = time.Microsecond
	}

	// Phase 2 — open loop: arrivals at a fixed gap sized for the target
	// utilization. arrival_i is fixed up front; a behind-schedule server
	// accumulates the deficit as queueing delay in the percentiles.
	gap := time.Duration(float64(perSession) / cfg.Utilization)
	start := d.Clock.Now()
	latencies := make([]time.Duration, 0, cfg.Sessions)
	perApp := make([][]time.Duration, cfg.ServerApps)
	for n := 0; n < cfg.Sessions; n += wave {
		k := wave
		if cfg.Sessions-n < k {
			k = cfg.Sessions - n
		}
		// Scheduled arrival of the wave's last session; if the server is
		// ahead of the arrival process, it idles until then (the open
		// loop never sends early).
		waveArrival := start + time.Duration(n+k-1)*gap
		if now := d.Clock.Now(); now < waveArrival {
			d.Clock.Advance(waveArrival - now)
		}
		done, apps, err := rig.runWave(k, n)
		if err != nil {
			return NetServerStats{}, fmt.Errorf("session %d: %w", n, err)
		}
		for i, completed := range done {
			arrival := start + time.Duration(n+i)*gap
			lat := completed - arrival
			latencies = append(latencies, lat)
			perApp[apps[i]] = append(perApp[apps[i]], lat)
		}
	}
	elapsed := d.Clock.Now() - start

	pctOf := func(sorted []time.Duration, p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration { return pctOf(latencies, p) }
	st := NetServerStats{
		Mode:         mode,
		Sessions:     cfg.Sessions,
		Clients:      cfg.Clients,
		ServerApps:   cfg.ServerApps,
		Lanes:        cfg.Lanes,
		P50:          pct(0.50),
		P99:          pct(0.99),
		P999:         pct(0.999),
		Max:          latencies[len(latencies)-1],
		Interarrival: gap,
		ThinkTime:    time.Duration(cfg.Clients) * gap,
		Elapsed:      elapsed,
	}
	for a, lats := range perApp {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		as := NetServerAppStats{Package: rig.pkgs[a], Sessions: len(lats)}
		if len(lats) > 0 {
			as.P50 = pctOf(lats, 0.50)
			as.P99 = pctOf(lats, 0.99)
			as.P999 = pctOf(lats, 0.999)
		}
		st.PerApp = append(st.PerApp, as)
	}
	if elapsed > 0 {
		st.OpsPerSimSec = float64(cfg.Sessions) / elapsed.Seconds()
	}
	if rig.accepts > 0 {
		st.AvgAcceptBatch = float64(rig.accepted) / float64(rig.accepts)
	}
	if mode == anception.ModeAnception {
		st.DgramDrops = d.Guest.Net().DgramDrops()
	} else {
		st.DgramDrops = d.AppKernel().Net().DgramDrops()
	}
	return st, nil
}

// String renders a result row.
func (s NetServerStats) String() string {
	return fmt.Sprintf("%-12s %7d sessions (%d clients, %d apps, think %v): p50=%v p99=%v p999=%v  %.0f ops/sim-s  batch=%.1f",
		s.Mode, s.Sessions, s.Clients, s.ServerApps, s.ThinkTime.Round(time.Millisecond),
		s.P50, s.P99, s.P999, s.OpsPerSimSec, s.AvgAcceptBatch)
}
