package workloads

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/minidb"
)

// AnTuTu-style macrobenchmarks (Figure 6): Database I/O, 2D graphics, and
// 3D graphics, each driven through the app syscall interface.

// AnTuTuDatabaseIO exercises SQLite-style storage: transactions of
// inserts plus point queries, with the per-operation user-space work a
// real database engine performs (parsing, B-tree bookkeeping).
func AnTuTuDatabaseIO() Workload {
	const (
		txns         = 5
		rowsPerTxn   = 300
		queries      = 500
		rowWork      = 150_000 // ~300 us of engine CPU per row
		queryWork    = 30_000
		rowParagraph = "antutu database row payload ........"
	)
	return Workload{
		Name: "antutu-db",
		Run: func(p *anception.Proc) (int, error) {
			db, err := minidb.Open(p, p.App.Info.DataDir+"/antutu.db")
			if err != nil {
				return 0, err
			}
			ops := 0
			key := int64(0)
			for t := 0; t < txns; t++ {
				tx, err := db.Begin()
				if err != nil {
					return 0, err
				}
				for r := 0; r < rowsPerTxn; r++ {
					p.Compute(rowWork)
					if err := tx.Insert(key, []byte(rowParagraph)); err != nil {
						return 0, err
					}
					key++
					ops++
				}
				if err := tx.Commit(); err != nil {
					return 0, err
				}
			}
			for q := 0; q < queries; q++ {
				p.Compute(queryWork)
				if _, err := db.Get(int64(q * 3 % int(key))); err != nil {
					return 0, fmt.Errorf("query %d: %w", q, err)
				}
				ops++
			}
			return ops, db.Close()
		},
	}
}

// AnTuTu2D renders frames: per-frame rasterization work plus a window-
// manager draw transaction, with an occasional asset read. UI
// transactions pass through at native speed under Anception; only the
// rare asset read pays redirection.
func AnTuTu2D() Workload {
	const (
		frames     = 120
		frameWork  = 2_000_000 // ~4 ms of rasterization per frame
		assetEvery = 16
	)
	return Workload{
		Name: "antutu-2d",
		Run: func(p *anception.Proc) (int, error) {
			if err := writeAsset(p, "sprite.png", abi.PageSize); err != nil {
				return 0, err
			}
			bfd, err := p.OpenBinder()
			if err != nil {
				return 0, err
			}
			for f := 0; f < frames; f++ {
				p.Compute(frameWork)
				if f%assetEvery == 0 {
					if err := readAsset(p, "sprite.png", abi.PageSize); err != nil {
						return 0, err
					}
				}
				if err := p.Draw(bfd); err != nil {
					return 0, err
				}
			}
			return frames, nil
		},
	}
}

// AnTuTu3D is the heavier variant: more per-frame compute and larger
// texture streaming.
func AnTuTu3D() Workload {
	const (
		frames      = 90
		frameWork   = 4_500_000 // ~9 ms of geometry+shading per frame
		textureSize = 16 * abi.PageSize
		texEvery    = 8
	)
	return Workload{
		Name: "antutu-3d",
		Run: func(p *anception.Proc) (int, error) {
			if err := writeAsset(p, "texture.bin", textureSize); err != nil {
				return 0, err
			}
			bfd, err := p.OpenBinder()
			if err != nil {
				return 0, err
			}
			for f := 0; f < frames; f++ {
				p.Compute(frameWork)
				if f%texEvery == 0 {
					if err := readAsset(p, "texture.bin", textureSize); err != nil {
						return 0, err
					}
				}
				if err := p.Draw(bfd); err != nil {
					return 0, err
				}
			}
			return frames, nil
		},
	}
}

func writeAsset(p *anception.Proc, name string, size int) error {
	fd, err := p.Open(name, abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return err
	}
	defer func() { _ = p.Close(fd) }()
	if _, err := p.Write(fd, make([]byte, size)); err != nil {
		return err
	}
	return nil
}

func readAsset(p *anception.Proc, name string, size int) error {
	fd, err := p.Open(name, abi.ORdOnly, 0)
	if err != nil {
		return err
	}
	defer func() { _ = p.Close(fd) }()
	_, err = p.Read(fd, size)
	return err
}

// SQLiteRowBench is the Section VI-B macrobenchmark: 10,000 rows of 26
// bytes inserted within one transaction. The paper reports per-row times
// of 86.55 us native vs 86.67 us under Anception.
func SQLiteRowBench() Workload {
	const (
		rows    = 10_000
		rowSize = 26
		// Per-row engine work (SQL parse, B-tree insert) calibrated to the
		// paper's ~86.5 us/row on the tablet.
		rowWork = 41_000
	)
	return Workload{
		Name: "sqlite-10k",
		Run: func(p *anception.Proc) (int, error) {
			db, err := minidb.Open(p, p.App.Info.DataDir+"/bench.db")
			if err != nil {
				return 0, err
			}
			tx, err := db.Begin()
			if err != nil {
				return 0, err
			}
			row := make([]byte, rowSize)
			for i := 0; i < rows; i++ {
				p.Compute(rowWork)
				copy(row, fmt.Sprintf("row-%08d", i))
				if err := tx.Insert(int64(i), row); err != nil {
					return 0, err
				}
			}
			if err := tx.Commit(); err != nil {
				return 0, err
			}
			return rows, db.Close()
		},
	}
}
