package workloads

import (
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/minidb"
	"anception/internal/netstack"
)

// InteractiveSession models a "real application" session (the paper's
// closing claim: "on macrobenchmarks and on real applications, the impact
// is minimal"): an email-style app that syncs messages over the network,
// stores them in its database, renders the list, and reacts to user
// input. The syscall mix spans every routing class: UI passthrough,
// bridged binder, redirected network and file I/O, and pure compute.
func InteractiveSession() Workload {
	const (
		messages    = 30
		messageSize = 2048
		frames      = 40
		frameWork   = 1_500_000 // ~3 ms of layout/render per frame
		parseWork   = 250_000   // ~0.5 ms to parse one message
	)
	return Workload{
		Name: "app-session",
		Run: func(p *anception.Proc) (int, error) {
			d := p.Device()
			// The mail server, reachable through whichever stack serves
			// app sockets on this platform.
			d.RegisterRemote("imap.example.com:993", func(req []byte) []byte {
				body := make([]byte, messageSize)
				copy(body, req)
				return body
			})

			ops := 0
			// 1. Sync: fetch messages and store them.
			sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
			if err != nil {
				return 0, err
			}
			if err := p.Connect(sock, "imap.example.com:993"); err != nil {
				return 0, err
			}
			db, err := minidb.Open(p, p.App.Info.DataDir+"/mail.db")
			if err != nil {
				return 0, err
			}
			tx, err := db.Begin()
			if err != nil {
				return 0, err
			}
			for m := 0; m < messages; m++ {
				if _, err := p.Send(sock, []byte(fmt.Sprintf("FETCH %d", m))); err != nil {
					return 0, err
				}
				body, err := p.Recv(sock, messageSize)
				if err != nil {
					return 0, err
				}
				p.Compute(parseWork)
				if err := tx.Insert(int64(m), body[:64]); err != nil {
					return 0, err
				}
				ops++
			}
			if err := tx.Commit(); err != nil {
				return 0, err
			}

			// 2. Render the message list, polling input between frames.
			bfd, err := p.OpenBinder()
			if err != nil {
				return 0, err
			}
			d.QueueInput(p.App, []byte("tap:open-message-3"))
			for f := 0; f < frames; f++ {
				p.Compute(frameWork)
				if err := p.Draw(bfd); err != nil {
					return 0, err
				}
				if _, err := p.WaitInput(bfd); err != nil && f == 0 {
					return 0, fmt.Errorf("input: %w", err)
				}
				ops++
			}

			// 3. Open one message: a DB point query plus a location tag
			// lookup through the bridged service.
			if _, err := db.Get(3); err != nil {
				return 0, err
			}
			if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, []byte("geotag")); err != nil {
				return 0, err
			}
			ops += 2
			return ops, db.Close()
		},
	}
}

// LaunchStats measures cold app-launch latency: installation aside, the
// time from Spawn to a first successful UI frame, including Anception's
// proxy enrollment.
type LaunchStats struct {
	Mode    anception.Mode
	Latency time.Duration
}

// MeasureLaunch boots a platform and measures one cold launch.
func MeasureLaunch(mode anception.Mode) (LaunchStats, error) {
	d, err := benchDevice(mode)
	if err != nil {
		return LaunchStats{}, err
	}
	app, err := d.InstallApp(android.AppSpec{Package: "com.launch.bench"})
	if err != nil {
		return LaunchStats{}, err
	}
	start := d.Clock.Now()
	p, err := d.Launch(app)
	if err != nil {
		return LaunchStats{}, err
	}
	// First frame: code paging, a config read, one draw.
	if _, err := p.Open("/system/framework/framework.jar", abi.ORdOnly, 0); err != nil {
		return LaunchStats{}, err
	}
	cfgFD, err := p.Open("config.xml", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		return LaunchStats{}, err
	}
	if _, err := p.Write(cfgFD, []byte("<config/>")); err != nil {
		return LaunchStats{}, err
	}
	bfd, err := p.OpenBinder()
	if err != nil {
		return LaunchStats{}, err
	}
	if err := p.Draw(bfd); err != nil {
		return LaunchStats{}, err
	}
	return LaunchStats{Mode: mode, Latency: d.Clock.Now() - start}, nil
}
