package workloads

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/kernel"
)

// ChainScan is the canonical dependent-chain workload of the syscall
// fusion experiment: iters repetitions of open→fstat→pread(4 KiB)→close
// on one file, issued through Proc.Chain. On a device with FusionEnable
// the whole chain rides one ring submission; on any other device the
// same workload degrades to four independent dispatches per iteration,
// which makes it the unfused comparison arm with zero workload skew.
// Ops counts logical system calls (4 per iteration).
func ChainScan(iters int) Workload {
	return Workload{
		Name: "chain-scan",
		Run: func(p *anception.Proc) (int, error) {
			page := make([]byte, abi.PageSize)
			fd, err := p.Open("chain.dat", abi.ORdWr|abi.OCreat, 0o600)
			if err != nil {
				return 0, err
			}
			if _, err := p.Pwrite(fd, page, 0); err != nil {
				return 0, err
			}
			if err := p.Close(fd); err != nil {
				return 0, err
			}

			buf := make([]byte, abi.PageSize)
			for i := 0; i < iters; i++ {
				res := p.Chain(
					anception.ChainCall{Args: kernel.Args{Nr: abi.SysOpen, Path: "chain.dat", Flags: abi.ORdWr}, FDFrom: -1},
					anception.ChainCall{Args: kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
					anception.ChainCall{Args: kernel.Args{Nr: abi.SysPread64, Buf: buf}, FDFrom: 0},
					anception.ChainCall{Args: kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
				)
				for j, r := range res {
					if !r.Ok() {
						return 0, fmt.Errorf("chain-scan iter %d link %d: %w", i, j, r.Err)
					}
				}
			}
			return iters * 4, nil
		},
	}
}
