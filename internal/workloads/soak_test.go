package workloads

import (
	"testing"

	"anception/internal/supervisor"
)

// TestSoakUnderFaultInjection is the long-soak drill: open-loop-style
// redirected traffic with probabilistic drops and delays on the channel,
// periodic channel wedges and guest kernel panics, and the supervisor
// restarting the CVM mid-traffic. Asserted invariants: the socket-op
// accounting identity holds across every restart, a completed-fraction
// floor, successful-op percentiles within a bounded factor of the
// fault-free baseline, and real recovery work happened (otherwise the
// drill is vacuous).
func TestSoakUnderFaultInjection(t *testing.T) {
	st, err := RunSoak(SoakConfig{})
	if err != nil {
		t.Fatal(err)
	}

	if st.OpsAttempted != st.OpsCompleted+st.OpsFailed {
		t.Fatalf("op accounting broken: %d attempted != %d completed + %d failed",
			st.OpsAttempted, st.OpsCompleted, st.OpsFailed)
	}
	if !st.AccountingOK {
		t.Fatalf("socket-op identity broken: submitted %d != completed %d + failed %d",
			st.Net.Submitted, st.Net.Completed, st.Net.Failed)
	}
	if st.Net.Failed == 0 {
		t.Fatal("soak injected faults but the socket path recorded zero failures — drill is vacuous")
	}
	if st.Restarts+st.Restores == 0 {
		t.Fatal("soak forced wedges and panics but the supervisor never restarted the CVM")
	}
	if st.Recoveries == 0 {
		t.Fatal("no recovery recorded")
	}

	// Completed-fraction floor: faults are probabilistic plus periodic
	// forced outages, so most ops must still succeed.
	frac := float64(st.OpsCompleted) / float64(st.OpsAttempted)
	if frac < 0.60 {
		t.Fatalf("completed fraction %.2f below 0.60 floor (%d/%d)", frac, st.OpsCompleted, st.OpsAttempted)
	}

	// Latency floors: successful ops during the soak must stay within a
	// bounded factor of the fault-free baseline. p50 sees mostly clean
	// ops (4x headroom); p99 may legitimately absorb one injected
	// channel delay or a post-restart refault, so its bound is the
	// injected-delay cost plus baseline headroom.
	if st.BaselineP50 <= 0 || st.BaselineP99 < st.BaselineP50 {
		t.Fatalf("degenerate baseline: p50=%v p99=%v", st.BaselineP50, st.BaselineP99)
	}
	if st.SoakP50 > 4*st.BaselineP50 {
		t.Fatalf("soak p50 %v above 4x baseline p50 %v", st.SoakP50, st.BaselineP50)
	}
	if ceiling := supervisor.DefaultInjectedDelay + 10*st.BaselineP99; st.SoakP99 > ceiling {
		t.Fatalf("soak p99 %v above ceiling %v (injected delay + 10x baseline p99 %v)",
			st.SoakP99, ceiling, st.BaselineP99)
	}
}

// TestSoakDeterminism pins that the soak — faults, restarts and all —
// is reproducible: same seed, same counters, same percentiles.
func TestSoakDeterminism(t *testing.T) {
	cfg := SoakConfig{Rounds: 16, OpsPerRound: 16}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("soak not deterministic:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestSoakCleanChannel sanity-checks the rig: with every fault source
// disabled the soak completes everything and never restarts.
func TestSoakCleanChannel(t *testing.T) {
	st, err := RunSoak(SoakConfig{
		Rounds: 8, OpsPerRound: 16,
		DropProb: -1, DelayProb: -1, HangEvery: -1, PanicEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OpsFailed != 0 {
		t.Fatalf("clean soak failed %d ops", st.OpsFailed)
	}
	if st.Restarts+st.Restores != 0 {
		t.Fatalf("clean soak restarted the CVM %d times", st.Restarts+st.Restores)
	}
	if !st.AccountingOK {
		t.Fatalf("clean soak broke the socket identity: %+v", st.Net)
	}
}
