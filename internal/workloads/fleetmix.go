package workloads

import (
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/netstack"
)

// Mixed many-app fleet workload (DESIGN.md §16): every app runs the
// same blend of redirected traffic — page reads/writes (cache + sync
// paths), bulk 64 KiB writes (grant path), small socket echoes (sockop
// ring), and binder transactions (session path) — so each shard's
// entire fast-path surface warms. Shards are independent service
// domains on private sim clocks; fleet elapsed time is the slowest
// shard's clock, so throughput scales with the shard count as long as
// placement keeps the population balanced — exactly the claim
// `evaluate -exp fleet` sweeps 1→16 CVMs.

// FleetMixConfig tunes the fleet workload. Zero values take defaults.
type FleetMixConfig struct {
	// FleetSize is the CVM shard count (default 1).
	FleetSize int
	// Apps is the enrolled app population (default 32 — divides evenly
	// across every swept fleet size).
	Apps int
	// OpsPerApp is mixed operations per app (default 64).
	OpsPerApp int
	// WarmupOps is the unmeasured per-app warm-up (default 32): it runs
	// the same blend before measurement starts so the adaptive data
	// plane's EWMAs converge and the sweep measures steady state, not
	// per-shard auto-tune exploration. Negative disables.
	WarmupOps int
	// Placement selects the scheduler policy (default least-loaded).
	Placement anception.PlacementPolicy
	// Opts is the per-shard device template. Zero boots the adaptive
	// data plane (AutoTune) with an hour fault-detector deadline.
	Opts anception.Options
}

func (c *FleetMixConfig) applyDefaults() {
	if c.FleetSize <= 0 {
		c.FleetSize = 1
	}
	if c.Apps <= 0 {
		c.Apps = 32
	}
	if c.OpsPerApp <= 0 {
		c.OpsPerApp = 64
	}
	if c.WarmupOps == 0 {
		c.WarmupOps = 32
	}
	if c.WarmupOps < 0 {
		c.WarmupOps = 0
	}
	var zero anception.Options
	if c.Opts == zero {
		c.Opts = anception.Options{AutoTune: true, CallDeadline: time.Hour}
	}
	c.Opts.Mode = anception.ModeAnception
	c.Opts.DisableTrace = true
	c.Opts.FleetSize = c.FleetSize
	c.Opts.FleetPlacement = c.Placement
}

// FleetMixStats is one sweep point's outcome.
type FleetMixStats struct {
	FleetSize int
	Apps      int
	Ops       int
	// Elapsed is the slowest shard's measured sim time; PerShardElapsed
	// and PerShardApps break it down.
	Elapsed         time.Duration
	PerShardElapsed []time.Duration
	PerShardApps    []int
	OpsPerSimSec    float64
}

// fleetEchoAddr is the simulated remote every shard's CVM stack can
// reach.
const fleetEchoAddr = "echo.fleet:80"

// fleetMixApp is one enrolled app's warm handles.
type fleetMixApp struct {
	app  *anception.FleetApp
	fd   int
	sock int
	bfd  int
}

// fleetMixOps is the op blend period: of every 8 ops, 4 are page
// read/write pairs, 2 are 128 B socket echoes, 1 is a 64 KiB bulk
// write, 1 is a binder transaction.
const fleetMixPeriod = 8

// setupFleetMix boots the fleet, registers the echo remote on every
// shard, installs the app population, and warms each app's handles
// (open file, connected socket, binder fd) so enrollment cost stays out
// of the measured phase.
func setupFleetMix(cfg *FleetMixConfig) (*anception.Fleet, []*fleetMixApp, error) {
	fleet, err := anception.NewFleet(cfg.Opts)
	if err != nil {
		return nil, nil, err
	}
	for _, sh := range fleet.Shards() {
		sh.Dev.RegisterRemote(fleetEchoAddr, func(req []byte) []byte {
			if len(req) > 256 {
				return []byte("ok")
			}
			return req
		})
	}
	apps := make([]*fleetMixApp, 0, cfg.Apps)
	for i := 0; i < cfg.Apps; i++ {
		fa, err := fleet.InstallAppForUser(android.AppSpec{Package: fmt.Sprintf("com.fleet.mix%03d", i)}, i%4)
		if err != nil {
			fleet.Close()
			return nil, nil, err
		}
		ma, err := warmFleetMixApp(fa)
		if err != nil {
			fleet.Close()
			return nil, nil, err
		}
		apps = append(apps, ma)
	}
	return fleet, apps, nil
}

func warmFleetMixApp(fa *anception.FleetApp) (*fleetMixApp, error) {
	p := fa.Proc()
	fd, err := p.Open("mix.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return nil, err
	}
	sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		return nil, err
	}
	if err := p.Connect(sock, fleetEchoAddr); err != nil {
		return nil, err
	}
	bfd, err := p.OpenBinder()
	if err != nil {
		return nil, err
	}
	return &fleetMixApp{app: fa, fd: fd, sock: sock, bfd: bfd}, nil
}

// runFleetMixOp runs operation index i of the blend for one app.
func runFleetMixOp(ma *fleetMixApp, i int, page, bulk, echo []byte) error {
	p := ma.app.Proc()
	switch i % fleetMixPeriod {
	case 0, 2, 4, 6:
		if _, err := p.Pwrite(ma.fd, page, 0); err != nil {
			return fmt.Errorf("pwrite: %w", err)
		}
		if _, err := p.Pread(ma.fd, abi.PageSize, 0); err != nil {
			return fmt.Errorf("pread: %w", err)
		}
	case 1, 5:
		if _, err := p.Send(ma.sock, echo); err != nil {
			return fmt.Errorf("send: %w", err)
		}
		if _, err := p.Recv(ma.sock, len(echo)); err != nil {
			return fmt.Errorf("recv: %w", err)
		}
	case 3:
		if _, err := p.Pwrite(ma.fd, bulk, 0); err != nil {
			return fmt.Errorf("bulk pwrite: %w", err)
		}
	default: // 7
		if _, err := p.BinderCall(ma.bfd, "location", android.CodeGetLocation, echo); err != nil {
			return fmt.Errorf("binder: %w", err)
		}
	}
	return nil
}

// runFleetMixApp drives one app through ops mixed operations.
func runFleetMixApp(ma *fleetMixApp, ops int) error {
	page := make([]byte, abi.PageSize)
	bulk := make([]byte, 64<<10)
	echo := make([]byte, 128)
	for i := 0; i < ops; i++ {
		if err := runFleetMixOp(ma, i, page, bulk, echo); err != nil {
			return err
		}
	}
	return nil
}

// RunFleetMix runs the mixed many-app workload on a fleet of the given
// size and reports throughput. Each shard's apps execute against that
// shard's private clock; elapsed time is the slowest shard's measured
// span.
func RunFleetMix(cfg FleetMixConfig) (FleetMixStats, error) {
	cfg.applyDefaults()
	fleet, apps, err := setupFleetMix(&cfg)
	if err != nil {
		return FleetMixStats{}, err
	}
	defer fleet.Close()

	// Group apps per shard, snapshot each shard's clock, run, measure.
	perShard := make([][]*fleetMixApp, fleet.Size())
	for _, ma := range apps {
		id := ma.app.Shard()
		perShard[id] = append(perShard[id], ma)
	}
	st := FleetMixStats{
		FleetSize:       fleet.Size(),
		Apps:            len(apps),
		Ops:             len(apps) * cfg.OpsPerApp,
		PerShardElapsed: make([]time.Duration, fleet.Size()),
		PerShardApps:    make([]int, fleet.Size()),
	}
	// Unmeasured warm-up: converge each shard's adaptive plane.
	for _, ma := range apps {
		if err := runFleetMixApp(ma, cfg.WarmupOps); err != nil {
			return FleetMixStats{}, fmt.Errorf("warmup %s: %w", ma.app.Pkg, err)
		}
	}
	for id, shardApps := range perShard {
		sh := fleet.Shard(id)
		start := sh.Dev.Clock.Now()
		for _, ma := range shardApps {
			if err := runFleetMixApp(ma, cfg.OpsPerApp); err != nil {
				return FleetMixStats{}, fmt.Errorf("shard %d app %s: %w", id, ma.app.Pkg, err)
			}
		}
		st.PerShardApps[id] = len(shardApps)
		st.PerShardElapsed[id] = sh.Dev.Clock.Now() - start
		if st.PerShardElapsed[id] > st.Elapsed {
			st.Elapsed = st.PerShardElapsed[id]
		}
	}
	if st.Elapsed > 0 {
		st.OpsPerSimSec = float64(st.Ops) / st.Elapsed.Seconds()
	}
	return st, nil
}

// BlastRadiusStats is the compromised-shard drill outcome.
type BlastRadiusStats struct {
	FleetSize int
	Apps      int
	BadShard  int
	// DegradedApps counts apps that saw failures during the outage;
	// DegradedOffShard counts the subset NOT resident on the bad shard
	// (must be zero — that is the blast-radius claim).
	DegradedApps     int
	DegradedOffShard int
	// SiblingCostDriftMax is the worst relative per-op cost drift on
	// healthy-shard apps between the steady-state reference run and the
	// outage run (0.01 = 1%).
	SiblingCostDriftMax float64
	// Recovered reports the fleet came back fully healthy and every app
	// (bad shard included) completed a clean post-recovery run.
	Recovered bool
	// MTTR is the bad shard's recovery time; Restarts/Restores its
	// recovery actions.
	MTTR     time.Duration
	Restarts int
	Restores int
}

// measureAppOps runs ops operations for one app and returns the
// per-op sim cost on its shard's clock, plus the failure count when
// tolerant.
func measureAppOps(fleet *anception.Fleet, ma *fleetMixApp, ops int, tolerant bool) (time.Duration, int) {
	sh := fleet.Shard(ma.app.Shard())
	page := make([]byte, abi.PageSize)
	bulk := make([]byte, 64<<10)
	echo := make([]byte, 128)
	start := sh.Dev.Clock.Now()
	failures := 0
	for i := 0; i < ops; i++ {
		if err := runFleetMixOp(ma, i, page, bulk, echo); err != nil {
			if !tolerant {
				failures = 1
				break
			}
			failures++
		}
	}
	elapsed := sh.Dev.Clock.Now() - start
	return elapsed / time.Duration(ops), failures
}

// RunBlastRadiusDrill compromises one shard of a warm fleet — result
// tampering followed by a guest kernel panic — and proves the blast
// radius is that shard alone: only its apps degrade, sibling apps keep
// their exact per-op costs (independent clocks, untouched warm state),
// and the shard's own watchdog recovers it while siblings never
// restart.
func RunBlastRadiusDrill(cfg FleetMixConfig) (BlastRadiusStats, error) {
	// The drill pins every fast path on explicitly instead of using the
	// adaptive plane: AutoTune's periodic exploration (every Nth
	// decision retries the slower arm) would land at different offsets
	// in the reference and outage measurement windows and read as
	// phantom cost drift on healthy shards. Pinned dispatch makes the
	// sibling-cost comparison exact.
	var zero anception.Options
	if cfg.Opts == zero {
		cfg.Opts = anception.Options{
			RedirCache: true, RingDepth: 64, RingWorkers: 4,
			GrantThreshold: 16 << 10,
			BinderSessions: true, BinderReplyCache: true,
			CallDeadline: time.Hour,
		}
	}
	cfg.applyDefaults()
	if cfg.FleetSize < 2 {
		cfg.FleetSize = 4
		cfg.Opts.FleetSize = cfg.FleetSize
	}
	fleet, apps, err := setupFleetMix(&cfg)
	if err != nil {
		return BlastRadiusStats{}, err
	}
	defer fleet.Close()
	st := BlastRadiusStats{FleetSize: fleet.Size(), Apps: len(apps), BadShard: 0}

	// Warm-up until the adaptive plane converges, then a discarded
	// measurement pass (absorbs any residual drift), then the
	// steady-state reference run per app.
	for _, ma := range apps {
		if err := runFleetMixApp(ma, cfg.WarmupOps+cfg.OpsPerApp); err != nil {
			return st, fmt.Errorf("warmup %s: %w", ma.app.Pkg, err)
		}
	}
	ref := make(map[string]time.Duration, len(apps))
	for _, ma := range apps {
		measureAppOps(fleet, ma, cfg.OpsPerApp, false)
		cost, _ := measureAppOps(fleet, ma, cfg.OpsPerApp, false)
		ref[ma.app.Pkg] = cost
	}

	// Compromise shard 0: tampered results, then a guest kernel panic.
	bad := fleet.Shard(st.BadShard)
	bad.Dev.Layer.SetResultTampering(func(b []byte) []byte {
		for i := range b {
			b[i] ^= 0xff
		}
		return b
	})
	bad.Dev.InjectGuestPanic("compromised shard drill")

	// Outage run: tolerant, per app.
	for _, ma := range apps {
		onBad := ma.app.Shard() == st.BadShard
		cost, failures := measureAppOps(fleet, ma, cfg.OpsPerApp, true)
		if failures > 0 {
			st.DegradedApps++
			if !onBad {
				st.DegradedOffShard++
			}
			continue
		}
		if !onBad {
			drift := float64(cost-ref[ma.app.Pkg]) / float64(ref[ma.app.Pkg])
			if drift < 0 {
				drift = -drift
			}
			if drift > st.SiblingCostDriftMax {
				st.SiblingCostDriftMax = drift
			}
		}
	}

	// Stop tampering (the drill's compromise dies with the guest) and
	// let the per-shard watchdogs recover the fleet.
	bad.Dev.Layer.SetResultTampering(nil)
	if err := fleet.Group().RunUntilAllHealthy(400); err != nil {
		return st, fmt.Errorf("recovery: %w", err)
	}
	sup := bad.Sup.Stats()
	st.MTTR = sup.LastMTTR
	st.Restarts = sup.Restarts
	st.Restores = sup.Restores

	// Post-recovery: every app — bad shard included — runs clean.
	clean := true
	for _, ma := range apps {
		// Re-warm handles on the bad shard: its CVM restart invalidated
		// container-side descriptors and dropped the fresh guest's
		// scripted remote registration.
		if ma.app.Shard() == st.BadShard {
			bad.Dev.RegisterRemote(fleetEchoAddr, func(req []byte) []byte {
				if len(req) > 256 {
					return []byte("ok")
				}
				return req
			})
			fresh, err := warmFleetMixApp(ma.app)
			if err != nil {
				clean = false
				continue
			}
			*ma = *fresh
		}
		if _, failures := measureAppOps(fleet, ma, cfg.OpsPerApp, true); failures > 0 {
			clean = false
		}
	}
	st.Recovered = clean && fleet.Group().Healthy()
	return st, nil
}
