package workloads

import (
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/supervisor"
)

// Long soak under fault injection (DESIGN.md §16): open-loop-style
// redirected traffic (page I/O + socket echoes) runs for many rounds
// while the channel injector drops and delays messages probabilistically
// and the drill periodically wedges the channel or panics the guest
// kernel outright, leaving the supervisor to restart the CVM mid-
// traffic. The workload is tolerant — failures are counted, not fatal —
// and the run is judged on three invariants: the socket-op accounting
// identity (Submitted = Completed + Failed: no op is lost or double-
// counted across restarts), a completed-fraction floor, and healthy-op
// latency percentiles that stay within a bounded factor of the
// fault-free baseline.

// SoakConfig tunes the fault-injection soak. Zero values take defaults.
type SoakConfig struct {
	// Rounds is the soak length in rounds (default 48); OpsPerRound the
	// mixed operations per round (default 32).
	Rounds      int
	OpsPerRound int
	// DropProb / DelayProb are per-message injector probabilities
	// (defaults 0.02 and 0.04).
	DropProb  float64
	DelayProb float64
	// HangEvery wedges the data channel every N rounds (default 16;
	// negative disables). PanicEvery panics the guest kernel every N
	// rounds (default 12; negative disables). Both leave recovery to the
	// supervisor.
	HangEvery  int
	PanicEvery int
	// Seed feeds the injector's RNG (default 1).
	Seed uint64
	// Opts is the device template. Mode is forced to Anception and the
	// CallDeadline defaults to 250ms so a wedged channel costs bounded
	// sim time per call instead of an hour.
	Opts anception.Options
}

func (c *SoakConfig) applyDefaults() {
	if c.Rounds <= 0 {
		c.Rounds = 48
	}
	if c.OpsPerRound <= 0 {
		c.OpsPerRound = 32
	}
	if c.DropProb == 0 {
		c.DropProb = 0.02
	}
	if c.DelayProb == 0 {
		c.DelayProb = 0.04
	}
	if c.HangEvery == 0 {
		c.HangEvery = 16
	}
	if c.PanicEvery == 0 {
		c.PanicEvery = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Opts.Mode = anception.ModeAnception
	c.Opts.DisableTrace = true
	if c.Opts.CallDeadline == 0 {
		c.Opts.CallDeadline = 250 * time.Millisecond
	}
}

// SoakStats is the soak outcome.
type SoakStats struct {
	Rounds int
	// Tolerant-op accounting: attempted = completed + failed.
	OpsAttempted int
	OpsCompleted int
	OpsFailed    int
	// Supervisor actions across the soak.
	Restarts     int
	Restores     int
	Recoveries   int
	BreakerTrips int
	MeanMTTR     time.Duration
	// Fault-free baseline vs. soak percentiles over successful ops.
	BaselineP50, BaselineP99 time.Duration
	SoakP50, SoakP99         time.Duration
	// Net is the device's socket-op path accounting; AccountingOK
	// asserts Submitted = Completed + Failed held across every fault
	// and restart.
	Net          anception.NetPathStats
	AccountingOK bool
}

// soakEchoAddr is the simulated remote peer.
const soakEchoAddr = "echo.soak:80"

// soakRig is the app under soak with its warm handles.
type soakRig struct {
	d    *anception.Device
	proc *anception.Proc
	fd   int
	sock int
}

// rewarm (re)opens the rig's file and socket — needed at boot and after
// any CVM restart, which invalidates redirected descriptors and drops
// the fresh guest's scripted remote registrations.
func (r *soakRig) rewarm() error {
	r.d.RegisterRemote(soakEchoAddr, func(req []byte) []byte { return req })
	fd, err := r.proc.Open("soak.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return fmt.Errorf("rewarm open: %w", err)
	}
	r.fd = fd
	sock, err := r.proc.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		return fmt.Errorf("rewarm socket: %w", err)
	}
	if err := r.proc.Connect(sock, soakEchoAddr); err != nil {
		return fmt.Errorf("rewarm connect: %w", err)
	}
	r.sock = sock
	return nil
}

// soakOp runs one mixed operation: even indices are a page write+read
// pair, odd indices a 128 B socket echo.
func (r *soakRig) soakOp(i int, page, echo []byte) error {
	if i%2 == 0 {
		if _, err := r.proc.Pwrite(r.fd, page, 0); err != nil {
			return err
		}
		_, err := r.proc.Pread(r.fd, abi.PageSize, 0)
		return err
	}
	if _, err := r.proc.Send(r.sock, echo); err != nil {
		return err
	}
	_, err := r.proc.Recv(r.sock, len(echo))
	return err
}

// RunSoak boots a supervised device with a fault-injecting channel,
// runs the soak, and reports the invariants. It never returns an error
// for injected faults — only for rig failures (boot, or a fleet that
// will not recover).
func RunSoak(cfg SoakConfig) (SoakStats, error) {
	cfg.applyDefaults()
	d, err := anception.NewDevice(cfg.Opts)
	if err != nil {
		return SoakStats{}, err
	}
	defer d.Close()
	d.RegisterRemote(soakEchoAddr, func(req []byte) []byte { return req })

	inj := supervisor.NewInjector(d.Layer.Transport(), sim.NewRNG(cfg.Seed), d.Clock, d.Trace)
	d.Layer.SetTransport(inj)
	sup := supervisor.New(d, d.Clock, d.Trace, supervisor.Config{Channel: inj})

	app, err := d.InstallApp(android.AppSpec{Package: "com.soak.app"})
	if err != nil {
		return SoakStats{}, err
	}
	proc, err := d.Launch(app)
	if err != nil {
		return SoakStats{}, err
	}
	rig := &soakRig{d: d, proc: proc}
	if err := rig.rewarm(); err != nil {
		return SoakStats{}, err
	}

	page := make([]byte, abi.PageSize)
	echo := make([]byte, 128)
	st := SoakStats{Rounds: cfg.Rounds}

	// Phase 1 — fault-free baseline percentiles.
	var baseline []time.Duration
	for i := 0; i < 4*cfg.OpsPerRound; i++ {
		t0 := d.Clock.Now()
		if err := rig.soakOp(i, page, echo); err != nil {
			return st, fmt.Errorf("baseline op %d: %w", i, err)
		}
		baseline = append(baseline, d.Clock.Now()-t0)
	}
	st.BaselineP50, st.BaselineP99 = pctPair(baseline)

	// Phase 2 — soak under probabilistic faults plus periodic wedges and
	// guest panics, tolerant throughout. A failed op ticks the watchdog
	// (its heartbeat is how recovery makes progress in sim time).
	inj.SetProbability(supervisor.FaultDrop, cfg.DropProb)
	inj.SetProbability(supervisor.FaultDelay, cfg.DelayProb)
	var soakLats []time.Duration
	for round := 1; round <= cfg.Rounds; round++ {
		if cfg.HangEvery > 0 && round%cfg.HangEvery == 0 {
			inj.Wedge()
		}
		if cfg.PanicEvery > 0 && round%cfg.PanicEvery == 0 {
			d.InjectGuestPanic("soak drill")
		}
		for i := 0; i < cfg.OpsPerRound; i++ {
			st.OpsAttempted++
			t0 := d.Clock.Now()
			if err := rig.soakOp(i, page, echo); err != nil {
				st.OpsFailed++
				sup.Tick()
				// A restart invalidates the rig's descriptors; re-warm
				// once the platform answers again.
				if sup.Healthy() {
					if err := rig.rewarm(); err != nil {
						sup.Tick()
					}
				}
				continue
			}
			st.OpsCompleted++
			soakLats = append(soakLats, d.Clock.Now()-t0)
		}
		sup.Tick()
	}

	// Phase 3 — lift the faults, let the watchdog finish, and verify the
	// platform still serves cleanly.
	inj.SetProbability(supervisor.FaultDrop, 0)
	inj.SetProbability(supervisor.FaultDelay, 0)
	if err := sup.RunUntilHealthy(200); err != nil {
		return st, fmt.Errorf("post-soak recovery: %w", err)
	}
	if err := rig.rewarm(); err != nil {
		return st, err
	}
	for i := 0; i < cfg.OpsPerRound; i++ {
		if err := rig.soakOp(i, page, echo); err != nil {
			return st, fmt.Errorf("post-soak op %d: %w", i, err)
		}
	}

	st.SoakP50, st.SoakP99 = pctPair(soakLats)
	sst := sup.Stats()
	st.Restarts = sst.Restarts
	st.Restores = sst.Restores
	st.Recoveries = sst.Recoveries
	st.BreakerTrips = sst.BreakerTrips
	st.MeanMTTR = sst.MeanMTTR()
	st.Net = d.Layer.Stats().Net
	st.AccountingOK = st.Net.Submitted == st.Net.Completed+st.Net.Failed
	return st, nil
}

// pctPair returns the p50 and p99 of a latency sample (zero when empty).
func pctPair(lats []time.Duration) (p50, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2], sorted[int(0.99*float64(len(sorted)-1))]
}
