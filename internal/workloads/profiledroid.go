package workloads

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// ProfileDroid-style syscall profiling (Section VI-A): the paper measures
// that 58.7%-80.1% (average 73.7%) of popular apps' system calls are
// ioctls, and that 81.35% of those ioctls are UI-related. This module
// drives a corpus of synthetic "popular apps" whose call mixes reproduce
// those ratios, then verifies them with an actual profiler over the
// kernel's syscall counters.

// AppProfile characterizes one profiled app's syscall mix.
type AppProfile struct {
	Name string
	// IoctlFrac is the ioctl share of all syscalls.
	IoctlFrac float64
	// UIIoctlFrac is the UI share of the ioctls.
	UIIoctlFrac float64
	// Calls is the number of syscalls to issue.
	Calls int
}

// ProfiledApps is the corpus; the ioctl fractions span the paper's
// 58.7-80.1% range with the stated 73.7% average, and each app's UI share
// of ioctls sits at the measured 81.35%.
func ProfiledApps() []AppProfile {
	return []AppProfile{
		{Name: "browser", IoctlFrac: 0.587, UIIoctlFrac: 0.8135, Calls: 2000},
		{Name: "maps", IoctlFrac: 0.690, UIIoctlFrac: 0.8135, Calls: 2000},
		{Name: "game2d", IoctlFrac: 0.737, UIIoctlFrac: 0.8135, Calls: 2000},
		{Name: "social", IoctlFrac: 0.750, UIIoctlFrac: 0.8135, Calls: 2000},
		{Name: "video", IoctlFrac: 0.780, UIIoctlFrac: 0.8135, Calls: 2000},
		{Name: "game3d", IoctlFrac: 0.801, UIIoctlFrac: 0.8135, Calls: 2000},
	}
}

// ProfileStats is the measured outcome.
type ProfileStats struct {
	PerAppIoctlFrac map[string]float64
	AvgIoctlFrac    float64
	UIIoctlFrac     float64
	TotalCalls      int
}

// RunProfile launches the corpus on one device and profiles the actual
// syscall mix through the kernel counters and binder statistics.
func RunProfile(mode anception.Mode) (ProfileStats, error) {
	d, err := benchDevice(mode)
	if err != nil {
		return ProfileStats{}, err
	}
	stats := ProfileStats{PerAppIoctlFrac: make(map[string]float64)}
	rng := sim.NewRNG(2015)

	var totalIoctl, totalCalls int
	for _, prof := range ProfiledApps() {
		app, err := d.InstallApp(android.AppSpec{Package: "com.profiled." + prof.Name})
		if err != nil {
			return ProfileStats{}, err
		}
		p, err := d.Launch(app)
		if err != nil {
			return ProfileStats{}, err
		}
		ioctls, calls, err := driveAppMix(p, prof, rng.Fork())
		if err != nil {
			return ProfileStats{}, fmt.Errorf("%s: %w", prof.Name, err)
		}
		stats.PerAppIoctlFrac[prof.Name] = float64(ioctls) / float64(calls)
		totalIoctl += ioctls
		totalCalls += calls
	}
	stats.TotalCalls = totalCalls
	var sum float64
	for _, f := range stats.PerAppIoctlFrac {
		sum += f
	}
	stats.AvgIoctlFrac = sum / float64(len(stats.PerAppIoctlFrac))

	// UI share of ioctls, measured from the binder drivers (under
	// Anception, non-UI transactions were bridged into the CVM's driver).
	binderTotal, binderUI := d.AppKernel().Binder().Stats()
	if d.Guest != nil {
		gt, gu := d.Guest.Binder().Stats()
		binderTotal += gt
		binderUI += gu
	}
	if binderTotal > 0 {
		stats.UIIoctlFrac = float64(binderUI) / float64(binderTotal)
	}
	return stats, nil
}

// driveAppMix issues the app's syscall mix and returns (ioctls, total).
func driveAppMix(p *anception.Proc, prof AppProfile, rng *sim.RNG) (int, int, error) {
	bfd, err := p.OpenBinder()
	if err != nil {
		return 0, 0, err
	}
	fd, err := p.Open("profile.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return 0, 0, err
	}
	ioctls, calls := 0, 0
	buf4k := make([]byte, abi.PageSize)
	for i := 0; i < prof.Calls; i++ {
		calls++
		if rng.Float64() < prof.IoctlFrac {
			ioctls++
			if rng.Float64() < prof.UIIoctlFrac {
				// UI ioctl: a draw transaction on the window manager.
				if err := p.Draw(bfd); err != nil {
					return 0, 0, err
				}
			} else {
				// Non-UI ioctl: a service call (location fix, media).
				if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, []byte("fix?")); err != nil {
					return 0, 0, err
				}
			}
			continue
		}
		// Non-ioctl mix: reads, writes, stats, and cheap process calls.
		switch rng.Intn(5) {
		case 0:
			if _, err := p.Write(fd, buf4k[:256]); err != nil {
				return 0, 0, err
			}
		case 1:
			if _, err := p.Lseek(fd, 0, abi.SeekSet); err != nil {
				return 0, 0, err
			}
			if _, err := p.Read(fd, 256); err != nil {
				return 0, 0, err
			}
		case 2:
			if _, err := p.Stat("profile.dat"); err != nil {
				return 0, 0, err
			}
		case 3:
			p.Getpid()
		case 4:
			p.Syscall(kernel.Args{Nr: abi.SysClockGettime})
		}
	}
	return ioctls, calls, nil
}
