package workloads

import (
	"testing"
	"time"

	"anception/internal/anception"
)

// TestNetServerWorkload runs the open-loop echo-server traffic workload
// small on each transport and checks its invariants: ordered
// percentiles, formed accept batches, and the ring beating the
// synchronous channel (the full floors are enforced by evaluate -exp
// network in CI).
func TestNetServerWorkload(t *testing.T) {
	cfg := NetServerConfig{Sessions: 1500}
	ring, err := RunNetServer(anception.ModeAnception, anception.Options{
		RingDepth:      64,
		RingWorkers:    4,
		GrantThreshold: 16384,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := RunNetServer(anception.ModeAnception, anception.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunNetServer(anception.ModeNative, anception.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, st := range []NetServerStats{ring, sync, native} {
		if st.Sessions != cfg.Sessions || st.OpsPerSimSec <= 0 {
			t.Fatalf("%s: degenerate run: %+v", st.Mode, st)
		}
		if st.P50 <= 0 || st.P50 > st.P99 || st.P99 > st.P999 || st.P999 > st.Max {
			t.Fatalf("%s: percentiles out of order: %+v", st.Mode, st)
		}
		if st.AvgAcceptBatch < 2 {
			t.Fatalf("%s: accept batching never formed: avg %.2f", st.Mode, st.AvgAcceptBatch)
		}
		if st.DgramDrops != 0 {
			t.Fatalf("%s: stream workload counted dgram drops: %d", st.Mode, st.DgramDrops)
		}
	}
	if ring.OpsPerSimSec < 2*sync.OpsPerSimSec {
		t.Fatalf("ring sockets %.0f ops/sim-s, sync %.0f: want >= 2x",
			ring.OpsPerSimSec, sync.OpsPerSimSec)
	}
	if native.OpsPerSimSec <= ring.OpsPerSimSec {
		t.Fatalf("native %.0f ops/sim-s should exceed redirected ring %.0f",
			native.OpsPerSimSec, ring.OpsPerSimSec)
	}
}

// TestNetServerDeterminism extends the reproducibility promise to the
// traffic workload: identical runs produce identical percentiles.
func TestNetServerDeterminism(t *testing.T) {
	cfg := NetServerConfig{Sessions: 600}
	opts := anception.Options{RingDepth: 32, RingWorkers: 2}
	a, err := RunNetServer(anception.ModeAnception, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetServer(anception.ModeAnception, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.P50 != b.P50 || a.P99 != b.P99 || a.P999 != b.P999 || a.OpsPerSimSec != b.OpsPerSimSec {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// TestNetServerMixedSizes runs the request-size-mix variant: the tier
// assignment is deterministic (60% 256 B, 30% 4 KiB, 10% 64 KiB by
// session index), every echo comes back full length (drain checks it),
// and bulk tiers make the mixed run cost more sim time per session than
// the uniform 256 B run on the same transport.
func TestNetServerMixedSizes(t *testing.T) {
	counts := [3]int{}
	for i := 0; i < 1000; i++ {
		counts[mixedTierFor(i)]++
	}
	if counts != [3]int{600, 300, 100} {
		t.Fatalf("tier mix over 1000 sessions = %v, want [600 300 100]", counts)
	}

	opts := anception.Options{RingDepth: 64, RingWorkers: 4, GrantThreshold: 16384}
	mixed, err := RunNetServer(anception.ModeAnception, opts, NetServerConfig{Sessions: 1000, MixedSizes: true})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := RunNetServer(anception.ModeAnception, opts, NetServerConfig{Sessions: 1000, ReqBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []NetServerStats{mixed, uniform} {
		if st.Sessions != 1000 || st.OpsPerSimSec <= 0 {
			t.Fatalf("degenerate run: %+v", st)
		}
		if st.P50 <= 0 || st.P50 > st.P99 || st.P99 > st.P999 || st.P999 > st.Max {
			t.Fatalf("percentiles out of order: %+v", st)
		}
	}
	if mixed.OpsPerSimSec >= uniform.OpsPerSimSec {
		t.Fatalf("mixed sizes %.0f ops/sim-s should cost more than uniform 256 B %.0f",
			mixed.OpsPerSimSec, uniform.OpsPerSimSec)
	}

	// The mix is part of the reproducibility promise too.
	again, err := RunNetServer(anception.ModeAnception, opts, NetServerConfig{Sessions: 1000, MixedSizes: true})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.P50 != again.P50 || mixed.P99 != again.P99 || mixed.OpsPerSimSec != again.OpsPerSimSec {
		t.Fatalf("mixed run not deterministic: %+v vs %+v", mixed, again)
	}
}

// TestNetServerMultiApp runs several independent server apps sharing
// the one sockop ring, with the modeled client population scaled to a
// million: sessions spread across apps round-robin, per-app percentiles
// are reported and consistent with the aggregate, and a single-app run
// through the generalized rig stays byte-identical to the historical
// single-server workload.
func TestNetServerMultiApp(t *testing.T) {
	opts := anception.Options{RingDepth: 64, RingWorkers: 4, GrantThreshold: 16384}
	multi, err := RunNetServer(anception.ModeAnception, opts, NetServerConfig{
		Sessions: 2000, Clients: 1_000_000, ServerApps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.ServerApps != 4 || len(multi.PerApp) != 4 {
		t.Fatalf("per-app stats missing: %+v", multi)
	}
	total := 0
	for a, per := range multi.PerApp {
		if per.Sessions == 0 {
			t.Fatalf("app %d served no sessions", a)
		}
		total += per.Sessions
		if per.P50 <= 0 || per.P50 > per.P99 || per.P99 > per.P999 {
			t.Fatalf("app %d percentiles out of order: %+v", a, per)
		}
		// Aggregate percentiles bracket every app's p50.
		if per.P50 > multi.Max {
			t.Fatalf("app %d p50 %v above aggregate max %v", a, per.P50, multi.Max)
		}
	}
	if total != multi.Sessions {
		t.Fatalf("per-app sessions sum %d != %d total", total, multi.Sessions)
	}
	if multi.PerApp[0].Package != "com.netserver.echo" || multi.PerApp[1].Package != "com.netserver.echo1" {
		t.Fatalf("unexpected app naming: %+v", multi.PerApp)
	}
	// The modeled population sets the reported think time: a million
	// clients at the measured arrival rate.
	if want := time.Duration(1_000_000) * multi.Interarrival; multi.ThinkTime != want {
		t.Fatalf("think time %v, want %v", multi.ThinkTime, want)
	}

	// Round-robin across apps is even when sessions divide evenly.
	for a := 1; a < len(multi.PerApp); a++ {
		if multi.PerApp[a].Sessions != multi.PerApp[0].Sessions {
			t.Fatalf("uneven app spread: %+v", multi.PerApp)
		}
	}

	// ServerApps=1 through the generalized rig is byte-identical to the
	// historical single-server run: same ports, same package, same sim
	// timeline.
	cfg := NetServerConfig{Sessions: 600}
	one, err := RunNetServer(anception.ModeAnception, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunNetServer(anception.ModeAnception, opts, NetServerConfig{Sessions: 600, ServerApps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.P50 != explicit.P50 || one.P99 != explicit.P99 || one.Elapsed != explicit.Elapsed ||
		one.OpsPerSimSec != explicit.OpsPerSimSec {
		t.Fatalf("ServerApps=1 changed the workload:\n  default=%+v\n  explicit=%+v", one, explicit)
	}
	if len(one.PerApp) != 1 || one.PerApp[0].Sessions != 600 {
		t.Fatalf("single-app per-app stats: %+v", one.PerApp)
	}
}
