package workloads

import (
	"testing"
)

// TestFleetMixScaling runs the mixed many-app workload at 1 and 4
// shards and asserts the scaling claim in miniature: with the
// population divided evenly, 4 CVMs serve the same op count in close
// to a quarter of the slowest-shard time (the full 1→16 sweep with the
// 0.8x-linear floor at 8 CVMs runs in evaluate -exp fleet).
func TestFleetMixScaling(t *testing.T) {
	one, err := RunFleetMix(FleetMixConfig{FleetSize: 1, Apps: 16, OpsPerApp: 24})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunFleetMix(FleetMixConfig{FleetSize: 4, Apps: 16, OpsPerApp: 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []FleetMixStats{one, four} {
		if st.Ops != 16*24 || st.Elapsed <= 0 || st.OpsPerSimSec <= 0 {
			t.Fatalf("degenerate run: %+v", st)
		}
	}
	// Placement spread the population evenly.
	for id, n := range four.PerShardApps {
		if n != 4 {
			t.Fatalf("shard %d got %d apps, want 4 (%v)", id, n, four.PerShardApps)
		}
	}
	// Scaling floor: 4 shards must be at least 3.2x (0.8 x linear).
	speedup := four.OpsPerSimSec / one.OpsPerSimSec
	if speedup < 3.2 {
		t.Fatalf("4-shard speedup %.2fx below 3.2x floor (1-shard %.0f ops/s, 4-shard %.0f ops/s)",
			speedup, one.OpsPerSimSec, four.OpsPerSimSec)
	}
	// Fleet elapsed is the slowest shard, not the sum.
	var max, sum int64
	for _, e := range four.PerShardElapsed {
		sum += int64(e)
		if int64(e) > max {
			max = int64(e)
		}
	}
	if int64(four.Elapsed) != max || max == sum {
		t.Fatalf("elapsed %v, max shard %v, sum %v: want elapsed = max < sum", four.Elapsed, max, sum)
	}
}

// TestFleetMixDeterminism pins reproducibility across the fleet: same
// config, same placement, same per-shard clocks.
func TestFleetMixDeterminism(t *testing.T) {
	cfg := FleetMixConfig{FleetSize: 2, Apps: 8, OpsPerApp: 16}
	a, err := RunFleetMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.OpsPerSimSec != b.OpsPerSimSec {
		t.Fatalf("fleet mix not deterministic:\n  a=%+v\n  b=%+v", a, b)
	}
	for i := range a.PerShardElapsed {
		if a.PerShardElapsed[i] != b.PerShardElapsed[i] {
			t.Fatalf("shard %d elapsed differs: %v vs %v", i, a.PerShardElapsed[i], b.PerShardElapsed[i])
		}
	}
}

// TestBlastRadiusDrill compromises one shard of a 4-CVM fleet and
// asserts the isolation claim: only that shard's apps degrade, sibling
// costs hold steady, and the fleet recovers to full health.
func TestBlastRadiusDrill(t *testing.T) {
	st, err := RunBlastRadiusDrill(FleetMixConfig{FleetSize: 4, Apps: 8, OpsPerApp: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedApps == 0 {
		t.Fatal("compromised shard degraded no apps — drill is vacuous")
	}
	if st.DegradedOffShard != 0 {
		t.Fatalf("blast radius leaked: %d apps off shard %d degraded", st.DegradedOffShard, st.BadShard)
	}
	if st.SiblingCostDriftMax > 0.05 {
		t.Fatalf("sibling per-op cost drifted %.1f%% during the outage, want <= 5%%", 100*st.SiblingCostDriftMax)
	}
	if !st.Recovered {
		t.Fatal("fleet did not recover to full health")
	}
	if st.Restarts+st.Restores == 0 {
		t.Fatal("no recovery work recorded on the compromised shard")
	}
	if st.MTTR <= 0 {
		t.Fatalf("MTTR = %v, want positive", st.MTTR)
	}
}
