package workloads

import (
	"math"
	"testing"
	"time"

	"anception/internal/anception"
	"anception/internal/android"
)

// TestFigure7SunSpider is experiment E3: the six CPU suites run at
// native speed under Anception ("essentially indistinguishable").
func TestFigure7SunSpider(t *testing.T) {
	names := SunSpiderSuiteNames()
	if len(names) != 6 {
		t.Fatalf("suites = %v, want 6", names)
	}
	for _, name := range names {
		w, ok := SunSpiderWorkload(name)
		if !ok {
			t.Fatalf("suite %q missing", name)
		}
		c, err := Compare(w)
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Slowdown(); math.Abs(s-1.0) > 0.005 {
			t.Errorf("%s: slowdown %.4f, want ~1.0 (no syscalls, native speed)", name, s)
		}
		// The suites land in the hundreds-of-milliseconds range of the
		// figure.
		if c.Native.Simulated < 50*time.Millisecond || c.Native.Simulated > time.Second {
			t.Errorf("%s: native time %v outside the figure's range", name, c.Native.Simulated)
		}
	}
	if _, ok := SunSpiderWorkload("nosuch"); ok {
		t.Fatal("unknown suite resolved")
	}
}

// TestFigure6AnTuTu is experiment E2: relative scores (Anception/native).
// Paper: Database I/O ~3%% lower, 2D and 3D close to native, overall
// 2.8%% below native.
func TestFigure6AnTuTu(t *testing.T) {
	db, err := Compare(AnTuTuDatabaseIO())
	if err != nil {
		t.Fatal(err)
	}
	if rel := db.RelativeScore(); rel < 0.90 || rel >= 1.0 {
		t.Errorf("DB I/O relative score = %.4f, want ~0.96-0.97", rel)
	}

	d2, err := Compare(AnTuTu2D())
	if err != nil {
		t.Fatal(err)
	}
	if rel := d2.RelativeScore(); rel < 0.98 {
		t.Errorf("2D relative score = %.4f, want close to native", rel)
	}

	d3, err := Compare(AnTuTu3D())
	if err != nil {
		t.Fatal(err)
	}
	if rel := d3.RelativeScore(); rel < 0.98 {
		t.Errorf("3D relative score = %.4f, want close to native", rel)
	}

	// Overall: the paper reports 2.8% below native across the suite.
	overall := (db.RelativeScore() + d2.RelativeScore() + d3.RelativeScore()) / 3
	if overall < 0.95 || overall >= 1.0 {
		t.Errorf("overall relative score = %.4f, want ~0.97", overall)
	}

	// The ordering the figure shows: the DB test takes the largest hit.
	if db.RelativeScore() > d2.RelativeScore() || db.RelativeScore() > d3.RelativeScore() {
		t.Error("DB I/O should take the largest hit of the three")
	}
}

// TestSQLiteRowBench is experiment E4: 10,000 rows in one transaction.
// Paper: 86.55 us/row native, 86.67 us/row Anception — virtually
// indistinguishable. Our substrate preserves the native anchor and keeps
// the delta in low single digits (see EXPERIMENTS.md).
func TestSQLiteRowBench(t *testing.T) {
	c, err := Compare(SQLiteRowBench())
	if err != nil {
		t.Fatal(err)
	}
	perRowNative := c.Native.Simulated / time.Duration(c.Native.Ops)
	perRowAnception := c.Anception.Simulated / time.Duration(c.Anception.Ops)

	if perRowNative < 84*time.Microsecond || perRowNative > 89*time.Microsecond {
		t.Errorf("native per-row = %v, want ~86.5us", perRowNative)
	}
	if s := c.Slowdown(); s > 1.05 {
		t.Errorf("slowdown = %.4f, want minimal (paper: 1.001)", s)
	}
	if perRowAnception < perRowNative {
		t.Error("Anception cannot be faster than native here")
	}
}

// TestIoctlProfile is experiment E9: across popular apps, 58.7-80.1%% of
// syscalls are ioctls (avg 73.7%%), and 81.35%% of ioctls are UI-related.
func TestIoctlProfile(t *testing.T) {
	stats, err := RunProfile(anception.ModeAnception)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerAppIoctlFrac) != 6 {
		t.Fatalf("profiled %d apps", len(stats.PerAppIoctlFrac))
	}
	for name, frac := range stats.PerAppIoctlFrac {
		if frac < 0.55 || frac > 0.83 {
			t.Errorf("%s: ioctl fraction %.3f outside the 58.7-80.1%% band", name, frac)
		}
	}
	if math.Abs(stats.AvgIoctlFrac-0.737) > 0.03 {
		t.Errorf("avg ioctl fraction = %.4f, want ~0.737", stats.AvgIoctlFrac)
	}
	if math.Abs(stats.UIIoctlFrac-0.8135) > 0.03 {
		t.Errorf("UI ioctl fraction = %.4f, want ~0.8135", stats.UIIoctlFrac)
	}
	if stats.TotalCalls < 10000 {
		t.Errorf("total calls = %d, suspiciously few", stats.TotalCalls)
	}
}

// TestProfileMatchesOnNative: the mix ratios are app properties, not
// platform properties — they must measure the same natively.
func TestProfileMatchesOnNative(t *testing.T) {
	stats, err := RunProfile(anception.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.AvgIoctlFrac-0.737) > 0.03 {
		t.Errorf("native avg ioctl fraction = %.4f", stats.AvgIoctlFrac)
	}
	if math.Abs(stats.UIIoctlFrac-0.8135) > 0.03 {
		t.Errorf("native UI ioctl fraction = %.4f", stats.UIIoctlFrac)
	}
}

// TestMeasurementHelpers covers the arithmetic.
func TestMeasurementHelpers(t *testing.T) {
	m := Measurement{Name: "x", Mode: anception.ModeNative, Simulated: 2 * time.Second, Ops: 100}
	if m.OpsPerSecond() != 50 {
		t.Fatalf("ops/s = %v", m.OpsPerSecond())
	}
	zero := Measurement{}
	if zero.OpsPerSecond() != 0 {
		t.Fatal("zero measurement should score 0")
	}
	c := Comparison{
		Native:    Measurement{Simulated: time.Second, Ops: 100},
		Anception: Measurement{Simulated: 2 * time.Second, Ops: 100},
	}
	if c.Slowdown() != 2.0 || c.RelativeScore() != 0.5 {
		t.Fatalf("slowdown=%v rel=%v", c.Slowdown(), c.RelativeScore())
	}
	if (Comparison{}).Slowdown() != 0 || (Comparison{}).RelativeScore() != 0 {
		t.Fatal("zero comparison")
	}
	if m.String() == "" {
		t.Fatal("empty render")
	}
}

// TestSQLiteBenchDataActuallyPersists: the benchmark is a real database
// write, not a timing fiction — the rows are queryable afterwards.
func TestSQLiteBenchDataActuallyPersists(t *testing.T) {
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception, DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(android.AppSpec{Package: "com.persist"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SQLiteRowBench().Run(p); err != nil {
		t.Fatal(err)
	}
	// The database file lives in the CVM and contains the rows.
	size, err := p.Stat(app.Info.DataDir + "/bench.db")
	if err != nil || size == 0 {
		t.Fatalf("bench.db size = %d, %v", size, err)
	}
}

// TestInteractiveSession: the "real application" claim — a full mixed
// session is within a few percent of native.
func TestInteractiveSession(t *testing.T) {
	c, err := Compare(InteractiveSession())
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Slowdown(); s > 1.06 {
		t.Errorf("session slowdown = %.4f, want minimal (paper: 'on real applications, the impact is minimal')", s)
	}
	if c.Anception.Simulated <= c.Native.Simulated {
		t.Error("Anception cannot be faster on a session with redirected I/O")
	}
}

// TestLaunchLatency: cold launch pays proxy enrollment plus a handful of
// redirected calls; the overhead must stay in the low milliseconds.
func TestLaunchLatency(t *testing.T) {
	nat, err := MeasureLaunch(anception.ModeNative)
	if err != nil {
		t.Fatal(err)
	}
	anc, err := MeasureLaunch(anception.ModeAnception)
	if err != nil {
		t.Fatal(err)
	}
	if anc.Latency <= nat.Latency {
		t.Fatalf("anception launch %v should exceed native %v", anc.Latency, nat.Latency)
	}
	if overhead := anc.Latency - nat.Latency; overhead > 5*time.Millisecond {
		t.Fatalf("launch overhead = %v, want < 5ms", overhead)
	}
}

// TestDeterminism guards the reproducibility promise: identical runs on
// fresh devices produce bit-identical simulated times — no wall-clock or
// map-iteration leakage anywhere in the stack.
func TestDeterminism(t *testing.T) {
	for _, w := range []Workload{AnTuTuDatabaseIO(), AnTuTu2D(), SQLiteRowBench(), InteractiveSession()} {
		a, err := MeasureOn(anception.ModeAnception, w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MeasureOn(anception.ModeAnception, w)
		if err != nil {
			t.Fatal(err)
		}
		if a.Simulated != b.Simulated || a.Ops != b.Ops {
			t.Errorf("%s: runs differ: %v/%d vs %v/%d", w.Name, a.Simulated, a.Ops, b.Simulated, b.Ops)
		}
	}
}
