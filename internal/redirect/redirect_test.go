package redirect

import (
	"testing"

	"anception/internal/abi"
)

// TestTableTotals pins the Section V-D aggregate: 324 syscalls analyzed,
// 229 redirected, 66 host, 21 split, 7 blocked, 1 reserved slot.
func TestTableTotals(t *testing.T) {
	s := TableStats()
	if s.Total != 324 {
		t.Fatalf("total = %d, want 324", s.Total)
	}
	if s.Redirect != 229 || s.Host != 66 || s.Split != 21 || s.Blocked != 7 || s.Unused != 1 {
		t.Fatalf("counts = %+v", s)
	}
}

func TestTablePercentagesMatchPaper(t *testing.T) {
	s := TableStats()
	cases := []struct {
		class Class
		want  float64
	}{
		{ClassRedirect, 70.7},
		{ClassHost, 20.4},
		{ClassSplit, 6.5},
		// 7/324 = 2.16%; the paper prints 2.1 (truncation), we round.
		{ClassBlocked, 2.2},
	}
	for _, c := range cases {
		if got := s.Percent(c.class); got != c.want {
			t.Errorf("Percent(%v) = %.1f, want %.1f", c.class, got, c.want)
		}
	}
}

// TestClassesDisjointAndTotal verifies the DESIGN.md invariant: the
// classification is total over the table and the classes are disjoint
// (disjointness is enforced at construction; a duplicate panics).
func TestClassesDisjointAndTotal(t *testing.T) {
	names := TableNames()
	if len(names) != 324 {
		t.Fatalf("names = %d", len(names))
	}
	for _, n := range names {
		if _, ok := ClassOfName(n); !ok {
			t.Errorf("name %q unclassified", n)
		}
	}
}

func TestClassifyImplementedCalls(t *testing.T) {
	cases := map[abi.SyscallNr]Class{
		abi.SysOpen:         ClassRedirect,
		abi.SysRead:         ClassRedirect,
		abi.SysWrite:        ClassRedirect,
		abi.SysIoctl:        ClassRedirect,
		abi.SysSocket:       ClassRedirect,
		abi.SysSendfile:     ClassRedirect,
		abi.SysGetpid:       ClassHost,
		abi.SysKill:         ClassHost,
		abi.SysNanosleep:    ClassHost,
		abi.SysMunmap:       ClassHost,
		abi.SysMprotect:     ClassHost,
		abi.SysFork:         ClassSplit,
		abi.SysExecve:       ClassSplit,
		abi.SysMmap2:        ClassSplit,
		abi.SysBrk:          ClassSplit,
		abi.SysSetuid:       ClassSplit,
		abi.SysChdir:        ClassSplit,
		abi.SysUmask:        ClassSplit,
		abi.SysExit:         ClassSplit,
		abi.SysPtrace:       ClassBlocked,
		abi.SysInitModule:   ClassBlocked,
		abi.SysDeleteModule: ClassBlocked,
		abi.SysReboot:       ClassBlocked,
	}
	for nr, want := range cases {
		if got := Classify(nr); got != want {
			t.Errorf("Classify(%v) = %v, want %v", nr, got, want)
		}
	}
}

func TestClassifyUnknownDefaultsToRedirect(t *testing.T) {
	if got := Classify(abi.SyscallNr(9999)); got != ClassRedirect {
		t.Fatalf("unknown syscall class = %v, want redirect", got)
	}
}

func TestDecideOpenPath(t *testing.T) {
	cases := map[string]Route{
		"/system/bin/vold":             RouteHost,
		"/system/lib/libc.so":          RouteHost,
		"/dev/binder":                  RouteHost,
		"/proc/self/exe":               RouteHost,
		"/proc/42/exe":                 RouteGuest,
		"/proc/net/netlink":            RouteGuest,
		"/proc/42/mem":                 RouteGuest,
		"/data/data/com.bank/secret":   RouteGuest,
		"/dev/graphics/fb0":            RouteGuest,
		"/sdcard/dcim/1.jpg":           RouteGuest,
		"/systemish/not-the-partition": RouteGuest,
	}
	for path, want := range cases {
		if got := DecideOpenPath(path); got != want {
			t.Errorf("DecideOpenPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestEngineDecideIoctl(t *testing.T) {
	e := NewEngine()
	if d := e.DecideIoctl(false, true); d.Route != RouteHost {
		t.Fatalf("UI ioctl: %v", d)
	}
	if d := e.DecideIoctl(true, false); d.Route != RouteGuest {
		t.Fatalf("remote-fd ioctl: %v", d)
	}
	if d := e.DecideIoctl(false, false); d.Route != RouteHost {
		t.Fatalf("local-fd ioctl: %v", d)
	}
}

func TestEngineDecideFD(t *testing.T) {
	e := NewEngine()
	if d := e.DecideFD(true); d.Route != RouteGuest {
		t.Fatalf("remote fd: %v", d)
	}
	if d := e.DecideFD(false); d.Route != RouteHost {
		t.Fatalf("local fd: %v", d)
	}
}

func TestEngineDecideStatic(t *testing.T) {
	e := NewEngine()
	cases := map[abi.SyscallNr]Route{
		abi.SysGetpid: RouteHost,
		abi.SysFork:   RouteSplit,
		abi.SysPtrace: RouteBlocked,
		abi.SysSocket: RouteGuest,
	}
	for nr, want := range cases {
		if got := e.DecideStatic(nr).Route; got != want {
			t.Errorf("DecideStatic(%v) = %v, want %v", nr, got, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if ClassRedirect.String() != "redirect" || ClassBlocked.String() != "blocked" {
		t.Fatal("class names")
	}
	if RouteGuest.String() != "guest" || RouteSplit.String() != "split" {
		t.Fatal("route names")
	}
	if Class(0).String() != "?" || Route(0).String() != "?" {
		t.Fatal("zero values")
	}
}

// TestEveryImplementedSyscallIsClassified ensures no implemented call
// falls through to the unknown-name default by accident.
func TestEveryImplementedSyscallIsClassified(t *testing.T) {
	implemented := []abi.SyscallNr{
		abi.SysExit, abi.SysFork, abi.SysRead, abi.SysWrite, abi.SysOpen,
		abi.SysClose, abi.SysCreat, abi.SysLink, abi.SysUnlink, abi.SysExecve,
		abi.SysChdir, abi.SysMknod, abi.SysChmod, abi.SysLseek, abi.SysGetpid,
		abi.SysMount, abi.SysSetuid, abi.SysGetuid, abi.SysPtrace, abi.SysPause,
		abi.SysAccess, abi.SysSync, abi.SysKill, abi.SysRename, abi.SysMkdir,
		abi.SysRmdir, abi.SysDup, abi.SysPipe, abi.SysBrk, abi.SysSetgid,
		abi.SysGetgid, abi.SysGeteuid, abi.SysGetegid, abi.SysIoctl,
		abi.SysFcntl, abi.SysUmask, abi.SysDup2, abi.SysGetppid,
		abi.SysSigaction, abi.SysSymlink, abi.SysReadlink, abi.SysReboot,
		abi.SysMunmap, abi.SysTruncate, abi.SysFtruncate, abi.SysFchmod,
		abi.SysFchown, abi.SysStatfs, abi.SysStat, abi.SysFstat, abi.SysWait4,
		abi.SysSysinfo, abi.SysFsync, abi.SysClone, abi.SysUname,
		abi.SysMprotect, abi.SysInitModule, abi.SysDeleteModule, abi.SysFchdir,
		abi.SysGetdents, abi.SysMsync, abi.SysNanosleep, abi.SysMremap,
		abi.SysSetresuid, abi.SysPoll, abi.SysPread64, abi.SysPwrite64,
		abi.SysChown, abi.SysGetcwd, abi.SysSendfile, abi.SysVfork,
		abi.SysMmap2, abi.SysGettid, abi.SysFutex, abi.SysExitGroup,
		abi.SysClockGettime, abi.SysTgkill, abi.SysSocket, abi.SysBind,
		abi.SysConnect, abi.SysListen, abi.SysAccept, abi.SysGetsockname,
		abi.SysGetpeername, abi.SysSocketpair, abi.SysSend, abi.SysSendto,
		abi.SysRecv, abi.SysRecvfrom, abi.SysShutdownSk, abi.SysSetsockopt,
		abi.SysGetsockopt, abi.SysOpenat, abi.SysMkdirat,
	}
	for _, nr := range implemented {
		if _, ok := ClassOfName(nr.String()); !ok {
			t.Errorf("implemented syscall %v (%q) missing from the 324-entry table", nr, nr.String())
		}
	}
}
