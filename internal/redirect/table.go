package redirect

// This file is the reproduction of the paper's Section V-D artifact: the
// classification of 324 Linux (ARM, 3.4-era) system calls by the
// redirection logic. The paper publishes only the aggregate shares —
// 70.7% redirected, 20.4% host, 6.5% split (both kernels), 2.1% blocked —
// so the per-call assignment below is reconstructed from the rules the
// paper states (file/network/IPC redirect; process control, signals and
// memory stay on the host; fork/exec/mmap/credential changes split;
// module/shutdown/ptrace blocked). The counts are pinned by tests:
// 229 + 66 + 21 + 7 + 1 reserved slot = 324.

var redirectCalls = []string{
	// File I/O core.
	"open", "openat", "close", "creat", "read", "write", "readv", "writev",
	"pread64", "pwrite64", "preadv", "pwritev", "lseek", "_llseek",
	"truncate", "truncate64", "ftruncate", "ftruncate64",
	"stat", "stat64", "lstat", "lstat64", "fstat", "fstat64", "fstatat64",
	"access", "faccessat", "chmod", "fchmod", "fchmodat",
	"chown", "chown32", "lchown", "lchown32", "fchown", "fchown32", "fchownat",
	"utime", "utimes", "futimesat", "utimensat",

	// Directories, links, namespaces.
	"mkdir", "mkdirat", "rmdir", "unlink", "unlinkat", "rename", "renameat",
	"link", "linkat", "symlink", "symlinkat", "readlink", "readlinkat",
	"getdents", "getdents64", "readdir", "chroot", "pivot_root",
	"mknod", "mknodat",

	// Descriptor management and file sync.
	"dup", "dup2", "dup3", "pipe", "pipe2", "fcntl", "fcntl64", "flock",
	"fsync", "fdatasync", "sync", "syncfs", "sync_file_range",
	"fadvise64", "fadvise64_64", "readahead", "ioctl",

	// Polling and event interfaces.
	"poll", "ppoll", "select", "_newselect", "pselect6",
	"epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait", "epoll_pwait",
	"eventfd", "eventfd2",

	// inotify.
	"inotify_init", "inotify_init1", "inotify_add_watch", "inotify_rm_watch",

	// Extended attributes.
	"setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
	"fgetxattr", "listxattr", "llistxattr", "flistxattr",
	"removexattr", "lremovexattr", "fremovexattr",

	// Zero-copy and splice family.
	"sendfile", "sendfile64", "splice", "tee", "vmsplice",

	// Filesystem statistics and quotas.
	"statfs", "statfs64", "fstatfs", "fstatfs64", "ustat", "quotactl",

	// Mounts.
	"mount", "umount", "umount2", "nfsservctl",

	// Sockets.
	"socket", "bind", "connect", "listen", "accept", "accept4",
	"getsockname", "getpeername", "socketpair",
	"send", "sendto", "sendmsg", "sendmmsg",
	"recv", "recvfrom", "recvmsg", "recvmmsg",
	"shutdown", "setsockopt", "getsockopt", "socketcall",

	// System V IPC.
	"semget", "semop", "semctl", "semtimedop",
	"msgget", "msgsnd", "msgrcv", "msgctl",
	"shmget", "shmat", "shmdt", "shmctl", "ipc",

	// POSIX message queues.
	"mq_open", "mq_unlink", "mq_timedsend", "mq_timedreceive",
	"mq_notify", "mq_getsetattr",

	// Kernel keyring.
	"add_key", "request_key", "keyctl",

	// Timers and timer fds (delivered through the proxy).
	"timer_create", "timer_settime", "timer_gettime", "timer_getoverrun",
	"timer_delete", "timerfd_create", "timerfd_settime", "timerfd_gettime",
	"clock_settime", "alarm", "getitimer", "setitimer",

	// System identity, logging, accounting.
	"uname", "sysinfo", "syslog", "sysfs",
	"bdflush", "uselib", "acct", "sethostname", "setdomainname",

	// Resource limits and capabilities (serviced against the proxy).
	"getrusage", "getrlimit", "ugetrlimit", "setrlimit", "prlimit64",
	"capget", "capset", "prctl",

	// Process-adjacent grey zone the design delegates.
	"nice", "ioprio_set", "ioprio_get", "getgroups", "getgroups32",
	"setgroups", "setgroups32", "setfsuid", "setfsuid32", "setfsgid",
	"setfsgid32",
	"lookup_dcookie", "remap_file_pages", "mbind", "get_mempolicy",
	"set_mempolicy", "move_pages", "migrate_pages", "mincore",
	"process_vm_readv", "process_vm_writev", "name_to_handle_at",
	"open_by_handle_at", "clock_adjtime", "adjtimex", "settimeofday",
	"stime",
	"fanotify_init", "fanotify_mark", "set_robust_list", "getcpu",
	"signalfd", "signalfd4", "fallocate", "fchdir", "getcwd",
}

var hostCalls = []string{
	// Identity reads.
	"getpid", "getppid", "gettid",
	"getuid", "geteuid", "getgid", "getegid",
	"getuid32", "geteuid32", "getgid32", "getegid32",
	"getresuid", "getresgid", "getresuid32", "getresgid32",
	"getpgid", "getpgrp", "getsid", "setpgid", "setsid",

	// Virtual memory management (principle 3: pages stay on the host).
	"munmap", "mprotect", "madvise", "mlock", "munlock",
	"mlockall", "munlockall",

	// Time and sleeping.
	"pause", "nanosleep", "gettimeofday", "time", "times",
	"clock_gettime", "clock_getres", "clock_nanosleep",

	// Signals.
	"sigaction", "sigprocmask", "sigpending", "sigsuspend", "sigreturn",
	"rt_sigaction", "rt_sigprocmask", "rt_sigpending", "rt_sigsuspend",
	"rt_sigreturn", "rt_sigqueueinfo", "rt_sigtimedwait", "sigaltstack",
	"kill", "tkill", "tgkill",

	// Scheduling.
	"sched_yield", "sched_setscheduler", "sched_getscheduler",
	"sched_setparam", "sched_getparam", "sched_setaffinity",
	"sched_getaffinity", "getpriority", "setpriority",

	// Child reaping.
	"wait4", "waitpid", "waitid",

	// Fast userspace synchronization (operates on host-resident pages).
	"futex", "set_tid_address", "perf_event_open",
}

var splitCalls = []string{
	// Process creation/teardown: the proxy must mirror the lifecycle
	// (Section III-D Fork/Clone and exec).
	"fork", "vfork", "clone", "execve", "exit", "exit_group",

	// Memory mapping: pages live on the host, file backing in the CVM.
	"mmap", "mmap2", "mremap", "msync", "brk",

	// Credential and cwd changes must be mirrored so the CVM's
	// permission checks match the host's.
	"setuid", "setgid", "setuid32", "setgid32",
	"setresuid", "setresgid", "setreuid", "setregid",
	"chdir", "umask",
}

var blockedCalls = []string{
	// Outright malicious from an app; denied to save the round trip
	// (Section III-D System Management).
	"ptrace", "init_module", "delete_module", "reboot",
	"kexec_load", "swapon", "swapoff",
}

var unusedCalls = []string{
	// The table retains one reserved slot (the old `break` entry).
	"reserved",
}

var classByName = buildTable()

func buildTable() map[string]Class {
	m := make(map[string]Class, 324)
	add := func(names []string, c Class) {
		for _, n := range names {
			if _, dup := m[n]; dup {
				panic("redirect: duplicate syscall in table: " + n)
			}
			m[n] = c
		}
	}
	add(redirectCalls, ClassRedirect)
	add(hostCalls, ClassHost)
	add(splitCalls, ClassSplit)
	add(blockedCalls, ClassBlocked)
	add(unusedCalls, ClassUnused)
	return m
}
