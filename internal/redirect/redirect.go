// Package redirect implements Anception's redirection logic (Section
// III-D): the classification of the full 324-entry system-call table into
// redirected, host-only, split, and blocked classes, and the per-call
// routing decisions the interceptor applies, including the path rules for
// open and the UI test for ioctl.
package redirect

import (
	"math"
	"strings"

	"anception/internal/abi"
)

// Class is the static classification of a system call (Section V-D).
type Class int

// Syscall classes.
const (
	// ClassRedirect calls are serviced by the CVM proxy (70.7%: file,
	// network, IPC).
	ClassRedirect Class = iota + 1
	// ClassHost calls always execute on the host (20.4%: process
	// control, signals, memory, scheduling).
	ClassHost
	// ClassSplit calls execute partly on both kernels (6.5%: fork,
	// exec, mmap, credential changes — the proxy must mirror them).
	ClassSplit
	// ClassBlocked calls are denied to apps outright (2.1%: module
	// loading, shutdown, ptrace).
	ClassBlocked
	// ClassUnused marks reserved/obsolete table slots.
	ClassUnused
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassRedirect:
		return "redirect"
	case ClassHost:
		return "host"
	case ClassSplit:
		return "split"
	case ClassBlocked:
		return "blocked"
	case ClassUnused:
		return "unused"
	default:
		return "?"
	}
}

// Route is the dynamic decision for one specific invocation.
type Route int

// Routes.
const (
	RouteHost Route = iota + 1
	RouteGuest
	RouteSplit
	RouteBlocked
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RouteHost:
		return "host"
	case RouteGuest:
		return "guest"
	case RouteSplit:
		return "split"
	case RouteBlocked:
		return "blocked"
	default:
		return "?"
	}
}

// Classify returns the static class of a syscall by its conventional name
// (which abi.SyscallNr.String provides for implemented calls). Unknown
// names classify as redirect, the design's default posture: run as little
// as possible on the host.
func Classify(nr abi.SyscallNr) Class {
	if c, ok := classByName[nr.String()]; ok {
		return c
	}
	return ClassRedirect
}

// ClassOfName returns the class for a syscall name from the full table.
func ClassOfName(name string) (Class, bool) {
	c, ok := classByName[name]
	return c, ok
}

// DecideOpenPath routes an open() by pathname (Section III-D File I/O):
//
//   - /system/... is the read-only code partition kept on the host
//     (principle 1); reads of system binaries and libraries run there.
//   - /dev/binder is the UI/IPC channel and stays on the host.
//   - /proc/self/exe refers to the calling app's own code, which lives
//     on the host; other processes' /proc entries describe whatever
//     kernel services the call (the CVM's, under redirection).
//   - everything else — app data directories, general /proc state,
//     other device nodes — is redirected to the CVM.
func DecideOpenPath(path string) Route {
	switch {
	case path == "/dev/binder":
		return RouteHost
	case strings.HasPrefix(path, "/system/") || path == "/system":
		return RouteHost
	case isProcExe(path):
		return RouteHost
	default:
		return RouteGuest
	}
}

func isProcExe(path string) bool {
	return path == "/proc/self/exe"
}

// Decision is the routing outcome for one call plus the reason, for traces
// and tests.
type Decision struct {
	Route  Route
	Reason string
}

// Engine makes per-invocation routing decisions. It is stateless; the
// interceptor supplies the dynamic facts (fd locality, UI transaction).
type Engine struct{}

// NewEngine returns a routing engine.
func NewEngine() *Engine { return &Engine{} }

// DecideOpen routes an open by path.
func (e *Engine) DecideOpen(path string) Decision {
	r := DecideOpenPath(path)
	reason := "app data and general state live in the CVM"
	if r == RouteHost {
		reason = "read-only code / UI channel stays on the host"
	}
	return Decision{Route: r, Reason: reason}
}

// DecideIoctl routes an ioctl: UI transactions pass through to the host
// (principle 2); everything else follows the fd.
func (e *Engine) DecideIoctl(fdIsRemote, uiTransaction bool) Decision {
	if uiTransaction {
		return Decision{Route: RouteHost, Reason: "UI/Input transactions are serviced on the host"}
	}
	if fdIsRemote {
		return Decision{Route: RouteGuest, Reason: "descriptor lives in the CVM proxy"}
	}
	return Decision{Route: RouteHost, Reason: "host-local descriptor"}
}

// DecideFD routes a descriptor-based call by where the descriptor lives.
func (e *Engine) DecideFD(fdIsRemote bool) Decision {
	if fdIsRemote {
		return Decision{Route: RouteGuest, Reason: "descriptor lives in the CVM proxy"}
	}
	return Decision{Route: RouteHost, Reason: "host-local descriptor"}
}

// DecideStatic routes by the static class alone (path- and fd-independent
// calls).
func (e *Engine) DecideStatic(nr abi.SyscallNr) Decision {
	switch Classify(nr) {
	case ClassHost:
		return Decision{Route: RouteHost, Reason: "host-class call"}
	case ClassSplit:
		return Decision{Route: RouteSplit, Reason: "split-class call"}
	case ClassBlocked:
		return Decision{Route: RouteBlocked, Reason: "dangerous whole-system call"}
	default:
		return Decision{Route: RouteGuest, Reason: "redirect-class call"}
	}
}

// Stats summarizes the static table for the Section V-D experiment.
type Stats struct {
	Total    int
	Redirect int
	Host     int
	Split    int
	Blocked  int
	Unused   int
}

// Percent returns a class share in percent rounded to one decimal. The
// paper reports 70.7 / 20.4 / 6.5 / 2.1; with counts 229/66/21/7 of 324
// the first three match under rounding and the last differs by the
// rounding direction only (7/324 = 2.16%).
func (s Stats) Percent(c Class) float64 {
	var n int
	switch c {
	case ClassRedirect:
		n = s.Redirect
	case ClassHost:
		n = s.Host
	case ClassSplit:
		n = s.Split
	case ClassBlocked:
		n = s.Blocked
	case ClassUnused:
		n = s.Unused
	}
	return math.Round(float64(n)/float64(s.Total)*1000) / 10
}

// TableStats counts the classification table.
func TableStats() Stats {
	var s Stats
	for _, c := range classByName {
		s.Total++
		switch c {
		case ClassRedirect:
			s.Redirect++
		case ClassHost:
			s.Host++
		case ClassSplit:
			s.Split++
		case ClassBlocked:
			s.Blocked++
		case ClassUnused:
			s.Unused++
		}
	}
	return s
}

// TableNames returns all classified syscall names (for inventory tests).
func TableNames() []string {
	out := make([]string, 0, len(classByName))
	for name := range classByName {
		out = append(out, name)
	}
	return out
}
