package marshal

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/sim"
)

func newRingForTest(t *testing.T, depth int) (*RingChannel, *hypervisor.CVM, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	phys := kernel.NewPhysical(256 << 20)
	cvm, err := hypervisor.Launch(phys, hypervisor.Config{
		Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewRingChannel(cvm, clock, model, nil, depth, 0), cvm, clock
}

// drainOne pops the next submission and completes it through its handler,
// standing in for one proxy-pool worker step.
func drainOne(t *testing.T, r *RingChannel) {
	t.Helper()
	s, ok := r.NextSubmission()
	if !ok {
		t.Fatal("submission queue closed unexpectedly")
	}
	if r.FailFastIfUnservable(s) {
		return
	}
	r.Complete(s, s.Handler()(s.Payload()))
}

func TestRingSubmitCompleteRoundTrip(t *testing.T) {
	r, _, _ := newRingForTest(t, 8)
	const n = 4
	echo := func(req []byte) []byte { return append([]byte("re:"), req...) }

	pendings := make([]*Pending, n)
	for i := 0; i < n; i++ {
		p, err := r.Submit([]byte(fmt.Sprintf("req-%d", i)), int64(i), echo)
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	for i := 0; i < n; i++ {
		drainOne(t, r)
	}
	for i, p := range pendings {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if want := fmt.Sprintf("re:req-%d", i); string(resp) != want {
			t.Fatalf("slot %d: resp %q, want %q", i, resp, want)
		}
	}

	st := r.RingStats()
	if st.Submitted != n || st.Completed != n || st.Failed != 0 {
		t.Fatalf("stats = %+v, want %d submitted/completed", st, n)
	}
	// One doorbell woke the poller for all four entries; with fewer than
	// RingReapBatch completions posted, the poller is still awake and no
	// reap hypercall has been paid.
	if st.Doorbells != 1 || st.Coalesced != n-1 || st.Reaps != 0 {
		t.Fatalf("doorbells=%d coalesced=%d reaps=%d, want 1/%d/0", st.Doorbells, st.Coalesced, st.Reaps, n-1)
	}
	if st.MaxInFlight != n {
		t.Fatalf("max in flight %d, want %d", st.MaxInFlight, n)
	}

	// Four more round-trips complete the RingReapBatch: the poller reaps
	// once and goes back to sleep, still without a second doorbell.
	for i := 0; i < RingReapBatch-n; i++ {
		p, err := r.Submit([]byte("more"), int64(i), echo)
		if err != nil {
			t.Fatal(err)
		}
		drainOne(t, r)
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st = r.RingStats()
	if st.Doorbells != 1 || st.Reaps != 1 {
		t.Fatalf("after %d total ops: doorbells=%d reaps=%d, want 1/1", RingReapBatch, st.Doorbells, st.Reaps)
	}
}

func TestRingBackpressureWhenFull(t *testing.T) {
	r, _, _ := newRingForTest(t, 2)
	echo := func(req []byte) []byte { return req }
	p1, err := r.Submit([]byte("a"), 1, echo)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Submit([]byte("b"), 2, echo)
	if err != nil {
		t.Fatal(err)
	}

	// The ring is full: a third Submit must block until a slot recycles.
	unblocked := make(chan *Pending)
	go func() {
		p, err := r.Submit([]byte("c"), 3, echo)
		if err != nil {
			t.Error(err)
		}
		unblocked <- p
	}()
	select {
	case <-unblocked:
		t.Fatal("Submit returned with every slot in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// Complete + Wait slot 1: its recycle lets the blocked Submit through.
	drainOne(t, r)
	if _, err := p1.Wait(); err != nil {
		t.Fatal(err)
	}
	var p3 *Pending
	select {
	case p3 = <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Submit still blocked after a slot was recycled")
	}
	// Drain the rest so nothing leaks.
	drainOne(t, r)
	drainOne(t, r)
	for _, p := range []*Pending{p2, p3} {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRingRearmFailsStaleSlots(t *testing.T) {
	r, cvm, _ := newRingForTest(t, 4)
	executed := false
	p, err := r.Submit([]byte("old-boot"), 1, func(req []byte) []byte {
		executed = true
		return req
	})
	if err != nil {
		t.Fatal(err)
	}

	// A restart re-keys the ring before the pool reaches the slot.
	r.Rearm(cvm.Generation() + 1)
	drainOne(t, r)

	_, werr := p.Wait()
	if !errors.Is(werr, abi.EHOSTDOWN) {
		t.Fatalf("stale slot completed with %v, want EHOSTDOWN", werr)
	}
	if executed {
		t.Fatal("stale slot's handler ran after re-arm")
	}
	st := r.RingStats()
	if st.Failed != 1 || st.Completed != 0 || st.Rearms != 1 {
		t.Fatalf("stats = %+v, want failed=1 completed=0 rearms=1", st)
	}

	// The recycled slot serves the new generation normally.
	p2, err := r.Submit([]byte("new-boot"), 1, func(req []byte) []byte { return req })
	if err != nil {
		t.Fatal(err)
	}
	drainOne(t, r)
	if resp, err := p2.Wait(); err != nil || string(resp) != "new-boot" {
		t.Fatalf("post-rearm slot: resp=%q err=%v", resp, err)
	}
}

// TestRingDoorbellCoalescingAcrossBursts pins the poller wake/sleep
// protocol: one doorbell covers every submission while the poller is
// awake, an idle gap past RingPollIdle puts it to sleep (the next burst
// pays a fresh doorbell), and a full RingReapBatch of completions costs
// exactly one reap hypercall. All decisions are sim-time based, so the
// counts are exact on any machine.
func TestRingDoorbellCoalescingAcrossBursts(t *testing.T) {
	r, _, clock := newRingForTest(t, 8)
	echo := func(req []byte) []byte { return req }

	burst := func(n int) {
		t.Helper()
		ps := make([]*Pending, n)
		for i := range ps {
			p, err := r.Submit([]byte("x"), int64(i), echo)
			if err != nil {
				t.Fatal(err)
			}
			ps[i] = p
		}
		for range ps {
			drainOne(t, r)
		}
		for _, p := range ps {
			if _, err := p.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}

	burst(3)
	if st := r.RingStats(); st.Doorbells != 1 || st.Reaps != 0 || st.Coalesced != 2 {
		t.Fatalf("after burst 1: %+v, want doorbells=1 reaps=0 coalesced=2", st)
	}

	// The ring idles past the poll window: the poller sleeps, and the next
	// burst must ring the doorbell again.
	clock.Advance(RingPollIdle + time.Millisecond)
	burst(5)
	if st := r.RingStats(); st.Doorbells != 2 || st.Reaps != 0 || st.Coalesced != 6 {
		t.Fatalf("after burst 2: %+v, want doorbells=2 reaps=0 coalesced=6", st)
	}

	// Three more completions close out the RingReapBatch since the second
	// doorbell: one reap hypercall, no new doorbell.
	burst(3)
	if st := r.RingStats(); st.Doorbells != 2 || st.Reaps != 1 || st.Coalesced != 9 {
		t.Fatalf("after burst 3: %+v, want doorbells=2 reaps=1 coalesced=9", st)
	}
}

// TestRingChargesPerDoorbellNotPerCall pins the cost model: a burst of N
// calls through the ring pays 2 world switches total (doorbell + reap),
// where the synchronous channel pays 2 per call.
func TestRingChargesPerDoorbellNotPerCall(t *testing.T) {
	const n = 8
	r, cvm, _ := newRingForTest(t, n)
	echo := func(req []byte) []byte { return req }

	in0, out0 := cvm.WorldSwitches()
	ps := make([]*Pending, n)
	for i := range ps {
		p, err := r.Submit([]byte("payload"), 7, echo)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	for range ps {
		drainOne(t, r)
	}
	for _, p := range ps {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	in1, out1 := cvm.WorldSwitches()
	if switches := (in1 - in0) + (out1 - out0); switches != 2 {
		t.Fatalf("ring burst of %d cost %d world switches, want 2 (1 doorbell + 1 reap)", n, switches)
	}
}

func TestRingGuestDownFailsFast(t *testing.T) {
	r, _, _ := newRingForTest(t, 4)
	alive := true
	r.SetLiveness(func() bool { return alive })

	// Submit-side: a dead guest is refused without consuming a slot.
	alive = false
	if _, err := r.Submit([]byte("x"), 1, func(b []byte) []byte { return b }); !errors.Is(err, abi.EHOSTDOWN) {
		t.Fatalf("submit against dead guest: %v, want EHOSTDOWN", err)
	}

	// Worker-side: a slot caught in flight when the guest dies completes
	// with EHOSTDOWN instead of executing against the dead kernel.
	alive = true
	p, err := r.Submit([]byte("x"), 1, func(b []byte) []byte { return b })
	if err != nil {
		t.Fatal(err)
	}
	alive = false
	drainOne(t, r)
	if _, werr := p.Wait(); !errors.Is(werr, abi.EHOSTDOWN) {
		t.Fatalf("in-flight slot completed with %v, want EHOSTDOWN", werr)
	}
}
