package marshal

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// The network fast path ships socket operations over the same async ring
// as redirected file I/O and binder traffic (DESIGN.md §14). A socket op
// uses a compact fixed-layout frame instead of the general TLV blob: the
// hot ops (a 128-byte echo send, a recv header, an accept4 batch request)
// must fit the ring's inline window so they skip the chunked channel
// copy entirely, and a fixed layout keeps the header at 29 bytes where
// the TLV form spends ~9 bytes per populated field.
//
// Layout (little-endian):
//
//	magic u8 | nr u32 | fd u32 | fd2 u32 | flags u32 | size u32 |
//	addrLen u32 + addr | payload (rest)
//
// fd2 carries the target descriptor for epoll_ctl; flags carries the
// epoll op / shutdown how / accept batch limit; size carries the recv
// length, epoll maxevents, or accept4 backlog max; addr is the peer
// address for connect/sendto. The payload is the send body (or empty for
// read-style ops, whose bytes come home in the result's Data).

// sockOpMagic is the first byte of a socket-op frame. It sits next to
// grantCallMagic/binderCallMagic, far outside the TLV tag range, so a
// plain EncodeArgs payload can never alias it.
const sockOpMagic uint8 = 0xA9

// EncodeSockOp packs a socket operation into the fixed ring frame.
func EncodeSockOp(a *kernel.Args) []byte {
	var w writer
	w.u8(sockOpMagic)
	w.u32(int64(a.Nr))
	w.u32(int64(a.FD))
	w.u32(int64(a.FD2))
	w.u32(int64(a.Flags))
	w.u32(int64(a.Size))
	w.u32(int64(len(a.Addr)))
	w.buf = append(w.buf, a.Addr...)
	w.buf = append(w.buf, a.Buf...)
	return w.buf
}

// IsSockOp reports whether a channel payload is a socket-op frame.
func IsSockOp(b []byte) bool {
	return len(b) > 0 && b[0] == sockOpMagic
}

// DecodeSockOp reverses EncodeSockOp.
func DecodeSockOp(b []byte) (*kernel.Args, error) {
	if !IsSockOp(b) {
		return nil, fmt.Errorf("marshal: not a socket op: %w", abi.EINVAL)
	}
	r := &reader{buf: b, pos: 1}
	a := &kernel.Args{}
	a.Nr = abi.SyscallNr(int32(uint32(r.u32())))
	a.FD = int(int32(uint32(r.u32())))
	a.FD2 = int(int32(uint32(r.u32())))
	a.Flags = abi.OpenFlag(uint32(r.u32()))
	a.Size = int(int32(uint32(r.u32())))
	addrLen := r.u32()
	if r.err != nil {
		return nil, errTruncated
	}
	if addrLen < 0 || r.pos+addrLen > len(b) {
		return nil, errTruncated
	}
	a.Addr = string(b[r.pos : r.pos+addrLen])
	r.pos += addrLen
	if r.pos < len(b) {
		a.Buf = make([]byte, len(b)-r.pos)
		copy(a.Buf, b[r.pos:])
	}
	return a, nil
}
