package marshal

import (
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

func TestChainRoundTrip(t *testing.T) {
	in := []ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/app/lib.so", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 4096}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	}
	frame := EncodeChain(in)
	if !IsChainCall(frame) {
		t.Fatal("encoded chain not recognized as chain call")
	}
	if IsSockOp(frame) || IsGrantCall(frame) || IsBinderCall(frame) {
		t.Fatal("chain frame aliases another frame type")
	}
	out, err := DecodeChain(frame)
	if err != nil {
		t.Fatalf("DecodeChain: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d links, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].FDFrom != in[i].FDFrom || out[i].UseCursor != in[i].UseCursor {
			t.Fatalf("link %d bindings: got (%d,%v) want (%d,%v)",
				i, out[i].FDFrom, out[i].UseCursor, in[i].FDFrom, in[i].UseCursor)
		}
		if out[i].Args.Nr != in[i].Args.Nr || out[i].Args.Path != in[i].Args.Path ||
			out[i].Args.Size != in[i].Args.Size || out[i].Args.Flags != in[i].Args.Flags {
			t.Fatalf("link %d args mismatch: %+v vs %+v", i, out[i].Args, in[i].Args)
		}
	}
}

func TestChainInlineEligible(t *testing.T) {
	// The canonical hot chain must fit the SQE inline descriptor area;
	// that is what keeps a fused submission off the chunked copy path.
	frame := EncodeChain([]ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/data/app/files/state.db", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 4096}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	if len(frame) > RingInlineBytes {
		t.Fatalf("open→fstat→read→close frame is %dB, over the %dB inline bound", len(frame), RingInlineBytes)
	}
}

func TestDecodeChainRejectsBadInput(t *testing.T) {
	valid := EncodeChain([]ChainLink{
		{Args: &kernel.Args{Nr: abi.SysFstat, FD: 3}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	})
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"wrong magic", []byte{0xA9, 1, 0, 0, 0}},
		{"magic only", []byte{chainCallMagic}},
		{"zero links", []byte{chainCallMagic, 0, 0, 0, 0}},
		{"over cap", []byte{chainCallMagic, MaxChainLinks + 1, 0, 0, 0}},
		{"truncated body", valid[:len(valid)-3]},
		{"trailing bytes", append(append([]byte{}, valid...), 0xEE)},
		{"fd from self", EncodeChain([]ChainLink{{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0}})},
		{"fd from later link", EncodeChain([]ChainLink{
			{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 1},
			{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: -1},
		})},
		{"unknown flag", []byte{chainCallMagic, 1, 0, 0, 0, 0x80, 2, 0, 0, 0, 0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeChain(tc.frame); err == nil {
				t.Fatalf("DecodeChain accepted %q", tc.name)
			}
		})
	}
}

func TestChainResultRoundTrip(t *testing.T) {
	in := ChainResult{
		Executed: 2,
		Results: []kernel.Result{
			{Ret: 3, FD: 3},
			{Ret: -1, Err: abi.ENOENT},
			{Ret: -1, Err: abi.ENOENT}, // short-circuited link carries the errno
		},
	}
	out, err := DecodeChainResult(EncodeChainResult(in))
	if err != nil {
		t.Fatalf("DecodeChainResult: %v", err)
	}
	if out.Executed != in.Executed || len(out.Results) != len(in.Results) {
		t.Fatalf("header mismatch: %+v", out)
	}
	if out.Results[0].Ret != 3 || out.Results[0].FD != 3 {
		t.Fatalf("result 0 mismatch: %+v", out.Results[0])
	}
	for i := 1; i < 3; i++ {
		var errno abi.Errno
		if !errors.As(out.Results[i].Err, &errno) || errno != abi.ENOENT {
			t.Fatalf("result %d errno lost: %v", i, out.Results[i].Err)
		}
	}
}

func TestDecodeChainResultRejectsBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0, 0, 0, 0, 0, 0, 0},                  // zero links
		{1, 0, 0, 0, 2, 0, 0, 0},                  // executed > links
		{MaxChainLinks + 1, 0, 0, 0, 0, 0, 0, 0},  // over cap
		{1, 0, 0, 0, 1, 0, 0, 0},                  // truncated body
		append(EncodeChainResult(ChainResult{Executed: 1, Results: []kernel.Result{{Ret: 0}}}), 0x01),
	}
	for i, frame := range cases {
		if _, err := DecodeChainResult(frame); err == nil {
			t.Fatalf("case %d: bad chain result accepted", i)
		}
	}
}
