package marshal

import (
	"fmt"

	"anception/internal/abi"
)

// The zero-copy data path replaces inline chunked payloads with a
// scatter-gather descriptor: a fixed-size header naming granted extents
// (hypervisor.GrantTable slots) that the guest resolves back to pinned
// host pages. The descriptor is tiny and size-independent, so a bulk
// call's channel cost stops scaling with its payload.

// grantCallMagic is the first byte of a grant-call frame. TLV tags start
// at 1 and stay small; the magic sits far outside that range so a plain
// EncodeArgs payload can never alias a grant call.
const grantCallMagic uint8 = 0xA7

// sgMaxEntries bounds a descriptor's entry count; it is more than any
// vectored call the kernel accepts and keeps a hostile length field from
// forcing a huge allocation during decode.
const sgMaxEntries = 1024

// SGEntry references one granted extent: the grant slot, the boot
// generation it was issued against, and the byte window within the
// grant. Gen is what makes restarts safe — a stale entry fails
// EHOSTDOWN at resolve time instead of touching reused pages.
type SGEntry struct {
	ID  uint32
	Gen uint32
	Off uint32
	Len uint32
}

// SGDescriptor is the scatter-gather list of one zero-copy call.
// Writable marks read-style calls: the guest fills the extents instead
// of consuming them, and the reply carries only the return count.
type SGDescriptor struct {
	Writable bool
	Entries  []SGEntry
}

// TotalLen sums the entry windows.
func (d *SGDescriptor) TotalLen() int {
	n := 0
	for _, e := range d.Entries {
		n += int(e.Len)
	}
	return n
}

// EncodeSG flattens a descriptor.
func EncodeSG(d *SGDescriptor) []byte {
	var w writer
	if d.Writable {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(int64(len(d.Entries)))
	for _, e := range d.Entries {
		w.u32(int64(e.ID))
		w.u32(int64(e.Gen))
		w.u32(int64(e.Off))
		w.u32(int64(e.Len))
	}
	return w.buf
}

// DecodeSG reverses EncodeSG. The entry count is validated against both
// the sgMaxEntries cap and the bytes actually present, so truncated or
// hostile input fails cleanly instead of allocating.
func DecodeSG(b []byte) (*SGDescriptor, error) {
	r := &reader{buf: b}
	wr := r.u8()
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if wr > 1 {
		return nil, fmt.Errorf("marshal: bad sg writable flag %d: %w", wr, abi.EINVAL)
	}
	if n < 0 || n > sgMaxEntries || len(b)-r.pos < n*16 {
		return nil, fmt.Errorf("marshal: bad sg entry count %d: %w", n, abi.EINVAL)
	}
	d := &SGDescriptor{Writable: wr == 1, Entries: make([]SGEntry, n)}
	for i := 0; i < n; i++ {
		d.Entries[i] = SGEntry{
			ID:  uint32(r.u32()),
			Gen: uint32(r.u32()),
			Off: uint32(r.u32()),
			Len: uint32(r.u32()),
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("marshal: %d trailing bytes after sg descriptor: %w", len(b)-r.pos, abi.EINVAL)
	}
	return d, nil
}

// EncodeGrantCall frames a zero-copy call: the magic byte, the
// length-prefixed descriptor, then the EncodeArgs blob of the call with
// its bulk payload stripped (the extents travel by reference).
func EncodeGrantCall(d *SGDescriptor, argsPayload []byte) []byte {
	sg := EncodeSG(d)
	var w writer
	w.u8(grantCallMagic)
	w.u32(int64(len(sg)))
	w.buf = append(w.buf, sg...)
	w.buf = append(w.buf, argsPayload...)
	return w.buf
}

// IsGrantCall reports whether a channel payload is a grant-call frame.
func IsGrantCall(b []byte) bool {
	return len(b) > 0 && b[0] == grantCallMagic
}

// DecodeGrantCall splits a grant-call frame back into its descriptor and
// args payload.
func DecodeGrantCall(b []byte) (*SGDescriptor, []byte, error) {
	if !IsGrantCall(b) {
		return nil, nil, fmt.Errorf("marshal: not a grant call: %w", abi.EINVAL)
	}
	r := &reader{buf: b, pos: 1}
	n := r.u32()
	if r.err != nil || n < 0 || r.pos+n > len(b) {
		return nil, nil, errTruncated
	}
	d, err := DecodeSG(b[r.pos : r.pos+n])
	if err != nil {
		return nil, nil, err
	}
	return d, b[r.pos+n:], nil
}
