package marshal

import (
	"bytes"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

func TestSGRoundTrip(t *testing.T) {
	in := &SGDescriptor{
		Writable: true,
		Entries: []SGEntry{
			{ID: 1, Gen: 1, Off: 0, Len: 4096},
			{ID: 9, Gen: 3, Off: 512, Len: 65536},
		},
	}
	out, err := DecodeSG(EncodeSG(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Writable != in.Writable || len(out.Entries) != len(in.Entries) {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out.Entries[i], in.Entries[i])
		}
	}
	if got, want := out.TotalLen(), 4096+65536; got != want {
		t.Fatalf("TotalLen = %d, want %d", got, want)
	}
}

func TestSGEmptyDescriptor(t *testing.T) {
	out, err := DecodeSG(EncodeSG(&SGDescriptor{}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Writable || len(out.Entries) != 0 || out.TotalLen() != 0 {
		t.Fatalf("empty descriptor decoded as %+v", out)
	}
}

func TestDecodeSGRejectsHostileInput(t *testing.T) {
	valid := EncodeSG(&SGDescriptor{Entries: []SGEntry{{ID: 1, Gen: 1, Len: 8}}})
	cases := map[string][]byte{
		"empty":            {},
		"bad flag":         append([]byte{7}, valid[1:]...),
		"truncated entry":  valid[:len(valid)-3],
		"trailing bytes":   append(append([]byte{}, valid...), 0xCC),
		"count over cap":   {0, 2, 0xFF, 0xFF, 0xFF, 0x7F},
		"count past bytes": {0, 2, 5, 0, 0, 0},
	}
	for name, b := range cases {
		if _, err := DecodeSG(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestGrantCallFrameRoundTrip(t *testing.T) {
	desc := &SGDescriptor{Writable: true, Entries: []SGEntry{{ID: 2, Gen: 1, Len: 16384}}}
	args := EncodeArgs(&kernel.Args{Nr: abi.SysPread64, FD: 5, Size: 16384, Off: 4096})
	frame := EncodeGrantCall(desc, args)

	if !IsGrantCall(frame) {
		t.Fatal("frame not recognized as grant call")
	}
	if IsGrantCall(args) {
		t.Fatal("plain args payload misread as grant call")
	}

	gotDesc, gotArgs, err := DecodeGrantCall(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !gotDesc.Writable || len(gotDesc.Entries) != 1 || gotDesc.Entries[0] != desc.Entries[0] {
		t.Fatalf("descriptor: %+v", gotDesc)
	}
	if !bytes.Equal(gotArgs, args) {
		t.Fatal("args payload corrupted by framing")
	}
	decoded, err := DecodeArgs(gotArgs)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Nr != abi.SysPread64 || decoded.FD != 5 || decoded.Size != 16384 {
		t.Fatalf("args: %+v", decoded)
	}
}

func TestDecodeGrantCallRejectsTruncation(t *testing.T) {
	frame := EncodeGrantCall(&SGDescriptor{Entries: []SGEntry{{ID: 1, Gen: 1, Len: 4}}}, nil)
	for cut := 1; cut < len(frame); cut++ {
		if _, _, err := DecodeGrantCall(frame[:cut]); err == nil {
			t.Fatalf("frame truncated to %d bytes decoded without error", cut)
		}
	}
	if _, _, err := DecodeGrantCall([]byte("not a grant")); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("non-grant payload: %v", err)
	}
}

// FuzzDecodeSG: the grant-call decoders face bytes a compromised
// container chose; nothing they are handed may panic or over-allocate.
func FuzzDecodeSG(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSG(&SGDescriptor{Writable: true, Entries: []SGEntry{{ID: 1, Gen: 1, Off: 0, Len: 4096}}}))
	f.Add(EncodeGrantCall(
		&SGDescriptor{Entries: []SGEntry{{ID: 3, Gen: 2, Len: 512}}},
		EncodeArgs(&kernel.Args{Nr: abi.SysPwrite64, FD: 3, Size: 512}),
	))
	f.Add([]byte{grantCallMagic})
	f.Add([]byte{grantCallMagic, 2, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{0, 2, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := DecodeSG(data); err == nil && d == nil {
			t.Fatal("nil descriptor without error")
		}
		if IsGrantCall(data) {
			d, rest, err := DecodeGrantCall(data)
			if err == nil {
				if d == nil {
					t.Fatal("nil descriptor without error")
				}
				_, _ = DecodeArgs(rest)
			}
		}
	})
}
