package marshal

import (
	"errors"
	"fmt"
	"time"

	"anception/internal/abi"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// GuestHandler executes a request in the guest and returns the response
// bytes. It runs logically "inside" the CVM between the two world switches.
type GuestHandler func(req []byte) []byte

// Transport moves one request to the guest and its response back, charging
// simulated time. Implementations differ only in cost structure.
type Transport interface {
	// RoundTrip delivers payload to the guest, runs handler there, and
	// returns the response.
	RoundTrip(payload []byte, handler GuestHandler) ([]byte, error)
	// Name identifies the transport in ablation reports.
	Name() string
}

// ErrHang signals that a round-trip would never complete in real time: the
// request was lost, the hypercall path is wedged, or the guest stopped
// responding. The Anception layer converts it into an ETIMEDOUT at the
// call's deadline instead of blocking the app forever.
var ErrHang = errors.New("marshal: data-channel round-trip hung")

// LivenessSetter is implemented by transports that can check guest
// liveness before signaling it. The probe returns false when the guest
// kernel is down (panicked); the transport then fails fast with an
// EHOSTDOWN-style error instead of running the handler against a dead
// kernel.
type LivenessSetter interface {
	SetLiveness(probe func() bool)
}

// errGuestDown builds the distinct "container dead" transport error so the
// layer can tell a dead container from a slow one.
func errGuestDown(transport string) error {
	return fmt.Errorf("%s: guest kernel down: %w", transport, abi.EHOSTDOWN)
}

// ChunkSize is the fixed transfer unit of the data channel (footnote 7).
// It is a variable, not a constant, only in PageChannel's config so the
// chunk-size ablation (A2) can sweep it.
const DefaultChunkSize = abi.PageSize

// PageChannel is the shipped transport: marshaled data is copied into
// guest kernel pages that were remapped into host kernel space at launch,
// then the guest is signaled by interrupt injection; the guest replies via
// hypercall (Section IV-1).
type PageChannel struct {
	cvm       *hypervisor.CVM
	clock     *sim.Clock
	model     sim.LatencyModel
	chunkSize int
	liveness  func() bool
}

var _ Transport = (*PageChannel)(nil)

// NewPageChannel builds the remapped-page transport. chunkSize <= 0 uses
// the default 4096-byte chunking.
func NewPageChannel(cvm *hypervisor.CVM, clock *sim.Clock, model sim.LatencyModel, chunkSize int) *PageChannel {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &PageChannel{cvm: cvm, clock: clock, model: model, chunkSize: chunkSize}
}

// Name implements Transport.
func (p *PageChannel) Name() string { return "remapped-pages" }

// SetLiveness implements LivenessSetter. Must be called before the channel
// is shared across goroutines (it is wired once at layer construction).
func (p *PageChannel) SetLiveness(probe func() bool) { p.liveness = probe }

// ChunkSize returns the configured transfer unit.
func (p *PageChannel) ChunkSize() int { return p.chunkSize }

// chargeChunks models copying data through the fixed-size channel slots.
func (p *PageChannel) chargeChunks(n int, perByte time.Duration) {
	if n == 0 {
		p.clock.Advance(p.model.ChunkOverhead)
		return
	}
	chunks := (n + p.chunkSize - 1) / p.chunkSize
	p.clock.Advance(time.Duration(chunks)*p.model.ChunkOverhead + time.Duration(n)*perByte)
}

// RoundTrip implements Transport. The payload bytes really do traverse the
// guest-owned channel frames, so anything the host sends is visible to
// (and only to) the container — the property the encfs extension's tests
// rely on.
func (p *PageChannel) RoundTrip(payload []byte, handler GuestHandler) ([]byte, error) {
	// Liveness first: a panicked guest must not be signaled, and the
	// handler must not run against its dead kernel. The distinct errno
	// lets the layer tell "container dead" from "container slow".
	if p.liveness != nil && !p.liveness() {
		return nil, errGuestDown("page channel")
	}
	pages := p.cvm.ChannelPagesRO()
	if len(pages) == 0 {
		return nil, abi.ENXIO
	}
	// Outbound: copy into remapped guest pages, chunk by chunk.
	p.chargeChunks(len(payload), p.model.CopyToGuestPerByte)
	if err := p.copyThroughChannel(pages, payload); err != nil {
		return nil, err
	}
	// Signal the guest and run the call there.
	p.cvm.InjectInterrupt()
	resp := handler(payload)
	// Inbound: the guest posts the response through the same pages and
	// hypercalls back.
	p.chargeChunks(len(resp), p.model.CopyFromGuestPerByte)
	if err := p.copyThroughChannel(pages, resp); err != nil {
		return nil, err
	}
	p.cvm.Hypercall()
	return resp, nil
}

// copyThroughChannel writes data into the channel frames (ring-style) so
// the bytes genuinely exist in guest-visible memory.
func (p *PageChannel) copyThroughChannel(pages []kernel.FrameID, data []byte) error {
	slot := 0
	for off := 0; off < len(data); off += abi.PageSize {
		end := off + abi.PageSize
		if end > len(data) {
			end = len(data)
		}
		// The host kernel may write these frames because they were
		// remapped into its address space at launch; physically they are
		// guest frames, which is the point.
		if err := p.cvm.WriteChannelFrame(pages[slot], data[off:end]); err != nil {
			return err
		}
		slot = (slot + 1) % len(pages)
	}
	return nil
}

// LastChannelBytes returns the current contents of the first channel
// frame; tests use it to observe what the container could see.
func (p *PageChannel) LastChannelBytes(n int) ([]byte, error) {
	pages := p.cvm.ChannelPages()
	if len(pages) == 0 {
		return nil, abi.ENXIO
	}
	buf := make([]byte, n)
	if err := p.cvm.ReadChannelFrame(pages[0], buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SocketChannel is the discarded prototype transport (Section IV-1): a
// socket/virtio-style path with extra data copies and per-message fixed
// cost. Functionally identical; only the cost model differs.
type SocketChannel struct {
	cvm      *hypervisor.CVM
	clock    *sim.Clock
	model    sim.LatencyModel
	liveness func() bool
}

var _ Transport = (*SocketChannel)(nil)

// NewSocketChannel builds the ablation transport.
func NewSocketChannel(cvm *hypervisor.CVM, clock *sim.Clock, model sim.LatencyModel) *SocketChannel {
	return &SocketChannel{cvm: cvm, clock: clock, model: model}
}

// Name implements Transport.
func (s *SocketChannel) Name() string { return "socket" }

// SetLiveness implements LivenessSetter.
func (s *SocketChannel) SetLiveness(probe func() bool) { s.liveness = probe }

// RoundTrip implements Transport.
func (s *SocketChannel) RoundTrip(payload []byte, handler GuestHandler) ([]byte, error) {
	if s.liveness != nil && !s.liveness() {
		return nil, errGuestDown("socket channel")
	}
	s.clock.Advance(s.model.SocketChannelFixed + time.Duration(len(payload))*s.model.SocketChannelPerByte)
	s.cvm.InjectInterrupt()
	resp := handler(payload)
	s.clock.Advance(s.model.SocketChannelFixed + time.Duration(len(resp))*s.model.SocketChannelPerByte)
	s.cvm.Hypercall()
	return resp, nil
}
