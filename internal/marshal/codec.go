// Package marshal implements the host<->CVM data channel of the Anception
// layer: encoding of system-call arguments and results (including the
// pointer translation the paper describes — user-space buffers referenced
// by pointer arguments are copied into the message), fixed-size chunking,
// and the two transports the authors prototyped: remapped guest kernel
// pages (the shipped design) and a socket-style channel (discarded for its
// extra copies; kept here as ablation A5).
package marshal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

// field tags of the TLV wire format.
const (
	tagNr uint8 = iota + 1
	tagPath
	tagPath2
	tagFD
	tagFD2
	tagFlags
	tagMode
	tagBuf
	tagSize
	tagOff
	tagWhence
	tagRequest
	tagAddr
	tagFamily
	tagSockType
	tagProto
	tagSig
	tagTargetPID
	tagUID
	tagGID
	tagVaddr
	tagPages
	tagProt
	tagTag
	tagArgv

	tagRet
	tagData
	tagResFD
	tagErrno
	tagErrText

	// Vectored I/O segments. Write-style vectors (writev/pwritev) inline
	// each segment's bytes under tagIov; read-style vectors
	// (readv/preadv) ship only the segment lengths under tagIovSpan —
	// the guest allocates scratch of that shape and the filled bytes
	// come back in the result's tagData.
	tagIov
	tagIovSpan
)

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)  { w.buf = append(w.buf, v) }
func (w *writer) u32(v int64) { w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v)) }
func (w *writer) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *writer) field64(tag uint8, v uint64) {
	if v == 0 {
		return
	}
	w.u8(tag)
	w.u64(v)
}

func (w *writer) fieldBytes(tag uint8, b []byte) {
	if len(b) == 0 {
		return
	}
	w.u8(tag)
	w.u32(int64(len(b)))
	w.buf = append(w.buf, b...)
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) more() bool { return r.err == nil && r.pos < len(r.buf) }

func (r *reader) u8() uint8 {
	if r.pos+1 > len(r.buf) {
		r.err = errTruncated
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *reader) u32() int {
	if r.pos+4 > len(r.buf) {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return int(v)
}

func (r *reader) u64() uint64 {
	if r.pos+8 > len(r.buf) {
		r.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || r.pos+n > len(r.buf) {
		r.err = errTruncated
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.pos:])
	r.pos += n
	return out
}

var errTruncated = fmt.Errorf("marshal: truncated message: %w", abi.EINVAL)

// EncodeArgs flattens a syscall's arguments, performing the pointer
// translation step: the Buf payload (a user-space pointer on real
// hardware) is copied inline so the guest needs no access to host memory.
func EncodeArgs(a *kernel.Args) []byte {
	var w writer
	w.u8(tagNr)
	w.u64(uint64(a.Nr))
	w.fieldBytes(tagPath, []byte(a.Path))
	w.fieldBytes(tagPath2, []byte(a.Path2))
	w.field64(tagFD, uint64(int64(a.FD)))
	w.field64(tagFD2, uint64(int64(a.FD2)))
	w.field64(tagFlags, uint64(a.Flags))
	w.field64(tagMode, uint64(a.Mode))
	w.fieldBytes(tagBuf, a.Buf)
	w.field64(tagSize, uint64(int64(a.Size)))
	w.field64(tagOff, uint64(a.Off))
	w.field64(tagWhence, uint64(int64(a.Whence)))
	w.field64(tagRequest, uint64(a.Request))
	w.fieldBytes(tagAddr, []byte(a.Addr))
	w.field64(tagFamily, uint64(int64(a.Family)))
	w.field64(tagSockType, uint64(int64(a.SockType)))
	w.field64(tagProto, uint64(int64(a.Proto)))
	w.field64(tagSig, uint64(int64(a.Sig)))
	w.field64(tagTargetPID, uint64(int64(a.TargetPID)))
	w.field64(tagUID, uint64(int64(a.UID)))
	w.field64(tagGID, uint64(int64(a.GID)))
	w.field64(tagVaddr, a.Vaddr)
	w.field64(tagPages, uint64(int64(a.Pages)))
	w.field64(tagProt, uint64(int64(a.Prot)))
	w.fieldBytes(tagTag, []byte(a.Tag))
	for _, s := range a.Argv {
		w.fieldBytes(tagArgv, []byte(s))
	}
	readStyle := a.Nr == abi.SysReadv || a.Nr == abi.SysPreadv
	for _, seg := range a.Iov {
		if readStyle {
			w.u8(tagIovSpan)
			w.u64(uint64(len(seg)))
		} else {
			w.fieldBytes(tagIov, seg)
		}
	}
	return w.buf
}

// DecodeArgs reverses EncodeArgs.
func DecodeArgs(b []byte) (*kernel.Args, error) {
	a := &kernel.Args{}
	r := &reader{buf: b}
	for r.more() {
		switch tag := r.u8(); tag {
		case tagNr:
			a.Nr = abi.SyscallNr(r.u64())
		case tagPath:
			a.Path = string(r.bytes())
		case tagPath2:
			a.Path2 = string(r.bytes())
		case tagFD:
			a.FD = int(int64(r.u64()))
		case tagFD2:
			a.FD2 = int(int64(r.u64()))
		case tagFlags:
			a.Flags = abi.OpenFlag(r.u64())
		case tagMode:
			a.Mode = abi.FileMode(r.u64())
		case tagBuf:
			a.Buf = r.bytes()
		case tagSize:
			a.Size = int(int64(r.u64()))
		case tagOff:
			a.Off = int64(r.u64())
		case tagWhence:
			a.Whence = int(int64(r.u64()))
		case tagRequest:
			a.Request = uint32(r.u64())
		case tagAddr:
			a.Addr = string(r.bytes())
		case tagFamily:
			a.Family = netstack.Family(r.u64())
		case tagSockType:
			a.SockType = netstack.SockType(r.u64())
		case tagProto:
			a.Proto = int(int64(r.u64()))
		case tagSig:
			a.Sig = int(int64(r.u64()))
		case tagTargetPID:
			a.TargetPID = int(int64(r.u64()))
		case tagUID:
			a.UID = int(int64(r.u64()))
		case tagGID:
			a.GID = int(int64(r.u64()))
		case tagVaddr:
			a.Vaddr = r.u64()
		case tagPages:
			a.Pages = int(int64(r.u64()))
		case tagProt:
			a.Prot = int(int64(r.u64()))
		case tagTag:
			a.Tag = string(r.bytes())
		case tagArgv:
			a.Argv = append(a.Argv, string(r.bytes()))
		case tagIov:
			a.Iov = append(a.Iov, r.bytes())
		case tagIovSpan:
			// Scratch allocation is bounded so a hostile span cannot
			// force a giant allocation during decode (16 MiB is far
			// beyond any vector the kernel accepts).
			n := int(r.u64())
			if r.err == nil && (n < 0 || n > 1<<24) {
				return nil, fmt.Errorf("marshal: bad iov span %d: %w", n, abi.EINVAL)
			}
			if r.err == nil {
				a.Iov = append(a.Iov, make([]byte, n))
			}
		default:
			return nil, fmt.Errorf("marshal: unknown args tag %d: %w", tag, abi.EINVAL)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return a, nil
}

// EncodeArgsBatch frames several calls into one channel payload so a
// coalesced-write flush (or any multi-call exchange) costs a single
// round-trip: a count followed by each call's EncodeArgs blob,
// length-prefixed.
func EncodeArgsBatch(calls []*kernel.Args) []byte {
	var w writer
	w.u32(int64(len(calls)))
	for _, a := range calls {
		blob := EncodeArgs(a)
		w.u32(int64(len(blob)))
		w.buf = append(w.buf, blob...)
	}
	return w.buf
}

// DecodeArgsBatch reverses EncodeArgsBatch.
func DecodeArgsBatch(b []byte) ([]*kernel.Args, error) {
	r := &reader{buf: b}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	calls := make([]*kernel.Args, 0, n)
	for i := 0; i < n; i++ {
		blob := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		a, err := DecodeArgs(blob)
		if err != nil {
			return nil, err
		}
		calls = append(calls, a)
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("marshal: %d trailing bytes after args batch: %w", len(b)-r.pos, abi.EINVAL)
	}
	return calls, nil
}

// EncodeResultBatch frames the per-call results of a batched exchange.
func EncodeResultBatch(results []kernel.Result) []byte {
	var w writer
	w.u32(int64(len(results)))
	for _, res := range results {
		blob := EncodeResult(res)
		w.u32(int64(len(blob)))
		w.buf = append(w.buf, blob...)
	}
	return w.buf
}

// DecodeResultBatch reverses EncodeResultBatch.
func DecodeResultBatch(b []byte) ([]kernel.Result, error) {
	r := &reader{buf: b}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	results := make([]kernel.Result, 0, n)
	for i := 0; i < n; i++ {
		blob := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		res, err := DecodeResult(blob)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("marshal: %d trailing bytes after result batch: %w", len(b)-r.pos, abi.EINVAL)
	}
	return results, nil
}

// EncodeResult flattens a syscall result for the return trip.
func EncodeResult(res kernel.Result) []byte {
	var w writer
	w.u8(tagRet)
	w.u64(uint64(res.Ret))
	w.fieldBytes(tagData, res.Data)
	w.field64(tagResFD, uint64(int64(res.FD)))
	if res.Err != nil {
		var errno abi.Errno
		if errors.As(res.Err, &errno) {
			w.u8(tagErrno)
			w.u64(uint64(int64(errno)))
		} else {
			w.fieldBytes(tagErrText, []byte(res.Err.Error()))
		}
	}
	return w.buf
}

// DecodeResult reverses EncodeResult. Errno errors survive the trip
// matchably (errors.Is); other errors degrade to EIO with text.
func DecodeResult(b []byte) (kernel.Result, error) {
	var res kernel.Result
	r := &reader{buf: b}
	for r.more() {
		switch tag := r.u8(); tag {
		case tagRet:
			res.Ret = int64(r.u64())
		case tagData:
			res.Data = r.bytes()
		case tagResFD:
			res.FD = int(int64(r.u64()))
		case tagErrno:
			res.Err = abi.Errno(int64(r.u64()))
		case tagErrText:
			res.Err = fmt.Errorf("%s: %w", r.bytes(), abi.EIO)
		default:
			return kernel.Result{}, fmt.Errorf("marshal: unknown result tag %d: %w", tag, abi.EINVAL)
		}
	}
	if r.err != nil {
		return kernel.Result{}, r.err
	}
	return res, nil
}
