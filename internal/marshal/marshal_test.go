package marshal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"anception/internal/abi"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
)

func TestArgsRoundTripFull(t *testing.T) {
	in := &kernel.Args{
		Nr: abi.SysSendfile, Path: "/data/a", Path2: "/data/b",
		FD: 3, FD2: 4, Flags: abi.ORdWr | abi.OCreat, Mode: 0o644,
		Buf: []byte("payload bytes"), Size: 4096, Off: 1234, Whence: abi.SeekEnd,
		Request: 0xC0306201, Addr: "bank.com:443",
		Family: netstack.AFInet, SockType: netstack.SockStream, Proto: 6,
		Sig: 9, TargetPID: 77, UID: 10001, GID: 10001,
		Vaddr: 0x40000000, Pages: 2, Prot: 7, Tag: "shellcode",
		Argv: []string{"sh", "-c", "id"},
	}
	out, err := DecodeArgs(EncodeArgs(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestArgsRoundTripSparse(t *testing.T) {
	in := &kernel.Args{Nr: abi.SysGetpid}
	out, err := DecodeArgs(EncodeArgs(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("sparse round trip: %+v vs %+v", in, out)
	}
}

func TestArgsRoundTripProperty(t *testing.T) {
	f := func(path string, fd uint8, buf []byte, off int64, vaddr uint64) bool {
		in := &kernel.Args{Nr: abi.SysPwrite64, Path: path, FD: int(fd), Buf: buf, Off: off, Vaddr: vaddr}
		out, err := DecodeArgs(EncodeArgs(in))
		if err != nil {
			return false
		}
		// Empty Buf encodes as absent and decodes as nil; normalize.
		if len(in.Buf) == 0 {
			in.Buf = nil
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResultRoundTripSuccess(t *testing.T) {
	in := kernel.Result{Ret: 42, Data: []byte("reply"), FD: 5}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret != 42 || string(out.Data) != "reply" || out.FD != 5 || out.Err != nil {
		t.Fatalf("out = %+v", out)
	}
}

func TestResultRoundTripErrnoMatchable(t *testing.T) {
	in := kernel.Result{Ret: -1, Err: abi.EACCES}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Err, abi.EACCES) {
		t.Fatalf("errno did not survive: %v", out.Err)
	}
}

func TestResultRoundTripForeignError(t *testing.T) {
	in := kernel.Result{Ret: -1, Err: errors.New("weird driver failure")}
	out, err := DecodeResult(EncodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out.Err, abi.EIO) {
		t.Fatalf("foreign error should degrade to EIO: %v", out.Err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeArgs([]byte{0xEE, 1, 2}); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("args garbage: %v", err)
	}
	if _, err := DecodeResult([]byte{0xEE}); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("result garbage: %v", err)
	}
	// Truncated length prefix.
	if _, err := DecodeArgs([]byte{2, 0xFF, 0xFF, 0xFF}); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("args truncated: %v", err)
	}
}

func newChannelForTest(t *testing.T) (*PageChannel, *sim.Clock, sim.LatencyModel) {
	t.Helper()
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	phys := kernel.NewPhysical(256 << 20)
	cvm, err := hypervisor.Launch(phys, hypervisor.Config{
		Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewPageChannel(cvm, clock, model, 0), clock, model
}

func TestPageChannelRoundTripDeliversBytes(t *testing.T) {
	ch, _, _ := newChannelForTest(t)
	var got []byte
	resp, err := ch.RoundTrip([]byte("forwarded syscall"), func(req []byte) []byte {
		got = append([]byte(nil), req...)
		return []byte("result")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "forwarded syscall" || string(resp) != "result" {
		t.Fatalf("got %q resp %q", got, resp)
	}
}

func TestPageChannelBytesVisibleInGuestFrames(t *testing.T) {
	ch, _, _ := newChannelForTest(t)
	payload := []byte("the container can see this")
	if _, err := ch.RoundTrip(payload, func(req []byte) []byte { return req[:8] }); err != nil {
		t.Fatal(err)
	}
	// After the round trip, the first channel frame holds the response
	// (written last); verify the channel is real guest-visible memory.
	head, err := ch.LastChannelBytes(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, payload[:8]) {
		t.Fatalf("channel frame head = %q, want %q", head, payload[:8])
	}
}

func TestPageChannelCostModel(t *testing.T) {
	ch, clock, model := newChannelForTest(t)
	payload := make([]byte, 2*abi.PageSize) // 2 chunks out
	before := clock.Now()
	if _, err := ch.RoundTrip(payload, func([]byte) []byte { return make([]byte, 100) }); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - before
	want := 2*model.ChunkOverhead + 2*abi.PageSize*model.CopyToGuestPerByte + // out
		model.WorldSwitch + // interrupt injection
		1*model.ChunkOverhead + 100*model.CopyFromGuestPerByte + // back
		model.WorldSwitch // hypercall
	if elapsed != want {
		t.Fatalf("round trip cost %v, want %v", elapsed, want)
	}
}

func TestSocketChannelCostsMoreForBulkData(t *testing.T) {
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	phys := kernel.NewPhysical(256 << 20)
	cvm, err := hypervisor.Launch(phys, hypervisor.Config{
		Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	pageCh := NewPageChannel(cvm, clock, model, 0)
	sockCh := NewSocketChannel(cvm, clock, model)

	payload := make([]byte, 16*abi.PageSize)
	handler := func([]byte) []byte { return []byte("ok") }

	t0 := clock.Now()
	if _, err := pageCh.RoundTrip(payload, handler); err != nil {
		t.Fatal(err)
	}
	pageCost := clock.Now() - t0

	t1 := clock.Now()
	if _, err := sockCh.RoundTrip(payload, handler); err != nil {
		t.Fatal(err)
	}
	sockCost := clock.Now() - t1

	if sockCost <= pageCost {
		t.Fatalf("socket transport (%v) should exceed remapped pages (%v) — the reason the prototype was discarded", sockCost, pageCost)
	}
}

func TestChunkSizeAffectsOverhead(t *testing.T) {
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	phys := kernel.NewPhysical(256 << 20)
	cvm, err := hypervisor.Launch(phys, hypervisor.Config{
		Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	small := NewPageChannel(cvm, clock, model, 1024)
	large := NewPageChannel(cvm, clock, model, 16384)
	payload := make([]byte, 64<<10)
	handler := func([]byte) []byte { return nil }

	t0 := clock.Now()
	if _, err := small.RoundTrip(payload, handler); err != nil {
		t.Fatal(err)
	}
	smallCost := clock.Now() - t0
	t1 := clock.Now()
	if _, err := large.RoundTrip(payload, handler); err != nil {
		t.Fatal(err)
	}
	largeCost := clock.Now() - t1
	if smallCost <= largeCost {
		t.Fatalf("1KB chunks (%v) should cost more than 16KB chunks (%v)", smallCost, largeCost)
	}
	if small.ChunkSize() != 1024 || large.ChunkSize() != 16384 {
		t.Fatal("chunk size not retained")
	}
}

func TestTransportNames(t *testing.T) {
	ch, _, _ := newChannelForTest(t)
	if ch.Name() != "remapped-pages" {
		t.Fatalf("name = %q", ch.Name())
	}
}

// TestDecodeNeverPanicsOnRandomBytes: a compromised container controls the
// response bytes, so the host-side decoder must reject garbage gracefully,
// never panic.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := sim.NewRNG(1337)
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Bytes(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeArgs panicked on %x: %v", buf, r)
				}
			}()
			_, _ = DecodeArgs(buf)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeResult panicked on %x: %v", buf, r)
				}
			}()
			_, _ = DecodeResult(buf)
		}()
	}
}

// TestDecodeTruncatedValidMessages: every prefix of a valid encoding either
// decodes or errors cleanly.
func TestDecodeTruncatedValidMessages(t *testing.T) {
	full := EncodeArgs(&kernel.Args{
		Nr: abi.SysPwrite64, Path: "/data/data/app/file", FD: 7,
		Buf: make([]byte, 300), Off: 12345, Tag: "tag",
	})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeArgs(full[:n]); err != nil && !errors.Is(err, abi.EINVAL) {
			t.Fatalf("prefix %d: unexpected error class %v", n, err)
		}
	}
}
