package marshal

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anception/internal/abi"
	"anception/internal/hypervisor"
	"anception/internal/sim"
)

// AsyncTransport is the multi-slot face of the data channel: callers
// Submit many requests, each bound to one ring slot, and Wait on the
// returned Pending while other goroutines keep submitting. One injected
// interrupt (the doorbell) wakes the guest-side SQ poller, which then
// stays awake — serving every further submission without an interrupt —
// until it has posted RingReapBatch completions (one reap hypercall per
// batch) or the ring sits idle past RingPollIdle of sim time. Under load
// the per-call world-switch cost of the synchronous Transport therefore
// amortizes to 2/RingReapBatch switches per call. RoundTrip (from the
// embedded Transport) degrades to Submit+Wait, so every synchronous
// caller — Ping, the fault injector, single-threaded apps — works
// unchanged.
type AsyncTransport interface {
	Transport
	// Submit claims a free SQ slot, copies the payload into the slot's
	// channel frames, and rings the doorbell if it is not already armed.
	// It blocks while all slots are in flight (backpressure). Entries
	// sharing a key are executed in submission order (FIFO per key);
	// the layer keys file-descriptor calls by descriptor.
	Submit(payload []byte, key int64, handler GuestHandler) (*Pending, error)
	// Rearm re-keys the ring to a new CVM boot generation: slots still
	// in flight against the old container complete with EHOSTDOWN
	// instead of executing against the new one, so supervisor restarts
	// never leak (or replay) in-flight submissions.
	Rearm(generation int)
	// RingStats snapshots the ring counters.
	RingStats() RingStats
}

// RingStats counts ring activity. Doorbells versus Submitted is the
// coalescing ratio: doorbells-per-op < 1 means one interrupt carried
// more than one submission.
type RingStats struct {
	// Depth is the configured number of SQ/CQ slots.
	Depth int
	// Submitted counts slots handed to Submit.
	Submitted int
	// Completed counts slots that ran in the guest and posted a reply.
	Completed int
	// Failed counts slots completed without running (stale generation
	// after a re-arm, or guest dead at execution time).
	Failed int
	// Doorbells counts injected interrupts; Coalesced counts
	// submissions that rode an already-armed doorbell.
	Doorbells int
	Coalesced int
	// Reaps counts completion-side hypercalls (one per drained batch).
	Reaps int
	// Rearms counts boot-generation re-keys.
	Rearms int
	// MaxInFlight is the high-water mark of concurrently open slots.
	MaxInFlight int
}

// Pending slot states.
const (
	slotFree int32 = iota
	slotQueued
	slotDone
)

// Pending is one in-flight ring submission. Exactly one completer moves
// it queued->done (a CAS guards the transition), the per-slot channel
// hands the result to the single waiter, and the waiter recycles the
// slot into the free list.
type Pending struct {
	ring    *RingChannel
	idx     int
	state   atomic.Int32
	gen     int
	key     int64
	payload []byte
	handler GuestHandler
	// inline marks a grant-call or binder-call frame that fit the slot's
	// fixed descriptor area; its reply rides the CQ entry the same way.
	inline bool
	resp   []byte
	err    error
	done   chan struct{}
}

// Key returns the FIFO-ordering key the submitter chose.
func (p *Pending) Key() int64 { return p.key }

// Payload returns the submitted request bytes.
func (p *Pending) Payload() []byte { return p.payload }

// Handler returns the guest-side executor for this slot.
func (p *Pending) Handler() GuestHandler { return p.handler }

// Wait blocks until the slot completes, returns its result, and recycles
// the slot. It must be called exactly once per successful Submit.
func (p *Pending) Wait() ([]byte, error) {
	<-p.done
	resp, err := p.resp, p.err
	p.payload, p.handler, p.resp, p.err = nil, nil, nil, nil
	p.inline = false
	p.state.Store(slotFree)
	p.ring.free <- p
	return resp, err
}

// RingChannel is the asynchronous ring transport: fixed-size submission
// and completion rings living in the same remapped guest channel frames
// the PageChannel uses, drained guest-side by a proxy worker pool
// (internal/proxy.Pool). Submission copies the payload into the slot's
// frames and arms a coalesced doorbell; completion posts the reply back
// through the frames and reaps with one hypercall when the ring drains.
type RingChannel struct {
	cvm       *hypervisor.CVM
	clock     *sim.Clock
	model     sim.LatencyModel
	trace     *sim.Trace
	chunkSize int
	depth     int
	liveness  func() bool

	slots []*Pending
	// free is the slot free list; Submit blocks here when every slot is
	// in flight (ring-full backpressure).
	free chan *Pending
	// sq is the submission queue the guest-side pool drains in order.
	sq   chan *Pending
	quit chan struct{}

	gen      atomic.Int64
	inflight atomic.Int64
	maxInFly atomic.Int64

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	// bellMu guards the doorbell arm/reap handshake and its counters.
	// Arm/disarm decisions are made purely in sim time (submission gaps
	// and completion counts), never from real-time scheduling, so the
	// coalescing ratio is a property of the model, not of the machine.
	bellMu     sync.Mutex
	armed      bool
	sinceArm   int           // completions posted since the poller woke
	lastActive time.Duration // sim time of the last submit/completion
	reapBatch  int
	doorbells  int
	coalesced  int
	reaps      int
	rearms     int

	closeOnce sync.Once
	closed    atomic.Bool
}

var _ Transport = (*RingChannel)(nil)
var _ AsyncTransport = (*RingChannel)(nil)
var _ LivenessSetter = (*RingChannel)(nil)

// DefaultRingDepth is the SQ/CQ slot count when the caller passes 0.
const DefaultRingDepth = 64

// RingReapBatch is how many completions the guest SQ poller posts before
// it reaps the CQ with one hypercall and re-arms the doorbell (interrupt
// coalescing with a count threshold, as in NAPI or io_uring SQPOLL).
// Rings shallower than this reap at their depth instead.
const RingReapBatch = 8

// RingPollIdle is how long (sim time) the guest poller keeps polling an
// empty SQ after its last activity before going back to sleep; a
// submission landing inside the window needs no doorbell.
const RingPollIdle = time.Millisecond

// RingInlineBytes is the fixed descriptor area of one SQ/CQ entry (like
// an io_uring SQE). A grant-call frame that fits is published as part of
// the slot write itself — RingSlotOverhead on submit, RingCompletionPost
// on completion — instead of traversing the chunked channel: the whole
// point of a scatter-gather descriptor is that it is small enough not to
// pay per-chunk costs.
const RingInlineBytes = 160

// NewRingChannel builds the async ring over a launched CVM's channel
// frames. depth <= 0 uses DefaultRingDepth; chunkSize <= 0 uses the
// 4096-byte default.
func NewRingChannel(cvm *hypervisor.CVM, clock *sim.Clock, model sim.LatencyModel, trace *sim.Trace, depth, chunkSize int) *RingChannel {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	r := &RingChannel{
		cvm:       cvm,
		clock:     clock,
		model:     model,
		trace:     trace,
		chunkSize: chunkSize,
		depth:     depth,
		slots:     make([]*Pending, depth),
		free:      make(chan *Pending, depth),
		sq:        make(chan *Pending, depth),
		quit:      make(chan struct{}),
	}
	r.reapBatch = RingReapBatch
	if depth < r.reapBatch {
		r.reapBatch = depth
	}
	r.gen.Store(int64(cvm.Generation()))
	for i := 0; i < depth; i++ {
		s := &Pending{ring: r, idx: i, done: make(chan struct{}, 1)}
		r.slots[i] = s
		r.free <- s
	}
	return r
}

// Name implements Transport.
func (r *RingChannel) Name() string { return "async-ring" }

// Depth returns the configured slot count.
func (r *RingChannel) Depth() int { return r.depth }

// SetReapBatch overrides how many completions the guest poller posts
// before reaping the CQ with one hypercall. Descriptor-only traffic
// (zero-copy grant calls) tolerates a far lazier reap cadence than
// payload-bearing slots, so bulk configurations raise this toward the
// ring depth. n <= 0 restores the default; values above the depth clamp
// to it. Call before the ring is shared across goroutines.
func (r *RingChannel) SetReapBatch(n int) {
	if n <= 0 {
		n = RingReapBatch
	}
	if n > r.depth {
		n = r.depth
	}
	r.bellMu.Lock()
	r.reapBatch = n
	r.bellMu.Unlock()
}

// SetLiveness implements LivenessSetter. Wired once at layer
// construction, before the ring is shared across goroutines.
func (r *RingChannel) SetLiveness(probe func() bool) { r.liveness = probe }

// chargeChunks models moving n bytes through fixed-size channel chunks.
func (r *RingChannel) chargeChunks(n int, perByte time.Duration) {
	if n == 0 {
		r.clock.Advance(r.model.ChunkOverhead)
		return
	}
	chunks := (n + r.chunkSize - 1) / r.chunkSize
	r.clock.Advance(time.Duration(chunks)*r.model.ChunkOverhead + time.Duration(n)*perByte)
}

// Submit implements AsyncTransport.
func (r *RingChannel) Submit(payload []byte, key int64, handler GuestHandler) (*Pending, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("async ring closed: %w", abi.ENXIO)
	}
	// Liveness first, like the synchronous channel: a dead container is
	// reported as EHOSTDOWN without consuming a slot.
	if r.liveness != nil && !r.liveness() {
		return nil, errGuestDown("async ring")
	}
	var s *Pending
	select {
	case s = <-r.free:
	default:
		// Ring full: block until a waiter recycles a slot (backpressure).
		select {
		case s = <-r.free:
		case <-r.quit:
			return nil, fmt.Errorf("async ring closed: %w", abi.ENXIO)
		}
	}
	s.payload, s.handler, s.key = payload, handler, key
	s.gen = int(r.gen.Load())
	s.inline = (IsGrantCall(payload) || IsBinderCall(payload) || IsSockOp(payload) || IsChainCall(payload)) && len(payload) <= RingInlineBytes
	s.state.Store(slotQueued)
	r.submitted.Add(1)

	// The request bytes really traverse the slot's guest-visible frames,
	// charged per chunk like the synchronous channel — but with the slot
	// bookkeeping (RingSlotOverhead) in place of a per-call WorldSwitch.
	// A grant-call descriptor or binder-call frame small enough for the
	// slot's fixed SQE area is covered by the slot write itself and
	// skips the chunk charge.
	if !s.inline {
		r.chargeChunks(len(payload), r.model.CopyToGuestPerByte)
	}
	r.clock.Advance(r.model.RingSlotOverhead)
	if err := r.copySlotFrames(s.idx, payload); err != nil {
		// Slot never reached the SQ; recycle it directly.
		s.payload, s.handler = nil, nil
		s.state.Store(slotFree)
		r.submitted.Add(-1)
		r.free <- s
		return nil, err
	}

	n := r.inflight.Add(1)
	for {
		max := r.maxInFly.Load()
		if n <= max || r.maxInFly.CompareAndSwap(max, n) {
			break
		}
	}
	r.sq <- s // never blocks: cap(sq) == depth == total slots
	r.ringDoorbell()
	return s, nil
}

// ringDoorbell injects the guest interrupt unless the SQ poller is still
// awake: an armed doorbell covers every submission until the poller reaps
// a completion batch or idles past RingPollIdle of sim time.
func (r *RingChannel) ringDoorbell() {
	now := r.clock.Now()
	r.bellMu.Lock()
	if r.armed && now-r.lastActive > RingPollIdle {
		// The poller slept on the idle timeout; it must be woken again.
		r.armed = false
	}
	r.lastActive = now
	if r.armed {
		r.coalesced++
		r.bellMu.Unlock()
		return
	}
	r.armed = true
	r.sinceArm = 0
	r.doorbells++
	r.bellMu.Unlock()
	if r.trace != nil {
		r.trace.Record(sim.EvRing, "doorbell: SQ poller woken, interrupt injected")
	}
	r.cvm.InjectInterrupt()
}

// RoundTrip implements Transport as a one-slot submit-and-wait, so the
// ring can stand in anywhere the synchronous channel does.
func (r *RingChannel) RoundTrip(payload []byte, handler GuestHandler) ([]byte, error) {
	p, err := r.Submit(payload, 0, handler)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// NextSubmission hands the oldest queued slot to the guest-side pool; ok
// is false once the ring is closed and the SQ drained.
func (r *RingChannel) NextSubmission() (*Pending, bool) {
	select {
	case s := <-r.sq:
		return s, true
	case <-r.quit:
		// Drain what was already queued so no waiter is stranded.
		select {
		case s := <-r.sq:
			return s, true
		default:
			return nil, false
		}
	}
}

// FailFastIfUnservable completes a popped slot with EHOSTDOWN — without
// running its handler — when its boot generation is stale (submitted
// against a container that has since been restarted) or the guest is
// dead. The pool calls it before executing each slot; completing through
// the normal path (rather than dropping the slot) is what guarantees a
// restart never leaks an in-flight submission.
func (r *RingChannel) FailFastIfUnservable(s *Pending) bool {
	if s.gen < int(r.gen.Load()) {
		r.completeWith(s, nil, fmt.Errorf("async ring: slot from boot generation %d dropped at re-arm: %w", s.gen, abi.EHOSTDOWN))
		return true
	}
	if r.liveness != nil && !r.liveness() {
		r.completeWith(s, nil, errGuestDown("async ring"))
		return true
	}
	return false
}

// Complete posts one guest-side reply into the slot's CQ entry.
func (r *RingChannel) Complete(s *Pending, resp []byte) {
	r.completeWith(s, resp, nil)
}

func (r *RingChannel) completeWith(s *Pending, resp []byte, err error) {
	// Exactly-once: the CAS winner owns the result fields and the signal.
	if !s.state.CompareAndSwap(slotQueued, slotDone) {
		return
	}
	if err == nil {
		// The reply traverses the slot frames back to the host; a reply
		// that fits an inline slot's CQ descriptor area rides the
		// completion post itself.
		if !s.inline || len(resp) > RingInlineBytes {
			r.chargeChunks(len(resp), r.model.CopyFromGuestPerByte)
		}
		r.clock.Advance(r.model.RingCompletionPost)
		_ = r.copySlotFrames(s.idx, resp)
		r.completed.Add(1)
	} else {
		r.failed.Add(1)
	}
	s.resp, s.err = resp, err
	s.done <- struct{}{}
	r.reapIfDrained()
}

// reapIfDrained issues the completion-side hypercall once the poller has
// posted a full batch of completions and the ring is empty: one reap
// covers everything since the doorbell armed. Until the batch threshold
// is met the poller stays awake (no hypercall, doorbell still armed), so
// a sequential caller amortizes the world switches exactly like a
// concurrent burst does.
func (r *RingChannel) reapIfDrained() {
	n := r.inflight.Add(-1)
	now := r.clock.Now()
	r.bellMu.Lock()
	r.sinceArm++
	r.lastActive = now
	if !r.armed || r.sinceArm < r.reapBatch || n != 0 || r.inflight.Load() != 0 {
		r.bellMu.Unlock()
		return
	}
	r.armed = false
	r.reaps++
	r.bellMu.Unlock()
	if r.trace != nil {
		r.trace.Record(sim.EvRing, "reap: completion batch posted, hypercall")
	}
	r.cvm.Hypercall()
}

// Rearm implements AsyncTransport: see the interface comment.
func (r *RingChannel) Rearm(generation int) {
	r.gen.Store(int64(generation))
	r.bellMu.Lock()
	r.rearms++
	r.bellMu.Unlock()
	if r.trace != nil {
		r.trace.Record(sim.EvRing, "re-arm: ring keyed to boot generation %d; stale in-flight slots will fail fast", generation)
	}
}

// Quiesce blocks until no slot is in flight. Callers must gate new
// submissions first (the layer holds EAGAIN-fast-fail degraded mode while
// quiescing); with the gate up, the guest pool drains the SQ and every
// in-flight slot — including detached oneway waiters, which recycle their
// slot on completion — reaches Wait. Used by the live-upgrade drill to
// drain the ring gracefully instead of failing slots EHOSTDOWN.
func (r *RingChannel) Quiesce() {
	for r.inflight.Load() > 0 {
		runtime.Gosched()
	}
}

// Close shuts the submission side down; the pool drains what is queued
// and exits. Idempotent.
func (r *RingChannel) Close() {
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.quit)
	})
}

// RingStats implements AsyncTransport.
func (r *RingChannel) RingStats() RingStats {
	r.bellMu.Lock()
	doorbells, coalesced, reaps, rearms := r.doorbells, r.coalesced, r.reaps, r.rearms
	r.bellMu.Unlock()
	return RingStats{
		Depth:       r.depth,
		Submitted:   int(r.submitted.Load()),
		Completed:   int(r.completed.Load()),
		Failed:      int(r.failed.Load()),
		Doorbells:   doorbells,
		Coalesced:   coalesced,
		Reaps:       reaps,
		Rearms:      rearms,
		MaxInFlight: int(r.maxInFly.Load()),
	}
}

// copySlotFrames writes data through the slot's share of the remapped
// channel frames (slot idx anchors the frame round-robin), so submitted
// and completed bytes genuinely exist in guest-visible memory.
func (r *RingChannel) copySlotFrames(idx int, data []byte) error {
	pages := r.cvm.ChannelPagesRO()
	if len(pages) == 0 {
		return abi.ENXIO
	}
	slot := idx % len(pages)
	if len(data) == 0 {
		return nil
	}
	for off := 0; off < len(data); off += abi.PageSize {
		end := off + abi.PageSize
		if end > len(data) {
			end = len(data)
		}
		if err := r.cvm.WriteChannelFrame(pages[slot], data[off:end]); err != nil {
			return err
		}
		slot = (slot + 1) % len(pages)
	}
	return nil
}
