package marshal

import (
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// Fuzz targets: the decoders face bytes a compromised container chose.
// `go test` exercises the seed corpus; `go test -fuzz=FuzzDecodeArgs`
// explores further.

func FuzzDecodeArgs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeArgs(&kernel.Args{Nr: abi.SysWrite, FD: 3, Buf: []byte("data"), Path: "/x"}))
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{2, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := DecodeArgs(data)
		if err == nil && args == nil {
			t.Fatal("nil args without error")
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeResult(kernel.Result{Ret: 7, Data: []byte("ok"), FD: 4}))
	f.Add(EncodeResult(kernel.Result{Ret: -1, Err: abi.EACCES}))
	f.Add([]byte{0xEE, 0xEE})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResult(data)
	})
}

func FuzzDecodeSockOp(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSockOp(&kernel.Args{Nr: abi.SysSend, FD: 4, Buf: []byte("GET /")}))
	f.Add(EncodeSockOp(&kernel.Args{Nr: abi.SysConnect, FD: 3, Addr: "cvm:80"}))
	f.Add(EncodeSockOp(&kernel.Args{Nr: abi.SysRecv, FD: 4, Size: 4096}))
	f.Add(EncodeSockOp(&kernel.Args{Nr: abi.SysAccept4, FD: 3, Size: 16}))
	f.Add(EncodeSockOp(&kernel.Args{Nr: abi.SysEpollWait, FD: 5, Size: 8}))
	f.Add([]byte{0xA9})
	f.Add([]byte{0xA9, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := DecodeSockOp(data)
		if err == nil && args == nil {
			t.Fatal("nil args without error")
		}
	})
}

func FuzzDecodeChain(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeChain([]ChainLink{
		{Args: &kernel.Args{Nr: abi.SysOpen, Path: "/data/f", Flags: abi.ORdOnly}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysFstat}, FDFrom: 0},
		{Args: &kernel.Args{Nr: abi.SysPread64, Size: 4096}, FDFrom: 0, UseCursor: true},
		{Args: &kernel.Args{Nr: abi.SysClose}, FDFrom: 0},
	}))
	f.Add(EncodeChain([]ChainLink{
		{Args: &kernel.Args{Nr: abi.SysSend, FD: 4, Buf: []byte("ping")}, FDFrom: -1},
		{Args: &kernel.Args{Nr: abi.SysRecv, FD: 4, Size: 128}, FDFrom: -1},
	}))
	f.Add([]byte{0xAA})
	f.Add([]byte{0xAA, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xAA, 2, 0, 0, 0, chainFlagFDFrom, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		links, err := DecodeChain(data)
		if err == nil && len(links) == 0 {
			t.Fatal("empty chain without error")
		}
		for i, ln := range links {
			if err == nil && (ln.Args == nil || ln.FDFrom >= i) {
				t.Fatalf("link %d decoded inconsistently (fdFrom=%d)", i, ln.FDFrom)
			}
		}
	})
}

func FuzzDecodeChainResult(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeChainResult(ChainResult{Executed: 2, Results: []kernel.Result{
		{Ret: 3, FD: 3},
		{Ret: -1, Err: abi.EHOSTDOWN},
	}}))
	f.Add([]byte{1, 0, 0, 0, 9, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := DecodeChainResult(data)
		if err == nil && (cr.Executed < 0 || cr.Executed > len(cr.Results)) {
			t.Fatal("inconsistent executed count without error")
		}
	})
}

// FuzzArgsRoundTrip: anything that encodes must decode to itself.
func FuzzArgsRoundTrip(f *testing.F) {
	f.Add("/data/x", 3, []byte("buf"), int64(12), "tag")
	f.Fuzz(func(t *testing.T, path string, fd int, buf []byte, off int64, tag string) {
		in := &kernel.Args{Nr: abi.SysPwrite64, Path: path, FD: fd, Buf: buf, Off: off, Tag: tag}
		out, err := DecodeArgs(EncodeArgs(in))
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if out.Path != path || out.FD != fd || out.Off != off || out.Tag != tag {
			t.Fatal("round trip mismatch")
		}
	})
}
