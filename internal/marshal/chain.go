package marshal

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// Linked submissions (DESIGN.md §17): a chain frame packs an ordered list
// of dependent call frames into one SQ submission with io_uring-IO_LINK
// semantics. Later links see earlier results through two small
// register-style bindings — "descriptor from link k" and the running
// bytes-read cursor — so the guest can execute a whole open→fstat→read→
// close sequence without a host round-trip between links. A failed link
// short-circuits the rest of the chain with its errno; the links that
// never ran still carry a result, so accounting stays positional.

// chainCallMagic is the first byte of a chain frame. It sits next to
// grantCallMagic/binderCallMagic/sockOpMagic, far outside the TLV tag
// range, so a plain EncodeArgs payload can never alias it.
const chainCallMagic uint8 = 0xAA

// MaxChainLinks is the codec's hard cap on links per chain. The layer's
// FusionMaxLinks knob clamps below it; the decode-side bound is what
// keeps a hostile count from forcing a giant allocation.
const MaxChainLinks = 16

// Chain-link flag bits.
const (
	chainFlagCursor uint8 = 1 << iota
	chainFlagFDFrom
)

// ChainLink is one call of a linked submission.
type ChainLink struct {
	Args *kernel.Args
	// FDFrom binds this link's descriptor register: the result descriptor
	// of the named earlier link replaces Args.FD before execution
	// ("fd from link 0"). -1 leaves Args.FD as encoded.
	FDFrom int
	// UseCursor adds the chain's running bytes-read cursor to this link's
	// file offset before execution; every read-like link advances the
	// cursor by its positive return value. Together with FDFrom this is
	// what lets "read the file in N linked slices" run guest-side.
	UseCursor bool
}

// ChainResult is the guest's reply to a chain submission.
type ChainResult struct {
	// Executed counts links the guest actually ran; a short-circuited or
	// drained chain reports fewer than len(Results). The accounting
	// identity Submitted = Completed + Failed is kept per link: executed
	// links (including guest errnos) are completions, the rest failures.
	Executed int
	Results  []kernel.Result
}

// EncodeChain packs an ordered link list into one chain frame.
func EncodeChain(links []ChainLink) []byte {
	var w writer
	w.u8(chainCallMagic)
	w.u32(int64(len(links)))
	for _, ln := range links {
		var flags uint8
		if ln.UseCursor {
			flags |= chainFlagCursor
		}
		if ln.FDFrom >= 0 {
			flags |= chainFlagFDFrom
		}
		w.u8(flags)
		if ln.FDFrom >= 0 {
			w.u8(uint8(ln.FDFrom))
		}
		blob := EncodeArgs(ln.Args)
		w.u32(int64(len(blob)))
		w.buf = append(w.buf, blob...)
	}
	return w.buf
}

// IsChainCall reports whether a channel payload is a chain frame. Like a
// sockop or grant descriptor, a small chain frame is inline-eligible: it
// is a compact descriptor list, not a bulk payload.
func IsChainCall(b []byte) bool {
	return len(b) > 0 && b[0] == chainCallMagic
}

// DecodeChain reverses EncodeChain, validating the link count and that
// every descriptor binding names a strictly earlier link.
func DecodeChain(b []byte) ([]ChainLink, error) {
	if !IsChainCall(b) {
		return nil, fmt.Errorf("marshal: not a chain frame: %w", abi.EINVAL)
	}
	r := &reader{buf: b, pos: 1}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if n <= 0 || n > MaxChainLinks {
		return nil, fmt.Errorf("marshal: bad chain link count %d: %w", n, abi.EINVAL)
	}
	links := make([]ChainLink, 0, n)
	for i := 0; i < n; i++ {
		flags := r.u8()
		fdFrom := -1
		if flags&chainFlagFDFrom != 0 {
			fdFrom = int(r.u8())
		}
		blob := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		if flags&^(chainFlagCursor|chainFlagFDFrom) != 0 {
			return nil, fmt.Errorf("marshal: unknown chain link flags %#x: %w", flags, abi.EINVAL)
		}
		if fdFrom >= i {
			return nil, fmt.Errorf("marshal: chain link %d binds fd from link %d (not earlier): %w", i, fdFrom, abi.EINVAL)
		}
		a, err := DecodeArgs(blob)
		if err != nil {
			return nil, err
		}
		links = append(links, ChainLink{Args: a, FDFrom: fdFrom, UseCursor: flags&chainFlagCursor != 0})
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("marshal: %d trailing bytes after chain: %w", len(b)-r.pos, abi.EINVAL)
	}
	return links, nil
}

// EncodeChainResult frames the guest's per-link results plus the executed
// count for the completion post.
func EncodeChainResult(cr ChainResult) []byte {
	var w writer
	w.u32(int64(len(cr.Results)))
	w.u32(int64(cr.Executed))
	for _, res := range cr.Results {
		blob := EncodeResult(res)
		w.u32(int64(len(blob)))
		w.buf = append(w.buf, blob...)
	}
	return w.buf
}

// DecodeChainResult reverses EncodeChainResult.
func DecodeChainResult(b []byte) (ChainResult, error) {
	r := &reader{buf: b}
	n := r.u32()
	executed := r.u32()
	if r.err != nil {
		return ChainResult{}, r.err
	}
	if n <= 0 || n > MaxChainLinks || executed < 0 || executed > n {
		return ChainResult{}, fmt.Errorf("marshal: bad chain result header (%d links, %d executed): %w", n, executed, abi.EINVAL)
	}
	cr := ChainResult{Executed: executed, Results: make([]kernel.Result, 0, n)}
	for i := 0; i < n; i++ {
		blob := r.bytes()
		if r.err != nil {
			return ChainResult{}, r.err
		}
		res, err := DecodeResult(blob)
		if err != nil {
			return ChainResult{}, err
		}
		cr.Results = append(cr.Results, res)
	}
	if r.pos != len(b) {
		return ChainResult{}, fmt.Errorf("marshal: %d trailing bytes after chain result: %w", len(b)-r.pos, abi.EINVAL)
	}
	return cr, nil
}
