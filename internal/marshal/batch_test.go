package marshal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

func TestArgsBatchRoundTrip(t *testing.T) {
	in := []*kernel.Args{
		{Nr: abi.SysPwrite64, FD: 7, Buf: bytes.Repeat([]byte{0xEE}, 4096), Off: 0},
		{Nr: abi.SysPwrite64, FD: 7, Buf: []byte("tail"), Off: 8192},
		{Nr: abi.SysFsync, FD: 7},
	}
	out, err := DecodeArgsBatch(EncodeArgsBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("batch round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestArgsBatchEmpty(t *testing.T) {
	out, err := DecodeArgsBatch(EncodeArgsBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty batch decoded to %d calls", len(out))
	}
}

func TestResultBatchRoundTrip(t *testing.T) {
	in := []kernel.Result{
		{Ret: 4096},
		{Ret: -1, Err: abi.ENOSPC},
		{Ret: 17, Data: []byte("partial")},
	}
	out, err := DecodeResultBatch(EncodeResultBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d results, want %d", len(out), len(in))
	}
	if out[0].Ret != 4096 || out[2].Ret != 17 || !bytes.Equal(out[2].Data, []byte("partial")) {
		t.Fatalf("payload mismatch: %+v", out)
	}
	if !errors.Is(out[1].Err, abi.ENOSPC) {
		t.Fatalf("error not preserved: %v", out[1].Err)
	}
}

func TestArgsBatchTruncatedFails(t *testing.T) {
	enc := EncodeArgsBatch([]*kernel.Args{
		{Nr: abi.SysPwrite64, FD: 3, Buf: []byte("abcdef"), Off: 64},
	})
	for _, cut := range []int{1, 4, 6, len(enc) - 1} {
		if _, err := DecodeArgsBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(enc))
		}
	}
}

func TestArgsBatchTrailingBytesFail(t *testing.T) {
	enc := EncodeArgsBatch([]*kernel.Args{{Nr: abi.SysFsync, FD: 3}})
	if _, err := DecodeArgsBatch(append(enc, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestResultBatchTruncatedAndTrailingFail(t *testing.T) {
	enc := EncodeResultBatch([]kernel.Result{{Ret: 1}, {Ret: 2}})
	if _, err := DecodeResultBatch(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated result batch accepted")
	}
	if _, err := DecodeResultBatch(append(enc, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
