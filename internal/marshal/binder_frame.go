package marshal

import (
	"fmt"

	"anception/internal/abi"
)

// The binder fast path ships session-addressed transactions over the same
// async ring as redirected file I/O. The ring only needs to tell a binder
// frame apart from an argument blob (for inline-eligibility: session
// frames are tiny and latency-sensitive, exactly what the inline window
// exists for), so the frame is a thin opaque envelope — the binder
// package owns the inner encoding.

// binderCallMagic is the first byte of a binder-call frame. It sits next
// to grantCallMagic, far outside the TLV tag range, so a plain EncodeArgs
// payload can never alias it.
const binderCallMagic uint8 = 0xA8

// EncodeBinderCall wraps an encoded binder frame for ring transport.
func EncodeBinderCall(frame []byte) []byte {
	var w writer
	w.u8(binderCallMagic)
	w.u32(int64(len(frame)))
	w.buf = append(w.buf, frame...)
	return w.buf
}

// IsBinderCall reports whether a channel payload is a binder-call frame.
func IsBinderCall(b []byte) bool {
	return len(b) > 0 && b[0] == binderCallMagic
}

// DecodeBinderCall unwraps EncodeBinderCall's envelope.
func DecodeBinderCall(b []byte) ([]byte, error) {
	if !IsBinderCall(b) {
		return nil, fmt.Errorf("marshal: not a binder call: %w", abi.EINVAL)
	}
	r := &reader{buf: b, pos: 1}
	n := r.u32()
	if r.err != nil || n < 0 || r.pos+n != len(b) {
		return nil, errTruncated
	}
	return b[r.pos:], nil
}
