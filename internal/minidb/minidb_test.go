package minidb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// fsIO adapts a raw vfs.FileSystem to FileIO for unit tests (the
// integration tests use anception.Proc instead).
type fsIO struct {
	fs   *vfs.FileSystem
	fds  map[int]*vfs.File
	next int
}

func newFSIO(t testing.TB) *fsIO {
	t.Helper()
	fs := vfs.New()
	root := abi.Cred{UID: abi.UIDRoot}
	if err := fs.Mkdir(root, "/data", 0o777); err != nil {
		t.Fatal(err)
	}
	return &fsIO{fs: fs, fds: make(map[int]*vfs.File), next: 3}
}

func (f *fsIO) Open(path string, flags abi.OpenFlag, mode abi.FileMode) (int, error) {
	file, err := f.fs.Open(abi.Cred{UID: abi.UIDRoot}, path, flags, mode)
	if err != nil {
		return -1, err
	}
	fd := f.next
	f.next++
	f.fds[fd] = file
	return fd, nil
}

func (f *fsIO) Close(fd int) error { delete(f.fds, fd); return nil }

func (f *fsIO) Pread(fd int, n int, off int64) ([]byte, error) {
	buf := make([]byte, n)
	m, err := f.fds[fd].ReadAt(buf, off)
	if err != nil {
		return nil, err
	}
	return buf[:m], nil
}

func (f *fsIO) Pwrite(fd int, data []byte, off int64) (int, error) {
	return f.fds[fd].WriteAt(data, off)
}

func (f *fsIO) Fsync(fd int) (int, error) { return f.fds[fd].Sync(), nil }

func (f *fsIO) Ftruncate(fd int, size int64) error { return f.fds[fd].Truncate(size) }

func (f *fsIO) Unlink(path string) error {
	return f.fs.Unlink(abi.Cred{UID: abi.UIDRoot}, path)
}

func (f *fsIO) Stat(path string) (int64, error) {
	st, err := f.fs.StatPath(abi.Cred{UID: abi.UIDRoot}, path)
	if err != nil {
		return 0, err
	}
	return st.Size, nil
}

func openTestDB(t *testing.T) (*DB, *fsIO) {
	t.Helper()
	io := newFSIO(t)
	db, err := Open(io, "/data/test.db")
	if err != nil {
		t.Fatal(err)
	}
	return db, io
}

func TestInsertGetRoundTrip(t *testing.T) {
	db, _ := openTestDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(42, []byte("row-42")); err != nil {
		t.Fatal(err)
	}
	if got, err := tx.Get(42); err != nil || string(got) != "row-42" {
		t.Fatalf("in-tx get = %q, %v", got, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get(42); err != nil || string(got) != "row-42" {
		t.Fatalf("committed get = %q, %v", got, err)
	}
	if _, err := db.Get(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	if err := tx.Insert(1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Get(1); string(got) != "new" {
		t.Fatalf("got %q", got)
	}
	if n, _ := db.Count(0, 100); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestDelete(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	for i := int64(0); i < 10; i++ {
		if err := tx.Insert(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still present: %v", err)
	}
	if n, _ := db.Count(0, 100); n != 9 {
		t.Fatalf("count = %d", n)
	}
}

func TestManyRowsSplitPages(t *testing.T) {
	db, _ := openTestDB(t)
	const rows = 5000
	tx, _ := db.Begin()
	for i := int64(0); i < rows; i++ {
		val := []byte(fmt.Sprintf("value-%06d-abcdefghijklmnop", i))
		if err := tx.Insert(i, val); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Pages() < 10 {
		t.Fatalf("pages = %d; the tree never split", db.Pages())
	}
	// Spot check.
	for _, k := range []int64{0, 1, 999, 2500, rows - 1} {
		want := fmt.Sprintf("value-%06d-abcdefghijklmnop", k)
		got, err := db.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%d) = %q, %v", k, got, err)
		}
	}
	if n, _ := db.Count(0, rows); n != rows {
		t.Fatalf("count = %d, want %d", n, rows)
	}
}

// TestScanSortedProperty: iteration is always in ascending key order and
// returns exactly the inserted set, for random insertion orders.
func TestScanSortedProperty(t *testing.T) {
	f := func(keysRaw []int16) bool {
		db, _ := openTestDB(t)
		tx, _ := db.Begin()
		want := make(map[int64]bool)
		for _, k := range keysRaw {
			key := int64(k)
			if err := tx.Insert(key, []byte("v")); err != nil {
				return false
			}
			want[key] = true
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		var got []int64
		if err := db.Scan(-40000, 40000, func(k int64, _ []byte) bool {
			got = append(got, k)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i, k := range got {
			if !want[k] {
				return false
			}
			if i > 0 && got[i-1] >= k {
				return false // out of order or duplicate
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScanRangeBounds(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	for i := int64(0); i < 100; i += 2 {
		if err := tx.Insert(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var keys []int64
	if err := db.Scan(10, 20, func(k int64, _ []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestRollbackDiscardsChanges(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	if err := tx.Insert(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin()
	if err := tx2.Insert(2, []byte("discard")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Insert(1, []byte("mutated")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}

	if got, err := db.Get(1); err != nil || string(got) != "keep" {
		t.Fatalf("after rollback: %q, %v", got, err)
	}
	if _, err := db.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back insert visible: %v", err)
	}
}

func TestCrashRecovery(t *testing.T) {
	io := newFSIO(t)
	db, err := Open(io, "/data/crash.db")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if err := tx.Insert(1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Second transaction: force dirty pages to disk mid-transaction (as a
	// page-cache eviction would), then crash before commit.
	tx2, _ := db.Begin()
	for i := int64(100); i < 400; i++ {
		if err := tx2.Insert(i, bytes.Repeat([]byte("z"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.pager.flush(); err != nil { // partial write hits the disk
		t.Fatal(err)
	}
	db.DropCaches() // crash

	db2, err := Open(io, "/data/crash.db")
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got, err := db2.Get(1); err != nil || string(got) != "committed" {
		t.Fatalf("committed row lost: %q, %v", got, err)
	}
	for i := int64(100); i < 400; i++ {
		if _, err := db2.Get(i); !errors.Is(err, ErrNotFound) {
			t.Fatalf("uncommitted row %d survived the crash: %v", i, err)
		}
	}
}

func TestReopenPersistedData(t *testing.T) {
	io := newFSIO(t)
	db, err := Open(io, "/data/persist.db")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	for i := int64(0); i < 500; i++ {
		if err := tx.Insert(i, []byte(fmt.Sprintf("row %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(io, "/data/persist.db")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 250, 499} {
		if got, err := db2.Get(k); err != nil || string(got) != fmt.Sprintf("row %d", k) {
			t.Fatalf("Get(%d) after reopen = %q, %v", k, got, err)
		}
	}
}

func TestTransactionDiscipline(t *testing.T) {
	db, _ := openTestDB(t)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrTxActive) {
		t.Fatalf("second begin: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(1, nil); !errors.Is(err, ErrNoTx) {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNoTx) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	if err := tx.Insert(1, make([]byte, MaxValueLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	for _, k := range []int64{-5, -1, 0, 1, 5} {
		if err := tx.Insert(k, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	_ = db.Scan(-10, 10, func(k int64, _ []byte) bool { got = append(got, k); return true })
	want := []int64{-5, -1, 0, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v", got)
		}
	}
}

func TestOpenGarbageFile(t *testing.T) {
	io := newFSIO(t)
	root := abi.Cred{UID: abi.UIDRoot}
	if err := io.fs.WriteFile(root, "/data/garbage.db", []byte("not a database at all"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(io, "/data/garbage.db"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestInsertGetDeleteProperty exercises the tree with random operations
// against a map oracle.
func TestInsertGetDeleteProperty(t *testing.T) {
	db, _ := openTestDB(t)
	oracle := make(map[int64][]byte)
	tx, _ := db.Begin()
	f := func(key int16, val []byte, del bool) bool {
		k := int64(key % 512)
		if len(val) > 64 {
			val = val[:64]
		}
		if del {
			_, inOracle := oracle[k]
			err := tx.Delete(k)
			if inOracle != (err == nil) {
				return false
			}
			delete(oracle, k)
		} else {
			if err := tx.Insert(k, val); err != nil {
				return false
			}
			oracle[k] = append([]byte(nil), val...)
		}
		// Verify a sample of the oracle.
		for ok := range oracle {
			got, err := tx.Get(ok)
			if err != nil || !bytes.Equal(got, oracle[ok]) {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for k, v := range oracle {
		got, err := db.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("final check Get(%d) = %q, %v (want %q)", k, got, err, v)
		}
	}
}

func TestCloseRollsBackOpenTransaction(t *testing.T) {
	io := newFSIO(t)
	db, err := Open(io, "/data/close.db")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if err := tx.Insert(1, []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(io, "/data/close.db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted row visible after close: %v", err)
	}
}

func TestGetDeleteOutsideTx(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(1); !errors.Is(err, ErrNoTx) {
		t.Fatalf("get on finished tx: %v", err)
	}
	if err := tx.Delete(1); !errors.Is(err, ErrNoTx) {
		t.Fatalf("delete on finished tx: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrNoTx) {
		t.Fatalf("rollback on finished tx: %v", err)
	}
}

func TestDeepTreeInteriorSplits(t *testing.T) {
	db, _ := openTestDB(t)
	// Large values force frequent leaf splits; enough rows force interior
	// splits and a tree of height >= 3.
	const rows = 3000
	val := bytes.Repeat([]byte("V"), 900)
	tx, _ := db.Begin()
	// Insert in descending order to exercise the left-edge insert path.
	for i := rows - 1; i >= 0; i-- {
		if err := tx.Insert(int64(i), val); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Pages() < 700 {
		t.Fatalf("pages = %d; expected a deep tree", db.Pages())
	}
	for _, k := range []int64{0, 1, 1499, rows - 1} {
		got, err := db.Get(k)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("Get(%d): %v", k, err)
		}
	}
	if n, _ := db.Count(0, rows); n != rows {
		t.Fatalf("count = %d", n)
	}
	// Interleave deletes and re-inserts across the deep tree.
	tx2, _ := db.Begin()
	for i := int64(0); i < rows; i += 7 {
		if err := tx2.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(7); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key found")
	}
	if _, err := db.Get(8); err != nil {
		t.Fatal("kept key lost")
	}
}

func TestScanEarlyStop(t *testing.T) {
	db, _ := openTestDB(t)
	tx, _ := db.Begin()
	for i := int64(0); i < 50; i++ {
		if err := tx.Insert(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	visited := 0
	if err := db.Scan(0, 49, func(k int64, _ []byte) bool {
		visited++
		return visited < 5
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 5 {
		t.Fatalf("visited = %d, want early stop at 5", visited)
	}
}
