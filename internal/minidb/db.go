package minidb

import "fmt"

// DB is one open database.
type DB struct {
	pager *pager
}

// Open opens (or creates) a database at path, rolling back any
// interrupted transaction found in the journal.
func Open(io FileIO, path string) (*DB, error) {
	p, err := openPager(io, path)
	if err != nil {
		return nil, err
	}
	return &DB{pager: p}, nil
}

// Close releases the database file.
func (db *DB) Close() error {
	if db.pager.journalOpen {
		if err := db.pager.rollbackJournal(); err != nil {
			return err
		}
	}
	return db.pager.io.Close(db.pager.fd)
}

// Tx is one write transaction.
type Tx struct {
	db   *DB
	done bool
}

// Begin starts a transaction; only one may be active.
func (db *DB) Begin() (*Tx, error) {
	if err := db.pager.beginJournal(); err != nil {
		return nil, err
	}
	return &Tx{db: db}, nil
}

// Insert stores (or overwrites) a row.
func (tx *Tx) Insert(key int64, val []byte) error {
	if tx.done {
		return ErrNoTx
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("minidb: value %d bytes exceeds %d", len(val), MaxValueLen)
	}
	return tx.db.pager.treeInsert(key, val)
}

// Delete removes a row.
func (tx *Tx) Delete(key int64) error {
	if tx.done {
		return ErrNoTx
	}
	return tx.db.pager.treeDelete(key)
}

// Get reads a row through the transaction (sees uncommitted writes).
func (tx *Tx) Get(key int64) ([]byte, error) {
	if tx.done {
		return nil, ErrNoTx
	}
	return tx.db.pager.treeGet(key)
}

// Commit makes the transaction durable.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrNoTx
	}
	tx.done = true
	return tx.db.pager.commitJournal()
}

// Rollback aborts the transaction.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrNoTx
	}
	tx.done = true
	return tx.db.pager.rollbackJournal()
}

// Get reads a committed row.
func (db *DB) Get(key int64) ([]byte, error) {
	return db.pager.treeGet(key)
}

// Scan visits rows with keys in [from, to] in ascending order; the
// visitor returns false to stop.
func (db *DB) Scan(from, to int64, visit func(key int64, val []byte) bool) error {
	_, err := db.pager.treeScan(db.pager.rootPage, from, to, visit)
	return err
}

// Count returns the number of rows in [from, to].
func (db *DB) Count(from, to int64) (int, error) {
	n := 0
	err := db.Scan(from, to, func(int64, []byte) bool { n++; return true })
	return n, err
}

// Pages reports the database size in pages (diagnostics and benches).
func (db *DB) Pages() int { return int(db.pager.pageCount) }

// DropCaches simulates a crash: all in-memory state is discarded without
// flushing. The file (and any journal) are left exactly as the last
// Pwrite/Fsync left them; reopening recovers.
func (db *DB) DropCaches() {
	db.pager.cache = make(map[uint32][]byte)
	db.pager.dirty = make(map[uint32]bool)
	db.pager.journalOpen = false
}
