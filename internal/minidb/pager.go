// Package minidb is the embedded database standing in for SQLite in the
// macrobenchmarks (Section VI-B): a pager with a rollback journal over the
// simulated filesystem, and a B+tree keyed by 64-bit row ids.
//
// All I/O goes through the FileIO interface — satisfied by
// anception.Proc — so database operations are subject to the platform's
// redirection exactly like a real app's SQLite calls, and the buffering
// behavior that masks Anception's I/O latency at the macro level emerges
// from the page cache rather than being modeled.
package minidb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"anception/internal/abi"
)

// PageSize matches the platform page and data-channel chunk size.
const PageSize = abi.PageSize

// FileIO is the system-call surface the database needs; anception.Proc
// implements it.
type FileIO interface {
	Open(path string, flags abi.OpenFlag, mode abi.FileMode) (int, error)
	Close(fd int) error
	Pread(fd int, n int, off int64) ([]byte, error)
	Pwrite(fd int, data []byte, off int64) (int, error)
	Fsync(fd int) (int, error)
	Ftruncate(fd int, size int64) error
	Unlink(path string) error
	Stat(path string) (int64, error)
}

// ErrCorrupt reports a malformed database file.
var ErrCorrupt = errors.New("minidb: corrupt database")

// ErrTxActive reports an attempt to start a second transaction.
var ErrTxActive = errors.New("minidb: transaction already active")

// ErrNoTx reports a data operation outside a transaction.
var ErrNoTx = errors.New("minidb: no active transaction")

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("minidb: key not found")

const dbMagic = "MDB1"

// pager manages the page file, the in-memory cache, and the rollback
// journal.
type pager struct {
	io          FileIO
	path        string
	journalPath string
	fd          int

	pageCount uint32
	rootPage  uint32

	cache map[uint32][]byte
	dirty map[uint32]bool

	journalFD    int
	journalOpen  bool
	journaled    map[uint32]bool
	origCount    uint32
	journalBytes int64
	// journalBuf accumulates before-images in memory; they spill to the
	// journal file (with an fsync) before any database page hits disk,
	// the same ordering contract SQLite's rollback journal keeps.
	journalBuf []byte
}

func openPager(io FileIO, path string) (*pager, error) {
	p := &pager{
		io:          io,
		path:        path,
		journalPath: path + "-journal",
		cache:       make(map[uint32][]byte),
		dirty:       make(map[uint32]bool),
		journaled:   make(map[uint32]bool),
	}

	// Crash recovery: a leftover journal means the last transaction never
	// committed; roll it back before touching the database.
	if _, err := io.Stat(p.journalPath); err == nil {
		if err := p.rollbackJournalFile(); err != nil {
			return nil, fmt.Errorf("minidb: recover: %w", err)
		}
	}

	fd, err := io.Open(path, abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		return nil, fmt.Errorf("minidb: open %s: %w", path, err)
	}
	p.fd = fd

	size, err := io.Stat(path)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		// Fresh database: header page plus an empty leaf root.
		p.pageCount = 2
		p.rootPage = 1
		root := make([]byte, PageSize)
		root[0] = pageLeaf
		p.cache[1] = root
		p.dirty[1] = true
		if err := p.writeHeader(); err != nil {
			return nil, err
		}
		if err := p.flush(); err != nil {
			return nil, err
		}
		return p, nil
	}

	hdr, err := io.Pread(fd, PageSize, 0)
	if err != nil {
		return nil, err
	}
	if len(hdr) < 16 || string(hdr[:4]) != dbMagic {
		return nil, ErrCorrupt
	}
	p.pageCount = binary.LittleEndian.Uint32(hdr[4:])
	p.rootPage = binary.LittleEndian.Uint32(hdr[8:])
	if p.rootPage == 0 || p.rootPage >= p.pageCount {
		return nil, ErrCorrupt
	}
	return p, nil
}

func (p *pager) writeHeader() error {
	// The header is page 0 and must be journaled like any other page, or
	// a crash mid-transaction would leave a header pointing at rolled-
	// back structure.
	buf, err := p.modify(0)
	if err != nil {
		return err
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, dbMagic)
	binary.LittleEndian.PutUint32(buf[4:], p.pageCount)
	binary.LittleEndian.PutUint32(buf[8:], p.rootPage)
	return nil
}

// page returns the cached (or loaded) page buffer.
func (p *pager) page(no uint32) ([]byte, error) {
	if buf, ok := p.cache[no]; ok {
		return buf, nil
	}
	if no >= p.pageCount {
		return nil, fmt.Errorf("minidb: page %d out of range: %w", no, ErrCorrupt)
	}
	buf, err := p.io.Pread(p.fd, PageSize, int64(no)*PageSize)
	if err != nil {
		return nil, err
	}
	if len(buf) < PageSize {
		grown := make([]byte, PageSize)
		copy(grown, buf)
		buf = grown
	}
	p.cache[no] = buf
	return buf, nil
}

// modify journals the page's before-image (once per transaction) and
// marks it dirty.
func (p *pager) modify(no uint32) ([]byte, error) {
	buf, err := p.page(no)
	if err != nil {
		return nil, err
	}
	if p.journalOpen && !p.journaled[no] && no < p.origCount {
		entry := make([]byte, 4+PageSize)
		binary.LittleEndian.PutUint32(entry, no)
		copy(entry[4:], buf)
		p.journalBuf = append(p.journalBuf, entry...)
		p.journaled[no] = true
	}
	p.dirty[no] = true
	return buf, nil
}

// alloc appends a fresh page.
func (p *pager) alloc() (uint32, []byte) {
	no := p.pageCount
	p.pageCount++
	buf := make([]byte, PageSize)
	p.cache[no] = buf
	p.dirty[no] = true
	_ = p.writeHeader()
	return no, buf
}

func (p *pager) beginJournal() error {
	if p.journalOpen {
		return ErrTxActive
	}
	fd, err := p.io.Open(p.journalPath, abi.ORdWr|abi.OCreat|abi.OTrunc, 0o600)
	if err != nil {
		return err
	}
	// Journal header: the original page count, for truncation on
	// rollback.
	hdr := make([]byte, 8)
	copy(hdr, "MDBJ")
	binary.LittleEndian.PutUint32(hdr[4:], p.pageCount)
	if _, err := p.io.Pwrite(fd, hdr, 0); err != nil {
		return err
	}
	p.journalFD = fd
	p.journalOpen = true
	p.journalBytes = 8
	p.origCount = p.pageCount
	p.journaled = make(map[uint32]bool)
	p.journalBuf = nil
	return nil
}

// spillJournal writes buffered before-images to the journal file and
// syncs it; it must complete before any database page write.
func (p *pager) spillJournal() error {
	if !p.journalOpen || len(p.journalBuf) == 0 {
		return nil
	}
	if _, err := p.io.Pwrite(p.journalFD, p.journalBuf, p.journalBytes); err != nil {
		return err
	}
	p.journalBytes += int64(len(p.journalBuf))
	p.journalBuf = nil
	if _, err := p.io.Fsync(p.journalFD); err != nil {
		return err
	}
	return nil
}

// flushBatchPages bounds one coalesced write (256 KiB).
const flushBatchPages = 64

// flush spills the journal, then writes dirty pages to the database file,
// coalescing contiguous runs into single large writes — the sequential-
// write batching that lets filesystem buffering mask redirection latency
// at the macro level (Section VI-B).
func (p *pager) flush() error {
	if err := p.spillJournal(); err != nil {
		return err
	}
	nos := make([]uint32, 0, len(p.dirty))
	for no := range p.dirty {
		nos = append(nos, no)
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	for i := 0; i < len(nos); {
		j := i
		for j+1 < len(nos) && nos[j+1] == nos[j]+1 && j+1-i < flushBatchPages {
			j++
		}
		run := make([]byte, 0, (j-i+1)*PageSize)
		for k := i; k <= j; k++ {
			run = append(run, p.cache[nos[k]]...)
		}
		if _, err := p.io.Pwrite(p.fd, run, int64(nos[i])*PageSize); err != nil {
			return err
		}
		i = j + 1
	}
	p.dirty = make(map[uint32]bool)
	return nil
}

// commitJournal makes the transaction durable: flush pages, sync, drop
// the journal.
func (p *pager) commitJournal() error {
	if !p.journalOpen {
		return ErrNoTx
	}
	if err := p.flush(); err != nil {
		return err
	}
	if _, err := p.io.Fsync(p.fd); err != nil {
		return err
	}
	if err := p.io.Close(p.journalFD); err != nil {
		return err
	}
	if err := p.io.Unlink(p.journalPath); err != nil {
		return err
	}
	p.journalOpen = false
	return nil
}

// rollbackJournal aborts the in-flight transaction using the in-memory
// state (cache drop) plus the journal for any pages already flushed.
func (p *pager) rollbackJournal() error {
	if !p.journalOpen {
		return ErrNoTx
	}
	if err := p.io.Close(p.journalFD); err != nil {
		return err
	}
	p.journalOpen = false
	if err := p.rollbackJournalFile(); err != nil {
		return err
	}
	// Drop all cached state and reload the header.
	p.cache = make(map[uint32][]byte)
	p.dirty = make(map[uint32]bool)
	hdr, err := p.io.Pread(p.fd, PageSize, 0)
	if err != nil {
		return err
	}
	p.pageCount = binary.LittleEndian.Uint32(hdr[4:])
	p.rootPage = binary.LittleEndian.Uint32(hdr[8:])
	return nil
}

// rollbackJournalFile restores before-images from the journal file and
// removes it.
func (p *pager) rollbackJournalFile() error {
	jfd, err := p.io.Open(p.journalPath, abi.ORdOnly, 0)
	if err != nil {
		return err
	}
	hdr, err := p.io.Pread(jfd, 8, 0)
	if err != nil || len(hdr) < 8 || string(hdr[:4]) != "MDBJ" {
		_ = p.io.Close(jfd)
		_ = p.io.Unlink(p.journalPath)
		return nil // empty/garbage journal: nothing was written
	}
	origCount := binary.LittleEndian.Uint32(hdr[4:])

	dbfd, err := p.io.Open(p.path, abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		_ = p.io.Close(jfd)
		return err
	}
	off := int64(8)
	for {
		entry, err := p.io.Pread(jfd, 4+PageSize, off)
		if err != nil || len(entry) < 4+PageSize {
			break
		}
		no := binary.LittleEndian.Uint32(entry)
		if _, err := p.io.Pwrite(dbfd, entry[4:], int64(no)*PageSize); err != nil {
			_ = p.io.Close(jfd)
			_ = p.io.Close(dbfd)
			return err
		}
		off += int64(4 + PageSize)
	}
	if err := p.io.Ftruncate(dbfd, int64(origCount)*PageSize); err != nil {
		_ = p.io.Close(jfd)
		_ = p.io.Close(dbfd)
		return err
	}
	if _, err := p.io.Fsync(dbfd); err != nil {
		return err
	}
	_ = p.io.Close(jfd)
	_ = p.io.Close(dbfd)
	return p.io.Unlink(p.journalPath)
}
