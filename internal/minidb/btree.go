package minidb

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Page types.
const (
	pageLeaf     = 1
	pageInterior = 2
)

// MaxValueLen bounds row values so several cells always fit in a page.
const MaxValueLen = 1024

// leaf page layout:   [type u8][ncells u16] cells: (key i64, vlen u16, val)
// interior layout:    [type u8][ncells u16][rightmost u32] cells: (key i64, child u32)
//
// Interior cell semantics: child holds keys <= key; rightmost holds the
// rest.

type leafCell struct {
	key int64
	val []byte
}

type interiorCell struct {
	key   int64
	child uint32
}

func decodeLeaf(buf []byte) ([]leafCell, error) {
	if buf[0] != pageLeaf {
		return nil, fmt.Errorf("expected leaf: %w", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	cells := make([]leafCell, 0, n)
	off := 3
	for i := 0; i < n; i++ {
		if off+10 > len(buf) {
			return nil, ErrCorrupt
		}
		key := int64(binary.LittleEndian.Uint64(buf[off:]))
		vlen := int(binary.LittleEndian.Uint16(buf[off+8:]))
		off += 10
		if off+vlen > len(buf) {
			return nil, ErrCorrupt
		}
		val := make([]byte, vlen)
		copy(val, buf[off:off+vlen])
		off += vlen
		cells = append(cells, leafCell{key: key, val: val})
	}
	return cells, nil
}

func encodeLeaf(buf []byte, cells []leafCell) bool {
	need := 3
	for _, c := range cells {
		need += 10 + len(c.val)
	}
	if need > len(buf) {
		return false
	}
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = pageLeaf
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(cells)))
	off := 3
	for _, c := range cells {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c.key))
		binary.LittleEndian.PutUint16(buf[off+8:], uint16(len(c.val)))
		off += 10
		copy(buf[off:], c.val)
		off += len(c.val)
	}
	return true
}

func decodeInterior(buf []byte) (cells []interiorCell, rightmost uint32, err error) {
	if buf[0] != pageInterior {
		return nil, 0, fmt.Errorf("expected interior: %w", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(buf[1:]))
	rightmost = binary.LittleEndian.Uint32(buf[3:])
	off := 7
	cells = make([]interiorCell, 0, n)
	for i := 0; i < n; i++ {
		if off+12 > len(buf) {
			return nil, 0, ErrCorrupt
		}
		key := int64(binary.LittleEndian.Uint64(buf[off:]))
		child := binary.LittleEndian.Uint32(buf[off+8:])
		off += 12
		cells = append(cells, interiorCell{key: key, child: child})
	}
	return cells, rightmost, nil
}

func encodeInterior(buf []byte, cells []interiorCell, rightmost uint32) bool {
	need := 7 + 12*len(cells)
	if need > len(buf) {
		return false
	}
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = pageInterior
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(cells)))
	binary.LittleEndian.PutUint32(buf[3:], rightmost)
	off := 7
	for _, c := range cells {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c.key))
		binary.LittleEndian.PutUint32(buf[off+8:], c.child)
		off += 12
	}
	return true
}

// splitResult propagates a split upward: a new right sibling and the
// separator key (max key of the left node).
type splitResult struct {
	sepKey   int64
	newRight uint32
}

// insert descends from page no; returns a split to propagate, or nil.
func (p *pager) insert(no uint32, key int64, val []byte) (*splitResult, error) {
	buf, err := p.page(no)
	if err != nil {
		return nil, err
	}
	switch buf[0] {
	case pageLeaf:
		cells, err := decodeLeaf(buf)
		if err != nil {
			return nil, err
		}
		idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
		if idx < len(cells) && cells[idx].key == key {
			cells[idx].val = val // overwrite
		} else {
			cells = append(cells, leafCell{})
			copy(cells[idx+1:], cells[idx:])
			cells[idx] = leafCell{key: key, val: val}
		}
		buf, err = p.modify(no)
		if err != nil {
			return nil, err
		}
		if encodeLeaf(buf, cells) {
			return nil, nil
		}
		// Split: left keeps the first half.
		mid := len(cells) / 2
		left, right := cells[:mid], cells[mid:]
		if !encodeLeaf(buf, left) {
			return nil, ErrCorrupt
		}
		rightNo, rightBuf := p.alloc()
		if !encodeLeaf(rightBuf, right) {
			return nil, ErrCorrupt
		}
		return &splitResult{sepKey: left[len(left)-1].key, newRight: rightNo}, nil

	case pageInterior:
		cells, rightmost, err := decodeInterior(buf)
		if err != nil {
			return nil, err
		}
		idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
		child := rightmost
		if idx < len(cells) {
			child = cells[idx].child
		}
		split, err := p.insert(child, key, val)
		if err != nil {
			return nil, err
		}
		if split == nil {
			return nil, nil
		}
		// Insert the separator: newRight takes child's upper half.
		newCell := interiorCell{key: split.sepKey, child: child}
		if idx < len(cells) {
			cells = append(cells, interiorCell{})
			copy(cells[idx+1:], cells[idx:])
			cells[idx] = newCell
			cells[idx+1].child = split.newRight
		} else {
			cells = append(cells, newCell)
			rightmost = split.newRight
		}
		buf, err = p.modify(no)
		if err != nil {
			return nil, err
		}
		if encodeInterior(buf, cells, rightmost) {
			return nil, nil
		}
		// Split the interior node.
		mid := len(cells) / 2
		sep := cells[mid]
		leftCells := cells[:mid]
		rightCells := append([]interiorCell(nil), cells[mid+1:]...)
		if !encodeInterior(buf, leftCells, sep.child) {
			return nil, ErrCorrupt
		}
		rightNo, rightBuf := p.alloc()
		if !encodeInterior(rightBuf, rightCells, rightmost) {
			return nil, ErrCorrupt
		}
		return &splitResult{sepKey: sep.key, newRight: rightNo}, nil

	default:
		return nil, ErrCorrupt
	}
}

// treeInsert inserts at the root, growing the tree on a root split.
func (p *pager) treeInsert(key int64, val []byte) error {
	split, err := p.insert(p.rootPage, key, val)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	newRootNo, newRootBuf := p.alloc()
	ok := encodeInterior(newRootBuf, []interiorCell{{key: split.sepKey, child: p.rootPage}}, split.newRight)
	if !ok {
		return ErrCorrupt
	}
	p.rootPage = newRootNo
	return p.writeHeader()
}

// treeGet finds a key.
func (p *pager) treeGet(key int64) ([]byte, error) {
	no := p.rootPage
	for {
		buf, err := p.page(no)
		if err != nil {
			return nil, err
		}
		switch buf[0] {
		case pageLeaf:
			cells, err := decodeLeaf(buf)
			if err != nil {
				return nil, err
			}
			idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
			if idx < len(cells) && cells[idx].key == key {
				return cells[idx].val, nil
			}
			return nil, ErrNotFound
		case pageInterior:
			cells, rightmost, err := decodeInterior(buf)
			if err != nil {
				return nil, err
			}
			idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
			if idx < len(cells) {
				no = cells[idx].child
			} else {
				no = rightmost
			}
		default:
			return nil, ErrCorrupt
		}
	}
}

// treeDelete removes a key from its leaf (no rebalancing: deleted space
// is reclaimed on subsequent splits, the classic slotted-page tradeoff).
func (p *pager) treeDelete(key int64) error {
	no := p.rootPage
	for {
		buf, err := p.page(no)
		if err != nil {
			return err
		}
		switch buf[0] {
		case pageLeaf:
			cells, err := decodeLeaf(buf)
			if err != nil {
				return err
			}
			idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
			if idx >= len(cells) || cells[idx].key != key {
				return ErrNotFound
			}
			cells = append(cells[:idx], cells[idx+1:]...)
			buf, err = p.modify(no)
			if err != nil {
				return err
			}
			if !encodeLeaf(buf, cells) {
				return ErrCorrupt
			}
			return nil
		case pageInterior:
			cells, rightmost, err := decodeInterior(buf)
			if err != nil {
				return err
			}
			idx := sort.Search(len(cells), func(i int) bool { return cells[i].key >= key })
			if idx < len(cells) {
				no = cells[idx].child
			} else {
				no = rightmost
			}
		default:
			return ErrCorrupt
		}
	}
}

// treeScan visits keys in [from, to] in order.
func (p *pager) treeScan(no uint32, from, to int64, visit func(key int64, val []byte) bool) (bool, error) {
	buf, err := p.page(no)
	if err != nil {
		return false, err
	}
	switch buf[0] {
	case pageLeaf:
		cells, err := decodeLeaf(buf)
		if err != nil {
			return false, err
		}
		for _, c := range cells {
			if c.key < from {
				continue
			}
			if c.key > to {
				return false, nil
			}
			if !visit(c.key, c.val) {
				return false, nil
			}
		}
		return true, nil
	case pageInterior:
		cells, rightmost, err := decodeInterior(buf)
		if err != nil {
			return false, err
		}
		for _, c := range cells {
			if c.key < from {
				continue
			}
			cont, err := p.treeScan(c.child, from, to, visit)
			if err != nil || !cont {
				return cont, err
			}
		}
		return p.treeScan(rightmost, from, to, visit)
	default:
		return false, ErrCorrupt
	}
}
