package minidb

import (
	"fmt"
	"testing"
)

// Engine-level wall-clock benchmarks (the simulated-latency benches live
// in the repository root).

func benchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(newFSIO(b), "/data/bench.db")
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkInsertSequential(b *testing.B) {
	db := benchDB(b)
	tx, err := db.Begin()
	if err != nil {
		b.Fatal(err)
	}
	val := []byte("benchmark row value, 32 bytes...")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tx.Insert(int64(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	db := benchDB(b)
	tx, _ := db.Begin()
	for i := int64(0); i < 10000; i++ {
		if err := tx.Insert(i, []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(int64(i % 10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommit100Rows(b *testing.B) {
	db := benchDB(b)
	key := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if err := tx.Insert(key, []byte(fmt.Sprintf("row %d", key))); err != nil {
				b.Fatal(err)
			}
			key++
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan10K(b *testing.B) {
	db := benchDB(b)
	tx, _ := db.Begin()
	for i := int64(0); i < 10000; i++ {
		if err := tx.Insert(i, []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := db.Scan(0, 10000, func(int64, []byte) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != 10000 {
			b.Fatal("scan lost rows")
		}
	}
}
