package encfs

import (
	"crypto/aes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"

	"anception/internal/abi"
)

// Authenticated storage: the confidentiality layer stops the container
// *reading* app data; authentication stops it *substituting* data — the
// file-based Iago vector of Section VII. Each authenticated file carries
// an HMAC-SHA256 over its ciphertext in a sidecar, keyed by a MAC key
// derived from (and as host-resident as) the encryption key.

// ErrTampered reports that a file's ciphertext fails authentication: the
// container (or anything else between the app and flash) modified it.
var ErrTampered = errors.New("encfs: authentication failed: stored data was tampered with")

// macSuffix names the sidecar carrying a file's MAC.
const macSuffix = ".mac"

// macKey derives the authentication key from the mount key: one AES block
// over a fixed derivation constant, expanded through SHA-256.
func (e *EncFS) macKey() []byte {
	var block [aes.BlockSize]byte
	copy(block[:], "anception-mac-kd")
	var out [aes.BlockSize]byte
	e.block.Encrypt(out[:], block[:])
	sum := sha256.Sum256(out[:])
	return sum[:]
}

// WriteFileAuthenticated seals data (encrypt + MAC) at path. The MAC is
// computed over the ciphertext, so verification needs no decryption.
func (e *EncFS) WriteFileAuthenticated(path string, data []byte) error {
	if err := e.WriteFileSealed(path, data); err != nil {
		return err
	}
	// Read the ciphertext back through the raw layer to MAC exactly what
	// is stored.
	cipherText, err := readRaw(e.under, path, len(data))
	if err != nil {
		return err
	}
	mac := hmac.New(sha256.New, e.macKey())
	mac.Write(cipherText)
	sidecar := mac.Sum(nil)

	fd, err := e.under.Open(path+macSuffix, abi.OWrOnly|abi.OCreat|abi.OTrunc, 0o600)
	if err != nil {
		return fmt.Errorf("encfs: mac sidecar: %w", err)
	}
	defer func() { _ = e.under.Close(fd) }()
	if _, err := e.under.Pwrite(fd, sidecar, 0); err != nil {
		return err
	}
	return nil
}

// ReadFileAuthenticated verifies and decrypts the file at path. A missing
// or mismatching MAC yields ErrTampered — truncation, bit flips, and
// wholesale substitution are all caught.
func (e *EncFS) ReadFileAuthenticated(path string) ([]byte, error) {
	size, err := e.Stat(path)
	if err != nil {
		return nil, err
	}
	cipherText, err := readRaw(e.under, path, int(size))
	if err != nil {
		return nil, err
	}

	stored, err := readRaw(e.under, path+macSuffix, sha256.Size)
	if err != nil || len(stored) != sha256.Size {
		return nil, fmt.Errorf("%w (sidecar unreadable)", ErrTampered)
	}
	mac := hmac.New(sha256.New, e.macKey())
	mac.Write(cipherText)
	if !hmac.Equal(mac.Sum(nil), stored) {
		return nil, ErrTampered
	}

	plain := make([]byte, len(cipherText))
	copy(plain, cipherText)
	e.keystreamXOR(plain, 0)
	return plain, nil
}

// readRaw reads n bytes of a file through the underlying (unencrypted)
// interface.
func readRaw(under FileIO, path string, n int) ([]byte, error) {
	fd, err := under.Open(path, abi.ORdOnly, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = under.Close(fd) }()
	return under.Pread(fd, n, 0)
}
