package encfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"anception/internal/abi"
	"anception/internal/anception"
	"anception/internal/android"
	"anception/internal/minidb"
)

func launchApp(t *testing.T, pkg string) (*anception.Device, *anception.Proc) {
	t.Helper()
	d, err := anception.NewDevice(anception.Options{Mode: anception.ModeAnception})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(android.AppSpec{Package: pkg})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func testKey() []byte { return []byte("0123456789abcdef") }

func TestMountRejectsBadKey(t *testing.T) {
	_, p := launchApp(t, "com.enc.badkey")
	if _, err := Mount(p, []byte("short")); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("err = %v, want EINVAL", err)
	}
}

func TestRoundTripThroughContainer(t *testing.T) {
	_, p := launchApp(t, "com.enc.roundtrip")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("account=12345678 balance=9000.01")
	if err := efs.WriteFileSealed("ledger", secret); err != nil {
		t.Fatal(err)
	}
	got, err := efs.ReadFileSealed("ledger")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("read back = %q, %v", got, err)
	}
}

// TestCVMSeesOnlyCiphertext is the DESIGN.md invariant: the bytes stored
// in the container's filesystem never contain the plaintext.
func TestCVMSeesOnlyCiphertext(t *testing.T) {
	d, p := launchApp(t, "com.enc.cipher")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("PLAINTEXT-CREDENTIALS-hunter2")
	if err := efs.WriteFileSealed("vault", secret); err != nil {
		t.Fatal(err)
	}
	// Read the raw file as the container (root in the CVM) would.
	raw, err := d.Guest.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, p.App.Info.DataDir+"/vault")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) || bytes.Contains(raw, []byte("hunter2")) {
		t.Fatal("plaintext visible in the container's filesystem")
	}
	if len(raw) != len(secret) {
		t.Fatalf("ciphertext length %d != plaintext length %d", len(raw), len(secret))
	}
}

func TestRandomAccessOffsets(t *testing.T) {
	_, p := launchApp(t, "com.enc.offsets")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	fd, err := efs.Open("rand", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	// Write two disjoint extents at odd offsets, then read across them.
	if _, err := efs.Pwrite(fd, []byte("AAAA"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := efs.Pwrite(fd, []byte("BBBB"), 21); err != nil {
		t.Fatal(err)
	}
	a, err := efs.Pread(fd, 4, 3)
	if err != nil || string(a) != "AAAA" {
		t.Fatalf("extent A = %q, %v", a, err)
	}
	b, err := efs.Pread(fd, 4, 21)
	if err != nil || string(b) != "BBBB" {
		t.Fatalf("extent B = %q, %v", b, err)
	}
}

// TestSeekableKeystreamProperty: decrypt(encrypt(x, off), off) == x for
// arbitrary data and offsets, including reads that split a write.
func TestSeekableKeystreamProperty(t *testing.T) {
	_, p := launchApp(t, "com.enc.prop")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	fd, err := efs.Open("prop", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, off uint16, splitAt uint8) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off % 8192)
		if _, err := efs.Pwrite(fd, data, o); err != nil {
			return false
		}
		// Read the whole extent in two arbitrary pieces.
		split := int(splitAt) % len(data)
		first, err := efs.Pread(fd, split, o)
		if err != nil {
			return false
		}
		second, err := efs.Pread(fd, len(data)-split, o+int64(split))
		if err != nil {
			return false
		}
		return bytes.Equal(append(first, second...), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	d, p := launchApp(t, "com.enc.keys")
	efs1, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	efs2, err := Mount(p, []byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same plaintext, different apps")
	if err := efs1.WriteFileSealed("f1", msg); err != nil {
		t.Fatal(err)
	}
	if err := efs2.WriteFileSealed("f2", msg); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	raw1, err := d.Guest.FS().ReadFile(root, p.App.Info.DataDir+"/f1")
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := d.Guest.FS().ReadFile(root, p.App.Info.DataDir+"/f2")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw1, raw2) {
		t.Fatal("two keys produced identical ciphertext")
	}
}

// TestMiniDBOverEncFS: the embedded database runs unchanged over the
// encrypting layer — the transparent deployment the paper describes —
// and the container's copy of the database file is ciphertext.
func TestMiniDBOverEncFS(t *testing.T) {
	d, p := launchApp(t, "com.enc.db")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	db, err := minidb.Open(efs, p.App.Info.DataDir+"/enc.db")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := tx.Insert(i, []byte("sensitive-row-contents")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get(42); err != nil || string(got) != "sensitive-row-contents" {
		t.Fatalf("db get = %q, %v", got, err)
	}

	raw, err := d.Guest.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, p.App.Info.DataDir+"/enc.db")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("sensitive-row-contents")) {
		t.Fatal("database plaintext visible in the container")
	}
	if bytes.Contains(raw, []byte("MDB1")) {
		t.Fatal("even the database magic should be encrypted")
	}

	// Reopen through the layer: persistence across mounts.
	efs2, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := minidb.Open(efs2, p.App.Info.DataDir+"/enc.db")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := db2.Get(199); err != nil || string(got) != "sensitive-row-contents" {
		t.Fatalf("reopened get = %q, %v", got, err)
	}
}

// TestIagoTamperingGarblesNotLeaks: a malicious container flipping
// ciphertext bits yields garbage plaintext, not attacker-chosen content —
// the property that makes file-based Iago attacks harder (Section VII).
func TestIagoTamperingGarblesNotLeaks(t *testing.T) {
	d, p := launchApp(t, "com.enc.iago")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("cert-fingerprint=AB:CD:EF:01:23")
	if err := efs.WriteFileSealed("pin", orig); err != nil {
		t.Fatal(err)
	}
	// The compromised container rewrites the stored bytes wholesale with
	// a chosen fake certificate.
	fake := []byte("cert-fingerprint=EV:IL:EV:IL:66")
	if err := d.Guest.FS().WriteFile(abi.Cred{UID: abi.UIDRoot}, p.App.Info.DataDir+"/pin", fake, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := efs.ReadFileSealed("pin")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, fake) {
		t.Fatal("container-chosen plaintext survived decryption: Iago succeeded")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("tampering went unnoticed entirely")
	}
}

// TestAuthenticatedRoundTrip: seal + verify happy path.
func TestAuthenticatedRoundTrip(t *testing.T) {
	_, p := launchApp(t, "com.enc.auth")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("authenticated health record")
	if err := efs.WriteFileAuthenticated("rec", data); err != nil {
		t.Fatal(err)
	}
	got, err := efs.ReadFileAuthenticated("rec")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %q, %v", got, err)
	}
}

// TestAuthenticatedDetectsSubstitution: wholesale ciphertext replacement
// by a rooted container is detected, closing the gap the plain stream
// cipher leaves (garbled-but-undetected reads).
func TestAuthenticatedDetectsSubstitution(t *testing.T) {
	d, p := launchApp(t, "com.enc.sub")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := efs.WriteFileAuthenticated("pin", []byte("cert=AB:CD")); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	target := p.App.Info.DataDir + "/pin"
	if err := d.Guest.FS().WriteFile(root, target, []byte("cert=EV:IL"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := efs.ReadFileAuthenticated("pin"); !errors.Is(err, ErrTampered) {
		t.Fatalf("substitution: %v, want ErrTampered", err)
	}
}

// TestAuthenticatedDetectsBitFlipAndTruncation.
func TestAuthenticatedDetectsBitFlipAndTruncation(t *testing.T) {
	d, p := launchApp(t, "com.enc.flip")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := efs.WriteFileAuthenticated("doc", bytes.Repeat([]byte("x"), 500)); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	target := p.App.Info.DataDir + "/doc"

	// Flip one ciphertext bit.
	raw, err := d.Guest.FS().ReadFile(root, target)
	if err != nil {
		t.Fatal(err)
	}
	raw[250] ^= 0x01
	if err := d.Guest.FS().WriteFile(root, target, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := efs.ReadFileAuthenticated("doc"); !errors.Is(err, ErrTampered) {
		t.Fatalf("bit flip: %v, want ErrTampered", err)
	}

	// Restore, then truncate.
	raw[250] ^= 0x01
	if err := d.Guest.FS().WriteFile(root, target, raw[:100], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := efs.ReadFileAuthenticated("doc"); !errors.Is(err, ErrTampered) {
		t.Fatalf("truncation: %v, want ErrTampered", err)
	}
}

// TestAuthenticatedDetectsMissingSidecar: deleting the MAC is itself
// tampering.
func TestAuthenticatedDetectsMissingSidecar(t *testing.T) {
	d, p := launchApp(t, "com.enc.nosidecar")
	efs, err := Mount(p, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := efs.WriteFileAuthenticated("f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	if err := d.Guest.FS().Unlink(root, p.App.Info.DataDir+"/f.mac"); err != nil {
		t.Fatal(err)
	}
	if _, err := efs.ReadFileAuthenticated("f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("missing sidecar: %v, want ErrTampered", err)
	}
}
