// Package encfs implements the Section VII extension: a transparent
// per-app encrypting filesystem layered over the redirected file
// interface. The app's key material lives on the host (delivered with the
// app's protected code or a host-side keystore); every byte that crosses
// into the container is ciphertext, so a compromised CVM sees only
// read/write calls carrying encrypted data.
//
// The cipher is AES-128 in a seekable counter mode so random-access
// Pread/Pwrite work without rewriting neighbors. EncFS implements the
// same file interface as the raw Proc (minidb.FileIO), so the embedded
// database runs over it unchanged — the "transparent cryptographic
// file-system" of the paper's discussion.
package encfs

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"anception/internal/abi"
)

// FileIO is the underlying (redirected) file interface; anception.Proc
// satisfies it. It is structurally identical to minidb.FileIO.
type FileIO interface {
	Open(path string, flags abi.OpenFlag, mode abi.FileMode) (int, error)
	Close(fd int) error
	Pread(fd int, n int, off int64) ([]byte, error)
	Pwrite(fd int, data []byte, off int64) (int, error)
	Fsync(fd int) (int, error)
	Ftruncate(fd int, size int64) error
	Unlink(path string) error
	Stat(path string) (int64, error)
}

// KeySize is the AES key length used for per-app keys.
const KeySize = 16

// EncFS is a mounted encrypting view over a FileIO.
type EncFS struct {
	under FileIO
	block cipher.Block
	// nonce diversifies the keystream per mount (per app).
	nonce uint64
}

var _ FileIO = (*EncFS)(nil)

// Mount creates the encrypting layer with the app's key. The key never
// leaves the host side: only this wrapper (running in host-resident app
// memory) holds it.
func Mount(under FileIO, key []byte) (*EncFS, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("encfs: key must be %d bytes, got %d: %w", KeySize, len(key), abi.EINVAL)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("encfs: %w", err)
	}
	nonce := binary.LittleEndian.Uint64(key[:8]) ^ 0xA5CE_9710_0000_0001
	return &EncFS{under: under, block: block, nonce: nonce}, nil
}

// keystreamXOR XORs data with the keystream for the byte range starting
// at off. The keystream block for byte index i is
// AES(key, nonce || i/16), making the transform seekable and an involution
// (applying it twice restores the plaintext).
func (e *EncFS) keystreamXOR(data []byte, off int64) {
	var in, out [aes.BlockSize]byte
	binary.LittleEndian.PutUint64(in[:8], e.nonce)
	pos := off
	i := 0
	for i < len(data) {
		blockIdx := uint64(pos) / aes.BlockSize
		inBlock := int(uint64(pos) % aes.BlockSize)
		binary.LittleEndian.PutUint64(in[8:], blockIdx)
		e.block.Encrypt(out[:], in[:])
		for ; inBlock < aes.BlockSize && i < len(data); inBlock, i, pos = inBlock+1, i+1, pos+1 {
			data[i] ^= out[inBlock]
		}
	}
}

// Open implements FileIO.
func (e *EncFS) Open(path string, flags abi.OpenFlag, mode abi.FileMode) (int, error) {
	return e.under.Open(path, flags, mode)
}

// Close implements FileIO.
func (e *EncFS) Close(fd int) error { return e.under.Close(fd) }

// Pread implements FileIO: ciphertext in, plaintext out.
func (e *EncFS) Pread(fd int, n int, off int64) ([]byte, error) {
	data, err := e.under.Pread(fd, n, off)
	if err != nil {
		return nil, err
	}
	e.keystreamXOR(data, off)
	return data, nil
}

// Pwrite implements FileIO: plaintext in, ciphertext out. The caller's
// buffer is not modified.
func (e *EncFS) Pwrite(fd int, data []byte, off int64) (int, error) {
	enc := make([]byte, len(data))
	copy(enc, data)
	e.keystreamXOR(enc, off)
	return e.under.Pwrite(fd, enc, off)
}

// Fsync implements FileIO.
func (e *EncFS) Fsync(fd int) (int, error) { return e.under.Fsync(fd) }

// Ftruncate implements FileIO.
func (e *EncFS) Ftruncate(fd int, size int64) error { return e.under.Ftruncate(fd, size) }

// Unlink implements FileIO.
func (e *EncFS) Unlink(path string) error { return e.under.Unlink(path) }

// Stat implements FileIO (sizes are preserved by the stream cipher).
func (e *EncFS) Stat(path string) (int64, error) { return e.under.Stat(path) }

// WriteFileSealed is a convenience: create/overwrite a file with an
// encrypted copy of data.
func (e *EncFS) WriteFileSealed(path string, data []byte) error {
	fd, err := e.Open(path, abi.OWrOnly|abi.OCreat|abi.OTrunc, 0o600)
	if err != nil {
		return err
	}
	defer func() { _ = e.Close(fd) }()
	if _, err := e.Pwrite(fd, data, 0); err != nil {
		return err
	}
	return nil
}

// ReadFileSealed reads and decrypts a whole file.
func (e *EncFS) ReadFileSealed(path string) ([]byte, error) {
	size, err := e.Stat(path)
	if err != nil {
		return nil, err
	}
	fd, err := e.Open(path, abi.ORdOnly, 0)
	if err != nil {
		return nil, err
	}
	defer func() { _ = e.Close(fd) }()
	return e.Pread(fd, int(size), 0)
}
