// Package attacksurface computes the Section V-D accounting: the syscall
// attack-surface reduction, the lines of privileged code Anception
// deprivileges (framework services and kernel subsystems), and the size
// of the Anception runtime TCB itself.
package attacksurface

import (
	"fmt"
	"strings"

	"anception/internal/android"
	"anception/internal/redirect"
)

// KernelSubsystem is one kernel source subtree with its measured line
// count on Linux 3.4 (the paper's measurements).
type KernelSubsystem struct {
	Path        string
	Lines       int
	Deprivliged bool // delegated to the CVM by the redirection logic
}

// KernelInventory returns the kernel subsystems the paper measures.
// fs/ and net/ are delegated wholesale (file and network calls run in the
// container); memory management, scheduling and the core remain host
// trusted.
func KernelInventory() []KernelSubsystem {
	return []KernelSubsystem{
		{Path: "fs/", Lines: 725466, Deprivliged: true},
		{Path: "fs/ext4/", Lines: 26451, Deprivliged: true}, // subset of fs/, reported separately
		{Path: "net/", Lines: 515383, Deprivliged: true},
		{Path: "net/ipv4/", Lines: 59166, Deprivliged: true}, // subset of net/
		{Path: "mm/", Lines: 78000, Deprivliged: false},
		{Path: "kernel/ (core, sched, signals)", Lines: 132000, Deprivliged: false},
		{Path: "drivers/gpu + video (UI stack)", Lines: 410000, Deprivliged: false},
	}
}

// KernelDeprivilegedLines sums the delegated kernel code. Only the
// top-level trees count (ext4 and ipv4 are already inside fs/ and net/):
// fs/ + net/ = 1,240,849 lines, the paper's "approximately 1.2 million".
func KernelDeprivilegedLines() int {
	return 725466 + 515383
}

// FrameworkAccounting summarizes the privileged-userspace split, derived
// from the same service catalog the simulation boots.
type FrameworkAccounting struct {
	TotalLines        int
	UILines           int
	DeprivilegedLines int
	DeprivilegedFrac  float64
}

// Framework computes the framework accounting from the service catalog.
func Framework() FrameworkAccounting {
	var total, ui int
	for _, spec := range android.Catalog() {
		total += spec.LoC
		if spec.UI {
			ui += spec.LoC
		}
	}
	dep := total - ui
	return FrameworkAccounting{
		TotalLines:        total,
		UILines:           ui,
		DeprivilegedLines: dep,
		DeprivilegedFrac:  float64(dep) / float64(total),
	}
}

// RuntimeTCB describes the Anception layer's own code (Section V-D): the
// paper measures 5,219 lines of C, 2,438 of which (46.7%) marshal and
// unmarshal data.
type RuntimeTCB struct {
	TotalLines       int
	MarshalingLines  int
	BookkeepingLines int
}

// TCB returns the runtime TCB breakdown.
func TCB() RuntimeTCB {
	return RuntimeTCB{TotalLines: 5219, MarshalingLines: 2438, BookkeepingLines: 5219 - 2438}
}

// MarshalingFraction is the marshaling share of the runtime TCB.
func (t RuntimeTCB) MarshalingFraction() float64 {
	return float64(t.MarshalingLines) / float64(t.TotalLines)
}

// SyscallSurface re-exports the redirection table statistics with the
// derived host-attack-surface reduction.
type SyscallSurface struct {
	redirect.Stats
	// HostReachableFrac is the fraction of the syscall table still fully
	// serviced by the host kernel for sandboxed apps.
	HostReachableFrac float64
}

// Surface computes the syscall-surface numbers.
func Surface() SyscallSurface {
	s := redirect.TableStats()
	classified := s.Total - s.Unused
	return SyscallSurface{
		Stats:             s,
		HostReachableFrac: float64(s.Host) / float64(classified),
	}
}

// Report renders the Section V-D summary as text (used by cmd/evaluate).
func Report() string {
	var b strings.Builder
	s := Surface()
	fmt.Fprintf(&b, "Host system call interface (324 calls analyzed):\n")
	fmt.Fprintf(&b, "  redirected to CVM : %3d (%.1f%%)\n", s.Redirect, s.Percent(redirect.ClassRedirect))
	fmt.Fprintf(&b, "  host always       : %3d (%.1f%%)\n", s.Host, s.Percent(redirect.ClassHost))
	fmt.Fprintf(&b, "  split (both)      : %3d (%.1f%%)\n", s.Split, s.Percent(redirect.ClassSplit))
	fmt.Fprintf(&b, "  blocked           : %3d (%.1f%%)\n", s.Blocked, s.Percent(redirect.ClassBlocked))

	f := Framework()
	fmt.Fprintf(&b, "Privileged framework services: %d lines total\n", f.TotalLines)
	fmt.Fprintf(&b, "  UI/input/lifecycle (host)   : %d lines\n", f.UILines)
	fmt.Fprintf(&b, "  deprivileged to CVM         : %d lines (%.1f%%)\n",
		f.DeprivilegedLines, 100*f.DeprivilegedFrac)

	fmt.Fprintf(&b, "Kernel code deprivileged: fs/ %d + net/ %d = %d lines (~1.2M)\n",
		725466, 515383, KernelDeprivilegedLines())

	tcb := TCB()
	fmt.Fprintf(&b, "Anception runtime TCB: %d lines, %d marshaling (%.1f%%)\n",
		tcb.TotalLines, tcb.MarshalingLines, 100*tcb.MarshalingFraction())
	return b.String()
}
