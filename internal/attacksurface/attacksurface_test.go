package attacksurface

import (
	"math"
	"strings"
	"testing"

	"anception/internal/redirect"
)

// TestAttackSurfaceBreakdown is experiment E6: the Section V-D syscall
// percentages.
func TestAttackSurfaceBreakdown(t *testing.T) {
	s := Surface()
	if s.Total != 324 {
		t.Fatalf("total = %d", s.Total)
	}
	if got := s.Percent(redirect.ClassRedirect); got != 70.7 {
		t.Errorf("redirected = %.1f%%, want 70.7", got)
	}
	if got := s.Percent(redirect.ClassHost); got != 20.4 {
		t.Errorf("host = %.1f%%, want 20.4", got)
	}
	if got := s.Percent(redirect.ClassSplit); got != 6.5 {
		t.Errorf("split = %.1f%%, want 6.5", got)
	}
	// Paper prints 2.1 via truncation of 7/324 = 2.16%.
	if got := s.Percent(redirect.ClassBlocked); got != 2.2 {
		t.Errorf("blocked = %.1f%%, want 2.2 (paper: 2.1)", got)
	}
	if s.HostReachableFrac > 0.21 {
		t.Errorf("host-reachable fraction = %.3f, should be ~0.20", s.HostReachableFrac)
	}
}

// TestDeprivilegedLoC is experiment E7: the framework and kernel line
// counts of Section V-D.
func TestDeprivilegedLoC(t *testing.T) {
	f := Framework()
	if f.TotalLines != 181260 {
		t.Errorf("framework total = %d, want 181260", f.TotalLines)
	}
	if f.UILines != 72542 {
		t.Errorf("UI lines = %d, want 72542", f.UILines)
	}
	if f.DeprivilegedLines != 108718 {
		t.Errorf("deprivileged = %d, want 108718", f.DeprivilegedLines)
	}
	// "Anception's current implementation deprivileges approximately 60%."
	if math.Abs(f.DeprivilegedFrac-0.5997) > 0.001 {
		t.Errorf("deprivileged fraction = %.4f, want ~0.5997", f.DeprivilegedFrac)
	}
	if got := KernelDeprivilegedLines(); got != 1240849 {
		t.Errorf("kernel deprivileged = %d, want 1240849 (~1.2M)", got)
	}
}

// TestKernelInventoryConsistency checks the subsystem table against the
// paper's individual figures.
func TestKernelInventoryConsistency(t *testing.T) {
	byPath := make(map[string]KernelSubsystem)
	for _, s := range KernelInventory() {
		byPath[s.Path] = s
	}
	if byPath["fs/ext4/"].Lines != 26451 {
		t.Errorf("ext4 = %d, want 26451", byPath["fs/ext4/"].Lines)
	}
	if byPath["fs/"].Lines != 725466 {
		t.Errorf("fs = %d, want 725466", byPath["fs/"].Lines)
	}
	if byPath["net/ipv4/"].Lines != 59166 {
		t.Errorf("ipv4 = %d, want 59166", byPath["net/ipv4/"].Lines)
	}
	if byPath["net/"].Lines != 515383 {
		t.Errorf("net = %d, want 515383", byPath["net/"].Lines)
	}
	if !byPath["fs/"].Deprivliged || byPath["mm/"].Deprivliged {
		t.Error("deprivilege flags inconsistent with the design")
	}
}

// TestRuntimeTCB is experiment E11: 5,219 lines, 46.7% marshaling.
func TestRuntimeTCB(t *testing.T) {
	tcb := TCB()
	if tcb.TotalLines != 5219 || tcb.MarshalingLines != 2438 {
		t.Fatalf("tcb = %+v", tcb)
	}
	if math.Abs(tcb.MarshalingFraction()-0.467) > 0.001 {
		t.Fatalf("marshaling fraction = %.4f, want ~0.467", tcb.MarshalingFraction())
	}
	if tcb.BookkeepingLines != 5219-2438 {
		t.Fatal("bookkeeping lines inconsistent")
	}
}

func TestReportMentionsHeadlineNumbers(t *testing.T) {
	r := Report()
	for _, want := range []string{"70.7", "108718", "1240849", "5219", "46.7"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
