package hypervisor

import (
	"fmt"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/sim"
)

// GrantRef names one granted extent. It is small enough to travel in a
// scatter-gather descriptor through the data channel: the guest side
// resolves it back to the pinned host pages instead of receiving the
// bytes through chunked copies. Gen is the container boot generation the
// grant was issued against; a restart strands every outstanding ref at
// the old generation, and Resolve fails them with EHOSTDOWN rather than
// letting a completion touch pages the host may have reused.
type GrantRef struct {
	ID  uint32
	Gen uint32
	Len uint32
}

// GrantStats counts grant-table activity.
type GrantStats struct {
	// Maps counts batched map operations (one GrantMapCost each);
	// Entries counts the extents those batches installed.
	Maps    int
	Entries int
	// Revokes counts batched revoke operations (one TLB shootdown each).
	Revokes int
	// RevokedByRestart counts entries dropped by RevokeAll sweeps and by
	// the post-checkpoint half of restore-time reconciliation.
	RevokedByRestart int
	// KeptByRestore counts entries that survived a snapshot restore
	// because they were provably issued before the checkpoint was taken.
	KeptByRestore int
	// StaleRejected counts Resolve calls that named a grant from an
	// earlier boot generation.
	StaleRejected int
	// Active is the number of currently live entries.
	Active int
	// BytesGranted is the cumulative payload size mapped through the
	// table (bytes that did NOT traverse the copy channel).
	BytesGranted int64
}

type grantEntry struct {
	buf      []byte
	writable bool
	gen      int
	// issuedAt is the simulated time the grant was mapped; restore-time
	// reconciliation keeps entries issued at or before the checkpoint
	// (their guest-side PTEs are inside the restored image) and sweeps
	// everything newer.
	issuedAt time.Duration
}

// GrantTable is the page-flipping side channel of the data path (the
// Xen-style grant mechanism the tech report points at): the host pins an
// app buffer's pages and maps them into guest address space, so a bulk
// redirected call moves a fixed-size descriptor through the channel
// instead of paying CopyToGuestPerByte twice. Mapping charges one
// GrantMapCost per batch (grant-table writes plus a batched guest PTE
// install); revoking charges one GrantUnmapTLBShootdown per batch (PTE
// teardown plus the IPI broadcast). Entries are tagged with the CVM boot
// generation: a restart revokes everything, and any straggler ref from
// the old generation fails EHOSTDOWN at Resolve.
type GrantTable struct {
	cvm *CVM

	mu    sync.Mutex
	slots map[uint32]*grantEntry
	next  uint32
	stats GrantStats
}

// NewGrantTable builds an empty grant table bound to a launched CVM. The
// table shares the CVM's clock, model, and trace.
func NewGrantTable(cvm *CVM) *GrantTable {
	return &GrantTable{cvm: cvm, slots: make(map[uint32]*grantEntry)}
}

// GrantBatch pins each buffer and maps it into the guest as one batched
// update: a single GrantMapCost covers the whole scatter-gather list,
// which is why vectored calls are the natural consumers of grants. The
// writable flag marks read-style calls (the guest fills the buffer);
// write-style calls grant read-only. The returned refs are tagged with
// the current boot generation.
func (g *GrantTable) GrantBatch(bufs [][]byte, writable bool) []GrantRef {
	gen := g.cvm.Generation()
	g.cvm.clock.Advance(g.cvm.model.GrantMapCost)
	refs := make([]GrantRef, len(bufs))
	now := g.cvm.clock.Now()
	g.mu.Lock()
	g.stats.Maps++
	for i, buf := range bufs {
		g.next++
		id := g.next
		g.slots[id] = &grantEntry{buf: buf, writable: writable, gen: gen, issuedAt: now}
		refs[i] = GrantRef{ID: id, Gen: uint32(gen), Len: uint32(len(buf))}
		g.stats.Entries++
		g.stats.BytesGranted += int64(len(buf))
	}
	g.stats.Active = len(g.slots)
	g.mu.Unlock()
	if g.cvm.trace != nil {
		g.cvm.trace.Record(sim.EvGrant, "map: %d extent(s) granted (gen %d, writable=%v)", len(bufs), gen, writable)
	}
	return refs
}

// Resolve returns the pinned host bytes behind a ref, from the guest
// side of a redirected call. A ref from an earlier boot generation fails
// with EHOSTDOWN — the container it was granted to no longer exists and
// the host may have reused the pages — and an unknown current-generation
// id fails with ENXIO (revoked while the call was in flight).
func (g *GrantTable) Resolve(ref GrantRef) ([]byte, error) {
	cur := g.cvm.Generation()
	g.mu.Lock()
	defer g.mu.Unlock()
	if int(ref.Gen) < cur {
		g.stats.StaleRejected++
		if g.cvm.trace != nil {
			g.cvm.trace.Record(sim.EvGrant, "stale: grant %d from boot generation %d rejected (current %d)", ref.ID, ref.Gen, cur)
		}
		return nil, fmt.Errorf("grant %d from boot generation %d (current %d): %w", ref.ID, ref.Gen, cur, abi.EHOSTDOWN)
	}
	e, ok := g.slots[ref.ID]
	if !ok || e.gen != int(ref.Gen) {
		return nil, fmt.Errorf("grant %d not mapped: %w", ref.ID, abi.ENXIO)
	}
	return e.buf, nil
}

// RevokeBatch unmaps a batch of grants: one GrantUnmapTLBShootdown
// covers the whole list (a single IPI broadcast flushes every extent).
// Unknown ids are ignored — a restart's RevokeAll may have raced ahead.
func (g *GrantTable) RevokeBatch(refs []GrantRef) {
	g.cvm.clock.Advance(g.cvm.model.GrantUnmapTLBShootdown)
	g.mu.Lock()
	g.stats.Revokes++
	for _, ref := range refs {
		if e, ok := g.slots[ref.ID]; ok && e.gen == int(ref.Gen) {
			delete(g.slots, ref.ID)
		}
	}
	g.stats.Active = len(g.slots)
	g.mu.Unlock()
	if g.cvm.trace != nil {
		g.cvm.trace.Record(sim.EvGrant, "revoke: %d extent(s), TLB shootdown broadcast", len(refs))
	}
}

// RevokeAll drops every grant, returning how many were live. Called on
// CVM restart: the guest address space holding the mappings is gone, so
// a single shootdown (flush-all) closes the old generation. Refs still
// in flight fail EHOSTDOWN at Resolve via their generation tag.
func (g *GrantTable) RevokeAll() int {
	g.cvm.clock.Advance(g.cvm.model.GrantUnmapTLBShootdown)
	g.mu.Lock()
	n := len(g.slots)
	if n > 0 {
		g.slots = make(map[uint32]*grantEntry)
	}
	g.stats.Revokes++
	g.stats.RevokedByRestart += n
	g.stats.Active = 0
	g.mu.Unlock()
	if g.cvm.trace != nil {
		g.cvm.trace.Record(sim.EvGrant, "revoke-all: %d live grant(s) swept (boot generation %d)", n, g.cvm.Generation())
	}
	return n
}

// ReconcileRestore is the grant half of restoring a CVM from a snapshot
// taken at takenAt. Entries issued at or before the checkpoint survive:
// their guest-side PTEs are part of the restored image, so tearing them
// down would leave the restored guest holding dangling mappings. They keep
// their ORIGINAL generation tag — the owning call's deferred RevokeBatch
// matches refs by (id, gen) and must still retire them, while any stale
// in-flight Resolve from before the restore still fails EHOSTDOWN against
// the bumped generation. Entries issued after the checkpoint have no PTEs
// in the restored image and are swept like a restart would. One TLB
// shootdown covers the sweep. Returns (kept, swept).
func (g *GrantTable) ReconcileRestore(takenAt time.Duration) (kept, swept int) {
	g.cvm.clock.Advance(g.cvm.model.GrantUnmapTLBShootdown)
	g.mu.Lock()
	for id, e := range g.slots {
		if e.issuedAt <= takenAt {
			kept++
			continue
		}
		delete(g.slots, id)
		swept++
	}
	g.stats.Revokes++
	g.stats.RevokedByRestart += swept
	g.stats.KeptByRestore += kept
	g.stats.Active = len(g.slots)
	g.mu.Unlock()
	if g.cvm.trace != nil {
		g.cvm.trace.Record(sim.EvGrant, "restore-reconcile: %d grant(s) kept (pre-checkpoint), %d swept", kept, swept)
	}
	return kept, swept
}

// Active reports the number of live entries.
func (g *GrantTable) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.slots)
}

// Stats snapshots the counters.
func (g *GrantTable) Stats() GrantStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}
