package hypervisor

import (
	"errors"
	"sync"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

func TestGrantBatchResolveRoundTrip(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)

	bufs := [][]byte{[]byte("alpha"), []byte("beta")}
	refs := g.GrantBatch(bufs, true)
	if len(refs) != 2 {
		t.Fatalf("refs = %d", len(refs))
	}
	for i, ref := range refs {
		if int(ref.Len) != len(bufs[i]) {
			t.Fatalf("ref %d len = %d", i, ref.Len)
		}
		got, err := g.Resolve(ref)
		if err != nil {
			t.Fatal(err)
		}
		// Zero-copy means aliasing, not equality: the resolved slice must
		// be the granted buffer itself.
		if &got[0] != &bufs[i][0] {
			t.Fatalf("ref %d resolved to a copy", i)
		}
	}

	st := g.Stats()
	if st.Maps != 1 || st.Entries != 2 || st.Active != 2 || st.BytesGranted != 9 {
		t.Fatalf("stats after map: %+v", st)
	}
}

func TestGrantBatchChargesOneMapPerBatch(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)
	model := c.model

	before := c.clock.Now()
	refs := g.GrantBatch([][]byte{make([]byte, 4096), make([]byte, 4096), make([]byte, 4096)}, false)
	if got := c.clock.Now() - before; got != model.GrantMapCost {
		t.Fatalf("3-entry map charged %v, want one GrantMapCost (%v)", got, model.GrantMapCost)
	}

	before = c.clock.Now()
	g.RevokeBatch(refs)
	if got := c.clock.Now() - before; got != model.GrantUnmapTLBShootdown {
		t.Fatalf("3-entry revoke charged %v, want one shootdown (%v)", got, model.GrantUnmapTLBShootdown)
	}
	if g.Active() != 0 {
		t.Fatalf("active = %d after revoke", g.Active())
	}
}

func TestGrantResolveAfterRevokeIsENXIO(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)
	refs := g.GrantBatch([][]byte{make([]byte, 8)}, false)
	g.RevokeBatch(refs)
	if _, err := g.Resolve(refs[0]); !errors.Is(err, abi.ENXIO) {
		t.Fatalf("revoked grant resolved with err=%v, want ENXIO", err)
	}
	// Revoking again is harmless: RevokeAll may have raced ahead.
	g.RevokeBatch(refs)
}

func TestGrantStaleGenerationIsEHOSTDOWN(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)
	refs := g.GrantBatch([][]byte{make([]byte, 4096)}, true)

	if err := c.Relaunch(); err != nil {
		t.Fatal(err)
	}
	g.RevokeAll()

	if _, err := g.Resolve(refs[0]); !errors.Is(err, abi.EHOSTDOWN) {
		t.Fatalf("stale grant resolved with err=%v, want EHOSTDOWN", err)
	}
	st := g.Stats()
	if st.StaleRejected != 1 || st.RevokedByRestart != 1 || st.Active != 0 {
		t.Fatalf("stats after restart: %+v", st)
	}

	// A fresh grant from the new generation works.
	fresh := g.GrantBatch([][]byte{make([]byte, 16)}, true)
	if _, err := g.Resolve(fresh[0]); err != nil {
		t.Fatalf("new-generation grant: %v", err)
	}
}

// TestGrantConcurrentMapRevokeDuringRelaunch hammers GrantBatch /
// Resolve / RevokeBatch from several goroutines while the CVM relaunches
// and sweeps the table. Every Resolve outcome must be one of: the pinned
// buffer itself, ENXIO (revoked in flight), or EHOSTDOWN (stale
// generation) — never a panic, a foreign buffer, or a silent success
// against a dead generation. Run under -race in CI.
func TestGrantConcurrentMapRevokeDuringRelaunch(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)

	stop := make(chan struct{})
	badErr := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for {
				select {
				case <-stop:
					return
				default:
				}
				refs := g.GrantBatch([][]byte{buf}, i%2 == 0)
				got, err := g.Resolve(refs[0])
				switch {
				case err == nil:
					if &got[0] != &buf[0] {
						select {
						case badErr <- errors.New("resolve returned a foreign buffer"):
						default:
						}
					}
				case errors.Is(err, abi.ENXIO), errors.Is(err, abi.EHOSTDOWN):
					// Revoked or stranded by a concurrent restart: fine.
				default:
					select {
					case badErr <- err:
					default:
					}
				}
				g.RevokeBatch(refs)
			}
		}(i)
	}

	for r := 0; r < 5; r++ {
		if err := c.Relaunch(); err != nil {
			t.Fatal(err)
		}
		g.RevokeAll()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}
	// Quiesced: every batch was revoked by its owner or a sweep.
	if g.RevokeAll(); g.Active() != 0 {
		t.Fatalf("active = %d after quiesce", g.Active())
	}
}

func TestGrantRevokeAllSweepsEverything(t *testing.T) {
	c := launchTestCVM(t, kernel.NewPhysical(1<<30))
	g := NewGrantTable(c)
	g.GrantBatch([][]byte{make([]byte, 1), make([]byte, 2)}, false)
	g.GrantBatch([][]byte{make([]byte, 3)}, true)
	if n := g.RevokeAll(); n != 3 {
		t.Fatalf("RevokeAll swept %d, want 3", n)
	}
	if g.Active() != 0 {
		t.Fatalf("active = %d", g.Active())
	}
	// An empty sweep still completes (restart with nothing in flight).
	if n := g.RevokeAll(); n != 0 {
		t.Fatalf("second RevokeAll swept %d", n)
	}
}
