package hypervisor

import (
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

func launchTestCVM(t *testing.T, phys *kernel.Physical) *CVM {
	t.Helper()
	clock := sim.NewClock()
	c, err := Launch(phys, Config{
		Clock:              clock,
		Model:              sim.DefaultLatencyModel(),
		Trace:              sim.NewTrace(clock),
		MemoryBytes:        64 << 20, // the paper's 64 MB assignment
		KernelReserveBytes: 15 << 20,
		ChannelPages:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLaunchReserves64MB(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30) // 1 GB device
	c := launchTestCVM(t, phys)
	if got := c.Region().Frames(); got != (64<<20)/abi.PageSize {
		t.Fatalf("region frames = %d", got)
	}
	if !c.ChannelRemapped() || len(c.ChannelPages()) != 16 {
		t.Fatal("channel pages not set up")
	}
}

func TestLaunchRejectsZeroMemory(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	_, err := Launch(phys, Config{Clock: sim.NewClock(), Model: sim.DefaultLatencyModel(), MemoryBytes: 0})
	if !errors.Is(err, abi.EINVAL) {
		t.Fatalf("err = %v, want EINVAL", err)
	}
}

func TestLaunchFailsWhenMemoryTooSmall(t *testing.T) {
	phys := kernel.NewPhysical(8 << 20) // 8 MB device cannot host a 64 MB CVM
	_, err := Launch(phys, Config{Clock: sim.NewClock(), Model: sim.DefaultLatencyModel(), MemoryBytes: 64 << 20})
	if !errors.Is(err, abi.ENOMEM) {
		t.Fatalf("err = %v, want ENOMEM", err)
	}
}

func TestWorldSwitchAccounting(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	c, err := Launch(phys, Config{Clock: clock, Model: model, MemoryBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	c.InjectInterrupt()
	c.Hypercall()
	if got := clock.Now() - before; got != 2*model.WorldSwitch {
		t.Fatalf("two switches cost %v, want %v", got, 2*model.WorldSwitch)
	}
	in, out := c.WorldSwitches()
	if in != 1 || out != 1 {
		t.Fatalf("switches = (%d, %d)", in, out)
	}
}

func TestChannelPagesInsideGuestRegion(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	for _, f := range c.ChannelPages() {
		if !c.Region().Contains(f) {
			t.Fatalf("channel frame %d outside guest region", f)
		}
	}
}

func TestGuestAllocatorConfined(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	alloc := c.GuestAllocator()
	f, err := alloc.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Region().Contains(f) {
		t.Fatalf("guest frame %d outside region", f)
	}
	// The guest accessor cannot read a host frame.
	hostAlloc := phys.NewAllocator("host", kernel.Region{})
	hf, err := hostAlloc.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := phys.ReadFrame(c.Region(), hf, 0, make([]byte, 1)); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest read of host frame: %v, want EPERM", err)
	}
}

func TestMemoryStatsShape(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	// Simulate ~25 MB of proxy/service pages, the paper's active set.
	activePages := (25460 * 1024) / abi.PageSize
	stats := c.Memory(activePages)
	if stats.TotalKB != 65536 {
		t.Fatalf("total = %d KB, want 65536", stats.TotalKB)
	}
	// Paper: 49,228 KB available; our reserve model must land close
	// (within 4 MB).
	if stats.AvailableKB < 45000 || stats.AvailableKB > 53000 {
		t.Fatalf("available = %d KB, want ~49228", stats.AvailableKB)
	}
	// Paper: ~51%% of assigned memory remains free under load.
	freeFrac := float64(stats.FreeKB) / float64(stats.AvailableKB)
	if freeFrac < 0.40 || freeFrac > 0.60 {
		t.Fatalf("free fraction = %.2f, want ~0.5", freeFrac)
	}
}

func TestLaunchChargesRemapCost(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	clock := sim.NewClock()
	model := sim.DefaultLatencyModel()
	if _, err := Launch(phys, Config{Clock: clock, Model: model, MemoryBytes: 64 << 20, ChannelPages: 8}); err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Now(), 8*model.PageRemap; got != want {
		t.Fatalf("remap setup cost %v, want %v", got, want)
	}
}

func TestRelaunchRebuildsChannelAndWipesFrames(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)

	// Dirty a guest frame and write through the channel.
	alloc := c.GuestAllocator()
	f, err := alloc.Alloc(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := phys.WriteFrame(c.Region(), f, 0, []byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	oldPages := c.ChannelPages()

	if err := c.Relaunch(); err != nil {
		t.Fatal(err)
	}
	// Channel rebuilt with the same page count, inside the region.
	newPages := c.ChannelPages()
	if len(newPages) != len(oldPages) {
		t.Fatalf("channel pages = %d, want %d", len(newPages), len(oldPages))
	}
	for _, p := range newPages {
		if !c.Region().Contains(p) {
			t.Fatalf("channel page %d outside region", p)
		}
	}
	if !c.ChannelRemapped() {
		t.Fatal("channel not remapped")
	}
	// The dirtied frame is wiped and back in the guest-kernel pool.
	if phys.Owner(f).Kind != kernel.FrameGuestKernel {
		t.Fatalf("frame owner after relaunch = %+v", phys.Owner(f))
	}
	buf := make([]byte, 9)
	if err := phys.ReadFrame(c.Region(), f, 0, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("frame contents survived relaunch: %q", buf)
		}
	}
	// World-switch counters persist across restarts (cumulative).
	c.InjectInterrupt()
	in, _ := c.WorldSwitches()
	if in != 1 {
		t.Fatalf("switches in = %d", in)
	}
}
