package hypervisor

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// dirtyGuestFrame allocates one guest frame and writes recognizable bytes
// into it, returning the frame and its contents.
func dirtyGuestFrame(t *testing.T, c *CVM, pid int, fill byte) (kernel.FrameID, []byte) {
	t.Helper()
	f, err := c.GuestAllocator().Alloc(pid)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{fill}, 64)
	if err := c.phys.WriteFrame(c.region, f, 0, data); err != nil {
		t.Fatal(err)
	}
	return f, data
}

func TestSnapshotRoundTripRestoresFrameState(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	f, want := dirtyGuestFrame(t, c, 100, 0xaa)

	snap := NewSnapshotter(c, SnapshotterConfig{}).Checkpoint()
	if snap.Generation != c.Generation() {
		t.Fatalf("snapshot gen = %d, cvm gen = %d", snap.Generation, c.Generation())
	}

	// Scribble over the checkpointed frame, then restore.
	if err := c.phys.WriteFrame(c.region, f, 0, bytes.Repeat([]byte{0x55}, 64)); err != nil {
		t.Fatal(err)
	}
	genBefore := c.Generation()
	restored, err := c.RestoreFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("restore rewrote no frames despite a dirtied one")
	}
	if c.Generation() != genBefore+1 {
		t.Fatalf("generation after restore = %d, want %d", c.Generation(), genBefore+1)
	}
	got := make([]byte, len(want))
	if err := c.phys.ReadFrame(c.region, f, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frame after restore = %x, want %x", got[:8], want[:8])
	}
	if !c.ChannelRemapped() || len(c.ChannelPages()) == 0 {
		t.Fatal("channel mapping did not survive the restore")
	}
}

func TestRestoreRewritesOnlyDirtyFrames(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	f, _ := dirtyGuestFrame(t, c, 100, 0xaa)
	dirtyGuestFrame(t, c, 101, 0xbb) // second frame, untouched after the checkpoint

	snap := NewSnapshotter(c, SnapshotterConfig{}).Checkpoint()
	if err := c.phys.WriteFrame(c.region, f, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	restored, err := c.RestoreFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d frames, want exactly the 1 dirtied since the checkpoint", restored)
	}
}

func TestSnapshotDirtyTrackingBetweenCheckpoints(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	s := NewSnapshotter(c, SnapshotterConfig{})
	dirtyGuestFrame(t, c, 100, 0xaa)
	s.Checkpoint()
	first := s.Stats().DirtyFrames

	f, _ := dirtyGuestFrame(t, c, 101, 0xbb)
	if err := c.phys.WriteFrame(c.region, f, 8, []byte{7}); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	// Second checkpoint: exactly the alloc+writes above moved versions —
	// one new frame, regardless of how many times it was written.
	if got := s.Stats().DirtyFrames - first; got != 1 {
		t.Fatalf("second checkpoint copied %d dirty frames, want 1", got)
	}
}

func TestSnapshotCorruptImageFailsEIO(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	s := NewSnapshotter(c, SnapshotterConfig{})
	s.Checkpoint()
	s.Corrupt()
	if !s.Usable() {
		t.Fatal("corruption is silent until the restore proves the checksum")
	}
	err := s.Restore()
	if !errors.Is(err, abi.EIO) {
		t.Fatalf("restore of corrupt image: err = %v, want EIO", err)
	}
	st := s.Stats()
	if st.ChecksumRejects != 1 || st.Restores != 0 {
		t.Fatalf("stats = %+v, want 1 checksum reject, 0 restores", st)
	}
	if s.Latest() != nil {
		t.Fatal("corrupt checkpoint not invalidated after the failed restore")
	}
}

func TestSnapshotStaleAfterRelaunch(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	s := NewSnapshotter(c, SnapshotterConfig{})
	s.Checkpoint()
	if err := c.Relaunch(); err != nil {
		t.Fatal(err)
	}
	if s.Usable() {
		t.Fatal("checkpoint from the previous boot generation reported usable")
	}
	err := s.Restore()
	if !errors.Is(err, abi.ESTALE) {
		t.Fatalf("restore across a relaunch: err = %v, want ESTALE", err)
	}
	if s.Stats().StaleRejects != 1 {
		t.Fatalf("StaleRejects = %d, want 1", s.Stats().StaleRejects)
	}
}

func TestSnapshotMaxAgeEnforced(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	s := NewSnapshotter(c, SnapshotterConfig{MaxAge: time.Millisecond})
	s.Checkpoint()
	c.clock.Advance(2 * time.Millisecond)
	if s.Usable() {
		t.Fatal("over-age checkpoint reported usable")
	}
	if err := s.Restore(); !errors.Is(err, abi.ESTALE) {
		t.Fatalf("restore of over-age checkpoint: err = %v, want ESTALE", err)
	}
}

func TestMaybeCheckpointThrottlesToInterval(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	s := NewSnapshotter(c, SnapshotterConfig{Interval: 10 * time.Millisecond})
	if !s.MaybeCheckpoint() {
		t.Fatal("first MaybeCheckpoint must seal")
	}
	if s.MaybeCheckpoint() {
		t.Fatal("second MaybeCheckpoint inside the interval must not seal")
	}
	c.clock.Advance(11 * time.Millisecond)
	if !s.MaybeCheckpoint() {
		t.Fatal("MaybeCheckpoint after the interval must seal")
	}
	if got := s.Stats().Checkpoints; got != 2 {
		t.Fatalf("Checkpoints = %d, want 2", got)
	}
}

func TestRestoreChargesSnapshotCosts(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	f, _ := dirtyGuestFrame(t, c, 100, 0xaa)
	snap := NewSnapshotter(c, SnapshotterConfig{}).Checkpoint()
	if err := c.phys.WriteFrame(c.region, f, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	before := c.clock.Now()
	restored, err := c.RestoreFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := c.model.SnapshotRestoreFixed + time.Duration(restored)*c.model.SnapshotRestorePerFrame
	if got := c.clock.Now() - before; got != want {
		t.Fatalf("restore charged %v, want %v", got, want)
	}
}

// TestRelaunchAtomicity pins the partial-failure contract: a relaunch that
// cannot rebuild its channel pages must leave the generation unchanged and
// the channel unmapped — never a bumped generation over a half-built
// channel. (The failure is forced by inflating the channel demand past the
// region; real launches can only hit this through allocator exhaustion.)
func TestRelaunchAtomicity(t *testing.T) {
	phys := kernel.NewPhysical(1 << 30)
	c := launchTestCVM(t, phys)
	genBefore := c.Generation()

	c.mu.Lock()
	savedChannel := c.nChannel
	c.nChannel = c.region.Frames() + 1
	c.mu.Unlock()

	if err := c.Relaunch(); err == nil {
		t.Fatal("relaunch with impossible channel demand succeeded")
	}
	if c.Generation() != genBefore {
		t.Fatalf("generation bumped to %d by a FAILED relaunch", c.Generation())
	}
	if c.ChannelRemapped() {
		t.Fatal("channel reported mapped after a failed relaunch")
	}

	// Restoring the real demand, the next relaunch fully recovers.
	c.mu.Lock()
	c.nChannel = savedChannel
	c.mu.Unlock()
	if err := c.Relaunch(); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != genBefore+1 {
		t.Fatalf("generation = %d after one successful relaunch, want %d", c.Generation(), genBefore+1)
	}
	if !c.ChannelRemapped() || len(c.ChannelPages()) != savedChannel {
		t.Fatalf("channel pages = %d, want %d", len(c.ChannelPages()), savedChannel)
	}
	for _, f := range c.ChannelPages() {
		if !c.region.Contains(f) {
			t.Fatalf("channel frame %d outside guest region", f)
		}
	}
}

// FuzzDecodeSnapshot hardens the image decoder the way FuzzDecodeSG
// hardens the scatter-gather decoder: arbitrary bytes must produce a clean
// error or a structurally valid image — never a panic, never unbounded
// allocation.
func FuzzDecodeSnapshot(f *testing.F) {
	phys := kernel.NewPhysical(1 << 30)
	clock := sim.NewClock()
	c, err := Launch(phys, Config{
		Clock: clock, Model: sim.DefaultLatencyModel(),
		MemoryBytes: 16 << 20, KernelReserveBytes: 4 << 20, ChannelPages: 4,
	})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := c.GuestAllocator().Alloc(100); err != nil {
		f.Fatal(err)
	}
	owners, datas, _ := c.phys.CaptureRegion(c.region)
	valid := encodeSnapshotImage(c.Generation(), clock.Now(), c.region, c.ChannelPages(), owners, datas)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated checksum
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped) // checksum mismatch
	f.Add([]byte{})
	f.Add([]byte("ASNP"))

	f.Fuzz(func(t *testing.T, img []byte) {
		si, err := decodeSnapshotImage(img)
		if err != nil {
			if !errors.Is(err, abi.EIO) && !errors.Is(err, abi.EINVAL) {
				t.Fatalf("decoder error vocabulary violated: %v", err)
			}
			return
		}
		// A decoded image must be internally consistent.
		if si.NFrames < 0 || si.NFrames > maxSnapshotFrames {
			t.Fatalf("NFrames = %d escaped bounds", si.NFrames)
		}
		if len(si.Owners) != si.NFrames || len(si.Datas) != si.NFrames {
			t.Fatalf("vectors %d/%d disagree with NFrames %d", len(si.Owners), len(si.Datas), si.NFrames)
		}
		end := si.RegionStart + kernel.FrameID(si.NFrames)
		for _, fr := range si.Channel {
			if fr < si.RegionStart || fr >= end {
				t.Fatalf("channel frame %d outside [%d, %d)", fr, si.RegionStart, end)
			}
		}
		for i, o := range si.Owners {
			if o.Kind < kernel.FrameFree || o.Kind > kernel.FrameProcess {
				t.Fatalf("frame %d owner kind %d out of range", i, o.Kind)
			}
			if len(si.Datas[i]) > abi.PageSize {
				t.Fatalf("frame %d data %d bytes > page", i, len(si.Datas[i]))
			}
		}
	})
}
