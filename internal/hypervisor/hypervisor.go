// Package hypervisor implements the lguest-style virtualization substrate
// (Section IV): a deprivileged container VM with a fixed physical-memory
// assignment, a hypercall/interrupt signaling pair, and remapping of guest
// kernel pages into host kernel space for the data channel.
//
// The CVM cannot map or touch memory outside its assigned region — that is
// enforced by the kernel.Physical region checks, and this package is where
// the region is carved out and handed to the guest kernel's allocator.
package hypervisor

import (
	"fmt"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// CVM is the container virtual machine: the deprivileged guest the
// Anception layer delegates system calls to.
type CVM struct {
	phys   *kernel.Physical
	region kernel.Region
	clock  *sim.Clock
	model  sim.LatencyModel
	trace  *sim.Trace
	label  string

	mu       sync.Mutex
	nChannel int
	// kernelReserve is the number of frames the guest kernel itself
	// occupies (text, data, page tables); they are unavailable to guest
	// processes and matter for the Section VI-C memory accounting.
	kernelReserve int
	switchesIn    int // host -> guest (interrupt injection)
	switchesOut   int // guest -> host (hypercall)
	channelPages  []kernel.FrameID
	remapped      bool
	// generation counts boots of this container: 1 after Launch, +1 per
	// successful Relaunch or snapshot restore. Recovery tooling reports it
	// as the restart count.
	generation int
}

// Config sizes the container.
type Config struct {
	Clock *sim.Clock
	Model sim.LatencyModel
	Trace *sim.Trace
	// MemoryBytes is the CVM's physical assignment (64 MB in the paper).
	MemoryBytes int64
	// KernelReserveBytes approximates the guest kernel's own footprint.
	KernelReserveBytes int64
	// ChannelPages is the size of the shared data channel in pages.
	ChannelPages int
	// Label names the container in traces and fleet bookkeeping
	// (e.g. "shard-3"); empty means the lone-CVM default "cvm".
	Label string
}

// Launch reserves the guest's memory region and sets up the communication
// channel, mirroring what the lguest launcher does.
func Launch(phys *kernel.Physical, cfg Config) (*CVM, error) {
	frames := int(cfg.MemoryBytes / abi.PageSize)
	if frames <= 0 {
		return nil, fmt.Errorf("launch cvm: zero memory assignment: %w", abi.EINVAL)
	}
	region, err := phys.ReserveRegion(frames)
	if err != nil {
		return nil, fmt.Errorf("launch cvm: %w", err)
	}
	label := cfg.Label
	if label == "" {
		label = "cvm"
	}
	c := &CVM{
		phys:          phys,
		region:        region,
		clock:         cfg.Clock,
		model:         cfg.Model,
		trace:         cfg.Trace,
		label:         label,
		nChannel:      cfg.ChannelPages,
		kernelReserve: int(cfg.KernelReserveBytes / abi.PageSize),
		generation:    1,
	}
	if cfg.ChannelPages > 0 {
		// The channel lives in guest kernel pages remapped into host
		// kernel space with kmap (Figure 4). Remapping is a one-time
		// setup cost per page.
		alloc := phys.NewAllocator("cvm-channel", region)
		for i := 0; i < cfg.ChannelPages; i++ {
			f, err := alloc.Alloc(-1)
			if err != nil {
				return nil, fmt.Errorf("launch cvm: channel page %d: %w", i, err)
			}
			c.channelPages = append(c.channelPages, f)
		}
		c.clock.Advance(time.Duration(cfg.ChannelPages) * cfg.Model.PageRemap)
		c.remapped = true
	}
	if c.trace != nil {
		c.trace.Record(sim.EvLifecycle, "cvm launched: %d frames (%d KB), %d channel pages",
			region.Frames(), region.Frames()*abi.PageSize/1024, len(c.channelPages))
	}
	return c, nil
}

// Relaunch reboots the container: every frame in its region is wiped and
// returned to the guest kernel, and the data channel is rebuilt. The
// caller boots a fresh guest kernel on top. Used after a container crash
// ("such attacks are likely to be noticed quickly", Section II — a
// crashed CVM is simply restarted).
//
// Relaunch commits atomically: the replacement channel is allocated in
// full before the channel pages, remap flag, and generation bump are
// installed together. A mid-relaunch channel-page allocation failure
// therefore leaves the generation unchanged and the channel consistently
// torn down (the wipe killed it), never a generation-bumped container
// with remapped=false — the watchdog's retry relaunches from a blank but
// consistent container.
func (c *CVM) Relaunch() error {
	c.phys.ResetRegion(c.region)
	c.mu.Lock()
	n := c.nChannel
	c.channelPages = nil
	c.remapped = false
	c.mu.Unlock()
	var pages []kernel.FrameID
	if n > 0 {
		alloc := c.phys.NewAllocator("cvm-channel", c.region)
		pages = make([]kernel.FrameID, 0, n)
		for i := 0; i < n; i++ {
			f, err := alloc.Alloc(-1)
			if err != nil {
				return fmt.Errorf("relaunch cvm: channel page %d: %w", i, err)
			}
			pages = append(pages, f)
		}
		c.clock.Advance(time.Duration(n) * c.model.PageRemap)
	}
	c.mu.Lock()
	c.channelPages = pages
	c.remapped = n > 0
	c.generation++
	c.mu.Unlock()
	if c.trace != nil {
		c.trace.Record(sim.EvLifecycle, "cvm relaunched: %d frames wiped", c.region.Frames())
	}
	return nil
}

// Region returns the guest's physical confinement region.
func (c *CVM) Region() kernel.Region { return c.region }

// GuestAllocator returns a frame allocator confined to the guest region,
// for the guest kernel to hand to its processes.
func (c *CVM) GuestAllocator() *kernel.Allocator {
	return c.phys.NewAllocator("cvm", c.region)
}

// ChannelPages returns the shared channel's frames (remapped into host
// kernel space).
func (c *CVM) ChannelPages() []kernel.FrameID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]kernel.FrameID, len(c.channelPages))
	copy(out, c.channelPages)
	return out
}

// ChannelPagesRO returns the channel frame slice without copying. The
// slice is replaced wholesale by Relaunch and never mutated in place, so a
// reader holding a stale slice sees a consistent (old-generation) channel,
// never a torn one. Hot paths (the heartbeat, the redirection fast path)
// use this to stay allocation-free; callers must not modify the slice.
func (c *CVM) ChannelPagesRO() []kernel.FrameID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.channelPages
}

// ChannelRemapped reports whether the kmap setup completed.
func (c *CVM) ChannelRemapped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remapped
}

// WriteChannelFrame stores data into a channel frame. The host side may do
// this despite the frame being guest-owned because the frame was remapped
// into host kernel space at launch (the kmap of Figure 4); the region
// check is therefore performed against the guest region, which by
// construction contains every channel frame.
func (c *CVM) WriteChannelFrame(f kernel.FrameID, data []byte) error {
	if !c.region.Contains(f) {
		return fmt.Errorf("channel frame %d outside guest region: %w", f, abi.EINVAL)
	}
	return c.phys.WriteFrame(c.region, f, 0, data)
}

// ReadChannelFrame copies a channel frame's head into buf.
func (c *CVM) ReadChannelFrame(f kernel.FrameID, buf []byte) error {
	if !c.region.Contains(f) {
		return fmt.Errorf("channel frame %d outside guest region: %w", f, abi.EINVAL)
	}
	return c.phys.ReadFrame(c.region, f, 0, buf)
}

// InjectInterrupt signals the guest from the host (host -> guest world
// switch). The returned function must be called to model the matching
// guest-side handling epilogue; in practice callers just sequence their
// guest work after this call.
func (c *CVM) InjectInterrupt() {
	c.clock.Advance(c.model.WorldSwitch)
	c.mu.Lock()
	c.switchesIn++
	c.mu.Unlock()
	if c.trace != nil {
		c.trace.Record(sim.EvWorldSwitch, "host->guest (interrupt injection)")
	}
}

// Hypercall signals the host from the guest (guest -> host world switch).
func (c *CVM) Hypercall() {
	c.clock.Advance(c.model.WorldSwitch)
	c.mu.Lock()
	c.switchesOut++
	c.mu.Unlock()
	if c.trace != nil {
		c.trace.Record(sim.EvWorldSwitch, "guest->host (hypercall)")
	}
}

// Label names the container: "cvm" for the lone-CVM configuration,
// "shard-N" under a fleet.
func (c *CVM) Label() string { return c.label }

// Generation reports how many times this container has booted: 1 after
// Launch, incremented by each Relaunch.
func (c *CVM) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// WorldSwitches reports the (in, out) switch counts since launch.
func (c *CVM) WorldSwitches() (in, out int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.switchesIn, c.switchesOut
}

// MemoryStats summarizes the container's memory for the Section VI-C
// experiment.
type MemoryStats struct {
	TotalKB     int // physical assignment
	AvailableKB int // total minus guest kernel reserve and channel
	ActiveKB    int // in use by guest processes
	FreeKB      int // available minus active
}

// Memory computes the container's memory statistics given the guest
// kernel's resident process pages.
func (c *CVM) Memory(guestProcessPages int) MemoryStats {
	c.mu.Lock()
	reserve := c.kernelReserve + len(c.channelPages)
	c.mu.Unlock()
	total := c.region.Frames() * abi.PageSize / 1024
	avail := (c.region.Frames() - reserve) * abi.PageSize / 1024
	active := guestProcessPages * abi.PageSize / 1024
	return MemoryStats{
		TotalKB:     total,
		AvailableKB: avail,
		ActiveKB:    active,
		FreeKB:      avail - active,
	}
}
