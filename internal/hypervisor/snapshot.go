package hypervisor

// Snapshot/restore: periodic copy-on-write checkpoints of a healthy CVM
// and a warm restore path that rewinds the container to the last checkpoint
// instead of cold-rebooting it. The paper's recovery story ("such attacks
// are likely to be noticed quickly ... a crashed CVM is simply restarted",
// Section II) leaves MTTR bounded below by a full guest reboot plus the
// watchdog's backoff; checkpointing a known-good image lets the supervisor
// rewind in microseconds and is the substrate for live CVM upgrades.
//
// Dirty tracking is frame-level and shadow-free: kernel.Physical keeps a
// per-frame mutation counter, the checkpoint records the version vector of
// the guest region, and both the checkpoint cost (frames copied since the
// previous checkpoint) and the restore cost (frames that diverged since
// capture) scale with the number of dirty frames, not the region size.
//
// The checkpoint image is a self-describing byte encoding sealed with an
// FNV-64a checksum so that a corrupted image is detected at restore time
// and the supervisor provably falls back to a cold restart. The decoder is
// hardened against malformed input (fuzzed like the scatter-gather
// decoder): every length is bounds-checked before allocation and trailing
// garbage is rejected.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// snapshotMagic brands a checkpoint image ("Anception SNaPshot").
var snapshotMagic = []byte{'A', 'S', 'N', 'P'}

// snapshotVersion is the image format version.
const snapshotVersion = 1

// Decoder hardening bounds. A region is at most a few hundred MB of 4 KiB
// frames; anything claiming more is malformed, not big.
const (
	maxSnapshotFrames     = 1 << 20 // 4 GiB of guest memory
	maxSnapshotKernelName = 256
)

// Snapshot is one sealed checkpoint of a healthy container: the encoded
// image plus the frame-version baseline captured alongside it. The version
// vector lives outside the checksummed image deliberately — it indexes the
// host's dirty-tracking bookkeeping, not guest state, and corrupting it
// can only cause extra frame rewrites, never a wrong restore.
type Snapshot struct {
	// Generation is the boot generation the checkpoint was taken at. A
	// restore requires the container to still be on this generation;
	// anything else means a cold reboot already happened and the image is
	// stale (ESTALE).
	Generation int
	// TakenAt is the simulated time of capture, for staleness policy.
	TakenAt time.Duration
	// Image is the encoded, checksummed checkpoint.
	Image []byte
	// versions is the per-frame version baseline at capture, indexed by
	// region offset; restore rewrites only frames whose counter moved.
	versions []uint64
}

// snapshotImage is the decoded form of a checkpoint image: dense per-frame
// owner/content vectors ready for kernel.(*Physical).RestoreRegion.
type snapshotImage struct {
	Generation  int
	TakenAt     time.Duration
	RegionStart kernel.FrameID
	NFrames     int
	Channel     []kernel.FrameID
	Owners      []kernel.FrameOwner
	Datas       [][]byte
}

// encodeSnapshotImage seals a captured region state into the image format.
// Frames in the default post-reset state (guest-kernel-owned, never
// written) are elided; the decoder re-expands them, so image size scales
// with the guest's touched footprint.
func encodeSnapshotImage(gen int, takenAt time.Duration, region kernel.Region,
	channel []kernel.FrameID, owners []kernel.FrameOwner, datas [][]byte) []byte {
	buf := append([]byte(nil), snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(gen))
	buf = binary.AppendUvarint(buf, uint64(takenAt))
	buf = binary.AppendUvarint(buf, uint64(region.Start))
	buf = binary.AppendUvarint(buf, uint64(region.Frames()))
	buf = binary.AppendUvarint(buf, uint64(len(channel)))
	for _, f := range channel {
		buf = binary.AppendUvarint(buf, uint64(f))
	}
	// Sparse frame records: only frames that differ from the post-reset
	// default (guest-kernel owner, nil contents).
	nRecords := 0
	for i := range owners {
		if !defaultFrameState(owners[i], datas[i]) {
			nRecords++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(nRecords))
	for i := range owners {
		if defaultFrameState(owners[i], datas[i]) {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.AppendUvarint(buf, uint64(owners[i].Kind))
		buf = binary.AppendVarint(buf, int64(owners[i].PID))
		buf = binary.AppendUvarint(buf, uint64(len(owners[i].Kernel)))
		buf = append(buf, owners[i].Kernel...)
		buf = binary.AppendUvarint(buf, uint64(len(datas[i])))
		buf = append(buf, datas[i]...)
	}
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf) // appends the 8-byte big-endian checksum
}

func defaultFrameState(o kernel.FrameOwner, data []byte) bool {
	return o == (kernel.FrameOwner{Kind: kernel.FrameGuestKernel}) && data == nil
}

// decodeSnapshotImage verifies and decodes a checkpoint image. A checksum
// mismatch returns EIO (the image rotted); any structural violation —
// short buffer, unbounded count, out-of-order record, trailing garbage —
// returns EINVAL (the image was never valid).
func decodeSnapshotImage(img []byte) (*snapshotImage, error) {
	if len(img) < len(snapshotMagic)+1+8 {
		return nil, fmt.Errorf("snapshot image: %d bytes is shorter than any valid image: %w", len(img), abi.EINVAL)
	}
	body, sum := img[:len(img)-8], img[len(img)-8:]
	h := fnv.New64a()
	h.Write(body)
	if binary.BigEndian.Uint64(sum) != h.Sum64() {
		return nil, fmt.Errorf("snapshot image: checksum mismatch: %w", abi.EIO)
	}
	for i, b := range snapshotMagic {
		if body[i] != b {
			return nil, fmt.Errorf("snapshot image: bad magic: %w", abi.EINVAL)
		}
	}
	if body[len(snapshotMagic)] != snapshotVersion {
		return nil, fmt.Errorf("snapshot image: unknown format version %d: %w", body[len(snapshotMagic)], abi.EINVAL)
	}
	d := &snapshotDecoder{buf: body, off: len(snapshotMagic) + 1}
	gen := d.uvarint("generation")
	takenAt := d.uvarint("taken-at")
	regionStart := d.uvarint("region start")
	nFrames := d.uvarint("frame count")
	if d.err == nil && (nFrames == 0 || nFrames > maxSnapshotFrames) {
		return nil, fmt.Errorf("snapshot image: frame count %d out of range: %w", nFrames, abi.EINVAL)
	}
	if d.err == nil && regionStart > maxSnapshotFrames {
		return nil, fmt.Errorf("snapshot image: region start %d out of range: %w", regionStart, abi.EINVAL)
	}
	nChannel := d.uvarint("channel count")
	if d.err == nil && nChannel > nFrames {
		return nil, fmt.Errorf("snapshot image: %d channel pages exceed %d frames: %w", nChannel, nFrames, abi.EINVAL)
	}
	out := &snapshotImage{
		Generation:  int(gen),
		TakenAt:     time.Duration(takenAt),
		RegionStart: kernel.FrameID(regionStart),
		NFrames:     int(nFrames),
	}
	if d.err == nil {
		out.Channel = make([]kernel.FrameID, 0, nChannel)
		for i := uint64(0); i < nChannel && d.err == nil; i++ {
			f := d.uvarint("channel page")
			if d.err != nil {
				break
			}
			if f < regionStart || f >= regionStart+nFrames {
				return nil, fmt.Errorf("snapshot image: channel page %d outside region: %w", f, abi.EINVAL)
			}
			out.Channel = append(out.Channel, kernel.FrameID(f))
		}
	}
	nRecords := d.uvarint("record count")
	if d.err == nil && nRecords > nFrames {
		return nil, fmt.Errorf("snapshot image: %d records exceed %d frames: %w", nRecords, nFrames, abi.EINVAL)
	}
	if d.err == nil {
		out.Owners = make([]kernel.FrameOwner, nFrames)
		for i := range out.Owners {
			out.Owners[i] = kernel.FrameOwner{Kind: kernel.FrameGuestKernel}
		}
		out.Datas = make([][]byte, nFrames)
		prev := -1
		for r := uint64(0); r < nRecords && d.err == nil; r++ {
			idx := d.uvarint("frame index")
			kind := d.uvarint("owner kind")
			pid := d.varint("owner pid")
			name := d.bytes("kernel name", maxSnapshotKernelName)
			data := d.bytes("frame data", abi.PageSize)
			if d.err != nil {
				break
			}
			if int64(idx) <= int64(prev) || idx >= nFrames {
				return nil, fmt.Errorf("snapshot image: frame record %d out of order or range: %w", idx, abi.EINVAL)
			}
			if kind < uint64(kernel.FrameFree) || kind > uint64(kernel.FrameProcess) {
				return nil, fmt.Errorf("snapshot image: unknown owner kind %d: %w", kind, abi.EINVAL)
			}
			prev = int(idx)
			out.Owners[idx] = kernel.FrameOwner{Kind: kernel.FrameOwnerKind(kind), Kernel: string(name), PID: int(pid)}
			if len(data) > 0 {
				page := make([]byte, abi.PageSize)
				copy(page, data)
				out.Datas[idx] = page
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("snapshot image: %d trailing bytes: %w", len(body)-d.off, abi.EINVAL)
	}
	return out, nil
}

// snapshotDecoder is a bounds-checked cursor over the image body. The
// first violation latches err; subsequent reads are no-ops.
type snapshotDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapshotDecoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("snapshot image: truncated %s: %w", field, abi.EINVAL)
		return 0
	}
	d.off += n
	return v
}

func (d *snapshotDecoder) varint(field string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("snapshot image: truncated %s: %w", field, abi.EINVAL)
		return 0
	}
	d.off += n
	return v
}

func (d *snapshotDecoder) bytes(field string, max int) []byte {
	n := d.uvarint(field + " length")
	if d.err != nil {
		return nil
	}
	if n > uint64(max) {
		d.err = fmt.Errorf("snapshot image: %s length %d exceeds %d: %w", field, n, max, abi.EINVAL)
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.err = fmt.Errorf("snapshot image: truncated %s: %w", field, abi.EINVAL)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// RestoreFromSnapshot rewinds the container to a checkpoint: the image is
// verified and decoded, every frame that diverged since capture is
// rewritten (copy-on-write — unchanged frames keep their memory and their
// version), the channel mapping recorded in the image is reinstalled, and
// the boot generation is bumped exactly as a Relaunch would. The caller
// must have stopped the guest first (Panic); on any error the container is
// left untouched and ready for a cold Relaunch.
//
// Errors: EIO for a checksum mismatch, EINVAL for a structurally invalid
// image or one that does not describe this container's region, ESTALE when
// the container's generation moved past the checkpoint's (a cold reboot
// intervened, so the image describes a dead boot). The int is the number
// of frames rewritten, which the restore cost scaled with.
func (c *CVM) RestoreFromSnapshot(snap *Snapshot) (int, error) {
	if snap == nil {
		return 0, fmt.Errorf("restore cvm: no snapshot: %w", abi.ENOENT)
	}
	img, err := decodeSnapshotImage(snap.Image)
	if err != nil {
		return 0, fmt.Errorf("restore cvm: %w", err)
	}
	if img.RegionStart != c.region.Start || img.NFrames != c.region.Frames() {
		return 0, fmt.Errorf("restore cvm: image covers region [%d,+%d), container has [%d,+%d): %w",
			img.RegionStart, img.NFrames, c.region.Start, c.region.Frames(), abi.EINVAL)
	}
	c.mu.Lock()
	gen := c.generation
	c.mu.Unlock()
	if img.Generation != gen {
		return 0, fmt.Errorf("restore cvm: snapshot is generation %d, container is %d: %w",
			img.Generation, gen, abi.ESTALE)
	}
	restored, err := c.phys.RestoreRegion(c.region, img.Owners, img.Datas, snap.versions)
	if err != nil {
		return 0, fmt.Errorf("restore cvm: %w", err)
	}
	c.clock.Advance(c.model.SnapshotRestoreFixed + time.Duration(restored)*c.model.SnapshotRestorePerFrame)
	c.mu.Lock()
	c.channelPages = append([]kernel.FrameID(nil), img.Channel...)
	c.remapped = len(img.Channel) > 0
	c.generation++
	newGen := c.generation
	c.mu.Unlock()
	// The restored image's owner vector names the checkpointed boot's
	// allocations. The guest kernel brought up over the restored state
	// re-owns its memory from scratch, so everything but the live channel
	// mapping rejoins the pool — otherwise repeated restores exhaust the
	// region. Frame contents are left intact.
	c.phys.ReclaimRegion(c.region, img.Channel)
	if c.trace != nil {
		c.trace.Record(sim.EvSnapshot, "cvm restored from checkpoint: gen %d->%d, %d/%d frames rewritten",
			gen, newGen, restored, img.NFrames)
	}
	return restored, nil
}

// SnapshotterConfig tunes the checkpoint policy.
type SnapshotterConfig struct {
	// Interval is the minimum simulated time between checkpoints taken by
	// MaybeCheckpoint. Zero means every MaybeCheckpoint call checkpoints.
	Interval time.Duration
	// MaxAge bounds how stale a checkpoint may be and still be restorable;
	// zero means no age limit. An over-age snapshot is treated like a
	// generation mismatch: the restore path refuses it (ESTALE) and the
	// supervisor falls back to a cold restart.
	MaxAge time.Duration
}

// SnapshotStats counts checkpoint/restore activity.
type SnapshotStats struct {
	Checkpoints     int // checkpoints sealed
	DirtyFrames     int // cumulative frames copied into checkpoints
	Restores        int // successful restores
	RestoredFrames  int // cumulative frames rewritten by restores
	ChecksumRejects int // restores refused for a corrupt image (EIO)
	StaleRejects    int // restores refused for staleness (ESTALE / over-age)
}

// Snapshotter runs the checkpoint policy for one container: it seals
// periodic copy-on-write checkpoints while the container is healthy and
// serves the latest verified image to the supervisor's restore path.
type Snapshotter struct {
	cvm *CVM
	cfg SnapshotterConfig

	mu           sync.Mutex
	latest       *Snapshot
	lastAt       time.Duration
	haveLast     bool
	prevVersions []uint64 // dirty baseline: version vector at previous checkpoint
	stats        SnapshotStats
}

// NewSnapshotter returns a snapshotter for the container.
func NewSnapshotter(cvm *CVM, cfg SnapshotterConfig) *Snapshotter {
	return &Snapshotter{cvm: cvm, cfg: cfg}
}

// Checkpoint seals a checkpoint of the container right now. The cost
// charged scales with the number of frames dirtied since the previous
// checkpoint (all touched frames for the first), plus the fixed commit
// cost. Call only while the container is healthy — a checkpoint of a
// compromised guest would faithfully preserve the compromise.
func (s *Snapshotter) Checkpoint() *Snapshot {
	c := s.cvm
	owners, datas, versions := c.phys.CaptureRegion(c.region)
	s.mu.Lock()
	dirty := 0
	for i := range versions {
		if s.prevVersions == nil {
			if datas[i] != nil {
				dirty++
			}
		} else if versions[i] != s.prevVersions[i] {
			dirty++
		}
	}
	s.prevVersions = versions
	s.mu.Unlock()
	c.clock.Advance(time.Duration(dirty)*c.model.SnapshotFrameCopy + c.model.SnapshotCommit)
	takenAt := c.clock.Now()
	gen := c.Generation()
	snap := &Snapshot{
		Generation: gen,
		TakenAt:    takenAt,
		Image:      encodeSnapshotImage(gen, takenAt, c.region, c.ChannelPages(), owners, datas),
		versions:   versions,
	}
	s.mu.Lock()
	s.latest = snap
	s.lastAt = takenAt
	s.haveLast = true
	s.stats.Checkpoints++
	s.stats.DirtyFrames += dirty
	s.mu.Unlock()
	if c.trace != nil {
		c.trace.Record(sim.EvSnapshot, "checkpoint sealed: gen %d, %d dirty frames, %d byte image",
			gen, dirty, len(snap.Image))
	}
	return snap
}

// MaybeCheckpoint checkpoints if at least the configured interval has
// passed since the last one (or none exists yet). It reports whether a
// checkpoint was taken.
func (s *Snapshotter) MaybeCheckpoint() bool {
	s.mu.Lock()
	due := !s.haveLast || s.cvm.clock.Now()-s.lastAt >= s.cfg.Interval
	s.mu.Unlock()
	if !due {
		return false
	}
	s.Checkpoint()
	return true
}

// Latest returns the most recent checkpoint, or nil.
func (s *Snapshotter) Latest() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// Usable reports whether a restore could be attempted right now: a
// checkpoint exists, it matches the container's current generation, and it
// is within the age limit. It does not verify the checksum — that proof
// happens on the restore itself.
func (s *Snapshotter) Usable() bool {
	s.mu.Lock()
	snap := s.latest
	s.mu.Unlock()
	if snap == nil || snap.Generation != s.cvm.Generation() {
		return false
	}
	if s.cfg.MaxAge > 0 && s.cvm.clock.Now()-snap.TakenAt > s.cfg.MaxAge {
		return false
	}
	return true
}

// Corrupt flips a byte in the latest checkpoint's image, for fault drills.
// The next restore attempt will fail its checksum and fall back cold.
func (s *Snapshotter) Corrupt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil || len(s.latest.Image) == 0 {
		return
	}
	// Copy before flipping: callers may hold the slice from Latest().
	img := append([]byte(nil), s.latest.Image...)
	img[len(img)/2] ^= 0xff
	cp := *s.latest
	cp.Image = img
	s.latest = &cp
}

// Invalidate drops the latest checkpoint (e.g. after the guest's warm
// state is known-bad, or after a restore consumed it).
func (s *Snapshotter) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latest = nil
}

// Restore rewinds the container to the latest checkpoint. On success the
// consumed checkpoint is invalidated (it describes the pre-restore
// generation; the next healthy probe reseals one). On failure the
// checkpoint is also invalidated — a checksum-bad or stale image can never
// succeed later — and the error is returned for the supervisor to fall
// back to a cold restart.
func (s *Snapshotter) Restore() error {
	s.mu.Lock()
	snap := s.latest
	s.mu.Unlock()
	if snap == nil {
		return fmt.Errorf("snapshot restore: %w", abi.ENOENT)
	}
	if s.cfg.MaxAge > 0 && s.cvm.clock.Now()-snap.TakenAt > s.cfg.MaxAge {
		s.mu.Lock()
		s.stats.StaleRejects++
		s.latest = nil
		s.mu.Unlock()
		return fmt.Errorf("snapshot restore: checkpoint is %s old, max age %s: %w",
			s.cvm.clock.Now()-snap.TakenAt, s.cfg.MaxAge, abi.ESTALE)
	}
	restored, err := s.cvm.RestoreFromSnapshot(snap)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latest = nil
	if err != nil {
		switch {
		case errors.Is(err, abi.EIO):
			s.stats.ChecksumRejects++
		case errors.Is(err, abi.ESTALE):
			s.stats.StaleRejects++
		}
		return err
	}
	s.stats.Restores++
	s.stats.RestoredFrames += restored
	return nil
}

// Stats returns a copy of the counters.
func (s *Snapshotter) Stats() SnapshotStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
