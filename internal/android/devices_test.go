package android

import (
	"encoding/binary"
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/vfs"
)

func newDriverKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	clock := sim.NewClock()
	phys := kernel.NewPhysical(64 << 20)
	fs := vfs.New()
	if err := BuildSystemImage(fs); err != nil {
		t.Fatal(err)
	}
	return kernel.New(kernel.Config{
		Name: "host", Clock: clock, Model: sim.DefaultLatencyModel(),
		FS: fs, Net: netstack.New("host"), Binder: binder.NewDriver(),
		Alloc: phys.NewAllocator("host", kernel.Region{}),
	})
}

func TestVulnDriverExecDirect(t *testing.T) {
	k := newDriverKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}, "mal")
	drv := NewVulnDriver(k, "diag", "CVE-2012-4220", DriverExecDirect)
	cred := vfs.Cred{UID: task.Cred.UID, PID: task.PID}

	// Benign traffic is fine.
	if out, err := drv.Ioctl(cred, 1, nil); err != nil || string(out) != "ok" {
		t.Fatalf("benign ioctl: %q, %v", out, err)
	}
	if k.Compromised() != nil {
		t.Fatal("benign ioctl compromised the kernel")
	}
	// The trigger owns the kernel.
	if _, err := drv.Ioctl(cred, IoctlExploitTrigger, nil); err != nil {
		t.Fatal(err)
	}
	if c := k.Compromised(); c == nil || c.ByPID != task.PID {
		t.Fatalf("compromise = %+v", c)
	}
}

func TestVulnDriverJumpToUser(t *testing.T) {
	k := newDriverKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}, "mal")
	drv := NewVulnDriver(k, "ptmx", "CVE-2014-0196", DriverJumpToUser)
	cred := vfs.Cred{UID: task.Cred.UID, PID: task.PID}

	// No staged shellcode: the driver oopses.
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint64(arg, 0x40000000)
	if _, err := drv.Ioctl(cred, IoctlExploitTrigger, arg); !errors.Is(err, abi.EFAULT) {
		t.Fatalf("unstaged jump: %v, want EFAULT", err)
	}
	if drv.Crashes() != 1 || k.Compromised() != nil {
		t.Fatalf("crashes=%d compromised=%v", drv.Crashes(), k.Compromised())
	}
	// Stage executable memory and retry.
	base, err := task.AS.MapAnon(1, kernel.ProtRead|kernel.ProtExec, kernel.VMAAnon, "shellcode")
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(arg, base)
	if _, err := drv.Ioctl(cred, IoctlExploitTrigger, arg); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() == nil {
		t.Fatal("staged jump did not compromise")
	}
	// Reads and writes are benign no-ops.
	if n, err := drv.Read(cred, make([]byte, 4), 0); err != nil || n != 4 {
		t.Fatal("driver read")
	}
	if n, err := drv.Write(cred, []byte("x"), 0); err != nil || n != 1 {
		t.Fatal("driver write")
	}
}

func TestVulnDriverSafeMode(t *testing.T) {
	k := newDriverKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDAppBase}, "mal")
	drv := NewVulnDriver(k, "diag", "CVE-2012-4220", DriverSafe)
	cred := vfs.Cred{UID: task.Cred.UID, PID: task.PID}
	if _, err := drv.Ioctl(cred, IoctlExploitTrigger, nil); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("patched driver trigger: %v, want EINVAL", err)
	}
	if k.Compromised() != nil {
		t.Fatal("patched driver compromised")
	}
}

func TestBlockDeviceLDMParser(t *testing.T) {
	k := newDriverKernel(t)
	task := k.Spawn(abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}, "mal")
	cred := vfs.Cred{UID: task.Cred.UID, PID: task.PID}

	safe := NewBlockDevice(k, false)
	if _, err := safe.Write(cred, []byte("LDM!evil"), 0); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() != nil {
		t.Fatal("patched parser compromised")
	}

	vuln := NewBlockDevice(k, true)
	if _, err := vuln.Write(cred, []byte("plain data"), 0); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() != nil {
		t.Fatal("non-LDM write compromised")
	}
	buf := make([]byte, 5)
	if _, err := vuln.Read(cred, buf, 0); err != nil || string(buf) != "plain" {
		t.Fatalf("block read: %q, %v", buf, err)
	}
	if _, err := vuln.Write(cred, []byte("LDM!crafted"), 0); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() == nil {
		t.Fatal("crafted LDM header did not compromise")
	}
	if _, err := vuln.Ioctl(cred, 1, nil); !errors.Is(err, abi.ENOTTY) {
		t.Fatal("block ioctl should be ENOTTY")
	}
}

func TestSockDiagReceiver(t *testing.T) {
	k := newDriverKernel(t)
	registerSockDiag(k, true)
	task := k.Spawn(abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}, "mal")

	// Benign diagnostics pass through.
	sock, err := k.Net().Socket(task.Cred, netstack.AFNetlink, netstack.SockDgram, NetlinkSockDiagProto)
	if err != nil {
		t.Fatal(err)
	}
	if err := sock.SendToNetlink(NetlinkSockDiagProto, task.Cred, []byte("INET_DIAG")); err != nil {
		t.Fatal(err)
	}
	// The OOB message with no staged memory crashes the handler.
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint64(arg, 0x40000000)
	msg := append([]byte(SockDiagMagic), arg...)
	if err := sock.SendToNetlink(NetlinkSockDiagProto, task.Cred, msg); !errors.Is(err, abi.EFAULT) {
		t.Fatalf("unstaged sock_diag: %v, want EFAULT", err)
	}
	// Staged: compromise.
	base, err := task.AS.MapAnon(1, kernel.ProtRead|kernel.ProtExec, kernel.VMAAnon, "sc")
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(arg, base)
	msg = append([]byte(SockDiagMagic), arg...)
	if err := sock.SendToNetlink(NetlinkSockDiagProto, task.Cred, msg); err != nil {
		t.Fatal(err)
	}
	if k.Compromised() == nil {
		t.Fatal("staged sock_diag did not compromise")
	}
}

func TestFramebufferIoctlAndBinderVersion(t *testing.T) {
	fb := NewFramebuffer(false)
	if out, err := fb.Ioctl(vfs.Cred{}, 0x4600, nil); err != nil || string(out) != "1280x800" {
		t.Fatalf("fb ioctl: %q, %v", out, err)
	}
	d := binder.NewDriver()
	dev := NewBinderDevice(d)
	if dev.DevName() != "binder" || dev.Driver() != d {
		t.Fatal("binder device identity")
	}
	if _, err := dev.Read(vfs.Cred{}, nil, 0); !errors.Is(err, abi.EINVAL) {
		t.Fatal("binder read should be EINVAL")
	}
	if _, err := dev.Write(vfs.Cred{}, nil, 0); !errors.Is(err, abi.EINVAL) {
		t.Fatal("binder write should be EINVAL")
	}
	if out, err := dev.Ioctl(vfs.Cred{}, binder.IocVersion, nil); err != nil || out[0] != 8 {
		t.Fatalf("binder version: %v, %v", out, err)
	}
	if _, err := dev.Ioctl(vfs.Cred{}, 0xFFFF, nil); !errors.Is(err, abi.EINVAL) {
		t.Fatal("unknown binder ioctl should be EINVAL")
	}
}
