package android

import (
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/vfs"
)

func setupMultiuser(t *testing.T) (*vfs.FileSystem, *PackageManager, *InstalledApp) {
	t.Helper()
	fs := vfs.New()
	if err := BuildSystemImage(fs); err != nil {
		t.Fatal(err)
	}
	pm := NewPackageManager()
	app, err := pm.Install(fs, fs, AppSpec{
		Package: "com.notes",
		Assets:  map[string][]byte{"seed": []byte("user0-data")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs, pm, app
}

func TestSwitchUserSeparatesData(t *testing.T) {
	fs, pm, app := setupMultiuser(t)
	appCred := abi.Cred{UID: app.UID, GID: app.UID}

	// Switch to user 1: the canonical path now resolves to an empty,
	// private store; user 0's data moved aside.
	if err := pm.SwitchUser(fs, app, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(appCred, app.DataDir+"/seed"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("user 0 data visible to user 1: %v", err)
	}
	if err := fs.WriteFile(appCred, app.DataDir+"/u1note", []byte("user1-data"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(abi.Cred{UID: abi.UIDRoot}, app.DataDir+"/u1note", app.UID, app.UID); err != nil {
		t.Fatal(err)
	}

	// Back to user 0: the original seed is back, user 1's note is gone.
	if err := pm.SwitchUser(fs, app, 0); err != nil {
		t.Fatal(err)
	}
	if data, err := fs.ReadFile(appCred, app.DataDir+"/seed"); err != nil || string(data) != "user0-data" {
		t.Fatalf("user 0 data lost: %q, %v", data, err)
	}
	if _, err := fs.ReadFile(appCred, app.DataDir+"/u1note"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("user 1 data visible to user 0: %v", err)
	}

	// And forward again: user 1's note persisted in its own store.
	if err := pm.SwitchUser(fs, app, 1); err != nil {
		t.Fatal(err)
	}
	if data, err := fs.ReadFile(appCred, app.DataDir+"/u1note"); err != nil || string(data) != "user1-data" {
		t.Fatalf("user 1 data lost: %q, %v", data, err)
	}
}

// TestMultiuserDoesNotStopEscalation is the paper's related-work point:
// the multiuser design "is not aimed at isolating malware that use
// privilege escalation" — a root attacker reads every user's store.
func TestMultiuserDoesNotStopEscalation(t *testing.T) {
	fs, pm, app := setupMultiuser(t)
	if err := pm.SwitchUser(fs, app, 1); err != nil {
		t.Fatal(err)
	}
	appCred := abi.Cred{UID: app.UID, GID: app.UID}
	if err := fs.WriteFile(appCred, app.DataDir+"/u1secret", []byte("u1"), 0o600); err != nil {
		t.Fatal(err)
	}

	// Another app's UID is stopped by permissions...
	other := abi.Cred{UID: app.UID + 1, GID: app.UID + 1}
	if _, err := fs.ReadFile(other, userPkgDir(0, app.Package)+"/seed"); !errors.Is(err, abi.EACCES) {
		t.Fatalf("cross-uid read: %v, want EACCES", err)
	}
	// ...but a privilege-escalated attacker (root) reads both users.
	attacker := abi.Cred{UID: abi.UIDRoot}
	if _, err := fs.ReadFile(attacker, userPkgDir(0, app.Package)+"/seed"); err != nil {
		t.Fatalf("root blocked from user 0 store: %v", err)
	}
	if _, err := fs.ReadFile(attacker, userPkgDir(1, app.Package)+"/u1secret"); err != nil {
		t.Fatalf("root blocked from user 1 store: %v", err)
	}
}
