package android

import (
	"sync"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// WindowManager is the centralized frame-buffer and input manager
// (Section III-C): apps request UI operations through binder transactions
// on it, and all sensitive interactive input — passwords, touch events —
// flows through it. Under Anception it always runs on the host.
type WindowManager struct {
	kernel *kernel.Kernel
	task   *kernel.Task

	mu sync.Mutex
	// inputQueues holds pending input events per destination app UID.
	inputQueues map[int][][]byte
	// heapCursor tracks where in the WM heap the next event is staged.
	heapCursor uint64
	frames     int
}

// wmInputBufBase is where the WM stages input events in its own heap —
// which is precisely what makes input theft possible for an attacker who
// can read the WM's memory on native Android.
const wmInputBufBase = kernel.AddrHeapBase

// NewWindowManager boots the window manager on a kernel.
func NewWindowManager(k *kernel.Kernel, task *kernel.Task) *WindowManager {
	wm := &WindowManager{
		kernel:      k,
		task:        task,
		inputQueues: make(map[int][][]byte),
		heapCursor:  wmInputBufBase,
	}
	// Reserve a heap page for the input staging buffer.
	if _, err := task.AS.Brk(kernel.AddrHeapBase + 4*abi.PageSize); err == nil {
		// Best effort; the staging buffer is an attack-surface detail.
		_ = err
	}
	return wm
}

// Task returns the WM's process (the memory-theft target on native).
func (wm *WindowManager) Task() *kernel.Task { return wm.task }

// QueueInput delivers a user input event (e.g. a typed password) destined
// for the app with the given UID. The bytes are staged in the WM's own
// heap, as the real input pipeline stages events in InputDispatcher
// buffers.
func (wm *WindowManager) QueueInput(destUID int, event []byte) {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	wm.inputQueues[destUID] = append(wm.inputQueues[destUID], append([]byte(nil), event...))

	// Stage the bytes in WM heap memory (visible to a root attacker who
	// reads /proc/<wm>/mem on the same kernel).
	if wm.task.AS != nil {
		end := wm.heapCursor + uint64(len(event))
		if end < wmInputBufBase+4*abi.PageSize {
			_ = wm.task.AS.WriteBytes(wm.kernel.Region(), wm.heapCursor, event)
			wm.heapCursor = end
		}
	}
}

// HandleTransaction services binder calls on the "window" service.
func (wm *WindowManager) HandleTransaction(from abi.Cred, code uint32, data []byte) ([]byte, error) {
	switch code {
	case CodeWaitInput:
		wm.mu.Lock()
		defer wm.mu.Unlock()
		q := wm.inputQueues[from.UID]
		if len(q) == 0 {
			return nil, abi.EAGAIN
		}
		evt := q[0]
		wm.inputQueues[from.UID] = q[1:]
		return evt, nil
	case CodeDraw:
		wm.mu.Lock()
		wm.frames++
		wm.mu.Unlock()
		return []byte("drawn"), nil
	default:
		return nil, abi.EINVAL
	}
}

// FramesDrawn reports how many frames apps have submitted.
func (wm *WindowManager) FramesDrawn() int {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	return wm.frames
}

// PendingInput reports queued events for a UID (tests).
func (wm *WindowManager) PendingInput(uid int) int {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	return len(wm.inputQueues[uid])
}
