package android

import (
	"fmt"
	"sync"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// AppSpec describes an app to install.
type AppSpec struct {
	// Package is the reverse-DNS package name.
	Package string
	// Code is the app binary ("APK") content.
	Code []byte
	// Assets are data files unpacked into the app's private directory at
	// install time (Section III-D: "If there is initial data packaged
	// with the app, during installation this is unpacked to the app data
	// directory").
	Assets map[string][]byte
}

// InstalledApp records an installation.
type InstalledApp struct {
	Package  string
	UID      int
	CodePath string // /data/app/<pkg>.apk — host-resident under Anception
	DataDir  string // /data/data/<pkg>    — CVM-resident under Anception
}

// PackageManager assigns UIDs and lays out app directories per the
// Android security model: each app gets its own Linux UID and a private
// 0700 data directory.
type PackageManager struct {
	mu        sync.Mutex
	nextUID   int
	installed map[string]*InstalledApp
}

// NewPackageManager returns an empty package manager.
func NewPackageManager() *PackageManager {
	return &PackageManager{nextUID: abi.UIDAppBase, installed: make(map[string]*InstalledApp)}
}

// Install writes the app's code to the (host) code partition and creates
// its private data directory with unpacked assets on dataFS. Under
// Anception codeFS is the host filesystem and dataFS the CVM's; natively
// they are the same filesystem.
func (pm *PackageManager) Install(codeFS, dataFS *vfs.FileSystem, spec AppSpec) (*InstalledApp, error) {
	if spec.Package == "" {
		return nil, fmt.Errorf("install: empty package name: %w", abi.EINVAL)
	}
	pm.mu.Lock()
	if _, dup := pm.installed[spec.Package]; dup {
		pm.mu.Unlock()
		return nil, fmt.Errorf("install %s: %w", spec.Package, abi.EEXIST)
	}
	uid := pm.nextUID
	pm.nextUID++
	pm.mu.Unlock()

	system := abi.Cred{UID: abi.UIDRoot}
	app := &InstalledApp{
		Package:  spec.Package,
		UID:      uid,
		CodePath: "/data/app/" + spec.Package + ".apk",
		DataDir:  "/data/data/" + spec.Package,
	}

	// App code: permission-protected so only the app and the system may
	// read it (principle 1), and executable.
	if err := codeFS.MkdirAll(system, "/data/app", 0o711); err != nil {
		return nil, fmt.Errorf("install %s: %w", spec.Package, err)
	}
	code := spec.Code
	if code == nil {
		code = []byte("DEX\x00" + spec.Package)
	}
	if err := codeFS.WriteFile(system, app.CodePath, code, 0o700); err != nil {
		return nil, fmt.Errorf("install %s: code: %w", spec.Package, err)
	}
	if err := codeFS.Chown(system, app.CodePath, uid, uid); err != nil {
		return nil, err
	}

	// Private data directory on the data filesystem.
	if err := dataFS.MkdirAll(system, "/data/data", 0o755); err != nil {
		return nil, err
	}
	if err := dataFS.Mkdir(system, app.DataDir, 0o700); err != nil {
		return nil, fmt.Errorf("install %s: data dir: %w", spec.Package, err)
	}
	if err := dataFS.Chown(system, app.DataDir, uid, uid); err != nil {
		return nil, err
	}
	for name, content := range spec.Assets {
		p := app.DataDir + "/" + name
		if err := dataFS.WriteFile(system, p, content, 0o600); err != nil {
			return nil, fmt.Errorf("install %s: asset %s: %w", spec.Package, name, err)
		}
		if err := dataFS.Chown(system, p, uid, uid); err != nil {
			return nil, err
		}
	}

	pm.mu.Lock()
	pm.installed[spec.Package] = app
	pm.mu.Unlock()
	return app, nil
}

// Lookup returns an installed app by package name, or nil.
func (pm *PackageManager) Lookup(pkg string) *InstalledApp {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.installed[pkg]
}

// Installed lists installed package names.
func (pm *PackageManager) Installed() []string {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]string, 0, len(pm.installed))
	for p := range pm.installed {
		out = append(out, p)
	}
	return out
}

// BuildSystemImage populates a filesystem with the base Android layout:
// the read-only /system partition with binaries and libraries, /data,
// /dev, /sbin, /sdcard. Call once per kernel at boot, before Boot().
func BuildSystemImage(fs *vfs.FileSystem) error {
	system := abi.Cred{UID: abi.UIDRoot}
	dirs := []string{
		"/system", "/system/bin", "/system/lib", "/system/framework",
		"/data", "/data/data", "/data/app", "/data/users",
		"/dev", "/sbin", "/sdcard", "/cache", "/proc",
	}
	for _, d := range dirs {
		if err := fs.MkdirAll(system, d, 0o755); err != nil {
			return fmt.Errorf("system image: %w", err)
		}
	}
	binaries := []string{
		"vold", "netd", "installd", "logcat", "sh", "toolbox", "app_process",
		"servicemanager", "debuggerd", "rild", "sdcardd", "keystore",
		"mediaserver", "drmserver", "system_server", "surfaceflinger",
		"window", "inputmethod", "activity", "zygote", "location", "logd",
	}
	for _, b := range binaries {
		content := []byte("ELF\x7f" + b + " GOT:0x8340 system:0xb6f11423 strcmp:0xb6f22871")
		if err := fs.WriteFile(system, "/system/bin/"+b, content, 0o755); err != nil {
			return err
		}
	}
	libs := []string{"libc.so", "libbinder.so", "libandroid_runtime.so", "libssl.so", "libsqlite.so"}
	for _, l := range libs {
		content := []byte("ELF\x7f" + l + " system:0xb6f11423 strcmp:0xb6f22871")
		if err := fs.WriteFile(system, "/system/lib/"+l, content, 0o755); err != nil {
			return err
		}
	}
	if err := fs.WriteFile(system, "/system/framework/framework.jar", []byte("DEX framework"), 0o644); err != nil {
		return err
	}
	fs.MountReadOnly("/system")
	// /sdcard is world-writable shared storage.
	if err := fs.Chmod(system, "/sdcard", 0o777); err != nil {
		return err
	}
	return nil
}
