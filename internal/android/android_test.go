package android

import (
	"errors"
	"strings"
	"testing"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
	"anception/internal/vfs"
)

func bootKernel(t *testing.T, name string, cfg BootConfig) (*kernel.Kernel, *Services) {
	t.Helper()
	clock := sim.NewClock()
	phys := kernel.NewPhysical(256 << 20)
	fs := vfs.New()
	if err := BuildSystemImage(fs); err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{
		Name:   name,
		Clock:  clock,
		Model:  sim.DefaultLatencyModel(),
		Trace:  sim.NewTrace(clock),
		FS:     fs,
		Net:    netstack.New(name),
		Binder: binder.NewDriver(),
		Alloc:  phys.NewAllocator(name, kernel.Region{}),
	})
	svcs, err := Boot(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, svcs
}

func TestBootFullStack(t *testing.T) {
	k, svcs := bootKernel(t, "host", BootConfig{Vulns: AllVulnerabilities()})
	for _, name := range []string{"window", "vold", "system_server", "surfaceflinger", "zygote"} {
		if svcs.Service(name) == nil {
			t.Errorf("service %s missing", name)
		}
	}
	if svcs.WM == nil || svcs.Vold == nil {
		t.Fatal("WM/vold handles missing")
	}
	// Device nodes exist.
	root := abi.Cred{UID: abi.UIDRoot}
	if _, err := k.FS().StatPath(root, "/dev/binder"); err != nil {
		t.Fatalf("/dev/binder: %v", err)
	}
	if _, err := k.FS().StatPath(root, "/dev/graphics/fb0"); err != nil {
		t.Fatalf("/dev/graphics/fb0: %v", err)
	}
}

func TestHeadlessBootOmitsUIStack(t *testing.T) {
	k, svcs := bootKernel(t, "cvm", BootConfig{Headless: true, Vulns: AllVulnerabilities()})
	for _, name := range []string{"window", "surfaceflinger", "inputmethod", "activity", "zygote"} {
		if svcs.Service(name) != nil {
			t.Errorf("headless boot started UI service %s", name)
		}
	}
	if svcs.Service("vold") == nil || svcs.Service("system_server") == nil {
		t.Fatal("headless boot missing delegable services")
	}
	// No framebuffer node in the container.
	root := abi.Cred{UID: abi.UIDRoot}
	if _, err := k.FS().StatPath(root, "/dev/graphics/fb0"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("fb0 in headless CVM: %v, want ENOENT", err)
	}
}

func TestHeadlessMemorySavings(t *testing.T) {
	_, full := bootKernel(t, "a", BootConfig{})
	_, headless := bootKernel(t, "b", BootConfig{Headless: true})
	if headless.ResidentPages() >= full.ResidentPages() {
		t.Fatalf("headless (%d pages) should use less than full (%d pages)",
			headless.ResidentPages(), full.ResidentPages())
	}
	// Headless services plus the paper's 23-app proxy set should land
	// near the measured 25,460 KB active set.
	activeKB := (headless.ResidentPages() + 23*24) * abi.PageSize / 1024
	if activeKB < 24000 || activeKB > 27000 {
		t.Fatalf("projected active set = %d KB, want ~25460", activeKB)
	}
}

func TestServiceLoCTotalsMatchPaper(t *testing.T) {
	var total, ui int
	for _, spec := range Catalog() {
		total += spec.LoC
		if spec.UI {
			ui += spec.LoC
		}
	}
	if total != 181260 {
		t.Errorf("total privileged LoC = %d, want 181260", total)
	}
	if ui != 72542 {
		t.Errorf("UI LoC = %d, want 72542", ui)
	}
	if got := total - ui; got != 108718 {
		t.Errorf("deprivileged LoC = %d, want 108718", got)
	}
}

func TestWindowManagerInputQueue(t *testing.T) {
	_, svcs := bootKernel(t, "host", BootConfig{})
	wm := svcs.WM
	appUID := abi.UIDAppBase
	wm.QueueInput(appUID, []byte("pwd:hunter2"))

	// Wrong UID sees nothing.
	if _, err := wm.HandleTransaction(abi.Cred{UID: appUID + 1}, CodeWaitInput, nil); !errors.Is(err, abi.EAGAIN) {
		t.Fatalf("foreign uid input wait: %v, want EAGAIN", err)
	}
	evt, err := wm.HandleTransaction(abi.Cred{UID: appUID}, CodeWaitInput, nil)
	if err != nil || string(evt) != "pwd:hunter2" {
		t.Fatalf("input = %q, %v", evt, err)
	}
	if wm.PendingInput(appUID) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestWindowManagerStagesInputInItsHeap(t *testing.T) {
	k, svcs := bootKernel(t, "host", BootConfig{})
	wm := svcs.WM
	secret := []byte("PIN=4242")
	wm.QueueInput(abi.UIDAppBase, secret)
	// The staged bytes are readable from the WM's memory by a same-kernel
	// root attacker — the input-theft channel on native Android.
	got, err := wm.Task().AS.ReadBytes(k.Region(), wmInputBufBase, len(secret))
	if err != nil || string(got) != string(secret) {
		t.Fatalf("WM heap staging = %q, %v", got, err)
	}
}

func TestWindowManagerDrawCounting(t *testing.T) {
	_, svcs := bootKernel(t, "host", BootConfig{})
	for i := 0; i < 3; i++ {
		if _, err := svcs.WM.HandleTransaction(abi.Cred{UID: abi.UIDAppBase}, CodeDraw, nil); err != nil {
			t.Fatal(err)
		}
	}
	if svcs.WM.FramesDrawn() != 3 {
		t.Fatalf("frames = %d", svcs.WM.FramesDrawn())
	}
	if _, err := svcs.WM.HandleTransaction(abi.Cred{}, 99, nil); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("unknown code: %v", err)
	}
}

func TestVoldGingerBreakExactIndexSpawnsRootShell(t *testing.T) {
	k, svcs := bootKernel(t, "host", BootConfig{Vulns: AllVulnerabilities()})
	root := abi.Cred{UID: abi.UIDRoot}
	payload := []byte(kernel.AttackerPayloadMagic + "\nrootshell")
	if err := k.FS().MkdirAll(root, "/data/data/com.mal", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := k.FS().WriteFile(root, "/data/data/com.mal/exploit", payload, 0o755); err != nil {
		t.Fatal(err)
	}
	msg := []byte("GB:-1073741821:/data/data/com.mal/exploit")
	if err := svcs.Vold.HandleNetlink(abi.Cred{UID: abi.UIDAppBase}, msg); err != nil {
		t.Fatal(err)
	}
	shells := svcs.Vold.RootShells()
	if len(shells) != 1 || shells[0].Cred.UID != abi.UIDRoot {
		t.Fatalf("root shells = %v", shells)
	}
}

func TestVoldGingerBreakWrongIndexCrashes(t *testing.T) {
	_, svcs := bootKernel(t, "host", BootConfig{Vulns: AllVulnerabilities()})
	for i := -5; i < 0; i++ {
		_ = svcs.Vold.HandleNetlink(abi.Cred{UID: abi.UIDAppBase}, []byte("GB:-"+string(rune('0'+(-i)))+":/x"))
	}
	if svcs.Vold.Crashes() == 0 {
		t.Fatal("bad probes should crash vold")
	}
	if lines := svcs.Logd.Grep("F/vold"); len(lines) == 0 {
		t.Fatal("crashes not logged (the exploit's brute-force oracle)")
	}
	if len(svcs.Vold.RootShells()) != 0 {
		t.Fatal("wrong index must not spawn a shell")
	}
}

func TestVoldPatchedIgnoresExploit(t *testing.T) {
	k, svcs := bootKernel(t, "host", BootConfig{}) // no vulnerabilities
	root := abi.Cred{UID: abi.UIDRoot}
	if err := k.FS().WriteFile(root, "/data/p", []byte(kernel.AttackerPayloadMagic), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := svcs.Vold.HandleNetlink(abi.Cred{UID: abi.UIDAppBase}, []byte("GB:-1073741821:/data/p")); err != nil {
		t.Fatal(err)
	}
	if len(svcs.Vold.RootShells()) != 0 {
		t.Fatal("patched vold executed payload")
	}
}

func TestVoldNetlinkPermissionWhenPatched(t *testing.T) {
	k, _ := bootKernel(t, "host", BootConfig{}) // vold channel not world-sendable
	sock, err := k.Net().Socket(abi.Cred{UID: abi.UIDAppBase}, netstack.AFNetlink, netstack.SockDgram, NetlinkVoldProto)
	if err != nil {
		t.Fatal(err)
	}
	err = sock.SendToNetlink(NetlinkVoldProto, abi.Cred{UID: abi.UIDAppBase}, []byte("GB:-1:/x"))
	if !errors.Is(err, abi.EPERM) {
		t.Fatalf("app send to patched vold channel: %v, want EPERM", err)
	}
}

func TestBinderDeviceIoctl(t *testing.T) {
	k, _ := bootKernel(t, "host", BootConfig{})
	app := k.Spawn(abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}, "app")
	res := k.Invoke(app, kernel.Args{Nr: abi.SysOpen, Path: "/dev/binder", Flags: abi.ORdWr})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	arg := binder.EncodeTransaction(binder.Transaction{Service: "location", Code: CodeGetLocation})
	res = k.Invoke(app, kernel.Args{Nr: abi.SysIoctl, FD: res.FD, Request: binder.IocTransact, Buf: arg})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if !strings.HasPrefix(string(res.Data), "fix:") {
		t.Fatalf("location reply = %q", res.Data)
	}
}

func TestFramebufferVulnerableVsHardened(t *testing.T) {
	vuln := NewFramebuffer(true)
	if vuln.MmapKind() != vfs.MmapKernelMemory {
		t.Fatal("exposed fb must map kernel memory")
	}
	safe := NewFramebuffer(false)
	if safe.MmapKind() != vfs.MmapDeviceLocal {
		t.Fatal("hardened fb must map device memory only")
	}
	buf := make([]byte, 4)
	if _, err := vuln.Write(vfs.Cred{}, []byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := vuln.Read(vfs.Cred{}, buf, 0); err != nil || buf[0] != 1 {
		t.Fatalf("fb read = %v %v", buf, err)
	}
}

func TestPackageManagerInstall(t *testing.T) {
	codeFS := vfs.New()
	dataFS := vfs.New()
	if err := BuildSystemImage(codeFS); err != nil {
		t.Fatal(err)
	}
	if err := BuildSystemImage(dataFS); err != nil {
		t.Fatal(err)
	}
	pm := NewPackageManager()
	app, err := pm.Install(codeFS, dataFS, AppSpec{
		Package: "com.bank",
		Code:    []byte("DEX bank"),
		Assets:  map[string][]byte{"cert.pem": []byte("CERT")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if app.UID != abi.UIDAppBase {
		t.Fatalf("first app uid = %d", app.UID)
	}

	// Code is on the code FS, protected but app-readable.
	appCred := abi.Cred{UID: app.UID, GID: app.UID}
	if _, err := codeFS.ReadFile(appCred, app.CodePath); err != nil {
		t.Fatalf("app cannot read own code: %v", err)
	}
	other := abi.Cred{UID: app.UID + 1, GID: app.UID + 1}
	if _, err := codeFS.ReadFile(other, app.CodePath); !errors.Is(err, abi.EACCES) {
		t.Fatalf("other app read code: %v, want EACCES", err)
	}

	// Data dir with unpacked assets on the data FS.
	if data, err := dataFS.ReadFile(appCred, app.DataDir+"/cert.pem"); err != nil || string(data) != "CERT" {
		t.Fatalf("asset = %q, %v", data, err)
	}
	if _, err := dataFS.ReadFile(other, app.DataDir+"/cert.pem"); !errors.Is(err, abi.EACCES) {
		t.Fatalf("other app read asset: %v, want EACCES", err)
	}

	// Second install gets the next UID; duplicates rejected.
	app2, err := pm.Install(codeFS, dataFS, AppSpec{Package: "com.game"})
	if err != nil || app2.UID != abi.UIDAppBase+1 {
		t.Fatalf("second install = %+v, %v", app2, err)
	}
	if _, err := pm.Install(codeFS, dataFS, AppSpec{Package: "com.bank"}); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("dup install: %v, want EEXIST", err)
	}
	if pm.Lookup("com.bank") == nil || len(pm.Installed()) != 2 {
		t.Fatal("lookup/list broken")
	}
}

func TestSystemImageReadOnly(t *testing.T) {
	fs := vfs.New()
	if err := BuildSystemImage(fs); err != nil {
		t.Fatal(err)
	}
	root := abi.Cred{UID: abi.UIDRoot}
	if err := fs.WriteFile(root, "/system/bin/backdoor", []byte("x"), 0o755); !errors.Is(err, abi.EROFS) {
		t.Fatalf("write to /system: %v, want EROFS", err)
	}
	// /sdcard is world-writable.
	appCred := abi.Cred{UID: abi.UIDAppBase, GID: abi.UIDAppBase}
	if err := fs.WriteFile(appCred, "/sdcard/x", []byte("x"), 0o644); err != nil {
		t.Fatalf("sdcard write: %v", err)
	}
}

func TestLogd(t *testing.T) {
	l := NewLogd()
	l.Log("I/system: boot")
	l.Log("F/vold: crash")
	if len(l.Lines()) != 2 {
		t.Fatal("lines lost")
	}
	if got := l.Grep("F/vold"); len(got) != 1 {
		t.Fatalf("grep = %v", got)
	}
}
