// Package android implements the simulated Android userspace: the
// privileged services whose 181K lines the paper measures (WindowManager,
// InputMethodManager and friends on the UI side; vold, location, installd
// and friends on the delegable side), the device nodes apps talk to, the
// package manager that installs apps, and the headless configuration the
// CVM boots (Section IV-4).
package android

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
	"anception/internal/vfs"
)

// Binder transaction codes used by the simulated services.
const (
	// CodeWaitInput is Listing 1's IOC_WAIT_INPUT_EVT: block until the
	// input subsystem delivers an event to the calling app.
	CodeWaitInput uint32 = 1
	// CodeDraw submits a frame to the window manager.
	CodeDraw uint32 = 2
	// CodeGetLocation requests a GPS fix from the location service.
	CodeGetLocation uint32 = 3
	// CodeQuery is a generic metadata request (package manager etc.).
	CodeQuery uint32 = 4
)

// VulnProfile selects which historical vulnerabilities are present in a
// booted platform. The security evaluation (Section V) boots platforms
// with all of them enabled; performance benches disable them.
type VulnProfile struct {
	// GingerBreakVold re-creates CVE-2011-1823: vold's netlink channel
	// is world-sendable and its message handler has a negative-index
	// code-execution bug.
	GingerBreakVold bool
	// ZergRushVold re-creates CVE-2011-3874: a stack overflow in the
	// framework-socket command parser of the volume daemon.
	ZergRushVold bool
	// FramebufferExposed re-creates the kernelchopper precondition
	// (CVE-2013-2596): /dev/graphics/fb0 is world-mappable and the
	// mapping exposes kernel memory.
	FramebufferExposed bool
	// NullSendpage re-creates CVE-2009-2692 in the socket layer.
	NullSendpage bool
	// MmapMinAddrZero permits null-page mappings (pre-hardening default).
	MmapMinAddrZero bool
	// HotplugUnvalidated re-creates the Exploid precondition: uevents can
	// point the hotplug helper at arbitrary paths.
	HotplugUnvalidated bool
	// ProcMemWriteBypass re-creates CVE-2012-0056 (mempodroid).
	ProcMemWriteBypass bool
	// PerfCounterBug re-creates CVE-2013-2094 (perf_event_open).
	PerfCounterBug bool
	// PutUserUnchecked re-creates CVE-2013-6282 (ARM put_user).
	PutUserUnchecked bool

	// Delegated-driver bugs (reachable only inside the CVM under
	// Anception).
	DiagExecBug      bool // CVE-2012-4220
	DiagOverflowBug  bool // CVE-2012-4221
	ExynosMemExposed bool // CVE-2012-6422
	CameraDriverBug  bool // CVE-2013-2595
	AshmemPinBug     bool // CVE-2011-1149 (psneuter)
	PtyRaceBug       bool // CVE-2014-0196
	SockDiagBug      bool // CVE-2013-1763
	L2TPBug          bool // CVE-2014-4943 (/dev/ppp path)

	// Host-only device bugs (unreachable under Anception: apps' opens of
	// these nodes are redirected into the CVM, where the node is absent).
	GPUDriverBug        bool // CVE-2011-1350/1352 (levitator, PowerVR)
	AudioACDBBug        bool // CVE-2013-2597
	NvhostBug           bool // CVE-2012-0946
	VideoDriverBug      bool // CVE-2013-4738
	BlockDeviceWritable bool // CVE-2011-1017 (LDM partition parser)

	// Lifecycle/service bugs.
	ZygoteSetuidBug         bool // RageAgainstTheCage / Zimperlich family
	ActivityDeserialization bool // CVE-2014-7911
}

// AllVulnerabilities returns the profile the Section V evaluation uses:
// every historical bug present, as on the studied 2010-2014 devices.
func AllVulnerabilities() VulnProfile {
	return VulnProfile{
		GingerBreakVold:    true,
		ZergRushVold:       true,
		FramebufferExposed: true,
		NullSendpage:       true,
		MmapMinAddrZero:    true,
		HotplugUnvalidated: true,
		ProcMemWriteBypass: true,
		PerfCounterBug:     true,
		PutUserUnchecked:   true,

		DiagExecBug:      true,
		DiagOverflowBug:  true,
		ExynosMemExposed: true,
		CameraDriverBug:  true,
		AshmemPinBug:     true,
		PtyRaceBug:       true,
		SockDiagBug:      true,
		L2TPBug:          true,

		GPUDriverBug:        true,
		AudioACDBBug:        true,
		NvhostBug:           true,
		VideoDriverBug:      true,
		BlockDeviceWritable: true,

		ZygoteSetuidBug:         true,
		ActivityDeserialization: true,
	}
}

// ServiceSpec describes one privileged service process.
type ServiceSpec struct {
	Name     string
	UID      int
	UI       bool // part of the UI/Input/lifecycle stack (host-resident)
	MemPages int  // resident footprint
	Binder   bool // registered with the binder context manager
	LoC      int  // lines of code, for the Section V-D accounting
}

// serviceCatalog is the privileged userspace of the simulated device. The
// LoC figures are sized so UI-related services total 72,542 of 181,260
// lines, matching the paper's measurements on Android 4.2.
var serviceCatalog = []ServiceSpec{
	// UI, input and lifecycle management (host side under Anception).
	{Name: "surfaceflinger", UID: abi.UIDSystem, UI: true, MemPages: 2600, Binder: true, LoC: 21900},
	{Name: "window", UID: abi.UIDSystem, UI: true, MemPages: 1500, Binder: true, LoC: 24642},
	{Name: "inputmethod", UID: abi.UIDSystem, UI: true, MemPages: 600, Binder: true, LoC: 9800},
	{Name: "activity", UID: abi.UIDSystem, UI: true, MemPages: 1400, Binder: true, LoC: 16200},

	// Delegable services (CVM side under Anception).
	{Name: "servicemanager", UID: abi.UIDSystem, MemPages: 120, Binder: false, LoC: 2300},
	{Name: "system_server", UID: abi.UIDSystem, MemPages: 2200, Binder: true, LoC: 40300},
	{Name: "vold", UID: abi.UIDRoot, MemPages: 420, Binder: false, LoC: 8200},
	{Name: "netd", UID: abi.UIDRoot, MemPages: 350, Binder: false, LoC: 7400},
	{Name: "installd", UID: abi.UIDRoot, MemPages: 280, Binder: false, LoC: 3900},
	{Name: "mediaserver", UID: abi.UIDSystem, MemPages: 900, Binder: true, LoC: 18200},
	{Name: "location", UID: abi.UIDSystem, MemPages: 330, Binder: true, LoC: 6100},
	{Name: "logd", UID: abi.UIDSystem, MemPages: 240, Binder: false, LoC: 4200},
	{Name: "keystore", UID: abi.UIDSystem, MemPages: 180, Binder: true, LoC: 3600},
	{Name: "drmserver", UID: abi.UIDSystem, MemPages: 190, Binder: true, LoC: 4800},
	{Name: "rild", UID: abi.UIDRoot, MemPages: 310, Binder: false, LoC: 5200},
	{Name: "sdcardd", UID: abi.UIDRoot, MemPages: 160, Binder: false, LoC: 2100},
	{Name: "debuggerd", UID: abi.UIDRoot, MemPages: 130, Binder: false, LoC: 2418},
	{Name: "zygote", UID: abi.UIDRoot, UI: true, MemPages: 1100, Binder: false, LoC: 0},
}

// Catalog returns a copy of the service catalog.
func Catalog() []ServiceSpec {
	out := make([]ServiceSpec, len(serviceCatalog))
	copy(out, serviceCatalog)
	return out
}

// Service is one booted service process.
type Service struct {
	Spec ServiceSpec
	Task *kernel.Task
}

// Services is the booted userspace of one kernel.
type Services struct {
	kernel *kernel.Kernel
	byName map[string]*Service

	WM   *WindowManager
	Vold *Vold
	Logd *Logd
}

// BootConfig controls which services come up.
type BootConfig struct {
	// Headless omits the UI stack, the configuration the CVM runs
	// (Section IV-4): no window manager, no framebuffer reservation.
	Headless bool
	// UIOnly starts only the UI/Input/lifecycle services, the Anception
	// host configuration: everything delegable lives in the CVM.
	UIOnly bool
	Vulns  VulnProfile
}

// Boot starts the privileged userspace on a kernel: spawns service
// processes with their footprints, registers binder endpoints, vold's
// netlink channel, and the device nodes.
func Boot(k *kernel.Kernel, cfg BootConfig) (*Services, error) {
	s := &Services{kernel: k, byName: make(map[string]*Service)}
	s.Logd = NewLogd()

	for _, spec := range serviceCatalog {
		if cfg.Headless && spec.UI {
			continue
		}
		if cfg.UIOnly && !spec.UI {
			continue
		}
		task := k.Spawn(abi.Cred{UID: spec.UID, GID: spec.UID}, spec.Name)
		task.ExecPath = "/system/bin/" + spec.Name
		if spec.MemPages > 0 {
			if _, err := task.AS.MapAnon(spec.MemPages, kernel.ProtRead|kernel.ProtWrite, kernel.VMAAnon, spec.Name); err != nil {
				return nil, fmt.Errorf("boot %s: %w", spec.Name, err)
			}
		}
		svc := &Service{Spec: spec, Task: task}
		s.byName[spec.Name] = svc

		switch spec.Name {
		case "window":
			s.WM = NewWindowManager(k, task)
			if err := k.Binder().Register("window", true, s.WM.HandleTransaction); err != nil {
				return nil, err
			}
		case "inputmethod":
			if err := k.Binder().Register("inputmethod", true, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("ime-ok"), nil
			}); err != nil {
				return nil, err
			}
		case "surfaceflinger":
			if err := k.Binder().Register("surfaceflinger", true, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("frame-ok"), nil
			}); err != nil {
				return nil, err
			}
		case "activity":
			vulnerable := cfg.Vulns.ActivityDeserialization
			if err := k.Binder().Register("activity", true, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				// CVE-2014-7911: a crafted serialized object in a
				// lifecycle transaction executes in the privileged
				// service's context.
				if vulnerable && len(data) >= len(SerializedGadgetMarker) &&
					string(data[:len(SerializedGadgetMarker)]) == SerializedGadgetMarker {
					if sender := k.Task(from.PID); sender != nil {
						k.GrantUserspaceRoot(sender, "activity manager deserialization (CVE-2014-7911)")
					}
				}
				return []byte("lifecycle-ok"), nil
			}); err != nil {
				return nil, err
			}
		case "vold":
			s.Vold = NewVold(k, task, s.Logd, cfg.Vulns.GingerBreakVold, cfg.Vulns.ZergRushVold)
			k.Net().RegisterNetlink(NetlinkVoldProto, s.Vold.HandleNetlink, cfg.Vulns.GingerBreakVold)
		case "location":
			// CodeGetLocation is declared read-only: a fix request has no
			// side effects, so the bridge's reply cache may serve it.
			if err := k.Binder().Register("location", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("fix:42.2808,-83.7430"), nil
			}, CodeGetLocation); err != nil {
				return nil, err
			}
		case "system_server":
			// Package metadata queries are idempotent (read-only).
			if err := k.Binder().Register("package", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("pkg-ok"), nil
			}, CodeQuery); err != nil {
				return nil, err
			}
		case "mediaserver":
			if err := k.Binder().Register("media", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("media-ok"), nil
			}); err != nil {
				return nil, err
			}
		case "keystore":
			if err := k.Binder().Register("keystore", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("key-ok"), nil
			}); err != nil {
				return nil, err
			}
		case "drmserver":
			if err := k.Binder().Register("drm", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
				return []byte("drm-ok"), nil
			}); err != nil {
				return nil, err
			}
		}
	}

	if err := installDevices(k, cfg); err != nil {
		return nil, err
	}
	if k.Trace() != nil {
		k.Trace().Record(sim.EvLifecycle, "[%s] android userspace booted (headless=%v, %d services)",
			k.Name(), cfg.Headless, len(s.byName))
	}
	return s, nil
}

// Service returns a booted service by name, or nil.
func (s *Services) Service(name string) *Service { return s.byName[name] }

// Names lists booted services.
func (s *Services) Names() []string {
	out := make([]string, 0, len(s.byName))
	for n := range s.byName {
		out = append(out, n)
	}
	return out
}

// ResidentPages sums the services' footprints.
func (s *Services) ResidentPages() int {
	n := 0
	for _, svc := range s.byName {
		n += svc.Task.AS.ResidentPages()
	}
	return n
}

// NetlinkVoldProto is vold's control-channel protocol number.
const NetlinkVoldProto = 16

// mknodFresh creates a device node, replacing a stale one left from a
// previous boot of the same (persistent) filesystem — the CVM-restart
// path re-binds drivers to the new kernel instance.
func mknodFresh(fs *vfs.FileSystem, root abi.Cred, path string, mode abi.FileMode, dev vfs.Device) error {
	err := fs.Mknod(root, path, mode, dev)
	if err == abi.EEXIST {
		if uerr := fs.Unlink(root, path); uerr != nil {
			return uerr
		}
		err = fs.Mknod(root, path, mode, dev)
	}
	return err
}

// installDevices creates the device nodes apps interact with.
func installDevices(k *kernel.Kernel, cfg BootConfig) error {
	root := abi.Cred{UID: abi.UIDRoot}
	fs := k.FS()
	if err := fs.MkdirAll(root, "/dev/graphics", 0o755); err != nil {
		return err
	}
	if err := fs.MkdirAll(root, "/dev/socket", 0o755); err != nil {
		return err
	}
	if err := mknodFresh(fs, root, "/dev/binder", 0o666, NewBinderDevice(k.Binder())); err != nil {
		return err
	}
	if err := mknodFresh(fs, root, "/dev/null", 0o666, nullDevice{}); err != nil {
		return err
	}
	// Delegated driver nodes exist on every kernel; under Anception the
	// app-visible instances are the CVM's.
	driverMode := func(enabled bool, mode DriverVulnMode) DriverVulnMode {
		if enabled {
			return mode
		}
		return DriverSafe
	}
	delegated := []struct {
		path string
		cve  string
		mode DriverVulnMode
	}{
		{"/dev/diag", "CVE-2012-4220", driverMode(cfg.Vulns.DiagExecBug, DriverExecDirect)},
		{"/dev/diag_dci", "CVE-2012-4221", driverMode(cfg.Vulns.DiagOverflowBug, DriverJumpToUser)},
		{"/dev/exynos-mem", "CVE-2012-6422", driverMode(cfg.Vulns.ExynosMemExposed, DriverExecDirect)},
		{"/dev/msm_camera", "CVE-2013-2595", driverMode(cfg.Vulns.CameraDriverBug, DriverExecDirect)},
		{"/dev/ashmem", "CVE-2011-1149", driverMode(cfg.Vulns.AshmemPinBug, DriverExecDirect)},
		{"/dev/ptmx", "CVE-2014-0196", driverMode(cfg.Vulns.PtyRaceBug, DriverJumpToUser)},
		{"/dev/ppp", "CVE-2014-4943", driverMode(cfg.Vulns.L2TPBug, DriverJumpToUser)},
	}
	for _, d := range delegated {
		drv := NewVulnDriver(k, d.path[len("/dev/"):], d.cve, d.mode)
		if err := mknodFresh(fs, root, d.path, 0o666, drv); err != nil {
			return err
		}
	}
	registerSockDiag(k, cfg.Vulns.SockDiagBug)

	if !cfg.Headless {
		// The CVM is headless: no framebuffer, GPU, audio, video or raw
		// block nodes exist there — which is exactly why the exploits
		// against those drivers die in the container.
		mode := abi.FileMode(0o660)
		if cfg.Vulns.FramebufferExposed {
			mode = 0o666 // the historical misconfiguration
		}
		if err := mknodFresh(fs, root, "/dev/graphics/fb0", mode, NewFramebuffer(cfg.Vulns.FramebufferExposed)); err != nil {
			return err
		}
		hostOnly := []struct {
			path string
			cve  string
			mode DriverVulnMode
		}{
			{"/dev/pvrsrvkm", "CVE-2011-1350", driverMode(cfg.Vulns.GPUDriverBug, DriverExecDirect)},
			{"/dev/msm_acdb", "CVE-2013-2597", driverMode(cfg.Vulns.AudioACDBBug, DriverExecDirect)},
			{"/dev/nvhost", "CVE-2012-0946", driverMode(cfg.Vulns.NvhostBug, DriverExecDirect)},
			{"/dev/video0", "CVE-2013-4738", driverMode(cfg.Vulns.VideoDriverBug, DriverExecDirect)},
		}
		for _, d := range hostOnly {
			drv := NewVulnDriver(k, d.path[len("/dev/"):], d.cve, d.mode)
			if err := mknodFresh(fs, root, d.path, 0o666, drv); err != nil {
				return err
			}
		}
		if err := fs.MkdirAll(root, "/dev/block", 0o755); err != nil {
			return err
		}
		blockMode := abi.FileMode(0o600)
		if cfg.Vulns.BlockDeviceWritable {
			blockMode = 0o666
		}
		if err := mknodFresh(fs, root, "/dev/block/mmcblk0", blockMode, NewBlockDevice(k, cfg.Vulns.BlockDeviceWritable)); err != nil {
			return err
		}
	}
	return nil
}
