package android

import (
	"encoding/binary"
	"fmt"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
	"anception/internal/vfs"
)

// DriverVulnMode classifies how a buggy driver can be abused, which
// determines the outcome when the driver has been delegated to the CVM.
type DriverVulnMode int

// Driver vulnerability modes.
const (
	// DriverSafe has no bug.
	DriverSafe DriverVulnMode = iota + 1
	// DriverExecDirect: a magic control request gives kernel code
	// execution directly (no attacker memory needed). A delegated driver
	// with this bug yields root in the CVM.
	DriverExecDirect
	// DriverJumpToUser: the bug makes the kernel jump to an attacker-
	// chosen *user* address. It only succeeds if the calling task has an
	// executable mapping there — which a CVM proxy never does, so the
	// attempt merely crashes the container driver.
	DriverJumpToUser
)

// Control request codes the exploit corpus uses.
const (
	// IoctlExploitTrigger is the crafted request hitting the bug.
	IoctlExploitTrigger uint32 = 0xDEAD0001
)

// VulnDriver is a character device with a historical bug. It needs its
// kernel handle to attribute compromises to the calling task.
type VulnDriver struct {
	kernel *kernel.Kernel
	name   string
	cve    string
	mode   DriverVulnMode

	crashes int
}

var _ vfs.Device = (*VulnDriver)(nil)

// NewVulnDriver creates a driver instance bound to a kernel.
func NewVulnDriver(k *kernel.Kernel, name, cve string, mode DriverVulnMode) *VulnDriver {
	return &VulnDriver{kernel: k, name: name, cve: cve, mode: mode}
}

// DevName implements vfs.Device.
func (d *VulnDriver) DevName() string { return d.name }

// Read implements vfs.Device.
func (d *VulnDriver) Read(_ vfs.Cred, p []byte, _ int64) (int, error) { return len(p), nil }

// Write implements vfs.Device.
func (d *VulnDriver) Write(_ vfs.Cred, p []byte, _ int64) (int, error) { return len(p), nil }

// Crashes reports failed exploitation attempts against this driver.
func (d *VulnDriver) Crashes() int { return d.crashes }

// Ioctl implements vfs.Device. The exploit trigger behaves per the vuln
// mode; everything else is a benign no-op.
func (d *VulnDriver) Ioctl(cred vfs.Cred, req uint32, arg []byte) ([]byte, error) {
	if req != IoctlExploitTrigger {
		return []byte("ok"), nil
	}
	task := d.kernel.Task(cred.PID)
	switch d.mode {
	case DriverExecDirect:
		if task != nil {
			d.kernel.CompromiseKernel(task, fmt.Sprintf("%s driver code execution (%s)", d.name, d.cve))
		}
		return nil, nil
	case DriverJumpToUser:
		// The kernel jumps to the attacker-supplied user address; with no
		// executable mapping there (the proxy case) the driver oopses.
		var addr uint64
		if len(arg) >= 8 {
			addr = binary.LittleEndian.Uint64(arg)
		}
		if task != nil && task.AS != nil && task.AS.HasExecutableMappingAt(addr) {
			d.kernel.CompromiseKernel(task, fmt.Sprintf("%s jump-to-user (%s)", d.name, d.cve))
			return nil, nil
		}
		d.crashes++
		if d.kernel.Trace() != nil {
			d.kernel.Trace().Record(sim.EvSecurity,
				"[%s] %s driver oops: jump to unmapped %#x (%s attempt)", d.kernel.Name(), d.name, addr, d.cve)
		}
		return nil, abi.EFAULT
	default:
		return nil, abi.EINVAL
	}
}

// BlockDevice is /dev/block/mmcblk0: writing a crafted partition header
// makes the (host) kernel's partition parser run attacker data, the
// CVE-2011-1017 channel. The misconfiguration is the node being
// world-writable.
type BlockDevice struct {
	kernel     *kernel.Kernel
	vulnerable bool
	data       []byte
}

var _ vfs.Device = (*BlockDevice)(nil)

// NewBlockDevice creates the raw block node.
func NewBlockDevice(k *kernel.Kernel, vulnerable bool) *BlockDevice {
	return &BlockDevice{kernel: k, vulnerable: vulnerable, data: make([]byte, abi.PageSize)}
}

// DevName implements vfs.Device.
func (b *BlockDevice) DevName() string { return "mmcblk0" }

// Read implements vfs.Device.
func (b *BlockDevice) Read(_ vfs.Cred, p []byte, off int64) (int, error) {
	if off >= int64(len(b.data)) {
		return 0, nil
	}
	return copy(p, b.data[off:]), nil
}

// Write implements vfs.Device: a crafted LDM header triggers the parser
// bug as the kernel rescans the partition table.
func (b *BlockDevice) Write(cred vfs.Cred, p []byte, off int64) (int, error) {
	if off < int64(len(b.data)) {
		copy(b.data[off:], p)
	}
	if b.vulnerable && len(p) >= 4 && string(p[:4]) == "LDM!" {
		if task := b.kernel.Task(cred.PID); task != nil {
			b.kernel.CompromiseKernel(task, "crafted LDM partition header (CVE-2011-1017)")
		}
	}
	return len(p), nil
}

// Ioctl implements vfs.Device.
func (b *BlockDevice) Ioctl(_ vfs.Cred, _ uint32, _ []byte) ([]byte, error) {
	return nil, abi.ENOTTY
}

// SockDiagMagic marks the crafted netlink message of CVE-2013-1763; the
// following 8 bytes carry the staged jump address.
const SockDiagMagic = "SOCKDIAG-OOB:"

// NetlinkSockDiagProto is the sock_diag protocol number.
const NetlinkSockDiagProto = 4

// registerSockDiag installs the vulnerable sock_diag receiver on a kernel.
func registerSockDiag(k *kernel.Kernel, vulnerable bool) {
	k.Net().RegisterNetlink(NetlinkSockDiagProto, func(sender abi.Cred, msg []byte) error {
		if !vulnerable || len(msg) < len(SockDiagMagic)+8 || string(msg[:len(SockDiagMagic)]) != SockDiagMagic {
			return nil
		}
		addr := binary.LittleEndian.Uint64(msg[len(SockDiagMagic):])
		task := k.Task(sender.PID)
		if task != nil && task.AS != nil && task.AS.HasExecutableMappingAt(addr) {
			k.CompromiseKernel(task, "sock_diag out-of-bounds family handler (CVE-2013-1763)")
			return nil
		}
		if k.Trace() != nil {
			k.Trace().Record(sim.EvSecurity, "[%s] sock_diag oops: jump to unmapped %#x", k.Name(), addr)
		}
		return abi.EFAULT
	}, true) // sock_diag accepted messages from any user, part of the bug
}

// SerializedGadgetMarker tags the crafted payload of CVE-2014-7911 in
// binder transactions to the (host-resident) activity manager.
const SerializedGadgetMarker = "SERIALIZED-GADGET:"
