package android

import (
	"fmt"

	"anception/internal/abi"
	"anception/internal/vfs"
)

// Android's multiuser feature (Related Work, File System Isolation): each
// user gets a private directory under /data/users/<id>, and switching
// users repoints each app's /data/data/<pkg> entry at the active user's
// store via a symbolic link. The paper's observation — which
// TestMultiuserDoesNotStopEscalation demonstrates — is that this isolates
// *users* from each other under the normal permission model but does
// nothing against privilege-escalation malware: root reads every store.

// UsersRoot is the per-user data root.
const UsersRoot = "/data/users"

// AddUser creates the private store for a user id.
func (pm *PackageManager) AddUser(fs *vfs.FileSystem, userID int) error {
	system := abi.Cred{UID: abi.UIDRoot}
	if err := fs.MkdirAll(system, UsersRoot, 0o711); err != nil {
		return fmt.Errorf("add user %d: %w", userID, err)
	}
	dir := fmt.Sprintf("%s/%d", UsersRoot, userID)
	if err := fs.Mkdir(system, dir, 0o711); err != nil && err != abi.EEXIST {
		return fmt.Errorf("add user %d: %w", userID, err)
	}
	return nil
}

// userPkgDir is the app's store for one user.
func userPkgDir(userID int, pkg string) string {
	return fmt.Sprintf("%s/%d/%s", UsersRoot, userID, pkg)
}

// SwitchUser repoints the app's data directory at the given user's store,
// creating it on first use. The app's original (install-time) directory
// becomes user 0's store.
func (pm *PackageManager) SwitchUser(fs *vfs.FileSystem, app *InstalledApp, userID int) error {
	system := abi.Cred{UID: abi.UIDRoot}

	// First switch: preserve the install-time directory as user 0's.
	st, err := fs.LstatPath(system, app.DataDir)
	switch {
	case err == nil && st.Type == vfs.TypeDir:
		if err := pm.AddUser(fs, 0); err != nil {
			return err
		}
		if err := fs.Rename(system, app.DataDir, userPkgDir(0, app.Package)); err != nil {
			return fmt.Errorf("switch user: preserve user 0 store: %w", err)
		}
	case err == nil && st.Type == vfs.TypeSymlink:
		if err := fs.Unlink(system, app.DataDir); err != nil {
			return fmt.Errorf("switch user: unlink old link: %w", err)
		}
	case err != nil && err != abi.ENOENT:
		return err
	}

	// Ensure the target user's store exists with the app's ownership.
	if err := pm.AddUser(fs, userID); err != nil {
		return err
	}
	target := userPkgDir(userID, app.Package)
	if err := fs.Mkdir(system, target, 0o700); err != nil && err != abi.EEXIST {
		return fmt.Errorf("switch user: %w", err)
	}
	if err := fs.Chown(system, target, app.UID, app.UID); err != nil {
		return err
	}

	// Repoint the app's canonical data path.
	if err := fs.Symlink(system, target, app.DataDir); err != nil {
		return fmt.Errorf("switch user: relink: %w", err)
	}
	return nil
}
