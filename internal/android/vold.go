package android

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/sim"
)

// Vold is the volume daemon. It runs as root and listens on a netlink
// control channel. With the GingerBreak vulnerability enabled, its message
// handler contains the CVE-2011-1823 negative-index bug: a crafted message
// with a negative index makes vold jump through an attacker-chosen GOT
// entry, which the historical exploit used to re-execute the attacker's
// binary with vold's root privileges.
type Vold struct {
	kernel     *kernel.Kernel
	task       *kernel.Task
	logd       *Logd
	vulnerable bool // GingerBreak negative index (CVE-2011-1823)
	zrVuln     bool // zergRush parser overflow (CVE-2011-3874)

	mu        sync.Mutex
	rootTasks []*kernel.Task
	crashes   int
}

// NewVold boots the volume daemon.
func NewVold(k *kernel.Kernel, task *kernel.Task, logd *Logd, gingerBreak, zergRush bool) *Vold {
	return &Vold{kernel: k, task: task, logd: logd, vulnerable: gingerBreak, zrVuln: zergRush}
}

// Task returns vold's process.
func (v *Vold) Task() *kernel.Task { return v.task }

// GingerBreakMagicIndex is the negative index that lands on the GOT entry
// the exploit overwrote. Values in the brute-forced range merely crash
// vold (producing the logcat entries the exploit scans).
const GingerBreakMagicIndex = -1073741821

// HandleNetlink processes one control message. The message grammar:
//
//	"volume list"                      — legitimate request
//	"GB:<index>:<path>"                — GingerBreak probe: negative index
//	                                     plus the path of the binary vold
//	                                     should end up executing
func (v *Vold) HandleNetlink(sender abi.Cred, msg []byte) error {
	text := string(msg)
	if strings.HasPrefix(text, "ZR:") {
		return v.handleZergRush(sender, strings.TrimPrefix(text, "ZR:"))
	}
	if !strings.HasPrefix(text, "GB:") {
		return nil // normal volume management traffic
	}
	parts := strings.SplitN(text, ":", 3)
	if len(parts) != 3 {
		return abi.EINVAL
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return abi.EINVAL
	}
	payloadPath := parts[2]

	if !v.vulnerable || idx >= 0 {
		return nil // patched vold ignores garbage
	}

	if idx != GingerBreakMagicIndex {
		// Wrong guess: vold dereferences junk and crashes; init restarts
		// it. The crash lands in the system log, which is how the real
		// exploit calibrates its brute force.
		v.mu.Lock()
		v.crashes++
		v.mu.Unlock()
		v.logd.Log(fmt.Sprintf("F/vold: fault addr deadbeef (GOT index %d)", idx))
		return abi.EFAULT
	}

	// Exact hit: vold executes the attacker's binary as root — but in
	// whatever kernel vold itself lives in.
	data, err := v.kernel.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, payloadPath)
	if err != nil {
		v.logd.Log("F/vold: exec payload missing " + payloadPath)
		return abi.ENOENT
	}
	if !kernel.IsAttackerPayload(data) {
		return nil
	}
	shell := v.kernel.Spawn(abi.Cred{UID: abi.UIDRoot, GID: abi.UIDRoot}, "exploit")
	shell.ExecPath = payloadPath
	v.mu.Lock()
	v.rootTasks = append(v.rootTasks, shell)
	v.mu.Unlock()
	v.logd.Log("I/vold: spawned " + payloadPath)
	if v.kernel.Trace() != nil {
		v.kernel.Trace().Record(sim.EvSecurity,
			"[%s] vold EXPLOITED: root shell pid=%d from %s (sender uid=%d)",
			v.kernel.Name(), shell.PID, payloadPath, sender.UID)
	}
	return nil
}

// handleZergRush models CVE-2011-3874: an overlong command argument
// smashes the parser stack and redirects vold into the attacker's staged
// command, which re-executes the attacker binary as root.
func (v *Vold) handleZergRush(sender abi.Cred, payloadPath string) error {
	if !v.zrVuln {
		return nil
	}
	data, err := v.kernel.FS().ReadFile(abi.Cred{UID: abi.UIDRoot}, payloadPath)
	if err != nil || !kernel.IsAttackerPayload(data) {
		v.logd.Log("F/vold: malformed framework command")
		return abi.EINVAL
	}
	shell := v.kernel.Spawn(abi.Cred{UID: abi.UIDRoot, GID: abi.UIDRoot}, "exploit")
	shell.ExecPath = payloadPath
	v.mu.Lock()
	v.rootTasks = append(v.rootTasks, shell)
	v.mu.Unlock()
	v.logd.Log("I/vold: spawned " + payloadPath + " (zergRush)")
	if v.kernel.Trace() != nil {
		v.kernel.Trace().Record(sim.EvSecurity,
			"[%s] vold EXPLOITED via zergRush: root shell pid=%d (sender uid=%d)",
			v.kernel.Name(), shell.PID, sender.UID)
	}
	return nil
}

// RootShells returns tasks the exploited vold spawned with root.
func (v *Vold) RootShells() []*kernel.Task {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*kernel.Task, len(v.rootTasks))
	copy(out, v.rootTasks)
	return out
}

// Crashes reports how many bad probes crashed vold.
func (v *Vold) Crashes() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.crashes
}

// Logd is the system log daemon; exploits read crash logs from it and the
// GingerBreak walkthrough kills/restarts logcat with a private log file.
type Logd struct {
	mu    sync.Mutex
	lines []string
}

// NewLogd returns an empty log daemon.
func NewLogd() *Logd { return &Logd{} }

// Log appends one line.
func (l *Logd) Log(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, line)
}

// Lines returns a copy of the log.
func (l *Logd) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.lines))
	copy(out, l.lines)
	return out
}

// Grep returns lines containing substr.
func (l *Logd) Grep(substr string) []string {
	var out []string
	for _, line := range l.Lines() {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}
