package android

import (
	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/vfs"
)

// BinderDevice is the /dev/binder node: its ioctl interface carries
// transactions into the binder driver.
type BinderDevice struct {
	driver *binder.Driver
}

var _ vfs.Device = (*BinderDevice)(nil)

// NewBinderDevice wraps a driver as a device node.
func NewBinderDevice(d *binder.Driver) *BinderDevice {
	return &BinderDevice{driver: d}
}

// DevName implements vfs.Device.
func (b *BinderDevice) DevName() string { return "binder" }

// Read implements vfs.Device; binder is ioctl-only.
func (b *BinderDevice) Read(_ vfs.Cred, _ []byte, _ int64) (int, error) {
	return 0, abi.EINVAL
}

// Write implements vfs.Device; binder is ioctl-only.
func (b *BinderDevice) Write(_ vfs.Cred, _ []byte, _ int64) (int, error) {
	return 0, abi.EINVAL
}

// Ioctl implements vfs.Device: IocTransact dispatches a transaction;
// IocWaitInputEvent is Listing 1's direct input-wait shorthand, serviced
// by the window manager.
func (b *BinderDevice) Ioctl(cred vfs.Cred, req uint32, arg []byte) ([]byte, error) {
	switch req {
	case binder.IocTransact:
		return b.driver.Transact(cred, arg)
	case binder.IocWaitInputEvent:
		txn := binder.EncodeTransaction(binder.Transaction{Service: "window", Code: CodeWaitInput})
		return b.driver.Transact(cred, txn)
	case binder.IocVersion:
		return []byte{8}, nil
	default:
		return nil, abi.EINVAL
	}
}

// Driver exposes the wrapped driver (for the Anception layer's UI test).
func (b *BinderDevice) Driver() *binder.Driver { return b.driver }

// Framebuffer is /dev/graphics/fb0. When the historical misconfiguration
// is present, mapping it exposes kernel memory to the caller — the
// kernelchopper (CVE-2013-2596) channel.
type Framebuffer struct {
	exposesKernel bool
	pixels        []byte
}

var _ vfs.MmapableDevice = (*Framebuffer)(nil)

// NewFramebuffer creates the node; exposesKernel selects the vulnerable
// configuration.
func NewFramebuffer(exposesKernel bool) *Framebuffer {
	return &Framebuffer{exposesKernel: exposesKernel, pixels: make([]byte, abi.PageSize)}
}

// DevName implements vfs.Device.
func (f *Framebuffer) DevName() string { return "fb0" }

// Read implements vfs.Device.
func (f *Framebuffer) Read(_ vfs.Cred, p []byte, off int64) (int, error) {
	if off >= int64(len(f.pixels)) {
		return 0, nil
	}
	return copy(p, f.pixels[off:]), nil
}

// Write implements vfs.Device.
func (f *Framebuffer) Write(_ vfs.Cred, p []byte, off int64) (int, error) {
	if off >= int64(len(f.pixels)) {
		return 0, abi.ENOSPC
	}
	return copy(f.pixels[off:], p), nil
}

// Ioctl implements vfs.Device (FBIOGET_VSCREENINFO-style queries).
func (f *Framebuffer) Ioctl(_ vfs.Cred, req uint32, _ []byte) ([]byte, error) {
	return []byte("1280x800"), nil
}

// MmapKind implements vfs.MmapableDevice.
func (f *Framebuffer) MmapKind() vfs.MmapKind {
	if f.exposesKernel {
		return vfs.MmapKernelMemory
	}
	return vfs.MmapDeviceLocal
}

// nullDevice is /dev/null.
type nullDevice struct{}

var _ vfs.Device = nullDevice{}

func (nullDevice) DevName() string                                  { return "null" }
func (nullDevice) Read(_ vfs.Cred, _ []byte, _ int64) (int, error)  { return 0, nil }
func (nullDevice) Write(_ vfs.Cred, p []byte, _ int64) (int, error) { return len(p), nil }
func (nullDevice) Ioctl(_ vfs.Cred, _ uint32, _ []byte) ([]byte, error) {
	return nil, abi.ENOTTY
}
