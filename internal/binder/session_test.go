package binder

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"anception/internal/abi"
)

func TestOpenSessionAndTransact(t *testing.T) {
	d := NewDriver()
	err := d.Register("location", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("code=%d len=%d", code, len(data))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sid, err := d.OpenSession("location")
	if err != nil {
		t.Fatal(err)
	}
	if d.SessionCount() != 1 {
		t.Fatalf("SessionCount = %d, want 1", d.SessionCount())
	}
	reply, err := d.TransactSession(abi.Cred{UID: abi.UIDAppBase}, sid, 3, []byte("xy"), false)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "code=3 len=2" {
		t.Fatalf("reply = %q", reply)
	}
	total, _ := d.Stats()
	if total != 1 {
		t.Fatalf("session transactions must count: total = %d", total)
	}
}

func TestOpenSessionUnknownService(t *testing.T) {
	d := NewDriver()
	if _, err := d.OpenSession("ghost"); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestTransactSessionStaleHandle(t *testing.T) {
	d := NewDriver()
	if err := d.Register("svc", false, func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	sid, err := d.OpenSession("svc")
	if err != nil {
		t.Fatal(err)
	}
	d.CloseSession(sid)
	if d.SessionCount() != 0 {
		t.Fatalf("SessionCount = %d after close", d.SessionCount())
	}
	if _, err := d.TransactSession(abi.Cred{}, sid, 1, nil, false); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("closed session: %v, want ENOENT", err)
	}
	// A handle that was never issued is equally dead.
	if _, err := d.TransactSession(abi.Cred{}, 999, 1, nil, false); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("never-opened session: %v, want ENOENT", err)
	}
	// Closing an unknown id is a no-op, not a panic.
	d.CloseSession(12345)
}

func TestTransactSessionOversized(t *testing.T) {
	d := NewDriver()
	if err := d.Register("svc", false, func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	sid, err := d.OpenSession("svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransactSession(abi.Cred{}, sid, 1, make([]byte, MaxTransaction+1), false); !errors.Is(err, abi.E2BIG) {
		t.Fatalf("oversized session txn: %v, want E2BIG", err)
	}
}

func TestTransactDecodedOversized(t *testing.T) {
	d := NewDriver()
	if err := d.Register("svc", false, func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	txn := Transaction{Service: "svc", Payload: make([]byte, MaxTransaction+1)}
	if _, err := d.TransactDecoded(abi.Cred{}, txn); !errors.Is(err, abi.E2BIG) {
		t.Fatalf("oversized decoded txn: %v, want E2BIG", err)
	}
}

func TestOnewayEncodeDecodeRoundTrip(t *testing.T) {
	in := Transaction{Service: "media", Code: 9, Payload: []byte("frame"), Oneway: true}
	out, err := DecodeTransaction(EncodeTransaction(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Oneway || out.Service != in.Service || out.Code != in.Code || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	// The synchronous encoding must stay byte-identical to the flat v1
	// format: no magic prefix.
	sync := EncodeTransaction(Transaction{Service: "media", Code: 9, Payload: []byte("frame")})
	if bytes.HasPrefix(sync, onewayMagic[:]) {
		t.Fatal("sync encoding grew the oneway magic")
	}
	if len(sync) != 2+len("media")+4+len("frame") {
		t.Fatalf("sync encoding is %d bytes, want flat v1 length", len(sync))
	}
}

func TestOnewayDiscardsReplyAndError(t *testing.T) {
	d := NewDriver()
	calls := 0
	err := d.Register("svc", false, func(abi.Cred, uint32, []byte) ([]byte, error) {
		calls++
		return []byte("ignored"), errors.New("ignored too")
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := d.Transact(abi.Cred{}, EncodeTransaction(Transaction{Service: "svc", Oneway: true}))
	if err != nil || reply != nil {
		t.Fatalf("oneway returned (%q, %v), want (nil, nil)", reply, err)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}
	if d.OnewayCount() != 1 {
		t.Fatalf("OnewayCount = %d, want 1", d.OnewayCount())
	}
}

func TestReadOnlyCodes(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }
	if err := d.Register("location", false, h, 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("vold", false, h); err != nil {
		t.Fatal(err)
	}
	if !d.IsReadOnly("location", 3) || !d.IsReadOnly("location", 7) {
		t.Fatal("declared codes must be read-only")
	}
	if d.IsReadOnly("location", 4) {
		t.Fatal("undeclared code must be mutating")
	}
	if d.IsReadOnly("vold", 3) {
		t.Fatal("service without declarations must have no read-only codes")
	}
	if d.IsReadOnly("ghost", 3) {
		t.Fatal("unknown service must not be read-only")
	}
}

func TestSessionFrameRoundTrip(t *testing.T) {
	in := SessionFrame{Session: 41, Code: 3, Payload: []byte("pinned"), Oneway: true}
	enc := EncodeSessionFrame(in)
	if !IsSessionFrame(enc) {
		t.Fatal("encoded frame lost its magic")
	}
	out, err := DecodeSessionFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Session != in.Session || out.Code != in.Code || out.Oneway != in.Oneway || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestSessionFrameMalformed(t *testing.T) {
	if _, err := DecodeSessionFrame([]byte("not a frame")); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("foreign bytes: %v, want EINVAL", err)
	}
	truncated := EncodeSessionFrame(SessionFrame{Session: 1})[:6]
	if _, err := DecodeSessionFrame(truncated); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("truncated frame: %v, want EINVAL", err)
	}
	// A session frame must not be mistaken for a flat transaction: its
	// 0xFF 0xFE prefix decodes as an impossible name length.
	if _, err := DecodeTransaction(EncodeSessionFrame(SessionFrame{Session: 1, Payload: []byte("x")})); err == nil {
		t.Fatal("session frame decoded as a flat transaction")
	}
}

// TestDriverChurnRace hammers one driver from concurrent registrars,
// transactors, session users, and listers. The assertion is the race
// detector's: run under -race in CI.
func TestDriverChurnRace(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return []byte("ok"), nil }
	if err := d.Register("steady", false, h, 1); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { // registrars: new names, plus EEXIST collisions
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = d.Register(fmt.Sprintf("svc-%d-%d", w, i), false, h)
				_ = d.Register("steady", false, h)
			}
		}(w)
		wg.Add(1)
		go func(w int) { // transactors: flat, decoded, and oneway dispatch
			defer wg.Done()
			cred := abi.Cred{UID: abi.UIDAppBase + w}
			for i := 0; i < iters; i++ {
				arg := EncodeTransaction(Transaction{Service: "steady", Code: 1, Oneway: i%2 == 0})
				if _, err := d.Transact(cred, arg); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() { // session churn: open, transact, close
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sid, err := d.OpenSession("steady")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := d.TransactSession(abi.Cred{}, sid, 1, nil, false); err != nil {
					t.Error(err)
					return
				}
				d.CloseSession(sid)
			}
		}()
		wg.Add(1)
		go func() { // observers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = d.Services()
				_, _ = d.Stats()
				_ = d.SessionCount()
				_ = d.IsReadOnly("steady", 1)
				_ = d.OnewayCount()
			}
		}()
	}
	wg.Wait()

	if d.SessionCount() != 0 {
		t.Fatalf("session leak: %d live handles after churn", d.SessionCount())
	}
	total, _ := d.Stats()
	if want := workers * iters * 2; total != want {
		t.Fatalf("transactions = %d, want %d", total, want)
	}
}
