// Package binder implements Android's custom capability-based IPC
// mechanism at the level of abstraction the paper operates on: a kernel
// driver exposed as /dev/binder whose ioctl interface carries synchronous
// transactions to named services.
//
// The driver also implements the classification the redirection logic
// relies on: a transaction either targets a UI/Input service — in which
// case it must be serviced on the host (principle 2) — or an ordinary
// service that may live in the CVM.
package binder

import (
	"encoding/binary"
	"fmt"
	"sync"

	"anception/internal/abi"
)

// Ioctl request codes on /dev/binder.
const (
	// IocTransact carries one synchronous transaction (the simulation's
	// stand-in for BINDER_WRITE_READ).
	IocTransact uint32 = 0xC0306201
	// IocWaitInputEvent blocks until a UI input event is available; it is
	// the paper's Listing 1 IOC_WAIT_INPUT_EVT.
	IocWaitInputEvent uint32 = 0xC0306202
	// IocVersion returns the binder protocol version.
	IocVersion uint32 = 0xC0046209
)

// Handler services transactions sent to one registered service.
type Handler func(from abi.Cred, code uint32, data []byte) ([]byte, error)

// Service is one registered binder endpoint.
type Service struct {
	Name    string
	UI      bool // part of the UI/Input stack (host-resident under Anception)
	Handler Handler
}

// Driver is the binder kernel driver of one kernel instance.
type Driver struct {
	mu       sync.Mutex
	services map[string]*Service

	txnCount   int
	uiTxnCount int
}

// NewDriver returns an empty binder driver.
func NewDriver() *Driver {
	return &Driver{services: make(map[string]*Service)}
}

// Register adds a service to the context manager. Registering a name twice
// is a programming error in platform assembly and is reported as EEXIST.
func (d *Driver) Register(name string, ui bool, h Handler) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.services[name]; ok {
		return fmt.Errorf("binder: service %q: %w", name, abi.EEXIST)
	}
	d.services[name] = &Service{Name: name, UI: ui, Handler: h}
	return nil
}

// Lookup returns the registered service, or nil.
func (d *Driver) Lookup(name string) *Service {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.services[name]
}

// Services lists registered service names (for the CLI and tests).
func (d *Driver) Services() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.services))
	for name := range d.services {
		out = append(out, name)
	}
	return out
}

// IsUITransaction reports whether the encoded transaction targets a
// UI/Input service. The redirection logic calls this to let UI ioctls pass
// through to the host (Section III-B, principle 2).
func (d *Driver) IsUITransaction(arg []byte) bool {
	txn, err := DecodeTransaction(arg)
	if err != nil {
		return false
	}
	svc := d.Lookup(txn.Service)
	return svc != nil && svc.UI
}

// MaxTransaction is the binder transaction buffer limit (1 MB on Android;
// oversized transactions fail rather than truncate).
const MaxTransaction = 1 << 20

// Transact decodes and dispatches one transaction, returning the encoded
// reply. Unknown services fail with ENOENT, mirroring a dead binder ref;
// oversized payloads fail with E2BIG as the real driver's buffer would.
func (d *Driver) Transact(from abi.Cred, arg []byte) ([]byte, error) {
	if len(arg) > MaxTransaction {
		return nil, fmt.Errorf("binder: transaction %d bytes exceeds buffer: %w", len(arg), abi.E2BIG)
	}
	txn, err := DecodeTransaction(arg)
	if err != nil {
		return nil, err
	}
	svc := d.Lookup(txn.Service)
	if svc == nil {
		return nil, fmt.Errorf("binder: no service %q: %w", txn.Service, abi.ENOENT)
	}
	d.mu.Lock()
	d.txnCount++
	if svc.UI {
		d.uiTxnCount++
	}
	d.mu.Unlock()
	return svc.Handler(from, txn.Code, txn.Payload)
}

// Stats reports total and UI transaction counts since boot.
func (d *Driver) Stats() (total, ui int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.txnCount, d.uiTxnCount
}

// Transaction is one decoded binder call.
type Transaction struct {
	Service string
	Code    uint32
	Payload []byte
}

// EncodeTransaction marshals a transaction into the flat ioctl argument
// format: u16 name length, name bytes, u32 code, payload.
func EncodeTransaction(t Transaction) []byte {
	buf := make([]byte, 2+len(t.Service)+4+len(t.Payload))
	binary.LittleEndian.PutUint16(buf, uint16(len(t.Service)))
	copy(buf[2:], t.Service)
	binary.LittleEndian.PutUint32(buf[2+len(t.Service):], t.Code)
	copy(buf[2+len(t.Service)+4:], t.Payload)
	return buf
}

// DecodeTransaction unmarshals the flat format produced by
// EncodeTransaction.
func DecodeTransaction(b []byte) (Transaction, error) {
	if len(b) < 2 {
		return Transaction{}, fmt.Errorf("binder: short transaction (%d bytes): %w", len(b), abi.EINVAL)
	}
	nameLen := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+nameLen+4 {
		return Transaction{}, fmt.Errorf("binder: truncated transaction: %w", abi.EINVAL)
	}
	name := string(b[2 : 2+nameLen])
	code := binary.LittleEndian.Uint32(b[2+nameLen:])
	payload := b[2+nameLen+4:]
	return Transaction{Service: name, Code: code, Payload: append([]byte(nil), payload...)}, nil
}
