// Package binder implements Android's custom capability-based IPC
// mechanism at the level of abstraction the paper operates on: a kernel
// driver exposed as /dev/binder whose ioctl interface carries synchronous
// transactions to named services.
//
// The driver also implements the classification the redirection logic
// relies on: a transaction either targets a UI/Input service — in which
// case it must be serviced on the host (principle 2) — or an ordinary
// service that may live in the CVM.
package binder

import (
	"encoding/binary"
	"fmt"
	"sync"

	"anception/internal/abi"
)

// Ioctl request codes on /dev/binder.
const (
	// IocTransact carries one synchronous transaction (the simulation's
	// stand-in for BINDER_WRITE_READ).
	IocTransact uint32 = 0xC0306201
	// IocWaitInputEvent blocks until a UI input event is available; it is
	// the paper's Listing 1 IOC_WAIT_INPUT_EVT.
	IocWaitInputEvent uint32 = 0xC0306202
	// IocVersion returns the binder protocol version.
	IocVersion uint32 = 0xC0046209
)

// Handler services transactions sent to one registered service.
type Handler func(from abi.Cred, code uint32, data []byte) ([]byte, error)

// Service is one registered binder endpoint.
type Service struct {
	Name    string
	UI      bool // part of the UI/Input stack (host-resident under Anception)
	Handler Handler
	// readOnly marks transaction codes declared idempotent at Register:
	// their replies depend only on (code, payload) and may be cached by
	// the bridge's reply cache. Any code outside this set is treated as
	// mutating and invalidates cached replies for the service.
	readOnly map[uint32]bool
}

// ReadOnlyCode reports whether code was declared read-only at Register.
func (s *Service) ReadOnlyCode(code uint32) bool { return s.readOnly[code] }

// Driver is the binder kernel driver of one kernel instance.
type Driver struct {
	mu       sync.Mutex
	services map[string]*Service
	// sessions maps pinned handles to services: a session skips the name
	// lookup on every transaction after OpenSession resolved it once.
	sessions  map[uint32]*Service
	nextSess  uint32
	txnCount  int
	uiTxn     int
	onewayTxn int
}

// NewDriver returns an empty binder driver.
func NewDriver() *Driver {
	return &Driver{
		services: make(map[string]*Service),
		sessions: make(map[uint32]*Service),
	}
}

// Register adds a service to the context manager. Registering a name twice
// is a programming error in platform assembly and is reported as EEXIST.
// Optional trailing codes declare idempotent (read-only) transaction codes
// whose replies the bridge may cache.
func (d *Driver) Register(name string, ui bool, h Handler, readOnlyCodes ...uint32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.services[name]; ok {
		return fmt.Errorf("binder: service %q: %w", name, abi.EEXIST)
	}
	svc := &Service{Name: name, UI: ui, Handler: h}
	if len(readOnlyCodes) > 0 {
		svc.readOnly = make(map[uint32]bool, len(readOnlyCodes))
		for _, c := range readOnlyCodes {
			svc.readOnly[c] = true
		}
	}
	d.services[name] = svc
	return nil
}

// Lookup returns the registered service, or nil.
func (d *Driver) Lookup(name string) *Service {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.services[name]
}

// IsReadOnly reports whether (service, code) was declared idempotent at
// Register; unknown services are never read-only.
func (d *Driver) IsReadOnly(service string, code uint32) bool {
	svc := d.Lookup(service)
	return svc != nil && svc.ReadOnlyCode(code)
}

// Services lists registered service names (for the CLI and tests).
func (d *Driver) Services() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.services))
	for name := range d.services {
		out = append(out, name)
	}
	return out
}

// OpenSession resolves a service name once and pins the handle: every
// later TransactSession on the returned id dispatches without a name
// lookup. Unknown services fail with ENOENT. Sessions die with the driver
// (i.e. with the kernel instance) — a CVM restart invalidates them all.
func (d *Driver) OpenSession(name string) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	svc := d.services[name]
	if svc == nil {
		return 0, fmt.Errorf("binder: no service %q: %w", name, abi.ENOENT)
	}
	d.nextSess++
	id := d.nextSess
	d.sessions[id] = svc
	return id, nil
}

// CloseSession drops a pinned handle; unknown ids are ignored.
func (d *Driver) CloseSession(id uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.sessions, id)
}

// SessionCount reports live pinned handles (tests and the CLI).
func (d *Driver) SessionCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sessions)
}

// TransactSession dispatches on a pinned handle: no name lookup, straight
// to the resolved service. A stale or never-opened id fails with ENOENT,
// mirroring a dead binder ref.
func (d *Driver) TransactSession(from abi.Cred, id uint32, code uint32, payload []byte, oneway bool) ([]byte, error) {
	if len(payload) > MaxTransaction {
		return nil, fmt.Errorf("binder: transaction %d bytes exceeds buffer: %w", len(payload), abi.E2BIG)
	}
	d.mu.Lock()
	svc := d.sessions[id]
	d.mu.Unlock()
	if svc == nil {
		return nil, fmt.Errorf("binder: no session %d: %w", id, abi.ENOENT)
	}
	return d.dispatch(svc, from, code, payload, oneway)
}

// MaxTransaction is the binder transaction buffer limit (1 MB on Android;
// oversized transactions fail rather than truncate).
const MaxTransaction = 1 << 20

// Transact decodes and dispatches one transaction, returning the encoded
// reply. Unknown services fail with ENOENT, mirroring a dead binder ref;
// oversized payloads fail with E2BIG as the real driver's buffer would.
func (d *Driver) Transact(from abi.Cred, arg []byte) ([]byte, error) {
	if len(arg) > MaxTransaction {
		return nil, fmt.Errorf("binder: transaction %d bytes exceeds buffer: %w", len(arg), abi.E2BIG)
	}
	txn, err := DecodeTransaction(arg)
	if err != nil {
		return nil, err
	}
	return d.TransactDecoded(from, txn)
}

// TransactDecoded dispatches an already-decoded transaction. The Anception
// layer decodes each bridged transaction exactly once (for routing) and
// enters here, instead of paying a second decode inside Transact; the
// byte-level Transact remains the ioctl surface.
func (d *Driver) TransactDecoded(from abi.Cred, txn Transaction) ([]byte, error) {
	if len(txn.Payload)+len(txn.Service) > MaxTransaction {
		return nil, fmt.Errorf("binder: transaction %d bytes exceeds buffer: %w", len(txn.Payload), abi.E2BIG)
	}
	svc := d.Lookup(txn.Service)
	if svc == nil {
		return nil, fmt.Errorf("binder: no service %q: %w", txn.Service, abi.ENOENT)
	}
	return d.dispatch(svc, from, txn.Code, txn.Payload, txn.Oneway)
}

// dispatch counts and runs one transaction. Oneway transactions run the
// handler but discard its reply (and its error — there is nobody to
// deliver either to), like TF_ONE_WAY.
func (d *Driver) dispatch(svc *Service, from abi.Cred, code uint32, payload []byte, oneway bool) ([]byte, error) {
	d.mu.Lock()
	d.txnCount++
	if svc.UI {
		d.uiTxn++
	}
	if oneway {
		d.onewayTxn++
	}
	d.mu.Unlock()
	if oneway {
		_, _ = svc.Handler(from, code, payload)
		return nil, nil
	}
	return svc.Handler(from, code, payload)
}

// IsUITransaction reports whether the encoded transaction targets a
// UI/Input service. The redirection logic calls this to let UI ioctls pass
// through to the host (Section III-B, principle 2).
func (d *Driver) IsUITransaction(arg []byte) bool {
	txn, err := DecodeTransaction(arg)
	if err != nil {
		return false
	}
	svc := d.Lookup(txn.Service)
	return svc != nil && svc.UI
}

// Stats reports total and UI transaction counts since boot.
func (d *Driver) Stats() (total, ui int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.txnCount, d.uiTxn
}

// OnewayCount reports oneway transactions dispatched since boot.
func (d *Driver) OnewayCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.onewayTxn
}

// Transaction is one decoded binder call.
type Transaction struct {
	Service string
	Code    uint32
	Payload []byte
	// Oneway marks an asynchronous (TF_ONE_WAY) transaction: dispatched
	// without a reply; the caller does not block on the service.
	Oneway bool
}

// Frame magics. The flat v1 transaction format starts with a u16 name
// length; a real name length of 0xFEFF (65279 bytes) never occurs in
// platform traffic, so the 0xFF 0xFE prefix is free to key the extended
// encodings introduced for the bridge fast path.
var (
	onewayMagic  = [4]byte{0xFF, 0xFE, 'O', '1'}
	sessionMagic = [4]byte{0xFF, 0xFE, 'S', '1'}
)

// EncodeTransaction marshals a transaction into the flat ioctl argument
// format: u16 name length, name bytes, u32 code, payload. Oneway
// transactions are prefixed with the oneway frame magic; the synchronous
// encoding is byte-identical to the original flat format.
func EncodeTransaction(t Transaction) []byte {
	n := 2 + len(t.Service) + 4 + len(t.Payload)
	var buf []byte
	if t.Oneway {
		buf = make([]byte, 4+n)
		copy(buf, onewayMagic[:])
		buf = buf[:4]
	} else {
		buf = make([]byte, 0, n)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Service)))
	buf = append(buf, t.Service...)
	buf = binary.LittleEndian.AppendUint32(buf, t.Code)
	buf = append(buf, t.Payload...)
	return buf
}

// DecodeTransaction unmarshals the formats produced by EncodeTransaction.
func DecodeTransaction(b []byte) (Transaction, error) {
	oneway := false
	if len(b) >= 4 && [4]byte(b[:4]) == onewayMagic {
		oneway = true
		b = b[4:]
	}
	if len(b) < 2 {
		return Transaction{}, fmt.Errorf("binder: short transaction (%d bytes): %w", len(b), abi.EINVAL)
	}
	nameLen := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+nameLen+4 {
		return Transaction{}, fmt.Errorf("binder: truncated transaction: %w", abi.EINVAL)
	}
	name := string(b[2 : 2+nameLen])
	code := binary.LittleEndian.Uint32(b[2+nameLen:])
	payload := b[2+nameLen+4:]
	return Transaction{Service: name, Code: code, Payload: append([]byte(nil), payload...), Oneway: oneway}, nil
}

// SessionFrame is one transaction addressed by pinned handle instead of
// service name — what the bridge ships over the async ring once a session
// is established, so the guest side dispatches without a lookup.
type SessionFrame struct {
	Session uint32
	Code    uint32
	Payload []byte
	Oneway  bool
}

// EncodeSessionFrame marshals a session-addressed transaction: the session
// magic, u32 session id, u32 code, u8 flags (bit0 = oneway), payload.
func EncodeSessionFrame(f SessionFrame) []byte {
	buf := make([]byte, 0, 4+4+4+1+len(f.Payload))
	buf = append(buf, sessionMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, f.Session)
	buf = binary.LittleEndian.AppendUint32(buf, f.Code)
	var flags uint8
	if f.Oneway {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = append(buf, f.Payload...)
	return buf
}

// IsSessionFrame reports whether b carries the session frame magic.
func IsSessionFrame(b []byte) bool {
	return len(b) >= 4 && [4]byte(b[:4]) == sessionMagic
}

// DecodeSessionFrame unmarshals EncodeSessionFrame's format.
func DecodeSessionFrame(b []byte) (SessionFrame, error) {
	if !IsSessionFrame(b) {
		return SessionFrame{}, fmt.Errorf("binder: not a session frame: %w", abi.EINVAL)
	}
	b = b[4:]
	if len(b) < 4+4+1 {
		return SessionFrame{}, fmt.Errorf("binder: truncated session frame: %w", abi.EINVAL)
	}
	f := SessionFrame{
		Session: binary.LittleEndian.Uint32(b),
		Code:    binary.LittleEndian.Uint32(b[4:]),
		Oneway:  b[8]&1 != 0,
		Payload: append([]byte(nil), b[9:]...),
	}
	return f, nil
}
