package binder

import "testing"

func FuzzDecodeTransaction(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTransaction(Transaction{Service: "window", Code: 2, Payload: []byte("p")}))
	f.Add([]byte{0xFF, 0xFF, 'x'})
	// The fast-path encodings: a oneway transaction, a session frame (must
	// not decode as a flat transaction), and mangled magic prefixes.
	f.Add(EncodeTransaction(Transaction{Service: "media", Code: 9, Payload: []byte("q"), Oneway: true}))
	f.Add(EncodeSessionFrame(SessionFrame{Session: 7, Code: 3, Payload: []byte("s")}))
	f.Add([]byte{0xFF, 0xFE, 'O', '1'})
	f.Add([]byte{0xFF, 0xFE, 'S', '1', 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		txn, err := DecodeTransaction(data)
		if err == nil {
			// Whatever decodes must re-encode decodably, preserving the
			// oneway flag.
			out, err2 := DecodeTransaction(EncodeTransaction(txn))
			if err2 != nil {
				t.Fatalf("re-encode broke: %v", err2)
			}
			if out.Oneway != txn.Oneway {
				t.Fatalf("oneway flag flipped on re-encode: %v -> %v", txn.Oneway, out.Oneway)
			}
		}
	})
}

func FuzzDecodeSessionFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSessionFrame(SessionFrame{Session: 1, Code: 3, Payload: []byte("p")}))
	f.Add(EncodeSessionFrame(SessionFrame{Session: 0xFFFFFFFF, Oneway: true}))
	f.Add([]byte{0xFF, 0xFE, 'S', '1'})
	f.Add(EncodeTransaction(Transaction{Service: "window", Code: 2}))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeSessionFrame(data)
		if err == nil {
			out, err2 := DecodeSessionFrame(EncodeSessionFrame(fr))
			if err2 != nil {
				t.Fatalf("re-encode broke: %v", err2)
			}
			if out.Session != fr.Session || out.Code != fr.Code || out.Oneway != fr.Oneway {
				t.Fatalf("round trip changed frame: %+v -> %+v", fr, out)
			}
		}
	})
}
