package binder

import "testing"

func FuzzDecodeTransaction(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTransaction(Transaction{Service: "window", Code: 2, Payload: []byte("p")}))
	f.Add([]byte{0xFF, 0xFF, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		txn, err := DecodeTransaction(data)
		if err == nil {
			// Whatever decodes must re-encode decodably.
			if _, err2 := DecodeTransaction(EncodeTransaction(txn)); err2 != nil {
				t.Fatalf("re-encode broke: %v", err2)
			}
		}
	})
}
