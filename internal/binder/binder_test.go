package binder

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"anception/internal/abi"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	txn := Transaction{Service: "window", Code: 7, Payload: []byte("touch@12,88")}
	got, err := DecodeTransaction(EncodeTransaction(txn))
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != txn.Service || got.Code != txn.Code || !bytes.Equal(got.Payload, txn.Payload) {
		t.Fatalf("round trip = %+v, want %+v", got, txn)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(name string, code uint32, payload []byte) bool {
		if len(name) > 60000 {
			name = name[:60000]
		}
		in := Transaction{Service: name, Code: code, Payload: payload}
		out, err := DecodeTransaction(EncodeTransaction(in))
		if err != nil {
			return false
		}
		return out.Service == in.Service && out.Code == in.Code && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := DecodeTransaction([]byte{9}); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("short buffer: %v, want EINVAL", err)
	}
	// Name length claims more bytes than present.
	bad := []byte{0xFF, 0xFF, 'x'}
	if _, err := DecodeTransaction(bad); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("truncated: %v, want EINVAL", err)
	}
}

func TestRegisterAndTransact(t *testing.T) {
	d := NewDriver()
	err := d.Register("location", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
		return []byte("fix:42.28,-83.74"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	arg := EncodeTransaction(Transaction{Service: "location", Code: 1})
	reply, err := d.Transact(abi.Cred{UID: abi.UIDAppBase}, arg)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "fix:42.28,-83.74" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }
	if err := d.Register("svc", false, h); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("svc", false, h); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("dup register: %v, want EEXIST", err)
	}
}

func TestTransactOversizedPayload(t *testing.T) {
	d := NewDriver()
	if err := d.Register("svc", false, func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	big := EncodeTransaction(Transaction{Service: "svc", Payload: make([]byte, MaxTransaction+1)})
	if _, err := d.Transact(abi.Cred{}, big); !errors.Is(err, abi.E2BIG) {
		t.Fatalf("oversized txn: %v, want E2BIG", err)
	}
}

func TestTransactUnknownService(t *testing.T) {
	d := NewDriver()
	arg := EncodeTransaction(Transaction{Service: "ghost"})
	if _, err := d.Transact(abi.Cred{}, arg); !errors.Is(err, abi.ENOENT) {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestUIClassification(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }
	if err := d.Register("window", true, h); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("location", false, h); err != nil {
		t.Fatal(err)
	}

	ui := EncodeTransaction(Transaction{Service: "window", Code: 1})
	nonUI := EncodeTransaction(Transaction{Service: "location", Code: 1})
	if !d.IsUITransaction(ui) {
		t.Fatal("window transaction must classify as UI")
	}
	if d.IsUITransaction(nonUI) {
		t.Fatal("location transaction must not classify as UI")
	}
	if d.IsUITransaction([]byte{1}) {
		t.Fatal("garbage must not classify as UI")
	}
	if d.IsUITransaction(EncodeTransaction(Transaction{Service: "nosuch"})) {
		t.Fatal("unknown service must not classify as UI")
	}
}

func TestStatsCountUITransactions(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }
	if err := d.Register("window", true, h); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("vold", false, h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Transact(abi.Cred{}, EncodeTransaction(Transaction{Service: "window"})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Transact(abi.Cred{}, EncodeTransaction(Transaction{Service: "vold"})); err != nil {
		t.Fatal(err)
	}
	total, ui := d.Stats()
	if total != 4 || ui != 3 {
		t.Fatalf("stats = (%d, %d), want (4, 3)", total, ui)
	}
}

func TestHandlerReceivesCallerCred(t *testing.T) {
	d := NewDriver()
	var got abi.Cred
	err := d.Register("svc", false, func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
		got = from
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	caller := abi.Cred{UID: 10007, GID: 10007, PID: 99}
	if _, err := d.Transact(caller, EncodeTransaction(Transaction{Service: "svc"})); err != nil {
		t.Fatal(err)
	}
	if got != caller {
		t.Fatalf("handler saw %+v, want %+v", got, caller)
	}
}

func TestServicesList(t *testing.T) {
	d := NewDriver()
	h := func(abi.Cred, uint32, []byte) ([]byte, error) { return nil, nil }
	for _, n := range []string{"a", "b"} {
		if err := d.Register(n, false, h); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Services(); len(got) != 2 {
		t.Fatalf("Services() = %v", got)
	}
}
