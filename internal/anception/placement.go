package anception

import (
	"hash/fnv"
	"time"
)

// Placement scheduler for the CVM fleet (DESIGN.md §16): decides which
// shard an app enrolls on, and which apps move when a shard overloads.
// Placement consumes the shard's observable load signals — the layer's
// instantaneous inflight count, the async ring's queue depth, the app
// population, and the adaptive data plane's per-class latency EWMAs and
// size histogram (LayerStats.Policy) — so a shard whose calls are
// getting slower scores as more loaded than a sibling with the same
// population but healthier per-op estimates.

// PlacementPolicy selects the fleet's app-to-shard assignment strategy.
type PlacementPolicy string

const (
	// PlaceLeastLoaded (the default) scores every shard's load signals
	// at install time and picks the minimum.
	PlaceLeastLoaded PlacementPolicy = "least-loaded"
	// PlaceHashed assigns by package-name hash: stateless, stable across
	// restarts, no load feedback — the classic hashed-pool shape.
	PlaceHashed PlacementPolicy = "hashed"
	// PlaceByUser keys placement on the app's Android user
	// (internal/android/multiuser): all of one user's apps share a
	// shard, so mutually-trusting apps co-locate and distinct users are
	// hardware-isolated from each other's compromised shards.
	PlaceByUser PlacementPolicy = "per-user"
)

// valid reports whether p names a known policy.
func (p PlacementPolicy) valid() bool {
	switch p {
	case PlaceLeastLoaded, PlaceHashed, PlaceByUser:
		return true
	}
	return false
}

// Load-score weights. The score is denominated in "queued calls": one
// inflight call counts 1, a ring-queued slot counts 1, and a resident
// app contributes the equivalent of carrying one expected call whose
// cost is the shard's observed per-op EWMA normalized against
// loadBaselineCost (so EWMAs only modulate the population term — an
// idle fleet still balances by population, and a shard whose calls run
// 2× slower weighs its apps 2×).
const (
	// loadBaselineCostNs normalizes the per-class EWMA signal: the
	// rough sim cost of one uncached redirected page call.
	loadBaselineCostNs = 300_000.0
	// loadMaxCostFactor caps the EWMA multiplier so one pathological
	// estimate cannot make a shard look infinitely loaded.
	loadMaxCostFactor = 8.0
)

// ShardLoad is one shard's placement-visible load snapshot.
type ShardLoad struct {
	Shard int
	Label string
	// Apps is the resident app population.
	Apps int
	// Inflight is the layer's instantaneous guest-call count.
	Inflight int64
	// RingQueued is submitted-but-unresolved async ring slots.
	RingQueued int
	// CostFactor is the per-class EWMA signal normalized to the
	// baseline call cost (1.0 when the model is cold or auto-tune off).
	CostFactor float64
	// Score is the composite the scheduler minimizes.
	Score float64
	// Elapsed is the shard's own sim clock — shards are independent
	// service domains, so this is per-shard, not fleet-wide.
	Elapsed time.Duration
}

// loadOf snapshots one shard's placement signals.
func loadOf(sh *Shard) ShardLoad {
	st := sh.Dev.Layer.Stats()
	l := ShardLoad{
		Shard:      sh.ID,
		Label:      sh.Dev.Label(),
		Apps:       sh.appCount(),
		Inflight:   sh.Dev.Layer.Inflight(),
		CostFactor: 1,
		Elapsed:    sh.Dev.Clock.Now(),
	}
	if q := st.Ring.Submitted - st.Ring.Completed - st.Ring.Failed; q > 0 {
		l.RingQueued = q
	}
	// Fold the policy EWMAs into a single expected-cost factor: the
	// histogram-weighted mean of the observed per-class costs, against
	// the baseline. Only observed classes count.
	var costSum, n float64
	for _, c := range st.Policy.ClassCostSimNs {
		if c > 0 {
			costSum += c
			n++
		}
	}
	if n > 0 {
		f := costSum / n / loadBaselineCostNs
		if f < 1 {
			f = 1
		}
		if f > loadMaxCostFactor {
			f = loadMaxCostFactor
		}
		l.CostFactor = f
	}
	l.Score = float64(l.Inflight) + float64(l.RingQueued) + float64(l.Apps)*l.CostFactor
	return l
}

// pickShard chooses the shard for a new app under the fleet's policy.
func (f *Fleet) pickShard(pkg string, userID int) *Shard {
	switch f.policy {
	case PlaceHashed:
		h := fnv.New32a()
		h.Write([]byte(pkg))
		return f.shards[int(h.Sum32())%len(f.shards)]
	case PlaceByUser:
		if userID < 0 {
			userID = 0
		}
		return f.shards[userID%len(f.shards)]
	default: // PlaceLeastLoaded
		best := f.shards[0]
		bestScore := loadOf(best).Score
		for _, sh := range f.shards[1:] {
			if s := loadOf(sh).Score; s < bestScore {
				best, bestScore = sh, s
			}
		}
		return best
	}
}

// Loads snapshots every shard's placement signals, in shard order.
func (f *Fleet) Loads() []ShardLoad {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ShardLoad, 0, len(f.shards))
	for _, sh := range f.shards {
		out = append(out, loadOf(sh))
	}
	return out
}

// imbalance returns the most and least loaded shards by score.
func (f *Fleet) imbalance() (hot, cold *Shard, hotScore, coldScore float64) {
	hot, cold = f.shards[0], f.shards[0]
	hotScore = loadOf(hot).Score
	coldScore = hotScore
	for _, sh := range f.shards[1:] {
		s := loadOf(sh).Score
		if s > hotScore {
			hot, hotScore = sh, s
		}
		if s < coldScore {
			cold, coldScore = sh, s
		}
	}
	return hot, cold, hotScore, coldScore
}
