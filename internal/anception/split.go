package anception

import (
	"time"

	"anception/internal/abi"
	"anception/internal/kernel"
	"anception/internal/redirect"
	"anception/internal/sim"
)

// handleSplit executes a split-class call: the host does its part and the
// proxy mirrors whatever state the container needs to stay consistent
// (Section III-D).
func (l *Layer) handleSplit(t *kernel.Task, args *kernel.Args) kernel.Result {
	switch args.Nr {
	case abi.SysFork, abi.SysVfork, abi.SysClone:
		res := l.host.InvokeLocal(t, *args)
		if !res.Ok() {
			return res
		}
		child := l.host.Task(int(res.Ret))
		if proxies := l.proxyMgr(); proxies.ProxyFor(t.PID) != nil || child.RE != 0 {
			// Mirroring the fork costs one small control round trip.
			l.chargeControlTrip()
			if _, err := proxies.MirrorFork(t.PID, child); err != nil {
				return kernel.Result{Ret: -1, Err: err}
			}
		}
		return res

	case abi.SysExecve:
		return l.handleExec(t, args)

	case abi.SysExit, abi.SysExitGroup:
		res := l.host.InvokeLocal(t, *args)
		if proxies := l.proxyMgr(); proxies.ProxyFor(t.PID) != nil {
			l.chargeControlTrip()
			proxies.MirrorExit(t.PID)
		}
		l.forgetMmapBindings(t.PID)
		return res

	case abi.SysSetuid, abi.SysSetgid:
		return l.handleCredChange(t, args)

	case abi.SysChdir:
		return l.handleChdir(t, args)

	case abi.SysUmask:
		res := l.host.InvokeLocal(t, *args)
		l.chargeControlTrip()
		l.proxyMgr().MirrorUmask(t.PID, t.Umask)
		return res

	case abi.SysBrk, abi.SysMremap:
		// Pages are managed by the trusted host (principle 3).
		return l.host.InvokeLocal(t, *args)

	case abi.SysMmap2:
		return l.handleMmap(t, args)

	case abi.SysMsync:
		return l.handleMsync(t, args)

	default:
		return l.host.InvokeLocal(t, *args)
	}
}

// handleChdir validates the target directory wherever it actually lives —
// the CVM for redirected paths — then updates the host task's working
// directory and mirrors it onto the proxy so both kernels resolve the
// app's relative paths identically.
func (l *Layer) handleChdir(t *kernel.Task, args *kernel.Args) kernel.Result {
	p := l.absPath(t, args.Path)
	if l.keepFSOnHost || redirect.DecideOpenPath(p) == redirect.RouteHost {
		res := l.host.InvokeLocal(t, *args)
		if res.Ok() {
			l.chargeControlTrip()
			l.proxyMgr().MirrorChdir(t.PID, t.CWD)
		}
		return res
	}
	statRes := l.forward(t, &kernel.Args{Nr: abi.SysStat, Path: p})
	if !statRes.Ok() {
		return statRes
	}
	if string(statRes.Data) != "d" {
		return kernel.Result{Ret: -1, Err: abi.ENOTDIR}
	}
	t.CWD = p
	l.proxyMgr().MirrorChdir(t.PID, p)
	return kernel.Result{}
}

// handleCredChange enforces footnote 3: a UID change after launch is not
// permitted by the Android security model, so Anception kills the app.
func (l *Layer) handleCredChange(t *kernel.Task, args *kernel.Args) kernel.Result {
	newID := args.UID
	cur := t.Cred.UID
	if args.Nr == abi.SysSetgid {
		newID = args.GID
		cur = t.Cred.GID
	}
	if newID == cur {
		return kernel.Result{} // no-op re-assertion is fine
	}
	l.counters.appsKilled.Add(1)
	if l.trace != nil {
		l.trace.Record(sim.EvSecurity,
			"anception killed pid=%d: attempted UID/GID change %d -> %d", t.PID, cur, newID)
	}
	t.SetState(kernel.TaskDead)
	if t.AS != nil {
		t.AS.Release()
	}
	l.proxyMgr().MirrorExit(t.PID)
	return kernel.Result{Ret: -1, Err: abi.EPERM}
}

// handleExec implements the exec split: system binaries run from the
// host's identical image; user-generated code is copied out of the CVM
// into the protected execution cache first.
func (l *Layer) handleExec(t *kernel.Task, args *kernel.Args) kernel.Result {
	p := l.absPath(t, args.Path)
	if hasPrefix(p, "/system/") || hasPrefix(p, l.execCache.Root()+"/") {
		return l.host.InvokeLocal(t, *args)
	}
	if hasPrefix(p, "/data/app/") {
		// Installed app code lives on the host (principle 1).
		return l.host.InvokeLocal(t, *args)
	}

	// User-generated code: fetch it from the container through the proxy.
	openRes := l.forward(t, &kernel.Args{Nr: abi.SysOpen, Path: p, Flags: abi.ORdOnly})
	if !openRes.Ok() {
		return openRes
	}
	guestFD := openRes.FD
	var contents []byte
	for {
		buf := make([]byte, abi.PageSize)
		readRes := l.forward(t, &kernel.Args{Nr: abi.SysRead, FD: guestFD, Buf: buf})
		if !readRes.Ok() {
			return readRes
		}
		if readRes.Ret == 0 {
			break
		}
		contents = append(contents, readRes.Data...)
	}
	l.forward(t, &kernel.Args{Nr: abi.SysClose, FD: guestFD})

	cached, err := l.execCache.Place(t.Cred.UID, p, contents)
	if err != nil {
		return kernel.Result{Ret: -1, Err: err}
	}
	if l.trace != nil {
		l.trace.Record(sim.EvLifecycle, "exec cache: %s -> %s for pid=%d", p, cached, t.PID)
	}
	fwd := *args
	fwd.Path = cached
	return l.host.InvokeLocal(t, fwd)
}

// handleMmap distinguishes the three mapping shapes the design cares
// about: anonymous/fixed mappings stay entirely on the host; host-local
// device mappings dispatch locally; mappings of CVM-resident files pull
// the pages across the boundary once and remap them into the app
// (Section III-D, Memory-mapped files).
func (l *Layer) handleMmap(t *kernel.Task, args *kernel.Args) kernel.Result {
	if args.FD <= 0 {
		return l.host.InvokeLocal(t, *args)
	}
	e := t.FD(args.FD)
	if e == nil {
		return kernel.Result{Ret: -1, Err: abi.EBADF}
	}
	if e.Kind != kernel.FDRemote {
		return l.host.InvokeLocal(t, *args)
	}

	pages := args.Pages
	if pages <= 0 {
		pages = 1
	}
	// Pull the file contents from the proxy (forced read faults +
	// pinning on the guest side), then build host-resident pages.
	buf := make([]byte, pages*abi.PageSize)
	readRes := l.forward(t, &kernel.Args{Nr: abi.SysPread64, FD: e.GuestFD, Buf: buf, Off: 0})
	if !readRes.Ok() {
		return readRes
	}
	base, err := t.AS.MapAnon(pages, args.Prot, kernel.VMAFile, e.Path)
	if err != nil {
		return kernel.Result{Ret: -1, Err: err}
	}
	if len(readRes.Data) > 0 {
		if err := t.AS.WriteBytes(l.host.Region(), base, readRes.Data); err != nil {
			return kernel.Result{Ret: -1, Err: err}
		}
	}
	// Efficient page remapping instead of per-fault round trips.
	l.clock.Advance(timesPages(pages, l.model.PageRemap))

	l.mu.Lock()
	if l.mmapBindings[t.PID] == nil {
		l.mmapBindings[t.PID] = make(map[uint64]mmapBinding)
	}
	l.mmapBindings[t.PID][base] = mmapBinding{guestFD: e.GuestFD, pages: pages}
	l.mu.Unlock()
	return kernel.Result{Ret: int64(base)}
}

// handleMsync writes a CVM-backed mapping back to its file in the
// container ("write-back is used when data has to be synchronized").
func (l *Layer) handleMsync(t *kernel.Task, args *kernel.Args) kernel.Result {
	l.mu.Lock()
	binding, ok := l.mmapBindings[t.PID][args.Vaddr]
	l.mu.Unlock()
	if !ok {
		return l.host.InvokeLocal(t, *args)
	}
	data, err := t.AS.ReadBytes(l.host.Region(), args.Vaddr, binding.pages*abi.PageSize)
	if err != nil {
		return kernel.Result{Ret: -1, Err: err}
	}
	res := l.forward(t, &kernel.Args{Nr: abi.SysPwrite64, FD: binding.guestFD, Buf: data, Off: 0})
	// The write-back went around the redirection cache: any pages cached
	// for descriptors on this guest file are stale now.
	l.noteGuestFDWrite(binding.guestFD)
	return res
}

func (l *Layer) forgetMmapBindings(pid int) {
	l.mu.Lock()
	delete(l.mmapBindings, pid)
	l.mu.Unlock()
}

// chargeControlTrip accounts a small mirror message to the container.
func (l *Layer) chargeControlTrip() {
	l.clock.Advance(l.model.RedirectFixedCost())
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

func timesPages(n int, per time.Duration) time.Duration {
	return time.Duration(n) * per
}
