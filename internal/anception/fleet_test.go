package anception

import (
	"bytes"
	"sync"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/netstack"
)

// fleetTestOpts turns every fast path on so all five epoch participants
// have observable warm state.
func fleetTestOpts(size int, policy PlacementPolicy) Options {
	return Options{
		Mode: ModeAnception, DisableTrace: true,
		RedirCache: true, RingDepth: 8, GrantThreshold: abi.PageSize,
		BinderSessions: true, BinderReplyCache: true,
		FleetSize: size, FleetPlacement: policy,
	}
}

func bootFleet(t *testing.T, size int, policy PlacementPolicy) *Fleet {
	t.Helper()
	f, err := NewFleet(fleetTestOpts(size, policy))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// warmShardApp drives one fleet app through every fast path: a bulk
// write (grant path), a page write+read (ring + redirection cache), a
// socket echo (sockop path), and a binder transaction (session path).
func warmShardApp(t *testing.T, f *Fleet, a *FleetApp) {
	t.Helper()
	p := a.Proc()
	fd, err := p.Open("warm.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatalf("%s: open: %v", a.Pkg, err)
	}
	bulk := make([]byte, 64<<10)
	if _, err := p.Pwrite(fd, bulk, 0); err != nil {
		t.Fatalf("%s: bulk pwrite: %v", a.Pkg, err)
	}
	page := make([]byte, abi.PageSize)
	if _, err := p.Pwrite(fd, page, 0); err != nil {
		t.Fatalf("%s: pwrite: %v", a.Pkg, err)
	}
	if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
		t.Fatalf("%s: pread: %v", a.Pkg, err)
	}
	sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatalf("%s: socket: %v", a.Pkg, err)
	}
	if err := p.Connect(sock, "echo.fleettest:80"); err != nil {
		t.Fatalf("%s: connect: %v", a.Pkg, err)
	}
	if _, err := p.Send(sock, []byte("ping")); err != nil {
		t.Fatalf("%s: send: %v", a.Pkg, err)
	}
	if _, err := p.Recv(sock, 4); err != nil {
		t.Fatalf("%s: recv: %v", a.Pkg, err)
	}
	bfd, err := p.OpenBinder()
	if err != nil {
		t.Fatalf("%s: open binder: %v", a.Pkg, err)
	}
	if _, err := p.BinderCall(bfd, "location", android.CodeGetLocation, page[:128]); err != nil {
		t.Fatalf("%s: binder: %v", a.Pkg, err)
	}
}

func registerFleetEcho(f *Fleet) {
	for _, sh := range f.Shards() {
		sh.Dev.RegisterRemote("echo.fleettest:80", func(req []byte) []byte { return req })
	}
}

func TestFleetBasics(t *testing.T) {
	f := bootFleet(t, 4, "")
	if f.Size() != 4 {
		t.Fatalf("size = %d, want 4", f.Size())
	}
	if f.Policy() != PlaceLeastLoaded {
		t.Fatalf("default policy = %q, want %q", f.Policy(), PlaceLeastLoaded)
	}
	for i, sh := range f.Shards() {
		want := "shard-" + string(rune('0'+i))
		if got := sh.Dev.Label(); got != want {
			t.Fatalf("shard %d label = %q, want %q", i, got, want)
		}
	}
	// Least-loaded placement spreads 8 apps 2 per shard: the fleet is
	// idle, so the score reduces to the population term.
	for i := 0; i < 8; i++ {
		if _, err := f.InstallApp(android.AppSpec{Package: "com.fleet.basic" + string(rune('0'+i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range f.Loads() {
		if l.Apps != 2 {
			t.Fatalf("shard %d has %d apps, want 2 (loads %+v)", l.Shard, l.Apps, f.Loads())
		}
	}
	// Duplicate install is rejected.
	if _, err := f.InstallApp(android.AppSpec{Package: "com.fleet.basic0"}); err == nil {
		t.Fatal("duplicate install succeeded")
	}
	// A non-anception fleet is rejected.
	if _, err := NewFleet(Options{Mode: ModeNative, FleetSize: 2}); err == nil {
		t.Fatal("native-mode fleet succeeded")
	}
}

func TestFleetPlacementPolicies(t *testing.T) {
	t.Run("hashed", func(t *testing.T) {
		f := bootFleet(t, 4, PlaceHashed)
		a, err := f.InstallApp(android.AppSpec{Package: "com.fleet.hashed"})
		if err != nil {
			t.Fatal(err)
		}
		// Same package hashes to the same shard in a fresh fleet.
		g := bootFleet(t, 4, PlaceHashed)
		b, err := g.InstallApp(android.AppSpec{Package: "com.fleet.hashed"})
		if err != nil {
			t.Fatal(err)
		}
		if a.Shard() != b.Shard() {
			t.Fatalf("hashed placement unstable: %d vs %d", a.Shard(), b.Shard())
		}
	})
	t.Run("per-user", func(t *testing.T) {
		f := bootFleet(t, 3, PlaceByUser)
		for user := 0; user < 6; user++ {
			a, err := f.InstallAppForUser(android.AppSpec{Package: "com.fleet.user" + string(rune('0'+user))}, user)
			if err != nil {
				t.Fatal(err)
			}
			if a.Shard() != user%3 {
				t.Fatalf("user %d placed on shard %d, want %d", user, a.Shard(), user%3)
			}
			if a.UserID != user {
				t.Fatalf("user id = %d, want %d", a.UserID, user)
			}
		}
	})
	t.Run("invalid", func(t *testing.T) {
		if _, err := NewFleet(fleetTestOpts(2, PlacementPolicy("bogus"))); err == nil {
			t.Fatal("bogus policy accepted")
		}
	})
}

func TestFleetMigration(t *testing.T) {
	f := bootFleet(t, 2, "")
	registerFleetEcho(f)
	a, err := f.InstallApp(android.AppSpec{Package: "com.fleet.mover"})
	if err != nil {
		t.Fatal(err)
	}
	src := a.Shard()
	warmShardApp(t, f, a)

	// Durable state written before the move must survive it.
	p := a.Proc()
	fd, err := p.Open("keep.dat", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("migrated bytes stay intact")
	if _, err := p.Pwrite(fd, payload, 0); err != nil {
		t.Fatal(err)
	}

	target := 1 - src
	if err := f.Migrate(a, target); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if a.Shard() != target {
		t.Fatalf("app on shard %d after migrate, want %d", a.Shard(), target)
	}
	if a.Proc() == p {
		t.Fatal("migration kept the old proc")
	}
	if p.Task.State != kernel.TaskDead {
		t.Fatalf("old task state = %v, want dead", p.Task.State)
	}
	if f.Migrations() != 1 || a.Moves() != 1 {
		t.Fatalf("migrations = %d, moves = %d, want 1/1", f.Migrations(), a.Moves())
	}

	np := a.Proc()
	nfd, err := np.Open("keep.dat", abi.ORdOnly, 0)
	if err != nil {
		t.Fatalf("open on target shard: %v", err)
	}
	got, err := np.Pread(nfd, len(payload), 0)
	if err != nil {
		t.Fatalf("read on target shard: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("data after migration = %q, want %q", got, payload)
	}

	// Migrating back is idempotent re-install on the original shard.
	if err := f.Migrate(a, src); err != nil {
		t.Fatalf("migrate back: %v", err)
	}
	if a.Shard() != src || a.Moves() != 2 {
		t.Fatalf("after return: shard %d moves %d, want %d/2", a.Shard(), a.Moves(), src)
	}
	// Same-shard migration is a no-op.
	if err := f.Migrate(a, src); err != nil {
		t.Fatalf("same-shard migrate: %v", err)
	}
	if a.Moves() != 2 {
		t.Fatalf("same-shard migrate counted a move")
	}
}

func TestFleetEvacuateAndRebalance(t *testing.T) {
	f := bootFleet(t, 2, "")
	registerFleetEcho(f)
	for i := 0; i < 4; i++ {
		if _, err := f.InstallApp(android.AppSpec{Package: "com.fleet.evac" + string(rune('0'+i))}); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := f.EvacuateShard(0)
	if err != nil {
		t.Fatalf("evacuate: %v", err)
	}
	if moved != 2 {
		t.Fatalf("evacuated %d apps, want 2", moved)
	}
	if n := f.Shard(0).appCount(); n != 0 {
		t.Fatalf("shard 0 holds %d apps after evacuation", n)
	}
	// Rebalance pulls the population back toward even.
	moved, err = f.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if moved == 0 {
		t.Fatal("rebalance moved nothing off the hot shard")
	}
	if n := f.Shard(0).appCount(); n == 0 {
		t.Fatal("rebalance left shard 0 empty")
	}
}

// TestFleetEpochIsolation is the per-CVM epoch keying drill: advancing
// one shard's epoch drains exactly that shard's participants — grants,
// ring, sockets, binder, cache, in the pinned order — and leaves every
// sibling's warm state untouched. Table-driven over the participants,
// and run with sibling traffic concurrent with the advance so the race
// detector patrols the isolation boundary.
func TestFleetEpochIsolation(t *testing.T) {
	f := bootFleet(t, 3, PlaceByUser)
	registerFleetEcho(f)
	apps := make([]*FleetApp, 3)
	for i := range apps {
		a, err := f.InstallAppForUser(android.AppSpec{Package: "com.fleet.epoch" + string(rune('0'+i))}, i)
		if err != nil {
			t.Fatal(err)
		}
		if a.Shard() != i {
			t.Fatalf("app %d on shard %d, want %d", i, a.Shard(), i)
		}
		warmShardApp(t, f, a)
		apps[i] = a
	}

	// Evidence counters: each participant's drain leaves a distinct mark.
	participants := []struct {
		name    string
		observe func(LayerStats) int
	}{
		{"grants", func(s LayerStats) int { return s.Grants.Table.Revokes }},
		{"ring", func(s LayerStats) int { return s.Ring.Rearms }},
		{"sockets", func(s LayerStats) int { return int(s.Net.Drains) }},
		{"binder", func(s LayerStats) int { return s.Binder.DrainedSessions }},
		{"cache", func(s LayerStats) int { return s.Cache.Invalidations }},
	}

	// Phase 1 — quiescent isolation: advance the middle shard's epoch
	// with the siblings idle, so any sibling counter movement could only
	// come from the advance itself.
	const drained = 1
	before := make([]LayerStats, 3)
	for i := range before {
		before[i] = f.Shard(i).Dev.Layer.Stats()
	}
	f.Shard(drained).Dev.AdvanceEpoch()
	after := make([]LayerStats, 3)
	for i := range after {
		after[i] = f.Shard(i).Dev.Layer.Stats()
	}

	// The drained shard stepped its epoch and every participant left
	// drain evidence.
	if after[drained].Epoch.Advances != before[drained].Epoch.Advances+1 {
		t.Fatalf("drained shard advances %d -> %d, want one step",
			before[drained].Epoch.Advances, after[drained].Epoch.Advances)
	}
	for _, p := range participants {
		t.Run(p.name, func(t *testing.T) {
			if got, was := p.observe(after[drained]), p.observe(before[drained]); got <= was {
				t.Errorf("shard %d %s evidence %d -> %d, want an increase", drained, p.name, was, got)
			}
			// Siblings: no drain evidence at all (their counters only move
			// on their own epoch advances, and none happened).
			for _, sib := range []int{0, 2} {
				if got, was := p.observe(after[sib]), p.observe(before[sib]); got != was {
					t.Errorf("sibling shard %d %s evidence moved %d -> %d during shard %d's advance",
						sib, p.name, was, got, drained)
				}
			}
		})
	}
	for _, sib := range []int{0, 2} {
		if after[sib].Epoch.Advances != before[sib].Epoch.Advances {
			t.Errorf("sibling shard %d epoch advanced", sib)
		}
	}

	// Phase 2 — race patrol: siblings keep serving while the middle
	// shard's epoch advances repeatedly. Shards are independent service
	// domains, so this must be data-race free (the CI -race run patrols
	// the boundary) and the siblings' traffic must never fail.
	var wg sync.WaitGroup
	for _, sib := range []int{0, 2} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := apps[i].Proc()
			fd, err := p.Open("during.dat", abi.ORdWr|abi.OCreat, 0o600)
			if err != nil {
				t.Errorf("sibling %d open: %v", i, err)
				return
			}
			page := make([]byte, abi.PageSize)
			for k := 0; k < 16; k++ {
				if _, err := p.Pwrite(fd, page, 0); err != nil {
					t.Errorf("sibling %d pwrite: %v", i, err)
					return
				}
				if _, err := p.Pread(fd, abi.PageSize, 0); err != nil {
					t.Errorf("sibling %d pread: %v", i, err)
					return
				}
			}
		}(sib)
	}
	for k := 0; k < 4; k++ {
		f.Shard(drained).Dev.AdvanceEpoch()
	}
	wg.Wait()

	// The drained shard's app re-faults and keeps working; its warm
	// cache went cold (invalidation), siblings' caches stayed warm.
	warmShardApp(t, f, apps[drained])
}

// TestFleetElapsedIsMaxShardClock pins the fleet time model: shards run
// on private clocks, so fleet elapsed time is the slowest shard, not
// the sum.
func TestFleetElapsedIsMaxShardClock(t *testing.T) {
	f := bootFleet(t, 2, "")
	registerFleetEcho(f)
	a, err := f.InstallApp(android.AppSpec{Package: "com.fleet.clock"})
	if err != nil {
		t.Fatal(err)
	}
	warmShardApp(t, f, a)
	var max, sum int64
	for _, sh := range f.Shards() {
		now := int64(sh.Dev.Clock.Now())
		sum += now
		if now > max {
			max = now
		}
	}
	if got := int64(f.Elapsed()); got != max {
		t.Fatalf("fleet elapsed %d, want max shard clock %d (sum %d)", got, max, sum)
	}
	if max == sum {
		t.Fatal("both shards burned identical nonzero time; drill is vacuous")
	}
}
