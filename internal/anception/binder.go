package anception

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/proxy"
	"anception/internal/sim"
)

// The binder bridge fast path (DESIGN.md §12) amortizes the CVM penalty
// the same way the redirection cache, async ring, and grant path amortized
// file I/O:
//
//   - Persistent sessions: the first transaction to a CVM service pays
//     the full cold penalty plus a one-time BinderSessionSetup (proxy
//     enrollment + pinned guest handle); every later transaction skips
//     the guest name lookup and CVM wakeup and pays BinderSessionPerTxn.
//   - Ring pipelining: with an async ring transport, session traffic
//     rides SQ/CQ slots (coalesced doorbells, per-slot deadline,
//     EHOSTDOWN fail-fast on restart) keyed by service name so one
//     service's transactions stay FIFO while services overlap.
//   - Idempotent reply cache: replies to codes declared read-only at
//     Register are cached keyed on (service, code, payload hash),
//     invalidated by any mutating transaction to the same service and
//     by boot-generation rollover, and bypassed in degraded mode.
//
// Everything here is opt-in (Options.BinderSessions / BinderReplyCache);
// with both off the bridge is the paper's synchronous +19 ms path.

// maxBinderReplies bounds the reply cache; past it the whole map is
// dropped (the PR 2 wholesale-eviction pattern — bounded memory beats
// cleverness for a cache this cheap to refill).
const maxBinderReplies = 256

// binderReplyKey addresses one cached reply.
type binderReplyKey struct {
	service string
	code    uint32
	hash    uint64
}

// binderReply is one cached reply, pinned to the boot generation it was
// produced against. storedAt lets restore-time reconciliation keep
// replies produced at or before the checkpoint (the service state they
// reflect is inside the restored image) and drop everything newer.
type binderReply struct {
	data     []byte
	gen      int
	storedAt time.Duration
}

// binderSession is a pinned guest handle, valid only for its generation.
// openedAt dates the enrollment for restore-time reconciliation: a
// session opened at or before the checkpoint has its guest-side state in
// the restored image and can be re-pinned without a fresh setup charge.
type binderSession struct {
	id       uint32
	gen      int
	openedAt time.Duration
}

// binderFastPath is the layer's session/cache state. Counters are atomic
// (read lock-free by Stats); the session and reply tables take mu.
type binderFastPath struct {
	sessions   bool
	replyCache bool

	mu      sync.Mutex
	gen     int
	handles map[string]binderSession
	replies map[binderReplyKey]binderReply

	sessionsOpened  atomic.Int64
	sessionTxns     atomic.Int64
	pipelined       atomic.Int64
	oneway          atomic.Int64
	replyHits       atomic.Int64
	replyStores     atomic.Int64
	invalidations   atomic.Int64
	drainedSessions atomic.Int64
	submitted       atomic.Int64
	completed       atomic.Int64
	failed          atomic.Int64
}

// BinderStats snapshots the fast path's counters (all zero when the fast
// path is disabled).
type BinderStats struct {
	// SessionsOpened counts one-time session setups (BinderSessionSetup
	// charges); SessionTxns counts transactions dispatched on an
	// established session, of which Pipelined rode async ring slots.
	SessionsOpened int
	SessionTxns    int
	Pipelined      int
	// Oneway counts asynchronous (no-reply) transactions bridged.
	Oneway int
	// ReplyHits/ReplyStores/Invalidations are the idempotent reply
	// cache's counters; a mutating transaction to a service invalidates
	// every cached reply for that service.
	ReplyHits     int
	ReplyStores   int
	Invalidations int
	// DrainedSessions counts pinned handles dropped at CVM restart.
	DrainedSessions int
	// Submitted = Completed + Failed is the fast path's accounting
	// identity: every session-path transaction ends exactly one way.
	// (Reply-cache hits are served host-side and never submitted.)
	Submitted int
	Completed int
	Failed    int
}

func newBinderFastPath(sessions, replyCache bool, gen int) *binderFastPath {
	return &binderFastPath{
		sessions:   sessions,
		replyCache: replyCache,
		gen:        gen,
		handles:    make(map[string]binderSession),
		replies:    make(map[binderReplyKey]binderReply),
	}
}

func (fp *binderFastPath) snapshot() BinderStats {
	return BinderStats{
		SessionsOpened:  int(fp.sessionsOpened.Load()),
		SessionTxns:     int(fp.sessionTxns.Load()),
		Pipelined:       int(fp.pipelined.Load()),
		Oneway:          int(fp.oneway.Load()),
		ReplyHits:       int(fp.replyHits.Load()),
		ReplyStores:     int(fp.replyStores.Load()),
		Invalidations:   int(fp.invalidations.Load()),
		DrainedSessions: int(fp.drainedSessions.Load()),
		Submitted:       int(fp.submitted.Load()),
		Completed:       int(fp.completed.Load()),
		Failed:          int(fp.failed.Load()),
	}
}

func replyKeyFor(txn binder.Transaction) binderReplyKey {
	h := fnv.New64a()
	h.Write(txn.Payload)
	return binderReplyKey{service: txn.Service, code: txn.Code, hash: h.Sum64()}
}

// lookupReply serves a cached reply if one exists for the current boot
// generation.
func (fp *binderFastPath) lookupReply(key binderReplyKey) ([]byte, bool) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	r, ok := fp.replies[key]
	if !ok || r.gen != fp.gen {
		return nil, false
	}
	return r.data, true
}

// storeReply caches a read-only reply, dropping the whole map if it
// outgrows its bound.
func (fp *binderFastPath) storeReply(key binderReplyKey, data []byte, gen int, at time.Duration) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if gen != fp.gen {
		return // produced against a container that no longer exists
	}
	if len(fp.replies) >= maxBinderReplies {
		fp.replies = make(map[binderReplyKey]binderReply)
	}
	fp.replies[key] = binderReply{data: append([]byte(nil), data...), gen: gen, storedAt: at}
	fp.replyStores.Add(1)
}

// invalidateService drops every cached reply for one service (a mutating
// transaction may have changed anything the service would answer).
func (fp *binderFastPath) invalidateService(service string) int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	n := 0
	for k := range fp.replies {
		if k.service == service {
			delete(fp.replies, k)
			n++
		}
	}
	if n > 0 {
		fp.invalidations.Add(int64(n))
	}
	return n
}

// drainBinder rolls the fast path to a new boot generation: every pinned
// session handle and cached reply died with the old container. Called
// from ReplaceGuest and the supervisor's BinderDrainer hook.
func (l *Layer) drainBinder(gen int) {
	fp := l.binder
	if fp == nil {
		return
	}
	fp.mu.Lock()
	dropped := len(fp.handles)
	replies := len(fp.replies)
	if dropped > 0 {
		fp.handles = make(map[string]binderSession)
	}
	if replies > 0 {
		fp.replies = make(map[binderReplyKey]binderReply)
	}
	fp.gen = gen
	fp.mu.Unlock()
	fp.drainedSessions.Add(int64(dropped))
	if l.trace != nil && dropped+replies > 0 {
		l.trace.Record(sim.EvBinderSession,
			"drained %d binder sessions and %d cached replies at restart (gen %d)", dropped, replies, gen)
	}
}

// reconcileBinder is drainBinder's generation-aware sibling for snapshot
// restores: the guest that just came up carries every binder enrollment
// that existed when the checkpoint was taken at takenAt, so sessions
// opened at or before that moment are re-pinned on the new guest — the
// OpenSession re-derives the handle id from the restored service state,
// with NO BinderSessionSetup charge (the enrollment work is inside the
// image). Sessions opened after the checkpoint, and replies stored after
// it, reflect state the rewind erased; they drain exactly as a restart
// would. Returns (sessionsKept, repliesKept).
func (l *Layer) reconcileBinder(guest *kernel.Kernel, gen int, takenAt time.Duration) (sessionsKept, repliesKept int) {
	fp := l.binder
	if fp == nil {
		return 0, 0
	}
	fp.mu.Lock()
	oldHandles := fp.handles
	oldReplies := fp.replies
	fp.handles = make(map[string]binderSession)
	fp.replies = make(map[binderReplyKey]binderReply)
	fp.gen = gen
	dropped := 0
	for service, h := range oldHandles {
		if h.openedAt > takenAt {
			dropped++
			continue
		}
		sid, err := guest.Binder().OpenSession(service)
		if err != nil {
			// The restored image does not know this service after all
			// (e.g. it was registered post-checkpoint under a name that
			// predates it); treat like a drained session.
			dropped++
			continue
		}
		fp.handles[service] = binderSession{id: sid, gen: gen, openedAt: h.openedAt}
		sessionsKept++
	}
	droppedReplies := 0
	for k, r := range oldReplies {
		if r.storedAt > takenAt {
			droppedReplies++
			continue
		}
		r.gen = gen
		fp.replies[k] = r
		repliesKept++
	}
	fp.mu.Unlock()
	fp.drainedSessions.Add(int64(dropped))
	if l.trace != nil {
		l.trace.Record(sim.EvBinderSession,
			"restore-reconcile: %d sessions re-pinned, %d replies kept; dropped %d sessions, %d replies (gen %d)",
			sessionsKept, repliesKept, dropped, droppedReplies, gen)
	}
	return sessionsKept, repliesKept
}

// BinderStats snapshots the fast-path counters (zero value when the fast
// path is disabled).
func (l *Layer) BinderStats() BinderStats {
	if l.binder == nil {
		return BinderStats{}
	}
	return l.binder.snapshot()
}

// bridgeBinder relays a binder transaction to a service delegated to the
// container. With the fast path off this is the paper's synchronous
// +19 ms bridge; with Options.BinderSessions it dispatches on a pinned
// session (ring-pipelined when the async ring is active), and with
// Options.BinderReplyCache idempotent replies are served host-side.
func (l *Layer) bridgeBinder(st *layerState, t *kernel.Task, args *kernel.Args, txn binder.Transaction) kernel.Result {
	g := st.guest
	if g.Panicked() != "" {
		l.counters.hostDown.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("binder bridge: container down: %w", abi.EHOSTDOWN)}
	}
	fp := l.binder
	// A forced-sync override pins the paper's synchronous bridge: no
	// reply cache, no session dispatch.
	forceSync := l.policy.forceSync()
	readOnly := false
	if fp != nil && fp.replyCache && !st.degraded && !forceSync {
		readOnly = !txn.Oneway && g.Binder().IsReadOnly(txn.Service, txn.Code)
		if !readOnly {
			// A mutating (or oneway) transaction may change anything the
			// service would answer: invalidate before dispatch, so even a
			// failed attempt can't leave a stale reply servable.
			if n := fp.invalidateService(txn.Service); n > 0 && l.trace != nil {
				l.trace.Record(sim.EvBinderSession, "invalidated %d cached replies for %q (mutating code %d)",
					n, txn.Service, txn.Code)
			}
		} else {
			key := replyKeyFor(txn)
			if data, ok := fp.lookupReply(key); ok {
				// Served host-side: no CVM transaction at all. The app
				// pays the cache probe plus moving the bytes, the same
				// shape as a redirection-cache read hit.
				fp.replyHits.Add(1)
				l.counters.binderBridged.Add(1)
				l.clock.Advance(l.model.CacheLookup +
					time.Duration(len(args.Buf)+len(data))*l.model.MarshalPerByte)
				if l.trace != nil {
					l.trace.Record(sim.EvBinderSession, "reply cache hit %q code=%d (%d B)",
						txn.Service, txn.Code, len(data))
				}
				return kernel.Result{Data: append([]byte(nil), data...), Ret: int64(len(data))}
			}
		}
	}

	var res kernel.Result
	var gen int
	if fp != nil && fp.sessions && !forceSync {
		res, gen = l.bridgeBinderSession(st, t, args, txn)
	} else {
		if readOnly {
			// Pin the boot generation before dispatch so a restart that
			// races the transaction drops the reply instead of caching it
			// against the wrong container.
			fp.mu.Lock()
			gen = fp.gen
			fp.mu.Unlock()
		}
		res = l.bridgeBinderSync(st, t, args, txn)
	}
	if readOnly && res.Err == nil {
		fp.storeReply(replyKeyFor(txn), res.Data, gen, l.clock.Now())
	}
	return res
}

// bridgeBinderSync is the original uncached bridge: one synchronous CVM
// round-trip paying the full +19 ms penalty (Section VI-A). Its charging
// is what reproduces the paper's 31.0 -> 31.3 ms Table I rows, so it is
// byte-for-byte independent of every fast-path knob.
func (l *Layer) bridgeBinderSync(st *layerState, t *kernel.Task, args *kernel.Args, txn binder.Transaction) kernel.Result {
	l.counters.binderBridged.Add(1)
	l.clock.Advance(l.model.BinderTransaction +
		l.model.BinderCVMPenalty +
		time.Duration(len(args.Buf))*l.model.BinderCVMPerByte)
	if l.trace != nil {
		l.trace.Record(sim.EvBinder, "bridged binder txn %q from pid=%d to CVM", txn.Service, t.PID)
	}
	out, err := st.guest.Binder().TransactDecoded(t.Cred, txn)
	if err != nil {
		return kernel.Result{Ret: -1, Err: err}
	}
	return kernel.Result{Data: out, Ret: int64(len(out))}
}

// bridgeBinderSession dispatches on a pinned session, opening one first if
// needed. Returns the boot generation the transaction ran against so the
// reply cache can pin its entry. Unlike the uncached bridge (which
// predates the circuit breaker and stays untouched), the fast path obeys
// degraded mode like the rest of the redirection machinery.
func (l *Layer) bridgeBinderSession(st *layerState, t *kernel.Task, args *kernel.Args, txn binder.Transaction) (kernel.Result, int) {
	fp := l.binder
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}, 0
	}
	defer l.exitGuestCall()
	fp.submitted.Add(1)
	sid, gen, setup, err := l.ensureBinderSession(st, t, txn.Service)
	if err != nil {
		fp.failed.Add(1)
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("binder session %q: %w", txn.Service, err)}, gen
	}
	l.counters.binderBridged.Add(1)
	fp.sessionTxns.Add(1)
	if txn.Oneway {
		fp.oneway.Add(1)
	}

	// Fixed cost: the first transaction still wakes the cold CVM (full
	// penalty; the one-time BinderSessionSetup was charged when the
	// session opened); established sessions pay only the pinned-dispatch
	// cost. Payload bytes cross the boundary either way.
	fixed := l.model.BinderSessionPerTxn
	if setup {
		fixed = l.model.BinderCVMPenalty
	}
	perByte := time.Duration(len(args.Buf)) * l.model.BinderCVMPerByte

	if ring, ok := st.transport.(marshal.AsyncTransport); ok {
		// The session fixed cost includes the synchronous world-switch
		// pair; on the ring those interrupts are the doorbell and reap,
		// charged by the ring itself and coalesced across slots — which
		// is where pipelined submitters pull ahead of sync sessions.
		pipeFixed := fixed - 2*l.model.WorldSwitch
		if pipeFixed < 0 {
			pipeFixed = 0
		}
		return l.bridgeBinderRing(st, ring, t, txn, sid, pipeFixed+perByte), gen
	}

	l.clock.Advance(l.model.BinderTransaction + fixed + perByte)
	if l.trace != nil {
		l.trace.Record(sim.EvBinder, "session binder txn %q sid=%d from pid=%d", txn.Service, sid, t.PID)
	}
	out, err := st.guest.Binder().TransactSession(t.Cred, sid, txn.Code, txn.Payload, txn.Oneway)
	if err != nil {
		fp.failed.Add(1)
		return kernel.Result{Ret: -1, Err: err}, gen
	}
	fp.completed.Add(1)
	return kernel.Result{Data: out, Ret: int64(len(out))}, gen
}

// ensureBinderSession returns the pinned handle for a service, opening it
// on first use: proxy enrollment (the session's guest-side execution
// context) plus the guest OpenSession, charged one BinderSessionSetup.
func (l *Layer) ensureBinderSession(st *layerState, t *kernel.Task, service string) (sid uint32, gen int, setup bool, err error) {
	fp := l.binder
	fp.mu.Lock()
	gen = fp.gen
	if h, ok := fp.handles[service]; ok && h.gen == gen {
		fp.mu.Unlock()
		return h.id, gen, false, nil
	}
	fp.mu.Unlock()

	if _, err = st.proxies.Ensure(t); err != nil {
		return 0, gen, false, err
	}
	sid, err = st.guest.Binder().OpenSession(service)
	if err != nil {
		return 0, gen, false, err
	}
	l.clock.Advance(l.model.BinderSessionSetup)
	fp.sessionsOpened.Add(1)
	if l.trace != nil {
		l.trace.Record(sim.EvBinderSession, "opened session %q sid=%d (gen %d)", service, sid, gen)
	}
	fp.mu.Lock()
	// Only pin the handle if no restart rolled the generation while we
	// were opening; a stale handle must never survive into the new boot.
	if fp.gen == gen {
		fp.handles[service] = binderSession{id: sid, gen: gen, openedAt: l.clock.Now()}
	}
	fp.mu.Unlock()
	return sid, gen, true, nil
}

// bridgeBinderRing ships one session transaction through an async ring
// slot: host side pays the fixed session cost at submit, the guest-side
// service handling (BinderTransaction) is charged by the proxy worker
// that drains the slot, and restarts fail the slot EHOSTDOWN via the
// ring's boot-generation check. Oneway transactions return immediately;
// a detached waiter recycles their slot.
func (l *Layer) bridgeBinderRing(st *layerState, ring marshal.AsyncTransport, t *kernel.Task, txn binder.Transaction, sid uint32, hostCost time.Duration) kernel.Result {
	fp := l.binder
	fp.pipelined.Add(1)
	g := st.guest
	frame := binder.EncodeSessionFrame(binder.SessionFrame{
		Session: sid, Code: txn.Code, Payload: txn.Payload, Oneway: txn.Oneway,
	})
	payload := marshal.EncodeBinderCall(frame)
	l.clock.Advance(hostCost)
	if l.trace != nil {
		l.trace.Record(sim.EvBinder, "pipelined binder txn %q sid=%d from pid=%d", txn.Service, sid, t.PID)
	}

	start := l.clock.Now()
	cred := t.Cred
	pending, serr := ring.Submit(payload, proxy.KeyForString(txn.Service), func(req []byte) []byte {
		inner, derr := marshal.DecodeBinderCall(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		f, derr := binder.DecodeSessionFrame(inner)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		// Guest-side service handling, charged where it runs.
		l.clock.Advance(l.model.BinderTransaction)
		out, terr := g.Binder().TransactSession(cred, f.Session, f.Code, f.Payload, f.Oneway)
		if terr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: terr})
		}
		resp := marshal.EncodeResult(kernel.Result{Data: out, Ret: int64(len(out))})
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if serr != nil {
		fp.failed.Add(1)
		return l.transportFailure(t, &kernel.Args{Nr: abi.SysIoctl}, start, serr)
	}
	if txn.Oneway {
		// No reply to wait for: the slot completes (or fails EHOSTDOWN at
		// restart) behind the caller's back; the detached waiter keeps the
		// submitted = completed + failed identity intact and recycles the
		// slot.
		go func() {
			if _, werr := pending.Wait(); werr != nil {
				fp.failed.Add(1)
			} else {
				fp.completed.Add(1)
			}
		}()
		return kernel.Result{Ret: 0}
	}
	respBytes, werr := pending.Wait()
	if werr != nil {
		fp.failed.Add(1)
		return l.transportFailure(t, &kernel.Args{Nr: abi.SysIoctl}, start, werr)
	}
	if l.clock.Now()-start > l.deadline {
		fp.failed.Add(1)
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "binder txn %q completed past %v deadline", txn.Service, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("binder txn exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		fp.failed.Add(1)
		return kernel.Result{Ret: -1, Err: derr}
	}
	fp.completed.Add(1)
	return res
}
