package anception

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/binder"
	"anception/internal/kernel"
	"anception/internal/netstack"
	"anception/internal/sim"
)

// TestCVMFirewall: the host controls the container's external
// connectivity with a policy on the CVM's stack (Section III-D).
func TestCVMFirewall(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	d.RegisterRemote("allowed.com:443", func(req []byte) []byte { return []byte("ok") })
	d.RegisterRemote("blocked.net:80", func(req []byte) []byte { return []byte("ok") })
	d.SetCVMFirewall(func(cred abi.Cred, addr string) error {
		if addr == "blocked.net:80" {
			return fmt.Errorf("firewalled by host policy: %w", abi.ENETUNREACH)
		}
		return nil
	})

	p := installAndLaunch(t, d, "com.fw.app")
	allowed, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(allowed, "allowed.com:443"); err != nil {
		t.Fatalf("allowed connection blocked: %v", err)
	}
	blocked, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(blocked, "blocked.net:80"); !errors.Is(err, abi.ENETUNREACH) {
		t.Fatalf("blocked connection: %v, want ENETUNREACH", err)
	}

	// Clearing the policy restores reachability.
	d.SetCVMFirewall(nil)
	again, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(again, "blocked.net:80"); err != nil {
		t.Fatalf("after clearing policy: %v", err)
	}
}

// TestAppToAppBinderStaysOnHost: apps talking to each other over binder
// proceed on the host without any container round trip.
func TestAppToAppBinderStaysOnHost(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	server := installAndLaunch(t, d, "com.ipc.server")
	client := installAndLaunch(t, d, "com.ipc.client")

	var gotFrom abi.Cred
	err := server.RegisterService("com.ipc.server.api", func(from abi.Cred, code uint32, data []byte) ([]byte, error) {
		gotFrom = from
		return append([]byte("echo:"), data...), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	bfd, err := client.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	before := d.Layer.Stats()
	reply, err := client.BinderCall(bfd, "com.ipc.server.api", 1, []byte("ping"))
	if err != nil || string(reply) != "echo:ping" {
		t.Fatalf("reply = %q, %v", reply, err)
	}
	if gotFrom.UID != client.App.UID {
		t.Fatalf("server saw caller uid %d, want %d", gotFrom.UID, client.App.UID)
	}
	after := d.Layer.Stats()
	if after.BinderBridged != before.BinderBridged {
		t.Fatal("app-to-app IPC was bridged to the CVM")
	}
	if after.Redirected != before.Redirected {
		t.Fatal("app-to-app IPC was redirected")
	}
}

// TestIagoTamperedResults: a compromised container can return arbitrary
// bad system-call results (Section VII). The host app sees garbage — but
// only through the redirected interface, and never a host memory
// violation.
func TestIagoTamperedResults(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.iago.victim")

	// Write a file while the container is still honest.
	fd, err := p.Open("data.bin", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("genuine-contents")); err != nil {
		t.Fatal(err)
	}

	// The container is now compromised and lies about every result.
	d.Layer.SetResultTampering(func(resp []byte) []byte {
		evil := bytes.Repeat([]byte{0xEE}, len(resp))
		return evil
	})
	if _, err := p.Lseek(fd, 0, abi.SeekSet); err == nil {
		t.Log("lseek result tampered silently (as Iago predicts)")
	}
	if data, err := p.Read(fd, 16); err == nil && bytes.Equal(data, []byte("genuine-contents")) {
		t.Fatal("tampered container returned genuine data?")
	}

	// The app process itself is unharmed: host-class calls still work and
	// its memory is intact.
	d.Layer.SetResultTampering(nil)
	if got := p.Getpid(); got != p.Task.PID {
		t.Fatal("host-class calls damaged by container tampering")
	}
	if d.Host.Compromised() != nil {
		t.Fatal("result tampering must not compromise the host")
	}
}

// TestWorldSwitchAccounting: each redirected call costs exactly one
// interrupt injection and one hypercall.
func TestWorldSwitchAccounting(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.ws.app")
	in0, out0 := d.CVM.WorldSwitches()
	fd, err := p.Open("f", abi.OWrOnly|abi.OCreat, 0o600) // 1 redirected call
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // 5 more
		if _, err := p.Write(fd, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	in1, out1 := d.CVM.WorldSwitches()
	if in1-in0 != 6 || out1-out0 != 6 {
		t.Fatalf("world switches for 6 redirected calls = (%d, %d), want (6, 6)", in1-in0, out1-out0)
	}
	// Host-class calls cross no boundary.
	p.Getpid()
	in2, out2 := d.CVM.WorldSwitches()
	if in2 != in1 || out2 != out1 {
		t.Fatal("getpid caused a world switch")
	}
}

// TestFrameAccountingUnderChurn: launching and killing many apps leaks no
// physical frames on either side of the boundary.
func TestFrameAccountingUnderChurn(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	free0 := d.Phys.FreeFrames()
	guestPages0 := d.Guest.ResidentProcessPages()

	for round := 0; round < 5; round++ {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.churn%d", round)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := p.Open("scratch", abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Write(fd, make([]byte, 8*abi.PageSize)); err != nil {
			t.Fatal(err)
		}
		p.Exit(0)
		if d.Proxies.ProxyFor(p.Task.PID) != nil {
			t.Fatal("proxy survived exit")
		}
	}

	// Host frames: everything the apps mapped was released (app code
	// pages and heap go with the AS). Guest side: proxies released.
	free1 := d.Phys.FreeFrames()
	if free1 < free0-16 { // file data in the guest VFS is retained state, frames are not
		t.Fatalf("host frames leaked: %d -> %d", free0, free1)
	}
	if got := d.Guest.ResidentProcessPages(); got != guestPages0 {
		t.Fatalf("guest resident pages %d -> %d: proxy frames leaked", guestPages0, got)
	}
}

// TestStressManyAppsBijection: a larger fleet keeps the proxy bijection
// and isolation invariants intact.
func TestStressManyAppsBijection(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	var procs []*Proc
	for i := 0; i < 40; i++ {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.fleet.app%02d", i)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	// Interleave work across the fleet.
	for round := 0; round < 3; round++ {
		for i, p := range procs {
			fd, err := p.Open(fmt.Sprintf("f%d", round), abi.OWrOnly|abi.OCreat, 0o600)
			if err != nil {
				t.Fatalf("app %d round %d: %v", i, round, err)
			}
			if _, err := p.Write(fd, []byte("data")); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(fd); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Proxies.VerifyBijection(d.Host.Tasks()); err != nil {
		t.Fatalf("bijection after stress: %v", err)
	}
	// Apps cannot read each other's files through the container.
	other := procs[1]
	foreign := procs[0].App.Info.DataDir + "/f0"
	if _, err := other.Open(foreign, abi.ORdOnly, 0); !errors.Is(err, abi.EACCES) {
		t.Fatalf("cross-app open: %v, want EACCES", err)
	}
}

// TestRedirectedGetdents covers directory listing through the layer.
func TestRedirectedGetdents(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.dents.app")
	for _, n := range []string{"b.txt", "a.txt", "c.txt"} {
		fd, err := p.Open(n, abi.OWrOnly|abi.OCreat, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	listing, err := p.Getdents(p.App.Info.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(listing, []byte("a.txt")) || !bytes.Contains(listing, []byte("c.txt")) {
		t.Fatalf("listing = %q", listing)
	}
}

// TestSendfileFileToFileRedirected covers the in-kernel copy path when
// both descriptors live in the container.
func TestSendfileFileToFileRedirected(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.sf.app")
	src, err := p.Open("src", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(src, []byte("copy me")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lseek(src, 0, abi.SeekSet); err != nil {
		t.Fatal(err)
	}
	dst, err := p.Open("dst", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sendfile(dst, src, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lseek(dst, 0, abi.SeekSet); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(dst, 16)
	if err != nil || string(got) != "copy me" {
		t.Fatalf("sendfile copy = %q, %v", got, err)
	}
}

// TestRenameAndSymlinkRedirected covers the two-path and symlink layer
// cases.
func TestRenameAndSymlinkRedirected(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.ren.app")
	fd, err := p.Open("orig", abi.OWrOnly|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("orig", "moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("orig"); err == nil {
		t.Fatal("orig still present after rename")
	}
	if _, err := p.Stat("moved"); err != nil {
		t.Fatalf("moved missing: %v", err)
	}
	// Symlink in the app data dir (CVM) and read back through it.
	res := d.Host.Invoke(p.Task, kernel.Args{Nr: abi.SysSymlink, Path: "moved", Path2: p.App.Info.DataDir + "/link"})
	if !res.Ok() {
		t.Fatalf("symlink: %v", res.Err)
	}
	lfd, err := p.Open("link", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(lfd, 4)
	if err != nil || string(got) != "v" {
		t.Fatalf("read via symlink = %q, %v", got, err)
	}
}

// TestTraceAndStatsCoherence: the number of EvRedirect trace events must
// equal the layer's Redirected counter, and redirected counts must equal
// world-switch round trips (plus control trips from split calls).
func TestTraceAndStatsCoherence(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.coherent")
	fd, err := p.Open("f", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Write(fd, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Lseek(fd, 0, abi.SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(fd, 4); err != nil {
		t.Fatal(err)
	}
	p.Getpid() // host class: no redirect event

	stats := d.Layer.Stats()
	redirectEvents := d.Trace.Count(sim.EvRedirect)
	if redirectEvents != stats.Redirected {
		t.Fatalf("trace redirects = %d, stats = %d", redirectEvents, stats.Redirected)
	}
	if stats.Redirected != 7 { // open + 4 writes + lseek + read
		t.Fatalf("redirected = %d, want 7", stats.Redirected)
	}
}

// TestListing1DirectInputIoctl: the paper's IOC_WAIT_INPUT_EVT ioctl
// path, serviced on the host.
func TestListing1DirectInputIoctl(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.listing1")
	bfd, err := p.OpenBinder()
	if err != nil {
		t.Fatal(err)
	}
	d.QueueInput(p.App, []byte("pwd:secret"))
	before := d.Layer.Stats().UIPassthrough
	res := d.Host.Invoke(p.Task, kernel.Args{Nr: abi.SysIoctl, FD: bfd, Request: binderIocWaitInput()})
	if !res.Ok() || string(res.Data) != "pwd:secret" {
		t.Fatalf("wait-input ioctl = %q, %v", res.Data, res.Err)
	}
	if d.Layer.Stats().UIPassthrough != before+1 {
		t.Fatal("direct input ioctl not counted as UI passthrough")
	}
	in, _ := d.CVM.WorldSwitches()
	if in != 0 {
		t.Fatal("UI input wait crossed into the CVM")
	}
}

func binderIocWaitInput() uint32 { return binder.IocWaitInputEvent }

// TestServicesAreNotRedirected: only tasks with the redirection entry set
// go through the layer; host services run entirely locally.
func TestServicesAreNotRedirected(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	zygote := d.HostServices.Service("zygote").Task
	if zygote.RE != 0 {
		t.Fatal("service task has the redirection entry set")
	}
	before := d.Layer.Stats().Redirected
	res := d.Host.Invoke(zygote, kernel.Args{Nr: abi.SysOpen, Path: "/data/wmstate", Flags: abi.OWrOnly | abi.OCreat, Mode: 0o600})
	if !res.Ok() {
		t.Fatal(res.Err)
	}
	if d.Layer.Stats().Redirected != before {
		t.Fatal("service syscall was redirected")
	}
	// The service's file landed on the HOST filesystem.
	if _, err := d.Host.FS().StatPath(abi.Cred{UID: abi.UIDRoot}, "/data/wmstate"); err != nil {
		t.Fatalf("service file not on host: %v", err)
	}
}

// TestInstallAndLookupAPI covers the app-registry surface.
func TestInstallAndLookupAPI(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	app, err := d.InstallApp(android.AppSpec{Package: "com.reg"})
	if err != nil {
		t.Fatal(err)
	}
	if d.App("com.reg") != app {
		t.Fatal("App() lookup failed")
	}
	if d.App("com.ghost") != nil {
		t.Fatal("App() invented an app")
	}
	if _, err := d.InstallApp(android.AppSpec{Package: "com.reg"}); !errors.Is(err, abi.EEXIST) {
		t.Fatalf("duplicate install: %v, want EEXIST", err)
	}
	// Assets shipped with the app are readable through redirection.
	app2, err := d.InstallApp(android.AppSpec{
		Package: "com.assets",
		Assets:  map[string][]byte{"cfg": []byte("shipped")},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Launch(app2)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := p.Open("cfg", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Read(fd, 16)
	if err != nil || string(data) != "shipped" {
		t.Fatalf("asset = %q, %v", data, err)
	}
}

// TestConcurrentAppsParallelIO drives many apps from separate goroutines
// through redirected I/O, UI transactions, and memory ops concurrently —
// the platform's locking must hold up (run under -race in CI).
func TestConcurrentAppsParallelIO(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	const apps = 12
	procs := make([]*Proc, apps)
	for i := range procs {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.par.app%02d", i)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Launch(app)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, apps)
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			bfd, err := p.OpenBinder()
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 20; round++ {
				fd, err := p.Open(fmt.Sprintf("f%d", round%3), abi.ORdWr|abi.OCreat, 0o600)
				if err != nil {
					errs <- fmt.Errorf("app %d open: %w", i, err)
					return
				}
				if _, err := p.Write(fd, []byte("concurrent data")); err != nil {
					errs <- fmt.Errorf("app %d write: %w", i, err)
					return
				}
				if _, err := p.Pread(fd, 8, 0); err != nil {
					errs <- fmt.Errorf("app %d read: %w", i, err)
					return
				}
				if err := p.Close(fd); err != nil {
					errs <- fmt.Errorf("app %d close: %w", i, err)
					return
				}
				if err := p.Draw(bfd); err != nil {
					errs <- fmt.Errorf("app %d draw: %w", i, err)
					return
				}
				if _, err := p.Brk(0); err != nil {
					errs <- fmt.Errorf("app %d brk: %w", i, err)
					return
				}
			}
			errs <- nil
		}(i, p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Proxies.VerifyBijection(d.Host.Tasks()); err != nil {
		t.Fatalf("bijection after parallel load: %v", err)
	}
}

// TestSendfileMixedLocality exercises the bounce-buffer path: a host-local
// pipe fed from a CVM-resident file, and vice versa.
func TestSendfileMixedLocality(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.mixed")

	// CVM file as the source.
	src, err := p.Open("src", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(src, []byte("bounce!")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lseek(src, 0, abi.SeekSet); err != nil {
		t.Fatal(err)
	}
	// Host-local shm-backed target is awkward; use a host pipe: pipes are
	// redirected though. Open the host-resident binder-adjacent path
	// instead: a /system file cannot be written, so use a second remote
	// file and a host /proc mem fd is read-only... The realistic mixed
	// case is remote-out/local-in: a host-opened system file into a CVM
	// socket.
	sysFD, err := p.Open("/system/lib/libc.so", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Task.FD(sysFD).Kind == kernel.FDRemote {
		t.Fatal("system lib fd should be host-local")
	}
	d.RegisterRemote("sink:1", func(req []byte) []byte { return nil })
	sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(sock, "sink:1"); err != nil {
		t.Fatal(err)
	}
	// local file -> remote socket: mixed locality.
	n, err := p.Sendfile(sock, sysFD, 16)
	if err != nil || n == 0 {
		t.Fatalf("mixed sendfile = %d, %v", n, err)
	}
}

// TestExecOfMissingUserBinary: the exec split reports the container's
// ENOENT cleanly.
func TestExecOfMissingUserBinary(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.noexec")
	err := p.Execve(p.App.Info.DataDir + "/ghost")
	if !errors.Is(err, abi.ENOENT) {
		t.Fatalf("exec missing: %v, want ENOENT", err)
	}
	if p.Task.CurrentState() != kernel.TaskRunning {
		t.Fatal("failed exec killed the task")
	}
}
