package anception

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/netstack"
)

// Tests for the zero-copy grant path (DESIGN.md §11): the size cutover,
// data correctness on flat and vectored calls, the sendfile bounce legs,
// cache coherence around live write grants, and revocation on restart.

// bootGrantDevice boots an Anception device with the grant path enabled
// at a 4 KiB cutover (the evaluate sweep's threshold).
func bootGrantDevice(t *testing.T, mutate func(*Options)) *Device {
	t.Helper()
	opts := Options{
		Mode:           ModeAnception,
		Vulns:          android.AllVulnerabilities(),
		GrantThreshold: 4096,
	}
	if mutate != nil {
		mutate(&opts)
	}
	d, err := NewDevice(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// pattern fills a deterministic byte pattern so a stale or short
// round-trip is visible as a content mismatch, not just a count.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%251)
	}
	return b
}

// TestGrantThresholdCutover: calls below GrantThreshold keep the copy
// path; calls at or above it ship grants, and the counters surface
// through both Device.GrantStats and LayerStats.Grants.
func TestGrantThresholdCutover(t *testing.T) {
	d := bootGrantDevice(t, nil)
	p := installAndLaunch(t, d, "com.grant.cutover")
	fd, err := p.Open("cut.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}

	small := pattern(4095, 1)
	if _, err := p.Pwrite(fd, small, 0); err != nil {
		t.Fatal(err)
	}
	if st := d.GrantStats(); st.Calls != 0 {
		t.Fatalf("below-threshold write took the grant path: %+v", st)
	}

	big := pattern(4096, 2)
	if _, err := p.Pwrite(fd, big, 0); err != nil {
		t.Fatal(err)
	}
	st := d.GrantStats()
	if st.Calls != 1 || st.Bytes != 4096 {
		t.Fatalf("at-threshold write: %+v, want Calls=1 Bytes=4096", st)
	}

	// Read side: the guest fills the pinned caller buffer in place.
	buf := make([]byte, 4096)
	if n, err := p.PreadInto(fd, buf, 0); err != nil || n != 4096 {
		t.Fatalf("granted pread: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, big) {
		t.Fatal("granted pread returned wrong bytes")
	}
	st = d.GrantStats()
	if st.Calls != 2 || st.Bytes != 8192 {
		t.Fatalf("after granted read: %+v, want Calls=2 Bytes=8192", st)
	}
	// Every per-call grant was revoked when its call completed.
	if st.Table.Active != 0 || st.Table.Maps != 2 || st.Table.Entries != 2 {
		t.Fatalf("table after quiesce: %+v", st.Table)
	}
	// The same counters surface on the layer's aggregate snapshot.
	if ls := d.Layer.Stats().Grants; ls.Calls != st.Calls || ls.Bytes != st.Bytes {
		t.Fatalf("LayerStats.Grants = %+v, GrantStats = %+v", ls, st)
	}
}

// TestGrantVectoredRoundTrip: a gather write and scatter read above the
// threshold move by reference, one grant entry per iovec segment, and
// the payload survives byte-exact across unequal segment splits.
func TestGrantVectoredRoundTrip(t *testing.T) {
	d := bootGrantDevice(t, nil)
	p := installAndLaunch(t, d, "com.grant.vec")
	fd, err := p.Open("vec.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}

	segs := [][]byte{pattern(2048, 3), pattern(2048, 4), pattern(2048, 5)}
	if n, err := p.Pwritev(fd, segs, 0); err != nil || n != 6144 {
		t.Fatalf("granted pwritev: n=%d err=%v", n, err)
	}
	out := [][]byte{make([]byte, 5000), make([]byte, 1144)}
	if n, err := p.Preadv(fd, out, 0); err != nil || n != 6144 {
		t.Fatalf("granted preadv: n=%d err=%v", n, err)
	}
	want := bytes.Join(segs, nil)
	if got := append(append([]byte{}, out[0]...), out[1]...); !bytes.Equal(got, want) {
		t.Fatal("vectored round trip corrupted the payload")
	}

	st := d.GrantStats()
	if st.Calls != 2 || st.Bytes != 12288 {
		t.Fatalf("grant counters: %+v", st)
	}
	// 3 write segments + 2 read segments, each a table entry, but only
	// one map (and one shootdown) per call.
	if st.Table.Entries != 5 || st.Table.Maps != 2 || st.Table.Active != 0 {
		t.Fatalf("table: %+v, want Entries=5 Maps=2 Active=0", st.Table)
	}
}

// TestGrantSendfileBounceLegs: a mixed-locality sendfile's remote legs
// grant the bounce buffer instead of chunk-copying it. The threshold is
// set below the staged chunk so the cutover fires on the write leg
// (host-local /system source into a CVM socket).
func TestGrantSendfileBounceLegs(t *testing.T) {
	d := bootGrantDevice(t, func(o *Options) { o.GrantThreshold = 16 })
	p := installAndLaunch(t, d, "com.grant.sendfile")

	sysFD, err := p.Open("/system/lib/libc.so", abi.ORdOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.RegisterRemote("sink:1", func(req []byte) []byte { return nil })
	sock, err := p.Socket(netstack.AFInet, netstack.SockStream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(sock, "sink:1"); err != nil {
		t.Fatal(err)
	}

	n, err := p.Sendfile(sock, sysFD, 1<<20)
	if err != nil || n < 16 {
		t.Fatalf("mixed sendfile = %d, %v", n, err)
	}
	st := d.GrantStats()
	if st.Calls == 0 {
		t.Fatal("sendfile's remote write leg never took the grant path")
	}
	if st.Bytes != int64(n) {
		t.Fatalf("granted bytes = %d, sendfile moved %d", st.Bytes, n)
	}
	if st.Table.Active != 0 {
		t.Fatalf("grants leaked after sendfile: %+v", st.Table)
	}
}

// TestGrantCacheBypassesLiveWriteExtent: the redirection cache never
// serves a page overlapping an in-flight granted write. The extent
// registry is driven directly so the overlap window is deterministic
// rather than a goroutine race.
func TestGrantCacheBypassesLiveWriteExtent(t *testing.T) {
	d := bootGrantDevice(t, func(o *Options) { o.RedirCache = true })
	p := installAndLaunch(t, d, "com.grant.coherence")
	fd, err := p.Open("coh.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}

	want := pattern(8192, 7)
	if _, err := p.Pwrite(fd, want, 0); err != nil { // granted: guest authoritative
		t.Fatal(err)
	}
	// Warm the cache with a sub-threshold read.
	if got, err := p.Pread(fd, 512, 0); err != nil || !bytes.Equal(got, want[:512]) {
		t.Fatalf("warm read: %v", err)
	}
	if st := d.GrantStats(); st.CacheBypasses != 0 {
		t.Fatalf("bypasses before any live extent: %+v", st)
	}

	guestFD := p.Task.FD(fd).GuestFD
	id := d.Layer.grants.registerWrite(guestFD, 256, 1024) // live extent [256,1280)

	// Overlapping cached read must route around the cache — and still
	// return correct bytes from the authoritative guest.
	if got, err := p.Pread(fd, 512, 0); err != nil || !bytes.Equal(got, want[:512]) {
		t.Fatalf("bypassed read: %v", err)
	}
	if st := d.GrantStats(); st.CacheBypasses != 1 {
		t.Fatalf("overlapping read did not bypass: %+v", st)
	}
	// A read clear of the extent is not penalized.
	if _, err := p.Pread(fd, 256, 4096); err != nil {
		t.Fatal(err)
	}
	if st := d.GrantStats(); st.CacheBypasses != 1 {
		t.Fatalf("non-overlapping read bypassed: %+v", st)
	}

	// A cursor write grants with an unknown offset and overlaps every
	// cached page of the descriptor.
	cursorID := d.Layer.grants.registerWrite(guestFD, -1, 0)
	if _, err := p.Pread(fd, 256, 4096); err != nil {
		t.Fatal(err)
	}
	if st := d.GrantStats(); st.CacheBypasses != 2 {
		t.Fatalf("cursor-write extent not honored: %+v", st)
	}
	d.Layer.grants.unregister(cursorID)
	d.Layer.grants.unregister(id)

	// With the extents gone the cache serves again, bypass-free.
	if got, err := p.Pread(fd, 512, 0); err != nil || !bytes.Equal(got, want[:512]) {
		t.Fatalf("post-unregister read: %v", err)
	}
	if st := d.GrantStats(); st.CacheBypasses != 2 {
		t.Fatalf("bypass after extents cleared: %+v", st)
	}
}

// TestGrantWriteInvalidatesCachedPages: end-to-end freshness — after a
// granted write lands, a cached read of the same range returns the new
// bytes, never the pre-write pages.
func TestGrantWriteInvalidatesCachedPages(t *testing.T) {
	d := bootGrantDevice(t, func(o *Options) { o.RedirCache = true })
	p := installAndLaunch(t, d, "com.grant.fresh")
	fd, err := p.Open("fresh.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}

	old := pattern(8192, 11)
	if _, err := p.Pwrite(fd, old, 0); err != nil {
		t.Fatal(err)
	}
	if got, err := p.Pread(fd, 512, 0); err != nil || !bytes.Equal(got, old[:512]) {
		t.Fatalf("warm read: %v", err) // cache now holds the old pages
	}

	neu := pattern(8192, 99)
	if _, err := p.Pwrite(fd, neu, 0); err != nil { // granted write
		t.Fatal(err)
	}
	got, err := p.Pread(fd, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, old[:512]) {
		t.Fatal("cache served pre-write pages after a granted write")
	}
	if !bytes.Equal(got, neu[:512]) {
		t.Fatalf("read after granted write returned garbage")
	}
}

// TestGrantRestartRevokesAll: a CVM restart sweeps every outstanding
// grant; stale refs fail EHOSTDOWN via their boot-generation tag, and
// the path works again against the new guest.
func TestGrantRestartRevokesAll(t *testing.T) {
	d := bootGrantDevice(t, nil)
	p := installAndLaunch(t, d, "com.grant.restart")
	fd, err := p.Open("r.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pwrite(fd, pattern(4096, 1), 0); err != nil {
		t.Fatal(err)
	}

	// A grant left outstanding across the restart (an in-flight call's
	// view of the world).
	refs := d.grants.GrantBatch([][]byte{make([]byte, abi.PageSize)}, true)
	if err := d.RestartCVM(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.grants.Resolve(refs[0]); !errors.Is(err, abi.EHOSTDOWN) {
		t.Fatalf("stale grant resolved with %v, want EHOSTDOWN", err)
	}
	st := d.GrantStats().Table
	if st.Active != 0 || st.RevokedByRestart < 1 || st.StaleRejected != 1 {
		t.Fatalf("table after restart: %+v", st)
	}

	// The grant path runs clean against the new boot generation.
	fd2, err := p.Open("r2.dat", abi.ORdWr|abi.OCreat, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(4096, 42)
	if _, err := p.Pwrite(fd2, want, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := p.PreadInto(fd2, buf, 0); err != nil || !bytes.Equal(buf, want) {
		t.Fatalf("post-restart granted round trip: %v", err)
	}
}

// TestGrantConcurrentRestartUnderLoad: goroutines hammer grant-path bulk
// I/O over the async ring while the CVM restarts repeatedly. Every
// failure must be a clean errno (EHOSTDOWN/ENXIO/EAGAIN — never a stale
// completion or a panic), the workers recover on the new guest, and
// afterwards no grant is left mapped. Run under -race in CI.
func TestGrantConcurrentRestartUnderLoad(t *testing.T) {
	d := bootRingDevice(t, func(o *Options) { o.GrantThreshold = 4096 })
	const workers = 4
	apps := make([]*Proc, workers)
	for i := range apps {
		apps[i] = installAndLaunch(t, d, fmt.Sprintf("com.grant.worker%d", i))
	}

	stop := make(chan struct{})
	badErr := make(chan error, workers)
	var wg sync.WaitGroup
	for i, app := range apps {
		wg.Add(1)
		go func(i int, app *Proc) {
			defer wg.Done()
			report := func(err error) {
				var errno abi.Errno
				if err != nil && !errors.As(err, &errno) {
					select {
					case badErr <- fmt.Errorf("worker %d: non-errno error: %w", i, err):
					default:
					}
				}
			}
			payload := pattern(8192, byte(i))
			buf := make([]byte, 8192)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("g%d-%d.dat", i, n)
				fd, err := app.Open(name, abi.ORdWr|abi.OCreat, 0o600)
				if err != nil {
					report(err)
					continue
				}
				if _, err := app.Pwrite(fd, payload, 0); err != nil {
					report(err)
				} else if _, err := app.PreadInto(fd, buf, 0); err != nil {
					report(err)
				} else if !bytes.Equal(buf, payload) {
					// A granted read that "succeeded" but filled the
					// pinned pages from a dead guest would show up here.
					select {
					case badErr <- fmt.Errorf("worker %d: granted read returned stale bytes", i):
					default:
					}
				}
				report(app.Close(fd))
			}
		}(i, app)
	}

	for r := 0; r < 5; r++ {
		if err := d.RestartCVM(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-badErr:
		t.Fatal(err)
	default:
	}

	// Every worker recovers with a granted round trip on the final guest.
	for i, app := range apps {
		want := pattern(4096, byte(0x80+i))
		fd, err := app.Open("final.dat", abi.ORdWr|abi.OCreat, 0o600)
		if err != nil {
			t.Fatalf("worker %d post-restart open: %v", i, err)
		}
		if _, err := app.Pwrite(fd, want, 0); err != nil {
			t.Fatalf("worker %d post-restart granted write: %v", i, err)
		}
		buf := make([]byte, 4096)
		if _, err := app.PreadInto(fd, buf, 0); err != nil || !bytes.Equal(buf, want) {
			t.Fatalf("worker %d post-restart granted read: %v", i, err)
		}
		if err := app.Close(fd); err != nil {
			t.Fatalf("worker %d post-restart close: %v", i, err)
		}
	}

	st := d.Layer.Stats()
	if st.Restarts != 5 {
		t.Fatalf("Restarts = %d, want 5", st.Restarts)
	}
	if st.Grants.Calls == 0 {
		t.Fatal("load never exercised the grant path")
	}
	// With all submitters quiesced: no grant still mapped, and the ring
	// neither lost nor double-completed a slot.
	if st.Grants.Table.Active != 0 {
		t.Fatalf("grants leaked across restarts: %+v", st.Grants.Table)
	}
	if st.Ring.Submitted != st.Ring.Completed+st.Ring.Failed {
		t.Fatalf("ring accounting %+v after quiesce", st.Ring)
	}
}
