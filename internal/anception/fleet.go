package anception

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anception/internal/abi"
	"anception/internal/android"
	"anception/internal/kernel"
	"anception/internal/sim"
	"anception/internal/supervisor"
	"anception/internal/vfs"
)

// CVM fleet (DESIGN.md §16): N container VMs instead of one, each a
// full independent service domain — its own physical region, data
// channels, async ring, grant table, boot generation, redirection
// layer, and watchdog — scheduled by the placement policy in
// placement.go. Shards model CVMs pinned to separate cores: each runs
// on its own sim clock, so fleet throughput is total work over the
// slowest shard's elapsed time, and one shard's restart or compromise
// burns only that shard's time and warm state. The epoch/drain
// protocol is keyed per-CVM structurally: every shard owns its own
// Layer, whose AdvanceEpoch drains exactly that shard's
// grants→ring→sockets→binder→cache and nothing else.

// rebalanceMaxMoves bounds one Rebalance pass; a pass that wants more
// moves than shards is thrashing, not balancing.
const rebalanceMaxMoves = 16

// Shard is one CVM service domain of the fleet.
type Shard struct {
	// ID is the shard index, stable for the fleet's lifetime.
	ID int
	// Dev is the shard's device: host interposer + container pair on a
	// private sim clock.
	Dev *Device
	// Sup is the shard's watchdog. Tick it directly or through the
	// fleet's supervisor group.
	Sup *supervisor.Supervisor

	apps atomic.Int64
}

func (sh *Shard) appCount() int { return int(sh.apps.Load()) }

// FleetApp is an app enrolled on the fleet. Its Proc handle stays valid
// across migrations: Proc() always returns the process on the app's
// current shard.
type FleetApp struct {
	Pkg    string
	UserID int

	fleet *Fleet
	mu    sync.Mutex
	shard *Shard
	proc  *Proc
	spec  android.AppSpec
	// moves counts completed migrations of this app.
	moves int
}

// Proc returns the app's process handle on its current shard.
func (a *FleetApp) Proc() *Proc {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.proc
}

// Shard returns the app's current shard ID.
func (a *FleetApp) Shard() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shard.ID
}

// Moves reports how many migrations this app has completed.
func (a *FleetApp) Moves() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.moves
}

// Fleet owns N CVM shards and the placement scheduler over them.
type Fleet struct {
	policy PlacementPolicy

	mu     sync.Mutex
	shards []*Shard
	apps   map[string]*FleetApp
	group  *supervisor.Group
	// usersAdded tracks which (shard, user) stores exist under the
	// per-user policy.
	usersAdded map[[2]int]bool
	migrations int
}

// NewFleet boots Options.FleetSize shards (default 1), each a full
// Anception device built from the same option template with a per-shard
// label, plus a per-shard supervisor wired into one Group. Options.Mode
// must be ModeAnception (the zero value defaults to it).
func NewFleet(opts Options) (*Fleet, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeAnception
	}
	if opts.Mode != ModeAnception {
		return nil, fmt.Errorf("fleet: mode %s not shardable: %w", opts.Mode, abi.EINVAL)
	}
	size := opts.FleetSize
	if size <= 0 {
		size = 1
	}
	policy := opts.FleetPlacement
	if policy == "" {
		policy = PlaceLeastLoaded
	}
	if !policy.valid() {
		return nil, fmt.Errorf("fleet: unknown placement policy %q: %w", policy, abi.EINVAL)
	}

	f := &Fleet{
		policy:     policy,
		apps:       make(map[string]*FleetApp),
		usersAdded: make(map[[2]int]bool),
		group:      supervisor.NewGroup(),
	}
	for i := 0; i < size; i++ {
		shardOpts := opts
		shardOpts.FleetSize = 0
		shardOpts.FleetPlacement = ""
		shardOpts.Label = fmt.Sprintf("shard-%d", i)
		dev, err := NewDevice(shardOpts)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: boot shard %d: %w", i, err)
		}
		sup := supervisor.New(dev, dev.Clock, dev.Trace, supervisor.Config{})
		sh := &Shard{ID: i, Dev: dev, Sup: sup}
		f.shards = append(f.shards, sh)
		f.group.Add(sup)
	}
	return f, nil
}

// Size is the shard count.
func (f *Fleet) Size() int { return len(f.shards) }

// Policy is the active placement policy.
func (f *Fleet) Policy() PlacementPolicy { return f.policy }

// Shard returns shard i.
func (f *Fleet) Shard(i int) *Shard { return f.shards[i] }

// Shards returns every shard in ID order.
func (f *Fleet) Shards() []*Shard { return f.shards }

// Group returns the fleet's supervisor group (one watchdog per shard).
func (f *Fleet) Group() *supervisor.Group { return f.group }

// App returns the enrolled app by package name, or nil.
func (f *Fleet) App(pkg string) *FleetApp {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.apps[pkg]
}

// Apps returns every enrolled app.
func (f *Fleet) Apps() []*FleetApp {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FleetApp, 0, len(f.apps))
	for _, a := range f.apps {
		out = append(out, a)
	}
	return out
}

// Migrations counts completed app migrations across the fleet.
func (f *Fleet) Migrations() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.migrations
}

// Elapsed is the fleet's wall time: the slowest shard's sim clock.
// Shards are independently scheduled service domains, so the fleet
// finishes when its slowest shard does.
func (f *Fleet) Elapsed() time.Duration {
	var max time.Duration
	for _, sh := range f.shards {
		if now := sh.Dev.Clock.Now(); now > max {
			max = now
		}
	}
	return max
}

// InstallApp places, installs, and launches an app (Android user 0).
func (f *Fleet) InstallApp(spec android.AppSpec) (*FleetApp, error) {
	return f.InstallAppForUser(spec, 0)
}

// InstallAppForUser enrolls an app for the given Android user: the
// placement policy picks the shard (per-user placement keys on userID),
// the app installs there — code on that shard's host, data dir in its
// CVM — and launches.
func (f *Fleet) InstallAppForUser(spec android.AppSpec, userID int) (*FleetApp, error) {
	f.mu.Lock()
	if _, dup := f.apps[spec.Package]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: install %s: %w", spec.Package, abi.EEXIST)
	}
	sh := f.pickShard(spec.Package, userID)
	f.mu.Unlock()

	app, err := sh.Dev.InstallApp(spec)
	if err != nil {
		return nil, err
	}
	if f.policy == PlaceByUser {
		f.ensureUserStore(sh, userID)
	}
	proc, err := sh.Dev.Launch(app)
	if err != nil {
		return nil, err
	}
	fa := &FleetApp{Pkg: spec.Package, UserID: userID, fleet: f, shard: sh, proc: proc, spec: spec}
	sh.apps.Add(1)
	f.mu.Lock()
	f.apps[spec.Package] = fa
	f.mu.Unlock()
	return fa, nil
}

// ensureUserStore creates the Android user's private store on a shard's
// guest filesystem once (internal/android/multiuser).
func (f *Fleet) ensureUserStore(sh *Shard, userID int) {
	f.mu.Lock()
	key := [2]int{sh.ID, userID}
	done := f.usersAdded[key]
	f.usersAdded[key] = true
	f.mu.Unlock()
	if !done {
		// Best-effort: the store is bookkeeping for the multiuser model,
		// not a placement precondition.
		_ = sh.Dev.PM.AddUser(sh.Dev.Guest.FS(), userID)
	}
}

// Migrate moves an app to the target shard: flush its buffered cache
// writes to the source guest, gate the source shard (the live-upgrade
// EAGAIN gate — new calls retry, in-flight ones drain), advance the
// source shard's epoch so its warm fast-path state for the old
// enrollment drains (per-CVM keyed: sibling shards are untouched), copy
// the app's CVM-resident data directory to the target guest, re-enroll
// and relaunch there, and reopen the gate. The old process dies; the
// FleetApp's Proc() swaps to the new shard.
func (f *Fleet) Migrate(app *FleetApp, targetID int) error {
	if targetID < 0 || targetID >= len(f.shards) {
		return fmt.Errorf("fleet: migrate %s: no shard %d: %w", app.Pkg, targetID, abi.EINVAL)
	}
	target := f.shards[targetID]

	app.mu.Lock()
	defer app.mu.Unlock()
	src := app.shard
	if src == target {
		return nil
	}
	oldProc := app.proc

	// Write back buffered extents while the gate is still open (the
	// flush forwards writes to the source guest, which a closed gate
	// would fail with EAGAIN). The flush is shard-wide — each cached
	// descriptor rides its own task's proxy — because the epoch advance
	// below invalidates the whole shard's cache and would otherwise
	// discard sibling apps' unflushed writes.
	if err := src.Dev.Layer.FlushRedirCache(oldProc.Task); err != nil {
		return fmt.Errorf("fleet: migrate %s: flush: %w", app.Pkg, err)
	}

	// Quiesce the source shard: reuse the live-upgrade EAGAIN gate, then
	// wait out in-flight guest calls.
	src.Dev.SetDegraded(true)
	src.Dev.Layer.QuiesceGuestCalls()

	// Drain the app's epoch participants on the source shard. The epoch
	// is keyed to this CVM: grants, ring slots, sockets, binder
	// sessions, and cache pages warmed against this shard roll; sibling
	// shards' fast paths never notice.
	src.Dev.AdvanceEpoch()

	err := func() error {
		// Re-enroll on the target (idempotent for an app migrating back).
		dstApp := target.Dev.App(app.Pkg)
		if dstApp == nil {
			var ierr error
			dstApp, ierr = target.Dev.InstallApp(app.spec)
			if ierr != nil {
				return fmt.Errorf("fleet: migrate %s: install on shard %d: %w", app.Pkg, targetID, ierr)
			}
		}
		// Move the CVM-resident data directory between guest filesystems.
		srcInfo := src.Dev.App(app.Pkg)
		if srcInfo != nil {
			if cerr := copyTree(src.Dev.Guest.FS(), target.Dev.Guest.FS(), srcInfo.Info.DataDir); cerr != nil {
				return fmt.Errorf("fleet: migrate %s: copy data dir: %w", app.Pkg, cerr)
			}
			if cerr := chownTree(target.Dev.Guest.FS(), dstApp.Info.DataDir, dstApp.UID); cerr != nil {
				return fmt.Errorf("fleet: migrate %s: chown data dir: %w", app.Pkg, cerr)
			}
		}
		if f.policy == PlaceByUser {
			f.ensureUserStore(target, app.UserID)
		}
		proc, lerr := target.Dev.Launch(dstApp)
		if lerr != nil {
			return fmt.Errorf("fleet: migrate %s: launch on shard %d: %w", app.Pkg, targetID, lerr)
		}
		app.proc = proc
		return nil
	}()
	src.Dev.SetDegraded(false)
	if err != nil {
		return err
	}

	// Retire the old enrollment.
	oldProc.Task.SetState(kernel.TaskDead)
	src.apps.Add(-1)
	target.apps.Add(1)
	app.shard = target
	app.moves++
	if tr := src.Dev.Trace; tr != nil {
		tr.Record(sim.EvLifecycle, "migrated %s: %s -> %s", app.Pkg, src.Dev.Label(), target.Dev.Label())
	}
	f.mu.Lock()
	f.migrations++
	f.mu.Unlock()
	return nil
}

// Rebalance migrates apps off overloaded shards until the hottest and
// coldest shards' load scores are within one app's weight of each
// other, bounded by rebalanceMaxMoves. Returns the number of apps
// moved.
func (f *Fleet) Rebalance() (int, error) {
	if len(f.shards) < 2 {
		return 0, nil
	}
	moves := 0
	for moves < rebalanceMaxMoves {
		hot, cold, hotScore, coldScore := f.imbalance()
		// A single move shifts ~one app-weight of score; stop when the
		// gap cannot be narrowed by that much.
		if hot == cold || hotScore-coldScore <= loadOf(hot).CostFactor {
			break
		}
		victim := f.appOnShard(hot)
		if victim == nil {
			break
		}
		if err := f.Migrate(victim, cold.ID); err != nil {
			return moves, err
		}
		moves++
	}
	return moves, nil
}

// EvacuateShard migrates every app off a shard (e.g. ahead of a planned
// restart or after a compromise), placing each on the least-loaded
// sibling. Returns the number of apps moved.
func (f *Fleet) EvacuateShard(id int) (int, error) {
	if id < 0 || id >= len(f.shards) {
		return 0, fmt.Errorf("fleet: evacuate: no shard %d: %w", id, abi.EINVAL)
	}
	if len(f.shards) < 2 {
		return 0, fmt.Errorf("fleet: evacuate shard %d: no sibling shards: %w", id, abi.EINVAL)
	}
	src := f.shards[id]
	moved := 0
	for {
		victim := f.appOnShard(src)
		if victim == nil {
			return moved, nil
		}
		// Least-loaded sibling, excluding the shard being evacuated.
		var best *Shard
		bestScore := 0.0
		for _, sh := range f.shards {
			if sh == src {
				continue
			}
			if s := loadOf(sh).Score; best == nil || s < bestScore {
				best, bestScore = sh, s
			}
		}
		if err := f.Migrate(victim, best.ID); err != nil {
			return moved, err
		}
		moved++
	}
}

// appOnShard returns one app currently resident on the shard, or nil.
func (f *Fleet) appOnShard(sh *Shard) *FleetApp {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range f.apps {
		a.mu.Lock()
		here := a.shard == sh
		a.mu.Unlock()
		if here {
			return a
		}
	}
	return nil
}

// Close shuts down every shard's background machinery.
func (f *Fleet) Close() {
	for _, sh := range f.shards {
		sh.Dev.Close()
	}
}

// fsRoot is the system credential tree copies run under.
var fsRoot = abi.Cred{UID: abi.UIDRoot}

// copyTree recursively copies the directory at path from src to dst,
// overwriting existing regular files. Symlinks are re-created; device
// nodes are skipped (app data dirs do not carry them).
func copyTree(src, dst *vfs.FileSystem, path string) error {
	st, err := src.LstatPath(fsRoot, path)
	if err != nil {
		return err
	}
	switch st.Type {
	case vfs.TypeDir:
		if err := dst.MkdirAll(fsRoot, path, st.Mode); err != nil && err != abi.EEXIST {
			return err
		}
		entries, err := src.ReadDir(fsRoot, path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := copyTree(src, dst, path+"/"+e.Name); err != nil {
				return err
			}
		}
		return nil
	case vfs.TypeSymlink:
		target, err := src.Readlink(fsRoot, path)
		if err != nil {
			return err
		}
		_ = dst.Unlink(fsRoot, path)
		return dst.Symlink(fsRoot, target, path)
	case vfs.TypeRegular:
		sf, err := src.Open(fsRoot, path, abi.ORdOnly, 0)
		if err != nil {
			return err
		}
		data := make([]byte, st.Size)
		if st.Size > 0 {
			if _, err := sf.ReadAt(data, 0); err != nil {
				return err
			}
		}
		df, err := dst.Open(fsRoot, path, abi.OWrOnly|abi.OCreat|abi.OTrunc, st.Mode)
		if err != nil {
			return err
		}
		if len(data) > 0 {
			if _, err := df.WriteAt(data, 0); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

// chownTree re-owns the copied tree to the target shard's UID for the
// app (each shard's package manager assigns UIDs independently).
func chownTree(fs *vfs.FileSystem, path string, uid int) error {
	st, err := fs.LstatPath(fsRoot, path)
	if err != nil {
		return err
	}
	if st.Type != vfs.TypeSymlink {
		if err := fs.Chown(fsRoot, path, uid, uid); err != nil {
			return err
		}
	}
	if st.Type == vfs.TypeDir {
		entries, err := fs.ReadDir(fsRoot, path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := chownTree(fs, path+"/"+e.Name, uid); err != nil {
				return err
			}
		}
	}
	return nil
}
