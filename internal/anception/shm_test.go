package anception

import (
	"errors"
	"testing"

	"anception/internal/abi"
	"anception/internal/kernel"
)

// TestSharedMemoryBetweenApps: two host apps share a System V segment;
// writes by one are visible to the other ("our implementation supports
// shared memory", Section III-B).
func TestSharedMemoryBetweenApps(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	writer := installAndLaunch(t, d, "com.shm.writer")
	reader := installAndLaunch(t, d, "com.shm.reader")

	const key = 0x5EA1
	id, err := writer.Shmget(key, 2)
	if err != nil {
		t.Fatal(err)
	}
	wAddr, err := writer.Shmat(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.Poke(wAddr, []byte("shared-payload")); err != nil {
		t.Fatal(err)
	}

	// The reader finds the same segment by key.
	id2, err := reader.Shmget(key, 2)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("key lookup returned id %d, want %d", id2, id)
	}
	rAddr, err := reader.Shmat(id2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reader.Peek(rAddr, 14)
	if err != nil || string(got) != "shared-payload" {
		t.Fatalf("reader sees %q, %v", got, err)
	}

	// Mutation propagates both ways.
	if err := reader.Poke(rAddr, []byte("REPLY")); err != nil {
		t.Fatal(err)
	}
	back, err := writer.Peek(wAddr, 5)
	if err != nil || string(back) != "REPLY" {
		t.Fatalf("writer sees %q, %v", back, err)
	}
}

// TestSharedMemoryStaysOnHost: segment frames are host memory the CVM can
// never touch (principle 3), and the calls cross no boundary.
func TestSharedMemoryStaysOnHost(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.shm.host")

	in0, out0 := d.CVM.WorldSwitches()
	id, err := p.Shmget(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Shmat(id)
	if err != nil {
		t.Fatal(err)
	}
	in1, out1 := d.CVM.WorldSwitches()
	if in1 != in0 || out1 != out0 {
		t.Fatal("shm calls crossed into the CVM")
	}

	if err := p.Poke(addr, []byte("host-only")); err != nil {
		t.Fatal(err)
	}
	// A guest-confined accessor cannot read the segment.
	if _, err := p.Task.AS.ReadBytes(d.Guest.Region(), addr, 9); !errors.Is(err, abi.EPERM) {
		t.Fatalf("guest read of shared segment: %v, want EPERM", err)
	}
	// Segments exist only in the host kernel's registry.
	if d.Host.ShmSegments() != 1 || d.Guest.ShmSegments() != 0 {
		t.Fatalf("segments host=%d guest=%d", d.Host.ShmSegments(), d.Guest.ShmSegments())
	}
}

// TestSharedMemoryLifecycle covers detach, removal and permissions.
func TestSharedMemoryLifecycle(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	owner := installAndLaunch(t, d, "com.shm.owner")
	other := installAndLaunch(t, d, "com.shm.other")

	id, err := owner.Shmget(0x77, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := owner.Shmat(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Poke(addr, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := owner.Shmdt(addr); err != nil {
		t.Fatal(err)
	}
	// Detached: the address is gone from the space.
	if _, err := owner.Peek(addr, 1); !errors.Is(err, abi.EFAULT) {
		t.Fatalf("peek after detach: %v, want EFAULT", err)
	}
	// Double detach fails.
	if err := owner.Shmdt(addr); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("double detach: %v, want EINVAL", err)
	}
	// Only the owner (or root) may remove.
	if err := other.Shmctl(id); !errors.Is(err, abi.EPERM) {
		t.Fatalf("foreign rmid: %v, want EPERM", err)
	}
	if err := owner.Shmctl(id); err != nil {
		t.Fatal(err)
	}
	// Attaching a removed segment fails.
	if _, err := other.Shmat(id); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("attach removed: %v, want EINVAL", err)
	}
	if d.Host.ShmSegments() != 0 {
		t.Fatalf("segments = %d after removal", d.Host.ShmSegments())
	}
}

// TestSharedMemorySurvivesAttachExit: a segment outlives one attacher's
// exit because the frames belong to the segment, not the process.
func TestSharedMemorySurvivesAttachExit(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	a := installAndLaunch(t, d, "com.shm.a")
	b := installAndLaunch(t, d, "com.shm.b")

	id, err := a.Shmget(0x99, 1)
	if err != nil {
		t.Fatal(err)
	}
	aAddr, err := a.Shmat(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Poke(aAddr, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	a.Exit(0)

	bAddr, err := b.Shmat(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Peek(bAddr, 7)
	if err != nil || string(got) != "persist" {
		t.Fatalf("after attacher exit: %q, %v", got, err)
	}
}

// TestShmInvalidArguments covers the error surface.
func TestShmInvalidArguments(t *testing.T) {
	d := bootDevice(t, ModeAnception)
	p := installAndLaunch(t, d, "com.shm.err")
	if _, err := p.Shmget(0, 0); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("zero pages: %v, want EINVAL", err)
	}
	if _, err := p.Shmat(999); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("bogus id: %v, want EINVAL", err)
	}
	if err := p.Shmctl(999); !errors.Is(err, abi.EINVAL) {
		t.Fatalf("rmid bogus: %v, want EINVAL", err)
	}
	res := d.Host.Invoke(p.Task, kernel.Args{Nr: abi.SysShmdt, Vaddr: 0x1234000})
	if !errors.Is(res.Err, abi.EINVAL) {
		t.Fatalf("detach unmapped: %v, want EINVAL", res.Err)
	}
}
