package anception

import (
	"bytes"
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
	"time"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/proxy"
	"anception/internal/redirect"
	"anception/internal/sim"
)

// Layer is the Anception kernel layer (Figure 3/4): it sits at the host
// syscall interface behind ASIM's redirection-entry check, decides where
// each call runs, marshals redirected calls over the data channel, and
// mirrors split-class state onto the proxies.
type Layer struct {
	host      *kernel.Kernel
	guest     *kernel.Kernel
	cvm       *hypervisor.CVM
	proxies   *proxy.Manager
	transport marshal.Transport
	engine    *redirect.Engine
	clock     *sim.Clock
	model     sim.LatencyModel
	trace     *sim.Trace
	execCache *proxy.ExecCache

	keepFSOnHost bool
	// deadline is the sim-clock budget of one redirected round-trip: a
	// hung transport or wedged guest surfaces as ETIMEDOUT at this bound
	// instead of blocking the app forever.
	deadline time.Duration

	mu     sync.Mutex
	stats  LayerStats
	tamper func([]byte) []byte
	// degraded is the circuit-breaker fail-fast mode: forwarded calls
	// return EAGAIN immediately; UI and host classes are untouched.
	degraded bool
	// mmapBindings tracks host mappings backed by CVM files, for msync
	// write-back (Section III-D, Memory-mapped files).
	mmapBindings map[int]map[uint64]mmapBinding
}

type mmapBinding struct {
	guestFD int
	pages   int
}

// LayerStats counts routing outcomes and recovery events.
type LayerStats struct {
	Redirected    int
	HostExecuted  int
	Split         int
	Blocked       int
	BinderBridged int
	UIPassthrough int
	AppsKilled    int
	// Restarts counts guest swaps after CVM reboots (ReplaceGuest).
	Restarts int
	// TimedOut counts redirected calls abandoned at their deadline.
	TimedOut int
	// FailedFast counts calls rejected with EAGAIN in degraded mode.
	FailedFast int
	// HostDown counts calls refused because the container was dead.
	HostDown int
}

// DefaultCallDeadline bounds one redirected round-trip in sim time. It is
// far above any legitimate single-call cost (hundreds of microseconds)
// but small enough that a wedged container degrades interactivity, not
// usability.
const DefaultCallDeadline = 100 * time.Millisecond

// LayerConfig wires a Layer.
type LayerConfig struct {
	Host         *kernel.Kernel
	Guest        *kernel.Kernel
	CVM          *hypervisor.CVM
	Proxies      *proxy.Manager
	Transport    marshal.Transport
	Clock        *sim.Clock
	Model        sim.LatencyModel
	Trace        *sim.Trace
	KeepFSOnHost bool
	// CallDeadline overrides DefaultCallDeadline (0 keeps the default).
	CallDeadline time.Duration
}

var _ kernel.Interceptor = (*Layer)(nil)

// NewLayer builds the Anception layer.
func NewLayer(cfg LayerConfig) (*Layer, error) {
	cache, err := proxy.NewExecCache(cfg.Host.FS())
	if err != nil {
		return nil, err
	}
	deadline := cfg.CallDeadline
	if deadline <= 0 {
		deadline = DefaultCallDeadline
	}
	l := &Layer{
		host:         cfg.Host,
		guest:        cfg.Guest,
		cvm:          cfg.CVM,
		proxies:      cfg.Proxies,
		transport:    cfg.Transport,
		engine:       redirect.NewEngine(),
		clock:        cfg.Clock,
		model:        cfg.Model,
		trace:        cfg.Trace,
		execCache:    cache,
		keepFSOnHost: cfg.KeepFSOnHost,
		deadline:     deadline,
		mmapBindings: make(map[int]map[uint64]mmapBinding),
	}
	if ls, ok := l.transport.(marshal.LivenessSetter); ok {
		ls.SetLiveness(l.guestAlive)
	}
	return l, nil
}

// guestKernel snapshots the current container kernel under the layer lock
// so forwarding paths never race with ReplaceGuest.
func (l *Layer) guestKernel() *kernel.Kernel {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.guest
}

// proxyMgr snapshots the current proxy manager under the layer lock.
func (l *Layer) proxyMgr() *proxy.Manager {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.proxies
}

// guestAlive is the liveness probe wired into the transport: it always
// reads the *current* guest, so it stays correct across CVM restarts.
func (l *Layer) guestAlive() bool {
	g := l.guestKernel()
	return g != nil && g.Panicked() == ""
}

// ReplaceGuest swaps in a freshly booted container kernel and proxy
// manager after a CVM restart. Stale mmap bindings are dropped; stale
// remote descriptors in host tasks surface as EBADF on next use.
func (l *Layer) ReplaceGuest(guest *kernel.Kernel, proxies *proxy.Manager) {
	l.mu.Lock()
	l.guest = guest
	l.proxies = proxies
	l.mmapBindings = make(map[int]map[uint64]mmapBinding)
	l.stats.Restarts++
	n := l.stats.Restarts
	l.mu.Unlock()
	if l.trace != nil {
		l.trace.Record(sim.EvWatchdog, "guest replaced after CVM restart #%d", n)
	}
}

// Transport returns the current data-channel transport.
func (l *Layer) Transport() marshal.Transport {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.transport
}

// SetTransport swaps the data-channel transport — typically to wrap the
// live one in a fault injector. Liveness wiring is re-applied so the new
// transport keeps refusing calls to a dead container.
func (l *Layer) SetTransport(tr marshal.Transport) {
	if ls, ok := tr.(marshal.LivenessSetter); ok {
		ls.SetLiveness(l.guestAlive)
	}
	l.mu.Lock()
	l.transport = tr
	l.mu.Unlock()
}

// SetDegraded toggles the circuit-breaker fail-fast mode: while degraded,
// redirected calls return EAGAIN immediately instead of touching the
// container. Host-class and UI paths are unaffected.
func (l *Layer) SetDegraded(on bool) {
	l.mu.Lock()
	changed := l.degraded != on
	l.degraded = on
	l.mu.Unlock()
	if changed && l.trace != nil {
		if on {
			l.trace.Record(sim.EvWatchdog, "circuit breaker open: redirected classes fail fast with EAGAIN")
		} else {
			l.trace.Record(sim.EvWatchdog, "circuit breaker closed: redirection restored")
		}
	}
}

// Degraded reports whether fail-fast mode is active.
func (l *Layer) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// Deadline returns the per-call sim-time budget.
func (l *Layer) Deadline() time.Duration { return l.deadline }

// Ping sends a heartbeat over the data channel: an identity-echo
// round-trip that exercises the transport, both world switches, and the
// liveness check without touching any proxy. The supervisor uses the
// error to distinguish a healthy container (nil), a dead one (EHOSTDOWN),
// a wedged or lossy one (ETIMEDOUT), and a corrupting one (EIO). Ping
// deliberately ignores degraded mode so a half-open breaker can probe.
func (l *Layer) Ping() error {
	payload := []byte("anception-heartbeat")
	start := l.clock.Now()
	resp, err := l.Transport().RoundTrip(payload, func(req []byte) []byte { return req })
	if err != nil {
		if errors.Is(err, marshal.ErrHang) {
			if elapsed := l.clock.Now() - start; elapsed < l.deadline {
				l.clock.Advance(l.deadline - elapsed)
			}
			return fmt.Errorf("heartbeat hung past %v deadline: %w", l.deadline, abi.ETIMEDOUT)
		}
		return err
	}
	if elapsed := l.clock.Now() - start; elapsed > l.deadline {
		return fmt.Errorf("heartbeat completed past %v deadline: %w", l.deadline, abi.ETIMEDOUT)
	}
	if !bytes.Equal(resp, payload) {
		return fmt.Errorf("heartbeat echo corrupted: %w", abi.EIO)
	}
	return nil
}

// SetResultTampering installs a hook that rewrites every marshaled result
// coming back from the container — the Iago attack surface of a fully
// compromised CVM (Section VII): it can return arbitrary bad system-call
// results but can never touch host memory directly. Pass nil to clear.
func (l *Layer) SetResultTampering(f func([]byte) []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tamper = f
}

// Stats returns a copy of the routing counters.
func (l *Layer) Stats() LayerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func (l *Layer) count(f func(*LayerStats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

// Intercept implements kernel.Interceptor. Returning handled=false lets
// the host kernel dispatch the call locally.
func (l *Layer) Intercept(k *kernel.Kernel, t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	// Anception protects only non-root apps: a sandboxed task that shows
	// up with UID 0 (e.g. via a zygote/adbd setuid failure) is killed on
	// its first trap (Section III-C, footnote 3).
	if t.Cred.UID == abi.UIDRoot {
		l.count(func(s *LayerStats) { s.AppsKilled++ })
		if l.trace != nil {
			l.trace.Record(sim.EvSecurity, "anception killed pid=%d: sandboxed task running as root", t.PID)
		}
		t.SetState(kernel.TaskDead)
		if t.AS != nil {
			t.AS.Release()
		}
		l.proxyMgr().MirrorExit(t.PID)
		return kernel.Result{Ret: -1, Err: abi.EPERM}, true
	}
	switch redirect.Classify(args.Nr) {
	case redirect.ClassBlocked:
		l.count(func(s *LayerStats) { s.Blocked++ })
		if l.trace != nil {
			l.trace.Record(sim.EvSecurity, "anception blocked %s from pid=%d", args.Nr, t.PID)
		}
		return kernel.Result{Ret: -1, Err: abi.EPERM}, true
	case redirect.ClassHost:
		l.count(func(s *LayerStats) { s.HostExecuted++ })
		return kernel.Result{}, false
	case redirect.ClassSplit:
		l.count(func(s *LayerStats) { s.Split++ })
		return l.handleSplit(t, args), true
	}
	return l.handleRedirectClass(t, args)
}

// handleRedirectClass routes a redirect-class call dynamically.
func (l *Layer) handleRedirectClass(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	switch args.Nr {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		p := l.absPath(t, args.Path)
		if l.keepFSOnHost || l.engine.DecideOpen(p).Route == redirect.RouteHost {
			l.count(func(s *LayerStats) { s.HostExecuted++ })
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = p
		return l.forwardWithFDResult(t, &fwd), true

	case abi.SysIoctl:
		return l.handleIoctl(t, args)

	case abi.SysClose:
		e := t.FD(args.FD)
		if e == nil {
			return kernel.Result{Ret: -1, Err: abi.EBADF}, true
		}
		if e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.FD = e.GuestFD
		res := l.forward(t, &fwd)
		t.CloseFD(args.FD)
		return res, true

	case abi.SysRead, abi.SysWrite, abi.SysPread64, abi.SysPwrite64,
		abi.SysLseek, abi.SysFstat, abi.SysFtruncate, abi.SysFchmod,
		abi.SysFchown, abi.SysFsync, abi.SysFchdir,
		abi.SysBind, abi.SysConnect, abi.SysListen,
		abi.SysSend, abi.SysSendto, abi.SysRecv, abi.SysRecvfrom,
		abi.SysShutdownSk, abi.SysSetsockopt, abi.SysGetsockopt,
		abi.SysGetsockname, abi.SysGetpeername:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			l.count(func(s *LayerStats) { s.HostExecuted++ })
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.FD = e.GuestFD
		res := l.forward(t, &fwd)
		// Pointer translation writeback: copy returned data into the
		// caller's buffer.
		if res.Ok() && len(res.Data) > 0 && len(args.Buf) > 0 {
			copy(args.Buf, res.Data)
		}
		return res, true

	case abi.SysDup, abi.SysDup2:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Nr = abi.SysDup
		fwd.FD = e.GuestFD
		res := l.forward(t, &fwd)
		if !res.Ok() {
			return res, true
		}
		entry := &kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: res.FD, Path: e.Path}
		if args.Nr == abi.SysDup2 {
			t.InstallFDAt(args.FD2, entry)
			return kernel.Result{Ret: int64(args.FD2), FD: args.FD2}, true
		}
		hostFD := t.InstallFD(entry)
		return kernel.Result{Ret: int64(hostFD), FD: hostFD}, true

	case abi.SysAccept:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.FD = e.GuestFD
		return l.forwardWithFDResult(t, &fwd), true

	case abi.SysSendfile:
		return l.handleSendfile(t, args)

	case abi.SysSocket:
		return l.forwardWithFDResult(t, args), true

	case abi.SysPipe:
		res := l.forward(t, args)
		if !res.Ok() {
			return res, true
		}
		readFD := t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: int(res.Ret), Path: "pipe:r"})
		writeFD := t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: res.FD, Path: "pipe:w"})
		return kernel.Result{Ret: int64(readFD), FD: writeFD}, true

	case abi.SysStat, abi.SysAccess, abi.SysMkdir, abi.SysMkdirat,
		abi.SysRmdir, abi.SysUnlink, abi.SysReadlink, abi.SysChmod,
		abi.SysChown, abi.SysTruncate, abi.SysGetdents, abi.SysStatfs,
		abi.SysMknod:
		p := l.absPath(t, args.Path)
		if l.keepFSOnHost || redirect.DecideOpenPath(p) == redirect.RouteHost {
			l.count(func(s *LayerStats) { s.HostExecuted++ })
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = p
		return l.forward(t, &fwd), true

	case abi.SysRename, abi.SysLink:
		if l.keepFSOnHost {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = l.absPath(t, args.Path)
		fwd.Path2 = l.absPath(t, args.Path2)
		return l.forward(t, &fwd), true

	case abi.SysSymlink:
		// Path is the target (uninterpreted), Path2 the link location.
		if l.keepFSOnHost || redirect.DecideOpenPath(l.absPath(t, args.Path2)) == redirect.RouteHost {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path2 = l.absPath(t, args.Path2)
		return l.forward(t, &fwd), true

	case abi.SysShmget, abi.SysShmat, abi.SysShmdt, abi.SysShmctl:
		// Shared segments are app memory: pages stay on the host
		// (principle 3), exactly like the rest of an app's address space.
		l.count(func(s *LayerStats) { s.HostExecuted++ })
		return kernel.Result{}, false

	case abi.SysSync, abi.SysMount:
		return l.forward(t, args), true

	default:
		// Redirect-class calls with no special handling run in the CVM.
		return l.forward(t, args), true
	}
}

// handleIoctl applies principle 2: UI transactions pass through to the
// host; transactions to CVM-resident services are bridged; everything on
// remote descriptors follows the descriptor.
func (l *Layer) handleIoctl(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	e := t.FD(args.FD)
	if e == nil {
		return kernel.Result{Ret: -1, Err: abi.EBADF}, true
	}
	if e.Kind == kernel.FDRemote {
		fwd := *args
		fwd.FD = e.GuestFD
		return l.forward(t, &fwd), true
	}
	// Host-local descriptor. Binder transactions need the UI test.
	if e.Kind == kernel.FDFile && e.File.IsDevice() && e.File.Device().DevName() == "binder" &&
		args.Request == binder.IocWaitInputEvent {
		// Listing 1's IOC_WAIT_INPUT_EVT: always a UI operation.
		l.count(func(s *LayerStats) { s.UIPassthrough++ })
		return kernel.Result{}, false
	}
	if e.Kind == kernel.FDFile && e.File.IsDevice() && e.File.Device().DevName() == "binder" &&
		args.Request == binder.IocTransact {
		if l.host.Binder().IsUITransaction(args.Buf) {
			l.count(func(s *LayerStats) { s.UIPassthrough++ })
			return kernel.Result{}, false // native-speed UI path
		}
		// Not a host UI service: if the target lives in the CVM, bridge
		// the transaction across the boundary (the +19 ms path).
		txn, err := binder.DecodeTransaction(args.Buf)
		if g := l.guestKernel(); err == nil && g.Panicked() == "" && g.Binder().Lookup(txn.Service) != nil {
			return l.bridgeBinder(t, args, txn), true
		}
		// Unknown service: let the host driver report the dead ref.
		return kernel.Result{}, false
	}
	l.count(func(s *LayerStats) { s.HostExecuted++ })
	return kernel.Result{}, false
}

// bridgeBinder relays a binder transaction to a service delegated to the
// container.
func (l *Layer) bridgeBinder(t *kernel.Task, args *kernel.Args, txn binder.Transaction) kernel.Result {
	g := l.guestKernel()
	if g.Panicked() != "" {
		l.count(func(s *LayerStats) { s.HostDown++ })
		return kernel.Result{Ret: -1, Err: fmt.Errorf("binder bridge: container down: %w", abi.EHOSTDOWN)}
	}
	l.count(func(s *LayerStats) { s.BinderBridged++ })
	l.clock.Advance(l.model.BinderTransaction +
		l.model.BinderCVMPenalty +
		time.Duration(len(args.Buf))*l.model.BinderCVMPerByte)
	if l.trace != nil {
		l.trace.Record(sim.EvBinder, "bridged binder txn %q from pid=%d to CVM", txn.Service, t.PID)
	}
	out, err := g.Binder().Transact(t.Cred, args.Buf)
	if err != nil {
		return kernel.Result{Ret: -1, Err: err}
	}
	return kernel.Result{Data: out, Ret: int64(len(out))}
}

// handleSendfile forwards sendfile when both descriptors live in the CVM;
// the common exploit shape (socket + data file) always does.
func (l *Layer) handleSendfile(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	out := t.FD(args.FD)
	in := t.FD(args.FD2)
	if out == nil || in == nil {
		return kernel.Result{Ret: -1, Err: abi.EBADF}, true
	}
	if out.Kind == kernel.FDRemote && in.Kind == kernel.FDRemote {
		fwd := *args
		fwd.FD = out.GuestFD
		fwd.FD2 = in.GuestFD
		return l.forward(t, &fwd), true
	}
	if out.Kind != kernel.FDRemote && in.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	// Mixed locality: stage through a bounce buffer.
	buf := make([]byte, args.Size)
	readArgs := kernel.Args{Nr: abi.SysRead, FD: args.FD2, Buf: buf}
	var readRes kernel.Result
	if in.Kind == kernel.FDRemote {
		readArgs.FD = in.GuestFD
		readRes = l.forward(t, &readArgs)
	} else {
		readRes = l.host.InvokeLocal(t, readArgs)
	}
	if !readRes.Ok() {
		return readRes, true
	}
	writeArgs := kernel.Args{Nr: abi.SysWrite, FD: args.FD, Buf: readRes.Data}
	if out.Kind == kernel.FDRemote {
		writeArgs.FD = out.GuestFD
		return l.forward(t, &writeArgs), true
	}
	return l.host.InvokeLocal(t, writeArgs), true
}

// forward marshals one call, moves it over the transport, executes it in
// the proxy's context inside the CVM, and unmarshals the result. Every
// forwarded call runs under the layer's sim-clock deadline: a hung or
// lossy transport surfaces as ETIMEDOUT at the deadline instead of
// blocking the app forever, and a dead container as EHOSTDOWN.
func (l *Layer) forward(t *kernel.Task, args *kernel.Args) kernel.Result {
	if l.Degraded() {
		l.count(func(s *LayerStats) { s.FailedFast++ })
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}
	}
	// Snapshot guest-side references once: ReplaceGuest may swap them
	// mid-flight, and this call must complete (or fail cleanly) against a
	// consistent pair.
	proxies := l.proxyMgr()
	transport := l.Transport()
	p, err := proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.count(func(s *LayerStats) { s.HostDown++ })
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("enroll proxy: %w", err)}
	}
	l.count(func(s *LayerStats) { s.Redirected++ })
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect %s pid=%d -> proxy %d", args.Nr, t.PID, p.PID)
	}

	// For read-like calls the user buffer is an *output* pointer: only
	// its size travels to the guest; the data comes back in the reply.
	enc := *args
	if isReadLike(args.Nr) && enc.Buf != nil {
		enc.Size = len(enc.Buf)
		enc.Buf = nil
	}
	payload := marshal.EncodeArgs(&enc)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	respBytes, terr := transport.RoundTrip(payload, func(req []byte) []byte {
		decoded, derr := marshal.DecodeArgs(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		if isReadLike(decoded.Nr) && decoded.Buf == nil && decoded.Size > 0 {
			decoded.Buf = make([]byte, decoded.Size)
		}
		resp := marshal.EncodeResult(proxies.Execute(p, *decoded))
		l.mu.Lock()
		tamper := l.tamper
		l.mu.Unlock()
		if tamper != nil {
			resp = tamper(resp)
		}
		return resp
	})
	if terr != nil {
		return l.transportFailure(t, args, start, terr)
	}
	// An injected (or modeled) delay can push a completed call past its
	// budget; the app sees ETIMEDOUT either way.
	if l.clock.Now()-start > l.deadline {
		l.count(func(s *LayerStats) { s.TimedOut++ })
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d completed past %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("call exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}
	}
	return res
}

// transportFailure converts a transport error into the app-visible errno:
// ErrHang charges the remaining deadline and becomes ETIMEDOUT; EHOSTDOWN
// passes through (counted); anything else is reported as-is.
func (l *Layer) transportFailure(t *kernel.Task, args *kernel.Args, start time.Duration, terr error) kernel.Result {
	if errors.Is(terr, marshal.ErrHang) {
		if elapsed := l.clock.Now() - start; elapsed < l.deadline {
			l.clock.Advance(l.deadline - elapsed)
		}
		l.count(func(s *LayerStats) { s.TimedOut++ })
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d abandoned at %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("data channel hung past %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	if errors.Is(terr, abi.EHOSTDOWN) {
		l.count(func(s *LayerStats) { s.HostDown++ })
	}
	return kernel.Result{Ret: -1, Err: fmt.Errorf("data channel: %w", terr)}
}

// forwardWithFDResult forwards a descriptor-creating call and installs a
// remote-descriptor entry in the host task for the returned guest fd.
func (l *Layer) forwardWithFDResult(t *kernel.Task, args *kernel.Args) kernel.Result {
	res := l.forward(t, args)
	if !res.Ok() || res.FD <= 0 {
		return res
	}
	hostFD := t.InstallFD(&kernel.FDEntry{
		Kind:    kernel.FDRemote,
		GuestFD: res.FD,
		Path:    args.Path,
	})
	return kernel.Result{Ret: int64(hostFD), FD: hostFD, Data: res.Data}
}

// isReadLike reports calls whose Buf argument is output-only.
func isReadLike(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysRead, abi.SysPread64, abi.SysRecv, abi.SysRecvfrom:
		return true
	default:
		return false
	}
}

func (l *Layer) absPath(t *kernel.Task, p string) string {
	if strings.HasPrefix(p, "/") {
		return path.Clean(p)
	}
	return path.Join(t.CWD, p)
}
