package anception

import (
	"bytes"
	"errors"
	"fmt"
	"path"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anception/internal/abi"
	"anception/internal/binder"
	"anception/internal/hypervisor"
	"anception/internal/kernel"
	"anception/internal/marshal"
	"anception/internal/proxy"
	"anception/internal/redirect"
	"anception/internal/sim"
)

// Layer is the Anception kernel layer (Figure 3/4): it sits at the host
// syscall interface behind ASIM's redirection-entry check, decides where
// each call runs, marshals redirected calls over the data channel, and
// mirrors split-class state onto the proxies.
type Layer struct {
	host      *kernel.Kernel
	cvm       *hypervisor.CVM
	engine    *redirect.Engine
	clock     *sim.Clock
	model     sim.LatencyModel
	trace     *sim.Trace
	execCache *proxy.ExecCache
	// cache is the redirection cache (DESIGN.md §9); nil unless enabled.
	cache *redirCache
	// grants is the zero-copy grant path (DESIGN.md §11); nil unless
	// Options.GrantThreshold > 0.
	grants *layerGrants
	// binder is the binder bridge fast path (DESIGN.md §12); nil unless
	// Options.BinderSessions or BinderReplyCache is set.
	binder *binderFastPath
	// policy is the adaptive dispatch plane (DESIGN.md §15): one
	// per-call decision for transport, payload strategy, and caching.
	// Always non-nil; inert unless Options.AutoTune.
	policy *dispatchPolicy
	// fusion is the syscall-fusion layer (DESIGN.md §17): linked ring
	// submissions plus the transparent chain-pattern detector; nil
	// unless Options.FusionEnable (or AutoTune).
	fusion *layerFusion
	// epoch is the generation-keyed drain protocol every fast path
	// registers with at boot; AdvanceEpoch rolls them in pinned order.
	epoch layerEpoch

	keepFSOnHost bool
	// deadline is the sim-clock budget of one redirected round-trip: a
	// hung transport or wedged guest surfaces as ETIMEDOUT at this bound
	// instead of blocking the app forever.
	deadline time.Duration
	// netBatch caps the descriptors per batched accept4/epoll_wait
	// completion (DESIGN.md §14).
	netBatch int

	// state is the hot-path snapshot: Intercept/forward load it once with
	// a single atomic read instead of taking a mutex per field. Writers
	// (ReplaceGuest, SetTransport, SetDegraded, SetResultTampering)
	// copy-on-write under mu, so readers always see a consistent tuple.
	state atomic.Pointer[layerState]

	// guestCalls counts redirected calls currently inside a guest-touching
	// span (transport round-trip, ring submit/wait, grant forward, binder
	// session dispatch). It is the live-upgrade quiesce barrier: with
	// degraded mode gating new entries, QuiesceGuestCalls waits for this
	// to reach zero before the guest is swapped under load.
	guestCalls atomic.Int64

	counters layerCounters

	// mu serializes state writers and guards mmapBindings; it is never
	// taken on the forwarding hot path.
	mu sync.Mutex
	// mmapBindings tracks host mappings backed by CVM files, for msync
	// write-back (Section III-D, Memory-mapped files).
	mmapBindings map[int]map[uint64]mmapBinding
}

// layerState is the immutable hot-path snapshot; every mutation installs
// a fresh copy.
type layerState struct {
	guest     *kernel.Kernel
	proxies   *proxy.Manager
	transport marshal.Transport
	// sync is the synchronous fallback channel mounted alongside an
	// async ring under Options.AutoTune; nil otherwise. The policy
	// routes sequential calls here when the ring's slot overhead loses.
	sync marshal.Transport
	// degraded is the circuit-breaker fail-fast mode: forwarded calls
	// return EAGAIN immediately; UI and host classes are untouched.
	degraded bool
	tamper   func([]byte) []byte
}

// layerCounters are the routing/recovery counters, updated lock-free on
// the hot path and assembled into a LayerStats value by Stats().
type layerCounters struct {
	redirected    atomic.Int64
	hostExecuted  atomic.Int64
	split         atomic.Int64
	blocked       atomic.Int64
	binderBridged atomic.Int64
	uiPassthrough atomic.Int64
	appsKilled    atomic.Int64
	restarts      atomic.Int64
	timedOut      atomic.Int64
	failedFast    atomic.Int64
	hostDown      atomic.Int64

	grantCalls       atomic.Int64
	grantBytes       atomic.Int64
	grantCacheBypass atomic.Int64

	sockSubmitted  atomic.Int64
	sockCompleted  atomic.Int64
	sockFailed     atomic.Int64
	sockRing       atomic.Int64
	sockBatches    atomic.Int64
	sockBatchedFDs atomic.Int64
	sockDrains     atomic.Int64

	restores       atomic.Int64
	upgrades       atomic.Int64
	cachePagesKept atomic.Int64
	attrsKept      atomic.Int64
	dirtyDropped   atomic.Int64
	sessionsKept   atomic.Int64
	repliesKept    atomic.Int64
	grantsKept     atomic.Int64
}

type mmapBinding struct {
	guestFD int
	pages   int
}

// LayerStats counts routing outcomes and recovery events. It is a plain
// value-copy-safe struct: Stats() assembles it from the layer's atomic
// counters.
type LayerStats struct {
	Redirected    int
	HostExecuted  int
	Split         int
	Blocked       int
	BinderBridged int
	UIPassthrough int
	AppsKilled    int
	// Restarts counts guest swaps after CVM reboots (ReplaceGuest).
	Restarts int
	// TimedOut counts redirected calls abandoned at their deadline.
	TimedOut int
	// FailedFast counts calls rejected with EAGAIN in degraded mode.
	FailedFast int
	// HostDown counts calls refused because the container was dead.
	HostDown int
	// Cache holds the redirection-cache counters (zero when disabled).
	Cache CacheStats
	// Ring holds the async ring-transport counters — depth, doorbell
	// coalescing ratio, reaps, re-arms — zero when the synchronous page
	// channel is active (Options.RingDepth == 0).
	Ring marshal.RingStats
	// Grants holds the zero-copy grant-path counters (zero when
	// Options.GrantThreshold == 0).
	Grants GrantPathStats
	// Binder holds the binder fast-path counters — sessions, pipelined
	// transactions, reply-cache hits, restart drains — zero when both
	// Options.BinderSessions and BinderReplyCache are off.
	Binder BinderStats
	// Net holds the network fast-path counters — socket ops over the
	// ring, batched accept/epoll completions, restart drains.
	Net NetPathStats
	// Restore holds the snapshot-restore and live-upgrade counters.
	Restore RestoreStats
	// Policy counts adaptive-dispatch decisions (AutoTune reports false
	// when the plane is inert and knob semantics apply verbatim).
	Policy PolicyStats
	// Fusion counts syscall-fusion outcomes — fused chains, link
	// accounting, cache/grant-served links, detector speculation — zero
	// when Options.FusionEnable (and AutoTune) are off.
	Fusion FusionStats
	// Epoch describes the epoch/drain protocol: advances, the boot
	// generation of the last advance, and the pinned participant order.
	Epoch EpochStats
}

// RestoreStats counts snapshot-restore and live-upgrade recoveries plus
// the warm state that survived each generation-aware reconciliation.
// Everything the Kept counters do not cover drains exactly as a cold
// restart would.
type RestoreStats struct {
	// Restores counts guest swaps after snapshot restores (RestoreGuest);
	// Upgrades counts live guest swaps under load (UpgradeGuest). Neither
	// increments Restarts.
	Restores int
	Upgrades int
	// CachePagesKept / AttrsKept count redirection-cache entries re-tagged
	// to the new boot generation (clean pages mirror the persistent
	// filesystem, which a restore does not rewind). DirtyDropped counts
	// buffered write extents discarded with crash semantics.
	CachePagesKept int
	AttrsKept      int
	DirtyDropped   int
	// SessionsKept / RepliesKept count binder sessions re-pinned and
	// cached replies re-tagged because they provably predate the
	// checkpoint; GrantsKept counts grant entries that survived because
	// their guest-side PTEs are inside the restored image.
	SessionsKept int
	RepliesKept  int
	GrantsKept   int
}

// DefaultCallDeadline bounds one redirected round-trip in sim time. It is
// far above any legitimate single-call cost (hundreds of microseconds)
// but small enough that a wedged container degrades interactivity, not
// usability.
const DefaultCallDeadline = 100 * time.Millisecond

// LayerConfig wires a Layer.
type LayerConfig struct {
	Host         *kernel.Kernel
	Guest        *kernel.Kernel
	CVM          *hypervisor.CVM
	Proxies      *proxy.Manager
	Transport    marshal.Transport
	Clock        *sim.Clock
	Model        sim.LatencyModel
	Trace        *sim.Trace
	KeepFSOnHost bool
	// CallDeadline overrides DefaultCallDeadline (0 keeps the default).
	CallDeadline time.Duration
	// RedirCache enables the host-side redirection cache (DESIGN.md §9).
	RedirCache bool
	// ReadAheadPages is the pages fetched per read miss (0 = default 8).
	ReadAheadPages int
	// CacheBudgetBytes bounds clean cached pages (0 = default 4 MiB).
	CacheBudgetBytes int64
	// CacheFlushDelay is the write-back deadline (0 = default 5ms sim).
	CacheFlushDelay time.Duration
	// GrantTable and GrantThreshold enable the zero-copy grant path:
	// bulk I/O calls moving at least GrantThreshold bytes ship
	// scatter-gather descriptors over granted extents instead of chunked
	// copies. Both must be set; the path is off otherwise.
	GrantTable     *hypervisor.GrantTable
	GrantThreshold int
	// BinderSessions enables persistent binder sessions to CVM services
	// (DESIGN.md §12): first transaction pays a one-time setup, later
	// ones skip the guest lookup and cold wakeup.
	BinderSessions bool
	// BinderReplyCache enables the idempotent binder reply cache for
	// codes declared read-only at Register.
	BinderReplyCache bool
	// NetBatch caps the descriptors one batched accept4/epoll_wait
	// completion may carry (0 = DefaultNetBatch).
	NetBatch int
	// AutoTune enables the adaptive data plane (DESIGN.md §15):
	// dispatch decisions come from the online cost model instead of the
	// static knob rules. The grant path then activates even with
	// GrantThreshold == 0 (the model supplies the crossover).
	AutoTune bool
	// SyncTransport, when set alongside an async Transport under
	// AutoTune, mounts a synchronous fallback channel so the policy can
	// pick the transport per call.
	SyncTransport marshal.Transport
	// RingForced / CacheForced mark knobs the caller set explicitly;
	// under AutoTune they stay forced overrides instead of advisory
	// inputs to the model.
	RingForced  bool
	CacheForced bool
	// FusionEnable boots the syscall-fusion layer (DESIGN.md §17):
	// Layer.Chain fuses dependent call chains into linked ring
	// submissions, and the per-task pattern detector speculatively
	// fuses recognized hot shapes. FusionMaxLinks bounds one fused
	// submission (0 = DefaultFusionMaxLinks, capped at
	// marshal.MaxChainLinks).
	FusionEnable   bool
	FusionMaxLinks int
}

var _ kernel.Interceptor = (*Layer)(nil)

// NewLayer builds the Anception layer.
func NewLayer(cfg LayerConfig) (*Layer, error) {
	execCache, err := proxy.NewExecCache(cfg.Host.FS())
	if err != nil {
		return nil, err
	}
	deadline := cfg.CallDeadline
	if deadline <= 0 {
		deadline = DefaultCallDeadline
	}
	l := &Layer{
		host:         cfg.Host,
		cvm:          cfg.CVM,
		engine:       redirect.NewEngine(),
		clock:        cfg.Clock,
		model:        cfg.Model,
		trace:        cfg.Trace,
		execCache:    execCache,
		keepFSOnHost: cfg.KeepFSOnHost,
		deadline:     deadline,
		netBatch:     cfg.NetBatch,
		mmapBindings: make(map[int]map[uint64]mmapBinding),
	}
	if l.netBatch <= 0 {
		l.netBatch = DefaultNetBatch
	}
	l.state.Store(&layerState{
		guest:     cfg.Guest,
		proxies:   cfg.Proxies,
		transport: cfg.Transport,
		sync:      cfg.SyncTransport,
	})
	if cfg.RedirCache {
		gen := 1
		if cfg.CVM != nil {
			gen = cfg.CVM.Generation()
		}
		l.cache = newRedirCache(redirCacheConfig{
			readAhead:  cfg.ReadAheadPages,
			budget:     cfg.CacheBudgetBytes,
			flushDelay: cfg.CacheFlushDelay,
		}, gen)
	}
	if cfg.GrantTable != nil && (cfg.GrantThreshold > 0 || cfg.AutoTune) {
		l.grants = newLayerGrants(cfg.GrantTable, cfg.GrantThreshold)
	}
	if cfg.BinderSessions || cfg.BinderReplyCache {
		gen := 1
		if cfg.CVM != nil {
			gen = cfg.CVM.Generation()
		}
		l.binder = newBinderFastPath(cfg.BinderSessions, cfg.BinderReplyCache, gen)
	}
	l.policy = newDispatchPolicy(cfg.AutoTune, cfg.RingForced, cfg.CacheForced)
	if cfg.FusionEnable {
		l.fusion = newLayerFusion(cfg.FusionMaxLinks)
	}
	// Every fast path enrolls in the epoch protocol unconditionally —
	// a participant whose path is off no-ops, but the pinned order is
	// always complete (see AdvanceEpoch for the ordering rationale).
	// Fusion drains right after the ring: its speculative results were
	// produced through ring slots, so they are dropped as soon as the
	// ring is keyed to the new generation and before any participant
	// that could serve a call from them.
	l.epoch.participants = []epochParticipant{
		{"grants", func(int) { l.RevokeGrants() }},
		{"ring", l.rearmRing},
		{"fusion", l.drainFusion},
		{"sockets", l.DrainSockets},
		{"binder", l.drainBinder},
		{"cache", l.invalidateRedirCache},
	}
	if ls, ok := cfg.Transport.(marshal.LivenessSetter); ok {
		ls.SetLiveness(l.guestAlive)
	}
	if ls, ok := cfg.SyncTransport.(marshal.LivenessSetter); ok {
		ls.SetLiveness(l.guestAlive)
	}
	return l, nil
}

// rearmRing is the ring's epoch participant: slots submitted against
// the old container complete with EHOSTDOWN instead of leaking (or
// executing against the fresh guest).
func (l *Layer) rearmRing(gen int) {
	if ring, ok := l.currentState().transport.(marshal.AsyncTransport); ok {
		ring.Rearm(gen)
	}
}

// syncTransport picks the synchronous channel for a call the policy
// routed off the ring; outside AutoTune there is no fallback channel
// and the mounted transport serves.
func (l *Layer) syncTransport(st *layerState) marshal.Transport {
	if st.sync != nil {
		return st.sync
	}
	return st.transport
}

// currentState loads the hot-path snapshot.
func (l *Layer) currentState() *layerState { return l.state.Load() }

// mutateState installs a modified copy of the snapshot. Writers serialize
// on mu; readers never block.
func (l *Layer) mutateState(f func(*layerState)) {
	l.mu.Lock()
	next := *l.state.Load()
	f(&next)
	l.state.Store(&next)
	l.mu.Unlock()
}

// guestKernel returns the current container kernel; the snapshot makes
// forwarding paths immune to a concurrent ReplaceGuest.
func (l *Layer) guestKernel() *kernel.Kernel { return l.currentState().guest }

// proxyMgr returns the current proxy manager.
func (l *Layer) proxyMgr() *proxy.Manager { return l.currentState().proxies }

// guestAlive is the liveness probe wired into the transport: it always
// reads the *current* guest, so it stays correct across CVM restarts.
func (l *Layer) guestAlive() bool {
	g := l.guestKernel()
	return g != nil && g.Panicked() == ""
}

// ReplaceGuest swaps in a freshly booted container kernel and proxy
// manager after a CVM restart. Stale mmap bindings are dropped, the
// redirection cache is invalidated wholesale (nothing cached against the
// old boot generation may ever be served), and stale remote descriptors
// in host tasks surface as EBADF on next use.
func (l *Layer) ReplaceGuest(guest *kernel.Kernel, proxies *proxy.Manager) {
	l.mutateState(func(s *layerState) {
		s.guest = guest
		s.proxies = proxies
	})
	l.mu.Lock()
	l.mmapBindings = make(map[int]map[uint64]mmapBinding)
	l.mu.Unlock()
	n := l.counters.restarts.Add(1)
	gen := int(n) + 1
	if l.cvm != nil {
		gen = l.cvm.Generation()
	}
	// One epoch advance drains every fast path's warm state in the
	// pinned order — nothing keyed to the old boot generation may ever
	// be served against the new one.
	l.AdvanceEpoch(gen)
	if l.trace != nil {
		l.trace.Record(sim.EvWatchdog, "guest replaced after CVM restart #%d", n)
	}
}

// enterGuestCall registers one container-bound call against the
// live-upgrade quiesce barrier and checks the fail-fast gate. It returns
// false — and the caller must fail with EAGAIN without touching the guest
// — when degraded mode is on (breaker open, or an upgrade gating
// submissions). The increment-then-recheck order pairs Dekker-style with
// SetDegraded-then-QuiesceGuestCalls on the quiescing side: once the gate
// is visible, a concurrent call either observed it here (and backed out)
// or its registration is visible to the quiescer, so no call can slip
// through unseen while the guest is being swapped.
func (l *Layer) enterGuestCall(st *layerState) bool {
	l.guestCalls.Add(1)
	if st.degraded || l.currentState().degraded {
		l.guestCalls.Add(-1)
		return false
	}
	return true
}

// exitGuestCall balances a successful enterGuestCall.
func (l *Layer) exitGuestCall() { l.guestCalls.Add(-1) }

// Inflight reports how many redirected calls are currently inside a
// guest-touching span. The fleet placement scheduler reads it as the
// shard's instantaneous load; it is also the quiesce barrier's count, so
// zero means a gated shard has fully drained.
func (l *Layer) Inflight() int64 { return l.guestCalls.Load() }

// QuiesceGuestCalls blocks until no redirected call is touching the
// container. The caller must gate new submissions first (SetDegraded(true))
// or this may never terminate. In-flight calls drain to completion —
// EAGAIN-retry for new arrivals, never EHOSTDOWN for in-flight ones —
// which is the graceful half of the live-upgrade contract.
func (l *Layer) QuiesceGuestCalls() {
	for l.guestCalls.Load() > 0 {
		runtime.Gosched()
	}
}

// RestoreGuest swaps in the guest rebuilt over a snapshot restore taken at
// takenAt. Unlike ReplaceGuest's wholesale drains, warm state provably
// unchanged since the checkpoint survives, generation-aware:
//
//   - redirection cache: clean pages and path attributes are re-tagged to
//     the new boot generation (they mirror the persistent filesystem,
//     which the restore does not rewind); buffered dirty extents are
//     dropped with crash semantics.
//   - binder fast path: sessions opened and replies stored at or before
//     takenAt are re-pinned/re-tagged (their guest-side state is inside
//     the restored image); later ones drain as a restart would.
//   - grants: entries issued at or before takenAt survive at their
//     original generation so the owning call's deferred revoke retires
//     them; later entries are swept.
//   - ring: re-armed to the new generation exactly as after a restart —
//     slots in flight against the crashed guest still fail EHOSTDOWN.
func (l *Layer) RestoreGuest(guest *kernel.Kernel, proxies *proxy.Manager, takenAt time.Duration) {
	l.reconcileWarmState(guest, proxies, takenAt, false)
}

// UpgradeGuest swaps in a replacement guest under load (live CVM
// upgrade). Callers must have gated and quiesced first (SetDegraded,
// QuiesceGuestCalls, ring Quiesce); with takenAt the moment of the
// pre-swap checkpoint, essentially all warm state survives.
func (l *Layer) UpgradeGuest(guest *kernel.Kernel, proxies *proxy.Manager, takenAt time.Duration) {
	l.reconcileWarmState(guest, proxies, takenAt, true)
}

func (l *Layer) reconcileWarmState(guest *kernel.Kernel, proxies *proxy.Manager, takenAt time.Duration, upgrade bool) {
	l.mutateState(func(s *layerState) {
		s.guest = guest
		s.proxies = proxies
	})
	// mmap bindings reference guest descriptors of the old proxy set; like
	// any post-restart remote descriptor they surface EBADF on next use.
	l.mu.Lock()
	l.mmapBindings = make(map[int]map[uint64]mmapBinding)
	l.mu.Unlock()
	gen := 1
	if l.cvm != nil {
		gen = l.cvm.Generation()
	}
	if upgrade {
		l.counters.upgrades.Add(1)
	} else {
		l.counters.restores.Add(1)
	}
	pagesKept, attrsKept, dirtyDropped := l.rekeyRedirCache(gen)
	sessionsKept, repliesKept := l.reconcileBinder(guest, gen, takenAt)
	if ring, ok := l.currentState().transport.(marshal.AsyncTransport); ok {
		ring.Rearm(gen)
	}
	// Sockets inside the restored image survive, but their connect-time
	// policy check predates the swap: roll the stack generation so each
	// re-runs the current ConnectPolicy on next use.
	guest.Net().SetGeneration(uint64(gen))
	grantsKept := l.reconcileGrants(takenAt)
	l.counters.cachePagesKept.Add(int64(pagesKept))
	l.counters.attrsKept.Add(int64(attrsKept))
	l.counters.dirtyDropped.Add(int64(dirtyDropped))
	l.counters.sessionsKept.Add(int64(sessionsKept))
	l.counters.repliesKept.Add(int64(repliesKept))
	l.counters.grantsKept.Add(int64(grantsKept))
	if l.trace != nil {
		what := "snapshot restore"
		if upgrade {
			what = "live upgrade"
		}
		l.trace.Record(sim.EvSnapshot,
			"guest swapped (%s, gen %d): kept %d cache pages, %d attrs, %d sessions, %d replies, %d grants; dropped %d dirty extents",
			what, gen, pagesKept, attrsKept, sessionsKept, repliesKept, grantsKept, dirtyDropped)
	}
}

// reconcileGrants is the grant half of the warm-state reconciliation.
func (l *Layer) reconcileGrants(takenAt time.Duration) int {
	if l.grants == nil {
		return 0
	}
	kept, _ := l.grants.table.ReconcileRestore(takenAt)
	l.grants.clearLive()
	return kept
}

// Transport returns the current data-channel transport.
func (l *Layer) Transport() marshal.Transport { return l.currentState().transport }

// SetTransport swaps the data-channel transport — typically to wrap the
// live one in a fault injector. Liveness wiring is re-applied so the new
// transport keeps refusing calls to a dead container.
func (l *Layer) SetTransport(tr marshal.Transport) {
	if ls, ok := tr.(marshal.LivenessSetter); ok {
		ls.SetLiveness(l.guestAlive)
	}
	l.mutateState(func(s *layerState) { s.transport = tr })
}

// SetDegraded toggles the circuit-breaker fail-fast mode: while degraded,
// redirected calls return EAGAIN immediately instead of touching the
// container — and the redirection cache is never consulted. Host-class
// and UI paths are unaffected.
func (l *Layer) SetDegraded(on bool) {
	changed := false
	l.mutateState(func(s *layerState) {
		changed = s.degraded != on
		s.degraded = on
	})
	if changed && l.trace != nil {
		if on {
			l.trace.Record(sim.EvWatchdog, "circuit breaker open: redirected classes fail fast with EAGAIN")
		} else {
			l.trace.Record(sim.EvWatchdog, "circuit breaker closed: redirection restored")
		}
	}
}

// Degraded reports whether fail-fast mode is active.
func (l *Layer) Degraded() bool { return l.currentState().degraded }

// Deadline returns the per-call sim-time budget.
func (l *Layer) Deadline() time.Duration { return l.deadline }

// heartbeatPayload is the fixed Ping echo body; a package-level value (and
// a named handler below) keeps the steady-state heartbeat allocation-free.
var heartbeatPayload = []byte("anception-heartbeat")

func echoHeartbeat(req []byte) []byte { return req }

// Ping sends a heartbeat over the data channel: an identity-echo
// round-trip that exercises the transport, both world switches, and the
// liveness check without touching any proxy. The supervisor uses the
// error to distinguish a healthy container (nil), a dead one (EHOSTDOWN),
// a wedged or lossy one (ETIMEDOUT), and a corrupting one (EIO). Ping
// deliberately ignores degraded mode so a half-open breaker can probe.
func (l *Layer) Ping() error {
	start := l.clock.Now()
	resp, err := l.currentState().transport.RoundTrip(heartbeatPayload, echoHeartbeat)
	if err != nil {
		if errors.Is(err, marshal.ErrHang) {
			if elapsed := l.clock.Now() - start; elapsed < l.deadline {
				l.clock.Advance(l.deadline - elapsed)
			}
			return fmt.Errorf("heartbeat hung past %v deadline: %w", l.deadline, abi.ETIMEDOUT)
		}
		return err
	}
	if elapsed := l.clock.Now() - start; elapsed > l.deadline {
		return fmt.Errorf("heartbeat completed past %v deadline: %w", l.deadline, abi.ETIMEDOUT)
	}
	if !bytes.Equal(resp, heartbeatPayload) {
		return fmt.Errorf("heartbeat echo corrupted: %w", abi.EIO)
	}
	return nil
}

// SetResultTampering installs a hook that rewrites every marshaled result
// coming back from the container — the Iago attack surface of a fully
// compromised CVM (Section VII): it can return arbitrary bad system-call
// results but can never touch host memory directly. Pass nil to clear.
func (l *Layer) SetResultTampering(f func([]byte) []byte) {
	l.mutateState(func(s *layerState) { s.tamper = f })
}

// Stats returns a copy of the routing counters.
func (l *Layer) Stats() LayerStats {
	s := LayerStats{
		Redirected:    int(l.counters.redirected.Load()),
		HostExecuted:  int(l.counters.hostExecuted.Load()),
		Split:         int(l.counters.split.Load()),
		Blocked:       int(l.counters.blocked.Load()),
		BinderBridged: int(l.counters.binderBridged.Load()),
		UIPassthrough: int(l.counters.uiPassthrough.Load()),
		AppsKilled:    int(l.counters.appsKilled.Load()),
		Restarts:      int(l.counters.restarts.Load()),
		TimedOut:      int(l.counters.timedOut.Load()),
		FailedFast:    int(l.counters.failedFast.Load()),
		HostDown:      int(l.counters.hostDown.Load()),
	}
	if l.cache != nil {
		s.Cache = l.cache.snapshot()
	}
	if ring, ok := l.currentState().transport.(marshal.AsyncTransport); ok {
		s.Ring = ring.RingStats()
	}
	s.Grants = l.GrantStats()
	s.Binder = l.BinderStats()
	s.Net = l.NetStats()
	s.Restore = RestoreStats{
		Restores:       int(l.counters.restores.Load()),
		Upgrades:       int(l.counters.upgrades.Load()),
		CachePagesKept: int(l.counters.cachePagesKept.Load()),
		AttrsKept:      int(l.counters.attrsKept.Load()),
		DirtyDropped:   int(l.counters.dirtyDropped.Load()),
		SessionsKept:   int(l.counters.sessionsKept.Load()),
		RepliesKept:    int(l.counters.repliesKept.Load()),
		GrantsKept:     int(l.counters.grantsKept.Load()),
	}
	s.Policy = l.policy.snapshot()
	s.Fusion = l.fusionStats()
	s.Epoch = l.epochStats()
	return s
}

// Intercept implements kernel.Interceptor. Returning handled=false lets
// the host kernel dispatch the call locally.
func (l *Layer) Intercept(k *kernel.Kernel, t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	// Anception protects only non-root apps: a sandboxed task that shows
	// up with UID 0 (e.g. via a zygote/adbd setuid failure) is killed on
	// its first trap (Section III-C, footnote 3).
	if t.Cred.UID == abi.UIDRoot {
		l.counters.appsKilled.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvSecurity, "anception killed pid=%d: sandboxed task running as root", t.PID)
		}
		t.SetState(kernel.TaskDead)
		if t.AS != nil {
			t.AS.Release()
		}
		l.proxyMgr().MirrorExit(t.PID)
		return kernel.Result{Ret: -1, Err: abi.EPERM}, true
	}
	switch redirect.Classify(args.Nr) {
	case redirect.ClassBlocked:
		l.counters.blocked.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvSecurity, "anception blocked %s from pid=%d", args.Nr, t.PID)
		}
		return kernel.Result{Ret: -1, Err: abi.EPERM}, true
	case redirect.ClassHost:
		l.counters.hostExecuted.Add(1)
		return kernel.Result{}, false
	case redirect.ClassSplit:
		l.counters.split.Add(1)
		return l.handleSplit(t, args), true
	}
	return l.handleRedirectClass(t, args)
}

// handleRedirectClass routes a redirect-class call dynamically.
func (l *Layer) handleRedirectClass(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	// Syscall fusion first: serve calls answered by an earlier
	// speculative chain, and let the pattern detector fuse a confident
	// chain head before per-call dispatch sees it.
	if l.fusion != nil {
		if res, ok := l.fusionIntercept(t, args); ok {
			return res, true
		}
	}
	switch args.Nr {
	case abi.SysOpen, abi.SysOpenat, abi.SysCreat:
		p := l.absPath(t, args.Path)
		if l.keepFSOnHost || l.engine.DecideOpen(p).Route == redirect.RouteHost {
			l.counters.hostExecuted.Add(1)
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = p
		res := l.forwardWithFDResult(t, &fwd)
		if res.Ok() {
			l.noteRemoteOpen(p, args.Flags)
		}
		return res, true

	case abi.SysIoctl:
		return l.handleIoctl(t, args)

	case abi.SysClose:
		e := t.FD(args.FD)
		if e == nil {
			return kernel.Result{Ret: -1, Err: abi.EBADF}, true
		}
		if e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		st := l.currentState()
		var flushRes kernel.Result
		var flushFailed bool
		if !l.cacheBypassed(st) {
			flushRes, flushFailed = l.flushFDFor(st, t, e)
		}
		fwd := *args
		fwd.FD = e.GuestFD
		res := l.forwardOn(st, t, &fwd)
		t.CloseFD(args.FD)
		l.forgetFD(e)
		if flushFailed {
			// close reports the deferred write-back error, like a kernel
			// flushing dirty pages at last close.
			return flushRes, true
		}
		return res, true

	case abi.SysRead, abi.SysWrite, abi.SysPread64, abi.SysPwrite64,
		abi.SysReadv, abi.SysWritev, abi.SysPreadv, abi.SysPwritev,
		abi.SysLseek, abi.SysFstat, abi.SysFtruncate, abi.SysFchmod,
		abi.SysFchown, abi.SysFsync, abi.SysFchdir,
		abi.SysBind, abi.SysConnect, abi.SysListen,
		abi.SysSend, abi.SysSendto, abi.SysRecv, abi.SysRecvfrom,
		abi.SysShutdownSk, abi.SysSetsockopt, abi.SysGetsockopt,
		abi.SysGetsockname, abi.SysGetpeername:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			l.counters.hostExecuted.Add(1)
			return kernel.Result{}, false
		}
		st := l.currentState()
		// Zero-copy cutover: bulk calls ship grants instead of copies.
		if l.grantEligible(args) {
			return l.forwardGrantFD(st, t, e, args), true
		}
		// Socket ops take the network fast path: compact sockop frames
		// over the ring, with the Submitted=Completed+Failed identity.
		if isSockCall(args.Nr) {
			fwd := *args
			fwd.FD = e.GuestFD
			res := l.forwardSock(st, t, &fwd)
			if res.Ok() && len(res.Data) > 0 && len(args.Buf) > 0 {
				copy(args.Buf, res.Data)
			}
			return res, true
		}
		if !l.cacheBypassed(st) {
			if res, handled := l.cachedFDCall(st, t, e, args); handled {
				return res, true
			}
		}
		fwd := *args
		fwd.FD = e.GuestFD
		res := l.forwardOn(st, t, &fwd)
		l.noteForwardedFDOp(e, args.Nr)
		// Pointer translation writeback: copy returned data into the
		// caller's buffer(s) — scattered across the vector for readv.
		if res.Ok() && len(res.Data) > 0 {
			if len(args.Iov) > 0 {
				scatterIntoIov(args.Iov, res.Data)
			} else if len(args.Buf) > 0 {
				copy(args.Buf, res.Data)
			}
		}
		return res, true

	case abi.SysDup, abi.SysDup2:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		st := l.currentState()
		if !l.cacheBypassed(st) {
			// The duplicate shares the guest-side file; write back any
			// buffered data so both views start coherent.
			if res, failed := l.flushFDFor(st, t, e); failed {
				return res, true
			}
		}
		fwd := *args
		fwd.Nr = abi.SysDup
		fwd.FD = e.GuestFD
		res := l.forwardOn(st, t, &fwd)
		if !res.Ok() {
			return res, true
		}
		entry := &kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: res.FD, Path: e.Path}
		if args.Nr == abi.SysDup2 {
			t.InstallFDAt(args.FD2, entry)
			return kernel.Result{Ret: int64(args.FD2), FD: args.FD2}, true
		}
		hostFD := t.InstallFD(entry)
		return kernel.Result{Ret: int64(hostFD), FD: hostFD}, true

	case abi.SysAccept:
		e := t.FD(args.FD)
		if e == nil || e.Kind != kernel.FDRemote {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.FD = e.GuestFD
		fwd.Path = "sock:accepted"
		return l.forwardWithFDResult(t, &fwd), true

	case abi.SysAccept4:
		return l.handleAccept4(t, args)

	case abi.SysEpollCreate:
		fwd := *args
		fwd.Path = "epoll:"
		return l.forwardWithFDResult(t, &fwd), true

	case abi.SysEpollCtl:
		return l.handleEpollCtl(t, args)

	case abi.SysEpollWait:
		return l.handleEpollWait(t, args)

	case abi.SysSendfile:
		return l.handleSendfile(t, args)

	case abi.SysSocket:
		fwd := *args
		fwd.Path = "sock:"
		return l.forwardWithFDResult(t, &fwd), true

	case abi.SysPipe:
		res := l.forward(t, args)
		if !res.Ok() {
			return res, true
		}
		readFD := t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: int(res.Ret), Path: "pipe:r"})
		writeFD := t.InstallFD(&kernel.FDEntry{Kind: kernel.FDRemote, GuestFD: res.FD, Path: "pipe:w"})
		return kernel.Result{Ret: int64(readFD), FD: writeFD}, true

	case abi.SysStat, abi.SysAccess, abi.SysMkdir, abi.SysMkdirat,
		abi.SysRmdir, abi.SysUnlink, abi.SysReadlink, abi.SysChmod,
		abi.SysChown, abi.SysTruncate, abi.SysGetdents, abi.SysStatfs,
		abi.SysMknod:
		p := l.absPath(t, args.Path)
		if l.keepFSOnHost || redirect.DecideOpenPath(p) == redirect.RouteHost {
			l.counters.hostExecuted.Add(1)
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = p
		st := l.currentState()
		if !l.cacheBypassed(st) {
			if res, handled := l.cachedPathCall(st, t, &fwd, p); handled {
				return res, true
			}
		}
		res := l.forwardOn(st, t, &fwd)
		l.notePathResult(&fwd, p, res)
		return res, true

	case abi.SysRename, abi.SysLink:
		if l.keepFSOnHost {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path = l.absPath(t, args.Path)
		fwd.Path2 = l.absPath(t, args.Path2)
		st := l.currentState()
		if !l.cacheBypassed(st) {
			l.cachedPathCall(st, t, &fwd, fwd.Path)
		}
		res := l.forwardOn(st, t, &fwd)
		l.notePathResult(&fwd, fwd.Path, res)
		return res, true

	case abi.SysSymlink:
		// Path is the target (uninterpreted), Path2 the link location.
		if l.keepFSOnHost || redirect.DecideOpenPath(l.absPath(t, args.Path2)) == redirect.RouteHost {
			return kernel.Result{}, false
		}
		fwd := *args
		fwd.Path2 = l.absPath(t, args.Path2)
		st := l.currentState()
		res := l.forwardOn(st, t, &fwd)
		l.notePathResult(&fwd, fwd.Path2, res)
		return res, true

	case abi.SysShmget, abi.SysShmat, abi.SysShmdt, abi.SysShmctl:
		// Shared segments are app memory: pages stay on the host
		// (principle 3), exactly like the rest of an app's address space.
		l.counters.hostExecuted.Add(1)
		return kernel.Result{}, false

	case abi.SysSync, abi.SysMount:
		return l.forward(t, args), true

	default:
		// Redirect-class calls with no special handling run in the CVM.
		return l.forward(t, args), true
	}
}

// handleIoctl applies principle 2: UI transactions pass through to the
// host; transactions to CVM-resident services are bridged; everything on
// remote descriptors follows the descriptor.
func (l *Layer) handleIoctl(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	e := t.FD(args.FD)
	if e == nil {
		return kernel.Result{Ret: -1, Err: abi.EBADF}, true
	}
	if e.Kind == kernel.FDRemote {
		fwd := *args
		fwd.FD = e.GuestFD
		return l.forward(t, &fwd), true
	}
	// Host-local descriptor. Binder transactions need the UI test.
	if e.Kind == kernel.FDFile && e.File.IsDevice() && e.File.Device().DevName() == "binder" &&
		args.Request == binder.IocWaitInputEvent {
		// Listing 1's IOC_WAIT_INPUT_EVT: always a UI operation.
		l.counters.uiPassthrough.Add(1)
		return kernel.Result{}, false
	}
	if e.Kind == kernel.FDFile && e.File.IsDevice() && e.File.Device().DevName() == "binder" &&
		args.Request == binder.IocTransact {
		// Decode exactly once; routing (UI test, guest lookup) and the
		// bridge both work from this Transaction. The guest dispatches
		// via TransactDecoded, so the bytes are never re-parsed.
		txn, err := binder.DecodeTransaction(args.Buf)
		if err != nil {
			// Malformed frame: let the host driver report EINVAL.
			return kernel.Result{}, false
		}
		if svc := l.host.Binder().Lookup(txn.Service); svc != nil && svc.UI {
			l.counters.uiPassthrough.Add(1)
			return kernel.Result{}, false // native-speed UI path
		}
		// Not a host UI service: if the target lives in the CVM, bridge
		// the transaction across the boundary (the +19 ms path, or the
		// session fast path when enabled).
		st := l.currentState()
		if g := st.guest; g.Panicked() == "" && g.Binder().Lookup(txn.Service) != nil {
			return l.bridgeBinder(st, t, args, txn), true
		}
		// Unknown service: let the host driver report the dead ref.
		return kernel.Result{}, false
	}
	l.counters.hostExecuted.Add(1)
	return kernel.Result{}, false
}

// sendfileBounceLimit bounds the staging buffer of a mixed-locality
// sendfile: the copy loop runs in DefaultChunkSize multiples instead of
// allocating args.Size bytes up front (a hostile app could pass 1 GiB).
const sendfileBounceLimit = 16 * marshal.DefaultChunkSize

// handleSendfile forwards sendfile when both descriptors live in the CVM;
// the common exploit shape (socket + data file) always does.
func (l *Layer) handleSendfile(t *kernel.Task, args *kernel.Args) (kernel.Result, bool) {
	out := t.FD(args.FD)
	in := t.FD(args.FD2)
	if out == nil || in == nil {
		return kernel.Result{Ret: -1, Err: abi.EBADF}, true
	}
	if out.Kind == kernel.FDRemote && in.Kind == kernel.FDRemote {
		fwd := *args
		fwd.FD = out.GuestFD
		fwd.FD2 = in.GuestFD
		return l.forward(t, &fwd), true
	}
	if out.Kind != kernel.FDRemote && in.Kind != kernel.FDRemote {
		return kernel.Result{}, false
	}
	// Mixed locality: stage through a bounded bounce buffer, chunking the
	// read/write loop so the allocation never exceeds sendfileBounceLimit
	// no matter how large the requested Size is. When the grant path is
	// enabled, the remote legs grant the staging buffer instead of
	// chunk-copying it through the channel: the guest reads/fills the
	// pinned pages in place and each leg's channel cost stops scaling
	// with the chunk size.
	bufSize := args.Size
	if bufSize > sendfileBounceLimit {
		bufSize = sendfileBounceLimit
	}
	if bufSize < 0 {
		return kernel.Result{Ret: -1, Err: abi.EINVAL}, true
	}
	st := l.currentState()
	buf := make([]byte, bufSize)
	var total int64
	remaining := args.Size
	for remaining > 0 {
		n := remaining
		if n > len(buf) {
			n = len(buf)
		}
		readArgs := kernel.Args{Nr: abi.SysRead, FD: args.FD2, Buf: buf[:n]}
		var readRes kernel.Result
		if in.Kind == kernel.FDRemote {
			readArgs.FD = in.GuestFD
			if l.grantEligible(&readArgs) {
				readRes = l.forwardGrant(st, t, &readArgs)
			} else {
				readRes = l.forwardOn(st, t, &readArgs)
			}
		} else {
			readRes = l.host.InvokeLocal(t, readArgs)
		}
		if !readRes.Ok() {
			if total > 0 {
				return kernel.Result{Ret: total}, true
			}
			return readRes, true
		}
		if readRes.Ret == 0 {
			break // source exhausted
		}
		chunk := readRes.Data
		if len(chunk) == 0 {
			chunk = buf[:readRes.Ret]
		}
		writeArgs := kernel.Args{Nr: abi.SysWrite, FD: args.FD, Buf: chunk}
		if out.Kind == kernel.FDRemote && strings.HasPrefix(out.Path, "sock:") {
			// sendfile -> socket: the outbound leg is a send, so a big
			// enough chunk rides the grant path and the guest transmits
			// straight out of the pinned staging pages — no second copy.
			writeArgs.Nr = abi.SysSend
		}
		var writeRes kernel.Result
		if out.Kind == kernel.FDRemote {
			writeArgs.FD = out.GuestFD
			if l.grantEligible(&writeArgs) {
				writeRes = l.forwardGrant(st, t, &writeArgs)
				if writeRes.Ok() && writeArgs.Nr == abi.SysWrite {
					l.noteGuestFDWrite(out.GuestFD)
				}
			} else {
				writeRes = l.forwardOn(st, t, &writeArgs)
			}
		} else {
			writeRes = l.host.InvokeLocal(t, writeArgs)
		}
		if !writeRes.Ok() {
			if total > 0 {
				return kernel.Result{Ret: total}, true
			}
			return writeRes, true
		}
		total += writeRes.Ret
		remaining -= int(readRes.Ret)
		if int(readRes.Ret) < n {
			break // short read: end of source
		}
	}
	return kernel.Result{Ret: total}, true
}

// forward marshals one call, moves it over the transport, executes it in
// the proxy's context inside the CVM, and unmarshals the result.
func (l *Layer) forward(t *kernel.Task, args *kernel.Args) kernel.Result {
	return l.forwardOn(l.currentState(), t, args)
}

// forwardOn is forward against an already-loaded state snapshot: the hot
// path loads the snapshot exactly once per intercepted call. Every
// forwarded call runs under the layer's sim-clock deadline: a hung or
// lossy transport surfaces as ETIMEDOUT at the deadline instead of
// blocking the app forever, and a dead container as EHOSTDOWN.
//
// This is the transport decision point of the adaptive data plane:
// with only one transport mounted it routes there (static knob
// semantics, unchanged); with a sync fallback mounted alongside the
// ring (AutoTune) the policy picks per call, and the sim latency of
// whichever arm served feeds the cost model.
func (l *Layer) forwardOn(st *layerState, t *kernel.Task, args *kernel.Args) kernel.Result {
	ring, async := st.transport.(marshal.AsyncTransport)
	useRing := async
	if async && st.sync != nil && !l.policy.useRing(opClassOf(args), l.guestCalls.Load()) {
		useRing = false
	}
	m := l.policy.model
	var start time.Duration
	if m != nil {
		start = l.clock.Now()
	}
	var res kernel.Result
	if useRing {
		res = l.forwardRing(st, ring, t, args)
	} else {
		res = l.forwardSyncOn(st, l.syncTransport(st), t, args)
	}
	if m != nil {
		arm := armSync
		if useRing {
			arm = armRing
		}
		m.observe(opClassOf(args), arm, payloadLen(args), l.clock.Now()-start)
	}
	return res
}

// forwardSyncOn moves one call over a synchronous channel.
func (l *Layer) forwardSyncOn(st *layerState, tr marshal.Transport, t *kernel.Task, args *kernel.Args) kernel.Result {
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return kernel.Result{Ret: -1, Err: fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)}
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("enroll proxy: %w", err)}
	}
	l.counters.redirected.Add(1)
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect %s pid=%d -> proxy %d", args.Nr, t.PID, p.PID)
	}

	// For read-like calls the user buffer is an *output* pointer: only
	// its size travels to the guest; the data comes back in the reply.
	enc := *args
	if isReadLike(args.Nr) && enc.Buf != nil {
		enc.Size = len(enc.Buf)
		enc.Buf = nil
	}
	payload := marshal.EncodeArgs(&enc)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	respBytes, terr := tr.RoundTrip(payload, func(req []byte) []byte {
		decoded, derr := marshal.DecodeArgs(req)
		if derr != nil {
			return marshal.EncodeResult(kernel.Result{Ret: -1, Err: abi.EINVAL})
		}
		if isReadLike(decoded.Nr) && decoded.Buf == nil && decoded.Size > 0 {
			decoded.Buf = make([]byte, decoded.Size)
		}
		resp := marshal.EncodeResult(st.proxies.Execute(p, *decoded))
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if terr != nil {
		return l.transportFailure(t, args, start, terr)
	}
	// An injected (or modeled) delay can push a completed call past its
	// budget; the app sees ETIMEDOUT either way.
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d completed past %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("call exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	res, derr := marshal.DecodeResult(respBytes)
	if derr != nil {
		return kernel.Result{Ret: -1, Err: derr}
	}
	return res
}

// forwardBatch moves several calls to the guest in ONE transport
// round-trip (the redirection cache's coalesced flush): the payload is a
// batch frame, the proxy is dispatched once, and each call pays only its
// own guest-side trap entry. Results come back positionally.
func (l *Layer) forwardBatch(st *layerState, t *kernel.Task, calls []*kernel.Args) ([]kernel.Result, error) {
	// Batches always prefer the ring (one slot already amortizes the
	// whole batch); only a forced-sync override routes them off it.
	if ring, ok := st.transport.(marshal.AsyncTransport); ok && !l.policy.forceSync() {
		return l.forwardBatchRing(st, ring, t, calls)
	}
	if !l.enterGuestCall(st) {
		l.counters.failedFast.Add(1)
		return nil, fmt.Errorf("container circuit breaker open: %w", abi.EAGAIN)
	}
	defer l.exitGuestCall()
	p, err := st.proxies.Ensure(t)
	if err != nil {
		if errors.Is(err, abi.EHOSTDOWN) {
			l.counters.hostDown.Add(1)
		}
		return nil, fmt.Errorf("enroll proxy: %w", err)
	}
	l.counters.redirected.Add(int64(len(calls)))
	if l.trace != nil {
		l.trace.Record(sim.EvRedirect, "redirect batch of %d calls pid=%d -> proxy %d", len(calls), t.PID, p.PID)
	}
	payload := marshal.EncodeArgsBatch(calls)
	l.clock.Advance(time.Duration(len(payload)) * l.model.MarshalPerByte)

	start := l.clock.Now()
	respBytes, terr := l.syncTransport(st).RoundTrip(payload, func(req []byte) []byte {
		decoded, derr := marshal.DecodeArgsBatch(req)
		if derr != nil {
			return marshal.EncodeResultBatch([]kernel.Result{{Ret: -1, Err: abi.EINVAL}})
		}
		for _, d := range decoded {
			if isReadLike(d.Nr) && d.Buf == nil && d.Size > 0 {
				d.Buf = make([]byte, d.Size)
			}
		}
		// Per-call errors ride home positionally inside the encoded
		// result vector; the aggregate error serves direct Manager users.
		batch, _ := st.proxies.ExecuteBatch(p, decoded)
		resp := marshal.EncodeResultBatch(batch)
		if st.tamper != nil {
			resp = st.tamper(resp)
		}
		return resp
	})
	if terr != nil {
		fail := l.transportFailure(t, calls[0], start, terr)
		return nil, fail.Err
	}
	if l.clock.Now()-start > l.deadline {
		l.counters.timedOut.Add(1)
		return nil, fmt.Errorf("batch exceeded %v deadline: %w", l.deadline, abi.ETIMEDOUT)
	}
	results, derr := marshal.DecodeResultBatch(respBytes)
	if derr != nil {
		return nil, derr
	}
	if len(results) != len(calls) {
		return nil, fmt.Errorf("batch reply has %d results for %d calls: %w", len(results), len(calls), abi.EIO)
	}
	return results, nil
}

// transportFailure converts a transport error into the app-visible errno:
// ErrHang charges the remaining deadline and becomes ETIMEDOUT; EHOSTDOWN
// passes through (counted); anything else is reported as-is.
func (l *Layer) transportFailure(t *kernel.Task, args *kernel.Args, start time.Duration, terr error) kernel.Result {
	if errors.Is(terr, marshal.ErrHang) {
		if elapsed := l.clock.Now() - start; elapsed < l.deadline {
			l.clock.Advance(l.deadline - elapsed)
		}
		l.counters.timedOut.Add(1)
		if l.trace != nil {
			l.trace.Record(sim.EvTimeout, "%s pid=%d abandoned at %v deadline", args.Nr, t.PID, l.deadline)
		}
		return kernel.Result{Ret: -1, Err: fmt.Errorf("data channel hung past %v deadline: %w", l.deadline, abi.ETIMEDOUT)}
	}
	if errors.Is(terr, abi.EHOSTDOWN) {
		l.counters.hostDown.Add(1)
	}
	return kernel.Result{Ret: -1, Err: fmt.Errorf("data channel: %w", terr)}
}

// forwardWithFDResult forwards a descriptor-creating call and installs a
// remote-descriptor entry in the host task for the returned guest fd.
func (l *Layer) forwardWithFDResult(t *kernel.Task, args *kernel.Args) kernel.Result {
	res := l.forward(t, args)
	if !res.Ok() || res.FD <= 0 {
		return res
	}
	hostFD := t.InstallFD(&kernel.FDEntry{
		Kind:    kernel.FDRemote,
		GuestFD: res.FD,
		Path:    args.Path,
	})
	return kernel.Result{Ret: int64(hostFD), FD: hostFD, Data: res.Data}
}

// isReadLike reports calls whose buffer argument is output-only.
func isReadLike(nr abi.SyscallNr) bool {
	switch nr {
	case abi.SysRead, abi.SysPread64, abi.SysRecv, abi.SysRecvfrom,
		abi.SysReadv, abi.SysPreadv:
		return true
	default:
		return false
	}
}

// scatterIntoIov distributes a flattened read reply back across the
// caller's vector segments, in order.
func scatterIntoIov(iov [][]byte, data []byte) {
	for _, seg := range iov {
		if len(data) == 0 {
			return
		}
		n := copy(seg, data)
		data = data[n:]
	}
}

func (l *Layer) absPath(t *kernel.Task, p string) string {
	if strings.HasPrefix(p, "/") {
		return path.Clean(p)
	}
	return path.Join(t.CWD, p)
}
