package anception

import (
	"fmt"
	"testing"

	"anception/internal/android"
)

// TestMemoryOverhead is experiment E8 (Section VI-C): the headless CVM
// operates in a 64 MB assignment; with the paper's 23-app active set
// enrolled, active memory is ~25,460 KB of ~49,228 KB available — about
// 51% of assigned memory remains free for more proxies.
func TestMemoryOverhead(t *testing.T) {
	d, err := NewDevice(Options{Mode: ModeAnception})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's active set: 23 apps running concurrently, each with an
	// enrolled proxy.
	for i := 0; i < 23; i++ {
		app, err := d.InstallApp(android.AppSpec{Package: fmt.Sprintf("com.active.app%02d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(app); err != nil {
			t.Fatal(err)
		}
	}
	if d.Proxies.Count() != 23 {
		t.Fatalf("proxies = %d, want 23", d.Proxies.Count())
	}

	stats := d.CVMMemory()
	if stats.TotalKB != 65536 {
		t.Errorf("total = %d KB, want 65536 (64 MB)", stats.TotalKB)
	}
	// Paper: 49,228 KB available.
	if stats.AvailableKB < 48000 || stats.AvailableKB > 50500 {
		t.Errorf("available = %d KB, want ~49228", stats.AvailableKB)
	}
	// Paper: 25,460 KB ± 524 active.
	if stats.ActiveKB < 24400 || stats.ActiveKB > 26500 {
		t.Errorf("active = %d KB, want ~25460", stats.ActiveKB)
	}
	// Paper: ~51% of assigned memory remains available for proxies.
	freeFrac := float64(stats.FreeKB) / float64(stats.AvailableKB)
	if freeFrac < 0.45 || freeFrac > 0.55 {
		t.Errorf("free fraction = %.3f, want ~0.51", freeFrac)
	}
}

// TestMemoryOverheadA4 is ablation A4: a full (non-headless) Android
// stack in the CVM consumes substantially more of the container's memory
// than the headless configuration — the design's justification for
// servicing UI on the host.
func TestMemoryOverheadA4(t *testing.T) {
	headless, err := NewDevice(Options{Mode: ModeAnception})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewDevice(Options{Mode: ModeAnception, FullCVMStack: true})
	if err != nil {
		t.Fatal(err)
	}
	h := headless.CVMMemory()
	f := full.CVMMemory()
	if f.ActiveKB <= h.ActiveKB {
		t.Fatalf("full stack active %d KB should exceed headless %d KB", f.ActiveKB, h.ActiveKB)
	}
	// The UI stack (surfaceflinger, window manager, input, lifecycle,
	// zygote) is ~28 MB of the paper's footprint: a 64 MB container
	// cannot comfortably hold it plus the proxies, which is the point.
	saving := f.ActiveKB - h.ActiveKB
	if saving < 20000 {
		t.Errorf("headless saving = %d KB, expected tens of MB", saving)
	}
}

// TestProxyFootprintSmall: a proxy is much smaller than its host app
// (Section VI-C), so the container scales to many apps.
func TestProxyFootprintSmall(t *testing.T) {
	d, err := NewDevice(Options{Mode: ModeAnception})
	if err != nil {
		t.Fatal(err)
	}
	app, err := d.InstallApp(android.AppSpec{Package: "com.footprint"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Launch(app)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the app's heap to a realistic size.
	if _, err := p.Brk(0x0100_0000 + 256*4096); err != nil {
		t.Fatal(err)
	}
	proxyPages := d.Proxies.ProxyFor(p.Task.PID).AS.ResidentPages()
	appPages := p.Task.AS.ResidentPages()
	if proxyPages*4 > appPages {
		t.Fatalf("proxy %d pages vs app %d pages: proxy should be much smaller", proxyPages, appPages)
	}
}
